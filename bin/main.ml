(* conv_io — command-line interface to the library.

   Subcommands:
     bounds   print I/O lower bounds and dataflow costs for a layer
     pebble   run the red-blue pebble game on a convolution DAG
     tune     auto-tune a layer on a simulated GPU
     models   end-to-end CNN comparison (Figure 12 style)
     verify   run one convolution through every kernel and cross-check
     serve    tuning-as-a-service daemon on a Unix socket
     ask      one-shot client for a running serve daemon
     scrub    offline audit pass over a result-cache file *)

open Cmdliner

(* --- shared arguments --- *)

let arch_aliases () =
  String.concat ", " (List.map Gpu_sim.Arch.alias Gpu_sim.Arch.all)

let arch_conv =
  let parse s =
    match Gpu_sim.Arch.of_alias s with
    | Some a -> Ok a
    | None ->
      Error (`Msg (Printf.sprintf "unknown architecture %S (%s)" s (arch_aliases ())))
  in
  let print fmt (a : Gpu_sim.Arch.t) = Format.pp_print_string fmt (Gpu_sim.Arch.alias a) in
  Arg.conv (parse, print)

let arch_arg =
  let doc = "GPU architecture: 1080ti, v100, titanx or gfx906." in
  Arg.(value & opt arch_conv Gpu_sim.Arch.v100 & info [ "arch" ] ~doc)

let spec_term =
  let cin = Arg.(value & opt int 64 & info [ "cin" ] ~doc:"Input channels.") in
  let size = Arg.(value & opt int 56 & info [ "size" ] ~doc:"Input height = width.") in
  let cout = Arg.(value & opt int 64 & info [ "cout" ] ~doc:"Output channels.") in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Kernel edge.") in
  let stride = Arg.(value & opt int 1 & info [ "stride" ] ~doc:"Stride.") in
  let pad = Arg.(value & opt int 0 & info [ "pad" ] ~doc:"Padding.") in
  let batch = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"Batch size.") in
  let groups =
    Arg.(value & opt int 1 & info [ "groups" ] ~doc:"Grouped convolution (depthwise when = cin).")
  in
  let build cin size cout k stride pad batch groups =
    Conv.Conv_spec.square ~batch ~pad ~stride ~groups ~c_in:cin ~size ~c_out:cout ~k ()
  in
  Term.(const build $ cin $ size $ cout $ k $ stride $ pad $ batch $ groups)

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

(* --- bounds --- *)

let bounds_cmd =
  let run spec (arch : Gpu_sim.Arch.t) =
    let s = float_of_int (Gpu_sim.Arch.shared_elems_per_sm arch / 2) in
    Printf.printf "Layer: %s\nFast memory S = %.0f elements (%s, half an SM)\n\n"
      (Conv.Conv_spec.to_string spec) s arch.name;
    Printf.printf "Reuse factor R = Hker*Wker/stride^2 = %.2f\n\n" (Conv.Conv_spec.reuse spec);
    Printf.printf "Direct convolution:\n";
    Printf.printf "  Theorem 4.12 lower bound:  %.3e elements\n"
      (Core.Direct_bound.q_lower spec ~s);
    Printf.printf "  Equation 21 dataflow cost: %.3e elements\n"
      (Core.Dataflow_cost.q_dc_optimal spec ~s ~np:1);
    let tile = Core.Optimality.optimal_tile_direct spec ~s ~np:1 in
    Printf.printf "  optimal tile (xy = Rz):    %dx%dx%d\n" tile.x tile.y tile.z;
    if Conv.Winograd.supported spec then begin
      Printf.printf "\nWinograd algorithm (e = 2):\n";
      Printf.printf "  Theorem 4.20 lower bound:  %.3e elements\n"
        (Core.Winograd_bound.q_lower ~e:2 spec ~s);
      Printf.printf "  Equation 23 dataflow cost: %.3e elements\n"
        (Core.Dataflow_cost.q_wa_optimal ~e:2 spec ~s ~np:1);
      let wtile = Core.Optimality.optimal_tile_winograd ~e:2 spec ~s ~np:1 in
      Printf.printf "  optimal tile:              %dx%dx%d\n" wtile.x wtile.y wtile.z
    end
    else Printf.printf "\nWinograd: not applicable (stride or non-square kernel).\n"
  in
  let info = Cmd.info "bounds" ~doc:"Print I/O lower bounds for a convolution layer." in
  Cmd.v info Term.(const run $ spec_term $ arch_arg)

(* --- pebble --- *)

let pebble_cmd =
  let s_arg = Arg.(value & opt int 64 & info [ "s" ] ~doc:"Red pebbles (fast memory).") in
  let run spec s =
    if spec.Conv.Conv_spec.groups <> 1 then
      failwith "pebble: the convolution DAG builder models ungrouped convolutions";
    let dag_spec =
      {
        Dag.Conv_dag.w_in = spec.Conv.Conv_spec.w_in;
        h_in = spec.h_in;
        c_in = spec.c_in;
        c_out = spec.c_out;
        w_ker = spec.k_w;
        h_ker = spec.k_h;
        stride = spec.stride;
      }
    in
    let dag = Dag.Conv_dag.build dag_spec in
    let g = dag.graph in
    Printf.printf "DAG: %d vertices (%d inputs)\n" (Dag.Graph.num_vertices g)
      (Dag.Graph.num_inputs g);
    let bound = Core.Direct_bound.q_lower spec ~s:(float_of_int s) in
    Printf.printf "Theorem 4.12 bound at S=%d: %.0f\n\n" s bound;
    List.iter
      (fun (name, schedule) ->
        let stats = Pebble.Pebble_game.run g ~schedule ~s ~policy:Pebble.Pebble_game.Lru in
        Printf.printf "%-18s loads %7d stores %6d total %7d (peak red %d)\n" name stats.loads
          stats.stores
          (Pebble.Pebble_game.total_io stats)
          stats.peak_red)
      [
        ("blocked 4x4x1", Dag.Conv_dag.schedule_blocked dag ~bx:4 ~by:4 ~bz:1);
        ("output-stationary", Dag.Conv_dag.schedule_output_stationary dag);
        ("by-step", Dag.Conv_dag.schedule_by_step dag);
      ]
  in
  let info = Cmd.info "pebble" ~doc:"Play the red-blue pebble game on a conv DAG." in
  Cmd.v info Term.(const run $ spec_term $ s_arg)

(* --- tune --- *)

let tune_cmd =
  let budget =
    Arg.(value & opt int 300 & info [ "budget" ] ~doc:"Measurement budget.")
  in
  let tvm = Arg.(value & flag & info [ "tvm" ] ~doc:"Use the unpruned TVM-style domain.") in
  let wino =
    Arg.(value & opt (some int) None & info [ "winograd" ] ~doc:"Tune the Winograd dataflow with tile e.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ]
          ~doc:
            "Durable measurement journal. A killed run resumes from it \
             bit-identically (corrupt records are detected by checksum, \
             salvaged and re-measured); the GBT cost model is checkpointed \
             alongside in FILE.ckpt.")
  in
  let run spec arch seed budget tvm wino journal =
    let algorithm =
      match wino with None -> Core.Config.Direct_dataflow | Some e -> Core.Config.Winograd_dataflow e
    in
    let space = Core.Search_space.make ~pruned:(not tvm) arch spec algorithm in
    Printf.printf "Tuning %s (%s domain, %.3g configurations)...\n"
      (Conv.Conv_spec.to_string spec)
      (if tvm then "TVM-style full" else "optimality-pruned")
      (Core.Search_space.size space);
    let result = Core.Tuner.tune ~seed ~max_measurements:budget ?journal ~space () in
    Printf.printf "best: %.2f us (%.0f GFlops) after %d measurements (converged at #%d)\n"
      result.best_runtime_us result.best_gflops result.measurements result.converged_at;
    Printf.printf "config: %s\n" (Core.Config.to_string result.best_config);
    if journal <> None then
      Printf.printf
        "journal: %d trial(s) replayed, %d corrupt record(s) dropped, %d model \
         checkpoint restore(s)\n"
        result.faults.replayed result.faults.journal_dropped result.faults.model_restores;
    let lib = Gpu_sim.Library_sim.cudnn_direct arch spec in
    Printf.printf "cuDNN-style baseline: %.2f us (%s) -> speedup %.2fx\n" lib.runtime_us
      lib.algorithm (lib.runtime_us /. result.best_runtime_us)
  in
  let info = Cmd.info "tune" ~doc:"Auto-tune a convolution layer on a simulated GPU." in
  Cmd.v info Term.(const run $ spec_term $ arch_arg $ seed_arg $ budget $ tvm $ wino $ journal)

(* --- models --- *)

let models_cmd =
  let budget =
    Arg.(value & opt int 150 & info [ "budget" ] ~doc:"Measurement budget per layer.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Time each model under run-level supervision with the default fault \
             profile injected: flaky measurements, circuit breakers, a global \
             virtual-time budget, analytic degradation.  Prints each run's \
             health report after the table.")
  in
  let budget_us =
    Arg.(
      value
      & opt float infinity
      & info [ "budget-us" ]
          ~doc:
            "Global virtual-time budget (microseconds) shared by a supervised \
             model's tuning tasks (with $(b,--chaos); default unbounded).")
  in
  let run arch seed budget chaos budget_us =
    let table = Util.Table.create [ "model"; "ours (us)"; "library (us)"; "speedup" ] in
    let reports = ref [] in
    List.iter
      (fun m ->
        let supervise, faults =
          if chaos then
            ( Some { Core.Supervisor.default_policy with budget_us },
              Some Gpu_sim.Faults.default )
          else (None, None)
        in
        let t =
          Cnn.Runner.time_model ~seed ~max_measurements:budget ?faults ?supervise arch m
        in
        Option.iter (fun h -> reports := (t.Cnn.Runner.model, h) :: !reports) t.health;
        Util.Table.add_row table
          [
            t.model;
            Printf.sprintf "%.0f" t.ours_total_us;
            Printf.sprintf "%.0f" t.library_total_us;
            Printf.sprintf "%.2fx" t.speedup;
          ])
      Cnn.Models.evaluation_models;
    Util.Table.print table;
    List.iter
      (fun (model, h) ->
        Printf.printf "\n[%s]\n%s" model (Core.Supervisor.report_to_string h))
      (List.rev !reports)
  in
  let info = Cmd.info "models" ~doc:"End-to-end CNN comparison on a simulated GPU." in
  Cmd.v info Term.(const run $ arch_arg $ seed_arg $ budget $ chaos $ budget_us)

(* --- verify --- *)

let verify_cmd =
  let run spec seed =
    let rng = Util.Rng.create seed in
    let input, weights = Conv.Direct.random_problem rng spec in
    let reference = Conv.Direct.run spec ~input ~weights in
    let check name t =
      Printf.printf "%-24s max|diff| = %.3g  %s\n" name
        (Tensor.max_abs_diff reference t)
        (if Tensor.allclose reference t then "OK" else "MISMATCH")
    in
    check "im2col+GEMM" (Conv.Im2col.run spec ~input ~weights);
    if Conv.Winograd.supported spec then begin
      check "winograd F(2)" (Conv.Winograd.run ~e:2 spec ~input ~weights);
      check "winograd F(4)" (Conv.Winograd.run ~e:4 spec ~input ~weights)
    end;
    let tile = Core.Optimality.optimal_tile_direct spec ~s:12288.0 ~np:1 in
    check "tiled direct dataflow" (Conv.Tiled_direct.run spec ~tile ~input ~weights).output
  in
  let info = Cmd.info "verify" ~doc:"Cross-check every convolution kernel on one layer." in
  Cmd.v info Term.(const run $ spec_term $ seed_arg)

(* --- explain --- *)

let explain_cmd =
  let run spec arch seed =
    let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
    let result = Core.Tuner.tune ~seed ~max_measurements:200 ~space () in
    Printf.printf "Layer: %s on %s\n" (Conv.Conv_spec.to_string spec) arch.Gpu_sim.Arch.name;
    Printf.printf "Tuned config: %s\n\n" (Core.Config.to_string result.best_config);
    let kernel = Core.Config.to_kernel arch spec result.best_config in
    print_endline (Gpu_sim.Roofline.to_string (Gpu_sim.Roofline.analyze arch kernel));
    Printf.printf "\nKernel template:\n%s\n" (Core.Template.render arch spec result.best_config);
    let lib = Gpu_sim.Library_sim.cudnn_direct arch spec in
    Printf.printf "\nLibrary pick (%s) for comparison:\n" lib.algorithm;
    print_endline (Gpu_sim.Roofline.to_string (Gpu_sim.Roofline.analyze arch lib.kernel))
  in
  let info = Cmd.info "explain" ~doc:"Roofline breakdown of the tuned kernel vs the library." in
  Cmd.v info Term.(const run $ spec_term $ arch_arg $ seed_arg)

(* --- serve --- *)

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~doc:"Unix-domain socket path to listen on.")
  in
  let cache =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache" ]
          ~doc:
            "Durable result-cache file (created if missing; salvaged and \
             repaired if corrupted).  Survives kill -9: repeat queries after a \
             restart answer without re-tuning.")
  in
  let budget =
    Arg.(value & opt int 300 & info [ "budget" ] ~doc:"Measurement budget per tune.")
  in
  let budget_us =
    Arg.(
      value
      & opt float infinity
      & info [ "budget-us" ]
          ~doc:
            "Global virtual-time tuning budget shared fairly across requests; \
             once exhausted, answers degrade to analytic configurations (typed \
             $(b,source=degraded)).")
  in
  let max_pending =
    Arg.(
      value & opt int 8
      & info [ "max-pending" ]
          ~doc:"Distinct queued tunes beyond which requests get BUSY retry-after.")
  in
  let read_deadline =
    Arg.(
      value & opt float 30.0
      & info [ "read-deadline" ]
          ~doc:"Seconds an idle connection may hold a descriptor before ERR timeout.")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ]
          ~doc:
            "Directory for per-request tune journals: a daemon killed mid-tune \
             resumes the interrupted search from its journal on the next request.")
  in
  let request_deadline =
    Arg.(
      value & opt float 10.0
      & info [ "request-deadline" ]
          ~doc:
            "Seconds a partial request may dribble in (or a stalled response \
             flush may linger) before ERR timeout — the slow-loris bound.")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ]
          ~doc:
            "Concurrent-connection ceiling; accepts beyond it are answered \
             BUSY retry-after immediately and closed.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ] ~doc:"Inject the default GPU fault profile (demo/testing).")
  in
  let no_audit =
    Arg.(
      value & flag
      & info [ "no-audit" ]
          ~doc:
            "Disable the answer-integrity audit (cache records at load and \
             before each hit, fresh results after tuning).  Audited rejects \
             are quarantined to CACHE.quarantine and re-tuned; with this \
             flag the daemon trusts whatever the cache file says.")
  in
  let scrub_per_step =
    Arg.(
      value & opt int 0
      & info [ "scrub-per-step" ]
          ~doc:
            "Background cache scrubbing: re-audit this many cache entries \
             per engine step (0 = off).  A full pass quarantines every \
             record that no longer re-derives.")
  in
  let run socket cache seed budget budget_us max_pending read_deadline
      request_deadline max_conns journal_dir chaos no_audit scrub_per_step =
    let settings =
      {
        Service.Engine.default_settings with
        budget_trials = budget;
        seed;
        max_pending;
        journal_dir;
        faults = (if chaos then Some Gpu_sim.Faults.default else None);
        policy = { Core.Supervisor.default_policy with budget_us };
        audit = not no_audit;
        scrub_per_step;
      }
    in
    Printf.printf "conv_io serve: socket %s, cache %s, generation %s\n%!" socket cache
      (Service.Engine.generation_of_settings settings);
    let engine =
      Service.Daemon.serve ~socket ~cache ~settings ~read_deadline_s:read_deadline
        ~request_deadline_s:request_deadline ~max_conns ()
    in
    Printf.printf "drained; final stats:\n";
    List.iter (fun (k, v) -> Printf.printf "  %-16s %s\n" k v) (Service.Engine.stats engine);
    print_string (Core.Supervisor.report_to_string (Service.Engine.health engine))
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Tuning-as-a-service daemon: a Unix-socket line protocol in front of a \
         crash-safe shared result cache with request coalescing, admission \
         control and graceful SIGTERM drain."
  in
  Cmd.v info
    Term.(
      const run $ socket $ cache $ seed_arg $ budget $ budget_us $ max_pending
      $ read_deadline $ request_deadline $ max_conns $ journal_dir $ chaos
      $ no_audit $ scrub_per_step)

(* --- ask --- *)

let ask_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~doc:"Socket of a running $(b,conv_io serve) daemon.")
  in
  let wino =
    Arg.(
      value
      & opt (some int) None
      & info [ "winograd" ] ~doc:"Ask for the Winograd dataflow with tile e.")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~doc:"Send this raw request line instead (e.g. PING, STATS).")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ]
          ~doc:
            "Total request deadline in milliseconds, spanning all retries and \
             propagated to the daemon as the $(b,deadline-ms) field so it can \
             shed work nobody will collect.")
  in
  let retries =
    Arg.(
      value & opt int 8
      & info [ "retries" ]
          ~doc:"Attempt budget: retries are idempotent (same canonical key).")
  in
  let attempt_timeout =
    Arg.(
      value & opt int 2000
      & info [ "attempt-timeout" ]
          ~doc:"Milliseconds to wait for an answer on one attempt.")
  in
  let chaos_rate =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-rate" ]
          ~doc:
            "Inject wire faults at this per-attempt rate (0..1) on the way \
             out — the flaky-network walkthrough.  Deterministic per \
             $(b,--chaos-seed).")
  in
  let chaos_seed =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~doc:"Seed for wire-fault plans and retry jitter.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print the per-attempt retry trace to stderr (audited answers \
             are marked $(b,[audit=ok]); rejects show their reason tokens).")
  in
  let no_audit =
    Arg.(
      value & flag
      & info [ "no-audit" ]
          ~doc:
            "Accept OK answers without re-deriving their analytic claims \
             through the client-side audit.")
  in
  let run spec arch wino raw socket deadline retries attempt_timeout chaos_rate
      chaos_seed trace no_audit =
    let settings =
      {
        Service.Client.default_settings with
        deadline_ms = deadline;
        max_attempts = retries;
        attempt_timeout_ms = attempt_timeout;
        seed = chaos_seed;
        faults =
          (if chaos_rate > 0.0 then Service.Net_faults.with_rate chaos_rate
           else Service.Net_faults.none);
        audit = not no_audit;
      }
    in
    let result, attempts =
      match raw with
      | Some line -> Service.Client.ask_raw ~settings ~socket line
      | None ->
        let algorithm =
          match wino with
          | None -> Core.Config.Direct_dataflow
          | Some e -> Core.Config.Winograd_dataflow e
        in
        Service.Client.ask ~settings ~socket
          (Service.Protocol.Tune
             {
               Service.Protocol.spec;
               arch;
               algorithm;
               pruned = true;
               deadline_ms = deadline;
             })
    in
    if trace || Result.is_error result then
      List.iter
        (fun a -> Printf.eprintf "%s\n%!" (Service.Client.attempt_to_string a))
        attempts;
    match result with
    | Ok resp ->
      print_endline (Service.Protocol.render_response resp);
      (match resp with Service.Protocol.Error _ -> exit 1 | _ -> ())
    | Error failure ->
      Printf.eprintf "ask: %s\n%!" (Service.Client.failure_to_string failure);
      exit 2
  in
  let info =
    Cmd.info "ask"
      ~doc:
        "Send one request to a serve daemon through the resilient client: \
         retries with capped jittered backoff, BUSY retry-after honored, \
         idempotent by canonical key, total deadline propagated."
  in
  Cmd.v info
    Term.(
      const run $ spec_term $ arch_arg $ wino $ raw $ socket $ deadline
      $ retries $ attempt_timeout $ chaos_rate $ chaos_seed $ trace $ no_audit)

(* --- scrub --- *)

let scrub_cmd =
  let cache =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache" ] ~doc:"Result-cache file to scrub.")
  in
  let budget =
    Arg.(
      value & opt int 300
      & info [ "budget" ]
          ~doc:
            "Measurement budget of the daemon that owns the cache — part of \
             the cache generation; records of other generations are stale, \
             not scrubbed.")
  in
  let run cache seed budget =
    let settings =
      { Service.Engine.default_settings with budget_trials = budget; seed }
    in
    let generation = Service.Engine.generation_of_settings settings in
    (* Audited load: records that fail even to decode honestly (forged key,
       mangled floats) are quarantined right here; the scrub pass below
       re-derives everything the load admitted. *)
    let c = Service.Result_cache.load ~audit:true ~generation cache in
    let load_rejects = Service.Result_cache.quarantined c in
    Printf.printf "conv_io scrub: cache %s, generation %s, %d live entries\n" cache
      generation
      (Service.Result_cache.entries c);
    let report = Service.Result_cache.scrub c in
    Printf.printf "examined %d, quarantined %d at load + %d in the pass, %d entries remain\n"
      report.Service.Result_cache.examined load_rejects report.quarantined
      report.remaining;
    let qpath = Service.Result_cache.quarantine_path c in
    Printf.printf "quarantine ledger: %s (%d records)\n" qpath
      (Service.Quarantine.count qpath);
    if load_rejects + report.quarantined > 0 then exit 1
  in
  let info =
    Cmd.info "scrub"
      ~doc:
        "Offline audit pass over a result-cache file: every record is \
         re-derived through the answer-integrity auditor; records that lie \
         are moved to the durable quarantine sidecar and the cache is \
         compacted to exactly the entries that passed.  Exits 1 if anything \
         was quarantined."
  in
  Cmd.v info Term.(const run $ cache $ seed_arg $ budget)

(* --- gold / regress --- *)

(* The two commands share everything but the mode: same fleet selection, same
   directories, same sweep settings — so a regress run is guaranteed to
   re-measure exactly what the gold run recorded. *)
let fleet_term =
  let model_conv =
    let parse s =
      let slug = Regress.Gold.slug s in
      match
        List.find_opt
          (fun (m : Cnn.Models.t) -> Regress.Gold.slug m.name = slug)
          (Regress.Sweep.fleet_models ())
      with
      | Some m -> Ok m
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown model %S (%s)" s
                (String.concat ", "
                   (List.map
                      (fun (m : Cnn.Models.t) -> Regress.Gold.slug m.name)
                      (Regress.Sweep.fleet_models ())))))
    in
    let print fmt (m : Cnn.Models.t) =
      Format.pp_print_string fmt (Regress.Gold.slug m.name)
    in
    Arg.conv (parse, print)
  in
  let models =
    Arg.(
      value
      & opt (some (list model_conv)) None
      & info [ "models" ]
          ~doc:"Comma-separated model subset (slugs, e.g. resnet-18,mobilenet-v1).")
  in
  let arches =
    Arg.(
      value
      & opt (some (list arch_conv)) None
      & info [ "arches" ] ~doc:"Comma-separated architecture subset (aliases).")
  in
  let gold_dir =
    Arg.(
      value & opt string "regress/gold"
      & info [ "gold-dir" ] ~doc:"Directory of golden files.")
  in
  let out_dir =
    Arg.(
      value & opt string "regress/out"
      & info [ "out-dir" ] ~doc:"Directory for .pass and .timing markers.")
  in
  let cache =
    Arg.(
      value
      & opt string "regress/cache/fleet.cache"
      & info [ "cache" ]
          ~doc:
            "Shared result-cache file: written by $(b,gold), primes the warm \
             replay layer of $(b,regress).")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Run without the result cache.")
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~doc:"Write the fleet sweep trajectory to this JSON file.")
  in
  let budget =
    Arg.(
      value & opt int Regress.Sweep.default_settings.budget
      & info [ "budget" ] ~doc:"Measurement budget per tuning run.")
  in
  let make models arches gold_dir out_dir cache no_cache bench seed budget =
    let settings = { Regress.Sweep.default_settings with seed; budget } in
    let cache_path = if no_cache then None else Some cache in
    fun ?tolerance mode ->
      let summary =
        Regress.Harness.run ?models ?arches ~settings ?tolerance ?cache_path
          ?bench_path:bench ~gold_dir ~out_dir mode
      in
      Regress.Harness.print_summary summary;
      if Regress.Harness.failed summary then exit 1
  in
  Term.(
    const make $ models $ arches $ gold_dir $ out_dir $ cache $ no_cache $ bench
    $ seed_arg $ budget)

let gold_cmd =
  let run (fleet : ?tolerance:float -> Regress.Harness.mode -> unit) =
    fleet Regress.Harness.Gold
  in
  let info =
    Cmd.info "gold"
      ~doc:
        "Sweep the CNN fleet across every simulated architecture and record \
         golden per-layer results (deterministic: re-running produces \
         byte-identical files)."
  in
  Cmd.v info Term.(const run $ fleet_term)

let regress_cmd =
  let tolerance =
    Arg.(
      value
      & opt float Regress.Harness.default_tolerance
      & info [ "tolerance" ] ~doc:"Relative drift allowed on cost fields.")
  in
  let run (fleet : ?tolerance:float -> Regress.Harness.mode -> unit) tolerance =
    fleet ~tolerance Regress.Harness.Regress
  in
  let info =
    Cmd.info "regress"
      ~doc:
        "Re-sweep the fleet (warm, via the shared result cache) and diff \
         against the golden files; exits 1 with a typed mismatch report on \
         any drift."
  in
  Cmd.v info Term.(const run $ fleet_term $ tolerance)

let () =
  let doc = "I/O lower bounds and auto-tuning for CNN convolutions (PPoPP'21 reproduction)" in
  let info = Cmd.info "conv_io" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            bounds_cmd; pebble_cmd; tune_cmd; models_cmd; verify_cmd; explain_cmd;
            serve_cmd; ask_cmd; scrub_cmd; gold_cmd; regress_cmd;
          ]))
