# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test verify-smoke verify-deep fault-smoke torture-smoke torture-deep chaos-smoke chaos-deep clean

all: build

build:
	dune build

# Full tier-1 suite (includes @verify-smoke via the tests stanza).
test:
	dune runtest

# Ground-truth verification: exact pebble-game oracle sandwich grid +
# differential conformance harness.  Smoke is the fast (<15s) configuration;
# deep enlarges DAG grid, oracle budgets and qcheck case counts (minutes).
verify-smoke:
	dune build @verify-smoke

verify-deep:
	dune build @verify-deep

fault-smoke:
	dune build @fault-smoke

# Durability: checksummed-journal salvage properties + crash-torture rounds
# that corrupt journal/checkpoint files between kill and resume.  Smoke is
# the fast (<10s) configuration; deep multiplies qcheck case counts by 10
# and runs more corruption rounds.
torture-smoke:
	dune build @torture-smoke

torture-deep:
	dune build @torture-deep

# Run-level supervision chaos campaigns: GPU faults + journal corruption +
# pool crashes + finite budgets against whole-model tuning.  Smoke sweeps 4
# campaign seeds (<10s); deep sweeps 32 and raises qcheck case counts.
chaos-smoke:
	dune build @chaos-smoke

chaos-deep:
	dune build @chaos-deep

clean:
	dune clean
