# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test verify-smoke verify-deep fault-smoke torture-smoke torture-deep chaos-smoke chaos-deep hotpath-smoke hotpath-deep bench-hotpath service-smoke service-deep bench-service net-smoke net-deep bench-net audit-smoke audit-deep bench-audit gold gold-smoke gold-deep regress bench-fleet ci clean

all: build

build:
	dune build

# Full tier-1 suite (includes @verify-smoke via the tests stanza).
test:
	dune runtest

# Ground-truth verification: exact pebble-game oracle sandwich grid +
# differential conformance harness.  Smoke is the fast (<15s) configuration;
# deep enlarges DAG grid, oracle budgets and qcheck case counts (minutes).
verify-smoke:
	dune build @verify-smoke

verify-deep:
	dune build @verify-deep

fault-smoke:
	dune build @fault-smoke

# Durability: checksummed-journal salvage properties + crash-torture rounds
# that corrupt journal/checkpoint files between kill and resume.  Smoke is
# the fast (<10s) configuration; deep multiplies qcheck case counts by 10
# and runs more corruption rounds.
torture-smoke:
	dune build @torture-smoke

torture-deep:
	dune build @torture-deep

# Run-level supervision chaos campaigns: GPU faults + journal corruption +
# pool crashes + finite budgets against whole-model tuning.  Smoke sweeps 4
# campaign seeds (<10s); deep sweeps 32 and raises qcheck case counts.
chaos-smoke:
	dune build @chaos-smoke

chaos-deep:
	dune build @chaos-deep

# Hot-path checks: histogram-vs-exact GBT ranking agreement + frontier-vs-
# legacy oracle equality.  Smoke (<10s) is part of the default runtest; deep
# adds a 2k-sample GBT speedup check and the 24-vertex oracle differential.
hotpath-smoke:
	dune build @hotpath-smoke

hotpath-deep:
	dune build @hotpath-deep

# Full hot-path sweep; asserts the speedup/equivalence claims and rewrites
# BENCH_hotpath.json in the cwd.
bench-hotpath:
	dune exec bench/hotpath.exe

# Tuning-service gates: protocol/cache/engine suites plus scripted kill -9 +
# corruption + restart chaos campaigns, all through the in-process Sim
# harness (<5s).  Deep widens the seed sweep and adds the live-socket
# daemon smoke (spawned domain, real Unix socket, idle deadlines, drain).
service-smoke:
	dune build @service-smoke

service-deep:
	dune build @service-deep

# Cold-vs-warm cache latency, coalescing factor under a burst of identical
# requests, and corruption-recovery time; rewrites BENCH_service.json.
bench-service:
	dune exec bench/service_bench.exe

# Wire-level chaos gates: fault-plan invariants, partial-write continuation,
# byzantine-client hardening (oversized lines, slow-loris, connection
# ceiling) and live-socket chaos campaigns through a daemon kill/restart.
# Smoke runs one campaign seed plus its byte-for-byte replay (a few
# seconds); deep sweeps 16 seeds with more concurrent clients.
net-smoke:
	dune build @net-smoke

net-deep:
	dune build @net-deep

# Ask latency (p50/p99) through the resilient client against a live daemon
# at 0/10/30% injected fault rates; rewrites BENCH_net.json.
bench-net:
	dune exec bench/net_bench.exe

# Answer-integrity auditor gates: the Verify.Audit invariant suite at every
# trust boundary (cache load/hit, post-tune, client wire, gold read) plus
# the per-check / warm-hit overhead envelope and scrub throughput.  Smoke
# (<10s, part of the default runtest) measures and sanity-checks; deep
# (AUDIT_DEEP=1) raises iteration counts and audits every checked-in gold
# file against the strict policy.
audit-smoke:
	dune build @audit-smoke

audit-deep:
	dune build @audit-deep

# Audit overhead sweep; rewrites BENCH_audit.json in the cwd.
bench-audit:
	dune exec bench/audit_bench.exe

# Gold-file regression fleet: 6 CNNs x 4 simulated architectures.
# `make gold` re-records the golden per-layer results under regress/gold/
# (deterministic: two runs from a clean checkout are byte-identical) and
# seeds the shared result cache; `make regress` re-sweeps the fleet warm
# through that cache (sub-second) and diffs against gold, failing with a
# typed mismatch report on any drift.  Both rewrite BENCH_fleet.json.
# @gold-smoke (a cold 2x2 slice, part of the default runtest) and
# @gold-deep (the full fleet, cold) are the hermetic dune-side gates.
gold: build
	dune exec bin/main.exe -- gold --bench BENCH_fleet.json

regress: build
	dune exec bin/main.exe -- regress --bench BENCH_fleet.json

gold-smoke:
	dune build @gold-smoke

gold-deep:
	dune build @gold-deep

# Cross-architecture sweep bench (Figure 13 axis); rewrites BENCH_fleet.json.
bench-fleet:
	dune exec bench/fleet.exe

# The full fast gate a commit must pass: build, every test suite (the
# default runtest already folds in the @*-smoke aliases, including the
# cold gold-file slice @gold-smoke and the audit envelope @audit-smoke),
# and the bench smoke checks (parallel == sequential scaling, service
# cache/coalescing, network resilience, fleet sweep, audit overhead).
ci: build
	dune runtest
	dune build @bench-smoke @service-bench-smoke @net-bench-smoke @fleet-smoke @audit-smoke

clean:
	dune clean
