(* Time every CNN in the zoo against the simulated vendor library on a chosen
   architecture, reusing tuning results across runs through a persistent log:
   the first invocation tunes every distinct layer shape; later invocations
   load the log and finish in seconds.

   The timing itself routes through the fleet-sweep machinery (Regress.Sweep)
   — the same code path `conv-io gold` and `conv-io regress` enforce — so the
   zoo table and the golden files can never disagree about what was measured.

   Run with: dune exec examples/model_zoo.exe [-- arch [log-file]]
   where arch is one of: 1080ti, v100, titanx, gfx906 (default v100). *)

let () =
  let arch, log_path =
    match Array.to_list Sys.argv with
    | _ :: alias :: rest -> (
      match Gpu_sim.Arch.of_alias alias with
      | Some arch ->
        (arch, match rest with path :: _ -> path | [] -> "model_zoo_tuning.log")
      | None ->
        Printf.eprintf "unknown architecture %S (expected %s)\n" alias
          (String.concat ", " (List.map Gpu_sim.Arch.alias Gpu_sim.Arch.all));
        exit 2)
    | _ -> (Gpu_sim.Arch.v100, "model_zoo_tuning.log")
  in
  let primed = Cnn.Runner.prime_from_log log_path in
  if primed > 0 then
    Printf.printf "Loaded %d tuned configurations from %s.\n\n" primed log_path
  else Printf.printf "No tuning log at %s yet; tuning from scratch.\n\n" log_path;

  let settings = { Regress.Sweep.default_settings with budget = 150 } in
  let pairs =
    List.map
      (fun m -> Regress.Sweep.run_pair ~settings arch m)
      (Regress.Sweep.fleet_models ())
  in
  Util.Table.print (Regress.Sweep.summary_table pairs);

  let written = Cnn.Runner.save_log log_path in
  Printf.printf "\nSaved %d tuned configurations to %s (rerun to skip tuning).\n" written
    log_path;
  print_endline
    "MobileNet's depthwise layers tune through the same engine: the grouped dataflow";
  print_endline "keeps the optimality condition with the per-group channel count."
