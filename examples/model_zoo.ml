(* Time every CNN in the zoo against the simulated cuDNN, reusing tuning
   results across runs through a persistent log: the first invocation tunes
   every distinct layer shape; later invocations load the log and finish in
   seconds.

   Run with: dune exec examples/model_zoo.exe [-- log-file] *)

let () =
  let log_path =
    match Array.to_list Sys.argv with _ :: path :: _ -> path | _ -> "model_zoo_tuning.log"
  in
  let arch = Gpu_sim.Arch.v100 in
  let primed = Cnn.Runner.prime_from_log log_path in
  if primed > 0 then
    Printf.printf "Loaded %d tuned configurations from %s.\n\n" primed log_path
  else Printf.printf "No tuning log at %s yet; tuning from scratch.\n\n" log_path;

  let table =
    Util.Table.create
      [ "model"; "conv layers"; "GFlop"; "ours (us)"; "cuDNN (us)"; "speedup" ]
  in
  List.iter
    (fun (m : Cnn.Models.t) ->
      let t = Cnn.Runner.time_model ~max_measurements:150 arch m in
      Util.Table.add_row table
        [
          t.model;
          string_of_int (Cnn.Models.num_layers m);
          Printf.sprintf "%.2f" (Cnn.Models.total_flops m /. 1e9);
          Printf.sprintf "%.0f" t.ours_total_us;
          Printf.sprintf "%.0f" t.library_total_us;
          Printf.sprintf "%.2fx" t.speedup;
        ])
    (Cnn.Models.evaluation_models @ [ Cnn.Models.mobilenet ]);
  Util.Table.print table;

  let written = Cnn.Runner.save_log log_path in
  Printf.printf "\nSaved %d tuned configurations to %s (rerun to skip tuning).\n" written
    log_path;
  print_endline
    "MobileNet's depthwise layers tune through the same engine: the grouped dataflow";
  print_endline "keeps the optimality condition with the per-group channel count."
