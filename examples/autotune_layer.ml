(* Auto-tune AlexNet conv3 on the simulated V100 with the paper's engine
   (optimality-condition-pruned domain) and compare against the TVM-style
   search over the full domain — a single-layer slice of Table 2.

   Run with: dune exec examples/autotune_layer.exe *)

let () =
  let arch = Gpu_sim.Arch.v100 in
  let spec = (List.nth Cnn.Models.alexnet_table2 2).spec in
  Printf.printf "Tuning AlexNet conv3 on %s: %s\n\n" arch.name (Conv.Conv_spec.to_string spec);

  let ate_space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let tvm_space = Core.Search_space.make ~pruned:false arch spec Core.Config.Direct_dataflow in
  Printf.printf "Search space: ATE %.3g configurations, TVM-style %.3g (%.0f%% kept)\n\n"
    (Core.Search_space.size ate_space)
    (Core.Search_space.size tvm_space)
    (100.0 *. Core.Search_space.size ate_space /. Core.Search_space.size tvm_space);

  let ate = Core.Tuner.tune ~seed:7 ~max_measurements:300 ~space:ate_space () in
  let tvm = Core.Baselines.tvm ~seed:7 ~max_measurements:300 arch spec Core.Config.Direct_dataflow in

  let report name (r : Core.Tuner.result) =
    Printf.printf "%-10s best %.1f us (%.0f GFlops), %d measurements, converged at #%d\n" name
      r.best_runtime_us r.best_gflops r.measurements r.converged_at;
    Printf.printf "           config: %s\n" (Core.Config.to_string r.best_config)
  in
  report "ATE" ate;
  report "TVM-style" tvm;

  Printf.printf "\nBest-so-far curves (GFlops at measurement k):\n";
  let sample (r : Core.Tuner.result) k =
    let rec at = function
      | [] -> None
      | (p : Core.Tuner.progress) :: rest ->
        if p.measurement = k then Some p.best_runtime_us else at rest
    in
    match at r.history with
    | Some runtime -> Printf.sprintf "%.0f" (Core.Tuner.nominal_gflops spec ~runtime_us:runtime)
    | None -> "-"
  in
  let table = Util.Table.create [ "measurement"; "ATE"; "TVM-style" ] in
  List.iter
    (fun k -> Util.Table.add_row table [ string_of_int k; sample ate k; sample tvm k ])
    [ 1; 8; 16; 32; 64; 128; 200; 300 ];
  Util.Table.print table;

  let lib = Gpu_sim.Library_sim.cudnn_direct arch spec in
  Printf.printf "\ncuDNN-style library baseline: %.1f us (%s) -> ATE speedup %.2fx\n"
    lib.runtime_us lib.algorithm (lib.runtime_us /. ate.best_runtime_us);

  (* The tuned configuration as a readable artifact: the kernel template it
     denotes, its roofline breakdown, and a tuning-log line that future
     sessions (Cnn.Runner.prime_from_log) can reuse without re-searching. *)
  Printf.printf "\nKernel template of the winning configuration:\n%s\n"
    (Core.Template.render arch spec ate.best_config);
  Printf.printf "\nRoofline:\n%s\n"
    (Gpu_sim.Roofline.to_string
       (Gpu_sim.Roofline.analyze arch (Core.Config.to_kernel arch spec ate.best_config)));
  let entry = Core.Tuning_log.entry_of_result arch spec ate in
  Printf.printf "\nTuning-log record (append to a .log file to reuse):\n%s\n"
    (Core.Tuning_log.to_line entry)
