(* Per-instance cost report for the ground-truth sandwich grid.

   Prints, for every (instance, S) pair in [Verify.Sandwich.grid], the
   analytic lower bound, the exact oracle Q_opt, the best schedule cost, the
   number of positions the oracle expanded and the wall time — handy when
   sizing the smoke grid against the runtest budget.

     dune exec examples/verify_grid.exe            # smoke grid
     VERIFY_DEEP=1 dune exec examples/verify_grid.exe   # deep grid *)

let () =
  let deep = Sys.getenv_opt "VERIFY_DEEP" <> None in
  let budget =
    match Sys.getenv_opt "VERIFY_BUDGET" with
    | Some b -> int_of_string b
    | None -> if deep then 8_000_000 else Verify.Oracle.default_budget
  in
  Printf.printf "%-34s %3s %4s %6s %6s %6s %6s %10s %8s\n" "instance" "n" "S"
    "lower" "comp" "Q_opt" "sched" "expanded" "secs";
  let total = ref 0.0 in
  List.iter
    (fun (inst, ss) ->
      List.iter
        (fun s ->
          let n = Dag.Graph.num_vertices inst.Verify.Sandwich.graph in
          let t0 = Sys.time () in
          (match Verify.Sandwich.check ~budget inst ~s with
          | exception Invalid_argument msg ->
            Printf.printf "%-34s %3d %4d  REJECTED: %s\n"
              inst.Verify.Sandwich.name n s msg
          | Error expanded ->
            Printf.printf "%-34s %3d %4d  EXHAUSTED after %d states\n"
              inst.Verify.Sandwich.name n s expanded
          | Ok c ->
            let dt = Sys.time () -. t0 in
            total := !total +. dt;
            Printf.printf "%-34s %3d %4d %6.1f %6d %6d %6d %10d %8.3f%s\n"
              inst.Verify.Sandwich.name n s c.Verify.Sandwich.analytic_lower
              c.Verify.Sandwich.compulsory_lower c.Verify.Sandwich.q_opt
              c.Verify.Sandwich.schedule_upper c.Verify.Sandwich.expanded dt
              (if c.Verify.Sandwich.holds then "" else "  *** VIOLATED ***"));
          flush stdout)
        ss)
    (Verify.Sandwich.grid ~deep);
  Printf.printf "total oracle time: %.3fs\n" !total
