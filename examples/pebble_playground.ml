(* Explore the red-blue pebble game on the Winograd DAG: how schedule order,
   eviction policy and fast-memory size change measured I/O, against the
   Theorem 4.20 lower bound — and, on DAGs small enough for exhaustive
   pebbling, the exact optimum Q_opt(S) from the Verify.Oracle solver
   sandwiched between the two.

   Run with: dune exec examples/pebble_playground.exe *)

(* Exact ground truth on toy instances: paper bound <= Q_opt <= best
   schedule.  Only feasible for tens of vertices (the game is exponential);
   the big Winograd exploration below sticks to schedule replays. *)
let oracle_demo () =
  print_endline "Exact oracle on toy DAGs (lower bound <= Q_opt <= schedule):";
  let table = Util.Table.create [ "instance"; "S"; "bound"; "Q_opt"; "best schedule" ] in
  List.iter
    (fun (inst, ss) ->
      List.iter
        (fun s ->
          match Verify.Sandwich.check inst ~s with
          | Error expanded ->
            Printf.printf "  %s S=%d: oracle budget exhausted (%d states)\n"
              inst.Verify.Sandwich.name s expanded
          | Ok c ->
            Util.Table.add_row table
              [
                inst.Verify.Sandwich.name;
                string_of_int s;
                Printf.sprintf "%.1f" c.Verify.Sandwich.analytic_lower;
                string_of_int c.Verify.Sandwich.q_opt;
                string_of_int c.Verify.Sandwich.schedule_upper;
              ])
        ss)
    [
      (Verify.Sandwich.matmul_instance ~m:2 ~k:2 ~n:1 (), [ 3; 4 ]);
      (Verify.Sandwich.conv_instance ~w:2 ~h:2 ~kw:2 ~kh:2 ~cin:1 ~cout:1 (), [ 3; 4; 6 ]);
      (Verify.Sandwich.winograd_instance ~tiles_w:2 ~tiles_h:2 ~cin:1 ~cout:1 ~e:1 ~r:1 (),
       [ 3; 4 ]);
    ];
  Util.Table.print table;
  print_endline ""

let () =
  oracle_demo ();
  let wspec =
    { Dag.Winograd_dag.tiles_w = 3; tiles_h = 3; c_in = 3; c_out = 3; e = 2; r = 3 }
  in
  let w_in, h_in = Dag.Winograd_dag.in_size wspec in
  let conv_spec = Conv.Conv_spec.make ~c_in:3 ~h_in ~w_in ~c_out:3 ~k_h:3 ~k_w:3 () in
  let dag = Dag.Winograd_dag.build wspec in
  let g = dag.graph in
  Printf.printf "Winograd F(2x2,3x3) DAG for a %dx%dx%d -> %d convolution:\n" w_in h_in
    wspec.c_in wspec.c_out;
  Printf.printf "  %d vertices (%d inputs, %d per-step: [%d; %d; %d; %d])\n\n"
    (Dag.Graph.num_vertices g) (Dag.Graph.num_inputs g)
    (Dag.Graph.num_vertices g - Dag.Graph.num_inputs g)
    (Dag.Graph.count_step g 1) (Dag.Graph.count_step g 2) (Dag.Graph.count_step g 3)
    (Dag.Graph.count_step g 4);

  let table =
    Util.Table.create
      [ "S"; "bound (Thm 4.20)"; "natural+LRU"; "natural+Belady"; "recompute+Belady";
        "by-step+LRU" ]
  in
  List.iter
    (fun s ->
      let run schedule policy =
        Pebble.Pebble_game.total_io (Pebble.Pebble_game.run g ~schedule ~s ~policy)
      in
      let natural = Dag.Winograd_dag.schedule_natural dag in
      let by_step = Dag.Winograd_dag.schedule_by_step dag in
      let recompute =
        Pebble.Pebble_game.total_io
          (Pebble.Pebble_game.run_recompute g
             ~schedule:(Dag.Winograd_dag.schedule_recompute_transforms dag)
             ~s ~policy:Pebble.Pebble_game.Belady)
      in
      Util.Table.add_row table
        [
          string_of_int s;
          Printf.sprintf "%.0f"
            (Core.Winograd_bound.q_lower ~e:2 conv_spec ~s:(float_of_int s));
          string_of_int (run natural Pebble.Pebble_game.Lru);
          string_of_int (run natural Pebble.Pebble_game.Belady);
          string_of_int recompute;
          string_of_int (run by_step Pebble.Pebble_game.Lru);
        ])
    [ 8; 16; 32; 64; 128; 256; 512; 1024 ];
  Util.Table.print table;
  print_endline "";
  print_endline
    "Belady (offline-optimal eviction) trims the natural schedule; the recomputing";
  print_endline
    "schedule re-derives kernel transforms instead of spilling them (Section 8's";
  print_endline
    "argument against the no-recompute red-blue-white model); the by-step order";
  print_endline "spills every intermediate tensor and pays for it at small S."
