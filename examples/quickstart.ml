(* Quickstart: compute one convolution four ways, check they agree, and
   compare the measured off-chip traffic of the paper's dataflow with the
   Theorem 4.12 lower bound and the Equation 21 prediction.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A mid-sized layer: 32x32 image, 16 -> 32 channels, 3x3 kernel. *)
  let spec =
    Conv.Conv_spec.make ~c_in:16 ~h_in:32 ~w_in:32 ~c_out:32 ~k_h:3 ~k_w:3 ~pad:1 ()
  in
  Printf.printf "Layer: %s\n\n" (Conv.Conv_spec.to_string spec);

  let rng = Util.Rng.create 42 in
  let input, weights = Conv.Direct.random_problem rng spec in

  (* 1. Reference direct convolution. *)
  let reference = Conv.Direct.run spec ~input ~weights in

  (* 2. im2col + blocked GEMM (the cuDNN-style library path). *)
  let via_im2col = Conv.Im2col.run spec ~input ~weights in
  Printf.printf "im2col matches direct:        %b\n" (Tensor.allclose reference via_im2col);

  (* 3. Winograd F(4x4, 3x3) through the generated Cook-Toom transforms. *)
  let via_winograd = Conv.Winograd.run ~e:4 spec ~input ~weights in
  Printf.printf "winograd F(4,3) matches:      %b\n" (Tensor.allclose reference via_winograd);

  (* 4. FFT convolution (cuDNN's third algorithm family). *)
  let via_fft = Conv.Fft_conv.run spec ~input ~weights in
  Printf.printf "FFT convolution matches:      %b\n" (Tensor.allclose reference via_fft);

  (* 5. The paper's I/O-optimal tiled dataflow, with the tile chosen by the
     optimality condition xy = Rz for a 12K-element on-chip memory. *)
  let s = 12288.0 in
  let tile = Core.Optimality.optimal_tile_direct spec ~s ~np:1 in
  let result = Conv.Tiled_direct.run spec ~tile ~input ~weights in
  Printf.printf "tiled dataflow matches:       %b\n" (Tensor.allclose reference result.output);
  Printf.printf "\nOptimal tile (xy = Rz):       %dx%dx%d  (R = %.1f)\n" tile.x tile.y
    tile.z (Conv.Conv_spec.reuse spec);

  (* Measured traffic vs theory. *)
  let measured = Conv.Io_count.total result.io in
  let predicted =
    Core.Dataflow_cost.q_dc_tile spec ~x:(float_of_int tile.x) ~y:(float_of_int tile.y)
      ~z:(float_of_int tile.z)
  in
  let bound = Core.Direct_bound.q_lower spec ~s in
  Printf.printf "\nOff-chip traffic (elements):\n";
  Printf.printf "  measured by the dataflow:   %.0f\n" measured;
  Printf.printf "  Equation 20 prediction:     %.0f\n" predicted;
  Printf.printf "  Theorem 4.12 lower bound:   %.0f\n" bound;
  Printf.printf "  dataflow / bound:           %.2fx\n" (measured /. bound);

  (* And what a naive 1x1x1-tile schedule would cost instead. *)
  let naive =
    Conv.Io_count.total
      (Conv.Tiled_direct.io_only spec ~tile:{ Conv.Tiled_direct.x = 1; y = 1; z = 1 })
  in
  Printf.printf "  naive per-output schedule:  %.0f  (%.1fx the dataflow)\n" naive
    (naive /. measured)
