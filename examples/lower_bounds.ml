(* Lower-bound tables for real CNN layers, plus an executable red-blue pebble
   game validation: the measured I/O of real schedules on the real DAG never
   dips below Theorem 4.12, and the paper's blocked schedule gets closest.

   Run with: dune exec examples/lower_bounds.exe *)

let bound_table () =
  print_endline "I/O lower bounds for AlexNet convolution layers (S = 24K elements, 96KB):";
  let s = 24576.0 in
  let table =
    Util.Table.create
      [ "layer"; "shape"; "R"; "Q_direct (Thm 4.12)"; "Q_winograd e=2 (Thm 4.20)";
        "dataflow Q_DC (Eq 21)"; "gap" ]
  in
  List.iter
    (fun (layer : Cnn.Layer.t) ->
      let spec = layer.spec in
      let direct = Core.Direct_bound.q_lower spec ~s in
      let wino =
        if Conv.Winograd.supported spec then
          Util.Table.cell_sci (Core.Winograd_bound.q_lower ~e:2 spec ~s)
        else "n/a (strided)"
      in
      let dataflow = Core.Dataflow_cost.q_dc_optimal spec ~s ~np:1 in
      Util.Table.add_row table
        [
          layer.name;
          Conv.Conv_spec.to_string spec;
          Printf.sprintf "%.2f" (Conv.Conv_spec.reuse spec);
          Util.Table.cell_sci direct;
          wino;
          Util.Table.cell_sci dataflow;
          Printf.sprintf "%.2fx" (dataflow /. direct);
        ])
    Cnn.Models.alexnet.layers;
  Util.Table.print table

let pebble_validation () =
  print_endline "";
  print_endline "Red-blue pebble game on a real direct-convolution DAG (10x10x3 -> 3, 3x3):";
  let dag_spec =
    { Dag.Conv_dag.w_in = 10; h_in = 10; c_in = 3; c_out = 3; w_ker = 3; h_ker = 3; stride = 1 }
  in
  let conv_spec = Conv.Conv_spec.make ~c_in:3 ~h_in:10 ~w_in:10 ~c_out:3 ~k_h:3 ~k_w:3 () in
  let dag = Dag.Conv_dag.build dag_spec in
  let table =
    Util.Table.create [ "S"; "bound (Thm 4.12)"; "blocked"; "output-stationary"; "by-step" ]
  in
  List.iter
    (fun s ->
      let run schedule =
        Pebble.Pebble_game.total_io
          (Pebble.Pebble_game.run dag.graph ~schedule ~s ~policy:Pebble.Pebble_game.Lru)
      in
      let bound = Core.Direct_bound.q_lower conv_spec ~s:(float_of_int s) in
      Util.Table.add_row table
        [
          string_of_int s;
          Printf.sprintf "%.0f" bound;
          string_of_int (run (Dag.Conv_dag.schedule_blocked dag ~bx:4 ~by:4 ~bz:1));
          string_of_int (run (Dag.Conv_dag.schedule_output_stationary dag));
          string_of_int (run (Dag.Conv_dag.schedule_by_step dag));
        ])
    [ 8; 16; 32; 64; 128; 256; 512 ];
  Util.Table.print table;
  print_endline "";
  print_endline
    "Every schedule sits above the bound; the blocked (Section 5.2) schedule is closest,";
  print_endline "and the by-step schedule shows what ignoring the dataflow costs."

let () =
  bound_table ();
  pebble_validation ()
