type spec = {
  w_in : int;
  h_in : int;
  c_in : int;
  c_out : int;
  w_ker : int;
  h_ker : int;
  stride : int;
}

type t = {
  graph : Graph.t;
  spec : spec;
  w_out : int;
  h_out : int;
  input_ids : Graph.vertex array;
  kernel_ids : Graph.vertex array;
  output_ids : Graph.vertex array;
  (* Per output: its product vertices in summation order, and the left-deep
     chain vertices where [chain.(j)] consumes [products.(j + 1)]. *)
  products : Graph.vertex array array;
  chains : Graph.vertex array array;
}

let out_size s =
  let w_out = ((s.w_in - s.w_ker) / s.stride) + 1 in
  let h_out = ((s.h_in - s.h_ker) / s.stride) + 1 in
  (w_out, h_out)

let expected_internal_and_output s =
  let w_out, h_out = out_size s in
  ((2 * s.w_ker * s.h_ker * s.c_in) - 1) * w_out * h_out * s.c_out

let build s =
  if s.stride < 1 then invalid_arg "Conv_dag.build: stride must be >= 1";
  if s.w_in < s.w_ker || s.h_in < s.h_ker then
    invalid_arg "Conv_dag.build: kernel larger than image";
  let w_out, h_out = out_size s in
  let g = Graph.create () in
  let input_ids = Array.init (s.c_in * s.h_in * s.w_in) (fun _ -> Graph.add_input g) in
  let kernel_ids =
    Array.init (s.c_out * s.c_in * s.h_ker * s.w_ker) (fun _ -> Graph.add_input g)
  in
  let input_at ~ci ~h ~w = input_ids.((ci * s.h_in * s.w_in) + (h * s.w_in) + w) in
  let kernel_at ~co ~ci ~kh ~kw =
    kernel_ids.((((((co * s.c_in) + ci) * s.h_ker) + kh) * s.w_ker) + kw)
  in
  let n_out = s.c_out * h_out * w_out in
  let k = s.c_in * s.h_ker * s.w_ker in
  let output_ids = Array.make n_out (-1) in
  let products = Array.make n_out [||] in
  let chains = Array.make n_out [||] in
  let out_pos = ref 0 in
  for co = 0 to s.c_out - 1 do
    for ho = 0 to h_out - 1 do
      for wo = 0 to w_out - 1 do
        let prods = Array.make k (-1) in
        let p = ref 0 in
        for ci = 0 to s.c_in - 1 do
          for kh = 0 to s.h_ker - 1 do
            for kw = 0 to s.w_ker - 1 do
              let h = (ho * s.stride) + kh and w = (wo * s.stride) + kw in
              let v =
                Graph.add_compute g ~step:1
                  ~preds:[ input_at ~ci ~h ~w; kernel_at ~co ~ci ~kh ~kw ]
              in
              prods.(!p) <- v;
              incr p
            done
          done
        done;
        (* Left-deep summation chain (Lemma 4.7): k-2 internal + 1 output. *)
        let chain = Array.make (k - 1) (-1) in
        let acc = ref prods.(0) in
        for j = 1 to k - 1 do
          let v = Graph.add_compute g ~step:2 ~preds:[ !acc; prods.(j) ] in
          chain.(j - 1) <- v;
          acc := v
        done;
        output_ids.(!out_pos) <- !acc;
        products.(!out_pos) <- prods;
        chains.(!out_pos) <- chain;
        incr out_pos
      done
    done
  done;
  { graph = g; spec = s; w_out; h_out; input_ids; kernel_ids; output_ids; products; chains }

let schedule_output_stationary t = Graph.compute_vertices t.graph

let schedule_by_step t =
  let g = t.graph in
  let all = Graph.compute_vertices g in
  let step1 = Array.of_list (List.filter (fun v -> Graph.step g v = 1) (Array.to_list all)) in
  let step2 = Array.of_list (List.filter (fun v -> Graph.step g v = 2) (Array.to_list all)) in
  Array.append step1 step2

let schedule_blocked t ~bx ~by ~bz =
  if bx < 1 || by < 1 || bz < 1 then invalid_arg "Conv_dag.schedule_blocked: bad block";
  let s = t.spec in
  let r2 = s.w_ker * s.h_ker in
  let order = ref [] in
  let emit v = order := v :: !order in
  let out_index ~co ~ho ~wo = (((co * t.h_out) + ho) * t.w_out) + wo in
  let block_outputs co0 ho0 wo0 =
    let acc = ref [] in
    for co = min (co0 + bz) s.c_out - 1 downto co0 do
      for ho = min (ho0 + by) t.h_out - 1 downto ho0 do
        for wo = min (wo0 + bx) t.w_out - 1 downto wo0 do
          acc := out_index ~co ~ho ~wo :: !acc
        done
      done
    done;
    !acc
  in
  let co0 = ref 0 in
  while !co0 < s.c_out do
    let ho0 = ref 0 in
    while !ho0 < t.h_out do
      let wo0 = ref 0 in
      while !wo0 < t.w_out do
        let outs = block_outputs !co0 !ho0 !wo0 in
        (* Slide along the channel direction (alpha = 1): per channel, finish
           the products of that channel for every output in the block and fold
           them into the running partial sums. *)
        for ci = 0 to s.c_in - 1 do
          List.iter
            (fun o ->
              let prods = t.products.(o) and chain = t.chains.(o) in
              for tap = 0 to r2 - 1 do
                emit prods.((ci * r2) + tap)
              done;
              (* chain.(j-1) consumes prods.(j); after channel ci the ready
                 chain segment is j in [max 1 (ci*r2) , ci*r2 + r2 - 1]. *)
              let j_lo = max 1 (ci * r2) and j_hi = (ci * r2) + r2 - 1 in
              for j = j_lo to j_hi do
                emit chain.(j - 1)
              done)
            outs
        done;
        wo0 := !wo0 + bx
      done;
      ho0 := !ho0 + by
    done;
    co0 := !co0 + bz
  done;
  Array.of_list (List.rev !order)
