(** Library entry point: DAG substrate for the red-blue pebble game. *)

module Graph = Graph
module Trees = Trees
module Conv_dag = Conv_dag
module Winograd_dag = Winograd_dag
module Matmul_dag = Matmul_dag
