type spec = {
  tiles_w : int;
  tiles_h : int;
  c_in : int;
  c_out : int;
  e : int;
  r : int;
}

type t = {
  graph : Graph.t;
  spec : spec;
  input_ids : Graph.vertex array;
  kernel_ids : Graph.vertex array;
  output_ids : Graph.vertex array;
  (* Construction-order id spans, for building alternative (including
     recomputing) schedules: [p_spans.(tile).(ci)] covers the input-transform
     trees of one tile channel; [work_spans.(tile).(co)] covers one output
     channel's steps 2-4; [j_span] covers all kernel transforms. *)
  j_span : int * int;
  j_spans : (int * int) array array;  (* [co].[ci] *)
  p_spans : (int * int) array array;
  work_spans : (int * int) array array;
}

let alpha s = s.e + s.r - 1

let out_size s = (s.tiles_w * s.e, s.tiles_h * s.e)

let in_size s = ((s.tiles_w * s.e) + s.r - 1, (s.tiles_h * s.e) + s.r - 1)

let expected_internal_and_output_order s =
  let w_out, h_out = out_size s in
  let a = alpha s in
  2 * w_out * h_out * s.c_out * s.c_in * a * a * a * a / (s.e * s.e)

let build s =
  if s.e < 1 || s.r < 1 then invalid_arg "Winograd_dag.build: bad tile sizes";
  let a = alpha s in
  let w_in, h_in = in_size s in
  let g = Graph.create () in
  let input_ids = Array.init (s.c_in * h_in * w_in) (fun _ -> Graph.add_input g) in
  let kernel_ids =
    Array.init (s.c_out * s.c_in * s.r * s.r) (fun _ -> Graph.add_input g)
  in
  let input_at ~ci ~h ~w = input_ids.((ci * h_in * w_in) + (h * w_in) + w) in
  let kernel_taps ~co ~ci =
    List.init (s.r * s.r) (fun i -> kernel_ids.((((co * s.c_in) + ci) * s.r * s.r) + i))
  in
  let j_start = Graph.num_vertices g in
  let j_spans = Array.make_matrix s.c_out s.c_in (0, 0) in
  (* Step 1b: transformed kernels J.(co).(ci).(pos), one linear-combination
     tree per transformed position over the r*r weights. *)
  let j =
    Array.init s.c_out (fun co ->
        Array.init s.c_in (fun ci ->
            let start = Graph.num_vertices g in
            let taps = kernel_taps ~co ~ci in
            let trees =
              Array.init (a * a) (fun _ -> Trees.linear_combination g ~step:1 taps)
            in
            j_spans.(co).(ci) <- (start, Graph.num_vertices g);
            trees))
  in
  let j_span = (j_start, Graph.num_vertices g) in
  let n_tiles = s.tiles_h * s.tiles_w in
  let output_ids = Array.make (s.c_out * n_tiles * s.e * s.e) (-1) in
  let p_spans = Array.make_matrix n_tiles s.c_in (0, 0) in
  let work_spans = Array.make_matrix n_tiles s.c_out (0, 0) in
  for th = 0 to s.tiles_h - 1 do
    for tw = 0 to s.tiles_w - 1 do
      let tile = (th * s.tiles_w) + tw in
      (* Step 1a: transformed input tile P.(ci).(pos). *)
      let p =
        Array.init s.c_in (fun ci ->
            let start = Graph.num_vertices g in
            let window =
              List.init (a * a) (fun i ->
                  let dh = i / a and dw = i mod a in
                  input_at ~ci ~h:((th * s.e) + dh) ~w:((tw * s.e) + dw))
            in
            let trees =
              Array.init (a * a) (fun _ -> Trees.linear_combination g ~step:1 window)
            in
            p_spans.(tile).(ci) <- (start, Graph.num_vertices g);
            trees)
      in
      for co = 0 to s.c_out - 1 do
        let work_start = Graph.num_vertices g in
        (* Step 2: Lambda = P . J, elementwise over (ci, pos). *)
        let lambda =
          Array.init s.c_in (fun ci ->
              Array.init (a * a) (fun pos ->
                  Graph.add_compute g ~step:2 ~preds:[ p.(ci).(pos); j.(co).(ci).(pos) ]))
        in
        (* Step 3: sum along the channel direction into Pi.(pos). *)
        let pi =
          Array.init (a * a) (fun pos ->
              Trees.summation g ~step:3 (List.init s.c_in (fun ci -> lambda.(ci).(pos))))
        in
        (* Step 4: e*e outputs, each a linear combination of all of Pi. *)
        let pi_list = Array.to_list pi in
        for oy = 0 to s.e - 1 do
          for ox = 0 to s.e - 1 do
            let v = Trees.linear_combination g ~step:4 pi_list in
            let o =
              (((co * n_tiles) + tile) * s.e * s.e) + (oy * s.e) + ox
            in
            output_ids.(o) <- v
          done
        done;
        work_spans.(tile).(co) <- (work_start, Graph.num_vertices g)
      done
    done
  done;
  { graph = g; spec = s; input_ids; kernel_ids; output_ids; j_span; j_spans; p_spans;
    work_spans }

let schedule_natural t = Graph.compute_vertices t.graph

(* Recomputing schedule: instead of computing all kernel transforms once and
   spilling/reloading them across tiles (they are far too many to stay
   resident), re-derive one output channel's transforms from the raw weights
   right before using them — trading arithmetic for I/O, exactly the
   optimisation the paper notes cannot be expressed in the no-recompute
   red-blue-white model.  Each (co, ci) J span appears once per tile. *)
let schedule_recompute_transforms t =
  let span (a, b) = Array.init (b - a) (fun i -> a + i) in
  let s = t.spec in
  let n_tiles = s.tiles_w * s.tiles_h in
  let pieces = ref [] in
  for tile = 0 to n_tiles - 1 do
    for ci = 0 to s.c_in - 1 do
      pieces := span t.p_spans.(tile).(ci) :: !pieces
    done;
    for co = 0 to s.c_out - 1 do
      for ci = 0 to s.c_in - 1 do
        pieces := span t.j_spans.(co).(ci) :: !pieces
      done;
      pieces := span t.work_spans.(tile).(co) :: !pieces
    done
  done;
  Array.concat (List.rev !pieces)

let schedule_by_step t =
  let g = t.graph in
  let all = Graph.compute_vertices g in
  let by_step s =
    Array.of_list (List.filter (fun v -> Graph.step g v = s) (Array.to_list all))
  in
  Array.concat [ by_step 1; by_step 2; by_step 3; by_step 4 ]
