type spec = { m : int; k : int; n : int }

type t = {
  graph : Graph.t;
  spec : spec;
  a_ids : Graph.vertex array;
  b_ids : Graph.vertex array;
  c_ids : Graph.vertex array;
  products : Graph.vertex array array;
  chains : Graph.vertex array array;
}

let expected_internal_and_output s = ((2 * s.k) - 1) * s.m * s.n

let build s =
  if s.m < 1 || s.k < 2 || s.n < 1 then
    invalid_arg "Matmul_dag.build: need m, n >= 1 and k >= 2";
  let g = Graph.create () in
  let a_ids = Array.init (s.m * s.k) (fun _ -> Graph.add_input g) in
  let b_ids = Array.init (s.k * s.n) (fun _ -> Graph.add_input g) in
  let n_out = s.m * s.n in
  let c_ids = Array.make n_out (-1) in
  let products = Array.make n_out [||] in
  let chains = Array.make n_out [||] in
  for i = 0 to s.m - 1 do
    for j = 0 to s.n - 1 do
      let o = (i * s.n) + j in
      let prods =
        Array.init s.k (fun p ->
            Graph.add_compute g ~step:1
              ~preds:[ a_ids.((i * s.k) + p); b_ids.((p * s.n) + j) ])
      in
      let chain = Array.make (s.k - 1) (-1) in
      let acc = ref prods.(0) in
      for p = 1 to s.k - 1 do
        let v = Graph.add_compute g ~step:2 ~preds:[ !acc; prods.(p) ] in
        chain.(p - 1) <- v;
        acc := v
      done;
      c_ids.(o) <- !acc;
      products.(o) <- prods;
      chains.(o) <- chain
    done
  done;
  { graph = g; spec = s; a_ids; b_ids; c_ids; products; chains }

let schedule_output_stationary t = Graph.compute_vertices t.graph

let schedule_by_step t =
  let g = t.graph in
  let all = Graph.compute_vertices g in
  let by s = Array.of_list (List.filter (fun v -> Graph.step g v = s) (Array.to_list all)) in
  Array.append (by 1) (by 2)

let schedule_blocked t ~bi ~bj =
  if bi < 1 || bj < 1 then invalid_arg "Matmul_dag.schedule_blocked: bad tile";
  let s = t.spec in
  let order = ref [] in
  let emit v = order := v :: !order in
  let i0 = ref 0 in
  while !i0 < s.m do
    let j0 = ref 0 in
    while !j0 < s.n do
      (* Stream the reduction dimension: per p, emit each output's product
         and the chain node it unlocks — partials stay resident. *)
      for p = 0 to s.k - 1 do
        for i = !i0 to min (!i0 + bi) s.m - 1 do
          for j = !j0 to min (!j0 + bj) s.n - 1 do
            let o = (i * s.n) + j in
            emit t.products.(o).(p);
            if p >= 1 then emit t.chains.(o).(p - 1)
          done
        done
      done;
      j0 := !j0 + bj
    done;
    i0 := !i0 + bi
  done;
  Array.of_list (List.rev !order)
