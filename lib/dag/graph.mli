(** Computation DAGs for the red-blue pebble game.

    A vertex is either an input (no predecessors; holds a blue pebble at the
    start of the game) or a compute vertex belonging to one step of the
    multi-step partition (Definition 4.1 of the paper).  Vertices are dense
    integer ids issued in construction order, which is guaranteed to be a
    topological order. *)

type vertex = int

type t

val create : unit -> t

val add_input : t -> vertex
(** New input vertex. *)

val add_compute : t -> step:int -> preds:vertex list -> vertex
(** New compute vertex in sub-computation [step] (1-based), depending on
    [preds].  Raises [Invalid_argument] if a predecessor id has not been
    issued yet (which would break topological order). *)

val num_vertices : t -> int
val num_inputs : t -> int

val is_input : t -> vertex -> bool
val step : t -> vertex -> int
(** Step of a compute vertex; 0 for inputs. *)

val preds : t -> vertex -> vertex list
val succs : t -> vertex -> vertex list
val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val outputs : t -> vertex list
(** Vertices with no successors (ascending id order); these must carry blue
    pebbles when the game ends. *)

val compute_vertices : t -> vertex array
(** All non-input vertices in ascending (topological) order. *)

val count_step : t -> int -> int
(** Number of compute vertices in a given step. *)

val max_in_degree : t -> int
(** Largest in-degree over compute vertices; a pebble game needs at least
    this many red pebbles plus one. *)

val validate_topological : t -> vertex array -> bool
(** [validate_topological t order] checks that [order] enumerates every
    compute vertex exactly once and never schedules a vertex before one of
    its compute predecessors. *)
