let summation g ~step inputs =
  match inputs with
  | [] -> invalid_arg "Trees.summation: empty input list"
  | [ only ] -> Graph.add_compute g ~step ~preds:[ only ]
  | first :: rest ->
    (* Left-deep chain: (((a + b) + c) + d) ... exactly k-2 internal vertices
       and one output, as in Lemma 4.7. *)
    List.fold_left
      (fun acc v -> Graph.add_compute g ~step ~preds:[ acc; v ])
      first rest

let linear_combination g ~step inputs =
  if inputs = [] then invalid_arg "Trees.linear_combination: empty input list";
  (* Coefficient multiplications: unary vertices (coefficients live in fast
     memory for the whole game and are not DAG vertices). *)
  let scaled = List.map (fun v -> Graph.add_compute g ~step ~preds:[ v ]) inputs in
  match scaled with
  | [ only ] -> only
  | first :: rest ->
    List.fold_left (fun acc v -> Graph.add_compute g ~step ~preds:[ acc; v ]) first rest
  | [] -> assert false

let summation_vertex_count k =
  assert (k >= 2);
  k - 1

let linear_combination_vertex_count k =
  assert (k >= 2);
  (2 * k) - 1
