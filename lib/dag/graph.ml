type vertex = int

type t = {
  mutable steps : int array; (* 0 = input, >= 1 = sub-computation index *)
  mutable preds : vertex list array;
  mutable succs : vertex list array;
  mutable size : int;
  mutable inputs : int;
}

let initial_capacity = 1024

let create () =
  {
    steps = Array.make initial_capacity 0;
    preds = Array.make initial_capacity [];
    succs = Array.make initial_capacity [];
    size = 0;
    inputs = 0;
  }

let grow t =
  let capacity = Array.length t.steps in
  if t.size = capacity then begin
    let next = capacity * 2 in
    let extend fill a =
      let b = Array.make next fill in
      Array.blit a 0 b 0 capacity;
      b
    in
    t.steps <- extend 0 t.steps;
    t.preds <- extend [] t.preds;
    t.succs <- extend [] t.succs
  end

let add_input t =
  grow t;
  let v = t.size in
  t.size <- v + 1;
  t.inputs <- t.inputs + 1;
  v

let add_compute t ~step ~preds =
  if step < 1 then invalid_arg "Graph.add_compute: step must be >= 1";
  grow t;
  let v = t.size in
  List.iter
    (fun p ->
      if p < 0 || p >= v then invalid_arg "Graph.add_compute: predecessor not yet issued";
      t.succs.(p) <- v :: t.succs.(p))
    preds;
  t.steps.(v) <- step;
  t.preds.(v) <- preds;
  t.size <- v + 1;
  v

let num_vertices t = t.size
let num_inputs t = t.inputs
let is_input t v = t.steps.(v) = 0
let step t v = t.steps.(v)
let preds t v = t.preds.(v)
let succs t v = t.succs.(v)
let out_degree t v = List.length t.succs.(v)
let in_degree t v = List.length t.preds.(v)

let outputs t =
  let acc = ref [] in
  for v = t.size - 1 downto 0 do
    if t.succs.(v) = [] then acc := v :: !acc
  done;
  !acc

let compute_vertices t =
  let n = t.size - t.inputs in
  let out = Array.make (max n 1) 0 in
  let pos = ref 0 in
  for v = 0 to t.size - 1 do
    if t.steps.(v) > 0 then begin
      out.(!pos) <- v;
      incr pos
    end
  done;
  Array.sub out 0 n

let count_step t s =
  let acc = ref 0 in
  for v = 0 to t.size - 1 do
    if t.steps.(v) = s then incr acc
  done;
  !acc

let max_in_degree t =
  let worst = ref 0 in
  for v = 0 to t.size - 1 do
    worst := max !worst (List.length t.preds.(v))
  done;
  !worst

let validate_topological t order =
  let expected = t.size - t.inputs in
  Array.length order = expected
  && begin
       let done_ = Array.make t.size false in
       (* Inputs are always available. *)
       for v = 0 to t.size - 1 do
         if t.steps.(v) = 0 then done_.(v) <- true
       done;
       let ok = ref true in
       Array.iter
         (fun v ->
           if is_input t v || done_.(v) then ok := false
           else if List.exists (fun p -> not done_.(p)) t.preds.(v) then ok := false
           else done_.(v) <- true)
         order;
       !ok
     end
