(** DAG of the Winograd algorithm F(e x e, r x r) (Figure 5 of the paper).

    Four steps, matching the paper's multi-step partition:

    + input tiles and kernels are transformed by linear-combination trees into
      [P] and [J] (the transformation-matrix entries are coefficients held in
      fast memory, not DAG vertices);
    + elementwise products [Lambda = P . J];
    + channel-direction summation trees producing [Pi];
    + linear-combination trees turning each [Pi] into [e*e] outputs.

    [P] tiles are shared across output channels and [J] tensors across tile
    positions, so the DAG captures the cross-sub-computation reuse that makes
    composite lower bounds hard (Section 3.1). *)

type spec = {
  tiles_w : int; (* number of e x e output tiles horizontally *)
  tiles_h : int;
  c_in : int;
  c_out : int;
  e : int; (* output tile edge *)
  r : int; (* kernel edge; stride is always 1 for Winograd *)
}

type t = {
  graph : Graph.t;
  spec : spec;
  input_ids : Graph.vertex array;
  kernel_ids : Graph.vertex array;
  output_ids : Graph.vertex array;
  j_span : int * int;  (** construction-order id span of the kernel transforms *)
  j_spans : (int * int) array array;  (** [(co)][(ci)] kernel-transform spans *)
  p_spans : (int * int) array array;  (** [(tile)][(ci)] input-transform spans *)
  work_spans : (int * int) array array;  (** [(tile)][(co)] steps 2-4 spans *)
}

val alpha : spec -> int
(** Transformed tile edge [e + r - 1]. *)

val out_size : spec -> int * int
(** [(w_out, h_out)] = [(tiles_w * e, tiles_h * e)]. *)

val in_size : spec -> int * int
(** Input image edges needed for non-overlapping output tiles with stride-1
    sliding windows: [(tiles_w * e + r - 1, tiles_h * e + r - 1)]. *)

val build : spec -> t

val expected_internal_and_output_order : spec -> int
(** The Lemma 4.14 order term
    [2 * Wout*Hout*Cout*Cin * (e+r-1)^4 / e^2], used as an O() sanity bound in
    tests (the built graph must be within a small constant of it). *)

val schedule_natural : t -> Graph.vertex array
(** Construction order: transform, multiply, sum and output-transform tile by
    tile — the Section 5.3 dataflow with a one-tile block. *)

val schedule_by_step : t -> Graph.vertex array
(** All of step 1, then step 2, then step 3, then step 4; far from optimal. *)

val schedule_recompute_transforms : t -> Graph.vertex array
(** A *recomputing* schedule (for [Pebble_game.run_recompute]): each tile's
    transformed inputs are re-derived for every output channel instead of
    being kept or spilled — trading arithmetic for I/O, the optimisation the
    paper notes its theory must (and does) cover. *)
