(** DAG of a direct convolution (Figure 4 of the paper).

    Step 1 creates one product vertex per (output position, kernel tap) pair;
    step 2 sums the [Wker*Hker*Cin] products of each output through a
    summation tree.  Lemma 4.8: the DAG has exactly
    [(2*Wker*Hker*Cin - 1) * Wout*Hout*Cout] internal-plus-output vertices. *)

type spec = {
  w_in : int;
  h_in : int;
  c_in : int;
  c_out : int;
  w_ker : int;
  h_ker : int;
  stride : int;
}

type t = {
  graph : Graph.t;
  spec : spec;
  w_out : int;
  h_out : int;
  input_ids : Graph.vertex array; (* image inputs, indexed by [c][h][w] flattened *)
  kernel_ids : Graph.vertex array; (* weights, indexed by [co][ci][kh][kw] flattened *)
  output_ids : Graph.vertex array; (* final sums, indexed by [co][ho][wo] flattened *)
  products : Graph.vertex array array;
      (* per output: step-1 product vertices in summation order *)
  chains : Graph.vertex array array;
      (* per output: left-deep chain, [chains.(o).(j)] consumes [products.(o).(j+1)] *)
}

val out_size : spec -> int * int
(** [(w_out, h_out)] for a valid (unpadded) convolution. *)

val build : spec -> t
(** Constructs the full DAG.  Vertex ids are issued output-block by output
    block, which makes the construction order itself an output-stationary
    schedule. *)

val expected_internal_and_output : spec -> int
(** The Lemma 4.8 count, for validation against the built graph. *)

val schedule_output_stationary : t -> Graph.vertex array
(** Compute vertices ordered so each output's products and summation tree are
    finished before moving to the next output — the dataflow of Section 5.2
    with a 1x1x1 output block. *)

val schedule_by_step : t -> Graph.vertex array
(** All step-1 products first, then all summation trees: the pathological
    order that maximises spilled intermediates; used to show schedules far
    from the lower bound. *)

val schedule_blocked : t -> bx:int -> by:int -> bz:int -> Graph.vertex array
(** Output-stationary schedule over [bx * by * bz] output sub-blocks
    (width, height, channel), the paper's dataflow: within a block, products
    are emitted channel-slice by channel-slice and partial sums interleaved. *)
