(** Summation and linear-combination trees (Lemmas 4.7 and 4.13).

    Both convolution DAGs are assembled from these two tree gadgets:

    - a {e summation tree} over [k] already-present vertices adds [k-2]
      internal vertices and [1] output vertex (left-deep chain of binary
      additions, matching the paper's counting);
    - a {e linear-combination tree} first multiplies each of the [k] inputs by
      a coefficient held permanently in fast memory (the red transformation
      matrix entries, which cost no I/O), adding [k] product vertices, then
      sums them, for [2k-2] internal vertices plus [1] output in total. *)

val summation : Graph.t -> step:int -> Graph.vertex list -> Graph.vertex
(** [summation g ~step inputs] builds the tree and returns its root.  With a
    single input the "tree" is a unary copy vertex so that every output of the
    step is a fresh vertex, keeping step boundaries explicit.  Requires a
    non-empty input list. *)

val linear_combination : Graph.t -> step:int -> Graph.vertex list -> Graph.vertex
(** [linear_combination g ~step inputs] multiplies each input by a coefficient
    vertexlessly (the coefficient never appears in the DAG, as in Figure 5
    where red vertices involve no I/O) and sums the scaled values.  Returns
    the root. *)

val summation_vertex_count : int -> int
(** Vertices created by [summation] on [k >= 2] inputs: [k - 1]. *)

val linear_combination_vertex_count : int -> int
(** Vertices created by [linear_combination] on [k >= 2] inputs: [2k - 1]. *)
