(** DAG of a dense matrix multiplication [C = A * B].

    A second instantiation of the paper's multi-step machinery, matching the
    classical Hong & Kung setting: step 1 forms the [m*n*k] scalar products,
    step 2 sums each output's [k] products through a summation tree.  The
    structure is the direct convolution's DAG with reuse factor [R = 1], so
    it exercises [Core.Composite_bound] on a workload the literature has
    exact results for. *)

type spec = { m : int; k : int; n : int }

type t = {
  graph : Graph.t;
  spec : spec;
  a_ids : Graph.vertex array;  (** row-major [m x k] *)
  b_ids : Graph.vertex array;  (** row-major [k x n] *)
  c_ids : Graph.vertex array;  (** row-major [m x n] outputs *)
  products : Graph.vertex array array;  (** per output, in summation order *)
  chains : Graph.vertex array array;
}

val build : spec -> t

val expected_internal_and_output : spec -> int
(** [(2k - 1) * m * n], by the Lemma 4.7/4.8 argument. *)

val schedule_output_stationary : t -> Graph.vertex array
(** Construction order: one output at a time. *)

val schedule_by_step : t -> Graph.vertex array

val schedule_blocked : t -> bi:int -> bj:int -> Graph.vertex array
(** [bi x bj] output tiles with the reduction dimension streamed — the
    classical cache-blocked GEMM schedule. *)
