(* Wire chaos with a steady hand: the plan for a connection is a pure
   function of (profile, seed, conn, payload), so a campaign that records
   its seed can replay every split point, garbage byte and reset
   bit-identically.  The executor is callback-based so the same plans run
   against live sockets and in-memory buffers alike. *)

type kind = Garbage | Truncate | Reset | Dribble | Duplicate

type profile = {
  rate : float;
  kinds : kind list;
  max_pause_ms : int;
}

let all_kinds = [ Garbage; Truncate; Reset; Dribble; Duplicate ]
let none = { rate = 0.0; kinds = all_kinds; max_pause_ms = 0 }
let default = { rate = 0.30; kinds = all_kinds; max_pause_ms = 2 }
let with_rate rate = { default with rate }

let only ?(max_pause_ms = default.max_pause_ms) kinds =
  if kinds = [] then invalid_arg "Net_faults.only: empty kind list";
  { rate = 1.0; kinds; max_pause_ms }

let kind_to_string = function
  | Garbage -> "garbage"
  | Truncate -> "truncate"
  | Reset -> "reset"
  | Dribble -> "dribble"
  | Duplicate -> "duplicate"

let profile_to_string p =
  Printf.sprintf "rate=%.2f kinds=%s max_pause_ms=%d" p.rate
    (String.concat "," (List.map kind_to_string p.kinds))
    p.max_pause_ms

type op =
  | Send of string
  | Pause_ms of int
  | Close

let describe = function
  | Send s -> Printf.sprintf "send %d bytes (%S)" (String.length s) s
  | Pause_ms n -> Printf.sprintf "pause %dms" n
  | Close -> "close"

(* One rng per (seed, conn): the draw order below is part of the replay
   contract — [fault_of] consumes exactly the prefix [plan] does before
   they diverge. *)
let rng_of ~seed ~conn = Util.Rng.create ((seed * 1_000_003) + (conn * 7919) + 17)

let draw_fault profile rng =
  if profile.kinds <> [] && Util.Rng.float rng 1.0 < profile.rate then
    Some (List.nth profile.kinds (Util.Rng.int rng (List.length profile.kinds)))
  else None

let fault_of profile ~seed ~conn = draw_fault profile (rng_of ~seed ~conn)

(* Split [s] into [Send] chunks of size in [1, max_chunk], optionally
   pausing up to [max_pause] ms between chunks.  Concatenation of the
   chunks is exactly [s]. *)
let chunked rng ?(max_pause = 0) ~max_chunk s =
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else begin
      let len = min (n - pos) (1 + Util.Rng.int rng max_chunk) in
      let acc = Send (String.sub s pos len) :: acc in
      let acc =
        if pos + len < n && max_pause > 0 then
          Pause_ms (Util.Rng.int rng (max_pause + 1)) :: acc
        else acc
      in
      go (pos + len) acc
    end
  in
  go 0 []

let garble rng line =
  let n_bytes = 1 + Util.Rng.int rng 8 in
  let junk = String.init n_bytes (fun _ -> Char.chr (Util.Rng.int rng 256)) in
  let pos = Util.Rng.int rng (String.length line + 1) in
  String.sub line 0 pos ^ junk ^ String.sub line pos (String.length line - pos)

let plan profile ~seed ~conn line =
  let rng = rng_of ~seed ~conn in
  let fault = draw_fault profile rng in
  let payload = line ^ "\n" in
  let benign_chunk = max 1 (String.length payload / 2) in
  match fault with
  | None -> chunked rng ~max_chunk:benign_chunk payload
  | Some Garbage ->
    (* The line is corrupted mid-flight; whatever frames the daemon carves
       out of it earn typed ERR parse (or a wrong-key OK the client
       rejects) — never a crash. *)
    chunked rng ~max_chunk:benign_chunk (garble rng line ^ "\n")
  | Some Truncate ->
    let keep = 1 + Util.Rng.int rng (max 1 (String.length line - 1)) in
    chunked rng ~max_chunk:benign_chunk (String.sub payload 0 keep) @ [ Close ]
  | Some Reset ->
    (* Full delivery, then the connection dies before the answer is read:
       the daemon's work is not wasted (disconnects still cache), the
       client's retry lands on the warm entry. *)
    chunked rng ~max_chunk:benign_chunk payload @ [ Close ]
  | Some Dribble ->
    chunked rng ~max_pause:profile.max_pause_ms ~max_chunk:3 payload
  | Some Duplicate ->
    (* Two deliveries, split without respect for the line boundary — the
       coalesced-write case a naive framer gets wrong. *)
    chunked rng ~max_chunk:(String.length payload) (payload ^ payload)

let delivers ops = not (List.exists (fun op -> op = Close) ops)

let default_sleep ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)

let apply ?(sleep_ms = default_sleep) ~write ~close ops =
  let rec go = function
    | [] -> `Delivered
    | Send s :: rest ->
      write s;
      go rest
    | Pause_ms n :: rest ->
      sleep_ms n;
      go rest
    | Close :: _ ->
      close ();
      `Closed
  in
  go ops
