(** Deterministic in-process service harness — chaos campaigns without
    sockets.

    A script is a list of {!event}s over logical client numbers; {!run}
    interprets it against a fresh {!Engine} on a given cache path and
    returns every response each client received, in order.  Because the
    engine is a step machine and the tuner is seeded, the same script on
    the same cache file produces byte-identical transcripts — which is what
    makes campaigns combining client disconnects, GPU faults, cache-file
    corruption ([Util.Fs_faults] between runs) and mid-run termination
    reproducible from a seed.

    A script that ends without {!event.Drain} models [kill -9]: nothing is
    flushed, the cache holds exactly the records appended so far, and a
    following {!run} on the same path models the restarted daemon. *)

type event =
  | Connect of int  (** open a session for logical client [n] *)
  | Send of int * string  (** client [n] submits one request line *)
  | Disconnect of int  (** client [n] goes away (waiting answers dropped) *)
  | Step  (** one engine step: pending lines + at most one tune *)
  | Run_until_idle  (** step until no pending work remains *)
  | Drain  (** graceful SIGTERM: finish queued tunes, flush the cache *)

type outcome = {
  responses : (int * string) list;
      (** (logical client, response line) in emission order *)
  engine : Engine.t;  (** final state, for counter/cache assertions *)
}

val run : ?settings:Engine.settings -> cache:string -> event list -> outcome
(** Interprets the script.  Unknown client numbers in [Send]/[Disconnect]
    raise [Invalid_argument] (a script bug, not a service fault).  Events
    after a [Drain] still execute — draining engines answer with typed
    [ERR draining] lines. *)

val transcript_of : int -> outcome -> string list
(** The response lines logical client [n] received, in order. *)
