(** Durable quarantine ledger — where audited-out cache records go.

    A record the auditor rejects is evidence, not garbage: it is appended
    to a sidecar file next to the cache ([<cache>.quarantine], a
    [Util.Durable] file of kind ["service-quarantine"]) with the typed
    reason tokens and the original payload bytes, never silently dropped.
    Operators inspect the ledger to tell media rot from poisoning; tests
    assert its exact contents. *)

type record = {
  reason : string;  (** comma-joined {!Verify.Audit.reason_token}s *)
  payload : string;  (** the rejected cache line, verbatim *)
}

val path_for : string -> string
(** The sidecar path for a cache file: [path ^ ".quarantine"]. *)

val append : path:string -> record -> unit
(** Appends one record durably (CRC-framed, header self-healing).  Raises
    [Invalid_argument] if the reason contains tabs or newlines, or the
    payload contains newlines (cache payloads never do — they are single
    [Util.Durable] record lines). *)

val read : string -> record list
(** All ledger records, oldest first; [[]] when the file is missing.
    Read-only: salvages without repairing, so a damaged ledger is still
    evidence. *)

val count : string -> int
(** [List.length (read path)]. *)
