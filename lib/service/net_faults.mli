(** Deterministic, seed-driven fault injection over the wire.

    The byte stream between a client and the daemon is the last failure
    domain the repo did not inject: flaky links split and coalesce writes,
    garble bytes, cut connections mid-line, dribble one byte at a time
    (slow-loris, whether malicious or just a congested path) and deliver
    duplicates.  This module reproduces all of it in the house style of
    [Util.Fs_faults] and [Gpu_sim.Faults]: every decision derives from
    [(profile, seed, connection id, payload)] — never from global state or
    the wall clock — so a chaos campaign replays bit-identically from its
    seed.

    The injector is wrappable around {e any} connection: {!plan} turns one
    outbound line into a list of abstract {!op}s, and {!apply} executes
    them against caller-supplied [write]/[close] callbacks — a real socket
    in the live campaigns, a string buffer in unit tests. *)

(** The fault vocabulary.  [Garbage], [Truncate] and [Reset] are {e lossy}
    (the request cannot be answered from this attempt); [Dribble] and
    [Duplicate] are {e deliverable} (hostile framing, but the full line
    still arrives) — the distinction the resilient client's convergence
    argument rests on. *)
type kind =
  | Garbage  (** random bytes spliced into the line mid-flight *)
  | Truncate  (** a strict prefix, then the connection dies *)
  | Reset  (** the connection is cut after the write, before the read *)
  | Dribble  (** byte-at-a-time pacing with injected pauses *)
  | Duplicate  (** the whole line delivered twice on one connection *)

type profile = {
  rate : float;  (** per-attempt probability that some fault fires *)
  kinds : kind list;  (** the faults the draw may choose, uniformly *)
  max_pause_ms : int;  (** upper bound on one injected [Dribble] pause *)
}

val none : profile
(** Rate zero: {!plan} degrades to benign random write-splitting (the
    payload always arrives intact — split/coalesced framing is exercised
    even without faults, since a correct peer must tolerate it). *)

val default : profile
(** The campaign profile: 30% fault rate over every {!kind}, pauses up to
    2ms. *)

val with_rate : float -> profile
(** {!default} with another fault rate. *)

val only : ?max_pause_ms:int -> kind list -> profile
(** Rate 1.0 restricted to the given kinds — for scripting one specific
    hostile behaviour (e.g. a pure slow-loris client). *)

val kind_to_string : kind -> string
val profile_to_string : profile -> string

(** One step of a delivery plan. *)
type op =
  | Send of string
  | Pause_ms of int
  | Close  (** abrupt close; any ops after it are unreachable *)

val describe : op -> string

val plan : profile -> seed:int -> conn:int -> string -> op list
(** [plan p ~seed ~conn line] is the delivery schedule for [line ^ "\n"]
    on logical connection [conn].  Pure: equal arguments yield equal
    plans, byte for byte.  Under [Close]-free plans the concatenation of
    the [Send] payloads is exactly [line ^ "\n"] (faults [Dribble],
    [Duplicate] and no-fault), possibly twice for [Duplicate]. *)

val fault_of : profile -> seed:int -> conn:int -> kind option
(** The fault {!plan} will inject for this (seed, connection) — the same
    draw, exposed so campaign ledgers can record intent without parsing
    plans. *)

val delivers : op list -> bool
(** [true] iff the plan keeps the connection open through the read (no
    [Close]) — a necessary condition for this attempt to be answered. *)

val apply :
  ?sleep_ms:(int -> unit) ->
  write:(string -> unit) ->
  close:(unit -> unit) ->
  op list ->
  [ `Delivered | `Closed ]
(** Executes a plan.  [sleep_ms] defaults to a real [Unix.sleepf]; tests
    pass [ignore] to run schedules instantly.  Returns [`Closed] iff the
    plan closed the connection (in which case [close] was called exactly
    once and no further ops ran). *)
