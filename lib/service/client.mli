(** The resilient client — what [conv-io ask] and the chaos campaigns use
    to talk to a daemon over a hostile wire.

    One call to {!ask} owns the whole request lifecycle: connect, send
    (optionally through a seeded {!Net_faults} plan), read with a
    per-attempt timeout, classify, and retry with capped exponential
    backoff and deterministic seeded jitter until a final answer, the
    attempt budget, or the total deadline — which is also propagated to
    the daemon as the [deadline-ms] field so the server can shed work the
    client will no longer collect.

    Retries are idempotent by construction: a [TUNE] re-sent after a torn
    connection re-addresses the same canonical cache entry, so the worst
    case is answering from the cache the first attempt already paid for.
    Two consequences shape the classifier:

    - [ERR parse] while a [TUNE] answer is expected is {e skipped}, not
      accepted: on a garbling wire the rejection is as likely the link's
      fault as the request's, and reading on (then retrying) converges to
      the real answer;
    - an [OK] whose [key] is not the hash of {e this} request's canonical
      is skipped too — the one way a garbled request can silently become a
      {e wrong} answer (bytes mutating one field into another valid spec)
      is cut off by the content address;
    - with [audit = true] (the default) every [OK] that survives the key
      check is additionally re-derived through [Verify.Audit] (wire
      policy: structural checks at full strength, float comparisons
      widened to the OK line's decimal rounding).  A suspect answer
      retries exactly like a garbled one, and the trace marks accepted
      answers with [[audit=ok]].

    Determinism: with injected [now_ms]/[sleep_ms] and a fault profile,
    the full attempt trace is a pure function of (settings, request) —
    campaign transcripts replay byte-for-byte from their seed. *)

type settings = {
  attempt_timeout_ms : int;  (** per-attempt wait for an acceptable line *)
  deadline_ms : int option;
      (** total request budget; sent to the daemon as [deadline-ms] *)
  max_attempts : int;
  backoff_base_ms : int;  (** first retry delay; doubles per attempt *)
  backoff_cap_ms : int;  (** backoff ceiling *)
  seed : int;  (** drives jitter and the fault plans *)
  faults : Net_faults.profile;  (** wire chaos for campaigns; [none] = clean *)
  conn_base : int;
      (** logical id of this client's first connection; attempt [n] uses
          [conn_base + n - 1], which is what makes two clients' fault
          plans independent and one client's replay exact *)
  audit : bool;
      (** audit received [OK] payloads through [Verify.Audit] (wire
          policy) before accepting them; a reject retries *)
}

val default_settings : settings
(** 2s attempts, no total deadline, 8 attempts, backoff 25ms doubling to a
    1s cap, seed 0, no faults, connection ids from 0, auditing on. *)

(** Why {!ask} gave up. *)
type failure =
  | Deadline_exceeded  (** the total deadline expired before an answer *)
  | Attempts_exhausted of string
      (** every attempt failed; payload describes the last failure *)

val failure_to_string : failure -> string

type attempt = {
  n : int;  (** 1-based attempt number *)
  conn : int;  (** logical connection id ([Net_faults] plan input) *)
  fault : Net_faults.kind option;  (** the fault injected on this attempt *)
  note : string;  (** outcome: the answer, or why it retried *)
}
(** One entry of the retry trace — the campaign ledger's raw material. *)

val attempt_to_string : attempt -> string

val ask :
  ?settings:settings ->
  ?now_ms:(unit -> float) ->
  ?sleep_ms:(float -> unit) ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, failure) result * attempt list
(** Sends one typed request, riding out resets, garbage, dribble, BUSY
    and daemon restarts.  [Ok response] is a final typed answer — which
    may itself be a typed error ([ERR domain], [ERR failed]: determinate
    rejections that retrying cannot change).  [BUSY retry-after] is
    honored (the hint bounds the next backoff from below), [ERR draining]
    and [ERR timeout] retry, and for [Tune] requests the [deadline-ms]
    field is refreshed with the remaining budget on every attempt.

    [now_ms] (default: a fresh monotonic clock) and [sleep_ms] (default:
    real sleep) are injectable for deterministic tests.  Never raises on
    socket errors; a daemon that is down simply costs retries. *)

val ask_raw :
  ?settings:settings ->
  ?now_ms:(unit -> float) ->
  ?sleep_ms:(float -> unit) ->
  socket:string ->
  string ->
  (Protocol.response, failure) result * attempt list
(** {!ask} for a raw request line (the CLI's [--raw] escape hatch).  No
    key check is possible, so the first line that parses as any response
    is final — except [BUSY]/[ERR draining]/[ERR timeout], which still
    retry. *)
