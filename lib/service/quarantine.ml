(* One record per rejected cache line: "reason TAB payload".  The payload
   itself contains tabs (it is a whole Result_cache line), so parsing
   splits at the *first* tab only. *)

let kind = "service-quarantine"
let path_for cache_path = cache_path ^ ".quarantine"

type record = { reason : string; payload : string }

let to_line r =
  if String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') r.reason then
    invalid_arg "Quarantine: framing bytes in reason";
  if String.exists (fun c -> c = '\n' || c = '\r') r.payload then
    invalid_arg "Quarantine: newline in payload";
  r.reason ^ "\t" ^ r.payload

let of_line line =
  match String.index_opt line '\t' with
  | Some i ->
    {
      reason = String.sub line 0 i;
      payload = String.sub line (i + 1) (String.length line - i - 1);
    }
  | None -> { reason = line; payload = "" }

let append ~path r = Util.Durable.append ~kind path (to_line r)

let read path =
  let outcome = Util.Durable.read ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  List.map of_line (Util.Durable.records outcome)

let count path = List.length (read path)
