(** The Unix-domain-socket front end of the tuning service.

    A thin, fault-tolerant accept loop around {!Engine}: line-framed reads
    with per-connection deadlines, typed rejection of malformed or
    oversized requests (the process never crashes on wire input), response
    delivery that tolerates clients vanishing mid-tune (the shared tune
    still completes and is cached), and graceful drain on SIGTERM/SIGINT —
    stop accepting, finish the queued tunes, answer every waiter, flush
    the cache atomically, remove the socket file.

    The protocol work all lives in {!Engine}/{!Protocol}; this module only
    owns file descriptors, which is what keeps the chaos campaigns honest:
    they exercise the same engine in-process through {!Sim}. *)

val serve :
  socket:string ->
  cache:string ->
  ?settings:Engine.settings ->
  ?stop:bool Atomic.t ->
  ?read_deadline_s:float ->
  ?install_signal_handlers:bool ->
  unit ->
  Engine.t
(** Binds [socket] (replacing a stale socket file), serves until [stop]
    flips to [true] — which the installed SIGTERM/SIGINT handlers do — then
    drains and returns the final engine for health reporting.

    [read_deadline_s] (default 30): a connection idle that long — no
    complete request received and nothing owed to it — gets a typed
    [ERR timeout] line and is closed, so dead or glacial clients cannot
    pin file descriptors forever.  A single line growing past
    [Protocol.max_line_bytes] without a newline earns [ERR parse] and a
    close for the same reason.

    [install_signal_handlers] (default [true]): tests hosting the daemon in
    a spawned domain pass [false] and flip [stop] themselves (signal
    handlers are process-global). *)
