(** The Unix-domain-socket front end of the tuning service.

    A thin, fault-tolerant accept loop around {!Engine}: line-framed reads
    with per-connection deadlines, typed rejection of malformed or
    oversized requests (the process never crashes on wire input), response
    delivery that tolerates clients vanishing mid-tune (the shared tune
    still completes and is cached), and graceful drain on SIGTERM/SIGINT —
    stop accepting, finish the queued tunes, answer every waiter, flush
    the cache atomically, remove the socket file.

    Byzantine clients are bounded on every axis: request-line length
    (typed [ERR parse], then close), time to finish composing a request
    (a slow-loris byte-dribbler meets the per-request deadline — receiving
    more bytes does {e not} reset it), outgoing bytes owed to a peer that
    stopped reading (bounded write buffers drained by partial-write
    continuation in the select loop), and total concurrent connections
    (past the ceiling, accept answers [BUSY retry-after] immediately and
    closes, before the backlog grows).

    The protocol work all lives in {!Engine}/{!Protocol}; this module only
    owns file descriptors, which is what keeps the chaos campaigns honest:
    they exercise the same engine in-process through {!Sim}. *)

(** The bounded outgoing buffer (exposed for the partial-write unit
    tests).  Responses are enqueued whole; {!Outbuf.flush} writes as much
    as the kernel accepts and the select loop continues stalled buffers
    when the peer's receive window reopens.  Because lines are enqueued
    atomically into a single per-connection buffer, two responses can
    never interleave on one connection, whatever the write splits. *)
module Outbuf : sig
  type t

  val create : max_bytes:int -> t

  val enqueue : t -> string -> [ `Ok | `Overflow ]
  (** Appends the bytes, refusing (without buffering anything) when the
      unwritten backlog would exceed [max_bytes]. *)

  val flush : t -> Unix.file_descr -> [ `Done | `Pending | `Closed ]
  (** One continuation step: writes until empty ([`Done]), the fd would
      block ([`Pending] — retry on writability), or the peer vanished
      ([`Closed]).  Never raises on EPIPE/ECONNRESET/EAGAIN/EINTR. *)

  val pending : t -> int
  (** Bytes accepted but not yet written. *)
end

val serve :
  socket:string ->
  cache:string ->
  ?settings:Engine.settings ->
  ?stop:bool Atomic.t ->
  ?hard_stop:bool Atomic.t ->
  ?read_deadline_s:float ->
  ?request_deadline_s:float ->
  ?max_conns:int ->
  ?max_write_buffer:int ->
  ?clock:Util.Clock.source ->
  ?install_signal_handlers:bool ->
  unit ->
  Engine.t
(** Binds [socket] (replacing a stale socket file), serves until [stop]
    flips to [true] — which the installed SIGTERM/SIGINT handlers do — then
    drains and returns the final engine for health reporting.

    [hard_stop]: flipping it exits the loop {e immediately} — no drain, no
    flush, no goodbye lines, connections cut.  The chaos campaigns use it
    as an in-process [kill -9]: everything except the append-only cache
    records already written is torn state the restart must salvage.

    [read_deadline_s] (default 30): a connection idle that long — no
    complete request received and nothing owed to it — gets a typed
    [ERR timeout] line and is closed, so dead or glacial clients cannot
    pin file descriptors forever.

    [request_deadline_s] (default 10): the slow-loris bound.  A partial
    request line that has been dribbling in this long (the clock starts at
    its first byte and is reset only by a {e completed} line), or a
    response flush stalled this long on a peer that stopped reading, earns
    [ERR timeout] and a close.  A single line growing past
    [Protocol.max_line_bytes] earns [ERR parse] and a close regardless of
    pace.

    [max_conns] (default 64): the connection ceiling.  Accepts past it are
    answered [BUSY retry-after] on the spot and closed (counted in the
    engine's [busy_rejected]).

    [max_write_buffer] (default 256 KiB): per-connection cap on response
    bytes owed; a peer that floods requests without reading past it is
    disconnected.

    [clock] (default a fresh [Util.Clock.monotonic ()]): the time source
    behind every deadline, injectable so tests step time instead of
    sleeping, and monotonic so NTP stepping the wall clock backward cannot
    silently disable deadline enforcement.  The engine's [deadline-ms]
    shedding runs off the same source.

    [install_signal_handlers] (default [true]): tests hosting the daemon in
    a spawned domain pass [false] and flip [stop] themselves (signal
    handlers are process-global). *)
