type settings = {
  attempt_timeout_ms : int;
  deadline_ms : int option;
  max_attempts : int;
  backoff_base_ms : int;
  backoff_cap_ms : int;
  seed : int;
  faults : Net_faults.profile;
  conn_base : int;
  audit : bool;
}

let default_settings =
  {
    attempt_timeout_ms = 2000;
    deadline_ms = None;
    max_attempts = 8;
    backoff_base_ms = 25;
    backoff_cap_ms = 1000;
    seed = 0;
    faults = Net_faults.none;
    conn_base = 0;
    audit = true;
  }

type failure = Deadline_exceeded | Attempts_exhausted of string

let failure_to_string = function
  | Deadline_exceeded -> "total request deadline exceeded"
  | Attempts_exhausted why -> Printf.sprintf "attempts exhausted (last: %s)" why

type attempt = {
  n : int;
  conn : int;
  fault : Net_faults.kind option;
  note : string;
}

let attempt_to_string a =
  Printf.sprintf "attempt %d conn=%d fault=%s: %s" a.n a.conn
    (match a.fault with
    | Some k -> Net_faults.kind_to_string k
    | None -> "none")
    a.note

(* -- socket plumbing ----------------------------------------------------- *)

let safe_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    safe_close fd;
    Error (Unix.error_message e)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

(* -- response classification --------------------------------------------- *)

(* [suspect] means this very attempt injected a [Garbage] fault, so the
   request the daemon answered may not be the request we meant: typed
   rejections and foreign-key results are then grounds to retry, where on a
   clean attempt they would be final (or skipped, conservatively, for a
   foreign key that should be impossible).

   [audit] is the client-side trust boundary: a [Verify.Audit] check of any
   OK payload before it is accepted as final.  An audit reject retries
   exactly like a garbled answer — the daemon (or the wire) handed us
   something whose analytic claims do not re-derive, and asking again is
   strictly better than returning it. *)
let classify ~expected_key ~suspect ~audit line =
  match Protocol.parse_response line with
  | None -> `Skip
  | Some (Protocol.Busy { retry_after_s }) -> `Busy retry_after_s
  | Some (Protocol.Error Protocol.Draining) -> `Retry "daemon draining"
  | Some (Protocol.Error Protocol.Timeout) -> `Retry "server-side timeout"
  | Some (Protocol.Error Protocol.Deadline) ->
    `Retry "server shed the expired request"
  | Some (Protocol.Error (Protocol.Parse _) as resp) ->
    if suspect then `Retry "garbled request rejected as unparseable"
    else ( match expected_key with None -> `Final resp | Some _ -> `Skip)
  | Some (Protocol.Result p as resp) -> (
    match expected_key with
    | Some k when not (String.equal p.Protocol.key k) ->
      if suspect then `Retry "answered under a foreign key" else `Skip
    | _ -> (
      match audit with
      | None -> `Final resp
      | Some f -> (
        match (f p : Verify.Audit.verdict) with
        | Verify.Audit.Ok -> `Final resp
        | Verify.Audit.Suspect reasons ->
          `Retry
            ("audit rejected the answer: "
            ^ String.concat "," (List.map Verify.Audit.reason_token reasons)))))
  | Some ((Protocol.Pong | Protocol.Stats_reply _) as resp) -> (
    match expected_key with Some _ -> `Skip | None -> `Final resp)
  | Some (Protocol.Error (Protocol.Domain _ | Protocol.Failed _) as resp) ->
    if suspect && expected_key <> None then
      `Retry "typed error on a garbled attempt"
    else `Final resp

let read_answer ~now_ms ~deadline_at ~expected_key ~suspect ~audit fd =
  let pending = ref "" in
  let chunk = Bytes.create 512 in
  let next_line () =
    match String.index_opt !pending '\n' with
    | None -> None
    | Some i ->
      let line = String.sub !pending 0 i in
      pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
      Some line
  in
  let rec loop () =
    match next_line () with
    | Some line -> (
      match classify ~expected_key ~suspect ~audit line with
      | `Final resp -> `Answer resp
      | `Busy r -> `Busy r
      | `Retry reason -> `Retry reason
      | `Skip -> loop ())
    | None ->
      let rem = deadline_at -. now_ms () in
      if rem <= 0.0 then `Retry "attempt timed out waiting for an answer"
      else (
        (* Select waits are capped so an injected clock that jumps between
           calls still terminates the loop promptly. *)
        let timeout = Float.min 0.25 (rem /. 1000.0) in
        match Unix.select [ fd ] [] [] timeout with
        | [], _, _ -> loop ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> `Retry "connection closed before an acceptable answer"
          | k ->
            pending := !pending ^ Bytes.sub_string chunk 0 k;
            loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error (e, _, _) ->
            `Retry ("read: " ^ Unix.error_message e))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

(* -- one attempt --------------------------------------------------------- *)

let run_attempt ~settings ~now_ms ~sleep_ms ~socket ~conn ~line ~expected_key
    ~audit ~fault ~rem_ms =
  match connect socket with
  | Error msg -> `Retry ("connect: " ^ msg)
  | Ok fd ->
    let closed = ref false in
    let close () =
      if not !closed then (
        closed := true;
        safe_close fd)
    in
    let send_error = ref None in
    let write s =
      if !send_error = None then
        match write_all fd s with
        | Ok () -> ()
        | Error m -> send_error := Some m
    in
    let ops = Net_faults.plan settings.faults ~seed:settings.seed ~conn line in
    let status =
      Net_faults.apply
        ~sleep_ms:(fun ms -> sleep_ms (float_of_int ms))
        ~write ~close ops
    in
    let result =
      match (status, !send_error) with
      | `Closed, _ ->
        `Retry
          (Printf.sprintf "%s cut the connection mid-send"
             (match fault with
             | Some k -> Net_faults.kind_to_string k
             | None -> "plan"))
      | `Delivered, Some m -> `Retry ("send: " ^ m)
      | `Delivered, None ->
        let budget =
          match rem_ms with
          | Some r -> Float.min (float_of_int settings.attempt_timeout_ms) r
          | None -> float_of_int settings.attempt_timeout_ms
        in
        let deadline_at = now_ms () +. budget in
        let suspect = fault = Some Net_faults.Garbage in
        read_answer ~now_ms ~deadline_at ~expected_key ~suspect ~audit fd
    in
    close ();
    result

(* -- the retry loop ------------------------------------------------------ *)

let run ~settings ~now_ms ~sleep_ms ~socket ~render ~expected_key ~audit =
  let rng = Util.Rng.create (settings.seed lxor 0x636c6e74) in
  let start = now_ms () in
  let deadline_at =
    Option.map (fun d -> start +. float_of_int d) settings.deadline_ms
  in
  let remaining_ms () = Option.map (fun d -> d -. now_ms ()) deadline_at in
  let trace = ref [] in
  let push n conn fault note = trace := { n; conn; fault; note } :: !trace in
  let finish result = (result, List.rev !trace) in
  let backoff ~floor_ms n =
    let base =
      min settings.backoff_cap_ms
        (settings.backoff_base_ms * (1 lsl min (n - 1) 16))
    in
    let base = max 1 (max base floor_ms) in
    (* deterministic seeded jitter in [base/2, base), then the BUSY
       retry-after hint reimposed as a hard floor — honoring the server's
       hint means waiting at least that long, jitter or not *)
    let delay = (base / 2) + Util.Rng.int rng (max 1 (base - (base / 2))) in
    let delay = max delay floor_ms in
    let delay =
      match remaining_ms () with
      | Some r -> min delay (max 0 (int_of_float r))
      | None -> delay
    in
    if delay > 0 then sleep_ms (float_of_int delay)
  in
  let rec attempt n last_reason =
    if n > settings.max_attempts then
      finish (Error (Attempts_exhausted last_reason))
    else
      let rem = remaining_ms () in
      match rem with
      | Some r when r <= 0.0 -> finish (Error Deadline_exceeded)
      | _ -> (
        let conn = settings.conn_base + n - 1 in
        let fault =
          Net_faults.fault_of settings.faults ~seed:settings.seed ~conn
        in
        let line = render (Option.map int_of_float rem) in
        match
          run_attempt ~settings ~now_ms ~sleep_ms ~socket ~conn ~line
            ~expected_key ~audit ~fault ~rem_ms:rem
        with
        | `Answer resp ->
          let note =
            match (resp, audit) with
            | Protocol.Result _, Some _ ->
              (* the verdict is in the trace, not just the absence of a
                 retry: an audited answer is marked as such *)
              "answered [audit=ok]: " ^ Protocol.render_response resp
            | _ -> "answered: " ^ Protocol.render_response resp
          in
          push n conn fault note;
          finish (Ok resp)
        | `Busy retry_after_s ->
          push n conn fault
            (Printf.sprintf "busy retry-after=%d" retry_after_s);
          backoff ~floor_ms:(retry_after_s * 1000) n;
          attempt (n + 1) "busy"
        | `Retry reason ->
          push n conn fault ("retry: " ^ reason);
          backoff ~floor_ms:0 n;
          attempt (n + 1) reason)
  in
  attempt 1 "no attempt ran"

(* -- public entry points ------------------------------------------------- *)

let hooks now_ms sleep_ms =
  let now_ms =
    match now_ms with
    | Some f -> f
    | None ->
      let c = Util.Clock.monotonic () in
      fun () -> c () *. 1000.0
  in
  let sleep_ms =
    match sleep_ms with
    | Some f -> f
    | None -> fun ms -> Unix.sleepf (ms /. 1000.0)
  in
  (now_ms, sleep_ms)

let ask ?(settings = default_settings) ?now_ms ?sleep_ms ~socket request =
  let now_ms, sleep_ms = hooks now_ms sleep_ms in
  match request with
  | Protocol.Ping ->
    run ~settings ~now_ms ~sleep_ms ~socket
      ~render:(fun _ -> "PING")
      ~expected_key:None ~audit:None
  | Protocol.Stats ->
    run ~settings ~now_ms ~sleep_ms ~socket
      ~render:(fun _ -> "STATS")
      ~expected_key:None ~audit:None
  | Protocol.Tune tr ->
    let canonical = Protocol.canonical_of_tune tr in
    let expected_key = Some (Result_cache.key_of_canonical canonical) in
    (* The wire policy tolerates the OK line's decimal rounding of runtime
       and gflops; everything structural (domain membership, launch
       feasibility, the Q bound) is checked at full strength. *)
    let audit =
      if not settings.audit then None
      else
        Some
          (fun (p : Protocol.result_payload) ->
            Verify.Audit.check ~policy:Verify.Audit.wire ~key:p.Protocol.key
              ~gflops:p.Protocol.gflops ~canonical ~config:p.Protocol.config
              ~runtime_us:p.Protocol.runtime_us ())
    in
    (* Each attempt re-renders with the budget left *now*, so the daemon's
       shedding decision tracks the truth, not the first attempt's view. *)
    let render rem =
      let deadline_ms =
        match rem with
        | Some r -> Some (max 0 r)
        | None -> tr.Protocol.deadline_ms
      in
      Protocol.render_tune { tr with Protocol.deadline_ms }
    in
    run ~settings ~now_ms ~sleep_ms ~socket ~render ~expected_key ~audit

let ask_raw ?(settings = default_settings) ?now_ms ?sleep_ms ~socket line =
  let now_ms, sleep_ms = hooks now_ms sleep_ms in
  run ~settings ~now_ms ~sleep_ms ~socket
    ~render:(fun _ -> line)
    ~expected_key:None ~audit:None
