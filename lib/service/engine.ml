(* The service core: parse -> admit -> coalesce -> tune -> cache -> answer,
   as a deterministic step machine.  No sockets, no time, no randomness of
   its own — the Sim harness and the real daemon drive the same code. *)

type settings = {
  budget_trials : int;
  seed : int;
  policy : Core.Supervisor.policy;
  faults : Gpu_sim.Faults.profile option;
  journal_dir : string option;
  max_pending : int;
  retry_after_s : int;
  audit : bool;
  scrub_per_step : int;
}

let default_settings =
  {
    budget_trials = 300;
    seed = 0;
    policy = Core.Supervisor.default_policy;
    faults = None;
    journal_dir = None;
    max_pending = 8;
    retry_after_s = 1;
    audit = true;
    scrub_per_step = 0;
  }

(* Only settings that change *what a search computes* belong in the
   generation: serving-side knobs (admission bounds, retry hints, fault
   injection, journalling) do not invalidate previously correct answers. *)
let generation_of_settings s =
  Printf.sprintf "trials=%d;seed=%d;breaker=%d" s.budget_trials s.seed s.policy.breaker_k

type client = int

let client_id c = c

type job = {
  key : string;
  canonical : string;
  request : Protocol.tune_request;
  mutable waiters : client list;  (* newest first; delivery reverses *)
  mutable deadline_at : float option;
      (* absolute ms on the engine clock; [Some] only while *every* waiter
         carries a deadline — one patient waiter pins the job runnable *)
}

type counters = {
  cache_hits : int;
  cache_misses : int;
  coalesced : int;
  busy_rejected : int;
  tunes_run : int;
  parse_errors : int;
  domain_errors : int;
  tune_failures : int;
  abandoned : int;
  deadline_shed : int;
}

let zero_counters =
  {
    cache_hits = 0;
    cache_misses = 0;
    coalesced = 0;
    busy_rejected = 0;
    tunes_run = 0;
    parse_errors = 0;
    domain_errors = 0;
    tune_failures = 0;
    abandoned = 0;
    deadline_shed = 0;
  }

type t = {
  settings : settings;
  now_ms : unit -> float;
  cache : Result_cache.t;
  session : Core.Supervisor.session;
  pending : (client * string) Queue.t;
  jobs : job Queue.t;
  inflight : (string, job) Hashtbl.t;  (* key -> queued job *)
  connected : (client, unit) Hashtbl.t;
  mutable next_client : int;
  mutable draining : bool;
  mutable c : counters;
  (* Post-tune audits are the engine's own (the cache counts load/hit/scrub
     audits); a reject here means the tuner itself produced something the
     invariants refuse — served (it is the truth we have) but never cached. *)
  mutable post_audits : int;
  mutable post_rejects : int;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The default clock is the constant zero, NOT wall time: the engine stays
   a deterministic step machine (Sim scripts replay byte-identically), and
   with a frozen clock no deadline ever passes, so shedding is off unless a
   real clock is injected — which the daemon does. *)
let create ?(settings = default_settings) ?(now_ms = fun () -> 0.0) ~cache () =
  Option.iter mkdir_p settings.journal_dir;
  {
    settings;
    now_ms;
    cache =
      Result_cache.load ~audit:settings.audit
        ~generation:(generation_of_settings settings) cache;
    session =
      Core.Supervisor.create ~policy:settings.policy ~tasks:settings.max_pending ();
    pending = Queue.create ();
    jobs = Queue.create ();
    inflight = Hashtbl.create 16;
    connected = Hashtbl.create 16;
    next_client = 0;
    draining = false;
    c = zero_counters;
    post_audits = 0;
    post_rejects = 0;
  }

let settings t = t.settings
let cache t = t.cache
let is_draining t = t.draining
let counters t = t.c

let connect t =
  let id = t.next_client in
  t.next_client <- id + 1;
  Hashtbl.replace t.connected id ();
  id

let disconnect t client = Hashtbl.remove t.connected client
let submit t client line = Queue.add (client, line) t.pending

let health t = Core.Supervisor.report t.session

(* The daemon's accept-level load shedding answers BUSY before the engine
   ever sees a line; it still belongs in the one shared ledger. *)
let record_load_shed t = t.c <- { t.c with busy_rejected = t.c.busy_rejected + 1 }

let stats t =
  let c = t.c in
  [
    ("entries", string_of_int (Result_cache.entries t.cache));
    ("hits", string_of_int c.cache_hits);
    ("misses", string_of_int c.cache_misses);
    ("coalesced", string_of_int c.coalesced);
    ("busy", string_of_int c.busy_rejected);
    ("tunes_run", string_of_int c.tunes_run);
    ("parse_errors", string_of_int c.parse_errors);
    ("domain_errors", string_of_int c.domain_errors);
    ("tune_failures", string_of_int c.tune_failures);
    ("abandoned", string_of_int c.abandoned);
    ("deadline_shed", string_of_int c.deadline_shed);
    ("salvage_dropped", string_of_int (Result_cache.dropped t.cache));
    ("stale_dropped", string_of_int (Result_cache.stale t.cache));
    ("audited", string_of_int (Result_cache.audited t.cache + t.post_audits));
    ("quarantined", string_of_int (Result_cache.quarantined t.cache));
    ("scrubbed", string_of_int (Result_cache.scrubbed t.cache));
    ("audit_rejected", string_of_int t.post_rejects);
    ("draining", string_of_bool t.draining);
  ]

(* ------------------------------------------------------------------ *)
(* Responses. *)

let entry_response ~cached (e : Result_cache.entry) =
  Protocol.Result
    {
      key = e.key;
      source = (if cached then Protocol.Src_cached else e.source);
      runtime_us = e.runtime_us;
      gflops = e.gflops;
      (* A cache hit performs zero measurements — the trial counter the
         chaos harness uses to assert "no re-tuning". *)
      trials = (if cached then 0 else e.trials);
      config = e.config;
    }

let deliver t out client response =
  if Hashtbl.mem t.connected client then
    out := (client, Protocol.render_response response) :: !out
  else t.c <- { t.c with abandoned = t.c.abandoned + 1 }

(* ------------------------------------------------------------------ *)
(* Request admission. *)

let handle_tune t out client (req : Protocol.tune_request) =
  let canonical = Protocol.canonical_of_tune req in
  let key = Result_cache.key_of_canonical canonical in
  let deadline_at =
    Option.map (fun d -> t.now_ms () +. float_of_int d) req.Protocol.deadline_ms
  in
  match Result_cache.find t.cache ~canonical with
  | Some e ->
    t.c <- { t.c with cache_hits = t.c.cache_hits + 1 };
    deliver t out client (entry_response ~cached:true e)
  | None ->
    t.c <- { t.c with cache_misses = t.c.cache_misses + 1 };
    (match Hashtbl.find_opt t.inflight key with
    | Some job ->
      t.c <- { t.c with coalesced = t.c.coalesced + 1 };
      job.waiters <- client :: job.waiters;
      (* A joining waiter can only relax the job's deadline: shedding is
         legitimate only once *no* waiter can still be satisfied. *)
      job.deadline_at <-
        (match (job.deadline_at, deadline_at) with
        | Some a, Some b -> Some (Float.max a b)
        | _ -> None)
    | None ->
      if Queue.length t.jobs >= t.settings.max_pending then begin
        t.c <- { t.c with busy_rejected = t.c.busy_rejected + 1 };
        deliver t out client
          (Protocol.Busy { retry_after_s = t.settings.retry_after_s })
      end
      else begin
        let job = { key; canonical; request = req; waiters = [ client ]; deadline_at } in
        Hashtbl.replace t.inflight key job;
        Queue.add job t.jobs
      end)

let handle_line t out (client, line) =
  match Protocol.parse_request line with
  | Error msg ->
    t.c <- { t.c with parse_errors = t.c.parse_errors + 1 };
    deliver t out client (Protocol.Error (Protocol.Parse msg))
  | Ok _ when t.draining -> deliver t out client (Protocol.Error Protocol.Draining)
  | Ok Protocol.Ping -> deliver t out client Protocol.Pong
  | Ok Protocol.Stats -> deliver t out client (Protocol.Stats_reply (stats t))
  | Ok (Protocol.Tune req) -> handle_tune t out client req

(* ------------------------------------------------------------------ *)
(* Running one tuning task. *)

let journal_path t key =
  Option.map (fun dir -> Filename.concat dir (key ^ ".journal")) t.settings.journal_dir

let outcome_entry job (outcome : Core.Supervisor.outcome) =
  let spec = job.request.Protocol.spec in
  match outcome with
  | Core.Supervisor.Tuned r | Core.Supervisor.Replayed r ->
    let source =
      match outcome with
      | Core.Supervisor.Replayed _ -> Protocol.Src_replayed
      | _ -> Protocol.Src_tuned
    in
    `Cacheable
      {
        Result_cache.key = job.key;
        canonical = job.canonical;
        source;
        runtime_us = r.Core.Tuner.best_runtime_us;
        gflops = r.best_gflops;
        predicted_us =
          Verify.Audit.predicted_us job.request.Protocol.arch spec r.best_config;
        trials = r.measurements;
        config = r.best_config;
      }
  | Core.Supervisor.Degraded { config; runtime_us; faults; _ } ->
    (* A degraded answer is truthful but below full quality (breaker or
       budget cut the search short): serve it typed, do NOT cache it — a
       restarted daemon with a fresh budget should tune it properly. *)
    `Serve_only
      (Protocol.Result
         {
           key = job.key;
           source = Protocol.Src_degraded;
           runtime_us;
           gflops = Core.Tuner.nominal_gflops spec ~runtime_us;
           trials = faults.Core.Tuner.failed;
           config;
         })
  | Core.Supervisor.Failed cause ->
    `Failure (Protocol.Error (Protocol.Failed (Core.Supervisor.cause_to_string cause)))

let answer_waiters t out job response =
  (* Every waiter — including ones that joined by coalescing — gets the one
     shared answer; failures propagate to all of them identically. *)
  List.iter (fun client -> deliver t out client response) (List.rev job.waiters)

let run_job_now t out job =
  let req = job.request in
  let outcome =
    match
      Core.Search_space.make ~pruned:req.Protocol.pruned req.Protocol.arch
        req.Protocol.spec req.Protocol.algorithm
    with
    | exception Invalid_argument msg ->
      t.c <- { t.c with domain_errors = t.c.domain_errors + 1 };
      (* Surface the dead-end in the supervision report too, so the daemon's
         shutdown health summary does not hide requests it could not serve. *)
      ignore
        (Core.Supervisor.record_failed t.session ~key:job.key
           (Core.Supervisor.Empty_domain msg));
      `Domain msg
    | space -> begin
      t.c <- { t.c with tunes_run = t.c.tunes_run + 1 };
      let s = t.settings in
      match
        Core.Supervisor.tune_task t.session ~key:job.key ~seed:s.seed
          ~max_measurements:s.budget_trials ?faults:s.faults
          ?journal:(journal_path t job.key) ~space ()
      with
      | outcome -> `Outcome outcome
      | exception exn ->
        (* A tune must never take the service down: an unexpected failure
           (journal I/O, checkpoint salvage, ...) becomes a typed error for
           this job's waiters and the daemon keeps serving. *)
        `Crashed (Printexc.to_string exn)
    end
  in
  let response =
    match outcome with
    | `Domain msg -> Protocol.Error (Protocol.Domain msg)
    | `Crashed msg ->
      t.c <- { t.c with tune_failures = t.c.tune_failures + 1 };
      Protocol.Error (Protocol.Failed msg)
    | `Outcome o -> begin
      match outcome_entry job o with
      | `Cacheable entry ->
        (* Audit after tuning, before the entry can reach disk or another
           client: a fresh result that fails its own invariants (it should
           not happen — the tuner only emits domain members and the noise
           model is bounded) is served to this job's waiters as the best
           truth available, but never cached. *)
        let cacheable =
          (not t.settings.audit)
          ||
          (t.post_audits <- t.post_audits + 1;
           match
             Verify.Audit.check ~key:entry.Result_cache.key
               ~gflops:entry.gflops ~predicted_us:entry.predicted_us
               ~canonical:entry.canonical ~config:entry.config
               ~runtime_us:entry.runtime_us ()
           with
           | Verify.Audit.Ok -> true
           | Verify.Audit.Suspect reasons ->
             t.post_rejects <- t.post_rejects + 1;
             Util.Log.warn_oncef ~key:("post-tune-audit:" ^ entry.key)
               "warning: post-tune audit rejected %s (%s); serving uncached\n%!" entry.key
               (String.concat "," (List.map Verify.Audit.reason_token reasons));
             false)
        in
        if cacheable then Result_cache.put t.cache entry;
        entry_response ~cached:false entry
      | `Serve_only response -> response
      | `Failure response ->
        t.c <- { t.c with tune_failures = t.c.tune_failures + 1 };
        response
    end
  in
  answer_waiters t out job response

let run_job t out job =
  Hashtbl.remove t.inflight job.key;
  match job.deadline_at with
  | Some d when t.now_ms () > d ->
    (* Every waiter's deadline has already passed: tuning now would burn
       budget answering connections that stopped listening.  Shed with a
       typed line — a patient waiter (no deadline) keeps the job runnable
       via [deadline_at = None]. *)
    t.c <- { t.c with deadline_shed = t.c.deadline_shed + 1 };
    answer_waiters t out job (Protocol.Error Protocol.Deadline)
  | _ -> run_job_now t out job

(* ------------------------------------------------------------------ *)
(* Stepping. *)

let step t =
  let out = ref [] in
  let lines = Queue.fold (fun acc x -> x :: acc) [] t.pending |> List.rev in
  Queue.clear t.pending;
  List.iter (handle_line t out) lines;
  if not (Queue.is_empty t.jobs) then run_job t out (Queue.pop t.jobs);
  (* Background scrubbing: a bounded slice of the cache re-audited per tick,
     so a long-lived daemon sweeps its whole cache without ever pausing. *)
  if t.settings.scrub_per_step > 0 then
    ignore (Result_cache.scrub_step t.cache ~n:t.settings.scrub_per_step);
  List.rev !out

let rec run_until_idle t =
  let responses = step t in
  if Queue.is_empty t.pending && Queue.is_empty t.jobs then responses
  else responses @ run_until_idle t

let drain t =
  (* Requests already received were accepted: serve them (finishing every
     queued tune) before refusing anything.  Only lines submitted after
     this point see [ERR draining]. *)
  let responses = run_until_idle t in
  t.draining <- true;
  Result_cache.flush t.cache;
  responses
