(* Socket front end: select loop, line framing, deadlines, drain.

   Everything protocol-shaped happens in Engine; this file only turns file
   descriptors into (client, line) pairs and back, and makes sure no
   misbehaving descriptor — half a line, a flood, a vanished peer, a
   SIGTERM — can take the process down or wedge the loop. *)

type conn = {
  fd : Unix.file_descr;
  client : Engine.client;
  buf : Buffer.t;  (* bytes received, not yet terminated by '\n' *)
  mutable last_activity : float;  (* last complete request or response *)
  mutable open_ : bool;
}

let close_conn engine conns conn =
  if conn.open_ then begin
    conn.open_ <- false;
    Engine.disconnect engine conn.client;
    Hashtbl.remove conns conn.client;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Best-effort full write; a peer that died mid-response is a disconnect,
   not a daemon failure. *)
let write_line engine conns conn line =
  if conn.open_ then begin
    let msg = line ^ "\n" in
    let n = String.length msg in
    let rec go off =
      if off < n then begin
        match Unix.write_substring conn.fd msg off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_conn engine conns conn
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      end
    in
    go 0;
    conn.last_activity <- Unix.gettimeofday ()
  end

let deliver engine conns responses =
  List.iter
    (fun (client, line) ->
      match Hashtbl.find_opt conns client with
      | Some conn -> write_line engine conns conn line
      | None -> () (* already closed; the engine counted it abandoned *))
    responses

(* Split out the complete lines; submit each, reject an unterminated line
   that already exceeds the protocol bound. *)
let drain_buffer engine conns conn =
  let data = Buffer.contents conn.buf in
  Buffer.clear conn.buf;
  let rec go start =
    match String.index_from_opt data start '\n' with
    | Some i ->
      let line = String.sub data start (i - start) in
      let line =
        (* Tolerate CRLF clients. *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Engine.submit engine conn.client line;
      conn.last_activity <- Unix.gettimeofday ();
      go (i + 1)
    | None ->
      let rest = String.length data - start in
      if rest > Protocol.max_line_bytes then begin
        write_line engine conns conn
          (Protocol.render_response
             (Protocol.Error
                (Protocol.Parse
                   (Printf.sprintf "request longer than %d bytes" Protocol.max_line_bytes))));
        close_conn engine conns conn
      end
      else Buffer.add_substring conn.buf data start rest
  in
  go 0

let read_chunk engine conns conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
  | 0 -> close_conn engine conns conn (* EOF *)
  | n ->
    Buffer.add_subbytes conn.buf bytes 0 n;
    drain_buffer engine conns conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn engine conns conn

let enforce_deadlines engine conns deadline_s =
  let now = Unix.gettimeofday () in
  let timed_out =
    Hashtbl.fold
      (fun _ conn acc ->
        if conn.open_ && now -. conn.last_activity > deadline_s then conn :: acc else acc)
      conns []
  in
  List.iter
    (fun conn ->
      write_line engine conns conn
        (Protocol.render_response (Protocol.Error Protocol.Timeout));
      close_conn engine conns conn)
    timed_out

let serve ~socket ~cache ?settings ?(stop = Atomic.make false)
    ?(read_deadline_s = 30.0) ?(install_signal_handlers = true) () =
  let engine = Engine.create ?settings ~cache () in
  (* A response written to a vanished client must surface as EPIPE on the
     write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if install_signal_handlers then begin
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
  end;
  if Sys.file_exists socket then Unix.unlink socket;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns : (Engine.client, conn) Hashtbl.t = Hashtbl.create 16 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then try Unix.unlink socket with Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener 64;
      while not (Atomic.get stop) do
        let fds =
          listener :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
        in
        let readable =
          match Unix.select fds [] [] 0.25 with
          | readable, _, _ -> readable
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | client_fd, _ ->
                let client = Engine.connect engine in
                Hashtbl.replace conns client
                  {
                    fd = client_fd;
                    client;
                    buf = Buffer.create 256;
                    last_activity = Unix.gettimeofday ();
                    open_ = true;
                  }
              | exception Unix.Unix_error _ -> ()
            end
            else begin
              match
                Hashtbl.fold
                  (fun _ c acc -> if c.fd = fd then Some c else acc)
                  conns None
              with
              | Some conn -> read_chunk engine conns conn
              | None -> ()
            end)
          readable;
        deliver engine conns (Engine.run_until_idle engine);
        enforce_deadlines engine conns read_deadline_s
      done;
      (* Graceful drain: the listener dies first (no new connections), the
         queued tunes finish and answer, the cache compacts atomically. *)
      (try Unix.close listener with Unix.Unix_error _ -> ());
      deliver engine conns (Engine.drain engine);
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter (fun c -> close_conn engine conns c);
      engine)
