(* Socket front end: select loop, line framing, deadlines, drain.

   Everything protocol-shaped happens in Engine; this file only turns file
   descriptors into (client, line) pairs and back, and makes sure no
   misbehaving descriptor — half a line, a flood, a byte-dribbler, a peer
   that writes forever without reading, a vanished peer, a SIGTERM — can
   take the process down or wedge the loop.  The byzantine-client defenses
   live here:

   - request lines are capped ([Protocol.max_line_bytes]): an unterminated
     line past the cap earns a typed ERR parse and a close, never unbounded
     buffering;
   - a per-request deadline bounds how long a partial line may dribble in
     (and how long flushing a response may stall), so slow-loris pacing
     cannot reset the idle clock forever;
   - responses go through bounded per-connection write buffers drained by
     partial-write continuation in the select loop — a peer that stops
     reading blocks only its own buffer, and overflowing it closes the
     connection instead of growing it;
   - a connection ceiling sheds load with an immediate BUSY at accept time,
     before the backlog grows.

   All deadlines read one injectable monotonic clock (Util.Clock): wall
   time stepping backward under NTP must not silently disable them. *)

(* ------------------------------------------------------------------ *)
(* Bounded outgoing buffer with partial-write continuation. *)

module Outbuf = struct
  type t = {
    max_bytes : int;
    mutable data : string;  (* bytes accepted, [off] already written *)
    mutable off : int;
  }

  let create ~max_bytes = { max_bytes; data = ""; off = 0 }
  let pending t = String.length t.data - t.off

  let enqueue t line =
    if pending t + String.length line > t.max_bytes then `Overflow
    else begin
      (* Compact on enqueue: the already-written prefix is dropped so the
         buffer never grows past max_bytes + one response. *)
      t.data <- String.sub t.data t.off (pending t) ^ line;
      t.off <- 0;
      `Ok
    end

  (* One continuation step: write as much as the kernel takes right now.
     [`Pending] means the fd's send buffer is full (peer not reading fast
     enough) — the select loop retries when the fd turns writable. *)
  let flush t fd =
    let rec go () =
      let n = pending t in
      if n = 0 then begin
        t.data <- "";
        t.off <- 0;
        `Done
      end
      else begin
        match Unix.write_substring fd t.data t.off n with
        | written ->
          t.off <- t.off + written;
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Pending
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> `Closed
      end
    in
    go ()
end

(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  client : Engine.client;
  buf : Buffer.t;  (* bytes received, not yet terminated by '\n' *)
  out : Outbuf.t;
  mutable last_activity : float;  (* last complete request or flushed response *)
  mutable partial_since : float option;  (* first byte of the current partial line *)
  mutable blocked_since : float option;  (* response flushing stalled since *)
  mutable open_ : bool;
}

type limits = {
  read_deadline_s : float;
  request_deadline_s : float;
  max_conns : int;
  max_write_buffer : int;
}

let close_conn engine conns conn =
  if conn.open_ then begin
    conn.open_ <- false;
    Engine.disconnect engine conn.client;
    Hashtbl.remove conns conn.client;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Queue a response line; overflow means the peer floods requests without
   reading answers — drop it rather than buffer without bound.  A flush is
   attempted immediately; leftovers continue via select writability. *)
let send_line ~now engine conns conn line =
  if conn.open_ then begin
    match Outbuf.enqueue conn.out (line ^ "\n") with
    | `Overflow -> close_conn engine conns conn
    | `Ok -> begin
      match Outbuf.flush conn.out conn.fd with
      | `Done ->
        conn.blocked_since <- None;
        conn.last_activity <- now
      | `Pending ->
        if conn.blocked_since = None then conn.blocked_since <- Some now
      | `Closed -> close_conn engine conns conn
    end
  end

let deliver ~now engine conns responses =
  List.iter
    (fun (client, line) ->
      match Hashtbl.find_opt conns client with
      | Some conn -> send_line ~now engine conns conn line
      | None -> () (* already closed; the engine counted it abandoned *))
    responses

(* Split out the complete lines; submit each, reject an unterminated line
   that already exceeds the protocol bound. *)
let drain_buffer ~now engine conns conn =
  let data = Buffer.contents conn.buf in
  Buffer.clear conn.buf;
  let rec go start =
    match String.index_from_opt data start '\n' with
    | Some i ->
      let line = String.sub data start (i - start) in
      let line =
        (* Tolerate CRLF clients. *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Engine.submit engine conn.client line;
      conn.last_activity <- now;
      conn.partial_since <- None;
      go (i + 1)
    | None ->
      let rest = String.length data - start in
      if rest > Protocol.max_line_bytes then begin
        send_line ~now engine conns conn
          (Protocol.render_response
             (Protocol.Error
                (Protocol.Parse
                   (Printf.sprintf "request longer than %d bytes" Protocol.max_line_bytes))));
        close_conn engine conns conn
      end
      else begin
        Buffer.add_substring conn.buf data start rest;
        if rest > 0 && conn.partial_since = None then conn.partial_since <- Some now
        else if rest = 0 then conn.partial_since <- None
      end
  in
  go 0

let read_chunk ~now engine conns conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
  | 0 -> close_conn engine conns conn (* EOF *)
  | n ->
    Buffer.add_subbytes conn.buf bytes 0 n;
    drain_buffer ~now engine conns conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn engine conns conn

(* Two clocks of misbehaviour, one sweep:
   - idle: no complete request and nothing owed for [read_deadline_s];
   - request: a partial line dribbling in (or a response flush stalled) for
     [request_deadline_s] — the slow-loris bound.  Receiving more bytes
     does NOT reset it; only a completed line does. *)
let enforce_deadlines ~now engine conns limits =
  let overdue conn =
    conn.open_
    && ((Outbuf.pending conn.out = 0 && now -. conn.last_activity > limits.read_deadline_s)
       || (match conn.partial_since with
          | Some t -> now -. t > limits.request_deadline_s
          | None -> false)
       || match conn.blocked_since with
          | Some t -> now -. t > limits.request_deadline_s
          | None -> false)
  in
  let timed_out = Hashtbl.fold (fun _ c acc -> if overdue c then c :: acc else acc) conns [] in
  List.iter
    (fun conn ->
      send_line ~now engine conns conn
        (Protocol.render_response (Protocol.Error Protocol.Timeout));
      close_conn engine conns conn)
    timed_out

(* Accept-time load shedding: over the ceiling, the daemon answers BUSY on
   the fresh socket and closes it — the client backs off instead of sitting
   in a backlog the select loop will never have capacity to serve. *)
let shed_connection engine fd retry_after_s =
  let line =
    Protocol.render_response (Protocol.Busy { retry_after_s }) ^ "\n"
  in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Engine.record_load_shed engine

(* Best-effort synchronous flush of every pending buffer, used only at
   drain time (the loop is about to exit, so continuation via select is no
   longer available).  Bounded by [request_deadline_s] of real waiting. *)
let flush_remaining engine conns limits clock =
  let deadline = clock () +. limits.request_deadline_s in
  let rec go () =
    let pending =
      Hashtbl.fold
        (fun _ c acc -> if c.open_ && Outbuf.pending c.out > 0 then c :: acc else acc)
        conns []
    in
    if pending <> [] && clock () < deadline then begin
      let fds = List.map (fun c -> c.fd) pending in
      (match Unix.select [] fds [] 0.05 with
      | _, writable, _ ->
        List.iter
          (fun conn ->
            if List.mem conn.fd writable then begin
              match Outbuf.flush conn.out conn.fd with
              | `Done | `Pending -> ()
              | `Closed -> close_conn engine conns conn
            end)
          pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let serve ~socket ~cache ?settings ?(stop = Atomic.make false)
    ?(hard_stop = Atomic.make false) ?(read_deadline_s = 30.0)
    ?(request_deadline_s = 10.0) ?(max_conns = 64) ?(max_write_buffer = 262_144)
    ?clock ?(install_signal_handlers = true) () =
  let clock = match clock with Some c -> c | None -> Util.Clock.monotonic () in
  let limits = { read_deadline_s; request_deadline_s; max_conns; max_write_buffer } in
  let engine =
    Engine.create ?settings ~now_ms:(fun () -> clock () *. 1000.) ~cache ()
  in
  (* A response written to a vanished client must surface as EPIPE on the
     write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if install_signal_handlers then begin
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
  end;
  if Sys.file_exists socket then Unix.unlink socket;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns : (Engine.client, conn) Hashtbl.t = Hashtbl.create 16 in
  let retry_after = (Engine.settings engine).Engine.retry_after_s in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then try Unix.unlink socket with Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener 64;
      while not (Atomic.get stop || Atomic.get hard_stop) do
        let read_fds =
          listener :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
        in
        let write_fds =
          Hashtbl.fold
            (fun _ c acc -> if Outbuf.pending c.out > 0 then c.fd :: acc else acc)
            conns []
        in
        let readable, writable =
          match Unix.select read_fds write_fds [] 0.25 with
          | readable, writable, _ -> (readable, writable)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        let now = clock () in
        let conn_of fd =
          Hashtbl.fold (fun _ c acc -> if c.fd = fd then Some c else acc) conns None
        in
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | client_fd, _ ->
                if Hashtbl.length conns >= limits.max_conns then
                  shed_connection engine client_fd retry_after
                else begin
                  Unix.set_nonblock client_fd;
                  let client = Engine.connect engine in
                  Hashtbl.replace conns client
                    {
                      fd = client_fd;
                      client;
                      buf = Buffer.create 256;
                      out = Outbuf.create ~max_bytes:limits.max_write_buffer;
                      last_activity = now;
                      partial_since = None;
                      blocked_since = None;
                      open_ = true;
                    }
                end
              | exception Unix.Unix_error _ -> ()
            end
            else begin
              match conn_of fd with
              | Some conn -> read_chunk ~now engine conns conn
              | None -> ()
            end)
          readable;
        (* Continue stalled responses for peers that became readable to us
           again (their receive window reopened). *)
        List.iter
          (fun fd ->
            match conn_of fd with
            | Some conn when conn.open_ -> begin
              match Outbuf.flush conn.out conn.fd with
              | `Done ->
                conn.blocked_since <- None;
                conn.last_activity <- now
              | `Pending ->
                if conn.blocked_since = None then conn.blocked_since <- Some now
              | `Closed -> close_conn engine conns conn
            end
            | _ -> ())
          writable;
        deliver ~now engine conns (Engine.run_until_idle engine);
        enforce_deadlines ~now:(clock ()) engine conns limits
      done;
      if Atomic.get hard_stop then begin
        (* Simulated kill -9 for the chaos harness: no drain, no flush, no
           goodbye lines.  The append-only cache already holds every
           answered tune; everything else is torn state the restart must
           salvage — which is the point. *)
        Hashtbl.fold (fun _ c acc -> c :: acc) conns []
        |> List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ());
        engine
      end
      else begin
        (* Graceful drain: the listener dies first (no new connections), the
           queued tunes finish and answer, the cache compacts atomically. *)
        (try Unix.close listener with Unix.Unix_error _ -> ());
        deliver ~now:(clock ()) engine conns (Engine.drain engine);
        flush_remaining engine conns limits clock;
        Hashtbl.fold (fun _ c acc -> c :: acc) conns []
        |> List.iter (fun c -> close_conn engine conns c);
        engine
      end)
