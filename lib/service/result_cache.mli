(** Content-addressed, crash-safe shared result cache.

    The cache maps the hash of a canonical request
    ([Core.Search_space.canonical_key]) to the best configuration found for
    it, and is the reason a tuning service amortizes: millions of clients
    mostly ask for the same few hundred layer shapes, and each shape is
    tuned once per generation.

    Durability comes from [Util.Durable]: the on-disk form is an
    append-only CRC-framed record file ([kind = "service-cache"]), so a
    [kill -9] mid-append costs at most the torn record, and corruption
    injected by [Util.Fs_faults] salvages to the longest valid prefix —
    reported, never silently dropped.  {!flush} compacts the file through
    an atomic snapshot.

    Integrity goes one trust level further: framing CRCs cannot see a
    record whose bytes were mutated and re-framed ([Util.Fs_faults] can
    manufacture exactly that), so an {e audited} cache re-derives every
    record's analytic claims through [Verify.Audit] at load time and again
    before every hit.  Rejected records are appended to a durable
    {!Quarantine} sidecar with their typed reasons — never silently
    dropped — and their keys simply miss, so a poisoned entry costs one
    fresh tune, not one wrong answer.

    Staleness: every record carries the {e generation} — an opaque string
    naming the search settings (budget, seed, policy) that produced it.
    Records from other generations (and records of the superseded v1
    schema) are ignored at {!load} and removed by the next {!flush}, so
    changing the search settings invalidates the cache without deleting the
    file by hand. *)

val key_of_canonical : string -> string
(** 16-hex-digit FNV-1a 64-bit hash of the canonical request string — the
    content address.  Stable across processes and platforms (delegates to
    [Verify.Audit.content_key], the one definition). *)

type entry = {
  key : string;  (** [key_of_canonical canonical] *)
  canonical : string;  (** kept verbatim so hash collisions are detectable *)
  source : Protocol.source;  (** how the result was obtained originally *)
  runtime_us : float;
  gflops : float;
  predicted_us : float;
      (** noise-free analytic price of [config] — the auditor demands a
          bit-identical reprice *)
  trials : int;
  config : Core.Config.t;
}

type t

val load : ?audit:bool -> generation:string -> string -> t
(** Opens (or creates the in-memory image of) the cache at a path.  Damaged
    files are salvaged {e and repaired in place} ([Util.Durable.repair]), a
    warning is emitted once per path, and the losses are reported through
    {!dropped}.  Records of other generations are counted in {!stale} and
    skipped.  Of duplicate keys the newest record wins (appends after a
    crash-replay can legitimately duplicate).

    With [audit = true] (default false) every live record is checked
    through [Verify.Audit] (strict policy) before admission and again on
    every {!find} hit; rejects go to the {!Quarantine} sidecar and the file
    is immediately compacted so the next load is clean.  Raises
    [Invalid_argument] if [generation] contains tabs or newlines. *)

val generation : t -> string
val path : t -> string

val quarantine_path : t -> string
(** The {!Quarantine} sidecar for this cache ([path ^ ".quarantine"]). *)

val find : t -> canonical:string -> entry option
(** Lookup by canonical string (hashes internally; verifies the stored
    canonical matches, so a hash collision misses instead of answering with
    the wrong layer's configuration).  On an audited cache the entry is
    re-audited before it is returned; a suspect entry is quarantined,
    evicted, and reported as a miss — the caller falls through to a fresh
    tune. *)

val put : t -> entry -> unit
(** Inserts/overwrites in memory and appends one durable record.  Entries
    whose [canonical] or [config] fail to round-trip are rejected with
    [Invalid_argument] (the daemon only constructs well-formed entries). *)

val flush : t -> unit
(** Atomic compaction: rewrites the file as one snapshot holding exactly
    the live, current-generation entries (drops stale generations, torn
    garbage and superseded duplicates).  Crash-safe: temp-then-rename. *)

val scrub_step : t -> n:int -> int
(** Audits up to [n] entries and returns how many it examined.  Incremental:
    a sorted-key cursor walks the table round-robin across calls, starting
    a fresh pass when the previous one drains — the engine runs one small
    slice per {!Service.Engine.step} tick so scrubbing never stalls
    serving.  Suspect entries are quarantined and evicted.  Audits
    unconditionally (the load-time [audit] flag gates only load/hit
    checks). *)

type scrub_report = { examined : int; quarantined : int; remaining : int }

val scrub : t -> scrub_report
(** One full pass over every entry, then {!flush}: after [scrub] the file
    on disk is a compacted snapshot of exactly the entries that passed the
    audit — a subsequent [Util.Durable.read] is [Intact]. *)

val entries : t -> int
(** Live entries of the current generation. *)

val dropped : t -> int
(** Records lost to corruption when this image was loaded. *)

val stale : t -> int
(** Records of other generations (or the old v1 schema) ignored at load. *)

val audited : t -> int
(** Audit checks performed (load + hits + scrubbing). *)

val quarantined : t -> int
(** Records rejected by the audit and appended to the sidecar. *)

val scrubbed : t -> int
(** Entries examined by {!scrub_step}/{!scrub}. *)
