(** Content-addressed, crash-safe shared result cache.

    The cache maps the hash of a canonical request
    ([Core.Search_space.canonical_key]) to the best configuration found for
    it, and is the reason a tuning service amortizes: millions of clients
    mostly ask for the same few hundred layer shapes, and each shape is
    tuned once per generation.

    Durability comes from [Util.Durable]: the on-disk form is an
    append-only CRC-framed record file ([kind = "service-cache"]), so a
    [kill -9] mid-append costs at most the torn record, and corruption
    injected by [Util.Fs_faults] salvages to the longest valid prefix —
    reported, never silently dropped.  {!flush} compacts the file through
    an atomic snapshot.

    Staleness: every record carries the {e generation} — an opaque string
    naming the search settings (budget, seed, policy) that produced it.
    Records from other generations are ignored at {!load} and removed by
    the next {!flush}, so changing the search settings invalidates the
    cache without deleting the file by hand. *)

val key_of_canonical : string -> string
(** 16-hex-digit FNV-1a 64-bit hash of the canonical request string — the
    content address.  Stable across processes and platforms. *)

type entry = {
  key : string;  (** [key_of_canonical canonical] *)
  canonical : string;  (** kept verbatim so hash collisions are detectable *)
  source : Protocol.source;  (** how the result was obtained originally *)
  runtime_us : float;
  gflops : float;
  trials : int;
  config : Core.Config.t;
}

type t

val load : generation:string -> string -> t
(** Opens (or creates the in-memory image of) the cache at a path.  Damaged
    files are salvaged {e and repaired in place} ([Util.Durable.repair]), a
    warning is emitted once per path, and the losses are reported through
    {!dropped}.  Records of other generations are counted in {!stale} and
    skipped.  Of duplicate keys the newest record wins (appends after a
    crash-replay can legitimately duplicate).  Raises [Invalid_argument]
    if [generation] contains tabs or newlines. *)

val generation : t -> string
val path : t -> string

val find : t -> canonical:string -> entry option
(** Lookup by canonical string (hashes internally; verifies the stored
    canonical matches, so a hash collision misses instead of answering with
    the wrong layer's configuration). *)

val put : t -> entry -> unit
(** Inserts/overwrites in memory and appends one durable record.  Entries
    whose [canonical] or [config] fail to round-trip are rejected with
    [Invalid_argument] (the daemon only constructs well-formed entries). *)

val flush : t -> unit
(** Atomic compaction: rewrites the file as one snapshot holding exactly
    the live, current-generation entries (drops stale generations, torn
    garbage and superseded duplicates).  Crash-safe: temp-then-rename. *)

val entries : t -> int
(** Live entries of the current generation. *)

val dropped : t -> int
(** Records lost to corruption when this image was loaded. *)

val stale : t -> int
(** Records of other generations ignored when this image was loaded. *)
