(* Script interpreter over the engine: the reproducible stand-in for the
   socket accept loop.  Logical client numbers decouple scripts from the
   engine's session ids, so a script survives refactors of id assignment. *)

type event =
  | Connect of int
  | Send of int * string
  | Disconnect of int
  | Step
  | Run_until_idle
  | Drain

type outcome = {
  responses : (int * string) list;
  engine : Engine.t;
}

let run ?settings ~cache events =
  let engine = Engine.create ?settings ~cache () in
  let clients = Hashtbl.create 8 in
  let back = Hashtbl.create 8 in
  let lookup n =
    match Hashtbl.find_opt clients n with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Sim.run: unknown client %d" n)
  in
  let logical responses =
    List.map
      (fun (c, line) -> (Option.value ~default:(-1) (Hashtbl.find_opt back c), line))
      responses
  in
  let acc = ref [] in
  let emit rs = acc := !acc @ logical rs in
  List.iter
    (fun event ->
      match event with
      | Connect n ->
        let c = Engine.connect engine in
        Hashtbl.replace clients n c;
        Hashtbl.replace back c n
      | Send (n, line) -> Engine.submit engine (lookup n) line
      | Disconnect n -> Engine.disconnect engine (lookup n)
      | Step -> emit (Engine.step engine)
      | Run_until_idle -> emit (Engine.run_until_idle engine)
      | Drain -> emit (Engine.drain engine))
    events;
  { responses = !acc; engine }

let transcript_of n outcome =
  List.filter_map (fun (m, line) -> if m = n then Some line else None) outcome.responses
