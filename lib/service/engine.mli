(** The tuning service's core state machine — everything the daemon does
    except sockets.

    The engine owns the three robustness pillars:

    - the durable, content-addressed {!Result_cache} (repeat queries answer
      without tuning; every completed tune is appended before the response
      is emitted, so a [kill -9] after the answer never loses it);
    - request coalescing and admission control: identical in-flight
      requests share one tuning task (all waiters get the one result —
      including a typed failure, truthfully), distinct queued tunes are
      bounded by [max_pending] with an explicit [BUSY retry-after] beyond
      it, and every tune runs under [Core.Supervisor] fair-share budgeting
      (an exhausted budget degrades to analytic answers, typed as such);
    - graceful drain: {!drain} stops admitting work, finishes the queued
      tunes (their journals checkpoint progress if the process dies
      anyway), answers every waiter, and compacts the cache atomically.

    Determinism: the engine is single-stepped ({!step} processes all
    pending request lines, then completes at most one tuning task) and
    draws no randomness beyond the seeded tuner, so a scripted run —
    {!Sim} — is exactly reproducible.  The daemon drives the same engine
    from a real socket accept loop. *)

type settings = {
  budget_trials : int;  (** per-tune measurement budget *)
  seed : int;  (** tuner seed *)
  policy : Core.Supervisor.policy;
      (** breaker threshold + global virtual-time budget + analytic
          candidate count for degraded answers *)
  faults : Gpu_sim.Faults.profile option;  (** injected GPU faults (tests) *)
  journal_dir : string option;
      (** per-key tune journals: a daemon killed mid-tune resumes the tune
          from its journal instead of restarting the search *)
  max_pending : int;  (** distinct queued tunes beyond which requests BUSY *)
  retry_after_s : int;  (** the hint sent with BUSY *)
  audit : bool;
      (** audit every trust boundary through [Verify.Audit]: cache records
          at load and before each hit (rejects quarantined, the key tunes
          afresh), and every fresh result after tuning (a reject is served
          to its waiters but never cached) *)
  scrub_per_step : int;
      (** cache entries re-audited per {!step} tick (0 = no background
          scrubbing) *)
}

val default_settings : settings
(** 300 trials, seed 0, [Core.Supervisor.default_policy], no faults, no
    journals, 8 pending tunes, retry-after 1s, auditing on, no background
    scrubbing. *)

val generation_of_settings : settings -> string
(** The cache generation string: the {e search}-relevant settings (trial
    budget, seed, breaker, pruning lives in the request key).  Changing any
    of them invalidates cached results — {!create} skips records of other
    generations and the next flush removes them. *)

type t
type client

val client_id : client -> int

val create : ?settings:settings -> ?now_ms:(unit -> float) -> cache:string -> unit -> t
(** Loads (salvaging + repairing if damaged) the durable cache and starts
    an accepting engine.

    [now_ms] is the engine's only clock, used solely to shed queued tunes
    whose every waiter's [deadline-ms] has already expired (typed
    [ERR deadline]).  It defaults to the {e constant zero} — not wall
    time — so the engine stays a deterministic step machine and shedding
    is inert unless a real (monotonic) clock is injected, which the
    daemon does. *)

val settings : t -> settings
val cache : t -> Result_cache.t

val connect : t -> client
(** Registers a client session.  Connecting to a draining engine still
    succeeds; its requests get [ERR draining]. *)

val disconnect : t -> client -> unit
(** Client went away.  Requests it already submitted still run (and their
    results are cached — the work is shared, not wasted); only the
    response delivery is cancelled, counted in [abandoned]. *)

val submit : t -> client -> string -> unit
(** Enqueue one raw request line (without newline).  Never raises on wire
    input; malformed lines produce typed [ERR parse] responses at the next
    {!step}. *)

val step : t -> (client * string) list
(** One deterministic scheduling round: processes every pending line
    (immediate answers: cache hits, coalesced joins, BUSY, errors, PING,
    STATS), then runs at most one queued tuning task to completion and
    answers all its waiters.  Returns the response lines emitted this
    round, in order. *)

val run_until_idle : t -> (client * string) list
(** {!step} until no pending lines and no queued tunes remain. *)

val drain : t -> (client * string) list
(** Graceful shutdown (the SIGTERM path): {!run_until_idle} first —
    requests already received were accepted, so every queued tune finishes
    and every waiter is answered — then stop admitting new requests
    (subsequent submissions get [ERR draining]) and compact the cache with
    an atomic flush.  Idempotent. *)

val is_draining : t -> bool

(** {1 Observability} *)

type counters = {
  cache_hits : int;
  cache_misses : int;  (** requests that needed (or joined) a tuning task *)
  coalesced : int;  (** requests that joined an already-queued task *)
  busy_rejected : int;
  tunes_run : int;  (** tuning tasks actually executed *)
  parse_errors : int;
  domain_errors : int;
  tune_failures : int;  (** tasks whose waiters got [ERR failed] *)
  abandoned : int;  (** responses dropped because the waiter disconnected *)
  deadline_shed : int;
      (** queued tunes skipped because every waiter's deadline had passed *)
}

val counters : t -> counters

val record_load_shed : t -> unit
(** Counts one accept-level [BUSY] the daemon answered before the engine
    saw a line (connection-ceiling load shedding), folding it into
    [busy_rejected] so [STATS] reports one honest total. *)

val stats : t -> (string * string) list
(** The [STATS] reply payload: counters plus cache entries / salvage
    losses / stale records, the audit ledger ([audited] checks performed,
    [quarantined] records sidelined, [scrubbed] entries swept,
    [audit_rejected] post-tune rejects) and the draining flag. *)

val health : t -> Core.Supervisor.report
(** The supervision session's report (budget accounting, per-task
    outcomes) — what the daemon prints on shutdown. *)
