(* Line protocol: tiny grammar, typed both ways, total parsers.  Nothing in
   here raises on wire input — a malformed line becomes [Error (Parse _)]
   at the call site, never an exception in the accept loop. *)

let max_line_bytes = 4096

type tune_request = {
  spec : Conv.Conv_spec.t;
  arch : Gpu_sim.Arch.t;
  algorithm : Core.Config.algorithm;
  pruned : bool;
  deadline_ms : int option;
}

type request =
  | Ping
  | Stats
  | Tune of tune_request

(* Short architecture aliases; display names contain spaces and cannot
   appear in a key=value field.  [Gpu_sim.Arch] owns the mapping, so every
   preset reachable from the CLI is reachable from the wire too. *)
let arch_of_alias = Gpu_sim.Arch.of_alias
let alias_of_arch = Gpu_sim.Arch.alias

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let parse_fields words =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> begin
      match String.index_opt w '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" w)
      | Some i ->
        let k = String.lowercase_ascii (String.sub w 0 i) in
        let v = String.sub w (i + 1) (String.length w - i - 1) in
        if k = "" || v = "" then Error (Printf.sprintf "empty key or value in %S" w)
        else if List.mem_assoc k acc then Error (Printf.sprintf "duplicate field %S" k)
        else go ((k, v) :: acc) rest
    end
  in
  go [] words

(* Unknown fields are ignored, not rejected: a newer client may attach
   fields (the way [deadline-ms] was added) and still talk to an older
   daemon.  Malformed words, duplicates and bad values in {e known} fields
   are still typed parse errors — tolerance is for vocabulary, not shape. *)
let parse_tune words =
  let ( let* ) = Result.bind in
  let* fields = parse_fields words in
  let lookup k = List.assoc_opt k fields in
  let int_field k =
    match lookup k with
    | None -> Ok None
    | Some v -> begin
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "field %S: %S is not an integer" k v)
    end
  in
  let require name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing required field (%s)" name)
  in
  let* cin = int_field "cin" in
  let* cout = int_field "cout" in
  let* size = int_field "size" in
  let* hin = int_field "hin" in
  let* win = int_field "win" in
  let* k = int_field "k" in
  let* kh = int_field "kh" in
  let* kw = int_field "kw" in
  let* stride = int_field "stride" in
  let* pad = int_field "pad" in
  let* padh = int_field "padh" in
  let* padw = int_field "padw" in
  let* batch = int_field "batch" in
  let* groups = int_field "groups" in
  let* e = int_field "e" in
  let* deadline_ms = int_field "deadline-ms" in
  let* () =
    match deadline_ms with
    | Some d when d < 0 -> Error (Printf.sprintf "field \"deadline-ms\": %d is negative" d)
    | _ -> Ok ()
  in
  let first a b = match a with Some _ -> a | None -> b in
  let* cin = require "cin" cin in
  let* cout = require "cout" cout in
  let* h_in = require "size or hin" (first hin size) in
  let* w_in = require "size or win" (first win size) in
  let* k_h = require "k or kh" (first kh k) in
  let* k_w = require "k or kw" (first kw k) in
  let* arch =
    match lookup "arch" with
    | None -> Ok Gpu_sim.Arch.v100
    | Some a -> begin
      match arch_of_alias a with
      | Some arch -> Ok arch
      | None -> Error (Printf.sprintf "unknown arch %S (1080ti|v100|titanx|gfx906)" a)
    end
  in
  let* algorithm =
    match Option.map String.lowercase_ascii (lookup "algo") with
    | None | Some "direct" -> Ok Core.Config.Direct_dataflow
    | Some "winograd" -> Ok (Core.Config.Winograd_dataflow (Option.value e ~default:2))
    | Some a -> Error (Printf.sprintf "unknown algo %S (direct|winograd)" a)
  in
  let* pruned =
    match Option.map String.lowercase_ascii (lookup "pruned") with
    | None | Some "true" | Some "1" -> Ok true
    | Some "false" | Some "0" -> Ok false
    | Some v -> Error (Printf.sprintf "field \"pruned\": %S is not a boolean" v)
  in
  match
    Conv.Conv_spec.make ?batch ?pad ?pad_h:padh ?pad_w:padw ?stride ?groups ~c_in:cin
      ~h_in ~w_in ~c_out:cout ~k_h ~k_w ()
  with
  | spec -> Ok (Tune { spec; arch; algorithm; pruned; deadline_ms })
  | exception Invalid_argument msg -> Error msg

let parse_request line =
  if String.length line > max_line_bytes then
    Error (Printf.sprintf "request longer than %d bytes" max_line_bytes)
  else if String.exists (fun c -> c = '\t' || c = '\r' || Char.code c < 32) line then
    Error "control characters in request"
  else begin
    match split_words line with
    | [] -> Error "empty request"
    | verb :: rest -> begin
      match (String.uppercase_ascii verb, rest) with
      | "PING", [] -> Ok Ping
      | "STATS", [] -> Ok Stats
      | ("PING" | "STATS"), _ :: _ -> Error (verb ^ " takes no arguments")
      | "TUNE", fields -> parse_tune fields
      | _ -> Error (Printf.sprintf "unknown verb %S (PING|STATS|TUNE)" verb)
    end
  end

let canonical_of_tune r =
  Core.Search_space.canonical_key r.arch r.spec r.algorithm ~pruned:r.pruned

let render_tune r =
  let s = r.spec in
  let algo =
    match r.algorithm with
    | Core.Config.Direct_dataflow -> "algo=direct"
    | Core.Config.Winograd_dataflow e -> Printf.sprintf "algo=winograd e=%d" e
  in
  let arch = alias_of_arch r.arch in
  let deadline =
    match r.deadline_ms with
    | None -> ""
    | Some d -> Printf.sprintf " deadline-ms=%d" d
  in
  Printf.sprintf
    "TUNE cin=%d cout=%d hin=%d win=%d kh=%d kw=%d stride=%d padh=%d padw=%d batch=%d \
     groups=%d arch=%s %s pruned=%b%s"
    s.Conv.Conv_spec.c_in s.c_out s.h_in s.w_in s.k_h s.k_w s.stride s.pad_h s.pad_w
    s.batch s.groups arch algo r.pruned deadline

(* ------------------------------------------------------------------ *)
(* Responses. *)

type source =
  | Src_tuned
  | Src_replayed
  | Src_degraded
  | Src_cached

let source_to_string = function
  | Src_tuned -> "tuned"
  | Src_replayed -> "replayed"
  | Src_degraded -> "degraded"
  | Src_cached -> "cached"

let source_of_string = function
  | "tuned" -> Some Src_tuned
  | "replayed" -> Some Src_replayed
  | "degraded" -> Some Src_degraded
  | "cached" -> Some Src_cached
  | _ -> None

type error =
  | Parse of string
  | Domain of string
  | Failed of string
  | Draining
  | Timeout
  | Deadline

type result_payload = {
  key : string;
  source : source;
  runtime_us : float;
  gflops : float;
  trials : int;
  config : Core.Config.t;
}

type response =
  | Result of result_payload
  | Busy of { retry_after_s : int }
  | Pong
  | Stats_reply of (string * string) list
  | Error of error

(* Error payloads travel as the rest of the line; strip anything that would
   break line framing or the leading-token structure. *)
let clean_message msg =
  String.map (fun c -> if c = '\n' || c = '\r' || c = '\t' then ' ' else c) msg

let render_response = function
  | Result r ->
    Printf.sprintf "OK key=%s source=%s runtime_us=%.6f gflops=%.2f trials=%d config=%s"
      r.key (source_to_string r.source) r.runtime_us r.gflops r.trials
      (Core.Config.to_compact r.config)
  | Busy { retry_after_s } -> Printf.sprintf "BUSY retry-after=%d" retry_after_s
  | Pong -> "PONG"
  | Stats_reply kvs ->
    "STATS"
    ^ String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) kvs)
  | Error (Parse msg) -> "ERR parse " ^ clean_message msg
  | Error (Domain msg) -> "ERR domain " ^ clean_message msg
  | Error (Failed msg) -> "ERR failed " ^ clean_message msg
  | Error Draining -> "ERR draining"
  | Error Timeout -> "ERR timeout"
  | Error Deadline -> "ERR deadline"

let field_value word key =
  let prefix = key ^ "=" in
  let n = String.length prefix in
  if String.length word > n && String.sub word 0 n = prefix then
    Some (String.sub word n (String.length word - n))
  else None

let parse_ok words =
  match words with
  | [ w_key; w_src; w_rt; w_gf; w_tr; w_cfg ] -> begin
    match
      ( field_value w_key "key",
        Option.bind (field_value w_src "source") source_of_string,
        Option.bind (field_value w_rt "runtime_us") float_of_string_opt,
        Option.bind (field_value w_gf "gflops") float_of_string_opt,
        Option.bind (field_value w_tr "trials") int_of_string_opt,
        Option.bind (field_value w_cfg "config") Core.Config.of_compact )
    with
    | Some key, Some source, Some runtime_us, Some gflops, Some trials, Some config ->
      Some (Result { key; source; runtime_us; gflops; trials; config })
    | _ -> None
  end
  | _ -> None

let rest_of_line line n_words =
  (* Everything after the first [n_words] space-separated words. *)
  let words = split_words line in
  let rec drop n = function xs when n = 0 -> xs | _ :: xs -> drop (n - 1) xs | [] -> [] in
  String.concat " " (drop n_words words)

let parse_response line =
  match split_words line with
  | [ "PONG" ] -> Some Pong
  | "STATS" :: kvs ->
    let parsed =
      List.map
        (fun w ->
          match String.index_opt w '=' with
          | Some i ->
            Some (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
          | None -> None)
        kvs
    in
    if List.for_all Option.is_some parsed then
      Some (Stats_reply (List.map Option.get parsed))
    else None
  | "OK" :: fields -> parse_ok fields
  | [ "BUSY"; w ] ->
    Option.bind (field_value w "retry-after") int_of_string_opt
    |> Option.map (fun s -> Busy { retry_after_s = s })
  | "ERR" :: "draining" :: [] -> Some (Error Draining)
  | "ERR" :: "timeout" :: [] -> Some (Error Timeout)
  | "ERR" :: "deadline" :: [] -> Some (Error Deadline)
  (* An empty payload is still a typed error: the chaos harness asserts
     every emitted line parses, whatever the message ended up being. *)
  | "ERR" :: "parse" :: _ -> Some (Error (Parse (rest_of_line line 2)))
  | "ERR" :: "domain" :: _ -> Some (Error (Domain (rest_of_line line 2)))
  | "ERR" :: "failed" :: _ -> Some (Error (Failed (rest_of_line line 2)))
  | _ -> None

let is_typed_line line = parse_response line <> None
