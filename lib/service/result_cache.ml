(* Content-addressed durable result cache.

   On-disk record (one Durable payload, tab-separated; the canonical string
   goes last and the config compact form is token-shaped, so fields parse
   unambiguously):

     v2 TAB generation TAB key TAB source TAB runtime%h TAB gflops%h
        TAB predicted%h TAB trials TAB config TAB canonical

   Runtimes travel as hex floats so a reloaded entry is bit-identical to
   the one that was stored; [predicted] is the noise-free analytic price of
   the stored config, carried so the auditor can demand a bit-identical
   reprice.  "v1" records (which lacked the analytic price) read as stale —
   a schema bump is a soft invalidation, exactly like a generation change. *)

let key_of_canonical = Verify.Audit.content_key

type entry = {
  key : string;
  canonical : string;
  source : Protocol.source;
  runtime_us : float;
  gflops : float;
  predicted_us : float;
  trials : int;
  config : Core.Config.t;
}

type t = {
  path : string;
  generation : string;
  table : (string, entry) Hashtbl.t;  (* key -> newest entry *)
  audit : bool;
  mutable dropped : int;
  mutable stale : int;
  mutable audited : int;
  mutable quarantined : int;
  mutable scrubbed : int;
  mutable scrub_cursor : string list;  (* keys left in the current pass *)
}

let kind = "service-cache"

let no_framing_hazard s =
  not (String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') s)

let to_line ~generation e =
  if not (no_framing_hazard e.canonical) then
    invalid_arg "Result_cache: tab or newline in canonical string";
  if not (Float.is_finite e.runtime_us && e.runtime_us > 0.0) then
    invalid_arg "Result_cache: non-finite or non-positive runtime";
  Printf.sprintf "v2\t%s\t%s\t%s\t%h\t%h\t%h\t%d\t%s\t%s" generation e.key
    (Protocol.source_to_string e.source)
    e.runtime_us e.gflops e.predicted_us e.trials
    (Core.Config.to_compact e.config)
    e.canonical

(* A record that survived its checksum but fails to decode is reported with
   a reason token: audited loads quarantine it (the bytes are evidence of
   *semantic* corruption, which framing CRCs cannot see), plain loads count
   it in [dropped] as before. *)
let of_line ~generation line =
  match String.split_on_char '\t' line with
  | "v2" :: gen :: _ when gen <> generation -> `Stale
  | [ "v2"; _; key; source; runtime; gflops; predicted; trials; config; canonical ]
    -> begin
    match
      ( Protocol.source_of_string source,
        float_of_string_opt runtime,
        float_of_string_opt gflops,
        float_of_string_opt predicted,
        int_of_string_opt trials,
        Core.Config.of_compact config )
    with
    | Some source, Some runtime_us, Some gflops, Some predicted_us, Some trials,
      Some config ->
      if not (Float.is_finite runtime_us && runtime_us > 0.0) then `Bad "cost-not-finite"
      else if key <> key_of_canonical canonical then `Bad "key-mismatch"
      else `Live { key; canonical; source; runtime_us; gflops; predicted_us; trials; config }
    | _ -> `Bad "undecodable"
  end
  | "v1" :: _ -> `Stale
  | _ -> `Bad "schema"

(* The full strict audit of one live entry: domain membership, launch
   feasibility, bit-identical reprice of predicted cost / gflops / Q ratio,
   runtime inside the noise band, key = hash(canonical). *)
let audit_entry (e : entry) =
  Verify.Audit.check ~key:e.key ~gflops:e.gflops ~predicted_us:e.predicted_us
    ~canonical:e.canonical ~config:e.config ~runtime_us:e.runtime_us ()

let quarantine_path t = Quarantine.path_for t.path

let quarantine t ~reason ~payload =
  t.quarantined <- t.quarantined + 1;
  Quarantine.append ~path:(quarantine_path t) { Quarantine.reason; payload }

let reason_of_verdict = function
  | Verify.Audit.Ok -> None
  | Verify.Audit.Suspect reasons ->
    Some (String.concat "," (List.map Verify.Audit.reason_token reasons))

let flush t =
  let live =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun a b -> compare a.key b.key)
  in
  Util.Durable.write_snapshot ~kind t.path
    (List.map (to_line ~generation:t.generation) live)

let load ?(audit = false) ~generation path =
  if not (no_framing_hazard generation) then
    invalid_arg "Result_cache.load: tab or newline in generation";
  let outcome = Util.Durable.repair ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  let t =
    {
      path;
      generation;
      table = Hashtbl.create 64;
      audit;
      dropped = Util.Durable.dropped outcome;
      stale = 0;
      audited = 0;
      quarantined = 0;
      scrubbed = 0;
      scrub_cursor = [];
    }
  in
  List.iter
    (fun payload ->
      match of_line ~generation payload with
      | `Live e ->
        if not audit then Hashtbl.replace t.table e.key e
        else begin
          t.audited <- t.audited + 1;
          match reason_of_verdict (audit_entry e) with
          | None -> Hashtbl.replace t.table e.key e
          | Some reason -> quarantine t ~reason ~payload
        end
      | `Stale -> t.stale <- t.stale + 1
      | `Bad reason ->
        if audit then quarantine t ~reason ~payload
        else t.dropped <- t.dropped + 1)
    (Util.Durable.records outcome);
  (* Quarantined lines stay in the ledger, not in the cache file: compact
     immediately so the next load starts from a clean, [Intact] snapshot
     and does not quarantine the same bytes twice. *)
  if t.quarantined > 0 then flush t;
  t

let generation t = t.generation
let path t = t.path

let find t ~canonical =
  match Hashtbl.find_opt t.table (key_of_canonical canonical) with
  | Some e when e.canonical = canonical ->
    if not t.audit then Some e
    else begin
      (* Hit-time re-audit: the table is trusted memory, but it was filled
         from disk — re-checking before answering costs microseconds and
         turns a poisoned hit into a fresh tune instead of a wrong answer. *)
      t.audited <- t.audited + 1;
      match reason_of_verdict (audit_entry e) with
      | None -> Some e
      | Some reason ->
        quarantine t ~reason ~payload:(to_line ~generation:t.generation e);
        Hashtbl.remove t.table e.key;
        None
    end
  | Some _ (* hash collision: a miss, never the wrong layer's answer *) | None -> None

let put t e =
  let line = to_line ~generation:t.generation e in
  Hashtbl.replace t.table e.key e;
  Util.Durable.append ~kind t.path line

(* --- scrubbing ----------------------------------------------------------- *)

(* The incremental scrubber audits [n] entries per call, round-robin over a
   sorted key snapshot, wrapping to a fresh pass when the cursor drains.
   Audits run regardless of the load-time [audit] flag: scrubbing is an
   explicit request. *)

let scrub_one t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()  (* removed since the pass began *)
  | Some e -> (
    t.audited <- t.audited + 1;
    t.scrubbed <- t.scrubbed + 1;
    match reason_of_verdict (audit_entry e) with
    | None -> ()
    | Some reason ->
      quarantine t ~reason ~payload:(to_line ~generation:t.generation e);
      Hashtbl.remove t.table e.key)

let sorted_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let scrub_step t ~n =
  let examined = ref 0 in
  let budget = ref n in
  while
    !budget > 0
    &&
    (if t.scrub_cursor = [] then t.scrub_cursor <- sorted_keys t;
     t.scrub_cursor <> [])
  do
    match t.scrub_cursor with
    | [] -> ()
    | key :: rest ->
      t.scrub_cursor <- rest;
      scrub_one t key;
      incr examined;
      decr budget
  done;
  !examined

type scrub_report = { examined : int; quarantined : int; remaining : int }

let scrub t =
  let keys = sorted_keys t in
  let q0 = t.quarantined in
  List.iter (scrub_one t) keys;
  t.scrub_cursor <- [];
  flush t;
  {
    examined = List.length keys;
    quarantined = t.quarantined - q0;
    remaining = Hashtbl.length t.table;
  }

let entries t = Hashtbl.length t.table
let dropped t = t.dropped
let stale t = t.stale
let audited (t : t) = t.audited
let quarantined (t : t) = t.quarantined
let scrubbed (t : t) = t.scrubbed
