(* Content-addressed durable result cache.

   On-disk record (one Durable payload, tab-separated; the canonical string
   goes last and the config compact form is token-shaped, so fields parse
   unambiguously):

     v1 TAB generation TAB key TAB source TAB runtime%h TAB gflops%h
        TAB trials TAB config TAB canonical

   Runtimes travel as hex floats so a reloaded entry is bit-identical to
   the one that was stored. *)

(* FNV-1a, 64-bit: cheap, stable, and good enough dispersion for a cache
   whose correctness does not depend on collision-freedom (lookups verify
   the canonical string before answering). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let key_of_canonical s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

type entry = {
  key : string;
  canonical : string;
  source : Protocol.source;
  runtime_us : float;
  gflops : float;
  trials : int;
  config : Core.Config.t;
}

type t = {
  path : string;
  generation : string;
  table : (string, entry) Hashtbl.t;  (* key -> newest entry *)
  mutable dropped : int;
  mutable stale : int;
}

let kind = "service-cache"

let no_framing_hazard s =
  not (String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') s)

let to_line ~generation e =
  if not (no_framing_hazard e.canonical) then
    invalid_arg "Result_cache: tab or newline in canonical string";
  if not (Float.is_finite e.runtime_us && e.runtime_us > 0.0) then
    invalid_arg "Result_cache: non-finite or non-positive runtime";
  Printf.sprintf "v1\t%s\t%s\t%s\t%h\t%h\t%d\t%s\t%s" generation e.key
    (Protocol.source_to_string e.source)
    e.runtime_us e.gflops e.trials
    (Core.Config.to_compact e.config)
    e.canonical

(* [None] on any malformed field: a record that survived its checksum but
   fails semantic validation is treated as stale garbage, not a crash. *)
let of_line ~generation line =
  match String.split_on_char '\t' line with
  | [ "v1"; gen; key; source; runtime; gflops; trials; config; canonical ] -> begin
    match
      ( Protocol.source_of_string source,
        float_of_string_opt runtime,
        float_of_string_opt gflops,
        int_of_string_opt trials,
        Core.Config.of_compact config )
    with
    | Some source, Some runtime_us, Some gflops, Some trials, Some config
      when Float.is_finite runtime_us && runtime_us > 0.0
           && key = key_of_canonical canonical ->
      if gen = generation then
        `Live { key; canonical; source; runtime_us; gflops; trials; config }
      else `Stale
    | _ -> `Malformed
  end
  | _ -> `Malformed

let load ~generation path =
  if not (no_framing_hazard generation) then
    invalid_arg "Result_cache.load: tab or newline in generation";
  let outcome = Util.Durable.repair ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  let t =
    {
      path;
      generation;
      table = Hashtbl.create 64;
      dropped = Util.Durable.dropped outcome;
      stale = 0;
    }
  in
  List.iter
    (fun payload ->
      match of_line ~generation payload with
      | `Live e -> Hashtbl.replace t.table e.key e
      | `Stale -> t.stale <- t.stale + 1
      | `Malformed -> t.dropped <- t.dropped + 1)
    (Util.Durable.records outcome);
  t

let generation t = t.generation
let path t = t.path

let find t ~canonical =
  match Hashtbl.find_opt t.table (key_of_canonical canonical) with
  | Some e when e.canonical = canonical -> Some e
  | Some _ (* hash collision: a miss, never the wrong layer's answer *) | None -> None

let put t e =
  let line = to_line ~generation:t.generation e in
  Hashtbl.replace t.table e.key e;
  Util.Durable.append ~kind t.path line

let flush t =
  let live =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun a b -> compare a.key b.key)
  in
  Util.Durable.write_snapshot ~kind t.path
    (List.map (to_line ~generation:t.generation) live)

let entries t = Hashtbl.length t.table
let dropped t = t.dropped
let stale t = t.stale
