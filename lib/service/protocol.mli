(** The tuning service's line-oriented wire protocol.

    One request per line, one response line per request, both newline-free
    ASCII.  The grammar is deliberately tiny and fully typed on both sides:
    a request either parses into a {!request} or yields a [Parse] error
    {e response} — the daemon never crashes on wire input, and every
    outcome a client can observe is one of the {!response} constructors.

    Requests:

    {v PING
       STATS
       TUNE cin=64 cout=64 size=56 k=3 [hin= win= kh= kw= stride= pad=
            padh= padw= batch= groups= arch=v100 algo=direct|winograd
            e=2 pruned=true deadline-ms=5000] v}

    Responses:

    {v PONG
       STATS key=value ...
       OK key=<16hex> source=tuned|replayed|degraded|cached
          runtime_us=<f> gflops=<f> trials=<n> config=<compact>
       BUSY retry-after=<seconds>
       ERR parse|domain|failed <message>
       ERR draining
       ERR timeout
       ERR deadline v}

    Field order in a [TUNE] request is free and defaults may be elided;
    the daemon canonicalizes ([Core.Search_space.canonical_key]) before
    hashing, so permutations and elided defaults address the same cache
    entry.  Unknown [key=value] fields are {e ignored} — the
    forward-compatibility rule that let [deadline-ms] be added without
    breaking older daemons; malformed words, duplicate keys and bad values
    in known fields remain parse errors. *)

val max_line_bytes : int
(** Upper bound on a request line (4096 bytes).  The daemon rejects longer
    lines with a [Parse] error instead of buffering without bound. *)

(** {1 Requests} *)

type tune_request = {
  spec : Conv.Conv_spec.t;
  arch : Gpu_sim.Arch.t;
  algorithm : Core.Config.algorithm;
  pruned : bool;
  deadline_ms : int option;
      (** client's total request deadline, milliseconds of budget remaining
          when the request was sent.  Serving-side only: it never enters
          the canonical key, so the same shape with different deadlines
          addresses the same cache entry.  The engine sheds a queued tune
          whose every waiter's deadline has already passed ([ERR deadline])
          instead of tuning for a client that stopped listening. *)
}

type request =
  | Ping
  | Stats
  | Tune of tune_request

val parse_request : string -> (request, string) result
(** Never raises.  [Error msg] covers unknown verbs, unknown or duplicate
    fields, malformed integers, missing required fields ([cin], [cout],
    [size] or [hin]+[win], [k] or [kh]+[kw]) and spec-level rejections
    (non-positive sizes, empty output, groups not dividing channels). *)

val canonical_of_tune : tune_request -> string
(** [Core.Search_space.canonical_key] of the request's quadruple — the
    string whose hash is the cache key. *)

val render_tune : tune_request -> string
(** A parseable [TUNE] request line for the tuple (used by clients; the
    round-trip [parse_request (render_tune r)] reproduces [r]). *)

val arch_of_alias : string -> Gpu_sim.Arch.t option
val alias_of_arch : Gpu_sim.Arch.t -> string
(** The wire-level short architecture names, delegated to
    [Gpu_sim.Arch.of_alias]/[alias].  The service suite checks the mapping
    is a total bijection over [Gpu_sim.Arch.all] (round-tripping
    [1080ti|v100|titanx|gfx906]), so a new preset cannot silently become
    unreachable from the wire. *)

(** {1 Responses} *)

type source =
  | Src_tuned  (** measured search completed live *)
  | Src_replayed  (** satisfied from a tune journal, no live measurement *)
  | Src_degraded  (** breaker/budget degradation: analytic or truncated best *)
  | Src_cached  (** served from the shared result cache, zero tuning *)

val source_to_string : source -> string
val source_of_string : string -> source option

type error =
  | Parse of string  (** the request line did not parse *)
  | Domain of string  (** the spec admits no valid configuration *)
  | Failed of string  (** the supervised tune failed; payload is the cause *)
  | Draining  (** the daemon is shutting down and accepts no new work *)
  | Timeout  (** the connection idled past its read deadline *)
  | Deadline
      (** the request's [deadline-ms] expired before its tune could start;
          the engine shed the work instead of tuning into a dead wait *)

type result_payload = {
  key : string;  (** 16-hex content hash of the canonical request *)
  source : source;
  runtime_us : float;
  gflops : float;
  trials : int;  (** measurements behind the answer (0 for cache hits) *)
  config : Core.Config.t;
}

type response =
  | Result of result_payload
  | Busy of { retry_after_s : int }
  | Pong
  | Stats_reply of (string * string) list
  | Error of error

val render_response : response -> string
(** Single line, no trailing newline, never raises. *)

val parse_response : string -> response option
(** Inverse of {!render_response} (client side; [None] on malformed input).
    Round-trips exactly for every constructor. *)

val is_typed_line : string -> bool
(** [true] iff the line parses as some {!response} — what the chaos
    harness asserts of {e every} byte the service emits. *)
