(** End-to-end CNN inference timing (Figure 12's experiment).

    For each distinct layer shape the runner times two implementations on the
    simulated GPU:

    - the vendor library's best kernel (best of cuDNN's direct family, plus
      its Winograd pipeline when the layer is eligible);
    - the paper's approach: the auto-tuning engine run over the pruned
      domain, for the direct dataflow and — when eligible — the Winograd
      dataflow, keeping the faster.

    Model time is the count-weighted sum over layers.  Tuning results are
    memoised per (architecture, layer shape, algorithm) so repeated shapes
    across and within models tune once. *)

type backend = Cudnn | Miopen

type layer_timing = {
  layer : Layer.t;
  ours_us : float;  (** per single execution of the layer *)
  ours_algorithm : string;
  ours_result : Core.Tuner.result option;
      (** the winning algorithm's memoised tuning result — best
          configuration, measured runtime, stop reason — for harnesses
          (the golden-file sweep) that need more than the headline time.
          [None] when the layer fell back to the library kernel. *)
  library_us : float;
  library_algorithm : string;
}

type model_timing = {
  model : string;
  layers : layer_timing list;
  ours_total_us : float;  (** count-weighted *)
  library_total_us : float;
  speedup : float;  (** library / ours *)
  health : Core.Supervisor.report option;
      (** run health when timed under supervision ([supervise] passed to
          {!time_model}): per-task outcomes, fault statistics, budget
          accounting.  [None] for unsupervised runs. *)
}

val clear_cache : unit -> unit
(** Drops memoised tuning results (tests use this for isolation). *)

val prime_from_log : ?seed:int -> string -> int
(** Loads a [Core.Tuning_log] file into the memo table (skipping keys already
    present) and returns how many entries were primed.  Primed results carry
    the best configuration and runtime only (no search history). *)

val save_log : string -> int
(** Writes the memo table's best configurations to a tuning-log file;
    returns the number of entries written. *)

val candidates : Layer.t -> Core.Config.algorithm list
(** The algorithm variants {!time_layer} tunes for a layer: the direct
    dataflow always, plus the Winograd dataflow at the layer's tile
    parameter when eligible.  Exposed so warm-cache harnesses can prime
    exactly the keys a timing run will ask for. *)

val find_result :
  ?seed:int -> Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Core.Config.algorithm ->
  Core.Tuner.result option
(** The memoised result for one (architecture, layer shape, algorithm) key,
    if that key has been tuned or primed in this process.  Seed defaults
    to 0, matching {!tuned_runtime}. *)

val prime_result :
  ?seed:int -> Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Core.Config.algorithm ->
  Core.Tuner.result -> bool
(** Inserts a result into the memo table (e.g. replayed from a
    [Service.Result_cache]), so subsequent {!time_layer} calls on the same
    key answer without tuning.  Returns [false] — and changes nothing —
    when the key is already present. *)

val time_layer :
  ?seed:int -> ?max_measurements:int -> ?backend:backend ->
  ?faults:Gpu_sim.Faults.profile -> ?journal_dir:string ->
  ?session:Core.Supervisor.session ->
  Gpu_sim.Arch.t -> Layer.t -> layer_timing
(** Defaults: seed 0, 200 measurements per tuning run, cuDNN backend, no
    injected faults, no journal, no supervision.

    With [session], every tuning run goes through
    [Core.Supervisor.tune_task]: a run whose circuit breaker trips or whose
    budget share expires degrades to an analytic configuration (recorded in
    the session, runtime still usable), and a layer with no usable tuning
    outcome at all reports the library kernel as its own
    ([ours_algorithm = "library-fallback:..."]) instead of raising.  Memo
    cache hits are recorded as replayed tasks that cost the budget
    nothing. *)

val time_model :
  ?seed:int -> ?max_measurements:int -> ?backend:backend ->
  ?faults:Gpu_sim.Faults.profile -> ?journal_dir:string ->
  ?supervise:Core.Supervisor.policy ->
  Gpu_sim.Arch.t -> Models.t -> model_timing
(** [supervise] times the model under a fresh supervision session — one
    budgeted task per (layer shape, algorithm) candidate — and fills
    [health].  Absent faults and with an unbounded budget the layer
    timings are identical to the unsupervised run's. *)

val tuned_runtime :
  ?seed:int -> ?max_measurements:int ->
  ?faults:Gpu_sim.Faults.profile -> ?journal_dir:string ->
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Core.Config.algorithm -> Core.Tuner.result
(** The memoised tuning entry point used by [time_layer]; exposed for the
    benches so figures reuse the same cache.  [faults] injects measurement
    faults; [journal_dir] makes each tuning run journal-backed (one file per
    memo key under the directory), so a killed model-timing run resumes its
    in-flight layer instead of re-measuring it from scratch. *)
