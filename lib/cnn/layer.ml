type t = { name : string; spec : Conv.Conv_spec.t; count : int }

let make ?(count = 1) name spec =
  if count < 1 then invalid_arg "Layer.make: non-positive count";
  { name; spec; count }

let flops t = float_of_int t.count *. Conv.Conv_spec.flops t.spec

let winograd_eligible t = Conv.Winograd.supported t.spec && t.spec.k_h >= 2
