type backend = Cudnn | Miopen

type layer_timing = {
  layer : Layer.t;
  ours_us : float;
  ours_algorithm : string;
  ours_result : Core.Tuner.result option;
  library_us : float;
  library_algorithm : string;
}

type model_timing = {
  model : string;
  layers : layer_timing list;
  ours_total_us : float;
  library_total_us : float;
  speedup : float;
  health : Core.Supervisor.report option;
}

let cache : (string, Core.Tuner.result) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let cache_key (arch : Gpu_sim.Arch.t) spec algorithm seed =
  Printf.sprintf "%s|%s|%s|%d" arch.name
    (Conv.Conv_spec.to_string spec)
    (Core.Config.algorithm_to_string algorithm)
    seed

(* --- persistence: prime/flush the memo table through Core.Tuning_log --- *)

let prime_from_log ?(seed = 0) path =
  (* [load] salvages what a torn write or bit flip left and warns about the
     loss on stderr; priming proceeds with every record that validated. *)
  let { Core.Tuning_log.entries; _ } = Core.Tuning_log.load path in
  let best = Core.Tuning_log.best_per_key entries in
  let primed = ref 0 in
  Hashtbl.iter
    (fun _ (e : Core.Tuning_log.entry) ->
      let key =
        Printf.sprintf "%s|%s|%s|%d" e.arch_name e.spec_key
          (Core.Config.algorithm_to_string e.config.algorithm)
          seed
      in
      if not (Hashtbl.mem cache key) then begin
        incr primed;
        Hashtbl.add cache key
          {
            Core.Tuner.best_config = e.config;
            best_runtime_us = e.runtime_us;
            best_gflops = 0.0;
            measurements = 0;
            converged_at = 0;
            history = [];
            space_size = 0.0;
            faults = Core.Tuner.no_faults;
            stop = Core.Tuner.Converged;
          }
      end)
    best;
  !primed

let save_log path =
  let entries = ref [] in
  Hashtbl.iter
    (fun key (result : Core.Tuner.result) ->
      match String.split_on_char '|' key with
      | [ arch_name; spec_key; _alg; _seed ] ->
        entries :=
          {
            Core.Tuning_log.arch_name;
            spec_key;
            runtime_us = result.best_runtime_us;
            config = result.best_config;
          }
          :: !entries
      | _ -> ())
    cache;
  Core.Tuning_log.save path !entries;
  List.length !entries

(* A filesystem-safe journal filename for one memo key: readable prefix plus
   a hash suffix to keep distinct keys from colliding after sanitising. *)
let journal_path dir key =
  let safe =
    String.map (fun c -> if c = '|' || c = ' ' || c = '/' then '_' else c) key
  in
  Filename.concat dir (Printf.sprintf "%s-%08x.journal" safe (Hashtbl.hash key))

let tuned_runtime ?(seed = 0) ?(max_measurements = 200) ?faults ?journal_dir arch spec
    algorithm =
  let key = cache_key arch spec algorithm seed in
  match Hashtbl.find_opt cache key with
  | Some result -> result
  | None ->
    let journal = Option.map (fun dir -> journal_path dir key) journal_dir in
    let space = Core.Search_space.make arch spec algorithm in
    let result = Core.Tuner.tune ~seed ~max_measurements ?faults ?journal ~space () in
    Hashtbl.add cache key result;
    result

let find_result ?(seed = 0) arch spec algorithm =
  Hashtbl.find_opt cache (cache_key arch spec algorithm seed)

let prime_result ?(seed = 0) arch spec algorithm result =
  let key = cache_key arch spec algorithm seed in
  if Hashtbl.mem cache key then false
  else begin
    Hashtbl.add cache key result;
    true
  end

(* --- supervised tuning: route one memo key through a Supervisor session --- *)

(* The memoised runtime becomes whatever the outcome carries, so repeated
   shapes cost the session nothing; a degraded task caches a synthesised
   result (the analytic or breaker-salvaged best) whose [stop] records why
   the search was cut short.  The truthful outcome lives in the session's
   report either way. *)
let result_of_degraded spec reason config runtime_us faults =
  let stop =
    match (reason : Core.Supervisor.degrade_reason) with
    | Core.Supervisor.Breaker_open { consecutive; _ } ->
      Core.Tuner.Breaker_tripped consecutive
    | Core.Supervisor.Budget_exhausted _ -> Core.Tuner.Deadline_reached
  in
  {
    Core.Tuner.best_config = config;
    best_runtime_us = runtime_us;
    best_gflops = Core.Tuner.nominal_gflops spec ~runtime_us;
    measurements = 0;
    converged_at = 0;
    history = [];
    space_size = 0.0;
    faults;
    stop;
  }

let supervised_outcome session ~seed ~max_measurements ?faults ?journal_dir arch spec
    algorithm =
  let key = cache_key arch spec algorithm seed in
  match Hashtbl.find_opt cache key with
  | Some result -> Core.Supervisor.record_cached session ~key result
  | None -> (
    match Core.Search_space.make arch spec algorithm with
    | exception Invalid_argument msg ->
      Core.Supervisor.record_failed session ~key (Core.Supervisor.Empty_domain msg)
    | space ->
      let journal = Option.map (fun dir -> journal_path dir key) journal_dir in
      let outcome =
        Core.Supervisor.tune_task session ~key ~seed ~max_measurements ?faults ?journal
          ~space ()
      in
      (match outcome with
      | Core.Supervisor.Tuned r | Core.Supervisor.Replayed r -> Hashtbl.add cache key r
      | Core.Supervisor.Degraded { reason; config; runtime_us; faults } ->
        Hashtbl.add cache key (result_of_degraded spec reason config runtime_us faults)
      | Core.Supervisor.Failed _ -> ());
      outcome)

(* Winograd on large-e tiles makes no sense for tiny images; use F(2x2) as
   the paper does in its kernels, falling back to F(4x4) only when the output
   is large enough to amortise the bigger transform. *)
let winograd_e (spec : Conv.Conv_spec.t) =
  if Conv.Conv_spec.h_out spec >= 16 && spec.k_h = 3 then 4 else 2

let candidates (layer : Layer.t) =
  Core.Config.Direct_dataflow
  ::
  (if Layer.winograd_eligible layer then
     [ Core.Config.Winograd_dataflow (winograd_e layer.spec) ]
   else [])

let library_timing ~backend arch (layer : Layer.t) =
  let spec = layer.spec in
  let lib_direct =
    match backend with
    | Cudnn -> Gpu_sim.Library_sim.cudnn_direct arch spec
    | Miopen -> Gpu_sim.Library_sim.miopen_direct arch spec
  in
  if Layer.winograd_eligible layer then begin
    let w =
      match backend with
      | Cudnn -> Gpu_sim.Library_sim.cudnn_winograd arch spec
      | Miopen -> Gpu_sim.Library_sim.miopen_winograd arch spec
    in
    if w.runtime_us < lib_direct.runtime_us then w else lib_direct
  end
  else lib_direct

let time_layer ?(seed = 0) ?(max_measurements = 200) ?(backend = Cudnn) ?faults
    ?journal_dir ?session arch (layer : Layer.t) =
  let spec = layer.spec in
  let library = library_timing ~backend arch layer in
  (* [chosen] carries the winning algorithm variant so the memoised tuning
     result can be surfaced in [ours_result]; [None] means library fallback. *)
  let ours_us, ours_algorithm, chosen =
    match session with
    | None ->
      let direct =
        tuned_runtime ~seed ~max_measurements ?faults ?journal_dir arch spec
          Core.Config.Direct_dataflow
      in
      let ours_direct =
        (direct.best_runtime_us, "direct-dataflow", Some Core.Config.Direct_dataflow)
      in
      if Layer.winograd_eligible layer then begin
        let e = winograd_e spec in
        let wino =
          tuned_runtime ~seed ~max_measurements ?faults ?journal_dir arch spec
            (Core.Config.Winograd_dataflow e)
        in
        if wino.best_runtime_us < direct.best_runtime_us then
          ( wino.best_runtime_us,
            Printf.sprintf "winograd-dataflow-F(%d)" e,
            Some (Core.Config.Winograd_dataflow e) )
        else ours_direct
      end
      else ours_direct
    | Some session -> (
      (* Same candidate policy as the unsupervised path, but every tuning
         run goes through the supervisor: breaker trips and exhausted
         budget shares degrade to an analytic configuration instead of
         raising, and only a layer with no usable outcome at all falls all
         the way back to the library kernel. *)
      let direct =
        supervised_outcome session ~seed ~max_measurements ?faults ?journal_dir arch
          spec Core.Config.Direct_dataflow
      in
      let best =
        Option.map
          (fun us -> (us, "direct-dataflow", Core.Config.Direct_dataflow))
          (Core.Supervisor.outcome_runtime_us direct)
      in
      let best =
        if Layer.winograd_eligible layer then begin
          let e = winograd_e spec in
          let wino =
            supervised_outcome session ~seed ~max_measurements ?faults ?journal_dir
              arch spec (Core.Config.Winograd_dataflow e)
          in
          match Core.Supervisor.outcome_runtime_us wino with
          | Some us -> (
            match best with
            | Some (b, _, _) when b <= us -> best
            | _ ->
              Some
                ( us,
                  Printf.sprintf "winograd-dataflow-F(%d)" e,
                  Core.Config.Winograd_dataflow e ))
          | None -> best
        end
        else best
      in
      match best with
      | Some (us, name, algo) -> (us, name, Some algo)
      | None -> (library.runtime_us, "library-fallback:" ^ library.algorithm, None))
  in
  {
    layer;
    ours_us;
    ours_algorithm;
    ours_result = Option.bind chosen (fun algo -> find_result ~seed arch spec algo);
    library_us = library.runtime_us;
    library_algorithm = library.algorithm;
  }

let time_model ?seed ?max_measurements ?backend ?faults ?journal_dir ?supervise arch
    (model : Models.t) =
  let session =
    Option.map
      (fun policy ->
        let tasks =
          List.fold_left
            (fun acc (l : Layer.t) -> acc + if Layer.winograd_eligible l then 2 else 1)
            0 model.layers
        in
        Core.Supervisor.create ~policy ~tasks ())
      supervise
  in
  let layers =
    List.map
      (time_layer ?seed ?max_measurements ?backend ?faults ?journal_dir ?session arch)
      model.layers
  in
  let weighted f =
    List.fold_left (fun acc t -> acc +. (float_of_int t.layer.count *. f t)) 0.0 layers
  in
  let ours_total_us = weighted (fun t -> t.ours_us) in
  let library_total_us = weighted (fun t -> t.library_us) in
  {
    model = model.name;
    layers;
    ours_total_us;
    library_total_us;
    speedup = library_total_us /. ours_total_us;
    health = Option.map Core.Supervisor.report session;
  }
