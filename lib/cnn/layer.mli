(** Named convolution layers with repetition counts.

    A CNN's convolutional workload is summarised as a list of distinct layer
    shapes, each tagged with how many times the network executes it — enough
    to reproduce the paper's end-to-end comparisons (Figure 12), which are
    dominated by convolution time. *)

type t = {
  name : string;
  spec : Conv.Conv_spec.t;
  count : int;  (** occurrences in the network *)
}

val make : ?count:int -> string -> Conv.Conv_spec.t -> t
(** [count] defaults to 1; raises [Invalid_argument] when non-positive. *)

val flops : t -> float
(** Layer flops times its count. *)

val winograd_eligible : t -> bool
(** Stride 1 and a square kernel of edge >= 2 (1x1 convolutions gain nothing
    from Winograd and are excluded, as in cuDNN's heuristics). *)
