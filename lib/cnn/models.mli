(** Convolutional layer inventories of the evaluation networks.

    Shapes follow the original papers (AlexNet, SqueezeNet v1.1, VGG-19,
    ResNet-18/34, Inception-v3); only convolution layers are listed because
    they dominate inference time and are what both the paper and this
    reproduction accelerate.  [alexnet_table2] encodes exactly the rows of
    the paper's Table 2 (which deviates slightly from canonical AlexNet in
    conv4's output channels). *)

type t = { name : string; layers : Layer.t list }

val alexnet : t
val alexnet_table2 : Layer.t list
(** conv1-conv4 with the Table 2 shapes, in row order. *)

val squeezenet : t  (** v1.1 *)

val vgg19 : t
val resnet18 : t
val resnet34 : t
val inception_v3 : t

val mobilenet : t
(** MobileNet v1: depthwise-separable pairs (grouped 3x3 + pointwise 1x1);
    not part of the paper's Figure 12 set but included because the paper's
    introduction motivates it. *)

val evaluation_models : t list
(** The five models of Figure 12, in the paper's order. *)

val total_flops : t -> float
val num_layers : t -> int
(** Distinct layer shapes (not weighted by count). *)
