type t = { name : string; layers : Layer.t list }

let conv ?count ?pad ?stride name ~c_in ~size ~c_out ~k =
  Layer.make ?count name (Conv.Conv_spec.square ?pad ?stride ~c_in ~size ~c_out ~k ())

let alexnet =
  {
    name = "AlexNet";
    layers =
      [
        conv "conv1" ~c_in:3 ~size:227 ~c_out:96 ~k:11 ~stride:4;
        conv "conv2" ~c_in:96 ~size:27 ~c_out:256 ~k:5 ~pad:2;
        conv "conv3" ~c_in:256 ~size:13 ~c_out:384 ~k:3 ~pad:1;
        conv "conv4" ~c_in:384 ~size:13 ~c_out:384 ~k:3 ~pad:1;
        conv "conv5" ~c_in:384 ~size:13 ~c_out:256 ~k:3 ~pad:1;
      ];
  }

(* Table 2 rows verbatim: (Cin, Hin/Win, Cout, Hker/Wker, stride, padding). *)
let alexnet_table2 =
  [
    conv "conv1" ~c_in:3 ~size:227 ~c_out:96 ~k:11 ~stride:4;
    conv "conv2" ~c_in:96 ~size:27 ~c_out:256 ~k:5 ~pad:2;
    conv "conv3" ~c_in:256 ~size:13 ~c_out:384 ~k:3 ~pad:1;
    conv "conv4" ~c_in:384 ~size:13 ~c_out:256 ~k:3 ~pad:1;
  ]

(* SqueezeNet v1.1: fire module = squeeze 1x1 then parallel expand 1x1 and
   expand 3x3 (pad 1). *)
let fire name ~size ~c_in ~squeeze ~expand =
  [
    conv (name ^ "/squeeze1x1") ~c_in ~size ~c_out:squeeze ~k:1;
    conv (name ^ "/expand1x1") ~c_in:squeeze ~size ~c_out:expand ~k:1;
    conv (name ^ "/expand3x3") ~c_in:squeeze ~size ~c_out:expand ~k:3 ~pad:1;
  ]

let squeezenet =
  {
    name = "SqueezeNet";
    layers =
      conv "conv1" ~c_in:3 ~size:224 ~c_out:64 ~k:3 ~stride:2
      :: List.concat
           [
             fire "fire2" ~size:56 ~c_in:64 ~squeeze:16 ~expand:64;
             fire "fire3" ~size:56 ~c_in:128 ~squeeze:16 ~expand:64;
             fire "fire4" ~size:28 ~c_in:128 ~squeeze:32 ~expand:128;
             fire "fire5" ~size:28 ~c_in:256 ~squeeze:32 ~expand:128;
             fire "fire6" ~size:14 ~c_in:256 ~squeeze:48 ~expand:192;
             fire "fire7" ~size:14 ~c_in:384 ~squeeze:48 ~expand:192;
             fire "fire8" ~size:14 ~c_in:384 ~squeeze:64 ~expand:256;
             fire "fire9" ~size:14 ~c_in:512 ~squeeze:64 ~expand:256;
           ];
  }

let vgg19 =
  {
    name = "VGG-19";
    layers =
      [
        conv "conv1_1" ~c_in:3 ~size:224 ~c_out:64 ~k:3 ~pad:1;
        conv "conv1_2" ~c_in:64 ~size:224 ~c_out:64 ~k:3 ~pad:1;
        conv "conv2_1" ~c_in:64 ~size:112 ~c_out:128 ~k:3 ~pad:1;
        conv "conv2_2" ~c_in:128 ~size:112 ~c_out:128 ~k:3 ~pad:1;
        conv "conv3_1" ~c_in:128 ~size:56 ~c_out:256 ~k:3 ~pad:1;
        conv "conv3_x" ~count:3 ~c_in:256 ~size:56 ~c_out:256 ~k:3 ~pad:1;
        conv "conv4_1" ~c_in:256 ~size:28 ~c_out:512 ~k:3 ~pad:1;
        conv "conv4_x" ~count:3 ~c_in:512 ~size:28 ~c_out:512 ~k:3 ~pad:1;
        conv "conv5_x" ~count:4 ~c_in:512 ~size:14 ~c_out:512 ~k:3 ~pad:1;
      ];
  }

(* ResNet basic blocks: two 3x3 convs; stage transitions halve resolution
   with a strided conv plus a 1x1 projection shortcut. *)
let resnet ~name ~blocks =
  let b1, b2, b3, b4 = blocks in
  {
    name;
    layers =
      [
        conv "conv1" ~c_in:3 ~size:224 ~c_out:64 ~k:7 ~stride:2 ~pad:3;
        conv "layer1" ~count:(2 * b1) ~c_in:64 ~size:56 ~c_out:64 ~k:3 ~pad:1;
        conv "layer2_down" ~c_in:64 ~size:56 ~c_out:128 ~k:3 ~stride:2 ~pad:1;
        conv "layer2_proj" ~c_in:64 ~size:56 ~c_out:128 ~k:1 ~stride:2;
        conv "layer2" ~count:((2 * b2) - 1) ~c_in:128 ~size:28 ~c_out:128 ~k:3 ~pad:1;
        conv "layer3_down" ~c_in:128 ~size:28 ~c_out:256 ~k:3 ~stride:2 ~pad:1;
        conv "layer3_proj" ~c_in:128 ~size:28 ~c_out:256 ~k:1 ~stride:2;
        conv "layer3" ~count:((2 * b3) - 1) ~c_in:256 ~size:14 ~c_out:256 ~k:3 ~pad:1;
        conv "layer4_down" ~c_in:256 ~size:14 ~c_out:512 ~k:3 ~stride:2 ~pad:1;
        conv "layer4_proj" ~c_in:256 ~size:14 ~c_out:512 ~k:1 ~stride:2;
        conv "layer4" ~count:((2 * b4) - 1) ~c_in:512 ~size:7 ~c_out:512 ~k:3 ~pad:1;
      ];
  }

let resnet18 = resnet ~name:"ResNet-18" ~blocks:(2, 2, 2, 2)
let resnet34 = resnet ~name:"ResNet-34" ~blocks:(3, 4, 6, 3)

(* Inception-v3: the stem plus the convolution shapes of the repeated
   inception modules (35x35 "A" x3, 17x17 "B" x4, 8x8 "C" x2), with the 7x1 /
   1x7 factorised convolutions encoded by their true rectangular kernels. *)
let rect ?count ?pad_h ?pad_w ?stride name ~c_in ~size ~c_out ~k_h ~k_w =
  Layer.make ?count name
    (Conv.Conv_spec.make ?stride ?pad_h ?pad_w ~c_in ~h_in:size ~w_in:size ~c_out ~k_h ~k_w ())

let inception_v3 =
  {
    name = "Inception-v3";
    layers =
      [
        conv "stem1" ~c_in:3 ~size:299 ~c_out:32 ~k:3 ~stride:2;
        conv "stem2" ~c_in:32 ~size:149 ~c_out:32 ~k:3;
        conv "stem3" ~c_in:32 ~size:147 ~c_out:64 ~k:3 ~pad:1;
        conv "stem4" ~c_in:64 ~size:73 ~c_out:80 ~k:1;
        conv "stem5" ~c_in:80 ~size:73 ~c_out:192 ~k:3;
        (* 35x35 modules (x3): 1x1 branches, 5x5 branch, double-3x3 branch. *)
        conv "mixedA/1x1" ~count:9 ~c_in:256 ~size:35 ~c_out:64 ~k:1;
        conv "mixedA/5x5" ~count:3 ~c_in:48 ~size:35 ~c_out:64 ~k:5 ~pad:2;
        conv "mixedA/3x3a" ~count:3 ~c_in:64 ~size:35 ~c_out:96 ~k:3 ~pad:1;
        conv "mixedA/3x3b" ~count:6 ~c_in:96 ~size:35 ~c_out:96 ~k:3 ~pad:1;
        (* Grid reduction to 17x17. *)
        conv "reduceA/3x3" ~c_in:288 ~size:35 ~c_out:384 ~k:3 ~stride:2;
        (* 17x17 modules (x4): factorised 7x7 branches. *)
        conv "mixedB/1x1" ~count:8 ~c_in:768 ~size:17 ~c_out:192 ~k:1;
        rect "mixedB/1x7" ~count:8 ~c_in:160 ~size:17 ~c_out:160 ~k_h:1 ~k_w:7 ~pad_w:3;
        rect "mixedB/7x1" ~count:8 ~c_in:160 ~size:17 ~c_out:192 ~k_h:7 ~k_w:1 ~pad_h:3;
        (* Grid reduction to 8x8. *)
        conv "reduceB/3x3" ~c_in:192 ~size:17 ~c_out:320 ~k:3 ~stride:2;
        (* 8x8 modules (x2). *)
        conv "mixedC/1x1" ~count:4 ~c_in:1280 ~size:8 ~c_out:320 ~k:1;
        conv "mixedC/3x3" ~count:4 ~c_in:384 ~size:8 ~c_out:384 ~k:3 ~pad:1;
      ];
  }

(* MobileNet v1 (the paper's introduction motivates depthwise-separable
   convolutions): 3x3 depthwise (groups = channels) + 1x1 pointwise pairs. *)
let mobilenet =
  let dw ?stride ?count name ~c ~size =
    Layer.make ?count name
      (Conv.Conv_spec.square ?stride ~groups:c ~c_in:c ~size ~c_out:c ~k:3 ~pad:1 ())
  in
  let pw ?count name ~c_in ~size ~c_out =
    Layer.make ?count name (Conv.Conv_spec.square ~c_in ~size ~c_out ~k:1 ())
  in
  {
    name = "MobileNet-v1";
    layers =
      [
        conv "conv1" ~c_in:3 ~size:224 ~c_out:32 ~k:3 ~stride:2 ~pad:1;
        dw "dw2" ~c:32 ~size:112;
        pw "pw2" ~c_in:32 ~size:112 ~c_out:64;
        dw "dw3" ~c:64 ~size:112 ~stride:2;
        pw "pw3" ~c_in:64 ~size:56 ~c_out:128;
        dw "dw4" ~c:128 ~size:56;
        pw "pw4" ~c_in:128 ~size:56 ~c_out:128;
        dw "dw5" ~c:128 ~size:56 ~stride:2;
        pw "pw5" ~c_in:128 ~size:28 ~c_out:256;
        dw "dw6" ~c:256 ~size:28;
        pw "pw6" ~c_in:256 ~size:28 ~c_out:256;
        dw "dw7" ~c:256 ~size:28 ~stride:2;
        pw "pw7" ~c_in:256 ~size:14 ~c_out:512;
        dw "dw8" ~c:512 ~size:14 ~count:5;
        pw "pw8" ~c_in:512 ~size:14 ~c_out:512 ~count:5;
        dw "dw9" ~c:512 ~size:14 ~stride:2;
        pw "pw9" ~c_in:512 ~size:7 ~c_out:1024;
        dw "dw10" ~c:1024 ~size:7;
        pw "pw10" ~c_in:1024 ~size:7 ~c_out:1024;
      ];
  }

let evaluation_models = [ squeezenet; vgg19; resnet18; resnet34; inception_v3 ]

let total_flops t = List.fold_left (fun acc layer -> acc +. Layer.flops layer) 0.0 t.layers

let num_layers t = List.length t.layers
