(** Library entry point: CNN layer inventories and end-to-end timing. *)

module Layer = Layer
module Models = Models
module Runner = Runner
