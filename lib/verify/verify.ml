(** Library entry point: ground-truth verification subsystem.

    [Oracle] computes the exact pebble-game optimum [Q_opt(S)] for small
    DAGs; [Sandwich] pins the paper's analytic lower bounds and the repo's
    schedules on either side of it; [Conformance] is the property-based
    differential harness cross-checking every convolution implementation,
    the analytic I/O formulas against instrumented traffic counters, and the
    GPU cost model's monotonicity invariants; [Audit] is the pure
    answer-integrity invariant suite the tuning service runs at every trust
    boundary. *)

module Oracle = Oracle
module Sandwich = Sandwich
module Conformance = Conformance
module Audit = Audit
