(** The sandwich invariant, executed: for small convolution/matmul/Winograd
    DAGs, [analytic lower bound <= Q_opt <= attainable schedule cost].

    The left inequality checks the paper's Theorems 4.6/4.12/4.20 machinery
    against ground truth (a lower bound above the exact optimum would be a
    soundness bug); the right checks that the repo's schedules are legal
    plays the optimum can only improve on.  [compulsory_lower] (used inputs
    + outputs) is an unconditional second floor that does not depend on the
    paper's theory at all. *)

type instance = {
  name : string;
  graph : Dag.Graph.t;
  lower_bound : s:int -> float;  (** the paper's analytic bound at [S = s] *)
  upper_costs : s:int -> (string * int) list;
      (** attainable plays: named (schedule x eviction policy) replay costs *)
}

type check = {
  instance : string;
  s : int;
  analytic_lower : float;
  compulsory_lower : int;
  q_opt : int;
  schedule_upper : int;  (** cheapest attainable play *)
  expanded : int;
  holds : bool;
      (** [analytic <= q_opt && compulsory <= q_opt && q_opt <= schedule] *)
}

val compulsory_io : Dag.Graph.t -> int
(** Used inputs (those with at least one successor) + outputs. *)

val conv_instance :
  ?stride:int -> w:int -> h:int -> kw:int -> kh:int -> cin:int -> cout:int -> unit ->
  instance

val matmul_instance : m:int -> k:int -> n:int -> unit -> instance

val winograd_instance :
  tiles_w:int -> tiles_h:int -> cin:int -> cout:int -> e:int -> r:int -> unit -> instance

val grid : deep:bool -> (instance * int list) list
(** The (instance, S values) pairs the suite verifies: >= 30 sandwiches in
    the smoke grid, more and larger in the deep grid. *)

val check : ?budget:int -> instance -> s:int -> (check, int) result
(** Solve one sandwich; [Error expanded] when the oracle budget ran out.
    Raises [Failure] if the oracle's witness fails to replay through
    [Pebble_game.trace] to exactly [q_opt] — the cross-validation that keeps
    the solver honest against the rule checker. *)

val pp_check : Format.formatter -> check -> unit
