(** Answer-integrity auditor — the pure invariant suite behind every trust
    boundary of the tuning service.

    A tuning answer is a claim: "configuration [c] is a member of the pruned
    search space of [(arch, spec, algorithm)], it launches, and it costs
    [runtime_us]".  Because the repo's cost model is analytic (Li et al.'s
    observation that configurations can be priced and validated without
    measuring), every part of that claim can be re-derived in microseconds
    and checked:

    - the canonical string round-trips through the canonical renderer
      byte-exactly, and the claimed content key is its FNV-1a hash;
    - the configuration is a member of the claimed [Core.Search_space]
      ([validate]-clean) and launch-feasible per [Gpu_sim.Kernel_cost.check];
    - the claimed analytic cost re-prices bit-identically through the
      noise-free [Gpu_sim.Kernel_cost], the claimed gflops agree with the
      one nominal-gflops formula, and the measured runtime sits within a
      small plausibility band of the analytic price (the measurement model
      only ever adds bounded noise to it);
    - the dataflow traffic of the tile is at least the paper's I/O lower
      bound — a "better than optimal" answer is a corrupt answer.

    The checks are pure: no files, no sockets, no randomness.  [Durable]'s
    CRC framing catches bytes that rot; this module catches records that
    re-frame cleanly but lie. *)

(** Why a claim was rejected, carrying the offending values so quarantine
    ledgers and retry traces can name them. *)
type reason =
  | Canonical_unparseable of string
      (** the canonical string does not parse and re-render byte-equal *)
  | Key_mismatch of { claimed : string; derived : string }
      (** content key is not the FNV-1a hash of the canonical string *)
  | Empty_domain of string
      (** [Core.Search_space.make] rejects the (arch, spec, algorithm) *)
  | Not_in_domain of Core.Search_space.invalid
      (** configuration fails [Core.Search_space.validate] *)
  | Unlaunchable of Gpu_sim.Kernel_cost.launch_error
      (** block geometry fails [Gpu_sim.Kernel_cost.check] *)
  | Cost_not_finite of { field : string; value : float }
      (** a cost that must be finite and positive is not *)
  | Gflops_inconsistent of { claimed : float; derived : float }
      (** claimed gflops disagree with [Core.Tuner.nominal_gflops] *)
  | Reprice_drift of { field : string; claimed : float; derived : float }
      (** a claimed analytic quantity does not re-derive to the same value *)
  | Runtime_implausible of { runtime_us : float; predicted_us : float; rel : float }
      (** measured runtime outside the noise band around the analytic price *)
  | Q_bound_violated of { q_ratio : float }
      (** dataflow traffic below the paper's I/O lower bound *)

type verdict = Ok | Suspect of reason list
    (** [Suspect] carries every violated invariant, in checking order. *)

(** How exactly floats must agree.  Artifacts that store hex floats
    ([Result_cache], gold files) are held to bit-identity; the wire rounds
    runtime to [%.6f] and gflops to [%.2f], so a client-side audit gets the
    rounding slack and nothing more. *)
type policy = {
  label : string;
  rel : float;  (** relative slack for float agreement; 0 = bit-identical *)
  runtime_abs : float;  (** absolute slack on repriced runtimes *)
  gflops_abs : float;  (** absolute slack on the gflops consistency check *)
  band : float;  (** measured-vs-analytic plausibility half-width *)
  q_slack : float;  (** how far below 1.0 the Q ratio may round *)
}

val strict : policy
(** Bit-identical floats, 5% runtime band — for on-disk artifacts. *)

val wire : policy
(** Rounding-tolerant — for [%.6f]/[%.2f]-rendered protocol lines. *)

val content_key : string -> string
(** 16-hex-digit FNV-1a 64-bit hash of a canonical request string — the
    service's content address ([Service.Result_cache.key_of_canonical]
    delegates here). *)

val predicted_us : Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Core.Config.t -> float
(** Noise-free analytic price of a configuration ([Gpu_sim.Kernel_cost]
    runtime); NaN when the configuration cannot launch. *)

val q_ratio : Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Core.Config.t -> float
(** Dataflow traffic of the configuration's tile over the paper's I/O lower
    bound, both at S = half an SM's shared memory — the per-layer optimality
    gap.  At least 1 for any honest configuration. *)

val parse_spec_canonical : string -> Conv.Conv_spec.t option
(** Inverse of [Conv.Conv_spec.canonical]; [None] unless the input parses
    and re-renders byte-equal. *)

val parse_canonical :
  string -> (Gpu_sim.Arch.t * Conv.Conv_spec.t * Core.Config.algorithm * bool) option
(** Inverse of [Core.Search_space.canonical_key]; [None] unless the input
    parses (known architecture name included) and re-renders byte-equal. *)

val check :
  ?policy:policy ->
  ?key:string ->
  ?gflops:float ->
  ?predicted_us:float ->
  ?q_ratio:float ->
  canonical:string ->
  config:Core.Config.t ->
  runtime_us:float ->
  unit ->
  verdict
(** Audits one claim.  [canonical], [config] and [runtime_us] are the
    claim's core; [key], [gflops], [predicted_us] and [q_ratio] are audited
    when the artifact carries them and skipped when it does not.  Default
    policy {!strict}.  Pure and total: never raises on hostile input. *)

val reason_token : reason -> string
(** Short stable kebab-case tag ("key-mismatch", "q-bound-violated", ...) —
    what quarantine ledgers record. *)

val reason_to_string : reason -> string
(** Human-readable rendering including the offending values. *)

val verdict_to_string : verdict -> string
(** ["ok"], or ["suspect: tok1,tok2"] using {!reason_token}s. *)
