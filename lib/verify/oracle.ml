module PG = Pebble.Pebble_game
module G = Dag.Graph

type outcome = {
  q_opt : int;
  moves : PG.move list;
  expanded : int;
}

type verdict =
  | Optimal of outcome
  | Budget_exhausted of { expanded : int }

type mode = Normalized | Reference

let default_budget = 400_000

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

(* A* over game positions (red mask, blue mask).  Cost is the I/O performed so
   far; Compute and Free are free moves.  Every transition is produced by
   [Pebble_game.apply] (via [trace]), so the search never re-implements the
   legality rules; the returned witness replays through the same checker.

   The heuristic — one store per output still lacking a blue pebble — is
   admissible (each such output needs its own red->blue transfer) and
   consistent (no edge lowers it by more than its cost), so the first goal
   expansion is optimal.

   [Reference] mode explores raw single moves, restricted only by the
   trivially sound "delete only when full" rule.  [Normalized] mode (the
   default) additionally applies three classic WLOG normalisations of optimal
   play, each an exchange argument on move order:

   - a Store of a non-output is delayed until the moment its red pebble is
     evicted (between the two, the value is red, so nothing can consume the
     blue copy) — so spills appear only as Store;Free eviction compounds;
   - an output is stored the moment it is computed and its red pebble freed
     immediately (outputs have no successors, so the pebble has no further
     use, and an earlier blue pebble is never worse);
   - outputs are never Loaded and never recomputed once blue (nothing reads
     them back).

   Both modes agree exactly — a test checks them against each other on small
   random DAGs — but Normalized expands orders of magnitude fewer positions.

   Dominance pruning: expanding a position is pointless when an already
   expanded position with the same red set, a superset of blue pebbles and no
   more accumulated I/O exists — the dominator reproduces any continuation
   move-for-move at no extra cost (extra blue pebbles only widen the legal
   loads; a Store the follower performs is either legal for the dominator or
   already done).  The per-red-mask Pareto front of (blue mask, cost) pairs
   stays tiny and removes "spill something irrelevant first" orderings. *)
let solve ?(budget = default_budget) ?(mode = Normalized) g ~s =
  let n = G.num_vertices g in
  if n > PG.max_game_vertices then
    invalid_arg
      (Printf.sprintf "Oracle.solve: %d vertices exceed the %d-vertex limit" n
         PG.max_game_vertices);
  if s < G.max_in_degree g + 1 then
    invalid_arg "Oracle.solve: fast memory too small to compute every vertex";
  let outputs = G.outputs g in
  let outputs_mask = List.fold_left (fun m v -> m lor (1 lsl v)) 0 outputs in
  let is_output = Array.make n false in
  List.iter (fun v -> is_output.(v) <- true) outputs;
  let compute_vs = G.compute_vertices g in
  let h (st : PG.state) = popcount (outputs_mask land lnot st.blue) in
  let key (st : PG.state) = (st.red, st.blue) in
  let best_g : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let closed : (int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (int * int, PG.move list * (int * int)) Hashtbl.t = Hashtbl.create 4096 in
  (* Pareto fronts of expanded positions, keyed by red mask. *)
  let fronts : (int, (int * int) list) Hashtbl.t = Hashtbl.create 1024 in
  let dominated (st : PG.state) cost =
    match Hashtbl.find_opt fronts st.red with
    | None -> false
    | Some front ->
      List.exists (fun (blue, c) -> c <= cost && st.blue land blue = st.blue) front
  in
  let add_front (st : PG.state) cost =
    let front = Option.value (Hashtbl.find_opt fronts st.red) ~default:[] in
    let survivors =
      List.filter (fun (blue, c) -> not (cost <= c && blue land st.blue = blue)) front
    in
    Hashtbl.replace fronts st.red ((st.blue, cost) :: survivors)
  in
  (* Bucket queue on f = g + h; f never decreases along the expansion order. *)
  let buckets = ref (Array.make 64 []) in
  let push f st =
    if f >= Array.length !buckets then begin
      let bigger = Array.make (2 * max (Array.length !buckets) (f + 1)) [] in
      Array.blit !buckets 0 bigger 0 (Array.length !buckets);
      buckets := bigger
    end;
    !buckets.(f) <- st :: !buckets.(f)
  in
  let init = PG.start g in
  Hashtbl.replace best_g (key init) 0;
  push (h init) init;
  let expanded = ref 0 in
  let cur_f = ref 0 in
  let relax (prev_key : int * int) (st : PG.state) moves =
    match PG.trace g ~s ~init:st moves with
    | Error _ -> ()
    | Ok st' ->
      let g' = PG.state_io st' in
      let k' = key st' in
      let known = Hashtbl.find_opt best_g k' in
      if (match known with None -> true | Some old -> g' < old) then begin
        Hashtbl.replace best_g k' g';
        Hashtbl.replace parent k' (moves, prev_key);
        push (g' + h st') st'
      end
  in
  let expand_reference (st : PG.state) =
    let k = key st in
    if st.red_count < s then begin
      let blue_only = st.blue land lnot st.red in
      for v = 0 to n - 1 do
        if blue_only land (1 lsl v) <> 0 then relax k st [ PG.Load v ]
      done;
      Array.iter
        (fun v ->
          if (not (PG.in_red st v)) && List.for_all (PG.in_red st) (G.preds g v) then
            relax k st [ PG.Compute v ])
        compute_vs
    end
    else
      for v = 0 to n - 1 do
        if PG.in_red st v then relax k st [ PG.Free v ]
      done;
    let red_only = st.red land lnot st.blue in
    for v = 0 to n - 1 do
      if red_only land (1 lsl v) <> 0 then relax k st [ PG.Store v ]
    done
  in
  let expand_normalized (st : PG.state) =
    let k = key st in
    if st.red_count < s then begin
      let blue_only = st.blue land lnot st.red in
      for v = 0 to n - 1 do
        if blue_only land (1 lsl v) <> 0 && not is_output.(v) then
          relax k st [ PG.Load v ]
      done;
      Array.iter
        (fun v ->
          if (not (PG.in_red st v)) && List.for_all (PG.in_red st) (G.preds g v) then
            if is_output.(v) then begin
              if not (PG.in_blue st v) then
                relax k st [ PG.Compute v; PG.Store v; PG.Free v ]
            end
            else relax k st [ PG.Compute v ])
        compute_vs
    end
    else
      for v = 0 to n - 1 do
        if PG.in_red st v then begin
          relax k st [ PG.Free v ];
          if not (PG.in_blue st v) then relax k st [ PG.Store v; PG.Free v ]
        end
      done
  in
  let expand = match mode with Normalized -> expand_normalized | Reference -> expand_reference in
  let reconstruct goal_key =
    let rec back k acc =
      match Hashtbl.find_opt parent k with
      | None -> acc
      | Some (moves, prev) -> back prev (moves @ acc)
    in
    back goal_key []
  in
  let rec search () =
    while !cur_f < Array.length !buckets && !buckets.(!cur_f) = [] do
      incr cur_f
    done;
    if !cur_f >= Array.length !buckets then
      (* With s >= max in-degree + 1 a store-everything topological play always
         completes the game, so the queue cannot drain before a goal. *)
      assert false
    else begin
      match !buckets.(!cur_f) with
      | [] -> assert false
      | st :: rest ->
        !buckets.(!cur_f) <- rest;
        let k = key st in
        let cost = PG.state_io st in
        if Hashtbl.mem closed k || Hashtbl.find best_g k <> cost then search ()
        else if PG.complete g st then
          Optimal { q_opt = cost; moves = reconstruct k; expanded = !expanded }
        else if dominated st cost then begin
          Hashtbl.replace closed k ();
          search ()
        end
        else begin
          Hashtbl.replace closed k ();
          add_front st cost;
          incr expanded;
          if !expanded > budget then Budget_exhausted { expanded = !expanded }
          else begin
            expand st;
            search ()
          end
        end
    end
  in
  search ()

let q_opt_exn ?budget ?mode g ~s =
  match solve ?budget ?mode g ~s with
  | Optimal { q_opt; _ } -> q_opt
  | Budget_exhausted { expanded } ->
    failwith (Printf.sprintf "Oracle.q_opt_exn: budget exhausted after %d states" expanded)
