module PG = Pebble.Pebble_game
module G = Dag.Graph

type outcome = {
  q_opt : int;
  moves : PG.move list;
  expanded : int;
}

type verdict =
  | Optimal of outcome
  | Budget_exhausted of { expanded : int }

type mode = Normalized | Reference

let default_budget = 400_000

(* Both engines below run A* over game positions (red mask, blue mask).  Cost
   is the I/O performed so far; Compute and Free are free moves.  Every
   transition is produced by [Pebble_game.apply] (via [trace]), so the search
   never re-implements the legality rules; the returned witness replays
   through the same checker.

   The heuristic — one store per output still lacking a blue pebble — is
   admissible (each such output needs its own red->blue transfer) and
   consistent (no edge lowers it by more than its cost), so the first goal
   expansion is optimal.

   [Reference] mode explores raw single moves, restricted only by the
   trivially sound "delete only when full" rule.  [Normalized] mode (the
   default) additionally applies three classic WLOG normalisations of optimal
   play, each an exchange argument on move order:

   - a Store of a non-output is delayed until the moment its red pebble is
     evicted (between the two, the value is red, so nothing can consume the
     blue copy) — so spills appear only as Store;Free eviction compounds;
   - an output is stored the moment it is computed and its red pebble freed
     immediately (outputs have no successors, so the pebble has no further
     use, and an earlier blue pebble is never worse);
   - outputs are never Loaded and never recomputed once blue (nothing reads
     them back).

   Both modes agree exactly — a test checks them against each other on small
   random DAGs — but Normalized expands orders of magnitude fewer positions.

   Dominance pruning: a position is pointless when another position with the
   same red set, a superset of blue pebbles and no more accumulated I/O is
   already known — the dominator reproduces any continuation move-for-move at
   no extra cost (extra blue pebbles only widen the legal loads; a Store the
   follower performs is either legal for the dominator or already done).  The
   per-red-mask Pareto front of (blue mask, cost) pairs stays tiny and
   removes "spill something irrelevant first" orderings. *)

type shared = {
  n : int;
  outputs_mask : int;
  is_output : bool array;
  compute_vs : G.vertex array;
}

let prepare g ~s =
  let n = G.num_vertices g in
  if n > PG.max_game_vertices then
    invalid_arg
      (Printf.sprintf "Oracle.solve: %d vertices exceed the %d-vertex limit" n
         PG.max_game_vertices);
  if s < G.max_in_degree g + 1 then
    invalid_arg "Oracle.solve: fast memory too small to compute every vertex";
  let outputs = G.outputs g in
  let outputs_mask = List.fold_left (fun m v -> m lor (1 lsl v)) 0 outputs in
  let is_output = Array.make n false in
  List.iter (fun v -> is_output.(v) <- true) outputs;
  { n; outputs_mask; is_output; compute_vs = G.compute_vertices g }

(* Successor generation, shared verbatim by both engines so they explore the
   same move sets in the same order; [relax] receives each candidate
   compound. *)
let expand_from sh g ~s ~mode ~relax (st : PG.state) =
  match mode with
  | Reference ->
    if st.red_count < s then begin
      let blue_only = st.blue land lnot st.red in
      for v = 0 to sh.n - 1 do
        if blue_only land (1 lsl v) <> 0 then relax st [ PG.Load v ]
      done;
      Array.iter
        (fun v ->
          if (not (PG.in_red st v)) && List.for_all (PG.in_red st) (G.preds g v) then
            relax st [ PG.Compute v ])
        sh.compute_vs
    end
    else
      for v = 0 to sh.n - 1 do
        if PG.in_red st v then relax st [ PG.Free v ]
      done;
    let red_only = st.red land lnot st.blue in
    for v = 0 to sh.n - 1 do
      if red_only land (1 lsl v) <> 0 then relax st [ PG.Store v ]
    done
  | Normalized ->
    if st.red_count < s then begin
      let blue_only = st.blue land lnot st.red in
      for v = 0 to sh.n - 1 do
        if blue_only land (1 lsl v) <> 0 && not sh.is_output.(v) then
          relax st [ PG.Load v ]
      done;
      Array.iter
        (fun v ->
          if (not (PG.in_red st v)) && List.for_all (PG.in_red st) (G.preds g v) then
            if sh.is_output.(v) then begin
              if not (PG.in_blue st v) then
                relax st [ PG.Compute v; PG.Store v; PG.Free v ]
            end
            else relax st [ PG.Compute v ])
        sh.compute_vs
    end
    else
      for v = 0 to sh.n - 1 do
        if PG.in_red st v then begin
          relax st [ PG.Free v ];
          if not (PG.in_blue st v) then relax st [ PG.Store v; PG.Free v ]
        end
      done

(* --- Legacy engine: per-state Hashtbl open/closed bookkeeping ---

   Kept as the differential baseline the frontier engine is tested against;
   dominance is only applied against already-expanded positions. *)
let solve_legacy ?(budget = default_budget) ?(mode = Normalized) g ~s =
  let sh = prepare g ~s in
  let h (st : PG.state) = PG.popcount (sh.outputs_mask land lnot st.blue) in
  let key (st : PG.state) = (st.red, st.blue) in
  let best_g : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let closed : (int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (int * int, PG.move list * (int * int)) Hashtbl.t = Hashtbl.create 4096 in
  (* Pareto fronts of expanded positions, keyed by red mask. *)
  let fronts : (int, (int * int) list) Hashtbl.t = Hashtbl.create 1024 in
  let dominated (st : PG.state) cost =
    match Hashtbl.find_opt fronts st.red with
    | None -> false
    | Some front ->
      List.exists (fun (blue, c) -> c <= cost && PG.mask_subset st.blue blue) front
  in
  let add_front (st : PG.state) cost =
    let front = Option.value (Hashtbl.find_opt fronts st.red) ~default:[] in
    let survivors =
      List.filter (fun (blue, c) -> not (cost <= c && PG.mask_subset blue st.blue)) front
    in
    Hashtbl.replace fronts st.red ((st.blue, cost) :: survivors)
  in
  (* Bucket queue on f = g + h; f never decreases along the expansion order. *)
  let buckets = ref (Array.make 64 []) in
  let push f st =
    if f >= Array.length !buckets then begin
      let bigger = Array.make (2 * max (Array.length !buckets) (f + 1)) [] in
      Array.blit !buckets 0 bigger 0 (Array.length !buckets);
      buckets := bigger
    end;
    !buckets.(f) <- st :: !buckets.(f)
  in
  let init = PG.start g in
  Hashtbl.replace best_g (key init) 0;
  push (h init) init;
  let expanded = ref 0 in
  let cur_f = ref 0 in
  let relax (prev : PG.state) moves =
    match PG.trace g ~s ~init:prev moves with
    | Error _ -> ()
    | Ok st' ->
      let g' = PG.state_io st' in
      let k' = key st' in
      let known = Hashtbl.find_opt best_g k' in
      if (match known with None -> true | Some old -> g' < old) then begin
        Hashtbl.replace best_g k' g';
        Hashtbl.replace parent k' (moves, key prev);
        push (g' + h st') st'
      end
  in
  let reconstruct goal_key =
    let rec back k acc =
      match Hashtbl.find_opt parent k with
      | None -> acc
      | Some (moves, prev) -> back prev (moves @ acc)
    in
    back goal_key []
  in
  let rec search () =
    while !cur_f < Array.length !buckets && !buckets.(!cur_f) = [] do
      incr cur_f
    done;
    if !cur_f >= Array.length !buckets then
      (* With s >= max in-degree + 1 a store-everything topological play always
         completes the game, so the queue cannot drain before a goal. *)
      assert false
    else begin
      match !buckets.(!cur_f) with
      | [] -> assert false
      | st :: rest ->
        !buckets.(!cur_f) <- rest;
        let k = key st in
        let cost = PG.state_io st in
        if Hashtbl.mem closed k || Hashtbl.find best_g k <> cost then search ()
        else if PG.complete g st then
          Optimal { q_opt = cost; moves = reconstruct k; expanded = !expanded }
        else if dominated st cost then begin
          Hashtbl.replace closed k ();
          search ()
        end
        else begin
          Hashtbl.replace closed k ();
          add_front st cost;
          incr expanded;
          if !expanded > budget then Budget_exhausted { expanded = !expanded }
          else begin
            expand_from sh g ~s ~mode ~relax st;
            search ()
          end
        end
    end
  in
  search ()

(* --- Frontier engine ---

   The default.  Positions are packed int keys [(red lsl n) lor blue], the
   open list is an array of cost-layered frontiers (one append-only Bigarray
   buffer of keys per f value, expanded whole layers at a time — zero-cost
   successors land in the layer being processed and are consumed by the same
   sweep), and the per-red-mask Pareto fronts are flat Bigarray buffers of
   (blue, cost) pairs checked with bitwise subset tests.

   The fronts subsume the legacy engine's [best_g]/[closed] tables: dominance
   is applied at *generation* (the legacy engine only pruned against expanded
   positions), every key ever admitted is weakly dominated by some current
   front entry, and a popped key is expanded only if its exact (blue, cost)
   pair is still present — absence means something at least as good was
   admitted since, which the f-ordered sweep expands no later.  Duplicate
   admissions are impossible (an equal pair dominates), so each (position,
   cost) is expanded at most once, and the first goal popped is optimal just
   as in plain A*.

   [g] is not stored in the layers: a key's blue mask determines h, and
   within layer f the cost is g = f - h.

   [want_witness] gates the parent table — the only per-state allocation
   left — so pure [q_opt] queries keep no path bookkeeping at all. *)

type buf = {
  mutable data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable len : int;
}

let buf_create cap =
  { data = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max cap 4); len = 0 }

let buf_push b x =
  if b.len = Bigarray.Array1.dim b.data then begin
    let bigger = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (2 * b.len) in
    Bigarray.Array1.blit b.data (Bigarray.Array1.sub bigger 0 b.len);
    b.data <- bigger
  end;
  Bigarray.Array1.unsafe_set b.data b.len x;
  b.len <- b.len + 1

exception Found of verdict

let solve_frontier ~budget ~mode ~want_witness g ~s =
  let sh = prepare g ~s in
  let n = sh.n in
  let low_mask = (1 lsl n) - 1 in
  let key_of red blue = (red lsl n) lor blue in
  let h blue = PG.popcount (sh.outputs_mask land lnot blue) in
  let fronts : (int, buf) Hashtbl.t = Hashtbl.create 1024 in
  (* Admit (blue, cost) into red's front unless an entry dominates it; on
     admission, entries the new pair dominates are compacted away. *)
  let admit red blue cost =
    let front =
      match Hashtbl.find_opt fronts red with
      | Some f -> f
      | None ->
        let f = buf_create 8 in
        Hashtbl.add fronts red f;
        f
    in
    let d = front.data in
    let pairs = front.len / 2 in
    let dominated = ref false in
    let i = ref 0 in
    while (not !dominated) && !i < pairs do
      let b = Bigarray.Array1.unsafe_get d (2 * !i)
      and c = Bigarray.Array1.unsafe_get d ((2 * !i) + 1) in
      if c <= cost && PG.mask_subset blue b then dominated := true;
      incr i
    done;
    if !dominated then false
    else begin
      let w = ref 0 in
      for j = 0 to pairs - 1 do
        let b = Bigarray.Array1.unsafe_get d (2 * j)
        and c = Bigarray.Array1.unsafe_get d ((2 * j) + 1) in
        if not (c >= cost && PG.mask_subset b blue) then begin
          Bigarray.Array1.unsafe_set d (2 * !w) b;
          Bigarray.Array1.unsafe_set d ((2 * !w) + 1) c;
          incr w
        end
      done;
      front.len <- 2 * !w;
      buf_push front blue;
      buf_push front cost;
      true
    end
  in
  let live red blue cost =
    match Hashtbl.find_opt fronts red with
    | None -> false
    | Some front ->
      let d = front.data in
      let pairs = front.len / 2 in
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < pairs do
        if
          Bigarray.Array1.unsafe_get d (2 * !i) = blue
          && Bigarray.Array1.unsafe_get d ((2 * !i) + 1) = cost
        then found := true;
        incr i
      done;
      !found
  in
  let layers = ref (Array.make 64 None) in
  let max_f = ref 0 in
  let layer f =
    if f >= Array.length !layers then begin
      let bigger = Array.make (2 * max (Array.length !layers) (f + 1)) None in
      Array.blit !layers 0 bigger 0 (Array.length !layers);
      layers := bigger
    end;
    match !layers.(f) with
    | Some l -> l
    | None ->
      let l = buf_create 64 in
      !layers.(f) <- Some l;
      if f > !max_f then max_f := f;
      l
  in
  let parent : (int, PG.move list * int) Hashtbl.t =
    Hashtbl.create (if want_witness then 4096 else 0)
  in
  let relax (prev : PG.state) moves =
    match PG.trace g ~s ~init:prev moves with
    | Error _ -> ()
    | Ok st' ->
      let g' = PG.state_io st' in
      if admit st'.red st'.blue g' then begin
        let k' = key_of st'.red st'.blue in
        if want_witness then
          Hashtbl.replace parent k' (moves, key_of prev.red prev.blue);
        buf_push (layer (g' + h st'.blue)) k'
      end
  in
  let reconstruct goal_key =
    let rec back k acc =
      match Hashtbl.find_opt parent k with
      | None -> acc
      | Some (moves, prev) -> back prev (moves @ acc)
    in
    back goal_key []
  in
  let expanded = ref 0 in
  let init = PG.start g in
  ignore (admit init.red init.blue 0 : bool);
  buf_push (layer (h init.blue)) (key_of init.red init.blue);
  try
    let f = ref 0 in
    (* [max_f] grows as layers are seeded; zero-cost successors appended to
       the layer being swept are picked up by the same [head] walk. *)
    while !f <= !max_f do
      (match !layers.(!f) with
      | None -> ()
      | Some l ->
        (* LIFO within the layer: zero-cost successors appended mid-sweep are
           expanded next, so blue-rich positions (strong dominators) enter
           the fronts early — same depth-first-within-f order as the legacy
           engine's bucket stacks, which prunes hardest. *)
        while l.len > 0 do
          l.len <- l.len - 1;
          let k = Bigarray.Array1.unsafe_get l.data l.len in
          let red = k lsr n and blue = k land low_mask in
          let cost = !f - h blue in
          if live red blue cost then begin
            if PG.mask_subset sh.outputs_mask blue then
              raise
                (Found
                   (Optimal { q_opt = cost; moves = reconstruct k; expanded = !expanded }));
            incr expanded;
            if !expanded > budget then
              raise (Found (Budget_exhausted { expanded = !expanded }));
            (* Counters beyond [loads] are not consulted by move legality;
               carrying the cost as [loads] makes [state_io] of successors
               come out as their true g. *)
            let st =
              { PG.red; blue; red_count = PG.popcount red; loads = cost; stores = 0;
                computes = 0 }
            in
            expand_from sh g ~s ~mode ~relax st
          end
        done;
        (* The layer is fully consumed; release its buffer. *)
        !layers.(!f) <- None);
      incr f
    done;
    (* With s >= max in-degree + 1 a store-everything topological play always
       completes the game, so the layers cannot drain before a goal. *)
    assert false
  with Found v -> v

let solve ?(budget = default_budget) ?(mode = Normalized) ?(want_witness = true) g ~s =
  let n = G.num_vertices g in
  (* The packed key needs red and blue side by side in one int. *)
  if 2 * n <= Sys.int_size - 1 then solve_frontier ~budget ~mode ~want_witness g ~s
  else solve_legacy ~budget ~mode g ~s

let q_opt_exn ?budget ?mode g ~s =
  match solve ?budget ?mode ~want_witness:false g ~s with
  | Optimal { q_opt; _ } -> q_opt
  | Budget_exhausted { expanded } ->
    failwith (Printf.sprintf "Oracle.q_opt_exn: budget exhausted after %d states" expanded)
