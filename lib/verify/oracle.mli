(** Exact red-blue pebble-game oracle: the true minimum I/O [Q_opt(S)].

    A* over game positions (red mask, blue mask) driven entirely by the pure
    transition API ([Pebble.Pebble_game.apply]), so the search explores
    exactly the legal games: recomputation is allowed, stores are optional,
    eviction order is free.  The returned witness replays through
    [Pebble_game.trace] to exactly [q_opt] I/Os.

    Exhaustive pebbling is only tractable for small DAGs (tens of vertices);
    the [budget] caps expanded positions so a too-large instance fails fast
    with [Budget_exhausted] instead of hanging the suite. *)

type outcome = {
  q_opt : int;  (** minimum loads + stores over all legal plays *)
  moves : Pebble.Pebble_game.move list;  (** an optimal play, replayable *)
  expanded : int;  (** positions expanded by the search *)
}

type verdict =
  | Optimal of outcome
  | Budget_exhausted of { expanded : int }

type mode =
  | Normalized
      (** explore WLOG-normalised plays: spills only as store+free eviction
          compounds, outputs stored-and-freed the moment they are computed
          and never reloaded.  Exact (each normalisation is an exchange
          argument on move order) and orders of magnitude smaller. *)
  | Reference
      (** raw single moves, restricted only by "delete only when memory is
          full"; the ground truth Normalized is tested against. *)

val default_budget : int

val solve :
  ?budget:int -> ?mode:mode -> ?want_witness:bool -> Dag.Graph.t -> s:int -> verdict
(** [solve g ~s] computes [Q_opt(s)] (default mode [Normalized]) with the
    frontier engine: packed-int position keys, cost-layered append-only
    Bigarray frontiers expanded a whole f-layer at a time, and per-red-mask
    Pareto dominance of (blue mask, cost) applied at generation — the same
    search space as {!solve_legacy} but with the per-state hashtable
    bookkeeping replaced by flat buffers, which pushes the tractability wall
    from roughly 20 to 25+ vertices at small [s].  Graphs too large to pack
    both masks into one int fall back to {!solve_legacy}.

    [want_witness] (default true) controls parent bookkeeping — the only
    remaining per-state table.  With [~want_witness:false] the result's
    [moves] is [[]] and peak memory on large instances drops accordingly.

    Raises [Invalid_argument] when the graph exceeds
    [Pebble_game.max_game_vertices] or when [s < max in-degree + 1] (no play
    can complete). *)

val solve_legacy : ?budget:int -> ?mode:mode -> Dag.Graph.t -> s:int -> verdict
(** The pre-frontier engine — per-state [Hashtbl] open/closed/g tables,
    dominance checked only against already-expanded positions.  Kept as the
    differential baseline: tests assert both engines return equal [q_opt]
    on the whole sandwich smoke grid, and the hot-path benchmark records
    the instances where this engine exhausts its budget but the frontier
    engine does not. *)

val q_opt_exn : ?budget:int -> ?mode:mode -> Dag.Graph.t -> s:int -> int
(** [solve ~want_witness:false] unwrapped; raises [Failure] on budget
    exhaustion. *)
