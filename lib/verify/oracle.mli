(** Exact red-blue pebble-game oracle: the true minimum I/O [Q_opt(S)].

    A* over game positions (red mask, blue mask) driven entirely by the pure
    transition API ([Pebble.Pebble_game.apply]), so the search explores
    exactly the legal games: recomputation is allowed, stores are optional,
    eviction order is free.  The returned witness replays through
    [Pebble_game.trace] to exactly [q_opt] I/Os.

    Exhaustive pebbling is only tractable for small DAGs (tens of vertices);
    the [budget] caps expanded positions so a too-large instance fails fast
    with [Budget_exhausted] instead of hanging the suite. *)

type outcome = {
  q_opt : int;  (** minimum loads + stores over all legal plays *)
  moves : Pebble.Pebble_game.move list;  (** an optimal play, replayable *)
  expanded : int;  (** positions expanded by the search *)
}

type verdict =
  | Optimal of outcome
  | Budget_exhausted of { expanded : int }

type mode =
  | Normalized
      (** explore WLOG-normalised plays: spills only as store+free eviction
          compounds, outputs stored-and-freed the moment they are computed
          and never reloaded.  Exact (each normalisation is an exchange
          argument on move order) and orders of magnitude smaller. *)
  | Reference
      (** raw single moves, restricted only by "delete only when memory is
          full"; the ground truth Normalized is tested against. *)

val default_budget : int

val solve : ?budget:int -> ?mode:mode -> Dag.Graph.t -> s:int -> verdict
(** [solve g ~s] computes [Q_opt(s)] (default mode [Normalized]).  Raises
    [Invalid_argument] when the graph exceeds
    [Pebble_game.max_game_vertices] or when [s < max in-degree + 1] (no play
    can complete). *)

val q_opt_exn : ?budget:int -> ?mode:mode -> Dag.Graph.t -> s:int -> int
(** [solve] unwrapped; raises [Failure] on budget exhaustion. *)
