(* The auditor re-derives every analytic quantity a tuning answer claims
   and compares.  All checks are pure functions of (spec, arch, config,
   costs); anything stateful (quarantine files, counters, retries) lives
   with the callers at the trust boundaries. *)

(* FNV-1a, 64-bit: cheap, stable, and good enough dispersion for a cache
   whose correctness does not depend on collision-freedom (lookups verify
   the canonical string before answering).  This is the one definition of
   the service's content address; [Service.Result_cache] re-exports it. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let content_key s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

(* --- analytic reprice ---------------------------------------------------- *)

let predicted_us arch spec config =
  match Core.Config.to_kernel arch spec config with
  | exception Invalid_argument _ -> Float.nan
  | kernel -> Gpu_sim.Kernel_cost.runtime_us arch kernel

(* Tile traffic and the paper's lower bound, both at S = half an SM (the
   budget the search space enforces, so two blocks stay resident).  Kept as
   a numerator/denominator pair so the checker can tell "bound is not
   usable here" apart from "bound is violated". *)
let q_parts arch (spec : Conv.Conv_spec.t) (config : Core.Config.t) =
  let s = float_of_int (Gpu_sim.Arch.shared_elems_per_sm arch / 2) in
  let x = float_of_int config.tile_x
  and y = float_of_int config.tile_y
  and z = float_of_int config.tile_z in
  match config.algorithm with
  | Core.Config.Direct_dataflow ->
    (Core.Dataflow_cost.q_dc_tile spec ~x ~y ~z, Core.Direct_bound.q_lower spec ~s)
  | Core.Config.Winograd_dataflow e ->
    (Core.Dataflow_cost.q_wa_tile ~e spec ~x ~y ~z, Core.Winograd_bound.q_lower ~e spec ~s)

let q_ratio arch spec config =
  let num, den = q_parts arch spec config in
  num /. den

(* --- canonical-string parsing -------------------------------------------- *)

(* Both parsers re-render through the one canonical writer and demand
   byte-equality, so "parses" means "is exactly what the renderer would
   have produced" — a canonical string in any other spelling of the same
   request is itself evidence of tampering. *)

let strip_prefix prefix tok =
  let n = String.length prefix in
  if String.length tok > n && String.sub tok 0 n = prefix then
    Some (String.sub tok n (String.length tok - n))
  else None

let parse_spec_canonical s =
  let int_field name tok =
    Option.bind (strip_prefix (name ^ "=") tok) int_of_string_opt
  in
  match String.split_on_char ',' s with
  | [ b; ci; hi; wi; co; kh; kw; st; ph; pw; g ] -> begin
    match
      ( int_field "batch" b, int_field "cin" ci, int_field "hin" hi,
        int_field "win" wi, int_field "cout" co, int_field "kh" kh,
        int_field "kw" kw, int_field "stride" st, int_field "padh" ph,
        int_field "padw" pw, int_field "groups" g )
    with
    | ( Some batch, Some c_in, Some h_in, Some w_in, Some c_out, Some k_h,
        Some k_w, Some stride, Some pad_h, Some pad_w, Some groups ) -> begin
      match
        Conv.Conv_spec.make ~batch ~pad_h ~pad_w ~stride ~groups ~c_in ~h_in
          ~w_in ~c_out ~k_h ~k_w ()
      with
      | spec when String.equal (Conv.Conv_spec.canonical spec) s -> Some spec
      | _ -> None
      | exception Invalid_argument _ -> None
    end
    | _ -> None
  end
  | _ -> None

let parse_canonical s =
  (* arch=<name>;<spec>;algo=<tok>;pruned=<bool> — the architecture name may
     contain spaces and the spec commas; neither contains a semicolon. *)
  match String.split_on_char ';' s with
  | [ arch_f; spec_f; algo_f; pruned_f ] ->
    let ( let* ) = Option.bind in
    let* name = strip_prefix "arch=" arch_f in
    let* arch = Gpu_sim.Arch.by_name name in
    let* spec = parse_spec_canonical spec_f in
    let* algo_tok = strip_prefix "algo=" algo_f in
    let* algorithm =
      if String.equal algo_tok "direct" then Some Core.Config.Direct_dataflow
      else
        Option.bind (strip_prefix "winograd:" algo_tok) (fun e ->
            Option.map (fun e -> Core.Config.Winograd_dataflow e) (int_of_string_opt e))
    in
    let* pruned_tok = strip_prefix "pruned=" pruned_f in
    let* pruned =
      match pruned_tok with "true" -> Some true | "false" -> Some false | _ -> None
    in
    if String.equal (Core.Search_space.canonical_key arch spec algorithm ~pruned) s
    then Some (arch, spec, algorithm, pruned)
    else None
  | _ -> None

(* --- verdicts ------------------------------------------------------------ *)

type reason =
  | Canonical_unparseable of string
  | Key_mismatch of { claimed : string; derived : string }
  | Empty_domain of string
  | Not_in_domain of Core.Search_space.invalid
  | Unlaunchable of Gpu_sim.Kernel_cost.launch_error
  | Cost_not_finite of { field : string; value : float }
  | Gflops_inconsistent of { claimed : float; derived : float }
  | Reprice_drift of { field : string; claimed : float; derived : float }
  | Runtime_implausible of { runtime_us : float; predicted_us : float; rel : float }
  | Q_bound_violated of { q_ratio : float }

type verdict = Ok | Suspect of reason list

type policy = {
  label : string;
  rel : float;
  runtime_abs : float;
  gflops_abs : float;
  band : float;
  q_slack : float;
}

(* The 5% band: [Gpu_sim.Measure] perturbs the analytic price by at most
   +-3% (robust aggregation filters the unbounded outliers), so an honest
   measured runtime never strays further than that from the reprice; 5%
   leaves margin without admitting a swapped config, whose price differs by
   integer factors.  The wire band adds the [%.6f] rounding. *)
let strict =
  { label = "strict"; rel = 0.0; runtime_abs = 0.0; gflops_abs = 0.0;
    band = 0.05; q_slack = 1e-6 }

let wire =
  { label = "wire"; rel = 1e-5; runtime_abs = 1e-5; gflops_abs = 0.011;
    band = 0.06; q_slack = 1e-6 }

(* Bit-level equality under the strict policy — NaN payloads included, so a
   quantity that re-derives to the same NaN is agreement, not drift. *)
let float_agrees policy ~abs claimed derived =
  if policy.rel = 0.0 && abs = 0.0 then
    Int64.equal (Int64.bits_of_float claimed) (Int64.bits_of_float derived)
  else
    Float.is_finite claimed && Float.is_finite derived
    && Float.abs (claimed -. derived) <= abs +. (policy.rel *. Float.abs derived)

let check ?(policy = strict) ?key ?gflops ?predicted_us:claimed_predicted
    ?q_ratio:claimed_q ~canonical ~config ~runtime_us () =
  match parse_canonical canonical with
  | None -> Suspect [ Canonical_unparseable canonical ]
  | Some (arch, spec, algorithm, pruned) ->
    let problems = ref [] in
    let flag r = problems := r :: !problems in
    (* 1. Content address. *)
    (match key with
    | Some claimed ->
      let derived = content_key canonical in
      if not (String.equal claimed derived) then flag (Key_mismatch { claimed; derived })
    | None -> ());
    (* 2. Domain membership. *)
    (match Core.Search_space.make ~pruned arch spec algorithm with
    | exception Invalid_argument msg -> flag (Empty_domain msg)
    | space -> (
      match Core.Search_space.validate space config with
      | Ok () -> ()
      | Error why -> flag (Not_in_domain why)));
    (* 3. Launch feasibility, via the typed checker on the bare geometry. *)
    (match
       Gpu_sim.Kernel_cost.make ~flops:1.0 ~io_elems:1.0
         ~threads_per_block:(Core.Config.threads config)
         ~shmem_bytes_per_block:(Core.Config.shmem_bytes spec config)
         ~blocks:(Core.Config.blocks spec config) ()
     with
    | exception Invalid_argument _ ->
      flag
        (Unlaunchable
           (Gpu_sim.Kernel_cost.Bad_geometry
              {
                threads_per_block = Core.Config.threads config;
                blocks = Core.Config.blocks spec config;
                shmem_bytes_per_block = Core.Config.shmem_bytes spec config;
              }))
    | probe -> (
      match Gpu_sim.Kernel_cost.check arch probe with
      | Ok () -> ()
      | Error e -> flag (Unlaunchable e)));
    (* 4. Costs: finite, positive, and consistent with the analytic model. *)
    let runtime_usable = Float.is_finite runtime_us && runtime_us > 0.0 in
    if not runtime_usable then
      flag (Cost_not_finite { field = "runtime_us"; value = runtime_us });
    let derived_predicted = predicted_us arch spec config in
    if not (Float.is_finite derived_predicted && derived_predicted > 0.0) then
      flag (Cost_not_finite { field = "predicted_us"; value = derived_predicted })
    else begin
      (match claimed_predicted with
      | Some claimed
        when not (float_agrees policy ~abs:policy.runtime_abs claimed derived_predicted)
        ->
        flag (Reprice_drift { field = "predicted_us"; claimed; derived = derived_predicted })
      | _ -> ());
      if runtime_usable then begin
        let rel = Float.abs ((runtime_us /. derived_predicted) -. 1.0) in
        if not (rel <= policy.band) then
          flag (Runtime_implausible { runtime_us; predicted_us = derived_predicted; rel })
      end
    end;
    (match gflops with
    | Some claimed when runtime_usable ->
      let derived = Core.Tuner.nominal_gflops spec ~runtime_us in
      if not (float_agrees policy ~abs:policy.gflops_abs claimed derived) then
        flag (Gflops_inconsistent { claimed; derived })
    | _ -> ());
    (* 5. The paper's I/O lower bound.  When the bound itself degenerates
       (non-finite or non-positive denominator) it cannot convict anyone;
       the claimed ratio must still re-derive. *)
    let q_num, q_den = q_parts arch spec config in
    let q = q_num /. q_den in
    (match claimed_q with
    | Some claimed when not (float_agrees policy ~abs:0.0 claimed q) ->
      flag (Reprice_drift { field = "q_ratio"; claimed; derived = q })
    | _ -> ());
    if Float.is_finite q_den && q_den > 0.0 then begin
      if not (Float.is_finite q) then
        flag (Cost_not_finite { field = "q_ratio"; value = q })
      else if q < 1.0 -. policy.q_slack then flag (Q_bound_violated { q_ratio = q })
    end;
    (match List.rev !problems with [] -> Ok | ps -> Suspect ps)

(* --- rendering ----------------------------------------------------------- *)

let reason_token = function
  | Canonical_unparseable _ -> "canonical-unparseable"
  | Key_mismatch _ -> "key-mismatch"
  | Empty_domain _ -> "empty-domain"
  | Not_in_domain _ -> "not-in-domain"
  | Unlaunchable _ -> "unlaunchable"
  | Cost_not_finite _ -> "cost-not-finite"
  | Gflops_inconsistent _ -> "gflops-inconsistent"
  | Reprice_drift _ -> "reprice-drift"
  | Runtime_implausible _ -> "runtime-implausible"
  | Q_bound_violated _ -> "q-bound-violated"

let reason_to_string = function
  | Canonical_unparseable s -> Printf.sprintf "canonical string does not parse: %S" s
  | Key_mismatch { claimed; derived } ->
    Printf.sprintf "content key %s is not the canonical's hash %s" claimed derived
  | Empty_domain msg -> Printf.sprintf "search space rejects the request: %s" msg
  | Not_in_domain why ->
    Printf.sprintf "config outside the domain: %s" (Core.Search_space.invalid_to_string why)
  | Unlaunchable e ->
    Printf.sprintf "config cannot launch: %s" (Gpu_sim.Kernel_cost.launch_error_to_string e)
  | Cost_not_finite { field; value } ->
    Printf.sprintf "%s is not finite and positive (%h)" field value
  | Gflops_inconsistent { claimed; derived } ->
    Printf.sprintf "gflops %.4f disagree with nominal %.4f" claimed derived
  | Reprice_drift { field; claimed; derived } ->
    Printf.sprintf "%s %h does not re-derive (%h)" field claimed derived
  | Runtime_implausible { runtime_us; predicted_us; rel } ->
    Printf.sprintf "runtime %.3fus implausible vs analytic %.3fus (rel %.3f)"
      runtime_us predicted_us rel
  | Q_bound_violated { q_ratio } ->
    Printf.sprintf "dataflow traffic below the I/O lower bound (ratio %h)" q_ratio

let verdict_to_string = function
  | Ok -> "ok"
  | Suspect reasons ->
    "suspect: " ^ String.concat "," (List.map reason_token reasons)
