(** Property-based differential conformance harness.

    Cross-checks, under qcheck-generated convolution specs (tuples of small
    ints, so qcheck's built-in shrinking produces minimal counterexamples):

    - every convolution implementation (direct, im2col+GEMM, FFT, tiled
      direct dataflow, Winograd, tiled Winograd dataflow) against the direct
      reference, within a documented float32 ulp bound;
    - the analytic [io_only] traffic formulas against the instrumented
      per-block counters the executing dataflows accumulate;
    - GPU cost-model invariants: more off-chip traffic never runs faster,
      more shared memory never increases modeled optimal I/O, and
      [x y = R z] configurations dominate their equal-volume neighbourhood
      (Equations 20/22 are minimised on the optimality manifold). *)

type impl = {
  name : string;
  supported : Conv.Conv_spec.t -> bool;
  run : Conv.Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t;
}

val winograd_e : int
(** Output-tile size used for the Winograd implementations under test. *)

val implementations : unit -> impl list
(** The six implementations the harness cross-checks. *)

val tolerance : Tensor.t -> float
(** The asserted agreement bound for a given reference output:
    [64 * eps32 * max(1, ||reference||_inf)].  See the comment in the
    implementation for the ulp budget's derivation. *)

type params = (int * int * int * int) * (int * int * int * int) * int
(** [(c_in, c_out, k_h, k_w), (extra_h, extra_w, stride, pad), batch]. *)

val spec_of_params : params -> Conv.Conv_spec.t
val arb_spec : params QCheck.arbitrary

type wparams = (int * int * int) * (int * int * int)
(** [(c_in, c_out, k), (extra_h, extra_w, pad)] — stride-1 square-kernel
    (Winograd-supported) specs. *)

val spec_of_wparams : wparams -> Conv.Conv_spec.t
val arb_wspec : wparams QCheck.arbitrary

val check_impls : Conv.Conv_spec.t -> bool
(** Run every supported implementation on deterministic random data for this
    spec and compare against direct; fails the enclosing qcheck test with
    implementation name and deviation on disagreement. *)

val differential_test : ?count:int -> unit -> QCheck.Test.t
val differential_winograd_test : ?count:int -> unit -> QCheck.Test.t
val io_direct_test : ?count:int -> unit -> QCheck.Test.t
val io_winograd_test : ?count:int -> unit -> QCheck.Test.t
val kernel_cost_monotone_test : ?count:int -> unit -> QCheck.Test.t
val shmem_monotone_test : ?count:int -> unit -> QCheck.Test.t
val optimality_dominates_test : ?count:int -> unit -> QCheck.Test.t

val all_tests : deep:bool -> QCheck.Test.t list
(** The full harness; [deep] multiplies every test's case count by 5. *)
