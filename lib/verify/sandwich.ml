module G = Dag.Graph
module PG = Pebble.Pebble_game

type instance = {
  name : string;
  graph : G.t;
  lower_bound : s:int -> float;
  upper_costs : s:int -> (string * int) list;
}

type check = {
  instance : string;
  s : int;
  analytic_lower : float;
  compulsory_lower : int;
  q_opt : int;
  schedule_upper : int;
  expanded : int;
  holds : bool;
}

(* Every used input must be loaded at least once (inputs cannot be computed)
   and every output stored at least once — true for any play of the game,
   independent of the paper's bounds, so a second, unconditional floor under
   [q_opt]. *)
let compulsory_io g =
  let used_inputs = ref 0 in
  for v = 0 to G.num_vertices g - 1 do
    if G.is_input g v && G.succs g v <> [] then incr used_inputs
  done;
  !used_inputs + List.length (G.outputs g)

let replay_costs graph schedules ~s =
  List.concat_map
    (fun (name, schedule) ->
      List.map
        (fun (pname, policy) ->
          ( name ^ "+" ^ pname,
            PG.total_io (PG.run graph ~schedule ~s ~policy) ))
        [ ("lru", PG.Lru); ("belady", PG.Belady) ])
    schedules

let conv_instance ?(stride = 1) ~w ~h ~kw ~kh ~cin ~cout () =
  let dspec =
    { Dag.Conv_dag.w_in = w; h_in = h; c_in = cin; c_out = cout; w_ker = kw; h_ker = kh;
      stride }
  in
  let dag = Dag.Conv_dag.build dspec in
  let cspec =
    Conv.Conv_spec.make ~c_in:cin ~h_in:h ~w_in:w ~c_out:cout ~k_h:kh ~k_w:kw ~stride ()
  in
  {
    name =
      Printf.sprintf "conv %dx%dx%d k%dx%d s%d ->%d" w h cin kw kh stride cout;
    graph = dag.graph;
    lower_bound = (fun ~s -> Core.Direct_bound.q_lower cspec ~s:(float_of_int s));
    upper_costs =
      (fun ~s ->
        replay_costs dag.graph
          [
            ("stationary", Dag.Conv_dag.schedule_output_stationary dag);
            ("by-step", Dag.Conv_dag.schedule_by_step dag);
            ("blocked", Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:1);
          ]
          ~s);
  }

let matmul_instance ~m ~k ~n () =
  let dag = Dag.Matmul_dag.build { Dag.Matmul_dag.m; k; n } in
  {
    name = Printf.sprintf "matmul %dx%dx%d" m k n;
    graph = dag.graph;
    lower_bound = (fun ~s -> Core.Matmul_bound.q_lower ~m ~k ~n ~s:(float_of_int s));
    upper_costs =
      (fun ~s ->
        replay_costs dag.graph
          [
            ("stationary", Dag.Matmul_dag.schedule_output_stationary dag);
            ("by-step", Dag.Matmul_dag.schedule_by_step dag);
            ("blocked", Dag.Matmul_dag.schedule_blocked dag ~bi:2 ~bj:2);
          ]
          ~s);
  }

let winograd_instance ~tiles_w ~tiles_h ~cin ~cout ~e ~r () =
  let wspec =
    { Dag.Winograd_dag.tiles_w; tiles_h; c_in = cin; c_out = cout; e; r }
  in
  let dag = Dag.Winograd_dag.build wspec in
  let w_in, h_in = Dag.Winograd_dag.in_size wspec in
  let cspec =
    Conv.Conv_spec.make ~c_in:cin ~h_in ~w_in ~c_out:cout ~k_h:r ~k_w:r ()
  in
  {
    name =
      Printf.sprintf "winograd F(%dx%d,%dx%d) %dx%d tiles %d->%d" e e r r tiles_w
        tiles_h cin cout;
    graph = dag.graph;
    lower_bound = (fun ~s -> Core.Winograd_bound.q_lower ~e cspec ~s:(float_of_int s));
    upper_costs =
      (fun ~s ->
        let plain =
          replay_costs dag.graph
            [
              ("natural", Dag.Winograd_dag.schedule_natural dag);
              ("by-step", Dag.Winograd_dag.schedule_by_step dag);
            ]
            ~s
        in
        (* The recomputing schedule is also a legal play of the oracle's game
           (the pure API allows re-computing an evicted vertex), so its cost is
           an attainable upper bound too. *)
        let recompute =
          ( "recompute+belady",
            PG.total_io
              (PG.run_recompute dag.graph
                 ~schedule:(Dag.Winograd_dag.schedule_recompute_transforms dag)
                 ~s ~policy:PG.Belady) )
        in
        recompute :: plain);
  }

(* The (instance, S grid) pairs the verification suite sandwiches.  Sizes are
   chosen so the exact solver stays inside its state budget: these DAGs have
   7-24 vertices, which is where exhaustive pebbling is tractable at all
   (the game is PSPACE-hard in general).  The smoke pairs finish in seconds;
   the deep extras assume the frontier engine and an 8M-state budget. *)
let grid ~deep =
  let smoke =
    [
      (matmul_instance ~m:1 ~k:2 ~n:1 (), [ 3; 4 ]);
      (matmul_instance ~m:2 ~k:2 ~n:1 (), [ 3; 4 ]);
      (matmul_instance ~m:1 ~k:2 ~n:2 (), [ 3; 5 ]);
      (matmul_instance ~m:1 ~k:3 ~n:1 (), [ 3; 4 ]);
      (matmul_instance ~m:1 ~k:4 ~n:1 (), [ 3; 4 ]);
      (matmul_instance ~m:3 ~k:2 ~n:1 (), [ 3; 4 ]);
      (conv_instance ~w:2 ~h:2 ~kw:2 ~kh:2 ~cin:1 ~cout:1 (), [ 3; 4; 6 ]);
      (conv_instance ~w:2 ~h:1 ~kw:2 ~kh:1 ~cin:1 ~cout:2 (), [ 3; 4 ]);
      (conv_instance ~w:4 ~h:1 ~kw:2 ~kh:1 ~cin:1 ~cout:1 (), [ 3; 4 ]);
      (conv_instance ~w:3 ~h:1 ~kw:2 ~kh:1 ~cin:1 ~cout:1 (), [ 3; 4 ]);
      (conv_instance ~w:4 ~h:1 ~kw:2 ~kh:1 ~cin:1 ~cout:1 ~stride:2 (), [ 3; 4 ]);
      (winograd_instance ~tiles_w:1 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 (), [ 3 ]);
      (winograd_instance ~tiles_w:2 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 (), [ 3; 4 ]);
      (winograd_instance ~tiles_w:2 ~tiles_h:2 ~cin:1 ~cout:1 ~e:1 ~r:1 (), [ 3; 4 ]);
      (winograd_instance ~tiles_w:1 ~tiles_h:1 ~cin:2 ~cout:1 ~e:1 ~r:1 (), [ 3; 4 ]);
      (winograd_instance ~tiles_w:1 ~tiles_h:1 ~cin:1 ~cout:2 ~e:1 ~r:1 (), [ 3; 4 ]);
    ]
  in
  if not deep then smoke
  else
    smoke
    @ [
        (matmul_instance ~m:2 ~k:2 ~n:2 (), [ 4; 5 ]);
        (matmul_instance ~m:2 ~k:3 ~n:1 (), [ 3; 4 ]);
        (conv_instance ~w:2 ~h:1 ~kw:2 ~kh:1 ~cin:2 ~cout:1 (), [ 3; 4 ]);
        (conv_instance ~w:4 ~h:1 ~kw:3 ~kh:1 ~cin:1 ~cout:1 (), [ 3; 4 ]);
        (winograd_instance ~tiles_w:3 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 (), [ 3; 4 ]);
        (* 22-24-vertex Winograd tiles, reachable only since the frontier
           oracle: the 4x1 strip peaks near the legacy engine's whole default
           budget, and the 4-channel tile exhausts it outright at every
           S >= 4 (the hot-path bench records that differential).  Both need
           most of the deep 8M-state budget's headroom, so they stay out of
           the smoke grid. *)
        (winograd_instance ~tiles_w:4 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 (), [ 5; 6 ]);
        (winograd_instance ~tiles_w:1 ~tiles_h:1 ~cin:4 ~cout:1 ~e:1 ~r:1 (), [ 4; 5 ]);
      ]

let check ?budget instance ~s =
  match Oracle.solve ?budget instance.graph ~s with
  | Oracle.Budget_exhausted { expanded } -> Error expanded
  | Oracle.Optimal { q_opt; moves; expanded } ->
    (* The witness must replay through the pure rule checker to exactly the
       claimed cost and a completed game — the oracle cannot smuggle in an
       illegal move or a miscount. *)
    (match PG.trace instance.graph ~s moves with
    | Error msg -> failwith ("Sandwich.check: oracle witness illegal: " ^ msg)
    | Ok final ->
      if not (PG.complete instance.graph final) then
        failwith "Sandwich.check: oracle witness does not complete the game";
      if PG.state_io final <> q_opt then
        failwith
          (Printf.sprintf "Sandwich.check: witness I/O %d <> claimed q_opt %d"
             (PG.state_io final) q_opt));
    let analytic_lower = instance.lower_bound ~s in
    let compulsory_lower = compulsory_io instance.graph in
    let uppers = instance.upper_costs ~s in
    let schedule_upper = List.fold_left (fun acc (_, c) -> min acc c) max_int uppers in
    let holds =
      analytic_lower <= float_of_int q_opt
      && compulsory_lower <= q_opt
      && q_opt <= schedule_upper
    in
    Ok
      {
        instance = instance.name;
        s;
        analytic_lower;
        compulsory_lower;
        q_opt;
        schedule_upper;
        expanded;
        holds;
      }

let pp_check fmt c =
  Format.fprintf fmt "%-36s S=%-3d  bound %7.2f <= Q_opt %4d <= schedule %4d  (%s, %d states)"
    c.instance c.s c.analytic_lower c.q_opt c.schedule_upper
    (if c.holds then "ok" else "VIOLATED")
    c.expanded
