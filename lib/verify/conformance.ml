module Spec = Conv.Conv_spec

type impl = {
  name : string;
  supported : Spec.t -> bool;
  run : Spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t;
}

let winograd_e = 2

let implementations () =
  [
    { name = "direct"; supported = (fun _ -> true); run = Conv.Direct.run };
    {
      name = "im2col+gemm";
      supported = (fun _ -> true);
      run = (fun spec ~input ~weights -> Conv.Im2col.run spec ~input ~weights);
    };
    {
      name = "fft";
      supported = (fun (spec : Spec.t) -> spec.groups = 1);
      run = Conv.Fft_conv.run;
    };
    {
      name = "tiled_direct";
      supported = (fun _ -> true);
      run =
        (fun spec ~input ~weights ->
          let tile =
            { Conv.Tiled_direct.x = min 2 (Spec.w_out spec);
              y = min 2 (Spec.h_out spec); z = 1 }
          in
          (Conv.Tiled_direct.run spec ~tile ~input ~weights).output);
    };
    {
      name = "winograd";
      supported = Conv.Winograd.supported;
      run = Conv.Winograd.run ~e:winograd_e;
    };
    {
      name = "tiled_winograd";
      supported = Conv.Winograd.supported;
      run =
        (fun spec ~input ~weights ->
          let tile = { Conv.Tiled_winograd.x = winograd_e; y = winograd_e; z = 1 } in
          (Conv.Tiled_winograd.run ~e:winograd_e spec ~tile ~input ~weights).output);
    };
  ]

(* Float32 agreement bound, asserted by [differential_test].

   Every implementation here accumulates in double precision, so observed
   disagreement is ~1e3 double ulps at worst; the *contract* we assert is the
   float32 level a real GPU kernel would deliver.  The bound is 64 binary32
   ulps at the scale of the largest reference output:

     tol = 64 * 2^-23 * max(1, ||reference||_inf)

   64 ulps (rather than the ~k/2 a pure dot-product bound would give) covers
   the FFT path, whose rounding error scales with the magnitude of the whole
   padded frame's spectrum — sums over the 2^ceil(log2(H+k-1)) x ... frame,
   i.e. up to ~256 terms for the specs generated here — not with the
   reduction length k = c_in*k_h*k_w.  Anything past this bound is a logic
   bug, not rounding. *)
let tolerance reference =
  let max_abs = Tensor.fold (fun acc x -> Float.max acc (Float.abs x)) 0.0 reference in
  64.0 *. Util.Float32.machine_epsilon *. Float.max 1.0 max_abs

(* --- qcheck generators (tuples of small ints, so shrinking is free) --- *)

type params = (int * int * int * int) * (int * int * int * int) * int
(* (c_in, c_out, k_h, k_w), (extra_h, extra_w, stride, pad), batch *)

let spec_of_params (((c_in, c_out, k_h, k_w), (eh, ew, stride, pad), batch) : params) =
  Spec.make ~batch ~c_in ~c_out ~k_h ~k_w ~h_in:(k_h + eh) ~w_in:(k_w + ew) ~stride ~pad
    ()

let arb_params =
  QCheck.(
    triple
      (quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 1 3))
      (quad (int_range 0 4) (int_range 0 4) (int_range 1 2) (int_range 0 1))
      (int_range 1 2))

let print_params p = Spec.to_string (spec_of_params p)
let arb_spec = QCheck.set_print print_params arb_params

(* Stride-1 square-kernel specs: the Winograd-supported corner, generated
   directly so the transform paths get coverage on every run instead of only
   when the unconstrained generator happens to land there. *)
type wparams = (int * int * int) * (int * int * int)
(* (c_in, c_out, k), (extra_h, extra_w, pad) *)

let spec_of_wparams (((c_in, c_out, k), (eh, ew, pad)) : wparams) =
  Spec.make ~c_in ~c_out ~k_h:k ~k_w:k ~h_in:(k + eh) ~w_in:(k + ew) ~stride:1 ~pad ()

let arb_wparams =
  QCheck.(
    pair
      (triple (int_range 1 3) (int_range 1 3) (int_range 1 3))
      (triple (int_range 0 4) (int_range 0 4) (int_range 0 1)))

let arb_wspec = QCheck.set_print (fun p -> Spec.to_string (spec_of_wparams p)) arb_wparams

(* Deterministic problem data per spec: the rng seed is derived from the
   parameters, so a shrunk counterexample reproduces exactly. *)
let problem_for spec seed_hint =
  let rng = Util.Rng.create (20260806 + seed_hint) in
  Conv.Direct.random_problem rng spec

let check_impls spec =
  let input, weights = problem_for spec (Hashtbl.hash (Spec.to_string spec)) in
  let reference = Conv.Direct.run spec ~input ~weights in
  let tol = tolerance reference in
  List.iter
    (fun impl ->
      if impl.supported spec then begin
        let out = impl.run spec ~input ~weights in
        let diff = Tensor.max_abs_diff reference out in
        if not (diff <= tol) then
          QCheck.Test.fail_reportf "%s deviates from direct by %g (tol %g) on %s"
            impl.name diff tol (Spec.to_string spec)
      end)
    (implementations ());
  true

let differential_test ?(count = 40) () =
  QCheck.Test.make ~name:"conv implementations agree within float32 tolerance" ~count
    arb_spec
    (fun p -> check_impls (spec_of_params p))

let differential_winograd_test ?(count = 40) () =
  QCheck.Test.make ~name:"conv implementations agree (winograd-supported specs)" ~count
    arb_wspec
    (fun p -> check_impls (spec_of_wparams p))

(* --- analytic Io_count formulas vs instrumented traffic counters --- *)

let close a b = Float.abs (a -. b) < 0.5 (* both sides are integer-valued tallies *)

let io_direct_test ?(count = 60) () =
  QCheck.Test.make
    ~name:"Tiled_direct: analytic io_only = instrumented per-block tally" ~count
    QCheck.(pair arb_spec (triple (int_range 1 5) (int_range 1 5) (int_range 1 4)))
    (fun (p, (x, y, z)) ->
      let spec = spec_of_params p in
      let tile = { Conv.Tiled_direct.x; y; z } in
      let input, weights = problem_for spec (x + (7 * y) + (49 * z)) in
      let measured = (Conv.Tiled_direct.run spec ~tile ~input ~weights).io in
      let analytic = Conv.Tiled_direct.io_only spec ~tile in
      if not (close measured.loads analytic.loads && close measured.stores analytic.stores)
      then
        QCheck.Test.fail_reportf
          "tile %dx%dx%d on %s: instrumented %a <> analytic %a" x y z
          (Spec.to_string spec) Conv.Io_count.pp measured Conv.Io_count.pp analytic;
      true)

let io_winograd_test ?(count = 40) () =
  QCheck.Test.make
    ~name:"Tiled_winograd: analytic io_only = instrumented per-block tally" ~count
    QCheck.(pair arb_wspec (triple (int_range 1 2) (int_range 1 2) (int_range 1 4)))
    (fun (p, (mx, my, z)) ->
      let spec = spec_of_wparams p in
      let e = winograd_e in
      let tile = { Conv.Tiled_winograd.x = mx * e; y = my * e; z } in
      let input, weights = problem_for spec (mx + (7 * my) + (49 * z)) in
      let measured = (Conv.Tiled_winograd.run ~e spec ~tile ~input ~weights).io in
      let analytic = Conv.Tiled_winograd.io_only ~e spec ~tile in
      if not (close measured.loads analytic.loads && close measured.stores analytic.stores)
      then
        QCheck.Test.fail_reportf
          "winograd tile %dx%dx%d on %s: instrumented %a <> analytic %a" (mx * e)
          (my * e) z (Spec.to_string spec) Conv.Io_count.pp measured Conv.Io_count.pp
          analytic;
      true)

(* --- GPU cost model invariants --- *)

let arch = Gpu_sim.Arch.gtx_1080_ti

let kernel_cost_monotone_test ?(count = 100) () =
  QCheck.Test.make
    ~name:"Kernel_cost: more off-chip traffic never runs faster" ~count
    QCheck.(
      quad (int_range 1_000 10_000_000) (int_range 1_000 10_000_000)
        (pair (int_range 1 8) (int_range 1 512))
        (int_range 1 1_000_000))
    (fun (flops, io_elems, (warps, blocks), delta) ->
      let mk io =
        Gpu_sim.Kernel_cost.make ~flops:(float_of_int flops) ~io_elems:io
          ~threads_per_block:(32 * warps) ~shmem_bytes_per_block:8192 ~blocks ()
      in
      let t1 = Gpu_sim.Kernel_cost.runtime_us arch (mk (float_of_int io_elems)) in
      let t2 =
        Gpu_sim.Kernel_cost.runtime_us arch (mk (float_of_int (io_elems + delta)))
      in
      t2 >= t1 -. 1e-9)

let shmem_monotone_test ?(count = 80) () =
  QCheck.Test.make
    ~name:"more shared memory never increases modeled optimal I/O" ~count
    QCheck.(triple arb_spec (int_range 32 4096) (int_range 1 4096))
    (fun (p, s_small, extra) ->
      let spec = spec_of_params p in
      let s1 = float_of_int s_small and s2 = float_of_int (s_small + extra) in
      let dc_ok =
        Core.Dataflow_cost.q_dc_optimal spec ~s:s2 ~np:1
        <= Core.Dataflow_cost.q_dc_optimal spec ~s:s1 ~np:1 +. 1e-9
      in
      let wa_ok =
        if Conv.Winograd.supported spec then
          Core.Dataflow_cost.q_wa_optimal ~e:winograd_e spec ~s:s2 ~np:1
          <= Core.Dataflow_cost.q_wa_optimal ~e:winograd_e spec ~s:s1 ~np:1 +. 1e-9
        else true
      in
      (* Discrete counterpart over the actual dataflow: the cheapest divisor
         tile that fits S cannot get worse when S grows (feasible sets nest). *)
      let best_fitting s =
        let w_out = Spec.w_out spec and h_out = Spec.h_out spec in
        let best = ref infinity in
        List.iter
          (fun x ->
            List.iter
              (fun y ->
                List.iter
                  (fun z ->
                    let tile = { Conv.Tiled_direct.x; y; z } in
                    if Conv.Tiled_direct.working_set spec ~tile ~alpha:1 <= s then
                      best :=
                        Float.min !best
                          (Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile)))
                  (Core.Optimality.divisors spec.c_out))
              (Core.Optimality.divisors h_out))
          (Core.Optimality.divisors w_out);
        !best
      in
      let tiled_ok = best_fitting (s_small + extra) <= best_fitting s_small +. 1e-9 in
      dc_ok && wa_ok && tiled_ok)

(* Same-volume perturbations of the [x y = R z] stationary point: Equation 20
   (resp. 22) is minimised on the optimality manifold, so every neighbour with
   the same on-chip volume must cost at least as much. *)
let optimality_dominates_test ?(count = 100) () =
  QCheck.Test.make
    ~name:"Optimality: x*y = R*z dominates its equal-volume neighbourhood" ~count
    QCheck.(triple arb_spec (int_range 64 16384) (int_range 1 40))
    (fun (p, s, fi) ->
      let spec = spec_of_params p in
      let f = 0.4 +. (float_of_int fi /. 20.0) in
      let s = float_of_int s in
      let q_at (xy, z) =
        let side = sqrt xy in
        Core.Dataflow_cost.q_dc_tile spec ~x:side ~y:side ~z
      in
      let xy, z = Core.Optimality.real_tile_direct spec ~s ~np:1 in
      let base = q_at (xy, z) in
      let perturbed = q_at (xy *. f, z /. f) in
      let dc_ok = base <= perturbed +. (1e-9 *. base) in
      let wa_ok =
        if Conv.Winograd.supported spec then begin
          let e = winograd_e in
          let q_at (xy, z) =
            let side = sqrt xy in
            Core.Dataflow_cost.q_wa_tile ~e spec ~x:side ~y:side ~z
          in
          let xy, z = Core.Optimality.real_tile_winograd ~e spec ~s ~np:1 in
          let base = q_at (xy, z) in
          base <= q_at (xy *. f, z /. f) +. (1e-9 *. base)
        end
        else true
      in
      dc_ok && wa_ok)

let all_tests ~deep =
  let scale n = if deep then 5 * n else n in
  [
    differential_test ~count:(scale 40) ();
    differential_winograd_test ~count:(scale 30) ();
    io_direct_test ~count:(scale 60) ();
    io_winograd_test ~count:(scale 30) ();
    kernel_cost_monotone_test ~count:(scale 100) ();
    shmem_monotone_test ~count:(scale 60) ();
    optimality_dominates_test ~count:(scale 100) ();
  ]
