(** The cross-architecture fleet sweep behind [conv-io gold] and
    [conv-io regress].

    One sweep unit is a (model, architecture) pair: every layer of the model
    is timed through [Cnn.Runner.time_model] — tuned direct and Winograd
    dataflows versus the simulated vendor library — and distilled into the
    {!Gold.layer_record}s a golden file holds: best configuration, measured
    and analytically-predicted runtime, library baseline, Q-bound ratio and
    stop reason.

    Warm layer: before timing, every candidate (layer, algorithm) key that a
    [Service.Result_cache] already holds is primed into the runner's memo
    table ([Cnn.Runner.prime_result]), so a regress run replays the fleet
    from the shared cache instead of re-tuning it; records answered this way
    carry [stop = "replayed"].  Live-tuned results are written back, so
    [gold] leaves behind a cache that makes the next [regress] warm. *)

type settings = {
  seed : int;
  budget : int;  (** measurement budget per tuning run *)
  backend : Cnn.Runner.backend;
}

val default_settings : settings
(** seed 0, budget 120 measurements, cuDNN backend — the fleet contract;
    golden files embed these in their meta record. *)

val backend_token : Cnn.Runner.backend -> string
(** ["cudnn"] / ["miopen"]. *)

val generation : settings -> string
(** The [Service.Result_cache] generation string for these settings —
    changing any setting invalidates the warm layer instead of replaying
    results measured under a different contract. *)

val fleet_models : unit -> Cnn.Models.t list
(** The evaluation networks plus MobileNet-v1 — the models the fleet
    covers. *)

val fleet_arches : unit -> Gpu_sim.Arch.t list
(** [Gpu_sim.Arch.all]: 1080ti, v100, titanx, gfx906. *)

val reset_replays : unit -> unit
(** Forgets which memo keys were served from the result cache.  The harness
    calls it next to [Cnn.Runner.clear_cache] — the two tables describe the
    same process-lifetime memo and must reset together. *)

type pair = {
  model : Cnn.Models.t;
  arch : Gpu_sim.Arch.t;
  gold : Gold.file;  (** the records to write (gold) or diff (regress) *)
  timing : Cnn.Runner.model_timing;
  wall_s : float;  (** host wall-clock spent sweeping this pair *)
  live : int;  (** candidate keys tuned live during this pair *)
  warm : int;  (** candidate keys answered from memo or result cache *)
}

val run_pair :
  ?cache:Service.Result_cache.t -> settings:settings -> Gpu_sim.Arch.t ->
  Cnn.Models.t -> pair
(** Sweeps one pair.  With [cache], primes the runner from it first and
    writes live-tuned results back (idempotently: an entry identical to the
    cached one is not re-appended).  Within one process, keys already
    memoised by earlier pairs (repeated shapes across models) count as
    [warm]. *)

val summary_table : pair list -> Util.Table.t
(** Model / arch / layers / live / warm / ours / library / speedup / wall —
    the fleet report printed by both harness modes and the model zoo. *)
