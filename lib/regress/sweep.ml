type settings = {
  seed : int;
  budget : int;
  backend : Cnn.Runner.backend;
}

let default_settings = { seed = 0; budget = 120; backend = Cnn.Runner.Cudnn }

let backend_token = function Cnn.Runner.Cudnn -> "cudnn" | Cnn.Runner.Miopen -> "miopen"

let generation s =
  Printf.sprintf "fleet;seed=%d;budget=%d;backend=%s" s.seed s.budget
    (backend_token s.backend)

let fleet_models () = Cnn.Models.evaluation_models @ [ Cnn.Models.mobilenet ]
let fleet_arches () = Gpu_sim.Arch.all

type pair = {
  model : Cnn.Models.t;
  arch : Gpu_sim.Arch.t;
  gold : Gold.file;
  timing : Cnn.Runner.model_timing;
  wall_s : float;
  live : int;
  warm : int;
}

(* Which memo keys were answered from the result cache rather than tuned in
   this process.  Process-lifetime (pairs share the runner's memo table, so a
   key primed while sweeping ResNet-18 is still a replay when ResNet-34 hits
   the same shape); the harness resets it together with the memo table. *)
let replayed : (string, unit) Hashtbl.t = Hashtbl.create 64

let reset_replays () = Hashtbl.reset replayed

let canonical_of arch spec algorithm =
  Core.Search_space.canonical_key arch spec algorithm ~pruned:true

(* The per-layer optimality gap and the analytic price both come from the
   auditor — gold files must reprice bit-identically through the same code
   path [Verify.Audit.check] uses, or audit-on-read would reject them. *)
let q_ratio = Verify.Audit.q_ratio
let predicted_us = Verify.Audit.predicted_us

(* Rebuild a memoisable tuner result from a cache entry.  The search history
   is gone — only the answer survives — so [stop] is a placeholder; sweep
   records mark these keys ["replayed"] (via the registry above) and the
   diff skips their stop/trials fields. *)
let result_of_entry (e : Service.Result_cache.entry) =
  {
    Core.Tuner.best_config = e.config;
    best_runtime_us = e.runtime_us;
    best_gflops = e.gflops;
    measurements = e.trials;
    converged_at = 0;
    history = [];
    space_size = 0.0;
    faults = Core.Tuner.no_faults;
    stop = Core.Tuner.Converged;
  }

let prime_pair ~cache ~settings arch (model : Cnn.Models.t) =
  match cache with
  | None -> ()
  | Some cache ->
    List.iter
      (fun (l : Cnn.Layer.t) ->
        List.iter
          (fun algo ->
            match Cnn.Runner.find_result ~seed:settings.seed arch l.spec algo with
            | Some _ -> ()
            | None -> (
              let canonical = canonical_of arch l.spec algo in
              match Service.Result_cache.find cache ~canonical with
              | None -> ()
              | Some entry ->
                if
                  Cnn.Runner.prime_result ~seed:settings.seed arch l.spec algo
                    (result_of_entry entry)
                then Hashtbl.replace replayed canonical ()))
          (Cnn.Runner.candidates l))
      model.layers

let writeback ~cache ~settings arch (model : Cnn.Models.t) =
  match cache with
  | None -> ()
  | Some cache ->
    List.iter
      (fun (l : Cnn.Layer.t) ->
        List.iter
          (fun algo ->
            match Cnn.Runner.find_result ~seed:settings.seed arch l.spec algo with
            | None -> ()
            | Some (r : Core.Tuner.result) ->
              let canonical = canonical_of arch l.spec algo in
              let fresh (e : Service.Result_cache.entry option) =
                match e with
                | Some e ->
                  e.config <> r.best_config || e.runtime_us <> r.best_runtime_us
                | None -> true
              in
              if fresh (Service.Result_cache.find cache ~canonical) then
                Service.Result_cache.put cache
                  {
                    Service.Result_cache.key =
                      Service.Result_cache.key_of_canonical canonical;
                    canonical;
                    source = Service.Protocol.Src_tuned;
                    runtime_us = r.best_runtime_us;
                    gflops = r.best_gflops;
                    predicted_us = predicted_us arch l.spec r.best_config;
                    trials = r.measurements;
                    config = r.best_config;
                  })
          (Cnn.Runner.candidates l))
      model.layers

let record_of_timing arch (lt : Cnn.Runner.layer_timing) =
  let spec = lt.layer.spec in
  let base =
    {
      Gold.layer = lt.layer.name;
      spec = Conv.Conv_spec.canonical spec;
      algorithm = lt.ours_algorithm;
      config = "library";
      ours_us = lt.ours_us;
      predicted_us = lt.library_us;
      library_us = lt.library_us;
      library_algorithm = lt.library_algorithm;
      q_ratio = 0.0;
      stop = "library";
      trials = 0;
    }
  in
  match lt.ours_result with
  | None -> base
  | Some (r : Core.Tuner.result) ->
    let canonical = canonical_of arch spec r.best_config.algorithm in
    {
      base with
      config = Core.Config.to_compact r.best_config;
      predicted_us = predicted_us arch spec r.best_config;
      q_ratio = q_ratio arch spec r.best_config;
      stop =
        (if Hashtbl.mem replayed canonical then "replayed" else Gold.stop_token r.stop);
      trials = r.measurements;
    }

(* Distinct candidate memo keys of a model on one architecture — the unit of
   the live/warm accounting (repeated shapes within and across models share
   one key). *)
let candidate_keys arch (model : Cnn.Models.t) =
  let keys = Hashtbl.create 32 in
  List.iter
    (fun (l : Cnn.Layer.t) ->
      List.iter
        (fun algo -> Hashtbl.replace keys (canonical_of arch l.spec algo) (l.spec, algo))
        (Cnn.Runner.candidates l))
    model.layers;
  keys

let run_pair ?cache ~settings arch (model : Cnn.Models.t) =
  let t0 = Unix.gettimeofday () in
  prime_pair ~cache ~settings arch model;
  let keys = candidate_keys arch model in
  let warm =
    Hashtbl.fold
      (fun _ (spec, algo) n ->
        match Cnn.Runner.find_result ~seed:settings.seed arch spec algo with
        | Some _ -> n + 1
        | None -> n)
      keys 0
  in
  let timing =
    Cnn.Runner.time_model ~seed:settings.seed ~max_measurements:settings.budget
      ~backend:settings.backend arch model
  in
  writeback ~cache ~settings arch model;
  let gold =
    {
      Gold.meta =
        {
          Gold.model = model.name;
          arch = Gpu_sim.Arch.alias arch;
          seed = settings.seed;
          budget = settings.budget;
          backend = backend_token settings.backend;
        };
      layers = List.map (record_of_timing arch) timing.layers;
    }
  in
  {
    model;
    arch;
    gold;
    timing;
    wall_s = Unix.gettimeofday () -. t0;
    live = Hashtbl.length keys - warm;
    warm;
  }

let summary_table pairs =
  let table =
    Util.Table.create
      [ "model"; "arch"; "layers"; "live"; "warm"; "ours (us)"; "library (us)";
        "speedup"; "wall (s)" ]
  in
  List.iter
    (fun p ->
      Util.Table.add_row table
        [
          p.model.Cnn.Models.name;
          Gpu_sim.Arch.alias p.arch;
          string_of_int (List.length p.timing.layers);
          string_of_int p.live;
          string_of_int p.warm;
          Printf.sprintf "%.1f" p.timing.ours_total_us;
          Printf.sprintf "%.1f" p.timing.library_total_us;
          Util.Table.cell_f p.timing.speedup;
          Printf.sprintf "%.2f" p.wall_s;
        ])
    pairs;
  table
