(** Gold-file regression harness for the cross-architecture fleet sweep.

    {!Gold} is the golden-file format (durable records, typed mismatch
    diff), {!Sweep} runs one (model, architecture) pair through the CNN
    runner with a shared-result-cache warm layer, and {!Harness} drives the
    whole fleet in [gold] (record) or [regress] (enforce) mode, MapGraph
    [.gold]/[.pass]/[.timing] style. *)

module Gold = Gold
module Sweep = Sweep
module Harness = Harness
