(** The gold/regress driver: sweep the fleet, then either record it or
    enforce it.

    [Gold] sweeps every requested (model, architecture) pair {e cold} — the
    runner memo is cleared and any result-cache file is removed first — and
    snapshots one golden file per pair into [gold_dir].  The sweep is a pure
    function of the settings, so two gold runs from a clean checkout produce
    byte-identical files; the live-tuned results are flushed to the result
    cache so the next regress run is warm.

    [Regress] re-sweeps {e warm} (runner memo primed from the result cache),
    diffs every pair against its golden file with {!Gold.compare_files}, and
    writes MapGraph-style markers into [out_dir]: a [.pass] file per clean
    pair (stale markers are removed on failure) and a [.timing] file per
    pair always.  Both modes can aggregate the sweep into a
    [BENCH_fleet.json] trajectory file. *)

type mode = Gold | Regress

type pair_report = {
  pair : Sweep.pair;
  gold_path : string;
  mismatches : Gold.mismatch list;  (** empty in [Gold] mode *)
  pass : bool;
}

type summary = {
  mode : mode;
  settings : Sweep.settings;
  tolerance : float;
  reports : pair_report list;
  passed : int;
  failed : int;
  wall_s : float;
}

val default_tolerance : float
(** 1e-6 relative — see {!Gold.compare_files} for the rationale. *)

val run :
  ?models:Cnn.Models.t list ->
  ?arches:Gpu_sim.Arch.t list ->
  ?settings:Sweep.settings ->
  ?tolerance:float ->
  ?cache_path:string ->
  ?bench_path:string ->
  gold_dir:string ->
  out_dir:string ->
  mode ->
  summary
(** Defaults: the full fleet ({!Sweep.fleet_models} x {!Sweep.fleet_arches}),
    {!Sweep.default_settings}, {!default_tolerance}, no result cache, no
    bench file.  Directories are created as needed.  Architectures iterate
    outermost so models sharing layer shapes (ResNet-18/34) reuse the memo
    within each architecture. *)

val failed : summary -> bool
(** [true] iff any pair failed — the harness's process exit condition. *)

val print_summary : ?out:out_channel -> summary -> unit
(** The fleet table, one status line per failing pair with its typed
    mismatches, and a one-line verdict. *)

val write_bench : string -> summary -> unit
(** Writes the sweep trajectory as JSON (atomic replace): per-pair rows
    (layers, live/warm tuning counts, totals, speedup, wall time, pass) and
    per-architecture aggregates (geometric-mean speedup, total wall time). *)
