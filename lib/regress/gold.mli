(** Golden result files — the enforced contract of the fleet sweep.

    One golden file per (model, architecture) pair, MapGraph-style
    ([regressions/] in the MirrorOfMapGraph repo: per-(graph, algorithm)
    [.gold] / [.pass] / [.timing] files), stored as a [Util.Durable] record
    file of kind ["regress-gold"] so corruption is detected and salvaged,
    never silently replayed.

    A file holds one meta record (the sweep settings that produced it:
    seed, measurement budget, backend) followed by one record per layer of
    the model: the canonical layer shape, the winning algorithm, the best
    configuration found (compact encoding), the measured and
    analytically-predicted runtimes, the library baseline, the Q-bound
    ratio (dataflow traffic of the chosen tile over the paper's I/O lower
    bound at [S] = half an SM) and the tuner's stop reason.

    Floats are written as hexadecimal literals ([%h]), so a golden file is
    {e byte-deterministic}: the simulated GPU and the tuner are pure
    functions of the seed, and two [gold] runs from a clean checkout
    produce byte-identical files. *)

val kind : string
(** The durable-file kind tag, ["regress-gold"]. *)

type meta = {
  model : string;  (** display name, e.g. ["ResNet-18"] *)
  arch : string;  (** short alias, e.g. ["v100"] ([Gpu_sim.Arch.alias]) *)
  seed : int;
  budget : int;  (** measurement budget per tuning run *)
  backend : string;  (** ["cudnn"] or ["miopen"] *)
}

type layer_record = {
  layer : string;  (** layer name within the model *)
  spec : string;  (** [Conv.Conv_spec.canonical] of the shape *)
  algorithm : string;  (** winning algorithm label, e.g. ["direct-dataflow"] *)
  config : string;  (** [Core.Config.to_compact] of the best configuration *)
  ours_us : float;  (** tuned runtime (single execution) *)
  predicted_us : float;  (** noise-free analytic runtime of the best config *)
  library_us : float;  (** simulated vendor-library baseline *)
  library_algorithm : string;
  q_ratio : float;
      (** dataflow traffic of the winning tile over the analytic I/O lower
          bound (Theorem 4.12 / 4.20) at [S] = half an SM — the per-layer
          optimality-gap figure the sweep must not regress *)
  stop : string;  (** stop-reason token; ["replayed"] when served warm *)
  trials : int;  (** measurements the tuning run spent *)
}

type file = { meta : meta; layers : layer_record list }

val stop_token : Core.Tuner.stop_reason -> string
(** Compact encoding: ["converged" | "trial-budget" | "deadline" |
    "breaker:<k>"]. *)

val encode_layer : layer_record -> string
val decode_layer : string -> layer_record option
(** Tab-separated payload round-trip; [decode_layer (encode_layer r) =
    Some r] for records whose string fields are tab- and newline-free
    (everything the sweep produces). *)

val slug : string -> string
(** Filesystem-safe lowercase model name (["ResNet-18"] → ["resnet-18"]). *)

val path : dir:string -> model:string -> arch:string -> string
(** [<dir>/<slug model>.<arch>.gold] — the MapGraph naming scheme. *)

val write : string -> file -> unit
(** Atomic snapshot ([Util.Durable.write_snapshot]) — byte-deterministic
    for equal contents. *)

val read : ?audit:bool -> string -> (file, string) result
(** Salvage-tolerant read: corrupt suffixes are dropped (with the standard
    one-line warning) and whatever decodes is returned; [Error] for a
    missing file, a file of another kind, or one without a decodable meta
    record.

    With [audit = true] (the default) every tuned layer record is
    additionally re-derived through [Verify.Audit] (strict policy, minus
    the content key — gold files are addressed by path): the config must
    be a validated member of its pruned search space, [predicted_us] and
    [q_ratio] must reprice bit-identically, [ours_us] must sit in the
    noise band.  The first rejected record fails the whole read — a gold
    that frames cleanly but lies is corruption, not a baseline. *)

(** {1 Typed regression reports} *)

type mismatch =
  | Missing_pair of { path : string }
      (** no golden file for a swept (model, arch) pair *)
  | Gold_rejected of { path : string; why : string }
      (** a golden file exists but failed to read or was rejected by the
          audit-on-read — tampering or rot, reported as its own failure *)
  | Meta_drift of { field : string; gold : string; got : string }
      (** the sweep ran with different settings than the gold was made with *)
  | Missing_layer of { layer : string }  (** in gold, absent from the sweep *)
  | Extra_layer of { layer : string }  (** swept, absent from gold *)
  | Config_drift of { layer : string; field : string; gold : string; got : string }
      (** the winning algorithm, configuration, spec or library pick changed *)
  | Cost_drift of { layer : string; field : string; gold : float; got : float; rel : float }
      (** a runtime or Q-ratio moved beyond tolerance *)
  | Stop_drift of { layer : string; gold : string; got : string }
      (** a live tuning run stopped for a different reason or trial count *)

val mismatch_to_string : mismatch -> string

val compare_files : tolerance:float -> gold:file -> got:file -> mismatch list
(** Typed diff, gold-layer order.  [tolerance] is the relative drift
    allowed on every cost field ([ours_us], [predicted_us], [library_us],
    [q_ratio]); the simulator is deterministic, so the default harness
    tolerance is a tight 1e-6 — absorbing last-ulp wobble from compiler or
    libm changes while flagging any real drift.  Stop reason and trial
    count are compared only for records the sweep tuned live
    ([got.stop <> "replayed"]): a warm replay has no search of its own to
    compare.  NaN costs never pass silently: a NaN on either side (but not
    both) is a drift. *)
