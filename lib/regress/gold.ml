let kind = "regress-gold"

type meta = {
  model : string;
  arch : string;
  seed : int;
  budget : int;
  backend : string;
}

type layer_record = {
  layer : string;
  spec : string;
  algorithm : string;
  config : string;
  ours_us : float;
  predicted_us : float;
  library_us : float;
  library_algorithm : string;
  q_ratio : float;
  stop : string;
  trials : int;
}

type file = { meta : meta; layers : layer_record list }

let stop_token = function
  | Core.Tuner.Converged -> "converged"
  | Core.Tuner.Trial_budget -> "trial-budget"
  | Core.Tuner.Deadline_reached -> "deadline"
  | Core.Tuner.Breaker_tripped k -> Printf.sprintf "breaker:%d" k

(* Hex floats ("%h") round-trip through [float_of_string] bit-exactly and
   render identically on every platform, which is what makes two gold runs
   byte-identical.  Tabs separate fields; none of the encoded strings can
   contain one (specs, compact configs and algorithm labels are ASCII
   words/punctuation). *)
let fl = Printf.sprintf "%h"

let fl_of_string s =
  match float_of_string_opt s with
  | Some v -> Some v
  | None -> None

let encode_meta (m : meta) =
  String.concat "\t"
    [ "meta"; "1"; m.model; m.arch; string_of_int m.seed; string_of_int m.budget;
      m.backend ]

let decode_meta payload =
  match String.split_on_char '\t' payload with
  | [ "meta"; "1"; model; arch; seed; budget; backend ] -> (
    match (int_of_string_opt seed, int_of_string_opt budget) with
    | Some seed, Some budget -> Some { model; arch; seed; budget; backend }
    | _ -> None)
  | _ -> None

let encode_layer (r : layer_record) =
  String.concat "\t"
    [
      "layer"; r.layer; r.spec; r.algorithm; r.config; fl r.ours_us;
      fl r.predicted_us; fl r.library_us; r.library_algorithm; fl r.q_ratio;
      r.stop; string_of_int r.trials;
    ]

let decode_layer payload =
  match String.split_on_char '\t' payload with
  | [ "layer"; layer; spec; algorithm; config; ours; predicted; library;
      library_algorithm; q; stop; trials ] -> (
    match
      ( fl_of_string ours, fl_of_string predicted, fl_of_string library,
        fl_of_string q, int_of_string_opt trials )
    with
    | Some ours_us, Some predicted_us, Some library_us, Some q_ratio, Some trials ->
      Some
        {
          layer; spec; algorithm; config; ours_us; predicted_us; library_us;
          library_algorithm; q_ratio; stop; trials;
        }
    | _ -> None)
  | _ -> None

let slug name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '-') as c -> Buffer.add_char b c
      | _ -> Buffer.add_char b '-')
    name;
  Buffer.contents b

let path ~dir ~model ~arch = Filename.concat dir (Printf.sprintf "%s.%s.gold" (slug model) arch)

let write p (f : file) =
  Util.Durable.write_snapshot ~kind p (encode_meta f.meta :: List.map encode_layer f.layers)

(* Gold files are an audit boundary too: a record that frames and decodes
   can still carry a tampered config or cost.  Every tuned row (library
   baselines carry no config to check) must re-derive through the auditor —
   the same strict policy the service cache is held to, minus the content
   key (gold files are addressed by path, not hash). *)
let audit_file p (f : file) =
  match Gpu_sim.Arch.of_alias f.meta.arch with
  | None -> Error (Printf.sprintf "golden file %s: unknown arch alias %S" p f.meta.arch)
  | Some arch ->
    let rec check = function
      | [] -> Ok f
      | (r : layer_record) :: tl when r.config = "library" -> check tl
      | (r : layer_record) :: tl -> (
        match Core.Config.of_compact r.config with
        | None ->
          Error
            (Printf.sprintf "golden file %s: layer %s has undecodable config %S" p
               r.layer r.config)
        | Some config -> (
          match Verify.Audit.parse_spec_canonical r.spec with
          | None ->
            Error
              (Printf.sprintf "golden file %s: layer %s has unparseable spec %S" p
                 r.layer r.spec)
          | Some spec -> (
            let canonical =
              Core.Search_space.canonical_key arch spec config.Core.Config.algorithm
                ~pruned:true
            in
            match
              Verify.Audit.check ~predicted_us:r.predicted_us ~q_ratio:r.q_ratio
                ~canonical ~config ~runtime_us:r.ours_us ()
            with
            | Verify.Audit.Ok -> check tl
            | Verify.Audit.Suspect reasons ->
              Error
                (Printf.sprintf "golden file %s: audit rejected layer %s (%s)" p
                   r.layer
                   (String.concat ","
                      (List.map Verify.Audit.reason_token reasons))))))
    in
    check f.layers

let read ?(audit = true) p =
  let outcome = Util.Durable.read ~kind p in
  match outcome with
  | Util.Durable.Missing -> Error (Printf.sprintf "no golden file at %s" p)
  | Util.Durable.Intact [] -> Error (Printf.sprintf "empty golden file at %s" p)
  | Util.Durable.Salvaged { records = []; reason; _ } ->
    Error (Printf.sprintf "golden file %s unreadable (%s)" p reason)
  | Util.Durable.Intact (m :: rest) | Util.Durable.Salvaged { records = m :: rest; _ }
    -> (
    Util.Durable.warn_dropped ~path:p outcome;
    match decode_meta m with
    | None -> Error (Printf.sprintf "golden file %s has no meta record" p)
    | Some meta ->
      (* A record that frames (CRC passes) but no longer decodes is format
         drift, not corruption — fail loudly rather than diff a subset. *)
      let rec decode acc = function
        | [] -> Ok { meta; layers = List.rev acc }
        | payload :: tl -> (
          match decode_layer payload with
          | Some r -> decode (r :: acc) tl
          | None ->
            Error (Printf.sprintf "golden file %s: undecodable record %S" p payload))
      in
      match decode [] rest with
      | Error _ as e -> e
      | Ok f -> if audit then audit_file p f else Ok f)

(* --- typed diff --- *)

type mismatch =
  | Missing_pair of { path : string }
  | Gold_rejected of { path : string; why : string }
  | Meta_drift of { field : string; gold : string; got : string }
  | Missing_layer of { layer : string }
  | Extra_layer of { layer : string }
  | Config_drift of { layer : string; field : string; gold : string; got : string }
  | Cost_drift of { layer : string; field : string; gold : float; got : float; rel : float }
  | Stop_drift of { layer : string; gold : string; got : string }

let mismatch_to_string = function
  | Missing_pair { path } -> Printf.sprintf "missing-pair: no golden file at %s" path
  | Gold_rejected { path; why } -> Printf.sprintf "gold-rejected: %s (%s)" path why
  | Meta_drift { field; gold; got } ->
    Printf.sprintf "meta-drift: %s was %s, sweep ran with %s" field gold got
  | Missing_layer { layer } -> Printf.sprintf "missing-layer: %s absent from sweep" layer
  | Extra_layer { layer } -> Printf.sprintf "extra-layer: %s absent from gold" layer
  | Config_drift { layer; field; gold; got } ->
    Printf.sprintf "config-drift: %s %s was %s, got %s" layer field gold got
  | Cost_drift { layer; field; gold; got; rel } ->
    Printf.sprintf "cost-drift: %s %s was %.6g, got %.6g (rel %.3g)" layer field gold
      got rel
  | Stop_drift { layer; gold; got } ->
    Printf.sprintf "stop-drift: %s was %s, got %s" layer gold got

let compare_files ~tolerance ~(gold : file) ~(got : file) =
  let out = ref [] in
  let add m = out := m :: !out in
  let meta_field field g o = if g <> o then add (Meta_drift { field; gold = g; got = o }) in
  meta_field "model" gold.meta.model got.meta.model;
  meta_field "arch" gold.meta.arch got.meta.arch;
  meta_field "seed" (string_of_int gold.meta.seed) (string_of_int got.meta.seed);
  meta_field "budget" (string_of_int gold.meta.budget) (string_of_int got.meta.budget);
  meta_field "backend" gold.meta.backend got.meta.backend;
  let config_field layer field g o =
    if g <> o then add (Config_drift { layer; field; gold = g; got = o })
  in
  (* [not (rel <= tolerance)] rather than [rel > tolerance]: a NaN on one
     side makes [rel] NaN, and NaN must read as drift, not as agreement. *)
  let cost_field layer field g o =
    if not (Float.is_nan g && Float.is_nan o) then begin
      let rel = Float.abs (o -. g) /. Float.max (Float.abs g) 1e-12 in
      if not (rel <= tolerance) then add (Cost_drift { layer; field; gold = g; got = o; rel })
    end
  in
  List.iter
    (fun (g : layer_record) ->
      match List.find_opt (fun (o : layer_record) -> o.layer = g.layer) got.layers with
      | None -> add (Missing_layer { layer = g.layer })
      | Some o ->
        config_field g.layer "spec" g.spec o.spec;
        config_field g.layer "algorithm" g.algorithm o.algorithm;
        config_field g.layer "config" g.config o.config;
        config_field g.layer "library-algorithm" g.library_algorithm o.library_algorithm;
        cost_field g.layer "ours_us" g.ours_us o.ours_us;
        cost_field g.layer "predicted_us" g.predicted_us o.predicted_us;
        cost_field g.layer "library_us" g.library_us o.library_us;
        cost_field g.layer "q_ratio" g.q_ratio o.q_ratio;
        (* A warm replay carries the cache's answer, not a fresh search —
           there is no stop reason or trial count of its own to hold against
           the gold record. *)
        if o.stop <> "replayed" then begin
          if g.stop <> o.stop then
            add (Stop_drift { layer = g.layer; gold = g.stop; got = o.stop });
          if g.trials <> o.trials then
            add
              (Stop_drift
                 {
                   layer = g.layer;
                   gold = Printf.sprintf "%d trials" g.trials;
                   got = Printf.sprintf "%d trials" o.trials;
                 })
        end)
    gold.layers;
  List.iter
    (fun (o : layer_record) ->
      if not (List.exists (fun (g : layer_record) -> g.layer = o.layer) gold.layers)
      then add (Extra_layer { layer = o.layer }))
    got.layers;
  List.rev !out
