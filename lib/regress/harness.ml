type mode = Gold | Regress

type pair_report = {
  pair : Sweep.pair;
  gold_path : string;
  mismatches : Gold.mismatch list;
  pass : bool;
}

type summary = {
  mode : mode;
  settings : Sweep.settings;
  tolerance : float;
  reports : pair_report list;
  passed : int;
  failed : int;
  wall_s : float;
}

let default_tolerance = 1e-6

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let marker_path ~out_dir ~model ~arch ext =
  Filename.concat out_dir (Printf.sprintf "%s.%s.%s" (Gold.slug model) arch ext)

let write_timing ~out_dir (p : Sweep.pair) =
  let arch = Gpu_sim.Arch.alias p.arch in
  let path = marker_path ~out_dir ~model:p.model.Cnn.Models.name ~arch "timing" in
  Util.Durable.write_atomic path
    (Printf.sprintf "%.3f live=%d warm=%d ours_us=%.3f library_us=%.3f\n"
       (p.wall_s *. 1000.) p.live p.warm p.timing.ours_total_us
       p.timing.library_total_us)

let set_pass_marker ~out_dir (p : Sweep.pair) pass =
  let arch = Gpu_sim.Arch.alias p.arch in
  let path = marker_path ~out_dir ~model:p.model.Cnn.Models.name ~arch "pass" in
  if pass then Util.Durable.write_atomic path "pass\n"
  else if Sys.file_exists path then Sys.remove path

let diff_pair ~tolerance ~gold_path (p : Sweep.pair) =
  match Gold.read gold_path with
  | Error why when Sys.file_exists gold_path ->
    (* The file is there but unreadable or audit-rejected — a tampered or
       rotten gold is its own failure mode, not a missing pair. *)
    [ Gold.Gold_rejected { path = gold_path; why } ]
  | Error _ -> [ Gold.Missing_pair { path = gold_path } ]
  | Ok gold -> Gold.compare_files ~tolerance ~gold ~got:p.gold

let write_bench path (s : summary) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let mode_token = match s.mode with Gold -> "gold" | Regress -> "regress" in
  pf "{\n";
  pf "  \"bench\": \"fleet\",\n";
  pf "  \"mode\": %S,\n" mode_token;
  pf "  \"settings\": {\"seed\": %d, \"budget\": %d, \"backend\": %S, \"tolerance\": %g},\n"
    s.settings.seed s.settings.budget
    (Sweep.backend_token s.settings.backend)
    s.tolerance;
  pf "  \"pairs\": [\n";
  List.iteri
    (fun i (r : pair_report) ->
      let p = r.pair in
      pf
        "    {\"model\": %S, \"arch\": %S, \"layers\": %d, \"live\": %d, \"warm\": \
         %d, \"ours_us\": %.3f, \"library_us\": %.3f, \"speedup\": %.4f, \
         \"wall_ms\": %.3f, \"pass\": %b, \"mismatches\": %d}%s\n"
        p.model.Cnn.Models.name (Gpu_sim.Arch.alias p.arch)
        (List.length p.timing.layers) p.live p.warm p.timing.ours_total_us
        p.timing.library_total_us p.timing.speedup (p.wall_s *. 1000.) r.pass
        (List.length r.mismatches)
        (if i = List.length s.reports - 1 then "" else ","))
    s.reports;
  pf "  ],\n";
  pf "  \"arches\": [\n";
  let arches =
    List.sort_uniq compare
      (List.map (fun r -> Gpu_sim.Arch.alias r.pair.Sweep.arch) s.reports)
  in
  List.iteri
    (fun i alias ->
      let rows =
        List.filter (fun r -> Gpu_sim.Arch.alias r.pair.Sweep.arch = alias) s.reports
      in
      let n = List.length rows in
      let geomean =
        exp
          (List.fold_left (fun acc r -> acc +. log r.pair.Sweep.timing.speedup) 0.0 rows
          /. float_of_int n)
      in
      let wall_ms =
        List.fold_left (fun acc r -> acc +. (r.pair.Sweep.wall_s *. 1000.)) 0.0 rows
      in
      pf
        "    {\"arch\": %S, \"models\": %d, \"geomean_speedup\": %.4f, \
         \"total_wall_ms\": %.3f}%s\n"
        alias n geomean wall_ms
        (if i = List.length arches - 1 then "" else ","))
    arches;
  pf "  ],\n";
  pf "  \"passed\": %d,\n" s.passed;
  pf "  \"failed\": %d,\n" s.failed;
  pf "  \"wall_s\": %.3f\n" s.wall_s;
  pf "}\n";
  Util.Durable.write_atomic path (Buffer.contents b)

let run ?models ?arches ?settings ?tolerance ?cache_path ?bench_path ~gold_dir
    ~out_dir mode =
  let models = Option.value models ~default:(Sweep.fleet_models ()) in
  let arches = Option.value arches ~default:(Sweep.fleet_arches ()) in
  let settings = Option.value settings ~default:Sweep.default_settings in
  let tolerance = Option.value tolerance ~default:default_tolerance in
  let t0 = Unix.gettimeofday () in
  mkdir_p gold_dir;
  mkdir_p out_dir;
  (* Both modes start from a clean process: gold must be cold by contract,
     and regress takes its warmth from the cache file, not from whatever an
     earlier in-process run happened to memoise. *)
  Cnn.Runner.clear_cache ();
  Sweep.reset_replays ();
  let cache =
    Option.map
      (fun path ->
        if mode = Gold && Sys.file_exists path then Sys.remove path;
        mkdir_p (Filename.dirname path);
        (* Audited: a poisoned warm-replay entry would otherwise flow
           straight into the sweep's timings. *)
        Service.Result_cache.load ~audit:true
          ~generation:(Sweep.generation settings) path)
      cache_path
  in
  let reports =
    List.concat_map
      (fun arch ->
        List.map
          (fun (model : Cnn.Models.t) ->
            let pair = Sweep.run_pair ?cache ~settings arch model in
            let gold_path =
              Gold.path ~dir:gold_dir ~model:model.name
                ~arch:(Gpu_sim.Arch.alias arch)
            in
            write_timing ~out_dir pair;
            match mode with
            | Gold ->
              Gold.write gold_path pair.gold;
              { pair; gold_path; mismatches = []; pass = true }
            | Regress ->
              let mismatches = diff_pair ~tolerance ~gold_path pair in
              let pass = mismatches = [] in
              set_pass_marker ~out_dir pair pass;
              { pair; gold_path; mismatches; pass })
          models)
      arches
  in
  Option.iter Service.Result_cache.flush cache;
  let passed = List.length (List.filter (fun r -> r.pass) reports) in
  let summary =
    {
      mode;
      settings;
      tolerance;
      reports;
      passed;
      failed = List.length reports - passed;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  Option.iter (fun path -> write_bench path summary) bench_path;
  summary

let failed s = s.failed > 0

let print_summary ?(out = stdout) (s : summary) =
  let mode_token = match s.mode with Gold -> "gold" | Regress -> "regress" in
  Printf.fprintf out "Fleet %s sweep: %d pairs, %d live tunes, %d warm, %.1fs\n"
    mode_token (List.length s.reports)
    (List.fold_left (fun acc r -> acc + r.pair.Sweep.live) 0 s.reports)
    (List.fold_left (fun acc r -> acc + r.pair.Sweep.warm) 0 s.reports)
    s.wall_s;
  Util.Table.print ~out (Sweep.summary_table (List.map (fun r -> r.pair) s.reports));
  List.iter
    (fun r ->
      if not r.pass then begin
        Printf.fprintf out "FAIL %s.%s (%d mismatches, gold: %s)\n"
          (Gold.slug r.pair.Sweep.model.Cnn.Models.name)
          (Gpu_sim.Arch.alias r.pair.Sweep.arch)
          (List.length r.mismatches) r.gold_path;
        List.iter
          (fun m -> Printf.fprintf out "  %s\n" (Gold.mismatch_to_string m))
          r.mismatches
      end)
    s.reports;
  match s.mode with
  | Gold -> Printf.fprintf out "Wrote %d golden files.\n" (List.length s.reports)
  | Regress ->
    if s.failed = 0 then
      Printf.fprintf out "All %d pairs match gold.\n" s.passed
    else Printf.fprintf out "%d of %d pairs drifted from gold.\n" s.failed (List.length s.reports)
