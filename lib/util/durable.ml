(* Checksummed, versioned, truncation-tolerant record files.

   Corruption is *detected*, never guessed around: a record is trusted only
   when its CRC-32 validates, and everything from the first untrusted line
   onward is reported dropped.  CRC-32 catches all single-bit flips and all
   burst errors up to 32 bits, which covers the realistic failure modes of
   an append-only text file (torn final write, truncation, media bit rot). *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc_hex s = Printf.sprintf "%08lx" (crc32 s)

let magic = "dur1"

let header ~kind =
  if kind = "" || String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') kind then
    invalid_arg "Durable.header: empty kind or tab/newline in kind";
  let prefix = magic ^ "\t" ^ kind in
  Printf.sprintf "%s\t%s" prefix (crc_hex prefix)

let frame payload =
  if String.exists (fun c -> c = '\n' || c = '\r') payload then
    invalid_arg "Durable.frame: newline in payload";
  Printf.sprintf "r\t%s\t%s" (crc_hex payload) payload

type read_outcome =
  | Missing
  | Intact of string list
  | Salvaged of { records : string list; dropped : int; reason : string }

let records = function
  | Missing -> []
  | Intact rs -> rs
  | Salvaged { records; _ } -> records

let dropped = function Missing | Intact _ -> 0 | Salvaged { dropped; _ } -> dropped

let is_hex8 s =
  String.length s = 8
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* A record line is [r TAB crc8 TAB payload]; the checksum sits at a fixed
   offset so payloads may contain tabs. *)
let parse_record line =
  let n = String.length line in
  if n >= 11 && line.[0] = 'r' && line.[1] = '\t' && line.[10] = '\t' then begin
    let crc_field = String.sub line 2 8 in
    let payload = String.sub line 11 (n - 11) in
    if is_hex8 crc_field then
      if crc_hex payload = crc_field then Ok payload else Error `Checksum
    else Error `Malformed
  end
  else Error `Malformed

(* [Error kind'] when the line is a valid header of a *different* kind —
   foreign data, which [repair] must not destroy. *)
let parse_header ~kind line =
  match String.split_on_char '\t' line with
  | [ m; k; crc ] when m = magic && is_hex8 crc && crc_hex (magic ^ "\t" ^ k) = crc ->
    if k = kind then Ok () else Error (`Foreign k)
  | _ -> Error `Garbled

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Also classifies whether the file is a valid durable file of another kind
   (for [repair]'s do-not-touch rule). *)
let read_ext ~kind path =
  if not (Sys.file_exists path) then (Missing, false)
  else begin
    let content = read_file path in
    if content = "" then (Intact [], false)
    else begin
      let terminated = content.[String.length content - 1] = '\n' in
      let lines =
        match List.rev (String.split_on_char '\n' content) with
        | "" :: rest when terminated -> List.rev rest
        | rest -> List.rev rest
      in
      let n_lines = List.length lines in
      match lines with
      | [] -> (Intact [], false)
      | header_line :: record_lines -> begin
        match parse_header ~kind header_line with
        | Error (`Foreign k) ->
          ( Salvaged
              {
                records = [];
                dropped = n_lines;
                reason = Printf.sprintf "header kind %S, expected %S" k kind;
              },
            true )
        | Error `Garbled ->
          ( Salvaged
              { records = []; dropped = n_lines; reason = "missing or garbled header" },
            false )
        | Ok () ->
          let n_records = List.length record_lines in
          let rec scan i acc = function
            | [] -> (Intact (List.rev acc), false)
            | line :: rest ->
              let last = rest = [] in
              (* An unterminated final line whose checksum still validates is
                 a complete record that merely lost its newline; accept it.
                 Anything else from here on is dropped. *)
              let salvage reason =
                ( Salvaged
                    { records = List.rev acc; dropped = n_records - i; reason },
                  false )
              in
              begin
                match parse_record line with
                | Ok payload -> scan (i + 1) (payload :: acc) rest
                | Error `Checksum when last && not terminated ->
                  salvage (Printf.sprintf "torn final record (record %d)" (i + 1))
                | Error `Checksum ->
                  salvage (Printf.sprintf "checksum mismatch at record %d" (i + 1))
                | Error `Malformed when last && not terminated ->
                  salvage (Printf.sprintf "torn final record (record %d)" (i + 1))
                | Error `Malformed ->
                  salvage (Printf.sprintf "malformed line at record %d" (i + 1))
              end
          in
          scan 0 [] record_lines
      end
    end
  end

let read ~kind path = fst (read_ext ~kind path)

let temp_path path = path ^ ".durable-tmp"

let write_raw_atomic path content =
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
  Sys.rename tmp path

let write_atomic path content = write_raw_atomic path content

let snapshot_content ~kind payloads =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~kind);
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      Buffer.add_string buf (frame p);
      Buffer.add_char buf '\n')
    payloads;
  Buffer.contents buf

let write_snapshot ~kind path payloads =
  write_raw_atomic path (snapshot_content ~kind payloads)

let repair ~kind path =
  match read_ext ~kind path with
  | (Missing | Intact _) as outcome, _ -> outcome
  | (Salvaged _ as outcome), true -> outcome (* foreign file: hands off *)
  | (Salvaged { records; _ } as outcome), false ->
    write_snapshot ~kind path records;
    outcome

(* A crash can lose just the final newline while leaving the record's
   checksum valid; [read] accepts such a record, so [append] must restore
   the missing terminator or the next record would merge onto that line. *)
let ends_in_newline path =
  (not (Sys.file_exists path))
  ||
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      n = 0
      ||
      (seek_in ic (n - 1);
       input_char ic = '\n'))

let append ~kind path payload =
  let line = frame payload in
  let terminated = ends_in_newline path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let prefix =
        if out_channel_length oc = 0 then header ~kind ^ "\n"
        else if not terminated then "\n"
        else ""
      in
      output_string oc (prefix ^ line ^ "\n"))

let warn_dropped ~path outcome =
  match outcome with
  | Missing | Intact _ -> ()
  | Salvaged { records; dropped; reason } ->
    if dropped > 0 then
      Log.warn_oncef ~key:("durable-salvage:" ^ path)
        "warning: %s: salvaged %d record(s), dropped %d (%s)\n%!" path
        (List.length records) dropped reason
