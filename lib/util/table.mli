(** Aligned plain-text tables for experiment output.

    The bench harness prints every paper table/figure as rows of a text table;
    this module keeps the formatting in one place. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; must have the same arity as the headers. *)

val print : ?out:out_channel -> t -> unit
(** Renders the table with column-aligned padding and a separator rule. *)

val to_csv : t -> string -> unit
(** Mirrors the table into a CSV file (see [Csv]). *)

val cell_f : float -> string
(** Fixed two-decimal rendering for floats, the house style for speedups. *)

val cell_sci : float -> string
(** Scientific [%.2e] rendering, the house style for search-space sizes. *)
