(* File corruption with a steady hand: read the whole file, apply the
   damage in memory, rewrite atomically.  The injector's own writes must be
   well-defined or a torture test could not tell injected corruption from
   injector sloppiness. *)

type op =
  | Truncate_to of int
  | Bit_flip of { offset : int; bit : int }
  | Garbage_append of string
  | Semantic_flip of { record : int; offset : int; bit : int }

let describe = function
  | Truncate_to n -> Printf.sprintf "truncate to %d bytes" n
  | Bit_flip { offset; bit } -> Printf.sprintf "flip bit %d of byte %d" bit offset
  | Garbage_append s -> Printf.sprintf "append %d garbage bytes (%S)" (String.length s) s
  | Semantic_flip { record; offset; bit } ->
    Printf.sprintf "flip bit %d of payload byte %d in record %d, re-framed with a valid CRC"
      bit offset record

let file_size path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)
  end

let draw rng ~size =
  match Rng.int rng 3 with
  | 0 -> Truncate_to (Rng.int rng (size + 1))
  | 1 when size > 0 ->
    Bit_flip { offset = Rng.int rng size; bit = Rng.int rng 8 }
  | 1 -> Truncate_to 0
  | _ ->
    let len = 1 + Rng.int rng 16 in
    Garbage_append (String.init len (fun _ -> Char.chr (Rng.int rng 256)))

(* A missing file reads as empty: a crash may strike before the artifact's
   first write, and the harness still needs to corrupt "what is there". *)
let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

(* A [Durable] record line is [r TAB crc8 TAB payload]: the payload starts
   at byte 11.  Semantic corruption mutates the payload and re-frames it
   with a freshly computed (valid!) CRC — the adversary that framing
   checksums are structurally blind to, and the reason the cache needs a
   semantic auditor on top of [Durable]. *)
let payload_start = 11

let is_record line =
  String.length line > payload_start && String.sub line 0 2 = "r\t"

let record_lines lines =
  List.mapi (fun i l -> (i, l)) lines |> List.filter (fun (_, l) -> is_record l)

(* Flip one payload bit, but never into a framing byte: a mutation that
   lands on '\n' or '\r' would tear the file instead of lying inside it.
   Trying the requested bit first and walking on keeps the draw
   deterministic; a single-bit flip can only produce 2 of 256 values, so a
   safe bit always exists and the payload always actually changes. *)
let flip_payload_byte payload ~offset ~bit =
  let offset = offset mod String.length payload in
  let bytes = Bytes.of_string payload in
  let b = Char.code (Bytes.get bytes offset) in
  let rec pick k =
    let candidate = b lxor (1 lsl ((bit + k) land 7)) in
    if candidate = Char.code '\n' || candidate = Char.code '\r' then pick (k + 1)
    else candidate
  in
  Bytes.set bytes offset (Char.chr (pick 0));
  Bytes.to_string bytes

let apply path op =
  let content = read_file path in
  let corrupted =
    match op with
    | Truncate_to n -> String.sub content 0 (min n (String.length content))
    | Bit_flip { offset; bit } ->
      if offset >= String.length content then content
      else begin
        let bytes = Bytes.of_string content in
        let b = Char.code (Bytes.get bytes offset) in
        Bytes.set bytes offset (Char.chr (b lxor (1 lsl (bit land 7))));
        Bytes.to_string bytes
      end
    | Garbage_append s -> content ^ s
    | Semantic_flip { record; offset; bit } -> (
      let lines = String.split_on_char '\n' content in
      match record_lines lines with
      | [] -> content
      | records ->
        let target, _ = List.nth records (record mod List.length records) in
        String.concat "\n"
          (List.mapi
             (fun i line ->
               if i <> target then line
               else
                 let payload =
                   String.sub line payload_start (String.length line - payload_start)
                 in
                 Durable.frame (flip_payload_byte payload ~offset ~bit))
             lines))
  in
  Durable.write_atomic path corrupted

let inject rng path =
  let op = draw rng ~size:(file_size path) in
  apply path op;
  op

let draw_semantic rng path =
  let lines = String.split_on_char '\n' (read_file path) in
  match record_lines lines with
  | [] -> None
  | records ->
    let record = Rng.int rng (List.length records) in
    let _, line = List.nth records record in
    Some
      (Semantic_flip
         {
           record;
           offset = Rng.int rng (String.length line - payload_start);
           bit = Rng.int rng 8;
         })

let inject_semantic rng path =
  match draw_semantic rng path with
  | None -> None
  | Some op ->
    apply path op;
    Some op
