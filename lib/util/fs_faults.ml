(* File corruption with a steady hand: read the whole file, apply the
   damage in memory, rewrite atomically.  The injector's own writes must be
   well-defined or a torture test could not tell injected corruption from
   injector sloppiness. *)

type op =
  | Truncate_to of int
  | Bit_flip of { offset : int; bit : int }
  | Garbage_append of string

let describe = function
  | Truncate_to n -> Printf.sprintf "truncate to %d bytes" n
  | Bit_flip { offset; bit } -> Printf.sprintf "flip bit %d of byte %d" bit offset
  | Garbage_append s -> Printf.sprintf "append %d garbage bytes (%S)" (String.length s) s

let file_size path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)
  end

let draw rng ~size =
  match Rng.int rng 3 with
  | 0 -> Truncate_to (Rng.int rng (size + 1))
  | 1 when size > 0 ->
    Bit_flip { offset = Rng.int rng size; bit = Rng.int rng 8 }
  | 1 -> Truncate_to 0
  | _ ->
    let len = 1 + Rng.int rng 16 in
    Garbage_append (String.init len (fun _ -> Char.chr (Rng.int rng 256)))

(* A missing file reads as empty: a crash may strike before the artifact's
   first write, and the harness still needs to corrupt "what is there". *)
let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let apply path op =
  let content = read_file path in
  let corrupted =
    match op with
    | Truncate_to n -> String.sub content 0 (min n (String.length content))
    | Bit_flip { offset; bit } ->
      if offset >= String.length content then content
      else begin
        let bytes = Bytes.of_string content in
        let b = Char.code (Bytes.get bytes offset) in
        Bytes.set bytes offset (Char.chr (b lxor (1 lsl (bit land 7))));
        Bytes.to_string bytes
      end
    | Garbage_append s -> content ^ s
  in
  Durable.write_atomic path corrupted

let inject rng path =
  let op = draw rng ~size:(file_size path) in
  apply path op;
  op
