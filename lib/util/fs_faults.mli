(** Deterministic, seed-driven filesystem fault injection — the disk-side
    sibling of [Gpu_sim.Faults].

    The crash-torture harness uses these operations to simulate what a
    power cut, an out-of-space append or silent media rot does to an
    on-disk artifact: torn writes (truncation to an arbitrary *byte*, not
    line, boundary), single-bit flips, and stray garbage appended by a
    half-finished writer.  Every draw comes from an explicit [Rng.t], so a
    torture run is reproducible from its seed and two runs with the same
    seed corrupt identically. *)

type op =
  | Truncate_to of int
      (** keep only the first [n] bytes — a torn or partial write *)
  | Bit_flip of { offset : int; bit : int }
      (** flip bit [bit] (0-7) of the byte at [offset] — media rot *)
  | Garbage_append of string
      (** append raw bytes — a foreign or half-initialised writer *)
  | Semantic_flip of { record : int; offset : int; bit : int }
      (** mutate one payload bit of the [record]-th [Durable] record line,
          then re-frame it with a freshly computed {e valid} CRC — the lie
          framing checksums cannot see.  [offset] is taken modulo the
          payload length; a flip that would land on a framing byte
          (['\n']/['\r']) deterministically walks to the next bit, so the
          payload always actually changes and the file never tears.  A file
          with no record lines is left untouched. *)

val describe : op -> string
(** One-line human description, for test failure messages. *)

val file_size : string -> int
(** Size of a file in bytes (0 when missing). *)

val draw : Rng.t -> size:int -> op
(** One random operation sensible for a file of [size] bytes: truncation
    points are uniform over [0, size], bit flips uniform over every bit of
    the file (degrading to truncation when the file is empty), garbage is
    1-16 random bytes.  Deterministic in the rng state. *)

val apply : string -> op -> unit
(** Applies the operation to the file.  The rewrite itself is atomic
    (temp-then-rename), so the injected state is exactly the described
    corruption — the injector never *accidentally* tears its own write.
    A missing file is treated as empty (and comes into existence). *)

val inject : Rng.t -> string -> op
(** [inject rng path] draws an operation for the file's current size,
    applies it, and returns what it did.  Never draws {!Semantic_flip} —
    semantic corruption is a distinct adversary requested explicitly. *)

val draw_semantic : Rng.t -> string -> op option
(** One random {!Semantic_flip} aimed at the file's current record lines:
    record index uniform over the records present, offset uniform over the
    chosen record's payload, bit uniform over 0-7.  [None] when the file
    holds no record lines (nothing to lie about). *)

val inject_semantic : Rng.t -> string -> op option
(** Draws and applies one semantic flip; [None] (and no change) when the
    file has no record lines.  The result still passes [Durable.read] as
    [Intact] — only a semantic audit of the payload can catch it. *)
