(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (tensor initialisation,
    configuration exploration, simulated measurement noise) draws from an
    explicit [Rng.t] so that whole experiments are reproducible from a single
    seed.  The generator is splitmix64, which is small, fast and has
    well-understood statistical quality for non-cryptographic use. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds yield
    identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it, suitable
    for handing to a parallel worker without sharing state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n).  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
