(** Summary statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val geomean : float array -> float
(** Geometric mean; requires strictly positive samples. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (does not mutate the input). *)

val trimmed_mean : float array -> float -> float
(** [trimmed_mean xs frac] drops [floor (frac * n)] samples from each end of
    the sorted array and averages the rest.  [frac] in \[0, 0.5); requires a
    non-empty array.  Falls back to the median when trimming would drop
    everything. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0, 100\], linear interpolation. *)

val min_max : float array -> float * float
(** Smallest and largest sample.  Requires a non-empty array. *)

val argmin : float array -> int
(** Index of the smallest sample.  Requires a non-empty array. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation of two equal-length sample arrays (ties get
    average ranks); 0 when either array is constant. *)

val rmse : float array -> float array -> float
(** Root mean squared error between two equal-length sample arrays. *)
