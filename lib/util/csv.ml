let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else s

let row_to_string row = String.concat "," (List.map escape row)

let write path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (row_to_string header ^ "\n");
      List.iter (fun row -> output_string oc (row_to_string row ^ "\n")) rows)
