let round x = Int32.float_of_bits (Int32.bits_of_float x)

let round_array a = Array.map round a

let round_inplace a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- round a.(i)
  done

let machine_epsilon = 1.1920928955078125e-07
