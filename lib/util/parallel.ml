let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* Split [lo, hi) into at most [n] contiguous chunks of near-equal size. *)
let chunks ~n lo hi =
  let total = hi - lo in
  if total <= 0 then []
  else
    let n = max 1 (min n total) in
    let base = total / n and extra = total mod n in
    let rec build i start acc =
      if i = n then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        build (i + 1) (start + len) ((start, start + len) :: acc)
    in
    build 0 lo []

let for_ ~domains lo hi f =
  if domains <= 1 || hi - lo <= 1 then
    for i = lo to hi - 1 do
      f i
    done
  else begin
    let run (a, b) =
      for i = a to b - 1 do
        f i
      done
    in
    match chunks ~n:domains lo hi with
    | [] -> ()
    | first :: rest ->
      let handles = List.map (fun range -> Domain.spawn (fun () -> run range)) rest in
      run first;
      List.iter Domain.join handles
  end

let mapi ~domains a f =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0 a.(0)) in
    (* Index 0 is already computed by the initialiser above. *)
    for_ ~domains 1 n (fun i -> out.(i) <- f i a.(i));
    out
  end

let map ~domains a f = mapi ~domains a (fun _ x -> f x)

let reduce ~domains lo hi ~init f combine =
  if domains <= 1 || hi - lo <= 1 then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    let run (a, b) =
      let acc = ref init in
      for i = a to b - 1 do
        acc := combine !acc (f i)
      done;
      !acc
    in
    match chunks ~n:domains lo hi with
    | [] -> init
    | first :: rest ->
      let handles = List.map (fun range -> Domain.spawn (fun () -> run range)) rest in
      let acc0 = run first in
      List.fold_left (fun acc h -> combine acc (Domain.join h)) acc0 handles
  end
