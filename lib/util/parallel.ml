let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* Split [lo, hi) into at most [n] contiguous chunks of near-equal size. *)
let chunks ~n lo hi =
  let total = hi - lo in
  if total <= 0 then []
  else
    let n = max 1 (min n total) in
    let base = total / n and extra = total mod n in
    let rec build i start acc =
      if i = n then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        build (i + 1) (start + len) ((start, start + len) :: acc)
    in
    build 0 lo []

let for_ ~domains lo hi f =
  if domains <= 1 || hi - lo <= 1 then
    for i = lo to hi - 1 do
      f i
    done
  else
    match chunks ~n:domains lo hi with
    | [] -> ()
    | [ (a, b) ] ->
      for i = a to b - 1 do
        f i
      done
    | ranges ->
      Pool.run_all (Pool.default ())
        (List.map
           (fun (a, b) () ->
             for i = a to b - 1 do
               f i
             done)
           ranges)

let mapi ~domains a f =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0 a.(0)) in
    (* Index 0 is already computed by the initialiser above. *)
    for_ ~domains 1 n (fun i -> out.(i) <- f i a.(i));
    out
  end

let map ~domains a f = mapi ~domains a (fun _ x -> f x)

let reduce ~domains lo hi ~init f combine =
  if hi - lo <= 0 then init
  else if domains <= 1 || hi - lo <= 1 then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    (* Each chunk folds from its own first element so that [init] enters the
       result exactly once, in the final left-to-right combination below. *)
    let ranges = Array.of_list (chunks ~n:domains lo hi) in
    let parts = Array.make (Array.length ranges) None in
    let run k (a, b) () =
      let acc = ref (f a) in
      for i = a + 1 to b - 1 do
        acc := combine !acc (f i)
      done;
      parts.(k) <- Some !acc
    in
    Pool.run_all (Pool.default ()) (Array.to_list (Array.mapi run ranges));
    Array.fold_left
      (fun acc part -> match part with Some v -> combine acc v | None -> acc)
      init parts
  end
