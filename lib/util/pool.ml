type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable handles : unit Domain.t list;
  mutable n_workers : int;
  mutable stopped : bool;
  mutable restarts : int;
  max_restarts : int;
}

(* Workers block on [nonempty] until a task arrives or the pool stops.  A
   stopped pool abandons queued tasks: the only queued tasks belong to an
   active [run_all], whose submitter drains the queue itself while waiting.

   A task that raises out of a worker (only possible for fire-and-forget
   [submit] tasks — [run_all] wraps its tasks) kills that worker's loop; the
   watchdog spawns a replacement domain so pool capacity survives hostile
   tasks, but only [max_restarts] times over the pool's lifetime so a
   crash-looping task cannot spawn domains forever.  Past the budget the
   worker dies unreplaced and the pool degrades toward inline execution. *)
let rec worker_loop t () =
  let rec next () =
    Mutex.lock t.lock;
    let rec await () =
      if t.stopped then None
      else if Queue.is_empty t.tasks then begin
        Condition.wait t.nonempty t.lock;
        await ()
      end
      else Some (Queue.pop t.tasks)
    in
    let task = await () in
    Mutex.unlock t.lock;
    match task with
    | None -> ()
    | Some f -> begin
      match f () with
      | () -> next ()
      | exception _ ->
        Mutex.lock t.lock;
        t.restarts <- t.restarts + 1;
        if (not t.stopped) && t.restarts <= t.max_restarts then
          t.handles <- Domain.spawn (worker_loop t) :: t.handles
        else if t.n_workers > 0 then t.n_workers <- t.n_workers - 1;
        Mutex.unlock t.lock
    end
  in
  next ()

(* A crash recovered on a non-worker thread (a submitter helping drain the
   queue, or an inline [submit]): counted against the same budget, but there
   is no domain to restart. *)
let note_crash t =
  Mutex.lock t.lock;
  t.restarts <- t.restarts + 1;
  Mutex.unlock t.lock

let spawn_locked t k =
  t.stopped <- false;
  t.handles <- List.init k (fun _ -> Domain.spawn (worker_loop t)) @ t.handles;
  t.n_workers <- t.n_workers + k

let create ?workers ?(max_restarts = 32) () =
  let workers =
    match workers with
    | Some w -> max 0 w
    | None -> max 0 (min 8 (Domain.recommended_domain_count ()) - 1)
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      handles = [];
      n_workers = 0;
      stopped = false;
      restarts = 0;
      max_restarts = max 0 max_restarts;
    }
  in
  if workers > 0 then begin
    Mutex.lock t.lock;
    spawn_locked t workers;
    Mutex.unlock t.lock
  end;
  t

let workers t = t.n_workers
let restarts t = t.restarts

(* Past the restart budget a crashed worker dies unreplaced, so capacity is
   permanently reduced: the pool is running degraded.  (A pool created with
   zero workers was never parallel, so it does not count as degraded.) *)
let is_degraded t = t.restarts > t.max_restarts

let submit t f =
  Mutex.lock t.lock;
  if t.stopped || t.n_workers = 0 then begin
    Mutex.unlock t.lock;
    match f () with () -> () | exception _ -> note_crash t
  end
  else begin
    Queue.push f t.tasks;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock
  end

let ensure_workers t n =
  Mutex.lock t.lock;
  let deficit = n - t.n_workers in
  if deficit > 0 then spawn_locked t deficit;
  Mutex.unlock t.lock

(* Completion of one [run_all] call.  Tasks may be executed by any thread
   (worker or a helping submitter), so the latch is the only thing tying a
   wrapped task back to its originating call. *)
type latch = {
  l_lock : Mutex.t;
  l_done : Condition.t;
  mutable l_pending : int;
  mutable l_exn : exn option;
}

let run_inline fns =
  let first_exn = ref None in
  List.iter
    (fun f -> try f () with e -> if !first_exn = None then first_exn := Some e)
    fns;
  match !first_exn with Some e -> raise e | None -> ()

let run_all t fns =
  match fns with
  | [] -> ()
  | [ f ] -> f ()
  | first :: rest ->
    if t.n_workers = 0 || t.stopped then run_inline fns
    else begin
      let latch =
        {
          l_lock = Mutex.create ();
          l_done = Condition.create ();
          l_pending = List.length fns;
          l_exn = None;
        }
      in
      let wrap f () =
        (try f ()
         with e ->
           Mutex.lock latch.l_lock;
           if latch.l_exn = None then latch.l_exn <- Some e;
           Mutex.unlock latch.l_lock);
        Mutex.lock latch.l_lock;
        latch.l_pending <- latch.l_pending - 1;
        if latch.l_pending = 0 then Condition.signal latch.l_done;
        Mutex.unlock latch.l_lock
      in
      Mutex.lock t.lock;
      List.iter (fun f -> Queue.push (wrap f) t.tasks) rest;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.lock;
      wrap first ();
      (* Help: execute queued tasks (ours or other calls') until our latch
         clears, then block.  A waiter has always drained the queue first, so
         every blocked thread is waiting on tasks running elsewhere — that is
         what makes nested submission deadlock-free. *)
      let rec help () =
        Mutex.lock latch.l_lock;
        let outstanding = latch.l_pending > 0 in
        Mutex.unlock latch.l_lock;
        if outstanding then begin
          Mutex.lock t.lock;
          let task = if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks) in
          Mutex.unlock t.lock;
          match task with
          | Some f ->
            (* Queued tasks are usually [run_all] wraps (which never raise);
               a raw [submit] task picked up while helping must crash the
               watchdog counter, not the innocent caller. *)
            (match f () with () -> () | exception _ -> note_crash t);
            help ()
          | None ->
            Mutex.lock latch.l_lock;
            while latch.l_pending > 0 do
              Condition.wait latch.l_done latch.l_lock
            done;
            Mutex.unlock latch.l_lock
        end
      in
      help ();
      match latch.l_exn with Some e -> raise e | None -> ()
    end

let run_all_deadline t ~now ~deadline fns =
  let ran = Atomic.make 0 in
  (* The gate consults the clock at task *start*: tasks already running when
     the deadline passes complete normally, tasks not yet started are skipped
     (their thunk is never invoked).  A task that raises is not counted. *)
  let gated f () =
    if now () < deadline then begin
      f ();
      Atomic.incr ran
    end
  in
  run_all t (List.map gated fns);
  Atomic.get ran

let shutdown t =
  Mutex.lock t.lock;
  if t.stopped || t.n_workers = 0 then begin
    t.stopped <- true;
    Mutex.unlock t.lock
  end
  else begin
    t.stopped <- true;
    let handles = t.handles in
    t.handles <- [];
    t.n_workers <- 0;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    List.iter Domain.join handles
  end

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_lock;
  p
