type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.headers);
  t.rows <- row :: t.rows

let print ?(out = stdout) t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width col =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row col))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells =
      List.map2 (fun cell w -> cell ^ String.make (w - String.length cell) ' ') row widths
    in
    Printf.fprintf out "| %s |\n" (String.concat " | " cells)
  in
  render_row t.headers;
  let rule = List.map (fun w -> String.make w '-') widths in
  Printf.fprintf out "|-%s-|\n" (String.concat "-|-" rule);
  List.iter render_row rows;
  flush out

let to_csv t path = Csv.write path ~header:t.headers (List.rev t.rows)

let cell_f x = Printf.sprintf "%.2f" x

let cell_sci x = Printf.sprintf "%.2e" x
