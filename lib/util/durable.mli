(** Crash-safe, checksummed record files — the durability layer under every
    on-disk artifact (tune journals, tuning logs, model checkpoints).

    A durable file is line-oriented:

    {v dur1 <TAB> kind <TAB> crc32(header-prefix)     (versioned file header)
       r <TAB> crc32(payload) <TAB> payload           (one line per record)
       ... v}

    CRC-32 (IEEE 802.3) guards each record and the header, so torn writes,
    truncations and bit flips are *detected* instead of silently replaying
    wrong values.  Reads are truncation-tolerant: they salvage the longest
    valid record prefix and report what was lost as a typed
    {!read_outcome.Salvaged} diagnostic — never an exception, never a silent
    drop.  Snapshots go through write-temp-then-rename, so a crash mid-write
    leaves the previous snapshot intact rather than a half-written file.

    Payloads are opaque byte strings without newlines (tabs are fine: the
    checksum field sits at a fixed offset).  The [kind] tag names the
    logical format ("tune-journal", "tuning-log", ...) so a file of one kind
    can never be mistakenly parsed as another. *)

val crc32 : string -> int32
(** CRC-32 (polynomial 0xEDB88320, IEEE) of a byte string.  Exposed for
    tests and for tooling that crafts or verifies files by hand. *)

val header : kind:string -> string
(** The header line (without trailing newline) for a file of [kind].
    Raises [Invalid_argument] if [kind] is empty or contains tabs or
    newlines. *)

val frame : string -> string
(** [frame payload] is the framed record line (without trailing newline).
    Raises [Invalid_argument] if the payload contains a newline or carriage
    return. *)

type read_outcome =
  | Missing  (** the file does not exist *)
  | Intact of string list  (** every record validated; payloads in order *)
  | Salvaged of {
      records : string list;  (** longest valid record prefix, payloads *)
      dropped : int;  (** lines (incl. any torn final fragment) lost *)
      reason : string;  (** first corruption encountered, for diagnostics *)
    }

val records : read_outcome -> string list
(** The salvaged payloads of any outcome ([[]] for [Missing]). *)

val dropped : read_outcome -> int
(** The dropped-line count of any outcome (0 for [Missing]/[Intact]). *)

val read : kind:string -> string -> read_outcome
(** Validates the whole file.  An empty file reads as [Intact []] (a crash
    between [open] and the header write loses nothing).  A file whose header
    names a different kind, or no valid header at all, salvages to zero
    records.  Never raises on corrupt content; I/O errors ([Sys_error])
    still propagate. *)

val repair : kind:string -> string -> read_outcome
(** {!read}, then — if records were dropped — atomically rewrites the file
    to exactly the salvaged prefix, so subsequent {!append}s extend a clean
    file instead of concatenating onto torn garbage.  A file with a *valid*
    header of a different kind is left untouched (it is someone else's
    data, not a torn write of ours). *)

val append : kind:string -> string -> string -> unit
(** [append ~kind path payload] appends one framed record, writing the
    header first when the file is missing or empty and healing a missing
    final newline (a crash can shear the terminator off an otherwise valid
    record, which {!read} accepts).  The record and its newline go out in a
    single write.  Raises like {!frame} on bad payloads. *)

val write_snapshot : kind:string -> string -> string list -> unit
(** Atomically replaces [path] with a fresh durable file holding exactly
    the given payloads: the content is written to a temporary file in the
    same directory, then renamed over [path]. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] atomically replaces [path] with raw
    (unframed) [content] via the same temp-then-rename dance — for
    artifacts with their own format, like benchmark JSON. *)

val warn_dropped : path:string -> read_outcome -> unit
(** Prints one [warning:] line to stderr (through [Log.warn_oncef] keyed by
    [path], so test suites can silence it with [Log.set_quiet]) when the
    outcome dropped records; silent otherwise.  Deduplicated per path: a
    long-lived process that re-reads the same damaged artifact — a daemon
    serving many cache files, say — reports each salvage exactly once
    (until [Log.reset_once]).  Callers use it to honour the "never silently
    discard" contract without each inventing a message format. *)
