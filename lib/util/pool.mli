(** A persistent pool of worker domains.

    [Domain.spawn] costs tens of microseconds plus a thread creation; paying
    it inside inner loops (every parallel-for of a tiled kernel, every tree
    of a booster retrain) dwarfs the work being distributed.  A pool spawns
    its workers once and reuses them: submitters enqueue thunks, workers
    drain the shared queue, and the submitting thread both executes its own
    share and helps drain the queue while it waits, so nested submissions
    (a pooled task that itself calls [run_all]) can never deadlock.

    The pool is deliberately oblivious to task semantics: all determinism
    guarantees in this repository come from callers submitting pure tasks
    that write to disjoint slots and combining results in a fixed order. *)

type t

val create : ?workers:int -> ?max_restarts:int -> unit -> t
(** [create ~workers ()] spawns [workers] worker domains (clamped below at
    0).  Default: [Parallel.recommended_domains () - 1], i.e. one worker per
    recommended domain beyond the submitting thread — 0 on a single-core
    host, where every submission degrades to inline execution.

    [max_restarts] (default 32) bounds the crash watchdog: a task that
    raises out of a worker (possible only for {!submit} tasks; [run_all]
    tasks are wrapped) kills that worker, and the watchdog spawns a
    replacement domain up to [max_restarts] times over the pool's lifetime.
    Past the budget, crashed workers die unreplaced and the pool degrades
    gracefully toward inline execution instead of crash-looping. *)

val workers : t -> int
(** Number of live worker domains (0 after [shutdown]). *)

val restarts : t -> int
(** Total uncaught task exceptions recovered by the watchdog so far —
    worker restarts plus crashes absorbed on helping or inline threads. *)

val is_degraded : t -> bool
(** True once the crash watchdog has exceeded its [max_restarts] budget:
    at least one crashed worker died unreplaced and the pool is running at
    permanently reduced (possibly inline-only) capacity.  Run supervisors
    surface this in health reports so a silently shrunken pool is visible. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueues one task and returns immediately.  With zero
    workers (or after [shutdown]) the task runs inline before returning.
    Exceptions never reach the caller; they are counted by the restart
    watchdog (see {!create}).  Tasks still queued at [shutdown] are
    abandoned, like [run_all]'s. *)

val default : unit -> t
(** The process-wide shared pool, created on first use.  [Parallel] routes
    all its chunked operations through this pool. *)

val ensure_workers : t -> int -> unit
(** [ensure_workers t n] grows the pool to at least [n] workers (never
    shrinks).  Used by benchmarks to sweep domain counts and by tests to
    force real cross-domain execution regardless of the host's core count. *)

val run_all : t -> (unit -> unit) list -> unit
(** Runs every thunk to completion, distributing them over the pool's
    workers plus the calling thread.  Returns when all have finished.  If
    one or more thunks raise, the first exception observed is re-raised
    after every thunk has still been given the chance to run (tasks are
    independent; a failure must not silently skip its siblings' slots).
    With zero workers (or after [shutdown]) the thunks run inline on the
    caller, in order.  Safe to call concurrently from several threads and
    from inside a pooled task. *)

val run_all_deadline :
  t -> now:(unit -> float) -> deadline:float -> (unit -> unit) list -> int
(** [run_all_deadline t ~now ~deadline fns] is [run_all] with a task-start
    gate: each thunk runs only if [now () < deadline] at the moment a thread
    picks it up.  Thunks already running when the deadline passes are never
    interrupted — the bound is cooperative, suited to measurement batches
    whose individual tasks are short.  Returns the number of thunks that ran
    to completion (skipped and faulting thunks are not counted).  The clock
    is injected so callers choose the time base — wall clock for real
    deadlines, a fake counter in tests — and [util] stays free of a [unix]
    dependency.  Exceptions propagate exactly as in [run_all]. *)

val shutdown : t -> unit
(** Signals workers to exit and joins them.  Idempotent.  Subsequent
    [run_all] calls execute inline; [ensure_workers] can revive the pool. *)
