(** Monotonic time sources, injectable for tests.

    Deadline enforcement that subtracts two [Unix.gettimeofday] readings is
    silently disabled when NTP steps the wall clock backward: [now - start]
    goes negative and every deadline looks far away until the clock catches
    up.  A {!monotonic} source never decreases — backward steps of the
    underlying clock are absorbed into an offset so elapsed time keeps
    accumulating at the raw clock's forward rate.

    Sources are plain [unit -> float] closures (seconds), so tests inject a
    {!manual} clock and step it explicitly instead of sleeping. *)

type source = unit -> float
(** A clock: seconds since some arbitrary origin.  Only differences are
    meaningful. *)

val monotonic : ?raw:(unit -> float) -> unit -> source
(** [monotonic ()] wraps [raw] (default [Unix.gettimeofday]) into a
    never-decreasing source.  Each backward step of [raw] (an NTP
    adjustment, a VM migration) adds its magnitude to an internal offset,
    so subsequent forward progress of [raw] advances the source at the
    same rate — elapsed-time measurements keep working through the step
    instead of stalling until the wall clock recovers.  Each call to
    [monotonic] builds an independent source with its own state. *)

val manual : float -> source * (float -> unit)
(** [manual t0] is a test clock: a source returning whatever the setter
    last stored (initially [t0]).  The setter does not clamp — wrap the
    source in [monotonic ~raw] to test the clamping itself. *)
