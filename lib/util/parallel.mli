(** Fork-join parallelism over OCaml 5 domains.

    A thin, dependency-free replacement for domainslib: chunked parallel-for,
    parallel-map and parallel-reduce with a bounded number of chunks, executed
    on the persistent worker pool [Pool.default] (no [Domain.spawn] per call).
    All entry points degrade to sequential execution when [domains <= 1] or
    when the default pool has no workers, which keeps unit tests deterministic
    and cheap on single-core hosts. *)

val recommended_domains : unit -> int
(** Number of domains to use by default: [Domain.recommended_domain_count],
    capped at 8. *)

val for_ : domains:int -> int -> int -> (int -> unit) -> unit
(** [for_ ~domains lo hi f] runs [f i] for every [lo <= i < hi].  Iterations
    are split into [domains] contiguous chunks; [f] must be safe to run
    concurrently on disjoint indices. *)

val map : domains:int -> 'a array -> ('a -> 'b) -> 'b array
(** Parallel [Array.map]; preserves order. *)

val mapi : domains:int -> 'a array -> (int -> 'a -> 'b) -> 'b array
(** Parallel [Array.mapi]; preserves order. *)

val reduce : domains:int -> int -> int -> init:'a -> (int -> 'a) -> ('a -> 'a -> 'a) -> 'a
(** [reduce ~domains lo hi ~init f combine] folds [combine] over [f i] for all
    [lo <= i < hi].  [combine] must be associative, but [init] need not be its
    identity: it is folded in exactly once, as the leftmost operand of the
    final chunk combination.  Chunk partials are combined left-to-right in
    index order, so for an associative [combine] the result does not depend on
    [domains]. *)
