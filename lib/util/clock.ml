(* Backward steps are absorbed, not clamped flat: freezing the source until
   the raw clock re-passes its high-water mark would disable deadlines for
   exactly as long as the step was large, which is the failure mode this
   module exists to remove. *)

type source = unit -> float

let monotonic ?(raw = Unix.gettimeofday) () =
  let last_raw = ref nan in
  let offset = ref 0.0 in
  let high = ref neg_infinity in
  fun () ->
    let r = raw () in
    if (not (Float.is_nan !last_raw)) && r < !last_raw then
      offset := !offset +. (!last_raw -. r);
    last_raw := r;
    let t = r +. !offset in
    let t = if t > !high then t else !high in
    high := t;
    t

let manual t0 =
  let now = ref t0 in
  ((fun () -> !now), fun t -> now := t)
