(** Library-wide warning verbosity hook.

    The durability layer warns on stderr when it salvages a corrupted file —
    exactly once per damaged artifact, which is right for production but
    noise under test suites that corrupt files *on purpose*.  This module is
    the single switch: library code routes its warnings through {!warnf},
    and tests call [set_quiet true] to silence them without changing any
    behaviour.  The default level is [Warn], so operators see every salvage
    unless they opt out. *)

type level =
  | Quiet  (** drop warnings *)
  | Warn  (** print warnings to stderr (default) *)

val set_level : level -> unit
val level : unit -> level

val set_quiet : bool -> unit
(** [set_quiet true] is [set_level Quiet]; [set_quiet false] restores
    [Warn].  Test suites flip this in their entry point. *)

val warnf : ('a, out_channel, unit) format -> 'a
(** [warnf fmt ...] prints to stderr at level [Warn] and swallows the
    message (still evaluating its arguments) at [Quiet]. *)

val once : string -> bool
(** [once key] is [true] the first time [key] is seen since the last
    {!reset_once}, [false] afterwards.  Thread-safe.  The guard behind
    per-artifact warn-once emission: callers key by file path so a process
    holding many durable files reports each salvage exactly once, rather
    than once per read or once per process. *)

val reset_once : unit -> unit
(** Forget every key {!once} has seen (test suites call this between
    cases). *)

val warn_oncef : key:string -> ('a, out_channel, unit) format -> 'a
(** {!warnf}, deduplicated by [key]: prints at most once per key at level
    [Warn].  At [Quiet] the message is swallowed {e without} consuming the
    key, so a salvage silenced under a quiet test harness is still reported
    if the same path salvages again once warnings are back on. *)
