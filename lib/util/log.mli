(** Library-wide warning verbosity hook.

    The durability layer warns on stderr when it salvages a corrupted file —
    exactly once per damaged artifact, which is right for production but
    noise under test suites that corrupt files *on purpose*.  This module is
    the single switch: library code routes its warnings through {!warnf},
    and tests call [set_quiet true] to silence them without changing any
    behaviour.  The default level is [Warn], so operators see every salvage
    unless they opt out. *)

type level =
  | Quiet  (** drop warnings *)
  | Warn  (** print warnings to stderr (default) *)

val set_level : level -> unit
val level : unit -> level

val set_quiet : bool -> unit
(** [set_quiet true] is [set_level Quiet]; [set_quiet false] restores
    [Warn].  Test suites flip this in their entry point. *)

val warnf : ('a, out_channel, unit) format -> 'a
(** [warnf fmt ...] prints to stderr at level [Warn] and swallows the
    message (still evaluating its arguments) at [Quiet]. *)
