(** Minimal CSV writing for experiment exports.

    The bench harness can mirror every table it prints into CSV files (plot-
    ready) when asked; this module owns quoting and layout. *)

val escape : string -> string
(** RFC-4180 quoting: fields containing commas, quotes or newlines are
    wrapped in double quotes with inner quotes doubled. *)

val row_to_string : string list -> string

val write : string -> header:string list -> string list list -> unit
(** [write path ~header rows] creates/truncates [path]. *)
