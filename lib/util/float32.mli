(** Single-precision rounding helpers.

    OCaml floats are doubles; the GPUs the paper evaluates run fp32.  These
    helpers round values (and whole buffers) through IEEE-754 binary32 so
    numerical-stability experiments — notably the Winograd tile-size
    ablation — report the error a real kernel would see. *)

val round : float -> float
(** Round to the nearest representable binary32 value. *)

val round_array : float array -> float array
(** Fresh array with every element rounded. *)

val round_inplace : float array -> unit

val machine_epsilon : float
(** binary32 epsilon, [2^-23]. *)
