let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  assert (n > 0);
  let log_sum =
    Array.fold_left
      (fun acc x ->
        assert (x > 0.0);
        acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int n)

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let m = mean xs in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (var /. float_of_int n)

let sorted xs =
  let copy = Array.copy xs in
  Array.sort compare copy;
  copy

let percentile xs p =
  let s = sorted xs in
  let n = Array.length s in
  assert (n > 0 && p >= 0.0 && p <= 100.0);
  if n = 1 then s.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))

let median xs = percentile xs 50.0

let trimmed_mean xs frac =
  let n = Array.length xs in
  assert (n > 0 && frac >= 0.0 && frac < 0.5);
  let s = sorted xs in
  let drop = int_of_float (frac *. float_of_int n) in
  let lo = drop and hi = n - 1 - drop in
  if lo > hi then median xs
  else begin
    let acc = ref 0.0 in
    for i = lo to hi do
      acc := !acc +. s.(i)
    done;
    !acc /. float_of_int (hi - lo + 1)
  end

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let argmin xs =
  assert (Array.length xs > 0);
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best

(* Average ranks (1-based): tied values all get the mean of the rank range
   they span, the convention Spearman's coefficient expects. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  assert (Array.length xs = Array.length ys);
  let rx = ranks xs and ry = ranks ys in
  let mx = mean rx and my = mean ry in
  let num = ref 0.0 and dx2 = ref 0.0 and dy2 = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let dx = rx.(i) -. mx and dy = ry.(i) -. my in
    num := !num +. (dx *. dy);
    dx2 := !dx2 +. (dx *. dx);
    dy2 := !dy2 +. (dy *. dy)
  done;
  if !dx2 = 0.0 || !dy2 = 0.0 then 0.0 else !num /. sqrt (!dx2 *. !dy2)

let rmse xs ys =
  assert (Array.length xs = Array.length ys);
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = xs.(i) -. ys.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int n)
  end
