type level =
  | Quiet
  | Warn

let current = Atomic.make Warn

let set_level l = Atomic.set current l
let level () = Atomic.get current
let set_quiet q = set_level (if q then Quiet else Warn)

let warnf fmt =
  match Atomic.get current with
  | Warn -> Printf.eprintf fmt
  | Quiet -> Printf.ifprintf stderr fmt
