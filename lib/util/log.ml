type level =
  | Quiet
  | Warn

let current = Atomic.make Warn

let set_level l = Atomic.set current l
let level () = Atomic.get current
let set_quiet q = set_level (if q then Quiet else Warn)

let warnf fmt =
  match Atomic.get current with
  | Warn -> Printf.eprintf fmt
  | Quiet -> Printf.ifprintf stderr fmt

(* Per-key deduplication for warnings that would otherwise repeat every time
   a damaged artifact is re-read — e.g. a daemon reloading the same salvaged
   cache file.  Keys are only consumed when a warning would actually print,
   so flipping to [Warn] later still reports a salvage seen under [Quiet]. *)

let seen : (string, unit) Hashtbl.t = Hashtbl.create 16
let seen_mutex = Mutex.create ()

let once key =
  Mutex.protect seen_mutex (fun () ->
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)

let reset_once () = Mutex.protect seen_mutex (fun () -> Hashtbl.reset seen)

let warn_oncef ~key fmt =
  match Atomic.get current with
  | Warn when once key -> Printf.eprintf fmt
  | Warn | Quiet -> Printf.ifprintf stderr fmt
