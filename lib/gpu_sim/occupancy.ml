type t = { blocks_per_sm : int; occupancy : float; limiter : string }

let launchable (arch : Arch.t) ~threads_per_block ~shmem_bytes_per_block =
  threads_per_block >= 1
  && threads_per_block <= arch.max_threads_per_block
  && shmem_bytes_per_block >= 0
  && shmem_bytes_per_block <= arch.max_shared_mem_per_block

let calculate (arch : Arch.t) ~threads_per_block ~shmem_bytes_per_block =
  if not (launchable arch ~threads_per_block ~shmem_bytes_per_block) then
    invalid_arg "Occupancy.calculate: block not launchable";
  let by_threads = arch.max_threads_per_sm / threads_per_block in
  let by_shmem =
    if shmem_bytes_per_block = 0 then arch.max_blocks_per_sm
    else arch.shared_mem_per_sm / shmem_bytes_per_block
  in
  let by_slots = arch.max_blocks_per_sm in
  let blocks_per_sm = max 0 (min by_threads (min by_shmem by_slots)) in
  let limiter =
    if blocks_per_sm = by_threads then "threads"
    else if blocks_per_sm = by_shmem then "shared-memory"
    else "block-slots"
  in
  let occupancy =
    float_of_int (blocks_per_sm * threads_per_block) /. float_of_int arch.max_threads_per_sm
  in
  { blocks_per_sm; occupancy = Float.min 1.0 occupancy; limiter }

let compute_throttle t = Float.min 1.0 (t.occupancy *. 2.0)
