(** CUDA-style occupancy calculation.

    Blocks per SM are limited by the thread budget, the shared-memory budget
    and the hardware block slot count; occupancy is the fraction of the SM's
    thread capacity that the resident blocks cover.  This is the mechanism
    through which the configuration parameters "number of threads" and
    "shared memory per block" (Table 1) influence simulated runtime. *)

type t = {
  blocks_per_sm : int;
  occupancy : float;  (** resident threads / max threads, in [0, 1] *)
  limiter : string;  (** "threads" | "shared-memory" | "block-slots" *)
}

val calculate : Arch.t -> threads_per_block:int -> shmem_bytes_per_block:int -> t
(** Raises [Invalid_argument] when the block is not launchable at all
    (threads or shared memory exceed per-block hardware limits, or are
    non-positive). *)

val launchable : Arch.t -> threads_per_block:int -> shmem_bytes_per_block:int -> bool

val compute_throttle : t -> float
(** Fraction of peak arithmetic throughput the occupancy sustains: GPUs reach
    peak near ~50% occupancy on FMA-bound kernels; below that, latency is
    exposed linearly. *)
