type bound = Compute_bound | Memory_bound | Overhead_bound

type report = {
  runtime_us : float;
  compute_us : float;
  memory_us : float;
  overhead_us : float;
  bound : bound;
  occupancy : Occupancy.t;
  utilisation : float;
  arithmetic_intensity : float;
  ridge_intensity : float;
  achieved_gflops : float;
}

let analyze (arch : Arch.t) (k : Kernel_cost.kernel) =
  let occupancy =
    Occupancy.calculate arch ~threads_per_block:k.threads_per_block
      ~shmem_bytes_per_block:k.shmem_bytes_per_block
  in
  let utilisation = Float.min 1.0 (float_of_int k.blocks /. float_of_int arch.num_sms) in
  let compute_rate =
    arch.peak_gflops *. 1.0e3 *. Occupancy.compute_throttle occupancy
    *. k.compute_efficiency *. utilisation
  in
  let memory_rate = arch.mem_bandwidth_gbs *. 1.0e3 /. 4.0 *. k.coalescing *. utilisation in
  let compute_us = k.flops /. compute_rate in
  let memory_us = k.io_elems /. memory_rate in
  let runtime_us = Kernel_cost.runtime_us arch k in
  let overhead_us = arch.launch_overhead_us in
  let bound =
    if overhead_us > compute_us && overhead_us > memory_us then Overhead_bound
    else if memory_us > compute_us then Memory_bound
    else Compute_bound
  in
  let bytes = 4.0 *. k.io_elems in
  {
    runtime_us;
    compute_us;
    memory_us;
    overhead_us;
    bound;
    occupancy;
    utilisation;
    arithmetic_intensity = (if bytes > 0.0 then k.flops /. bytes else infinity);
    ridge_intensity = arch.peak_gflops /. arch.mem_bandwidth_gbs;
    achieved_gflops = k.flops /. runtime_us /. 1.0e3;
  }

let bound_to_string = function
  | Compute_bound -> "compute-bound"
  | Memory_bound -> "memory-bound"
  | Overhead_bound -> "overhead-bound"

let to_string r =
  String.concat "\n"
    [
      Printf.sprintf "runtime:              %.2f us (%s)" r.runtime_us (bound_to_string r.bound);
      Printf.sprintf "  compute component:  %.2f us" r.compute_us;
      Printf.sprintf "  memory component:   %.2f us" r.memory_us;
      Printf.sprintf "  launch overhead:    %.2f us" r.overhead_us;
      Printf.sprintf "occupancy:            %.0f%% (%d blocks/SM, limited by %s)"
        (100.0 *. r.occupancy.occupancy) r.occupancy.blocks_per_sm r.occupancy.limiter;
      Printf.sprintf "device utilisation:   %.0f%%" (100.0 *. r.utilisation);
      Printf.sprintf "arithmetic intensity: %.2f flop/byte (ridge at %.2f)"
        r.arithmetic_intensity r.ridge_intensity;
      Printf.sprintf "achieved:             %.0f GFlops" r.achieved_gflops;
    ]
