type kernel = {
  flops : float;
  io_elems : float;
  threads_per_block : int;
  shmem_bytes_per_block : int;
  blocks : int;
  coalescing : float;
  compute_efficiency : float;
}

let make ?(coalescing = 1.0) ?(compute_efficiency = 1.0) ~flops ~io_elems ~threads_per_block
    ~shmem_bytes_per_block ~blocks () =
  if coalescing <= 0.0 || coalescing > 1.0 then invalid_arg "Kernel_cost.make: coalescing";
  if compute_efficiency <= 0.0 || compute_efficiency > 1.0 then
    invalid_arg "Kernel_cost.make: compute_efficiency";
  if blocks < 1 || threads_per_block < 1 then invalid_arg "Kernel_cost.make: geometry";
  if flops < 0.0 || io_elems < 0.0 then invalid_arg "Kernel_cost.make: negative work";
  { flops; io_elems; threads_per_block; shmem_bytes_per_block; blocks; coalescing;
    compute_efficiency }

type launch_error =
  | Bad_geometry of { threads_per_block : int; blocks : int; shmem_bytes_per_block : int }
  | Threads_exceeded of { threads_per_block : int; max_threads_per_block : int }
  | Shmem_exceeded of { shmem_bytes_per_block : int; max_shared_mem_per_block : int }

let launch_error_to_string = function
  | Bad_geometry { threads_per_block; blocks; shmem_bytes_per_block } ->
    Printf.sprintf
      "degenerate launch geometry (threads_per_block=%d, blocks=%d, shmem=%d B)"
      threads_per_block blocks shmem_bytes_per_block
  | Threads_exceeded { threads_per_block; max_threads_per_block } ->
    Printf.sprintf "%d threads per block exceeds the device limit of %d"
      threads_per_block max_threads_per_block
  | Shmem_exceeded { shmem_bytes_per_block; max_shared_mem_per_block } ->
    Printf.sprintf
      "%d B of shared memory per block exceeds the device limit of %d B"
      shmem_bytes_per_block max_shared_mem_per_block

let check (arch : Arch.t) k =
  if k.threads_per_block < 1 || k.blocks < 1 || k.shmem_bytes_per_block < 0 then
    Error
      (Bad_geometry
         {
           threads_per_block = k.threads_per_block;
           blocks = k.blocks;
           shmem_bytes_per_block = k.shmem_bytes_per_block;
         })
  else if k.threads_per_block > arch.max_threads_per_block then
    Error
      (Threads_exceeded
         {
           threads_per_block = k.threads_per_block;
           max_threads_per_block = arch.max_threads_per_block;
         })
  else if k.shmem_bytes_per_block > arch.max_shared_mem_per_block then
    Error
      (Shmem_exceeded
         {
           shmem_bytes_per_block = k.shmem_bytes_per_block;
           max_shared_mem_per_block = arch.max_shared_mem_per_block;
         })
  else Ok ()

let runtime_us (arch : Arch.t) k =
  let occ =
    Occupancy.calculate arch ~threads_per_block:k.threads_per_block
      ~shmem_bytes_per_block:k.shmem_bytes_per_block
  in
  if occ.blocks_per_sm = 0 then invalid_arg "Kernel_cost.runtime_us: block never resident";
  let concurrent_blocks = occ.blocks_per_sm * arch.num_sms in
  let waves = (k.blocks + concurrent_blocks - 1) / concurrent_blocks in
  (* Per-wave work: the grid's totals spread over full waves. *)
  let wave_fraction = float_of_int concurrent_blocks /. float_of_int k.blocks in
  let wave_fraction = Float.min 1.0 wave_fraction in
  (* Device-level utilisation: peak rates need at least one resident block
     per SM; smaller grids only drive their share of the machine.  This is
     the mechanism that punishes fixed library blockings on small layers and
     rewards tuned tiles that raise the block count. *)
  let utilisation =
    Float.min 1.0 (float_of_int k.blocks /. float_of_int arch.num_sms)
  in
  let compute_rate =
    arch.peak_gflops *. 1.0e3 (* flops per microsecond *)
    *. Occupancy.compute_throttle occ *. k.compute_efficiency *. utilisation
  in
  let memory_rate =
    arch.mem_bandwidth_gbs *. 1.0e3 /. 4.0 (* elements per microsecond *)
    *. k.coalescing *. utilisation
  in
  let t_compute_wave = k.flops *. wave_fraction /. compute_rate in
  let t_memory_wave = k.io_elems *. wave_fraction /. memory_rate in
  arch.launch_overhead_us +. (float_of_int waves *. Float.max t_compute_wave t_memory_wave)

let gflops arch k =
  let t = runtime_us arch k in
  k.flops /. t /. 1.0e3

let memory_bound (arch : Arch.t) k =
  let occ =
    Occupancy.calculate arch ~threads_per_block:k.threads_per_block
      ~shmem_bytes_per_block:k.shmem_bytes_per_block
  in
  let compute_rate =
    arch.peak_gflops *. 1.0e3 *. Occupancy.compute_throttle occ *. k.compute_efficiency
  in
  let memory_rate = arch.mem_bandwidth_gbs *. 1.0e3 /. 4.0 *. k.coalescing in
  k.io_elems /. memory_rate > k.flops /. compute_rate
