(** Roofline breakdown of a kernel on an architecture.

    Decomposes the cost model's verdict into the quantities a performance
    engineer asks for: compute time vs memory time, which roof binds,
    achieved occupancy and its limiter, device utilisation, arithmetic
    intensity against the machine's ridge point.  Backs the CLI's [explain]
    subcommand and the documentation examples. *)

type bound = Compute_bound | Memory_bound | Overhead_bound

type report = {
  runtime_us : float;
  compute_us : float;  (** pure-compute time at the derated rate *)
  memory_us : float;  (** pure-transfer time at the derated bandwidth *)
  overhead_us : float;  (** launch overhead *)
  bound : bound;
  occupancy : Occupancy.t;
  utilisation : float;  (** resident-block device coverage, [0, 1] *)
  arithmetic_intensity : float;  (** flops per byte moved *)
  ridge_intensity : float;  (** peak flops / peak bytes: the roofline knee *)
  achieved_gflops : float;
}

val analyze : Arch.t -> Kernel_cost.kernel -> report

val to_string : report -> string
(** Multi-line human-readable rendering. *)
