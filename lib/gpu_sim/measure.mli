(** Measurement oracle: modelled runtime plus deterministic pseudo-noise.

    Real auto-tuners learn from noisy hardware timers.  To keep experiments
    reproducible the simulator derives its "noise" from a hash of the kernel
    descriptor and a seed, giving every configuration a stable but irregular
    perturbation (default +/-3%) plus run-to-run jitter when [repeat > 1]
    measurements are averaged, mimicking how TVM-style tuners measure. *)

val hash_kernel : Kernel_cost.kernel -> int
(** Order-sensitive structural hash of the descriptor. *)

val runtime_us :
  ?noise_amplitude:float -> ?seed:int -> Arch.t -> Kernel_cost.kernel -> float
(** One noisy "measurement" (deterministic in [seed] and the kernel). *)

val runtime_avg_us :
  ?noise_amplitude:float -> ?seed:int -> ?repeat:int -> Arch.t -> Kernel_cost.kernel -> float
(** Average of [repeat] measurements with independent jitter (default 3). *)

val gflops_of_runtime : flops:float -> runtime_us:float -> float
