(** Measurement oracle: modelled runtime plus deterministic pseudo-noise,
    and the robust retry/aggregation harness wrapped around it.

    Real auto-tuners learn from noisy hardware timers.  To keep experiments
    reproducible the simulator derives its "noise" from a hash of the kernel
    descriptor and a seed, giving every configuration a stable but irregular
    perturbation (default +/-3%) plus run-to-run jitter when [repeat > 1]
    measurements are averaged, mimicking how TVM-style tuners measure.

    The {!robust} harness is the fault-tolerant entry point: it pulls raw
    samples from a caller-supplied sampler (see [Faults] for the injecting
    one), retries transient faults with exponential backoff, enforces a
    per-measurement deadline in virtual microseconds, and aggregates valid
    samples with outlier rejection.  It is deliberately parameterised by the
    sampler rather than a fault profile so the dependency points from
    [Faults] to [Measure], not the other way around. *)

val hash_kernel : Kernel_cost.kernel -> int
(** Order-sensitive structural hash of the descriptor. *)

val sample_us :
  ?noise_amplitude:float -> ?seed:int -> stream:int -> Arch.t ->
  Kernel_cost.kernel -> float
(** One noisy sample on an explicit noise [stream] (deterministic in [seed],
    [stream] and the kernel).  [runtime_us] is [sample_us ~stream:0]. *)

val runtime_us :
  ?noise_amplitude:float -> ?seed:int -> Arch.t -> Kernel_cost.kernel -> float
(** One noisy "measurement" (deterministic in [seed] and the kernel). *)

val runtime_avg_us :
  ?noise_amplitude:float -> ?seed:int -> ?repeat:int -> Arch.t -> Kernel_cost.kernel -> float
(** Plain average of [repeat] measurements with independent jitter (default
    3).  The legacy fault-free path: no retries, no outlier rejection. *)

val gflops_of_runtime : flops:float -> runtime_us:float -> float

(** {1 Robust measurement} *)

type fault =
  | Timeout of float
      (** Transient: the kernel ran past the watchdog; the payload is the
          virtual time the aborted attempt cost. *)
  | Launch_failed of string
      (** Persistent: the launch was rejected (over-capacity config); the
          harness fails immediately instead of retrying. *)

type failure =
  | Launch_failure of string
  | Deadline_exceeded of { attempts : int }
      (** Deadline passed before any valid sample arrived. *)
  | No_valid_sample of { attempts : int }
      (** Retry budget exhausted with every attempt faulting. *)

val failure_to_string : failure -> string

type aggregate =
  | Median
  | Trimmed_mean of float  (** fraction trimmed from each end, in \[0, 0.5) *)

type policy = {
  repeat : int;  (** valid samples wanted per measurement *)
  max_retries : int;  (** extra attempts allowed beyond [repeat] *)
  backoff_base_us : float;  (** first backoff delay *)
  backoff_factor : float;  (** delay multiplier per retry *)
  backoff_max_us : float;  (** backoff cap *)
  deadline_us : float;  (** virtual-time budget for the whole measurement *)
  outlier_k : float;  (** drop samples above [k * median] *)
  aggregate : aggregate;
}

val default_policy : policy
(** 3 samples, 4 retries, 50us backoff doubling to a 800us cap, 1s deadline,
    4x-median outlier rejection, median aggregation. *)

type attempt_log = {
  attempts : int;  (** sampler invocations *)
  retries : int;  (** backoff delays taken (= timeouts + nan_readings) *)
  timeouts : int;
  nan_readings : int;  (** non-finite or non-positive readings discarded *)
  outliers_rejected : int;
  backoff_us : float;  (** total virtual backoff charged *)
  elapsed_us : float;  (** total virtual time consumed *)
}

val no_attempts : attempt_log
(** The all-zero log, for measurements rejected before any attempt. *)

val robust :
  ?policy:policy ->
  sample:(attempt:int -> (float, fault) result) ->
  unit ->
  (float, failure) result * attempt_log
(** [robust ~sample ()] collects up to [policy.repeat] valid samples by
    calling [sample ~attempt] with increasing attempt indices.  Transient
    faults ([Timeout], NaN/non-finite readings) cost their virtual time plus
    an exponential backoff delay and are retried while attempts and deadline
    remain; [Launch_failed] aborts immediately.  If the deadline passes with
    some valid samples in hand, they are aggregated anyway (graceful
    degradation).  Valid samples above [outlier_k * median] are rejected
    before the final median / trimmed-mean.  Deterministic: no wall clock,
    no hidden randomness — everything derives from the sampler.

    Deadline edge cases are pinned down: [deadline_us <= 0] returns
    [Deadline_exceeded {attempts = 0}] without ever invoking the sampler
    (an expired budget admits no free attempt), and a deadline landing
    exactly on an attempt boundary — including the boundary where the
    attempt budget runs out at the same moment — classifies by the clock
    as [Deadline_exceeded], never as [No_valid_sample]. *)
