type verdict = { runtime_us : float; algorithm : string; kernel : Kernel_cost.kernel }

(* Library algorithms that are pipelines of separate kernels pay the launch
   overhead once per stage; the cost model already charges one launch, so a
   k-stage pipeline adds (k-1) extra overheads.  This is what makes generic
   libraries lose badly on small layers (e.g. SqueezeNet's 1x1 fire modules)
   even when their traffic is competitive. *)
let extra_launches (arch : Arch.t) n = float_of_int n *. arch.launch_overhead_us

(* Library kernels keep two blocks per SM resident, so they budget half the
   SM's shared memory per block. *)
let block_shmem_budget_elems (arch : Arch.t) =
  min (Arch.shared_elems_per_sm arch / 2) (Arch.shared_elems_per_block_max arch)

let generic_direct_tile (arch : Arch.t) (spec : Conv.Conv_spec.t) =
  let budget = block_shmem_budget_elems arch in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  (* Heuristic, optimality-condition-blind: fixed channel depth, square
     spatial tile sized so outputs fill about half the budget. *)
  let z = min 16 spec.c_out in
  let t = int_of_float (sqrt (float_of_int (budget / 2) /. float_of_int z)) in
  let x = max 1 (min t w_out) and y = max 1 (min t h_out) in
  (x, y, z)

let ceil_div a b = (a + b - 1) / b

let pick candidates arch =
  let timed =
    List.map
      (fun (name, kernel, stages) ->
        let t = Measure.runtime_avg_us arch kernel +. extra_launches arch (stages - 1) in
        { runtime_us = t; algorithm = name; kernel })
      candidates
  in
  match List.sort (fun a b -> compare a.runtime_us b.runtime_us) timed with
  | best :: _ -> best
  | [] -> invalid_arg "Library_sim.pick: no candidates"

let im2col_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~coalescing ~compute_efficiency =
  let io = Conv.Io_count.total (Conv.Im2col.io spec) in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  let pixels = h_out * w_out in
  let blocks = max 1 (spec.batch * ceil_div spec.c_out 64 * ceil_div pixels 64) in
  let shmem = min (2 * 64 * 64 * 4) arch.max_shared_mem_per_block in
  Kernel_cost.make ~coalescing ~compute_efficiency ~flops:(Conv.Conv_spec.flops spec)
    ~io_elems:io ~threads_per_block:256 ~shmem_bytes_per_block:shmem ~blocks ()

let direct_tiled_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~coalescing
    ~compute_efficiency =
  let x, y, z = generic_direct_tile arch spec in
  let tile = { Conv.Tiled_direct.x; y; z } in
  let io = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile) in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  let blocks =
    max 1 (spec.batch * ceil_div w_out x * ceil_div h_out y * ceil_div spec.c_out z)
  in
  let shmem =
    min
      (4 * Conv.Tiled_direct.working_set spec ~tile ~alpha:1)
      arch.max_shared_mem_per_block
  in
  Kernel_cost.make ~coalescing ~compute_efficiency ~flops:(Conv.Conv_spec.flops spec)
    ~io_elems:io ~threads_per_block:128 ~shmem_bytes_per_block:shmem ~blocks ()

(* cuDNN ships hand-specialised kernels for the canonical ResNet/VGG layer
   shapes (square 3x3, stride 1, pad 1, matched channel counts); on those it
   is already near-optimal, which is why the paper's end-to-end speedups on
   ResNet/VGG hover near 1x while nonstandard shapes gain 2-4x. *)
let hand_tuned_shape (spec : Conv.Conv_spec.t) =
  let standard_channels = List.mem spec.c_in [ 64; 128; 256; 512 ] in
  let residual_body =
    spec.c_in = spec.c_out && spec.k_h = 3 && spec.k_w = 3 && spec.stride = 1
    && spec.pad_h = 1 && spec.pad_w = 1 && standard_channels
  in
  (* Stage-transition shapes of the residual families: strided 3x3 doubling
     the channels, the 1x1 projection shortcut, and the 7x7 stem. *)
  let downsample =
    spec.c_out = 2 * spec.c_in && spec.k_h = 3 && spec.k_w = 3 && spec.stride = 2
    && standard_channels
  in
  let projection =
    spec.k_h = 1 && spec.k_w = 1 && spec.c_in >= 128 && spec.c_out >= 64
  in
  let stem = spec.c_in = 3 && spec.k_h = 7 && spec.k_w = 7 && spec.stride = 2 in
  (* Inception's factorised 1x7 / 7x1 convolutions: heavily benchmarked in
     the cuDNN-7 era and shipped with dedicated kernels. *)
  let factorised =
    (spec.k_h = 1 && spec.k_w = 7) || (spec.k_h = 7 && spec.k_w = 1)
  in
  residual_body || downsample || projection || stem || factorised

(* Near-optimal output tile under the budget xyz ~ Sb/2 with xy = R z —
   the same arithmetic as the paper's optimality condition, reproduced here
   because the vendor library plausibly arrived at the same place by
   exhaustive offline tuning of its special shapes. *)
let specialised_direct_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) =
  let budget = float_of_int (block_shmem_budget_elems arch) /. 2.0 in
  let r = Conv.Conv_spec.reuse spec in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  let z = max 1 (min spec.c_out (int_of_float (sqrt (budget /. r)))) in
  let side = max 1 (int_of_float (sqrt (budget /. float_of_int z))) in
  let x = max 1 (min w_out side) and y = max 1 (min h_out side) in
  (* Utilisation-aware refinement: shrink the channel depth until the grid
     covers the device (the offline tuning such kernels went through would
     not leave SMs idle). *)
  let z = ref z in
  let blocks_of z = spec.batch * ceil_div w_out x * ceil_div h_out y * ceil_div spec.c_out z in
  while !z > 1 && blocks_of !z < arch.num_sms do
    z := max 1 (!z / 2)
  done;
  let z = !z in
  let tile = { Conv.Tiled_direct.x; y; z } in
  let io = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile) in
  let blocks =
    max 1 (spec.batch * ceil_div w_out x * ceil_div h_out y * ceil_div spec.c_out z)
  in
  let shmem =
    min (4 * Conv.Tiled_direct.working_set spec ~tile ~alpha:1) arch.max_shared_mem_per_block
  in
  Kernel_cost.make ~coalescing:0.9 ~compute_efficiency:0.93
    ~flops:(Conv.Conv_spec.flops spec) ~io_elems:io ~threads_per_block:256
    ~shmem_bytes_per_block:shmem ~blocks ()

let specialised_winograd_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~e =
  let r = spec.k_h in
  let alpha = e + r - 1 in
  let sb = float_of_int (block_shmem_budget_elems arch) in
  let budget = sb *. float_of_int (e * e) /. (2.0 *. float_of_int (alpha * alpha)) in
  let rr = float_of_int (r * r) in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  let z = max 1 (min spec.c_out (int_of_float (sqrt (budget /. rr)))) in
  let side = max 1 (int_of_float (sqrt (budget /. float_of_int z))) in
  let snap extent v = max e (min (extent / e * e) (v / e * e)) in
  let x = snap (max e w_out) side and y = snap (max e h_out) side in
  let tile = { Conv.Tiled_winograd.x; y; z } in
  let io = Conv.Io_count.total (Conv.Tiled_winograd.io_only ~e spec ~tile) in
  let blocks =
    max 1 (spec.batch * ceil_div w_out x * ceil_div h_out y * ceil_div spec.c_out z)
  in
  let shmem =
    min (4 * Conv.Tiled_winograd.working_set ~e spec ~tile) arch.max_shared_mem_per_block
  in
  let fa = float_of_int alpha and fa2 = float_of_int (alpha * alpha) in
  let tiles = spec.batch * ceil_div h_out e * ceil_div w_out e in
  let ft = float_of_int tiles in
  let cin = float_of_int spec.c_in and cout = float_of_int spec.c_out in
  let flops =
    (2.0 *. ft *. fa2 *. cin *. cout)
    +. (ft *. cin *. 4.0 *. (fa ** 3.0))
    +. (ft *. cout *. 4.0 *. fa2 *. float_of_int e)
  in
  Kernel_cost.make ~coalescing:0.9 ~compute_efficiency:0.93 ~flops ~io_elems:io
    ~threads_per_block:256 ~shmem_bytes_per_block:shmem ~blocks ()

(* Implicit GEMM: the lowered matrix is generated on the fly inside one
   kernel, so there is no materialisation round-trip and the weight panel
   amortises over the whole batch-folded GEMM width.  The input is logically
   read with the kernel's duplication factor, but the L2 serves most repeats;
   a capped factor models the residue.  This is cuDNN's batched workhorse and
   the reason its batched speedups are modest in the paper's Figure 10. *)
let implicit_gemm_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~coalescing
    ~compute_efficiency =
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  let pixels = h_out * w_out in
  let n_total = spec.batch * pixels in
  let duplication = Float.min 4.0 (Conv.Conv_spec.reuse spec) in
  let weights = float_of_int (Conv.Conv_spec.weight_elems spec) in
  let io =
    (duplication *. float_of_int (Conv.Conv_spec.input_elems spec))
    +. (weights *. float_of_int (ceil_div n_total 256))
    +. float_of_int (Conv.Conv_spec.output_elems spec)
  in
  (* Fixed 64x64 macro-tiles: layers smaller than the tile grid execute (and
     stream) the padded panels anyway — the waste that makes the library lose
     big on skinny layers like SqueezeNet's 16-channel squeezes. *)
  let padded dim = float_of_int (ceil_div dim 64 * 64) /. float_of_int dim in
  let waste = padded spec.c_out *. padded n_total in
  let blocks = max 1 (ceil_div n_total 64 * ceil_div spec.c_out 64) in
  let shmem = min (32 * 1024) arch.max_shared_mem_per_block in
  Kernel_cost.make ~coalescing ~compute_efficiency
    ~flops:(waste *. Conv.Conv_spec.flops spec)
    ~io_elems:(waste *. io) ~threads_per_block:256 ~shmem_bytes_per_block:shmem ~blocks ()

(* FFT convolution: transforms and frequency products, with the analytic
   traffic of the non-fused pipeline.  Flops are dominated by the complex
   frequency products plus the n log n transforms; competitive only for
   large kernels, which is exactly cuDNN's selection behaviour. *)
let fft_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~coalescing ~compute_efficiency =
  let rows, cols = Conv.Fft_conv.transform_size spec in
  let plane = float_of_int (rows * cols) in
  let io = Conv.Io_count.total (Conv.Fft_conv.io spec) in
  let cin = float_of_int spec.c_in and cout = float_of_int spec.c_out in
  let fb = float_of_int spec.batch in
  let log_plane = log (Float.max 2.0 plane) /. log 2.0 in
  let transforms = ((fb *. cin) +. (cin *. cout) +. (fb *. cout)) *. 5.0 *. plane *. log_plane in
  let products = fb *. cin *. cout *. 8.0 *. plane in
  let blocks = max 1 (spec.batch * spec.c_out) in
  let shmem = min (32 * 1024) arch.max_shared_mem_per_block in
  Kernel_cost.make ~coalescing ~compute_efficiency ~flops:(transforms +. products)
    ~io_elems:io ~threads_per_block:256 ~shmem_bytes_per_block:shmem ~blocks ()

let direct_family arch spec ~coalescing_gemm ~coalescing_direct ~eff ~hand_tuned =
  let a = im2col_kernel arch spec ~coalescing:coalescing_gemm ~compute_efficiency:eff in
  let b =
    direct_tiled_kernel arch spec ~coalescing:coalescing_direct
      ~compute_efficiency:(eff *. 0.95)
  in
  let c =
    implicit_gemm_kernel arch spec ~coalescing:(coalescing_gemm *. 0.95)
      ~compute_efficiency:(eff *. 0.95)
  in
  let d = fft_kernel arch spec ~coalescing:(coalescing_gemm *. 0.9) ~compute_efficiency:eff in
  (* image2col is a two-stage pipeline: materialise, then GEMM; the FFT path
     runs forward transforms, frequency products and inverse transforms. *)
  let candidates =
    [ ("image2col", a, 2); ("direct", b, 1); ("implicit-gemm", c, 1); ("fft", d, 3) ]
  in
  let candidates =
    if hand_tuned then ("direct-specialised", specialised_direct_kernel arch spec, 1) :: candidates
    else candidates
  in
  pick candidates arch

let cudnn_direct arch spec =
  direct_family arch spec ~coalescing_gemm:0.85 ~coalescing_direct:0.75 ~eff:0.9
    ~hand_tuned:(hand_tuned_shape spec)

let miopen_direct arch spec =
  (* The paper measures a notably larger direct-path gap on MIOpen (2.86x vs
     cuDNN's average); its direct family is modelled with weaker constants. *)
  direct_family arch spec ~coalescing_gemm:0.7 ~coalescing_direct:0.6 ~eff:0.8
    ~hand_tuned:false

(* Non-fused Winograd pipeline: transform kernels write V and U to global
   memory, a batched GEMM contracts over channels, and an inverse transform
   produces the output.  Every intermediate round-trips through DRAM. *)
let winograd_pipeline_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~e ~coalescing
    ~compute_efficiency =
  if not (Conv.Winograd.supported spec) then
    invalid_arg "Library_sim: winograd needs stride 1 and a square kernel";
  let r = spec.k_h in
  let alpha = e + r - 1 in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  let tiles = spec.batch * ceil_div h_out e * ceil_div w_out e in
  let ft = float_of_int tiles and fa2 = float_of_int (alpha * alpha) in
  let f_cin = float_of_int spec.c_in and f_cout = float_of_int spec.c_out in
  let input_read = float_of_int (Conv.Conv_spec.input_elems spec) in
  let v_traffic = 2.0 *. ft *. fa2 *. f_cin in
  let u_traffic = 2.0 *. fa2 *. f_cin *. f_cout in
  let m_traffic = 2.0 *. ft *. fa2 *. f_cout in
  let output_write = float_of_int (Conv.Conv_spec.output_elems spec) in
  let io = input_read +. v_traffic +. u_traffic +. m_traffic +. output_write in
  let fa = float_of_int alpha in
  let gemm_flops = 2.0 *. ft *. fa2 *. f_cin *. f_cout in
  let transform_flops =
    (ft *. f_cin *. 4.0 *. (fa ** 3.0))
    +. (ft *. f_cout *. 4.0 *. (fa ** 2.0) *. float_of_int e)
  in
  let blocks = max 1 (tiles * ceil_div spec.c_out 32) in
  let shmem = min (32 * 1024) arch.max_shared_mem_per_block in
  Kernel_cost.make ~coalescing ~compute_efficiency
    ~flops:(gemm_flops +. transform_flops)
    ~io_elems:io ~threads_per_block:256 ~shmem_bytes_per_block:shmem ~blocks ()

(* Fused Winograd: one kernel keeping the transformed accumulators on chip,
   with a fixed library-heuristic tile — strong on the standard 3x3 layers it
   was tuned for, blind to the optimality condition everywhere else. *)
let winograd_fused_kernel (arch : Arch.t) (spec : Conv.Conv_spec.t) ~e ~coalescing
    ~compute_efficiency =
  if not (Conv.Winograd.supported spec) then
    invalid_arg "Library_sim: winograd needs stride 1 and a square kernel";
  let r = spec.k_h in
  let alpha = e + r - 1 in
  let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
  (* Library heuristic: 8x8 output tile (4 F(2x2) tiles a side), 8 channels. *)
  let snap extent = max e (min (4 * e) (extent / e * e)) in
  let x = snap w_out and y = snap h_out in
  let z = min 8 spec.c_out in
  let tile = { Conv.Tiled_winograd.x; y; z } in
  let io = Conv.Io_count.total (Conv.Tiled_winograd.io_only ~e spec ~tile) in
  let blocks =
    max 1 (spec.batch * ceil_div w_out x * ceil_div h_out y * ceil_div spec.c_out z)
  in
  let shmem =
    min (4 * Conv.Tiled_winograd.working_set ~e spec ~tile) arch.max_shared_mem_per_block
  in
  let fa = float_of_int alpha and fa2 = float_of_int (alpha * alpha) in
  let tiles = spec.batch * ceil_div h_out e * ceil_div w_out e in
  let ft = float_of_int tiles in
  let cin = float_of_int spec.c_in and cout = float_of_int spec.c_out in
  let flops =
    (2.0 *. ft *. fa2 *. cin *. cout)
    +. (ft *. cin *. 4.0 *. (fa ** 3.0))
    +. (ft *. cout *. 4.0 *. fa2 *. float_of_int e)
  in
  Kernel_cost.make ~coalescing ~compute_efficiency ~flops ~io_elems:io
    ~threads_per_block:256 ~shmem_bytes_per_block:shmem ~blocks ()

let winograd_family arch spec ~coalescing ~eff ~hand_tuned =
  let nonfused =
    winograd_pipeline_kernel arch spec ~e:2 ~coalescing ~compute_efficiency:eff
  in
  let fused =
    winograd_fused_kernel arch spec ~e:2 ~coalescing:(coalescing *. 0.95)
      ~compute_efficiency:(eff *. 0.95)
  in
  (* Non-fused runs as four kernels: two transforms, batched GEMM, inverse. *)
  let candidates = [ ("winograd-nonfused", nonfused, 4); ("winograd-fused", fused, 1) ] in
  let candidates =
    if hand_tuned then
      ("winograd-specialised", specialised_winograd_kernel arch spec ~e:4, 1) :: candidates
    else candidates
  in
  pick candidates arch

let cudnn_winograd arch spec =
  winograd_family arch spec ~coalescing:0.85 ~eff:0.9 ~hand_tuned:(hand_tuned_shape spec)

let miopen_winograd arch spec =
  winograd_family arch spec ~coalescing:0.8 ~eff:0.88 ~hand_tuned:false
