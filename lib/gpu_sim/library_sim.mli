(** Simulated vendor libraries: the cuDNN and MIOpen comparison baselines.

    The paper compares its dataflow implementations against the best direct
    implementation in cuDNN (direct kernel or image2col, whichever wins),
    against cuDNN's Winograd kernels, and against MIOpen on AMD (Section 7).
    These functions model those library kernels: fixed, reasonable-but-
    generic tilings chosen by simple heuristics that do not know the paper's
    optimality condition, with library-quality coalescing constants.

    The returned runtime uses the same [Kernel_cost] model and the same
    deterministic measurement oracle as the tuned kernels, so speedups
    reflect only schedule quality (I/O volume, occupancy, coalescing) — the
    quantity the paper studies. *)

type verdict = {
  runtime_us : float;
  algorithm : string;  (** which internal algorithm the "library" picked *)
  kernel : Kernel_cost.kernel;
}

val cudnn_direct : Arch.t -> Conv.Conv_spec.t -> verdict
(** Best of the im2col+GEMM path and a generically tiled direct kernel, as the
    paper does ("we compare with the best one of two direct implementations
    in cuDNN"). *)

val cudnn_winograd : Arch.t -> Conv.Conv_spec.t -> verdict
(** Non-fused F(2x2, 3x3)-style pipeline: separate transform, batched GEMM
    and inverse-transform stages with their intermediate tensors round-
    tripping through global memory.  Requires [Winograd.supported]. *)

val miopen_direct : Arch.t -> Conv.Conv_spec.t -> verdict
val miopen_winograd : Arch.t -> Conv.Conv_spec.t -> verdict
(** MIOpen analogues with slightly weaker direct-path constants, matching the
    paper's observation that the direct-path gap is larger on MIOpen. *)

val generic_direct_tile : Arch.t -> Conv.Conv_spec.t -> int * int * int
(** The heuristic (x, y, z) output tile the simulated library's direct kernel
    uses: fills shared memory with a square spatial tile and a fixed channel
    depth, ignoring the optimality condition — exposed for the ablation
    bench. *)
