(* Deterministic fault injection over the measurement oracle.

   Every fault decision is drawn from a splitmix stream keyed by (kernel
   hash, measurement seed, profile seed, attempt index), so a given config
   faults identically no matter which domain measures it or in what order —
   the property that lets the tuner stay bit-identical at any domain count
   even under a nonzero profile. *)

let mix h v = (h * 1_000_003) lxor v

type profile = {
  timeout_rate : float;
  timeout_cost_us : float;
  launch_shmem_frac : float;
  outlier_rate : float;
  outlier_scale_min : float;
  outlier_scale_max : float;
  nan_rate : float;
  fault_seed : int;
}

let none =
  {
    timeout_rate = 0.0;
    timeout_cost_us = 0.0;
    launch_shmem_frac = infinity;
    outlier_rate = 0.0;
    outlier_scale_min = 10.0;
    outlier_scale_max = 100.0;
    nan_rate = 0.0;
    fault_seed = 0;
  }

let default =
  {
    timeout_rate = 0.06;
    timeout_cost_us = 2_000.0;
    launch_shmem_frac = 0.92;
    outlier_rate = 0.05;
    outlier_scale_min = 10.0;
    outlier_scale_max = 100.0;
    nan_rate = 0.03;
    fault_seed = 0x5eed;
  }

let is_none p =
  p.timeout_rate = 0.0 && p.outlier_rate = 0.0 && p.nan_rate = 0.0
  && p.launch_shmem_frac = infinity

let to_string p =
  if is_none p then "none"
  else
    Printf.sprintf
      "timeout %.0f%% (%.0fus), launch-fail above %.0f%% shmem budget, \
       outlier %.0f%% (x%.0f-%.0f), nan %.0f%%, seed %#x"
      (100.0 *. p.timeout_rate) p.timeout_cost_us
      (100.0 *. p.launch_shmem_frac)
      (100.0 *. p.outlier_rate) p.outlier_scale_min p.outlier_scale_max
      (100.0 *. p.nan_rate) p.fault_seed

(* Same per-block budget the search space prunes against: half the SM's
   shared memory (two resident blocks) capped by the per-block limit. *)
let block_budget_bytes (arch : Arch.t) =
  min (arch.shared_mem_per_sm / 2) arch.max_shared_mem_per_block

let sample p ~seed ~attempt arch (k : Kernel_cost.kernel) =
  if is_none p then Ok (Measure.sample_us ~seed ~stream:attempt arch k)
  else begin
    let budget = float_of_int (block_budget_bytes arch) in
    if float_of_int k.shmem_bytes_per_block > p.launch_shmem_frac *. budget then
      (* Persistent: an over-capacity launch fails on every attempt. *)
      Error
        (Measure.Launch_failed
           (Printf.sprintf "%d B shared memory exceeds %.0f%% of the %.0f B block budget"
              k.shmem_bytes_per_block (100.0 *. p.launch_shmem_frac) budget))
    else begin
      let rng =
        Util.Rng.create
          (mix (mix (mix (Measure.hash_kernel k) seed) p.fault_seed) attempt)
      in
      (* Fixed draw order keeps fault streams stable as profiles vary. *)
      let timeout_draw = Util.Rng.float rng 1.0 in
      let nan_draw = Util.Rng.float rng 1.0 in
      let outlier_draw = Util.Rng.float rng 1.0 in
      let scale_draw = Util.Rng.float rng 1.0 in
      if timeout_draw < p.timeout_rate then Error (Measure.Timeout p.timeout_cost_us)
      else if nan_draw < p.nan_rate then Ok Float.nan
      else begin
        let v = Measure.sample_us ~seed ~stream:attempt arch k in
        if outlier_draw < p.outlier_rate then
          (* Log-uniform scale in [scale_min, scale_max]. *)
          let scale =
            p.outlier_scale_min
            *. ((p.outlier_scale_max /. p.outlier_scale_min) ** scale_draw)
          in
          Ok (v *. scale)
        else Ok v
      end
    end
  end

let sampler p ~seed arch k ~attempt = sample p ~seed ~attempt arch k

let measure ?policy p ~seed arch k =
  Measure.robust ?policy ~sample:(sampler p ~seed arch k) ()
