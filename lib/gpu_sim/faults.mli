(** Deterministic, seed-driven fault injection over the measurement oracle.

    Real tuning services see kernels that time out under the watchdog,
    launches rejected for over-subscribed resources, wildly outlying timer
    samples and outright garbage (NaN) readings.  This module reproduces all
    four against the analytic oracle, governed by a {!profile}, with every
    fault decision derived from (kernel hash, seed, profile seed, attempt) —
    never from global state, ordering or the wall clock.  The same config
    therefore faults identically whichever domain measures it, preserving
    the engine's bit-identical-at-any-domain-count contract under faults. *)

type profile = {
  timeout_rate : float;  (** per-attempt probability of a watchdog timeout *)
  timeout_cost_us : float;  (** virtual time an aborted attempt charges *)
  launch_shmem_frac : float;
      (** kernels whose shared memory exceeds this fraction of the per-block
          budget fail every launch (persistent fault); [infinity] disables *)
  outlier_rate : float;  (** per-attempt probability of a 10-100x outlier *)
  outlier_scale_min : float;
  outlier_scale_max : float;  (** outlier scale range, log-uniform *)
  nan_rate : float;  (** per-attempt probability of a NaN reading *)
  fault_seed : int;  (** decorrelates fault draws from measurement noise *)
}

val none : profile
(** All rates zero: {!sample} reduces to exactly [Measure.sample_us]. *)

val default : profile
(** A representative flaky backend: 6% timeouts (2ms each), launch failures
    above 92% of the shared-memory budget, 5% outliers scaled x10-100
    log-uniformly, 3% NaN readings. *)

val is_none : profile -> bool

val to_string : profile -> string
(** One-line summary for logs and bench output. *)

val block_budget_bytes : Arch.t -> int
(** The per-block shared-memory budget the injector (and [Search_space])
    measure against: [min (shared_mem_per_sm / 2) max_shared_mem_per_block]. *)

val sample :
  profile -> seed:int -> attempt:int -> Arch.t -> Kernel_cost.kernel ->
  (float, Measure.fault) result
(** One possibly-faulted sample.  Non-faulted attempts return the oracle's
    sample on noise stream [attempt]; NaN faults surface as [Ok nan] (the
    robust harness classifies them), outliers as a scaled [Ok]. *)

val sampler :
  profile -> seed:int -> Arch.t -> Kernel_cost.kernel ->
  attempt:int -> (float, Measure.fault) result
(** {!sample} curried into the shape [Measure.robust] expects. *)

val measure :
  ?policy:Measure.policy -> profile -> seed:int -> Arch.t ->
  Kernel_cost.kernel -> (float, Measure.failure) result * Measure.attempt_log
(** [Measure.robust] driven by the injecting sampler: the full robust
    measurement of one kernel under the profile. *)
