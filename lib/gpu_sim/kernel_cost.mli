(** Analytic kernel runtime model — the two-level-memory GPU substitute.

    A kernel is summarised by its useful arithmetic, its off-chip traffic and
    its launch geometry.  Runtime is a roofline with occupancy-throttled
    compute, coalescing-derated bandwidth, wave quantisation (a grid that
    does not fill an integer number of SM waves pays for the full last wave)
    and a fixed launch overhead:

    {v t = overhead + waves * max(t_compute_wave, t_memory_wave) v}

    The model deliberately makes *I/O volume the first-order term* for
    convolution-sized problems, which is the regime the paper's lower-bound
    argument addresses; tests pin this down by checking that halving
    [io_elems] at fixed flops roughly halves memory-bound runtimes. *)

type kernel = {
  flops : float;  (** useful floating-point operations *)
  io_elems : float;  (** off-chip traffic in 4-byte elements *)
  threads_per_block : int;
  shmem_bytes_per_block : int;
  blocks : int;  (** grid size *)
  coalescing : float;  (** (0, 1]: effective fraction of peak bandwidth *)
  compute_efficiency : float;  (** (0, 1]: divisibility/vectorisation derate *)
}

val make :
  ?coalescing:float -> ?compute_efficiency:float ->
  flops:float -> io_elems:float -> threads_per_block:int ->
  shmem_bytes_per_block:int -> blocks:int -> unit -> kernel
(** Defaults: full coalescing and efficiency.  Raises [Invalid_argument] on
    out-of-range derates or non-positive geometry. *)

type launch_error =
  | Bad_geometry of { threads_per_block : int; blocks : int; shmem_bytes_per_block : int }
  | Threads_exceeded of { threads_per_block : int; max_threads_per_block : int }
  | Shmem_exceeded of { shmem_bytes_per_block : int; max_shared_mem_per_block : int }
      (** Why a kernel cannot launch, carrying the offending and limiting
          sizes so error messages can name them. *)

val launch_error_to_string : launch_error -> string
(** Human-readable rendering including the offending sizes. *)

val check : Arch.t -> kernel -> (unit, launch_error) result
(** Typed launchability check: [Ok ()] exactly when [Occupancy.launchable]
    holds, a [launch_error] naming the violated limit otherwise. *)

val runtime_us : Arch.t -> kernel -> float
(** Modelled runtime in microseconds.  Raises when the block shape is not
    launchable on the architecture. *)

val gflops : Arch.t -> kernel -> float
(** Achieved arithmetic rate [flops / runtime], the Y axis of Figure 11 and
    the "Performance of Solution" columns of Table 2. *)

val memory_bound : Arch.t -> kernel -> bool
(** True when the memory wave time exceeds the compute wave time. *)
