(** Library entry point: analytic GPU performance model — the hardware
    substitute documented in DESIGN.md. *)

module Arch = Arch
module Occupancy = Occupancy
module Kernel_cost = Kernel_cost
module Measure = Measure
module Faults = Faults
module Library_sim = Library_sim
module Roofline = Roofline
