let mix h v = (h * 1_000_003) lxor v

let hash_kernel (k : Kernel_cost.kernel) =
  let fl x = Hashtbl.hash (Int64.bits_of_float x) in
  0
  |> fun h -> mix h (fl k.flops)
  |> fun h -> mix h (fl k.io_elems)
  |> fun h -> mix h k.threads_per_block
  |> fun h -> mix h k.shmem_bytes_per_block
  |> fun h -> mix h k.blocks
  |> fun h -> mix h (fl k.coalescing)
  |> fun h -> mix h (fl k.compute_efficiency)

(* A stable value in [-1, 1] derived from the kernel hash and a stream id. *)
let unit_noise ~seed ~stream k =
  let rng = Util.Rng.create (mix (mix (hash_kernel k) seed) stream) in
  (Util.Rng.float rng 2.0) -. 1.0

let sample_us ?(noise_amplitude = 0.03) ?(seed = 0) ~stream arch k =
  let base = Kernel_cost.runtime_us arch k in
  base *. (1.0 +. (noise_amplitude *. unit_noise ~seed ~stream k))

let runtime_us ?noise_amplitude ?seed arch k =
  sample_us ?noise_amplitude ?seed ~stream:0 arch k

let runtime_avg_us ?(noise_amplitude = 0.03) ?(seed = 0) ?(repeat = 3) arch k =
  if repeat < 1 then invalid_arg "Measure.runtime_avg_us: repeat < 1";
  let base = Kernel_cost.runtime_us arch k in
  let total = ref 0.0 in
  for stream = 0 to repeat - 1 do
    total := !total +. (base *. (1.0 +. (noise_amplitude *. unit_noise ~seed ~stream k)))
  done;
  !total /. float_of_int repeat

let gflops_of_runtime ~flops ~runtime_us = flops /. runtime_us /. 1.0e3

(* ------------------------------------------------------------------ *)
(* Robust measurement harness: retry, backoff, deadline, aggregation. *)

type fault =
  | Timeout of float
  | Launch_failed of string

type failure =
  | Launch_failure of string
  | Deadline_exceeded of { attempts : int }
  | No_valid_sample of { attempts : int }

let failure_to_string = function
  | Launch_failure msg -> "launch failed: " ^ msg
  | Deadline_exceeded { attempts } ->
    Printf.sprintf "deadline exceeded after %d attempts with no valid sample" attempts
  | No_valid_sample { attempts } ->
    Printf.sprintf "no valid sample in %d attempts" attempts

type aggregate =
  | Median
  | Trimmed_mean of float

type policy = {
  repeat : int;
  max_retries : int;
  backoff_base_us : float;
  backoff_factor : float;
  backoff_max_us : float;
  deadline_us : float;
  outlier_k : float;
  aggregate : aggregate;
}

let default_policy =
  {
    repeat = 3;
    max_retries = 4;
    backoff_base_us = 50.0;
    backoff_factor = 2.0;
    backoff_max_us = 800.0;
    deadline_us = 1.0e6;
    outlier_k = 4.0;
    aggregate = Median;
  }

type attempt_log = {
  attempts : int;
  retries : int;
  timeouts : int;
  nan_readings : int;
  outliers_rejected : int;
  backoff_us : float;
  elapsed_us : float;
}

let no_attempts =
  {
    attempts = 0;
    retries = 0;
    timeouts = 0;
    nan_readings = 0;
    outliers_rejected = 0;
    backoff_us = 0.0;
    elapsed_us = 0.0;
  }

(* Time is *virtual*: the harness charges sample runtimes, timeout costs and
   backoff delays against the deadline instead of sleeping, which keeps the
   retry logic deterministic and instant under test while behaving exactly
   like a wall-clock budget against a real backend. *)
let robust ?(policy = default_policy) ~sample () =
  if policy.repeat < 1 then invalid_arg "Measure.robust: repeat < 1";
  if policy.max_retries < 0 then invalid_arg "Measure.robust: max_retries < 0";
  if policy.deadline_us <= 0.0 then
    (* A zero or negative budget is already expired: deterministically refuse
       before consulting the sampler, rather than admitting a free attempt. *)
    (Error (Deadline_exceeded { attempts = 0 }), no_attempts)
  else begin
  let samples = ref [] in
  let n_valid = ref 0 in
  let attempts = ref 0 in
  let retries = ref 0 in
  let timeouts = ref 0 in
  let nans = ref 0 in
  let elapsed = ref 0.0 in
  let backoff_total = ref 0.0 in
  let fatal = ref None in
  let deadline_hit = ref false in
  (* One exponential-backoff delay per transient fault, capped. *)
  let transient () =
    let d =
      Float.min policy.backoff_max_us
        (policy.backoff_base_us *. (policy.backoff_factor ** float_of_int !retries))
    in
    incr retries;
    backoff_total := !backoff_total +. d;
    elapsed := !elapsed +. d
  in
  let max_attempts = policy.repeat + policy.max_retries in
  while
    !fatal = None && (not !deadline_hit)
    && !n_valid < policy.repeat
    && !attempts < max_attempts
  do
    if !elapsed >= policy.deadline_us then deadline_hit := true
    else begin
      let attempt = !attempts in
      incr attempts;
      match sample ~attempt with
      | Ok v when (not (Float.is_finite v)) || v <= 0.0 ->
        (* Garbage timer reading (NaN / infinite / non-positive). *)
        incr nans;
        transient ()
      | Ok v ->
        samples := v :: !samples;
        incr n_valid;
        elapsed := !elapsed +. v
      | Error (Timeout cost_us) ->
        incr timeouts;
        elapsed := !elapsed +. cost_us;
        transient ()
      | Error (Launch_failed msg) -> fatal := Some (Launch_failure msg)
    end
  done;
  let log =
    {
      attempts = !attempts;
      retries = !retries;
      timeouts = !timeouts;
      nan_readings = !nans;
      outliers_rejected = 0;
      backoff_us = !backoff_total;
      elapsed_us = !elapsed;
    }
  in
  match !fatal with
  | Some f -> (Error f, log)
  | None ->
    if !n_valid = 0 then
      (* The deadline may land exactly on the last attempt boundary, in which
         case the loop exits through the attempt budget before the body gets
         to flag it; classify by the clock, not by which guard fired, so the
         boundary case is a deterministic [Deadline_exceeded]. *)
      let f =
        if !deadline_hit || !elapsed >= policy.deadline_us then
          Deadline_exceeded { attempts = !attempts }
        else No_valid_sample { attempts = !attempts }
      in
      (Error f, log)
    else begin
      (* Partial batches (deadline hit with some valid samples in hand) still
         aggregate: a degraded answer beats a forfeited measurement. *)
      let xs = Array.of_list (List.rev !samples) in
      let med = Util.Stats.median xs in
      let kept =
        Array.of_list
          (List.filter (fun v -> v <= policy.outlier_k *. med) (Array.to_list xs))
      in
      let rejected = Array.length xs - Array.length kept in
      let value =
        match policy.aggregate with
        | Median -> Util.Stats.median kept
        | Trimmed_mean frac -> Util.Stats.trimmed_mean kept frac
      in
      (Ok value, { log with outliers_rejected = rejected })
    end
  end
