let mix h v = (h * 1_000_003) lxor v

let hash_kernel (k : Kernel_cost.kernel) =
  let fl x = Hashtbl.hash (Int64.bits_of_float x) in
  0
  |> fun h -> mix h (fl k.flops)
  |> fun h -> mix h (fl k.io_elems)
  |> fun h -> mix h k.threads_per_block
  |> fun h -> mix h k.shmem_bytes_per_block
  |> fun h -> mix h k.blocks
  |> fun h -> mix h (fl k.coalescing)
  |> fun h -> mix h (fl k.compute_efficiency)

(* A stable value in [-1, 1] derived from the kernel hash and a stream id. *)
let unit_noise ~seed ~stream k =
  let rng = Util.Rng.create (mix (mix (hash_kernel k) seed) stream) in
  (Util.Rng.float rng 2.0) -. 1.0

let runtime_us ?(noise_amplitude = 0.03) ?(seed = 0) arch k =
  let base = Kernel_cost.runtime_us arch k in
  base *. (1.0 +. (noise_amplitude *. unit_noise ~seed ~stream:0 k))

let runtime_avg_us ?(noise_amplitude = 0.03) ?(seed = 0) ?(repeat = 3) arch k =
  if repeat < 1 then invalid_arg "Measure.runtime_avg_us: repeat < 1";
  let base = Kernel_cost.runtime_us arch k in
  let total = ref 0.0 in
  for stream = 0 to repeat - 1 do
    total := !total +. (base *. (1.0 +. (noise_amplitude *. unit_noise ~seed ~stream k)))
  done;
  !total /. float_of_int repeat

let gflops_of_runtime ~flops ~runtime_us = flops /. runtime_us /. 1.0e3
