type t = {
  name : string;
  generation : string;
  num_sms : int;
  shared_mem_per_sm : int;
  max_shared_mem_per_block : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  warp_size : int;
  peak_gflops : float;
  mem_bandwidth_gbs : float;
  l2_bytes : int;
  launch_overhead_us : float;
}

let gtx_1080_ti =
  {
    name = "GTX 1080 Ti";
    generation = "Pascal";
    num_sms = 28;
    shared_mem_per_sm = 96 * 1024;
    max_shared_mem_per_block = 48 * 1024;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 32;
    warp_size = 32;
    peak_gflops = 11_340.0;
    mem_bandwidth_gbs = 484.0;
    l2_bytes = 2816 * 1024;
    launch_overhead_us = 5.0;
  }

let v100 =
  {
    name = "V100";
    generation = "Volta";
    num_sms = 80;
    shared_mem_per_sm = 96 * 1024;
    max_shared_mem_per_block = 96 * 1024;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 32;
    warp_size = 32;
    peak_gflops = 15_700.0;
    mem_bandwidth_gbs = 900.0;
    l2_bytes = 6 * 1024 * 1024;
    launch_overhead_us = 4.0;
  }

let titan_x =
  {
    name = "GTX Titan X";
    generation = "Maxwell";
    num_sms = 24;
    shared_mem_per_sm = 96 * 1024;
    max_shared_mem_per_block = 48 * 1024;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 32;
    warp_size = 32;
    peak_gflops = 6_700.0;
    mem_bandwidth_gbs = 336.0;
    l2_bytes = 3 * 1024 * 1024;
    launch_overhead_us = 6.0;
  }

let gfx906 =
  {
    name = "GFX906";
    generation = "Vega20";
    num_sms = 60;
    shared_mem_per_sm = 64 * 1024;
    max_shared_mem_per_block = 64 * 1024;
    max_threads_per_sm = 2560;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 40;
    warp_size = 64;
    peak_gflops = 13_400.0;
    mem_bandwidth_gbs = 1024.0;
    l2_bytes = 4 * 1024 * 1024;
    launch_overhead_us = 8.0;
  }

let all = [ gtx_1080_ti; v100; titan_x; gfx906 ]

let shared_elems_per_sm t = t.shared_mem_per_sm / 4
let shared_elems_per_block_max t = t.max_shared_mem_per_block / 4

let by_name name = List.find_opt (fun a -> a.name = name) all

(* The historical CLI/wire short names; any preset without one falls back to
   the sanitised display name, so a new architecture is addressable the
   moment it joins [all] (the service suite asserts the mapping stays a
   bijection over [all]). *)
let alias t =
  match t.name with
  | "GTX 1080 Ti" -> "1080ti"
  | "V100" -> "v100"
  | "GTX Titan X" -> "titanx"
  | "GFX906" -> "gfx906"
  | name ->
    let b = Buffer.create (String.length name) in
    String.iter
      (fun c ->
        match Char.lowercase_ascii c with
        | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
        | _ -> ())
      name;
    Buffer.contents b

let of_alias s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun a -> alias a = s) all
