(** GPU architecture descriptors.

    The substitution for the paper's evaluation hardware (Section 7 runs on
    NVIDIA 1080Ti, V100, GTX Titan X and AMD GFX906): each preset carries the
    published micro-architectural constants of the real card, so that the
    analytic cost model reproduces cross-architecture *trends* even though it
    cannot reproduce absolute runtimes. *)

type t = {
  name : string;
  generation : string;
  num_sms : int;  (** streaming multiprocessors / compute units *)
  shared_mem_per_sm : int;  (** bytes of shared memory (LDS) per SM *)
  max_shared_mem_per_block : int;  (** bytes *)
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  warp_size : int;
  peak_gflops : float;  (** fp32 peak *)
  mem_bandwidth_gbs : float;  (** global memory bandwidth, GB/s *)
  l2_bytes : int;
  launch_overhead_us : float;
}

val gtx_1080_ti : t  (** Pascal, 28 SMs, 11.3 TFLOPS, 484 GB/s *)

val v100 : t  (** Volta, 80 SMs, 15.7 TFLOPS, 900 GB/s *)

val titan_x : t  (** Maxwell, 24 SMs, 6.7 TFLOPS, 336 GB/s *)

val gfx906 : t  (** AMD Vega 20, 60 CUs, 13.4 TFLOPS, 1024 GB/s, wave64 *)

val all : t list

val shared_elems_per_sm : t -> int
(** Shared memory per SM in 4-byte elements — the fast-memory size [S] the
    paper's formulas take. *)

val shared_elems_per_block_max : t -> int

val by_name : string -> t option
(** Lookup among {!all} by the display [name] field. *)

val alias : t -> string
(** The short name used by the CLI, the wire protocol and golden-file names
    ("1080ti" | "v100" | "titanx" | "gfx906"): lowercase, nonempty, no
    spaces.  Presets without a hand-assigned alias fall back to the
    sanitised display name, so every member of {!all} — including future
    ones — has an alias by construction. *)

val of_alias : string -> t option
(** Case-insensitive inverse of {!alias} over {!all} — the one place short
    architecture names are resolved ([Service.Protocol] and the CLI both
    delegate here). *)
