type split_method = Exact | Hist

let split_method_tag = function Exact -> "exact" | Hist -> "hist"

let split_method_of_tag = function
  | "exact" -> Some Exact
  | "hist" -> Some Hist
  | _ -> None

type params = {
  rounds : int;
  learning_rate : float;
  tree : Tree.params;
  subsample : float;
  split_method : split_method;
  max_bins : int;
}

let default_params =
  {
    rounds = 60;
    learning_rate = 0.15;
    tree = Tree.default_params;
    subsample = 1.0;
    split_method = Exact;
    max_bins = Dataset.max_supported_bins;
  }

let hist_params = { default_params with split_method = Hist }

(* Trees live in an array: [predict] runs once per explorer step, thousands
   of times per tuning round, and must not chase list links. *)
type t = { base_score : float; learning_rate : float; trees : Tree.t array }

let predict t x =
  let acc = ref t.base_score in
  for k = 0 to Array.length t.trees - 1 do
    acc := !acc +. (t.learning_rate *. Tree.predict t.trees.(k) x)
  done;
  !acc

let predict_many ?domains t rows =
  let domains = Option.value domains ~default:(Util.Parallel.recommended_domains ()) in
  Util.Parallel.map ~domains rows (predict t)

(* Rounds below this many samples update predictions inline: distributing a
   few hundred tree walks costs more than running them. *)
let update_grain = 512

let train ?rng ?domains params data =
  let domains = match domains with Some d -> max 1 d | None -> Util.Parallel.recommended_domains () in
  let n = Dataset.length data in
  if n = 0 then invalid_arg "Booster.train: empty dataset";
  if params.subsample <= 0.0 || params.subsample > 1.0 then
    invalid_arg "Booster.train: subsample out of (0, 1]";
  let targets = Dataset.targets data in
  let base_score = Util.Stats.mean targets in
  let predictions = Array.make n base_score in
  (* Histogram training quantises the dataset once per [train] call; every
     round's trees then share the same bin matrix and cut points. *)
  let binned =
    match params.split_method with
    | Exact -> None
    | Hist -> Some (Dataset.bin ~max_bins:params.max_bins data)
  in
  (* Reused across rounds; [fit_hist] fills every slot with the owning
     leaf's weight, sparing the hist path a predict walk per sample. *)
  let leaf_out =
    match binned with Some _ -> Some (Array.make n 0.0) | None -> None
  in
  let trees = ref [] in
  for _ = 1 to params.rounds do
    let grad = Array.init n (fun i -> predictions.(i) -. targets.(i)) in
    let hess = Array.make n 1.0 in
    (* Row subsampling: zeroing a sample's hessian and gradient removes it
       from every split statistic, which is equivalent to dropping the row.
       The rng draw stays sequential so training is domain-count invariant. *)
    (match rng with
    | Some rng when params.subsample < 1.0 ->
      for i = 0 to n - 1 do
        if Util.Rng.float rng 1.0 > params.subsample then begin
          grad.(i) <- 0.0;
          hess.(i) <- 0.0
        end
      done
    | _ -> ());
    let tree =
      match binned with
      | None -> Tree.fit ~domains params.tree data ~grad ~hess
      | Some b -> Tree.fit_hist ~domains ?leaf_out params.tree b ~grad ~hess
    in
    trees := tree :: !trees;
    (* Each slot is touched by exactly one iteration, so the update is a pure
       disjoint-write loop and parallelises without changing any result.  The
       hist path reads the leaf weight recorded during the fit instead of
       re-walking the tree; the values are bit-identical. *)
    let update =
      match leaf_out with
      | Some out ->
        fun i -> predictions.(i) <- predictions.(i) +. (params.learning_rate *. out.(i))
      | None ->
        fun i ->
          predictions.(i) <-
            predictions.(i)
            +. (params.learning_rate *. Tree.predict tree (Dataset.features data i))
    in
    if n >= update_grain then Util.Parallel.for_ ~domains 0 n update
    else
      for i = 0 to n - 1 do
        update i
      done
  done;
  { base_score; learning_rate = params.learning_rate; trees = Array.of_list (List.rev !trees) }

(* Tab-separated fields (trees contain spaces but never tabs); hex floats
   for the exact round-trip that keeps restored models bit-identical. *)
let to_compact t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "gbt1\t%h\t%h\t%d" t.base_score t.learning_rate
       (Array.length t.trees));
  Array.iter
    (fun tree ->
      Buffer.add_char buf '\t';
      Buffer.add_string buf (Tree.to_compact tree))
    t.trees;
  Buffer.contents buf

let of_compact s =
  match String.split_on_char '\t' s with
  | "gbt1" :: base :: lr :: n :: tree_fields -> begin
    match (float_of_string_opt base, float_of_string_opt lr, int_of_string_opt n) with
    | Some base_score, Some learning_rate, Some n
      when Float.is_finite base_score
           && Float.is_finite learning_rate
           && n = List.length tree_fields -> begin
      let trees = List.filter_map Tree.of_compact tree_fields in
      if List.length trees = n then
        Some { base_score; learning_rate; trees = Array.of_list trees }
      else None
    end
    | _ -> None
  end
  | _ -> None

let train_rmse t data =
  let predicted =
    Array.init (Dataset.length data) (fun i -> predict t (Dataset.features data i))
  in
  Util.Stats.rmse predicted (Dataset.targets data)

let num_trees t = Array.length t.trees
