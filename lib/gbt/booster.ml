type params = {
  rounds : int;
  learning_rate : float;
  tree : Tree.params;
  subsample : float;
}

let default_params =
  { rounds = 60; learning_rate = 0.15; tree = Tree.default_params; subsample = 1.0 }

type t = { base_score : float; learning_rate : float; trees : Tree.t list }

let predict t x =
  List.fold_left
    (fun acc tree -> acc +. (t.learning_rate *. Tree.predict tree x))
    t.base_score t.trees

let predict_many t rows = Array.map (predict t) rows

let train ?rng params data =
  let n = Dataset.length data in
  if n = 0 then invalid_arg "Booster.train: empty dataset";
  if params.subsample <= 0.0 || params.subsample > 1.0 then
    invalid_arg "Booster.train: subsample out of (0, 1]";
  let targets = Dataset.targets data in
  let base_score = Util.Stats.mean targets in
  let predictions = Array.make n base_score in
  let trees = ref [] in
  for _ = 1 to params.rounds do
    let grad = Array.init n (fun i -> predictions.(i) -. targets.(i)) in
    let hess = Array.make n 1.0 in
    (* Row subsampling: zeroing a sample's hessian and gradient removes it
       from every split statistic, which is equivalent to dropping the row. *)
    (match rng with
    | Some rng when params.subsample < 1.0 ->
      for i = 0 to n - 1 do
        if Util.Rng.float rng 1.0 > params.subsample then begin
          grad.(i) <- 0.0;
          hess.(i) <- 0.0
        end
      done
    | _ -> ());
    let tree = Tree.fit params.tree data ~grad ~hess in
    trees := tree :: !trees;
    for i = 0 to n - 1 do
      predictions.(i) <-
        predictions.(i) +. (params.learning_rate *. Tree.predict tree (Dataset.features data i))
    done
  done;
  { base_score; learning_rate = params.learning_rate; trees = List.rev !trees }

let train_rmse t data =
  let predicted =
    Array.init (Dataset.length data) (fun i -> predict t (Dataset.features data i))
  in
  Util.Stats.rmse predicted (Dataset.targets data)

let num_trees t = List.length t.trees
