(** Library entry point: gradient-boosted regression trees (XGBoost-style),
    the learning-based cost model substrate for the auto-tuning engine. *)

module Dataset = Dataset
module Tree = Tree
module Booster = Booster
