(** Regression trees fitted to gradient/hessian statistics — the weak learner
    of the XGBoost-style booster.

    Split gain and leaf weights follow the XGBoost paper's second-order
    formulation with L2 regularisation [lambda] and a complexity penalty
    [gamma] per leaf:

    {v w* = -G / (H + lambda)
   gain = 1/2 (GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)) - gamma v} *)

type params = {
  max_depth : int;
  min_samples : int;  (** do not split nodes smaller than this *)
  lambda : float;  (** L2 regularisation on leaf weights *)
  gamma : float;  (** minimum gain needed to make a split *)
}

val default_params : params
(** depth 6, min 2 samples, lambda 1.0, gamma 0.0. *)

type t

val fit : ?domains:int -> params -> Dataset.t -> grad:float array -> hess:float array -> t
(** Fits one tree to the per-sample gradient statistics.  Arrays must have
    the dataset's length.

    Per-feature sorted index orders are computed once per tree and filtered
    down the recursion (children never re-sort).  With [domains > 1]
    (default 1) the per-feature split scans and the two subtree builds fan
    out over [Pool.default]; the fitted tree is bit-identical for every
    domain count: split candidates are folded in feature order and all
    floating-point accumulations happen in a fixed sequential order. *)

val fit_hist :
  ?domains:int ->
  ?leaf_out:float array ->
  params ->
  Dataset.binned ->
  grad:float array ->
  hess:float array ->
  t
(** Histogram split finding over a quantised {!Dataset.binned} view: per-node
    per-(feature, bin) gradient/hessian sums are accumulated in O(samples x
    features), bins are scanned for the best cut, and each level's larger
    child derives its histogram by subtracting the (freshly accumulated)
    smaller sibling's from the parent's.  Gain/leaf formulas, the
    [gain > 0] requirement and all tie-breaking match {!fit}; candidate
    thresholds are the fixed bin cuts, so on features with more distinct
    values than bins the split is an approximation of the exact one.  Like
    {!fit}, the result is bit-identical at every [domains] count.

    When [leaf_out] (length = sample count) is given, slot [i] is set to the
    weight of the leaf sample [i] lands in — bit-identical to
    [predict (fit_hist ...) x_i], since bin routing and threshold routing
    agree — letting callers skip a per-sample tree walk. *)

val predict : t -> float array -> float

val to_compact : t -> string
(** Single-line preorder serialization with hex-float ("%h") values: the
    round-trip through {!of_compact} reproduces the tree exactly, so a
    restored tree's predictions are bit-identical to the fitted one's.  The
    encoding contains no spaces beyond token separators and no tabs or
    newlines. *)

val of_compact : string -> t option
(** [None] on malformed input, non-finite values, negative feature indices,
    or trailing tokens (reject whole trees, never half-parse). *)

val num_leaves : t -> int
val depth : t -> int
