type t = {
  n_features : int;
  mutable rows : float array array;
  mutable targets : float array;
  mutable size : int;
}

let create ~n_features = { n_features; rows = [||]; targets = [||]; size = 0 }

let grow t =
  let capacity = Array.length t.rows in
  if t.size = capacity then begin
    let next = max 16 (capacity * 2) in
    let rows = Array.make next [||] and targets = Array.make next 0.0 in
    Array.blit t.rows 0 rows 0 capacity;
    Array.blit t.targets 0 targets 0 capacity;
    t.rows <- rows;
    t.targets <- targets
  end

let add t x y =
  if Array.length x <> t.n_features then invalid_arg "Dataset.add: arity mismatch";
  grow t;
  t.rows.(t.size) <- x;
  t.targets.(t.size) <- y;
  t.size <- t.size + 1

let length t = t.size
let n_features t = t.n_features

let features t i =
  assert (i >= 0 && i < t.size);
  t.rows.(i)

let target t i =
  assert (i >= 0 && i < t.size);
  t.targets.(i)

let targets t = Array.sub t.targets 0 t.size

let fold t ~init f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.rows.(i) t.targets.(i)
  done;
  !acc
