type t = {
  n_features : int;
  mutable rows : float array array;
  mutable targets : float array;
  mutable size : int;
}

let create ~n_features = { n_features; rows = [||]; targets = [||]; size = 0 }

let grow t =
  let capacity = Array.length t.rows in
  if t.size = capacity then begin
    let next = max 16 (capacity * 2) in
    let rows = Array.make next [||] and targets = Array.make next 0.0 in
    Array.blit t.rows 0 rows 0 capacity;
    Array.blit t.targets 0 targets 0 capacity;
    t.rows <- rows;
    t.targets <- targets
  end

let add t x y =
  if Array.length x <> t.n_features then invalid_arg "Dataset.add: arity mismatch";
  grow t;
  t.rows.(t.size) <- x;
  t.targets.(t.size) <- y;
  t.size <- t.size + 1

let length t = t.size
let n_features t = t.n_features

let features t i =
  assert (i >= 0 && i < t.size);
  t.rows.(i)

let target t i =
  assert (i >= 0 && i < t.size);
  t.targets.(i)

let targets t = Array.sub t.targets 0 t.size

let fold t ~init f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.rows.(i) t.targets.(i)
  done;
  !acc

(* --- Binned view for histogram split finding ---

   Quantised once per booster: every feature value is mapped to a small bin
   index, stored feature-major in a Bigarray so the per-node histogram
   accumulation in [Tree.fit_hist] reads one contiguous row per feature.
   [cuts.(f).(b)] is the split threshold between bin [b] and bin [b + 1],
   computed as the midpoint of the two adjacent distinct values — the same
   formula the exact presort path uses, so when a feature has at most
   [max_bins] distinct values the histogram candidate thresholds are
   bit-identical to the exact ones. *)

type binned = {
  n : int;
  bin_features : int;
  bins_per_feature : int array;
  cuts : float array array;
  matrix : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array2.t;
}

let max_supported_bins = 256

let bin ?(max_bins = max_supported_bins) t =
  if max_bins < 2 || max_bins > max_supported_bins then
    invalid_arg
      (Printf.sprintf "Dataset.bin: max_bins must be in [2, %d]" max_supported_bins);
  let n = t.size in
  let matrix =
    Bigarray.Array2.create Bigarray.int8_unsigned Bigarray.c_layout t.n_features (max n 1)
  in
  let bins_per_feature = Array.make t.n_features 1 in
  let cuts = Array.make t.n_features [||] in
  for f = 0 to t.n_features - 1 do
    let values = Array.init n (fun i -> t.rows.(i).(f)) in
    let sorted = Array.copy values in
    Array.sort compare sorted;
    (* Distinct values with multiplicities, ascending. *)
    let distinct = ref [] and counts = ref [] in
    Array.iter
      (fun v ->
        match !distinct with
        | d :: _ when d = v -> counts := (List.hd !counts + 1) :: List.tl !counts
        | _ ->
          distinct := v :: !distinct;
          counts := 1 :: !counts)
      sorted;
    let distinct = Array.of_list (List.rev !distinct) in
    let counts = Array.of_list (List.rev !counts) in
    let nd = Array.length distinct in
    (* Close a bin between distinct values [i] and [i + 1]; the threshold is
       their midpoint, matching [Tree.best_split_on_sorted]. *)
    let boundaries =
      if nd <= max_bins then List.init (max 0 (nd - 1)) (fun i -> i)
      else begin
        (* Quantile-style: close the current bin once it holds at least an
           equal share of the samples, never splitting one distinct value
           across bins and always leaving room for the remaining values. *)
        let target = float_of_int n /. float_of_int max_bins in
        let acc = ref [] and cum = ref 0 and closed = ref 0 in
        for i = 0 to nd - 2 do
          cum := !cum + counts.(i);
          if
            float_of_int !cum >= target *. float_of_int (!closed + 1)
            && !closed < max_bins - 1
          then begin
            acc := i :: !acc;
            incr closed
          end
        done;
        List.rev !acc
      end
    in
    let fcuts =
      Array.of_list
        (List.map (fun i -> (distinct.(i) +. distinct.(i + 1)) /. 2.0) boundaries)
    in
    cuts.(f) <- fcuts;
    bins_per_feature.(f) <- Array.length fcuts + 1;
    (* Assign every sample its bin: the first cut the value is <= of. *)
    let nc = Array.length fcuts in
    for i = 0 to n - 1 do
      let v = values.(i) in
      let lo = ref 0 and hi = ref nc in
      (* Invariant: bins < !lo have cut < v; bin is the first b with
         v <= fcuts.(b), or [nc] when above every cut. *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if v <= fcuts.(mid) then hi := mid else lo := mid + 1
      done;
      Bigarray.Array2.set matrix f i !lo
    done
  done;
  { n; bin_features = t.n_features; bins_per_feature; cuts; matrix }

let binned_length b = b.n
let binned_n_features b = b.bin_features
let n_bins b f = b.bins_per_feature.(f)

let cut b f i = b.cuts.(f).(i)

let bin_index b f i = Bigarray.Array2.get b.matrix f i

let bin_matrix b = b.matrix
