(** Gradient-boosted regression (squared error), the repository's stand-in
    for XGBoost in the auto-tuning cost model (Section 6.1).

    Training minimises squared error by fitting [rounds] trees to the
    residual gradients ([grad = prediction - target], [hess = 1]) with
    shrinkage [learning_rate], starting from the mean target.

    Multicore: [train] and [predict_many] fan work out over [Pool.default]
    when [domains > 1] — per-feature split scans and subtree builds inside
    [Tree.fit], the per-round prediction-update loop, and batch prediction.
    Boosting itself stays sequential (round [k+1] needs round [k]'s
    residuals), and every parallel stage writes disjoint slots and combines
    in a fixed order, so the trained model and all predictions are
    bit-identical for every domain count. *)

type split_method =
  | Exact  (** presort-per-tree, scans every sample of a node per feature *)
  | Hist  (** quantised histogram bins, [Tree.fit_hist] *)

val split_method_tag : split_method -> string
(** Stable lowercase tag ("exact" / "hist") used in checkpoint framing and
    benchmark output. *)

val split_method_of_tag : string -> split_method option
(** Inverse of {!split_method_tag}; [None] on anything else. *)

type params = {
  rounds : int;
  learning_rate : float;
  tree : Tree.params;
  subsample : float;  (** row subsampling fraction per round, in (0, 1] *)
  split_method : split_method;
  max_bins : int;  (** histogram bins per feature, only read under [Hist] *)
}

val default_params : params
(** 60 rounds, learning rate 0.15, default trees, no subsampling, [Exact]
    splits (bit-compatible with pre-histogram behaviour), 256 bins. *)

val hist_params : params
(** {!default_params} with [split_method = Hist]. *)

type t

val train : ?rng:Util.Rng.t -> ?domains:int -> params -> Dataset.t -> t
(** Raises [Invalid_argument] on an empty dataset.  [rng] is only consulted
    when [subsample < 1].  [domains] defaults to
    [Parallel.recommended_domains ()]. *)

val predict : t -> float array -> float

val predict_many : ?domains:int -> t -> float array array -> float array

val to_compact : t -> string
(** Single-line (tab-separated) snapshot of a trained booster, with every
    float in hex ("%h") notation.  {!of_compact} restores a model whose
    [predict] is bit-identical to the original's on every input — the
    contract that lets a resumed tuning run load a checkpointed cost model
    instead of retraining, without leaving the uninterrupted run's
    trajectory.  Contains no newlines. *)

val of_compact : string -> t option
(** [None] on malformed input, a tree-count mismatch, or any tree that
    fails [Tree.of_compact] — a damaged snapshot is rejected whole, never
    half-restored. *)

val train_rmse : t -> Dataset.t -> float
(** Root mean squared error on a dataset (typically the training set). *)

val num_trees : t -> int
(** O(1): the trees are stored in an array. *)
