type params = { max_depth : int; min_samples : int; lambda : float; gamma : float }

let default_params = { max_depth = 6; min_samples = 2; lambda = 1.0; gamma = 0.0 }

type t =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : t; right : t }

let leaf_weight params g h = -.g /. (h +. params.lambda)

let score params g h = g *. g /. (h +. params.lambda)

(* Work thresholds below which fanning a stage out across domains costs more
   than the stage itself; below them the code runs inline on the caller. *)
let presort_grain = 4096
let feature_scan_grain = 4096
let subtree_grain = 128

(* Best split of a node on one feature, given the node's indices already
   sorted by that feature's value: scan prefix gradient sums and place
   thresholds between distinct consecutive values. *)
let best_split_on_sorted params ~value ~grad ~hess ~sorted =
  let n = Array.length sorted in
  let g_total = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 sorted in
  let h_total = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 sorted in
  let base = score params g_total h_total in
  let best = ref None in
  let g_left = ref 0.0 and h_left = ref 0.0 in
  for pos = 0 to n - 2 do
    let i = sorted.(pos) in
    g_left := !g_left +. grad.(i);
    h_left := !h_left +. hess.(i);
    let v = value i and v' = value sorted.(pos + 1) in
    if v < v' then begin
      let gain =
        (0.5
        *. (score params !g_left !h_left
           +. score params (g_total -. !g_left) (h_total -. !h_left)
           -. base))
        -. params.gamma
      in
      match !best with
      | Some (best_gain, _, _) when best_gain >= gain -> ()
      | _ -> best := Some (gain, (v +. v') /. 2.0, pos + 1)
    end
  done;
  match !best with
  | Some (gain, threshold, split_pos) when gain > 0.0 -> Some (gain, threshold, split_pos)
  | _ -> None

let fit ?(domains = 1) params data ~grad ~hess =
  let n = Dataset.length data in
  if Array.length grad <> n || Array.length hess <> n then
    invalid_arg "Tree.fit: gradient arity mismatch";
  let n_features = Dataset.n_features data in
  let value f i = (Dataset.features data i).(f) in
  (* Pre-sort every feature's index order once per tree (ties broken by index
     so the order is unique); nodes below re-derive their orders by filtering,
     never by sorting again. *)
  let presort_domains = if n * n_features >= presort_grain then domains else 1 in
  let root_sorted =
    Util.Parallel.map ~domains:presort_domains (Array.init n_features Fun.id) (fun f ->
        let order = Array.init n Fun.id in
        Array.sort
          (fun i j ->
            let c = compare (value f i) (value f j) in
            if c <> 0 then c else compare i j)
          order;
        order)
  in
  (* [node] is the node's index set in insertion order; [sorted] holds the
     same set once per feature, each in that feature's value order. *)
  let rec build node sorted depth =
    let m = Array.length node in
    let g = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 node in
    let h = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 node in
    let as_leaf () = Leaf (leaf_weight params g h) in
    if depth >= params.max_depth || m < params.min_samples then as_leaf ()
    else begin
      let scan_domains = if m * n_features >= feature_scan_grain then domains else 1 in
      let candidates =
        Util.Parallel.mapi ~domains:scan_domains sorted (fun f sorted_f ->
            best_split_on_sorted params ~value:(value f) ~grad ~hess ~sorted:sorted_f)
      in
      (* Fold candidates in feature order (strictly-greater gain wins) so the
         chosen split never depends on the domain count. *)
      let best = ref None in
      Array.iteri
        (fun f candidate ->
          match candidate with
          | None -> ()
          | Some (gain, threshold, split_pos) -> begin
            match !best with
            | Some (best_gain, _, _, _) when best_gain >= gain -> ()
            | _ -> best := Some (gain, f, threshold, split_pos)
          end)
        candidates;
      match !best with
      | None -> as_leaf ()
      | Some (_, feature, threshold, split_pos) ->
        let chosen = sorted.(feature) in
        let left_mask = Array.make n false in
        for pos = 0 to split_pos - 1 do
          left_mask.(chosen.(pos)) <- true
        done;
        (* Filtering a sorted order preserves it, so children inherit their
           per-feature orders in O(m) instead of re-sorting. *)
        let filter keep arr =
          let out = Array.make (if keep then split_pos else m - split_pos) 0 in
          let j = ref 0 in
          Array.iter
            (fun i ->
              if left_mask.(i) = keep then begin
                out.(!j) <- i;
                incr j
              end)
            arr;
          out
        in
        let left_node = filter true node and right_node = filter false node in
        let left_sorted = Array.map (filter true) sorted in
        let right_sorted = Array.map (filter false) sorted in
        if domains > 1 && m >= subtree_grain then begin
          let left = ref (Leaf 0.0) and right = ref (Leaf 0.0) in
          Util.Pool.run_all (Util.Pool.default ())
            [
              (fun () -> left := build left_node left_sorted (depth + 1));
              (fun () -> right := build right_node right_sorted (depth + 1));
            ];
          Split { feature; threshold; left = !left; right = !right }
        end
        else
          Split
            {
              feature;
              threshold;
              left = build left_node left_sorted (depth + 1);
              right = build right_node right_sorted (depth + 1);
            }
    end
  in
  build (Array.init n Fun.id) root_sorted 0

let rec predict t x =
  match t with
  | Leaf w -> w
  | Split { feature; threshold; left; right } ->
    if x.(feature) <= threshold then predict left x else predict right x

(* Preorder, space-separated tokens with hex-float values: "%h" round-trips
   every finite double bit-for-bit, so a deserialized tree predicts exactly
   what the fitted one did — the property model checkpoints rest on. *)
let to_compact t =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Leaf w ->
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "L:%h" w)
    | Split { feature; threshold; left; right } ->
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "S:%d:%h" feature threshold);
      emit left;
      emit right
  in
  emit t;
  Buffer.contents buf

let of_compact s =
  let toks = Array.of_list (String.split_on_char ' ' s) in
  let pos = ref 0 in
  let rec parse () =
    if !pos >= Array.length toks then raise Exit;
    let tok = toks.(!pos) in
    incr pos;
    match String.split_on_char ':' tok with
    | [ "L"; w ] -> begin
      match float_of_string_opt w with
      | Some w when Float.is_finite w -> Leaf w
      | _ -> raise Exit
    end
    | [ "S"; f; th ] -> begin
      match (int_of_string_opt f, float_of_string_opt th) with
      | Some f, Some th when f >= 0 && Float.is_finite th ->
        let left = parse () in
        let right = parse () in
        Split { feature = f; threshold = th; left; right }
      | _ -> raise Exit
    end
    | _ -> raise Exit
  in
  match parse () with
  | t -> if !pos = Array.length toks then Some t else None
  | exception Exit -> None

let rec num_leaves = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> num_leaves left + num_leaves right

let rec depth = function
  | Leaf _ -> 0
  | Split { left; right; _ } -> 1 + max (depth left) (depth right)
