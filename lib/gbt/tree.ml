type params = { max_depth : int; min_samples : int; lambda : float; gamma : float }

let default_params = { max_depth = 6; min_samples = 2; lambda = 1.0; gamma = 0.0 }

type t =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : t; right : t }

let leaf_weight params g h = -.g /. (h +. params.lambda)

let score params g h = g *. g /. (h +. params.lambda)

(* Work thresholds below which fanning a stage out across domains costs more
   than the stage itself; below them the code runs inline on the caller. *)
let presort_grain = 4096
let feature_scan_grain = 4096
let subtree_grain = 128

(* Best split of a node on one feature, given the node's indices already
   sorted by that feature's value: scan prefix gradient sums and place
   thresholds between distinct consecutive values. *)
let best_split_on_sorted params ~value ~grad ~hess ~sorted =
  let n = Array.length sorted in
  let g_total = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 sorted in
  let h_total = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 sorted in
  let base = score params g_total h_total in
  let best = ref None in
  let g_left = ref 0.0 and h_left = ref 0.0 in
  for pos = 0 to n - 2 do
    let i = sorted.(pos) in
    g_left := !g_left +. grad.(i);
    h_left := !h_left +. hess.(i);
    let v = value i and v' = value sorted.(pos + 1) in
    if v < v' then begin
      let gain =
        (0.5
        *. (score params !g_left !h_left
           +. score params (g_total -. !g_left) (h_total -. !h_left)
           -. base))
        -. params.gamma
      in
      match !best with
      | Some (best_gain, _, _) when best_gain >= gain -> ()
      | _ -> best := Some (gain, (v +. v') /. 2.0, pos + 1)
    end
  done;
  match !best with
  | Some (gain, threshold, split_pos) when gain > 0.0 -> Some (gain, threshold, split_pos)
  | _ -> None

let fit ?(domains = 1) params data ~grad ~hess =
  let n = Dataset.length data in
  if Array.length grad <> n || Array.length hess <> n then
    invalid_arg "Tree.fit: gradient arity mismatch";
  let n_features = Dataset.n_features data in
  let value f i = (Dataset.features data i).(f) in
  (* Pre-sort every feature's index order once per tree (ties broken by index
     so the order is unique); nodes below re-derive their orders by filtering,
     never by sorting again. *)
  let presort_domains = if n * n_features >= presort_grain then domains else 1 in
  let root_sorted =
    Util.Parallel.map ~domains:presort_domains (Array.init n_features Fun.id) (fun f ->
        let order = Array.init n Fun.id in
        Array.sort
          (fun i j ->
            let c = compare (value f i) (value f j) in
            if c <> 0 then c else compare i j)
          order;
        order)
  in
  (* [node] is the node's index set in insertion order; [sorted] holds the
     same set once per feature, each in that feature's value order. *)
  let rec build node sorted depth =
    let m = Array.length node in
    let g = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 node in
    let h = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 node in
    let as_leaf () = Leaf (leaf_weight params g h) in
    if depth >= params.max_depth || m < params.min_samples then as_leaf ()
    else begin
      let scan_domains = if m * n_features >= feature_scan_grain then domains else 1 in
      let candidates =
        Util.Parallel.mapi ~domains:scan_domains sorted (fun f sorted_f ->
            best_split_on_sorted params ~value:(value f) ~grad ~hess ~sorted:sorted_f)
      in
      (* Fold candidates in feature order (strictly-greater gain wins) so the
         chosen split never depends on the domain count. *)
      let best = ref None in
      Array.iteri
        (fun f candidate ->
          match candidate with
          | None -> ()
          | Some (gain, threshold, split_pos) -> begin
            match !best with
            | Some (best_gain, _, _, _) when best_gain >= gain -> ()
            | _ -> best := Some (gain, f, threshold, split_pos)
          end)
        candidates;
      match !best with
      | None -> as_leaf ()
      | Some (_, feature, threshold, split_pos) ->
        let chosen = sorted.(feature) in
        let left_mask = Array.make n false in
        for pos = 0 to split_pos - 1 do
          left_mask.(chosen.(pos)) <- true
        done;
        (* Filtering a sorted order preserves it, so children inherit their
           per-feature orders in O(m) instead of re-sorting. *)
        let filter keep arr =
          let out = Array.make (if keep then split_pos else m - split_pos) 0 in
          let j = ref 0 in
          Array.iter
            (fun i ->
              if left_mask.(i) = keep then begin
                out.(!j) <- i;
                incr j
              end)
            arr;
          out
        in
        let left_node = filter true node and right_node = filter false node in
        let left_sorted = Array.map (filter true) sorted in
        let right_sorted = Array.map (filter false) sorted in
        if domains > 1 && m >= subtree_grain then begin
          let left = ref (Leaf 0.0) and right = ref (Leaf 0.0) in
          Util.Pool.run_all (Util.Pool.default ())
            [
              (fun () -> left := build left_node left_sorted (depth + 1));
              (fun () -> right := build right_node right_sorted (depth + 1));
            ];
          Split { feature; threshold; left = !left; right = !right }
        end
        else
          Split
            {
              feature;
              threshold;
              left = build left_node left_sorted (depth + 1);
              right = build right_node right_sorted (depth + 1);
            }
    end
  in
  build (Array.init n Fun.id) root_sorted 0

(* --- Histogram split finding ---

   Instead of maintaining per-feature sorted index orders and scanning every
   sample of a node per feature, work on the quantised [Dataset.binned] view:
   accumulate per-(feature, bin) gradient/hessian/count sums for the node
   (O(m * n_features)), then scan the bins (O(n_features * n_bins)) for the
   best cut.  Each child needs its own histogram; the subtraction trick
   builds only the smaller child's by accumulation and derives the larger
   sibling's as parent - smaller, halving the accumulation work per level.

   Gain and leaf-weight formulas are shared with the exact path.  Candidate
   thresholds are the fixed bin cuts, so on features with more distinct
   values than bins the chosen split is an approximation of the exact one;
   the per-node statistics themselves are exact (every sample lands in
   exactly one bin). *)

let hist_grain = 4096

type hist = { hg : float array; hh : float array; hc : int array }

let fit_hist ?(domains = 1) ?leaf_out params binned ~grad ~hess =
  let n = Dataset.binned_length binned in
  if Array.length grad <> n || Array.length hess <> n then
    invalid_arg "Tree.fit_hist: gradient arity mismatch";
  (match leaf_out with
  | Some out when Array.length out <> n ->
    invalid_arg "Tree.fit_hist: leaf_out arity mismatch"
  | _ -> ());
  let n_features = Dataset.binned_n_features binned in
  let matrix = Dataset.bin_matrix binned in
  let stride =
    let m = ref 1 in
    for f = 0 to n_features - 1 do
      m := max !m (Dataset.n_bins binned f)
    done;
    !m
  in
  let cells = n_features * stride in
  (* Histograms are three [cells]-sized arrays per split node; allocating
     them fresh ~2x-per-level churns megabytes per tree, so finished buffers
     go back on a lock-free free list scoped to this call.  Subtree builds
     may race on it, but a lost CAS only costs one fresh allocation. *)
  let pool = Atomic.make [] in
  let rec take () =
    match Atomic.get pool with
    | [] -> { hg = Array.make cells 0.0; hh = Array.make cells 0.0; hc = Array.make cells 0 }
    | h :: t as old -> if Atomic.compare_and_set pool old t then h else take ()
  in
  let rec release h =
    let old = Atomic.get pool in
    if not (Atomic.compare_and_set pool old (h :: old)) then release h
  in
  (* Per-feature rows are disjoint slices of the flat arrays, so fanning the
     accumulation out over features writes disjoint cells and the result is
     bit-identical at every domain count. *)
  let accumulate node =
    let h = take () in
    Array.fill h.hg 0 cells 0.0;
    Array.fill h.hh 0 cells 0.0;
    Array.fill h.hc 0 cells 0;
    let m = Array.length node in
    let acc_domains = if m * n_features >= hist_grain then domains else 1 in
    Util.Parallel.for_ ~domains:acc_domains 0 n_features (fun f ->
        let off = f * stride in
        for j = 0 to m - 1 do
          let i = Array.unsafe_get node j in
          let b = off + Bigarray.Array2.unsafe_get matrix f i in
          Array.unsafe_set h.hg b (Array.unsafe_get h.hg b +. Array.unsafe_get grad i);
          Array.unsafe_set h.hh b (Array.unsafe_get h.hh b +. Array.unsafe_get hess i);
          Array.unsafe_set h.hc b (Array.unsafe_get h.hc b + 1)
        done);
    h
  in
  let subtract parent smaller =
    let h = take () in
    for i = 0 to cells - 1 do
      Array.unsafe_set h.hg i
        (Array.unsafe_get parent.hg i -. Array.unsafe_get smaller.hg i);
      Array.unsafe_set h.hh i
        (Array.unsafe_get parent.hh i -. Array.unsafe_get smaller.hh i);
      Array.unsafe_set h.hc i
        (Array.unsafe_get parent.hc i - Array.unsafe_get smaller.hc i)
    done;
    h
  in
  (* Best cut of one feature: prefix-scan the bins.  A candidate exists at a
     cut only when both sides are non-empty; among equal gains the first
     (lowest cut) wins, and across features the fold below keeps the lowest
     feature index — the same tie-breaking as the exact path. *)
  let best_on_feature h ~m ~g_total ~h_total ~base f =
    let nb = Dataset.n_bins binned f in
    let off = f * stride in
    let best = ref None in
    let gl = ref 0.0 and hl = ref 0.0 and cl = ref 0 in
    for b = 0 to nb - 2 do
      (* An empty bin leaves every prefix sum unchanged, so its cut has the
         same gain as the previous one and the [>=] rule below would discard
         it anyway; skipping it outright turns deep-node scans from
         O(n_bins) gain evaluations into O(occupied bins). *)
      if Array.unsafe_get h.hc (off + b) > 0 then begin
        gl := !gl +. h.hg.(off + b);
        hl := !hl +. h.hh.(off + b);
        cl := !cl + h.hc.(off + b);
        if !cl > 0 && !cl < m then begin
        let gain =
          (0.5
          *. (score params !gl !hl
             +. score params (g_total -. !gl) (h_total -. !hl)
             -. base))
          -. params.gamma
        in
        match !best with
        | Some (best_gain, _, _, _) when best_gain >= gain -> ()
        | _ -> best := Some (gain, Dataset.cut binned f b, b, !cl)
        end
      end
    done;
    match !best with
    | Some (gain, _, _, _) when gain > 0.0 -> !best
    | _ -> None
  in
  (* A node gets a histogram only when it passes the split preconditions —
     building (or subtracting) one for a node that must become a leaf would
     be pure waste, and at the maximum depth that is every second node. *)
  let wants_hist m depth = depth < params.max_depth && m >= params.min_samples in
  let rec build node hist depth =
    let m = Array.length node in
    let g = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 node in
    let h = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 node in
    let as_leaf () =
      let w = leaf_weight params g h in
      (* Every sample reaches exactly one leaf, and bin routing agrees with
         threshold routing (thresholds are bin cuts), so recording [w] here is
         bit-identical to a post-hoc [predict] walk — and saves the booster a
         full tree traversal per sample per round.  Sibling subtrees own
         disjoint sample sets, so parallel writes never collide. *)
      (match leaf_out with
      | Some out -> Array.iter (fun i -> Array.unsafe_set out i w) node
      | None -> ());
      Leaf w
    in
    match hist with
    | None -> as_leaf ()
    | Some hist -> begin
      let base = score params g h in
      (* The bin scan is O(n_bins) per feature — too cheap to fan out; the
         expensive accumulation above is what parallelises. *)
      let best = ref None in
      for f = 0 to n_features - 1 do
        match best_on_feature hist ~m ~g_total:g ~h_total:h ~base f with
        | None -> ()
        | Some (gain, threshold, cut_bin, left_count) -> begin
          match !best with
          | Some (best_gain, _, _, _, _) when best_gain >= gain -> ()
          | _ -> best := Some (gain, f, threshold, cut_bin, left_count)
        end
      done;
      match !best with
      | None ->
        release hist;
        as_leaf ()
      | Some (_, feature, threshold, cut_bin, left_count) ->
        let left_node = Array.make left_count 0 in
        let right_node = Array.make (m - left_count) 0 in
        let li = ref 0 and ri = ref 0 in
        Array.iter
          (fun i ->
            if Bigarray.Array2.unsafe_get matrix feature i <= cut_bin then begin
              left_node.(!li) <- i;
              incr li
            end
            else begin
              right_node.(!ri) <- i;
              incr ri
            end)
          node;
        (* Subtraction trick: accumulate the smaller child, derive the larger
           from the parent.  Ties go left so the choice is deterministic. *)
        let want_l = wants_hist left_count (depth + 1)
        and want_r = wants_hist (m - left_count) (depth + 1) in
        let left_hist, right_hist =
          if not (want_l || want_r) then (None, None)
          else if left_count <= m - left_count then begin
            let lh = accumulate left_node in
            let rh = if want_r then Some (subtract hist lh) else None in
            ((if want_l then Some lh else (release lh; None)), rh)
          end
          else begin
            let rh = accumulate right_node in
            let lh = if want_l then Some (subtract hist rh) else None in
            (lh, if want_r then Some rh else (release rh; None))
          end
        in
        (* This node's histogram is spent; children own theirs and release
           them the same way when they finish. *)
        release hist;
        if domains > 1 && m >= subtree_grain then begin
          let left = ref (Leaf 0.0) and right = ref (Leaf 0.0) in
          Util.Pool.run_all (Util.Pool.default ())
            [
              (fun () -> left := build left_node left_hist (depth + 1));
              (fun () -> right := build right_node right_hist (depth + 1));
            ];
          Split { feature; threshold; left = !left; right = !right }
        end
        else
          Split
            {
              feature;
              threshold;
              left = build left_node left_hist (depth + 1);
              right = build right_node right_hist (depth + 1);
            }
    end
  in
  let root = Array.init n Fun.id in
  build root (if wants_hist n 0 then Some (accumulate root) else None) 0

let rec predict t x =
  match t with
  | Leaf w -> w
  | Split { feature; threshold; left; right } ->
    if x.(feature) <= threshold then predict left x else predict right x

(* Preorder, space-separated tokens with hex-float values: "%h" round-trips
   every finite double bit-for-bit, so a deserialized tree predicts exactly
   what the fitted one did — the property model checkpoints rest on. *)
let to_compact t =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Leaf w ->
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "L:%h" w)
    | Split { feature; threshold; left; right } ->
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "S:%d:%h" feature threshold);
      emit left;
      emit right
  in
  emit t;
  Buffer.contents buf

let of_compact s =
  let toks = Array.of_list (String.split_on_char ' ' s) in
  let pos = ref 0 in
  let rec parse () =
    if !pos >= Array.length toks then raise Exit;
    let tok = toks.(!pos) in
    incr pos;
    match String.split_on_char ':' tok with
    | [ "L"; w ] -> begin
      match float_of_string_opt w with
      | Some w when Float.is_finite w -> Leaf w
      | _ -> raise Exit
    end
    | [ "S"; f; th ] -> begin
      match (int_of_string_opt f, float_of_string_opt th) with
      | Some f, Some th when f >= 0 && Float.is_finite th ->
        let left = parse () in
        let right = parse () in
        Split { feature = f; threshold = th; left; right }
      | _ -> raise Exit
    end
    | _ -> raise Exit
  in
  match parse () with
  | t -> if !pos = Array.length toks then Some t else None
  | exception Exit -> None

let rec num_leaves = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> num_leaves left + num_leaves right

let rec depth = function
  | Leaf _ -> 0
  | Split { left; right; _ } -> 1 + max (depth left) (depth right)
