type params = { max_depth : int; min_samples : int; lambda : float; gamma : float }

let default_params = { max_depth = 6; min_samples = 2; lambda = 1.0; gamma = 0.0 }

type t =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : t; right : t }

let leaf_weight params g h = -.g /. (h +. params.lambda)

let score params g h = g *. g /. (h +. params.lambda)

(* Best split of [indices] on one feature: sort by feature value, scan prefix
   gradient sums, place thresholds between distinct consecutive values. *)
let best_split_on_feature params data ~grad ~hess ~indices ~feature =
  let key i = (Dataset.features data i).(feature) in
  let sorted = Array.copy indices in
  Array.sort (fun a b -> compare (key a) (key b)) sorted;
  let n = Array.length sorted in
  let g_total = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 sorted in
  let h_total = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 sorted in
  let base = score params g_total h_total in
  let best = ref None in
  let g_left = ref 0.0 and h_left = ref 0.0 in
  for pos = 0 to n - 2 do
    let i = sorted.(pos) in
    g_left := !g_left +. grad.(i);
    h_left := !h_left +. hess.(i);
    let v = key i and v' = key sorted.(pos + 1) in
    if v < v' then begin
      let gain =
        (0.5
        *. (score params !g_left !h_left
           +. score params (g_total -. !g_left) (h_total -. !h_left)
           -. base))
        -. params.gamma
      in
      match !best with
      | Some (best_gain, _, _) when best_gain >= gain -> ()
      | _ -> best := Some (gain, (v +. v') /. 2.0, pos + 1)
    end
  done;
  match !best with
  | Some (gain, threshold, split_pos) when gain > 0.0 -> Some (gain, threshold, sorted, split_pos)
  | _ -> None

let fit params data ~grad ~hess =
  let n = Dataset.length data in
  if Array.length grad <> n || Array.length hess <> n then
    invalid_arg "Tree.fit: gradient arity mismatch";
  let n_features = Dataset.n_features data in
  let rec build indices depth =
    let g = Array.fold_left (fun acc i -> acc +. grad.(i)) 0.0 indices in
    let h = Array.fold_left (fun acc i -> acc +. hess.(i)) 0.0 indices in
    let as_leaf () = Leaf (leaf_weight params g h) in
    if depth >= params.max_depth || Array.length indices < params.min_samples then as_leaf ()
    else begin
      let best = ref None in
      for feature = 0 to n_features - 1 do
        match best_split_on_feature params data ~grad ~hess ~indices ~feature with
        | None -> ()
        | Some (gain, threshold, sorted, split_pos) -> begin
          match !best with
          | Some (best_gain, _, _, _, _) when best_gain >= gain -> ()
          | _ -> best := Some (gain, feature, threshold, sorted, split_pos)
        end
      done;
      match !best with
      | None -> as_leaf ()
      | Some (_, feature, threshold, sorted, split_pos) ->
        let left = Array.sub sorted 0 split_pos in
        let right = Array.sub sorted split_pos (Array.length sorted - split_pos) in
        Split
          {
            feature;
            threshold;
            left = build left (depth + 1);
            right = build right (depth + 1);
          }
    end
  in
  build (Array.init n Fun.id) 0

let rec predict t x =
  match t with
  | Leaf w -> w
  | Split { feature; threshold; left; right } ->
    if x.(feature) <= threshold then predict left x else predict right x

let rec num_leaves = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> num_leaves left + num_leaves right

let rec depth = function
  | Leaf _ -> 0
  | Split { left; right; _ } -> 1 + max (depth left) (depth right)
