(** Feature-vector datasets for the gradient-boosted cost model.

    A dataset is a growable collection of (features, target) pairs with a
    fixed feature arity.  The auto-tuner appends a sample every time it
    measures a configuration, then retrains the booster on the whole set. *)

type t

val create : n_features:int -> t

val add : t -> float array -> float -> unit
(** Raises [Invalid_argument] on an arity mismatch. *)

val length : t -> int
val n_features : t -> int

val features : t -> int -> float array
(** Row accessor (not a copy; do not mutate). *)

val target : t -> int -> float

val targets : t -> float array
(** All targets, fresh copy. *)

val fold : t -> init:'a -> ('a -> float array -> float -> 'a) -> 'a
