(** Feature-vector datasets for the gradient-boosted cost model.

    A dataset is a growable collection of (features, target) pairs with a
    fixed feature arity.  The auto-tuner appends a sample every time it
    measures a configuration, then retrains the booster on the whole set. *)

type t

val create : n_features:int -> t

val add : t -> float array -> float -> unit
(** Raises [Invalid_argument] on an arity mismatch. *)

val length : t -> int
val n_features : t -> int

val features : t -> int -> float array
(** Row accessor (not a copy; do not mutate). *)

val target : t -> int -> float

val targets : t -> float array
(** All targets, fresh copy. *)

val fold : t -> init:'a -> ('a -> float array -> float -> 'a) -> 'a

(** {2 Binned view}

    Histogram split finding ([Tree.fit_hist]) quantises every feature into at
    most [max_bins] bins, once per booster, and then works on small per-bin
    statistics instead of sorted sample orders.  The bin matrix is
    feature-major (one contiguous Bigarray row per feature) so the per-node
    accumulation loop streams it linearly. *)

type binned

val max_supported_bins : int
(** 256 — bin indices are stored as unsigned bytes. *)

val bin : ?max_bins:int -> t -> binned
(** Quantise a snapshot of the dataset (default [max_bins = 256]).  A feature
    with at most [max_bins] distinct values gets one bin per distinct value
    and cut points bit-identical to the exact presort path's candidate
    thresholds (midpoints of adjacent distinct values); otherwise cut points
    are chosen so bins hold roughly equal sample counts, never splitting one
    value across bins.  Raises [Invalid_argument] when [max_bins] is outside
    [2, max_supported_bins]. *)

val binned_length : binned -> int
val binned_n_features : binned -> int

val n_bins : binned -> int -> int
(** Bins actually used by a feature (1 for a constant feature). *)

val cut : binned -> int -> int -> float
(** [cut b f i]: the split threshold between bin [i] and bin [i + 1] of
    feature [f]; defined for [0 <= i < n_bins b f - 1]. *)

val bin_index : binned -> int -> int -> int
(** [bin_index b f i]: the bin of sample [i] on feature [f]. *)

val bin_matrix :
  binned -> (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array2.t
(** The raw feature-major bin matrix, for the histogram accumulation hot
    loop; treat as read-only. *)
