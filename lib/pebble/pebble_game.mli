(** Executable red-blue pebble game (Hong & Kung's model, Section 2.1).

    Replays a topological schedule of a computation DAG against a fast memory
    of [s] red pebbles and counts the I/O operations a cache of that size
    would perform:

    - every DAG input starts with a blue pebble (slow memory);
    - computing a vertex requires red pebbles on all its predecessors
      (loads are counted when a blue-only predecessor is brought in);
    - a red pebble evicted while its value still has pending uses — or while
      it is an output — is first copied to a blue pebble (a store);
    - every output carries a blue pebble when the game ends.

    The simulator never recomputes a vertex, so the resulting I/O count is a
    valid upper bound on the optimal game: for every schedule and policy,
    [loads + stores >= Q_optimal >= the paper's lower bounds], which is the
    invariant the test-suite checks. *)

type policy =
  | Lru  (** evict the least recently touched red pebble *)
  | Fifo  (** evict the red pebble placed earliest *)
  | Belady  (** evict the red pebble whose next use is farthest away *)

(** {2 Pure transition API}

    The game rules themselves, one move at a time, over an immutable state —
    so the exact oracle ([Verify.Oracle]) and the rule-level unit tests can
    drive the game without re-implementing (and silently diverging from) its
    legality conditions.  Pebble sets are bit masks, so this API is limited
    to graphs of at most [max_game_vertices] vertices; the schedule-replay
    simulator below has no such limit. *)

type move =
  | Load of Dag.Graph.vertex
      (** place a red pebble on a blue-pebbled vertex (one I/O) *)
  | Store of Dag.Graph.vertex
      (** place a blue pebble on a red-pebbled vertex (one I/O) *)
  | Compute of Dag.Graph.vertex
      (** place a red pebble on a non-input vertex whose predecessors are all
          red (free); recomputation of a previously computed-and-evicted
          vertex is the same move again *)
  | Free of Dag.Graph.vertex  (** remove a red pebble (free) *)

type state = {
  red : int;  (** bit mask of red-pebbled (fast-memory) vertices *)
  blue : int;  (** bit mask of blue-pebbled (slow-memory) vertices *)
  red_count : int;  (** number of set bits in [red] *)
  loads : int;
  stores : int;
  computes : int;
}

val max_game_vertices : int
(** Largest playable graph for the pure API: [Sys.int_size - 1]. *)

val popcount : int -> int
(** Set bits of a non-negative mask (16-bit-table implementation — the
    64-bit SWAR constants do not fit OCaml's 63-bit int literals). *)

val mask_subset : int -> int -> bool
(** [mask_subset a b]: every bit of [a] is set in [b]. *)

val start : Dag.Graph.t -> state
(** Initial position: every DAG input blue, no red pebbles.  Raises
    [Invalid_argument] past [max_game_vertices] vertices. *)

val state_io : state -> int
(** [loads + stores]. *)

val in_red : state -> Dag.Graph.vertex -> bool
val in_blue : state -> Dag.Graph.vertex -> bool

val red_vertices : Dag.Graph.t -> state -> Dag.Graph.vertex list
(** Ascending. *)

val blue_vertices : Dag.Graph.t -> state -> Dag.Graph.vertex list

val complete : Dag.Graph.t -> state -> bool
(** Every DAG output carries a blue pebble — the game's winning condition. *)

val check_move : Dag.Graph.t -> s:int -> state -> move -> (unit, string) result
(** Move validity under [s] red pebbles.  [Load] needs a blue pebble, a free
    red slot and no red pebble already present; [Store] needs a red pebble
    and no blue one (re-storing an already-stored value is rejected as
    wasted I/O rather than silently counted); [Compute] needs a non-input
    vertex, all predecessors red, a free slot and no red pebble already
    present (no sliding — matching the replay simulator, which evicts before
    placing); [Free] needs a red pebble.  The error string names the
    violated condition. *)

val apply : Dag.Graph.t -> s:int -> state -> move -> (state, string) result
(** Pure transition: [check_move] then the updated state with its I/O and
    compute counters advanced. *)

val apply_exn : Dag.Graph.t -> s:int -> state -> move -> state
(** [apply] raising [Invalid_argument] on illegal moves. *)

val legal_moves : Dag.Graph.t -> s:int -> state -> move list
(** Every legal move from this state, ordered by vertex then
    load/store/compute/free. *)

val trace : Dag.Graph.t -> s:int -> ?init:state -> move list -> (state, string) result
(** Replay a move sequence from [init] (default [start]); the first illegal
    move aborts with its [check_move] error. *)

val move_to_string : move -> string

type stats = {
  loads : int;  (** blue -> red transfers *)
  stores : int;  (** red -> blue transfers *)
  computes : int;  (** vertices pebbled by the compute rule *)
  peak_red : int;  (** largest number of red pebbles ever in use *)
}

type detailed = {
  totals : stats;
  loads_by_step : int array;
      (** [loads_by_step.(j)]: loads performed while computing step-[j]
          vertices — the empirical counterpart of the paper's per-step
          generation-function analysis (which [phi_j] owns the traffic). *)
  stores_by_step : int array;
      (** stores attributed to the step of the vertex written back. *)
}

val total_io : stats -> int
(** [loads + stores]. *)

val run : Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> stats
(** Plays the game.  Raises [Invalid_argument] when the schedule is not a
    valid topological enumeration of the compute vertices or when [s] is too
    small to hold any vertex together with its predecessors
    ([s < max_in_degree + 1]). *)

val run_recompute :
  Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> stats
(** Like [run] but the schedule may list a vertex several times: later
    occurrences *recompute* the value instead of reloading it (the paper's
    Section 3/8 point — its theory, unlike the red-blue-white game, permits
    recomputation, and the bounds must hold regardless).  An occurrence of a
    vertex that is still resident is a no-op; an occurrence whose
    predecessors' values are neither resident, in slow memory, nor
    re-derived by the schedule raises [Failure]. *)

val run_detailed_recompute :
  Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> detailed
(** [run_recompute] with per-step attribution. *)

val run_detailed :
  Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> detailed
(** [run] plus per-step I/O attribution.  Index 0 of the step arrays holds
    traffic attributed to input vertices (stores of spilled inputs). *)

val min_red : Dag.Graph.t -> int
(** Smallest legal fast-memory size for this DAG: [max_in_degree + 1]. *)
