(** Executable red-blue pebble game (Hong & Kung's model, Section 2.1).

    Replays a topological schedule of a computation DAG against a fast memory
    of [s] red pebbles and counts the I/O operations a cache of that size
    would perform:

    - every DAG input starts with a blue pebble (slow memory);
    - computing a vertex requires red pebbles on all its predecessors
      (loads are counted when a blue-only predecessor is brought in);
    - a red pebble evicted while its value still has pending uses — or while
      it is an output — is first copied to a blue pebble (a store);
    - every output carries a blue pebble when the game ends.

    The simulator never recomputes a vertex, so the resulting I/O count is a
    valid upper bound on the optimal game: for every schedule and policy,
    [loads + stores >= Q_optimal >= the paper's lower bounds], which is the
    invariant the test-suite checks. *)

type policy =
  | Lru  (** evict the least recently touched red pebble *)
  | Fifo  (** evict the red pebble placed earliest *)
  | Belady  (** evict the red pebble whose next use is farthest away *)

type stats = {
  loads : int;  (** blue -> red transfers *)
  stores : int;  (** red -> blue transfers *)
  computes : int;  (** vertices pebbled by the compute rule *)
  peak_red : int;  (** largest number of red pebbles ever in use *)
}

type detailed = {
  totals : stats;
  loads_by_step : int array;
      (** [loads_by_step.(j)]: loads performed while computing step-[j]
          vertices — the empirical counterpart of the paper's per-step
          generation-function analysis (which [phi_j] owns the traffic). *)
  stores_by_step : int array;
      (** stores attributed to the step of the vertex written back. *)
}

val total_io : stats -> int
(** [loads + stores]. *)

val run : Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> stats
(** Plays the game.  Raises [Invalid_argument] when the schedule is not a
    valid topological enumeration of the compute vertices or when [s] is too
    small to hold any vertex together with its predecessors
    ([s < max_in_degree + 1]). *)

val run_recompute :
  Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> stats
(** Like [run] but the schedule may list a vertex several times: later
    occurrences *recompute* the value instead of reloading it (the paper's
    Section 3/8 point — its theory, unlike the red-blue-white game, permits
    recomputation, and the bounds must hold regardless).  An occurrence of a
    vertex that is still resident is a no-op; an occurrence whose
    predecessors' values are neither resident, in slow memory, nor
    re-derived by the schedule raises [Failure]. *)

val run_detailed_recompute :
  Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> detailed
(** [run_recompute] with per-step attribution. *)

val run_detailed :
  Dag.Graph.t -> schedule:Dag.Graph.vertex array -> s:int -> policy:policy -> detailed
(** [run] plus per-step I/O attribution.  Index 0 of the step arrays holds
    traffic attributed to input vertices (stores of spilled inputs). *)

val min_red : Dag.Graph.t -> int
(** Smallest legal fast-memory size for this DAG: [max_in_degree + 1]. *)
