type policy = Lru | Fifo | Belady

(* --- Pure transition API (single source of truth for the game rules) ---

   The replay simulator below interprets whole schedules; the pure API plays
   one move at a time over an immutable state, so an exact solver or a test
   can drive the rules without re-implementing them.  Pebble sets are bit
   masks, which caps playable graphs at [max_game_vertices] vertices — the
   regime where exhaustive search is feasible anyway. *)

type move =
  | Load of Dag.Graph.vertex
  | Store of Dag.Graph.vertex
  | Compute of Dag.Graph.vertex
  | Free of Dag.Graph.vertex

type state = {
  red : int;  (* bit mask of red-pebbled vertices *)
  blue : int;  (* bit mask of blue-pebbled vertices *)
  red_count : int;
  loads : int;
  stores : int;
  computes : int;
}

let max_game_vertices = Sys.int_size - 1

let bit v = 1 lsl v
let mem mask v = mask land bit v <> 0

(* 16-bit table popcount: OCaml ints are 63-bit, so the usual 64-bit SWAR
   mask constants do not fit in an int literal; four table lookups cover the
   whole word and the hot masks (game states) are small anyway. *)
let popcount16 =
  let t = Array.make 65536 0 in
  for i = 1 to 65535 do
    t.(i) <- t.(i lsr 1) + (i land 1)
  done;
  t

let popcount x =
  popcount16.(x land 0xffff)
  + popcount16.((x lsr 16) land 0xffff)
  + popcount16.((x lsr 32) land 0xffff)
  + popcount16.((x lsr 48) land 0xffff)

let mask_subset a b = a land b = a

let start g =
  let n = Dag.Graph.num_vertices g in
  if n > max_game_vertices then
    invalid_arg
      (Printf.sprintf "Pebble_game.start: %d vertices exceed the %d-vertex mask limit" n
         max_game_vertices);
  let blue = ref 0 in
  for v = 0 to n - 1 do
    if Dag.Graph.is_input g v then blue := !blue lor bit v
  done;
  { red = 0; blue = !blue; red_count = 0; loads = 0; stores = 0; computes = 0 }

let state_io st = st.loads + st.stores
let in_red st v = mem st.red v
let in_blue st v = mem st.blue v

let vertices_of_mask g mask =
  let acc = ref [] in
  for v = Dag.Graph.num_vertices g - 1 downto 0 do
    if mem mask v then acc := v :: !acc
  done;
  !acc

let red_vertices g st = vertices_of_mask g st.red
let blue_vertices g st = vertices_of_mask g st.blue

let complete g st =
  List.for_all (fun v -> mem st.blue v) (Dag.Graph.outputs g)

let move_to_string = function
  | Load v -> Printf.sprintf "load %d" v
  | Store v -> Printf.sprintf "store %d" v
  | Compute v -> Printf.sprintf "compute %d" v
  | Free v -> Printf.sprintf "free %d" v

let check_move g ~s st mv =
  let n = Dag.Graph.num_vertices g in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let in_range v = v >= 0 && v < n in
  if s < 1 then err "s = %d: need at least one red pebble" s
  else
    match mv with
    | (Load v | Store v | Compute v | Free v) when not (in_range v) ->
      err "%s: vertex out of range [0, %d)" (move_to_string mv) n
    | Load v ->
      if not (mem st.blue v) then err "load %d: no blue pebble to load from" v
      else if mem st.red v then err "load %d: already red" v
      else if st.red_count >= s then err "load %d: all %d red pebbles in use" v s
      else Ok ()
    | Store v ->
      if not (mem st.red v) then err "store %d: no red pebble to store from" v
      else if mem st.blue v then err "store %d: already blue (wasted I/O)" v
      else Ok ()
    | Compute v ->
      if Dag.Graph.is_input g v then err "compute %d: inputs are loaded, not computed" v
      else if mem st.red v then err "compute %d: already red" v
      else if st.red_count >= s then err "compute %d: all %d red pebbles in use" v s
      else begin
        match List.find_opt (fun p -> not (mem st.red p)) (Dag.Graph.preds g v) with
        | Some p -> err "compute %d: predecessor %d not red" v p
        | None -> Ok ()
      end
    | Free v -> if mem st.red v then Ok () else err "free %d: no red pebble" v

let apply g ~s st mv =
  match check_move g ~s st mv with
  | Error _ as e -> e
  | Ok () ->
    Ok
      (match mv with
      | Load v ->
        { st with red = st.red lor bit v; red_count = st.red_count + 1;
          loads = st.loads + 1 }
      | Store v -> { st with blue = st.blue lor bit v; stores = st.stores + 1 }
      | Compute v ->
        { st with red = st.red lor bit v; red_count = st.red_count + 1;
          computes = st.computes + 1 }
      | Free v -> { st with red = st.red land lnot (bit v); red_count = st.red_count - 1 })

let apply_exn g ~s st mv =
  match apply g ~s st mv with
  | Ok st' -> st'
  | Error msg -> invalid_arg ("Pebble_game.apply: " ^ msg)

let legal_moves g ~s st =
  let n = Dag.Graph.num_vertices g in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    let consider mv = if check_move g ~s st mv = Ok () then acc := mv :: !acc in
    consider (Load v);
    consider (Store v);
    consider (Compute v);
    consider (Free v)
  done;
  !acc

let trace g ~s ?init moves =
  let init = match init with Some st -> st | None -> start g in
  List.fold_left
    (fun acc mv -> match acc with Error _ as e -> e | Ok st -> apply g ~s st mv)
    (Ok init) moves

type stats = { loads : int; stores : int; computes : int; peak_red : int }

type detailed = {
  totals : stats;
  loads_by_step : int array;
  stores_by_step : int array;
}

let total_io st = st.loads + st.stores

let min_red g = Dag.Graph.max_in_degree g + 1

(* Per-vertex queues of the schedule positions at which the vertex is consumed
   as a predecessor, in ascending order.  Consumed destructively as the game
   advances; an empty queue means the value is dead (unless it is an output,
   which must end up blue). *)
let build_use_queues g schedule =
  let n = Dag.Graph.num_vertices g in
  let uses = Array.make n [] in
  for pos = Array.length schedule - 1 downto 0 do
    let v = schedule.(pos) in
    List.iter (fun p -> uses.(p) <- pos :: uses.(p)) (Dag.Graph.preds g v)
  done;
  uses

(* Lax validity for recomputing schedules: every occurrence's predecessors
   must have been computed (at least once) earlier; whether the value is still
   materialised is the game's own runtime concern. *)
let validate_recompute g schedule =
  let n = Dag.Graph.num_vertices g in
  let seen = Array.make n false in
  for v = 0 to n - 1 do
    if Dag.Graph.is_input g v then seen.(v) <- true
  done;
  let ok = ref true in
  Array.iter
    (fun v ->
      if Dag.Graph.is_input g v then ok := false
      else if List.exists (fun p -> not seen.(p)) (Dag.Graph.preds g v) then ok := false
      else seen.(v) <- true)
    schedule;
  (* Every compute vertex must be computed at least once. *)
  !ok
  && Array.for_all Fun.id seen

let run_general ~allow_recompute g ~schedule ~s ~policy =
  (if allow_recompute then begin
     if not (validate_recompute g schedule) then
       invalid_arg "Pebble_game.run: invalid recomputing schedule"
   end
   else if not (Dag.Graph.validate_topological g schedule) then
     invalid_arg "Pebble_game.run: schedule is not a topological order");
  if s < min_red g then invalid_arg "Pebble_game.run: fast memory too small";
  let max_step =
    Array.fold_left (fun acc v -> max acc (Dag.Graph.step g v)) 0 schedule
  in
  let loads_by_step = Array.make (max_step + 1) 0 in
  let stores_by_step = Array.make (max_step + 1) 0 in
  let n = Dag.Graph.num_vertices g in
  let uses = build_use_queues g schedule in
  (* Positions at which each vertex is itself (re)scheduled; an evicted value
     whose next self-occurrence precedes its next use will be re-derived, so
     writing it back would be wasted I/O. *)
  let self_positions = Array.make n [] in
  if allow_recompute then
    for pos = Array.length schedule - 1 downto 0 do
      let v = schedule.(pos) in
      self_positions.(v) <- pos :: self_positions.(v)
    done;
  let is_output = Array.make n false in
  List.iter (fun v -> is_output.(v) <- true) (Dag.Graph.outputs g);
  let in_red = Array.make n false in
  let has_blue = Array.make n false in
  for v = 0 to n - 1 do
    if Dag.Graph.is_input g v then has_blue.(v) <- true
  done;
  let last_touch = Array.make n 0 in
  let placed_at = Array.make n 0 in
  let pinned = Array.make n false in
  (* The red set is kept as an explicit array of resident vertices; [s] is at
     most a few thousand in every experiment so linear victim scans are
     cheap relative to the DAG traversal. *)
  let red = Array.make s (-1) in
  let red_count = ref 0 in
  let slot_of = Array.make n (-1) in
  let loads = ref 0 and stores = ref 0 and computes = ref 0 and peak = ref 0 in
  let clock = ref 0 in
  let place_red v =
    red.(!red_count) <- v;
    slot_of.(v) <- !red_count;
    in_red.(v) <- true;
    incr red_count;
    peak := max !peak !red_count;
    last_touch.(v) <- !clock;
    placed_at.(v) <- !clock
  in
  let remove_red v =
    let slot = slot_of.(v) in
    let last = !red_count - 1 in
    let moved = red.(last) in
    red.(slot) <- moved;
    slot_of.(moved) <- slot;
    red.(last) <- -1;
    slot_of.(v) <- -1;
    in_red.(v) <- false;
    decr red_count
  in
  let next_use v = match uses.(v) with [] -> max_int | pos :: _ -> pos in
  let next_self v = match self_positions.(v) with [] -> max_int | pos :: _ -> pos in
  let recomputed_before_use v = allow_recompute && next_self v < next_use v in
  let store_if_needed v =
    (* A live or output value loses its only copy on eviction unless it is
       written back — or re-derived by a recomputing schedule first.  Stores
       are attributed to the stored vertex's step. *)
    if
      (not has_blue.(v))
      && (uses.(v) <> [] || is_output.(v))
      && not (recomputed_before_use v && not (is_output.(v)))
    then begin
      incr stores;
      let step = Dag.Graph.step g v in
      stores_by_step.(step) <- stores_by_step.(step) + 1;
      has_blue.(v) <- true
    end
  in
  let pick_victim () =
    let best = ref (-1) in
    let better candidate =
      match !best with
      | -1 -> true
      | champion -> begin
        match policy with
        | Lru -> last_touch.(candidate) < last_touch.(champion)
        | Fifo -> placed_at.(candidate) < placed_at.(champion)
        | Belady -> next_use candidate > next_use champion
      end
    in
    for i = 0 to !red_count - 1 do
      let v = red.(i) in
      if (not pinned.(v)) && better v then best := v
    done;
    if !best = -1 then failwith "Pebble_game: no evictable pebble (s too small)";
    !best
  in
  let make_room () =
    while !red_count >= s do
      let victim = pick_victim () in
      store_if_needed victim;
      remove_red victim
    done
  in
  let drop_if_dead v =
    (* Eagerly free red pebbles holding dead values (game rule Free). *)
    if in_red.(v) && uses.(v) = [] then begin
      if is_output.(v) then store_if_needed v;
      remove_red v
    end
  in
  Array.iter
    (fun v ->
      incr clock;
      (match self_positions.(v) with _ :: rest -> self_positions.(v) <- rest | [] -> ());
      if in_red.(v) then begin
        (* Re-scheduled while still resident: nothing to compute, but this
           occurrence's notional reads must still retire from the use queues
           so liveness stays exact. *)
        last_touch.(v) <- !clock;
        let ps = Dag.Graph.preds g v in
        List.iter
          (fun p -> match uses.(p) with _ :: rest -> uses.(p) <- rest | [] -> ())
          ps;
        List.iter drop_if_dead ps
      end
      else begin
      let ps = Dag.Graph.preds g v in
      List.iter (fun p -> pinned.(p) <- true) ps;
      (* Loads are attributed to the step of the consuming vertex. *)
      let consumer_step = Dag.Graph.step g v in
      List.iter
        (fun p ->
          if not in_red.(p) then begin
            if not has_blue.(p) then
              failwith
                "Pebble_game: value lost (a recomputing schedule must re-derive it \
                 before this use)";
            make_room ();
            place_red p;
            incr loads;
            loads_by_step.(consumer_step) <- loads_by_step.(consumer_step) + 1
          end
          else last_touch.(p) <- !clock)
        ps;
      make_room ();
      place_red v;
      incr computes;
      (* Consume one use from every predecessor, then free dead values. *)
      List.iter
        (fun p ->
          (match uses.(p) with
          | _ :: rest -> uses.(p) <- rest
          | [] -> ());
          pinned.(p) <- false)
        ps;
      List.iter drop_if_dead ps;
      drop_if_dead v
      end)
    schedule;
  (* Any output still resident must be written back before the game ends. *)
  for v = 0 to n - 1 do
    if in_red.(v) && is_output.(v) then store_if_needed v
  done;
  {
    totals = { loads = !loads; stores = !stores; computes = !computes; peak_red = !peak };
    loads_by_step;
    stores_by_step;
  }

let run_detailed g ~schedule ~s ~policy =
  run_general ~allow_recompute:false g ~schedule ~s ~policy

let run g ~schedule ~s ~policy = (run_detailed g ~schedule ~s ~policy).totals

let run_detailed_recompute g ~schedule ~s ~policy =
  run_general ~allow_recompute:true g ~schedule ~s ~policy

let run_recompute g ~schedule ~s ~policy =
  (run_detailed_recompute g ~schedule ~s ~policy).totals
