type policy = Lru | Fifo | Belady

type stats = { loads : int; stores : int; computes : int; peak_red : int }

type detailed = {
  totals : stats;
  loads_by_step : int array;
  stores_by_step : int array;
}

let total_io st = st.loads + st.stores

let min_red g = Dag.Graph.max_in_degree g + 1

(* Per-vertex queues of the schedule positions at which the vertex is consumed
   as a predecessor, in ascending order.  Consumed destructively as the game
   advances; an empty queue means the value is dead (unless it is an output,
   which must end up blue). *)
let build_use_queues g schedule =
  let n = Dag.Graph.num_vertices g in
  let uses = Array.make n [] in
  for pos = Array.length schedule - 1 downto 0 do
    let v = schedule.(pos) in
    List.iter (fun p -> uses.(p) <- pos :: uses.(p)) (Dag.Graph.preds g v)
  done;
  uses

(* Lax validity for recomputing schedules: every occurrence's predecessors
   must have been computed (at least once) earlier; whether the value is still
   materialised is the game's own runtime concern. *)
let validate_recompute g schedule =
  let n = Dag.Graph.num_vertices g in
  let seen = Array.make n false in
  for v = 0 to n - 1 do
    if Dag.Graph.is_input g v then seen.(v) <- true
  done;
  let ok = ref true in
  Array.iter
    (fun v ->
      if Dag.Graph.is_input g v then ok := false
      else if List.exists (fun p -> not seen.(p)) (Dag.Graph.preds g v) then ok := false
      else seen.(v) <- true)
    schedule;
  (* Every compute vertex must be computed at least once. *)
  !ok
  && Array.for_all Fun.id seen

let run_general ~allow_recompute g ~schedule ~s ~policy =
  (if allow_recompute then begin
     if not (validate_recompute g schedule) then
       invalid_arg "Pebble_game.run: invalid recomputing schedule"
   end
   else if not (Dag.Graph.validate_topological g schedule) then
     invalid_arg "Pebble_game.run: schedule is not a topological order");
  if s < min_red g then invalid_arg "Pebble_game.run: fast memory too small";
  let max_step =
    Array.fold_left (fun acc v -> max acc (Dag.Graph.step g v)) 0 schedule
  in
  let loads_by_step = Array.make (max_step + 1) 0 in
  let stores_by_step = Array.make (max_step + 1) 0 in
  let n = Dag.Graph.num_vertices g in
  let uses = build_use_queues g schedule in
  (* Positions at which each vertex is itself (re)scheduled; an evicted value
     whose next self-occurrence precedes its next use will be re-derived, so
     writing it back would be wasted I/O. *)
  let self_positions = Array.make n [] in
  if allow_recompute then
    for pos = Array.length schedule - 1 downto 0 do
      let v = schedule.(pos) in
      self_positions.(v) <- pos :: self_positions.(v)
    done;
  let is_output = Array.make n false in
  List.iter (fun v -> is_output.(v) <- true) (Dag.Graph.outputs g);
  let in_red = Array.make n false in
  let has_blue = Array.make n false in
  for v = 0 to n - 1 do
    if Dag.Graph.is_input g v then has_blue.(v) <- true
  done;
  let last_touch = Array.make n 0 in
  let placed_at = Array.make n 0 in
  let pinned = Array.make n false in
  (* The red set is kept as an explicit array of resident vertices; [s] is at
     most a few thousand in every experiment so linear victim scans are
     cheap relative to the DAG traversal. *)
  let red = Array.make s (-1) in
  let red_count = ref 0 in
  let slot_of = Array.make n (-1) in
  let loads = ref 0 and stores = ref 0 and computes = ref 0 and peak = ref 0 in
  let clock = ref 0 in
  let place_red v =
    red.(!red_count) <- v;
    slot_of.(v) <- !red_count;
    in_red.(v) <- true;
    incr red_count;
    peak := max !peak !red_count;
    last_touch.(v) <- !clock;
    placed_at.(v) <- !clock
  in
  let remove_red v =
    let slot = slot_of.(v) in
    let last = !red_count - 1 in
    let moved = red.(last) in
    red.(slot) <- moved;
    slot_of.(moved) <- slot;
    red.(last) <- -1;
    slot_of.(v) <- -1;
    in_red.(v) <- false;
    decr red_count
  in
  let next_use v = match uses.(v) with [] -> max_int | pos :: _ -> pos in
  let next_self v = match self_positions.(v) with [] -> max_int | pos :: _ -> pos in
  let recomputed_before_use v = allow_recompute && next_self v < next_use v in
  let store_if_needed v =
    (* A live or output value loses its only copy on eviction unless it is
       written back — or re-derived by a recomputing schedule first.  Stores
       are attributed to the stored vertex's step. *)
    if
      (not has_blue.(v))
      && (uses.(v) <> [] || is_output.(v))
      && not (recomputed_before_use v && not (is_output.(v)))
    then begin
      incr stores;
      let step = Dag.Graph.step g v in
      stores_by_step.(step) <- stores_by_step.(step) + 1;
      has_blue.(v) <- true
    end
  in
  let pick_victim () =
    let best = ref (-1) in
    let better candidate =
      match !best with
      | -1 -> true
      | champion -> begin
        match policy with
        | Lru -> last_touch.(candidate) < last_touch.(champion)
        | Fifo -> placed_at.(candidate) < placed_at.(champion)
        | Belady -> next_use candidate > next_use champion
      end
    in
    for i = 0 to !red_count - 1 do
      let v = red.(i) in
      if (not pinned.(v)) && better v then best := v
    done;
    if !best = -1 then failwith "Pebble_game: no evictable pebble (s too small)";
    !best
  in
  let make_room () =
    while !red_count >= s do
      let victim = pick_victim () in
      store_if_needed victim;
      remove_red victim
    done
  in
  let drop_if_dead v =
    (* Eagerly free red pebbles holding dead values (game rule Free). *)
    if in_red.(v) && uses.(v) = [] then begin
      if is_output.(v) then store_if_needed v;
      remove_red v
    end
  in
  Array.iter
    (fun v ->
      incr clock;
      (match self_positions.(v) with _ :: rest -> self_positions.(v) <- rest | [] -> ());
      if in_red.(v) then begin
        (* Re-scheduled while still resident: nothing to compute, but this
           occurrence's notional reads must still retire from the use queues
           so liveness stays exact. *)
        last_touch.(v) <- !clock;
        let ps = Dag.Graph.preds g v in
        List.iter
          (fun p -> match uses.(p) with _ :: rest -> uses.(p) <- rest | [] -> ())
          ps;
        List.iter drop_if_dead ps
      end
      else begin
      let ps = Dag.Graph.preds g v in
      List.iter (fun p -> pinned.(p) <- true) ps;
      (* Loads are attributed to the step of the consuming vertex. *)
      let consumer_step = Dag.Graph.step g v in
      List.iter
        (fun p ->
          if not in_red.(p) then begin
            if not has_blue.(p) then
              failwith
                "Pebble_game: value lost (a recomputing schedule must re-derive it \
                 before this use)";
            make_room ();
            place_red p;
            incr loads;
            loads_by_step.(consumer_step) <- loads_by_step.(consumer_step) + 1
          end
          else last_touch.(p) <- !clock)
        ps;
      make_room ();
      place_red v;
      incr computes;
      (* Consume one use from every predecessor, then free dead values. *)
      List.iter
        (fun p ->
          (match uses.(p) with
          | _ :: rest -> uses.(p) <- rest
          | [] -> ());
          pinned.(p) <- false)
        ps;
      List.iter drop_if_dead ps;
      drop_if_dead v
      end)
    schedule;
  (* Any output still resident must be written back before the game ends. *)
  for v = 0 to n - 1 do
    if in_red.(v) && is_output.(v) then store_if_needed v
  done;
  {
    totals = { loads = !loads; stores = !stores; computes = !computes; peak_red = !peak };
    loads_by_step;
    stores_by_step;
  }

let run_detailed g ~schedule ~s ~policy =
  run_general ~allow_recompute:false g ~schedule ~s ~policy

let run g ~schedule ~s ~policy = (run_detailed g ~schedule ~s ~policy).totals

let run_detailed_recompute g ~schedule ~s ~policy =
  run_general ~allow_recompute:true g ~schedule ~s ~policy

let run_recompute g ~schedule ~s ~policy =
  (run_detailed_recompute g ~schedule ~s ~policy).totals
