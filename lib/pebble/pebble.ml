(** Library entry point: red-blue pebble game simulator. *)

module Pebble_game = Pebble_game
