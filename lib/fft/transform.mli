(** Radix-2 Cooley-Tukey fast Fourier transforms.

    The substrate behind the FFT convolution path (cuDNN's third algorithm
    family).  Iterative in-place implementation over [Complex.t] arrays;
    lengths must be powers of two. *)

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** Smallest power of two [>= n]; requires [n >= 1]. *)

val fft : Complex.t array -> unit
(** In-place forward DFT.  Raises [Invalid_argument] on non-power-of-two
    lengths. *)

val ifft : Complex.t array -> unit
(** In-place inverse DFT (normalised by 1/N). *)

val fft2 : Complex.t array -> rows:int -> cols:int -> unit
(** In-place 2D forward transform of a row-major matrix: FFT of every row,
    then of every column.  Both extents must be powers of two. *)

val ifft2 : Complex.t array -> rows:int -> cols:int -> unit

val of_real : float array -> Complex.t array
val real_part : Complex.t array -> float array

val dft_naive : Complex.t array -> Complex.t array
(** O(n^2) reference DFT for tests. *)
