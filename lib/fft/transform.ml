let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n < 1 then invalid_arg "Transform.next_power_of_two";
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* In-place iterative Cooley-Tukey with a bit-reversal permutation followed
   by log2(n) butterfly passes.  [sign] is -1 for the forward transform and
   +1 for the inverse (before normalisation). *)
let transform ~sign a =
  let n = Array.length a in
  if not (is_power_of_two n) then invalid_arg "Transform.fft: length not a power of two";
  (* Bit reversal. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- tmp
    end;
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wlen = { Complex.re = cos angle; im = sin angle } in
    let block = ref 0 in
    while !block < n do
      let w = ref Complex.one in
      for k = 0 to half - 1 do
        let u = a.(!block + k) in
        let v = Complex.mul a.(!block + k + half) !w in
        a.(!block + k) <- Complex.add u v;
        a.(!block + k + half) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      block := !block + !len
    done;
    len := !len * 2
  done

let fft a = transform ~sign:(-1) a

let ifft a =
  transform ~sign:1 a;
  let scale = 1.0 /. float_of_int (Array.length a) in
  Array.iteri
    (fun i (x : Complex.t) -> a.(i) <- { Complex.re = x.re *. scale; im = x.im *. scale })
    a

let columns_pass f a ~rows ~cols =
  let column = Array.make rows Complex.zero in
  for c = 0 to cols - 1 do
    for r = 0 to rows - 1 do
      column.(r) <- a.((r * cols) + c)
    done;
    f column;
    for r = 0 to rows - 1 do
      a.((r * cols) + c) <- column.(r)
    done
  done

let rows_pass f a ~rows ~cols =
  for r = 0 to rows - 1 do
    let row = Array.sub a (r * cols) cols in
    f row;
    Array.blit row 0 a (r * cols) cols
  done

let fft2 a ~rows ~cols =
  if Array.length a <> rows * cols then invalid_arg "Transform.fft2: size mismatch";
  rows_pass fft a ~rows ~cols;
  columns_pass fft a ~rows ~cols

let ifft2 a ~rows ~cols =
  if Array.length a <> rows * cols then invalid_arg "Transform.ifft2: size mismatch";
  rows_pass ifft a ~rows ~cols;
  columns_pass ifft a ~rows ~cols

let of_real xs = Array.map (fun re -> { Complex.re; im = 0.0 }) xs
let real_part a = Array.map (fun (c : Complex.t) -> c.re) a

let dft_naive a =
  let n = Array.length a in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for t = 0 to n - 1 do
        let angle = -2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
        let w = { Complex.re = cos angle; im = sin angle } in
        acc := Complex.add !acc (Complex.mul a.(t) w)
      done;
      !acc)
