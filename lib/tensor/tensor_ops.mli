(** Arithmetic helpers shared by the convolution kernels. *)

val add : Dense.t -> Dense.t -> Dense.t
val sub : Dense.t -> Dense.t -> Dense.t
val mul : Dense.t -> Dense.t -> Dense.t
(** Elementwise; shapes must agree. *)

val scale : float -> Dense.t -> Dense.t

val add_inplace : dst:Dense.t -> Dense.t -> unit
(** [add_inplace ~dst src] accumulates [src] into [dst]. *)

val dot : float array -> float array -> float
(** Inner product of two equal-length buffers. *)

val matmul : a:float array -> b:float array -> m:int -> k:int -> n:int -> float array
(** Row-major [m]x[k] times [k]x[n] product. *)

val matmul_t : a:float array -> bt:float array -> m:int -> k:int -> n:int -> float array
(** [matmul_t ~a ~bt ...] multiplies [a] ([m]x[k]) by the *transpose* of [bt]
    ([n]x[k]), a cache-friendlier kernel used by the Winograd transforms. *)

val transpose : float array -> rows:int -> cols:int -> float array
(** Row-major transpose. *)

val frobenius : Dense.t -> float
(** Frobenius norm. *)
