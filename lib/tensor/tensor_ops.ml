let add = Dense.map2 ( +. )
let sub = Dense.map2 ( -. )
let mul = Dense.map2 ( *. )
let scale s = Dense.map (fun x -> s *. x)

let add_inplace ~dst src =
  if not (Shape.equal (Dense.shape dst) (Dense.shape src)) then
    invalid_arg "Tensor_ops.add_inplace: shape mismatch";
  let d = Dense.data dst and s = Dense.data src in
  for i = 0 to Array.length d - 1 do
    d.(i) <- d.(i) +. s.(i)
  done

let dot xs ys =
  assert (Array.length xs = Array.length ys);
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    acc := !acc +. (xs.(i) *. ys.(i))
  done;
  !acc

let matmul ~a ~b ~m ~k ~n =
  assert (Array.length a = m * k && Array.length b = k * n);
  let c = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = a.((i * k) + p) in
      if aip <> 0.0 then begin
        let brow = p * n and crow = i * n in
        for j = 0 to n - 1 do
          c.(crow + j) <- c.(crow + j) +. (aip *. b.(brow + j))
        done
      end
    done
  done;
  c

let matmul_t ~a ~bt ~m ~k ~n =
  assert (Array.length a = m * k && Array.length bt = n * k);
  let c = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      let arow = i * k and brow = j * k in
      for p = 0 to k - 1 do
        acc := !acc +. (a.(arow + p) *. bt.(brow + p))
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let transpose a ~rows ~cols =
  assert (Array.length a = rows * cols);
  let out = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      out.((j * rows) + i) <- a.((i * cols) + j)
    done
  done;
  out

let frobenius t = sqrt (Dense.fold (fun acc x -> acc +. (x *. x)) 0.0 t)
