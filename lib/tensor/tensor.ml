(** Library entry point: [Tensor] is the dense tensor type itself ([include
    Dense]) plus the companion namespaces [Tensor.Shape], [Tensor.Layout] and
    [Tensor.Ops]. *)

module Shape = Shape
module Layout = Layout
module Ops = Tensor_ops
include Dense
