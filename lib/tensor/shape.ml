type t = { dims : int array; strides : int array; numel : int }

let of_list dims =
  if dims = [] then invalid_arg "Shape.of_list: empty shape";
  List.iter (fun d -> if d <= 0 then invalid_arg "Shape.of_list: non-positive dim") dims;
  let dims = Array.of_list dims in
  let rank = Array.length dims in
  let strides = Array.make rank 1 in
  for i = rank - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { dims; strides; numel = Array.fold_left ( * ) 1 dims }

let dims t = Array.copy t.dims
let rank t = Array.length t.dims

let dim t i =
  assert (i >= 0 && i < Array.length t.dims);
  t.dims.(i)

let numel t = t.numel
let strides t = Array.copy t.strides

let offset t idx =
  assert (Array.length idx = Array.length t.dims);
  let acc = ref 0 in
  for i = 0 to Array.length idx - 1 do
    assert (idx.(i) >= 0 && idx.(i) < t.dims.(i));
    acc := !acc + (idx.(i) * t.strides.(i))
  done;
  !acc

let equal a b = a.dims = b.dims

let to_string t =
  "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int t.dims)) ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)
