type t = CHW | CWH | HWC

let all = [ CHW; CWH; HWC ]

let to_string = function CHW -> "CHW" | CWH -> "CWH" | HWC -> "HWC"

let of_string = function
  | "CHW" -> Some CHW
  | "CWH" -> Some CWH
  | "HWC" -> Some HWC
  | _ -> None

let index layout ~c ~h ~w ~channels ~height ~width =
  assert (c >= 0 && c < channels && h >= 0 && h < height && w >= 0 && w < width);
  match layout with
  | CHW -> (c * height * width) + (h * width) + w
  | CWH -> (c * height * width) + (w * height) + h
  | HWC -> (h * width * channels) + (w * channels) + c

let innermost_is_width = function CHW -> true | CWH -> false | HWC -> false
