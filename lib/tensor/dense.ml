type t = { shape : Shape.t; data : float array }

let create shape = { shape; data = Array.make (Shape.numel shape) 0.0 }

let of_array shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Tensor.of_array: length mismatch";
  { shape; data }

let shape t = t.shape
let numel t = Shape.numel t.shape
let data t = t.data
let get t idx = t.data.(Shape.offset t.shape idx)
let set t idx v = t.data.(Shape.offset t.shape idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v
let fill t v = Array.fill t.data 0 (Array.length t.data) v
let copy t = { shape = t.shape; data = Array.copy t.data }

(* Iterate multi-indices in row-major order by incrementing the last axis. *)
let iter_indices shape f =
  let rank = Shape.rank shape in
  let idx = Array.make rank 0 in
  let n = Shape.numel shape in
  for _ = 1 to n do
    f idx;
    let rec bump axis =
      if axis >= 0 then begin
        idx.(axis) <- idx.(axis) + 1;
        if idx.(axis) = Shape.dim shape axis then begin
          idx.(axis) <- 0;
          bump (axis - 1)
        end
      end
    in
    bump (rank - 1)
  done

let init shape f =
  let t = create shape in
  let pos = ref 0 in
  iter_indices shape (fun idx ->
      t.data.(!pos) <- f idx;
      incr pos);
  t

let random rng shape =
  let t = create shape in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- Util.Rng.float rng 2.0 -. 1.0
  done;
  t

let map f t = { shape = t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.map2: shape mismatch";
  { shape = a.shape; data = Array.map2 f a.data b.data }

let fold f init t = Array.fold_left f init t.data

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    worst := Float.max !worst (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !worst

let allclose ?(rtol = 1e-5) ?(atol = 1e-6) a b =
  Shape.equal a.shape b.shape
  && begin
       let ok = ref true in
       let i = ref 0 in
       let n = Array.length a.data in
       while !ok && !i < n do
         let x = a.data.(!i) and y = b.data.(!i) in
         if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false;
         incr i
       done;
       !ok
     end

let pp fmt t =
  let preview = min 8 (Array.length t.data) in
  Format.fprintf fmt "%a:" Shape.pp t.shape;
  for i = 0 to preview - 1 do
    Format.fprintf fmt " %.4g" t.data.(i)
  done;
  if Array.length t.data > preview then Format.fprintf fmt " ..."
