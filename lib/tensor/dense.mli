(** Dense float tensors.

    A tensor is a shape plus a flat [float array] in row-major order.  This is
    the data substrate for every convolution implementation in the repository;
    it favours clarity and bounds-checked access ([get]/[set] assert in debug
    builds) with raw-array escape hatches ([data]) for inner loops. *)

type t

val create : Shape.t -> t
(** Zero-initialised tensor. *)

val of_array : Shape.t -> float array -> t
(** Adopts the array (no copy).  Raises [Invalid_argument] when the length
    does not match the shape. *)

val shape : t -> Shape.t
val numel : t -> int

val data : t -> float array
(** The underlying flat buffer (shared, not a copy). *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val fill : t -> float -> unit
val copy : t -> t

val init : Shape.t -> (int array -> float) -> t
(** [init shape f] evaluates [f] on every multi-index. *)

val random : Util.Rng.t -> Shape.t -> t
(** Uniform values in [-1, 1). *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val max_abs_diff : t -> t -> float
(** Largest elementwise absolute difference; shapes must agree. *)

val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool
(** Elementwise [|a-b| <= atol + rtol*|b|], numpy-style.  Default
    [rtol = 1e-5], [atol = 1e-6]. *)

val pp : Format.formatter -> t -> unit
(** Shape plus a few leading elements, for test failure messages. *)
