(** Tensor shapes: immutable dimension vectors with row-major strides. *)

type t
(** A shape is a non-empty list of strictly positive dimensions. *)

val of_list : int list -> t
(** Raises [Invalid_argument] on an empty list or non-positive dimension. *)

val dims : t -> int array
(** The dimension vector (fresh copy). *)

val rank : t -> int

val dim : t -> int -> int
(** [dim t i] is the size of axis [i]. *)

val numel : t -> int
(** Product of all dimensions. *)

val strides : t -> int array
(** Row-major strides: the last axis is contiguous. *)

val offset : t -> int array -> int
(** [offset t idx] is the linear index of multi-index [idx].  Bounds are
    checked with assertions. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
