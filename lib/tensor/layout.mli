(** Memory layouts for single-image activation tensors.

    The paper's search domain (Table 1) includes the data layout as a tunable
    parameter with values CHW, CWH and HWC.  A layout fixes the order in which
    the (channel, height, width) axes are linearised; the choice affects the
    coalescing factor in the GPU cost model and the offsets produced by
    [index]. *)

type t = CHW | CWH | HWC

val all : t list
val to_string : t -> string
val of_string : string -> t option

val index : t -> c:int -> h:int -> w:int -> channels:int -> height:int -> width:int -> int
(** Linear offset of element ([c], [h], [w]) in a [channels]x[height]x[width]
    tensor stored with this layout. *)

val innermost_is_width : t -> bool
(** True when consecutive [w] indices are contiguous in memory — the property
    the GPU model rewards with fully coalesced accesses for row-wise tiles. *)
