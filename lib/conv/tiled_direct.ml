type tile = { x : int; y : int; z : int }

type result = { output : Tensor.t; io : Io_count.t; blocks : int }

let input_tile_w (spec : Conv_spec.t) x = ((x - 1) * spec.stride) + spec.k_w
let input_tile_h (spec : Conv_spec.t) y = ((y - 1) * spec.stride) + spec.k_h

let check_tile tile =
  if tile.x < 1 || tile.y < 1 || tile.z < 1 then
    invalid_arg "Tiled_direct: non-positive tile"

(* Geometry of one output block clamped to the image. *)
type block = { wo0 : int; ho0 : int; co0 : int; bw : int; bh : int; bz : int }

let fold_blocks (spec : Conv_spec.t) ~tile ~init f =
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let acc = ref init in
  let co0 = ref 0 in
  while !co0 < spec.c_out do
    let bz = min tile.z (spec.c_out - !co0) in
    let ho0 = ref 0 in
    while !ho0 < h_out do
      let bh = min tile.y (h_out - !ho0) in
      let wo0 = ref 0 in
      while !wo0 < w_out do
        let bw = min tile.x (w_out - !wo0) in
        acc := f !acc { wo0 = !wo0; ho0 = !ho0; co0 = !co0; bw; bh; bz };
        wo0 := !wo0 + tile.x
      done;
      ho0 := !ho0 + tile.y
    done;
    co0 := !co0 + tile.z
  done;
  !acc

(* In-bounds element count of the input tile feeding a block: the tile spans
   [h0, h0 + th) x [w0, w0 + tw) in padded coordinates; only the intersection
   with the real image is loaded from off-chip. *)
let tile_loads (spec : Conv_spec.t) b =
  let tw = input_tile_w spec b.bw and th = input_tile_h spec b.bh in
  let w0 = (b.wo0 * spec.stride) - spec.pad_w and h0 = (b.ho0 * spec.stride) - spec.pad_h in
  let clip lo len bound = max 0 (min (lo + len) bound - max lo 0) in
  clip w0 tw spec.w_in * clip h0 th spec.h_in

(* Distinct input channels a z-range [co0, co0+bz) touches: its groups'
   channels (all of c_in when groups = 1). *)
let input_channels_of_zrange (spec : Conv_spec.t) ~co0 ~bz =
  let fpg = spec.c_out / spec.groups and cpg = spec.c_in / spec.groups in
  let first_group = co0 / fpg and last_group = (co0 + bz - 1) / fpg in
  cpg * (last_group - first_group + 1)

let block_io (spec : Conv_spec.t) b =
  let channels = input_channels_of_zrange spec ~co0:b.co0 ~bz:b.bz in
  let input_loads = tile_loads spec b * channels in
  let cpg = spec.c_in / spec.groups in
  let weight_loads = spec.k_h * spec.k_w * cpg * b.bz in
  let stores = b.bw * b.bh * b.bz in
  Io_count.make
    ~loads:(float_of_int (input_loads + weight_loads))
    ~stores:(float_of_int stores)

(* Per-axis clipped input-tile extents: the block traffic factorises as
   width-sum * height-sum, so the whole tally is O(blocks per axis) instead of
   O(total blocks) — [run] still does the full per-block accounting and the
   tests pin the two to each other. *)
let axis_clip_sum ~extent ~tile_dim ~stride ~halo ~pad ~bound =
  let clip lo len = max 0 (min (lo + len) bound - max lo 0) in
  let total = ref 0 and count = ref 0 and o0 = ref 0 in
  while !o0 < extent do
    let b = min tile_dim (extent - !o0) in
    let len = ((b - 1) * stride) + halo in
    total := !total + clip ((!o0 * stride) - pad) len;
    incr count;
    o0 := !o0 + tile_dim
  done;
  (!total, !count)

let io_only ?(alpha = 1) (spec : Conv_spec.t) ~tile =
  check_tile tile;
  ignore alpha;
  (* alpha changes stage granularity, not block totals: every input element
     and weight of the block is still loaded exactly once. *)
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let sum_w, nx =
    axis_clip_sum ~extent:w_out ~tile_dim:tile.x ~stride:spec.stride ~halo:spec.k_w
      ~pad:spec.pad_w ~bound:spec.w_in
  in
  let sum_h, ny =
    axis_clip_sum ~extent:h_out ~tile_dim:tile.y ~stride:spec.stride ~halo:spec.k_h
      ~pad:spec.pad_h ~bound:spec.h_in
  in
  (* Sum the distinct-input-channel counts over the z blocks (equal to
     c_in * nz when groups = 1, less when a block's groups see fewer input
     channels). *)
  let channel_loads = ref 0 in
  let co0 = ref 0 in
  while !co0 < spec.c_out do
    let bz = min tile.z (spec.c_out - !co0) in
    channel_loads := !channel_loads + input_channels_of_zrange spec ~co0:!co0 ~bz;
    co0 := !co0 + tile.z
  done;
  let input_loads = float_of_int (sum_w * sum_h * !channel_loads) in
  let cpg = spec.c_in / spec.groups in
  let weight_loads = float_of_int (spec.k_h * spec.k_w * cpg * spec.c_out * nx * ny) in
  let stores = float_of_int (w_out * h_out * spec.c_out) in
  Io_count.scale
    (float_of_int spec.batch)
    (Io_count.make ~loads:(input_loads +. weight_loads) ~stores)

let working_set (spec : Conv_spec.t) ~tile ~alpha =
  check_tile tile;
  (tile.x * tile.y * tile.z)
  + (input_tile_w spec tile.x * input_tile_h spec tile.y * alpha)
  + (spec.k_h * spec.k_w * alpha * tile.z)

let enumerate_blocks (spec : Conv_spec.t) ~tile =
  check_tile tile;
  let acc = fold_blocks spec ~tile ~init:[] (fun acc b -> b :: acc) in
  Array.of_list (List.rev acc)

let block_io_of = block_io

let compute_block ?(alpha = 1) (spec : Conv_spec.t) ~input ~weights ~output ~batch_index:n b =
  if alpha < 1 then invalid_arg "Tiled_direct.compute_block: non-positive alpha";
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let inp = Tensor.data input and wgt = Tensor.data weights and out = Tensor.data output in
  let { Conv_spec.c_in; h_in; w_in; c_out; k_h; k_w; stride; pad_h; pad_w; groups; _ } =
    spec
  in
  let cpg = c_in / groups and fpg = c_out / groups in
  (* Slide along the (per-group) channel direction in stages of [alpha]
     channels; partial sums stay resident in the output block the whole
     time. *)
  let ci0 = ref 0 in
  while !ci0 < cpg do
    let cstage = min alpha (cpg - !ci0) in
    for dc = 0 to cstage - 1 do
      let dci = !ci0 + dc in
      for dz = 0 to b.bz - 1 do
        let co = b.co0 + dz in
        let ci = ((co / fpg) * cpg) + dci in
        let in_base = (((n * c_in) + ci) * h_in) * w_in in
        let w_base = (((co * cpg) + dci) * k_h) * k_w in
        let out_base = (((n * c_out) + co) * h_out) * w_out in
        for dy = 0 to b.bh - 1 do
          let ho = b.ho0 + dy in
          for dx = 0 to b.bw - 1 do
            let wo = b.wo0 + dx in
            let acc = ref out.(out_base + (ho * w_out) + wo) in
            for kh = 0 to k_h - 1 do
              let h = (ho * stride) + kh - pad_h in
              if h >= 0 && h < h_in then
                for kw = 0 to k_w - 1 do
                  let w = (wo * stride) + kw - pad_w in
                  if w >= 0 && w < w_in then
                    acc :=
                      !acc
                      +. inp.(in_base + (h * w_in) + w) *. wgt.(w_base + (kh * k_w) + kw)
                done
            done;
            out.(out_base + (ho * w_out) + wo) <- !acc
          done
        done
      done
    done;
    ci0 := !ci0 + cstage
  done

let run ?(alpha = 1) (spec : Conv_spec.t) ~tile ~input ~weights =
  check_tile tile;
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let blocks = enumerate_blocks spec ~tile in
  let io = ref Io_count.zero in
  for n = 0 to spec.batch - 1 do
    Array.iter
      (fun b ->
        compute_block ~alpha spec ~input ~weights ~output ~batch_index:n b;
        io := Io_count.add !io (block_io spec b))
      blocks
  done;
  { output; io = !io; blocks = spec.batch * Array.length blocks }
