(* All three executors chunk their flattened block ranges over
   [Util.Parallel], which since the pool rewrite reuses the persistent
   [Util.Pool.default] workers instead of spawning domains per call. *)

let tiled_direct ?domains (spec : Conv_spec.t) ~tile ~input ~weights =
  let domains = Option.value domains ~default:(Util.Parallel.recommended_domains ()) in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let blocks = Tiled_direct.enumerate_blocks spec ~tile in
  let nb = Array.length blocks in
  (* Flatten (batch, block) pairs so small grids still spread over domains. *)
  Util.Parallel.for_ ~domains 0 (spec.batch * nb) (fun i ->
      let n = i / nb and b = blocks.(i mod nb) in
      Tiled_direct.compute_block spec ~input ~weights ~output ~batch_index:n b);
  let io =
    Array.fold_left
      (fun acc b -> Io_count.add acc (Tiled_direct.block_io_of spec b))
      Io_count.zero blocks
  in
  {
    Tiled_direct.output;
    io = Io_count.scale (float_of_int spec.batch) io;
    blocks = spec.batch * nb;
  }

let tiled_winograd ?domains ~e (spec : Conv_spec.t) ~tile ~input ~weights =
  let domains = Option.value domains ~default:(Util.Parallel.recommended_domains ()) in
  let tf = Winograd_transform.make ~e ~r:spec.k_h in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let blocks = Tiled_winograd.enumerate_blocks ~e spec ~tile in
  let nb = Array.length blocks in
  Util.Parallel.for_ ~domains 0 (spec.batch * nb) (fun i ->
      let n = i / nb and b = blocks.(i mod nb) in
      Tiled_winograd.compute_block ~e ~transform:tf spec ~input ~weights ~output
        ~batch_index:n b);
  let io =
    Array.fold_left
      (fun acc b -> Io_count.add acc (Tiled_winograd.block_io_of spec b))
      Io_count.zero blocks
  in
  {
    Tiled_winograd.output;
    io = Io_count.scale (float_of_int spec.batch) io;
    blocks = spec.batch * nb;
  }

let direct ?domains (spec : Conv_spec.t) ~input ~weights =
  let domains = Option.value domains ~default:(Util.Parallel.recommended_domains ()) in
  (* One maximal block per output channel keeps writes disjoint. *)
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let tile = { Tiled_direct.x = w_out; y = h_out; z = 1 } in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let blocks = Tiled_direct.enumerate_blocks spec ~tile in
  let nb = Array.length blocks in
  Util.Parallel.for_ ~domains 0 (spec.batch * nb) (fun i ->
      let n = i / nb and b = blocks.(i mod nb) in
      Tiled_direct.compute_block ~alpha:spec.c_in spec ~input ~weights ~output
        ~batch_index:n b);
  output
