(** Reference direct convolution.

    The straightforward seven-loop implementation with zero padding; it is the
    correctness oracle every other kernel in the repository is tested
    against. *)

val run : Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** [run spec ~input ~weights] computes the NCHW convolution.  Raises
    [Invalid_argument] when tensor shapes do not match the spec. *)

val random_problem : Util.Rng.t -> Conv_spec.t -> Tensor.t * Tensor.t
(** Input and weight tensors with uniform values, shaped for the spec —
    a convenience for tests, examples and benchmarks. *)
