(** Exact rational arithmetic on native integers.

    Used only to *generate* Winograd transformation matrices (interpolation
    points and Lagrange coefficients are tiny, so native ints never come close
    to overflow there), after which everything is converted to floats.
    Normalised form: the denominator is positive and gcd(num, den) = 1. *)

type t

val zero : t
val one : t
val of_int : int -> t
val make : int -> int -> t
(** [make num den]; raises [Division_by_zero] when [den = 0]. *)

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div] raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t
val equal : t -> t -> bool
val is_zero : t -> bool
val compare : t -> t -> int
val to_float : t -> float
val to_string : t -> string
