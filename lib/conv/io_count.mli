(** Off-chip I/O accounting in elements.

    Every dataflow kernel in this library both computes its result and tallies
    the global-memory traffic its on-chip schedule would incur; the tallies
    are compared against the Section 5 analytic formulas and the Section 4
    lower bounds in tests and benches. *)

type t = { loads : float; stores : float }

val zero : t
val add : t -> t -> t
val total : t -> float
val scale : float -> t -> t

val make : loads:float -> stores:float -> t

val bytes : ?elem_size:int -> t -> float
(** Total traffic in bytes, default 4-byte elements. *)

val pp : Format.formatter -> t -> unit
