(** Convolution layer parameters.

    The single source of truth for problem sizes used by every kernel, the
    lower-bound formulas, the GPU cost model and the CNN model zoo.  Tensors
    follow NCHW: input [batch; c_in; h_in; w_in], weights
    [c_out; c_in; k_h; k_w], output [batch; c_out; h_out; w_out]. *)

type t = {
  batch : int;
  c_in : int;
  h_in : int;
  w_in : int;
  c_out : int;
  k_h : int;
  k_w : int;
  stride : int;
  pad_h : int;
  pad_w : int;
  groups : int;  (** grouped convolution: depthwise when [groups = c_in] *)
}

val make :
  ?batch:int -> ?pad:int -> ?pad_h:int -> ?pad_w:int -> ?stride:int -> ?groups:int ->
  c_in:int -> h_in:int -> w_in:int ->
  c_out:int -> k_h:int -> k_w:int -> unit -> t
(** Smart constructor with [batch = 1], [pad = 0], [stride = 1] defaults;
    [pad] sets both axes, [pad_h]/[pad_w] override it per axis (needed by
    factorised 1x7 / 7x1 convolutions).
    Raises [Invalid_argument] when the output would be empty or a parameter is
    non-positive. *)

val square : ?batch:int -> ?pad:int -> ?stride:int -> ?groups:int -> c_in:int -> size:int -> c_out:int -> k:int -> unit -> t
(** Square image, square kernel shorthand used throughout the experiments. *)

val channels_per_group : t -> int
(** [c_in / groups], the input channels each filter sees. *)

val filters_per_group : t -> int
(** [c_out / groups]. *)

val h_out : t -> int
val w_out : t -> int
(** [(h_in + 2*pad_h - k_h) / stride + 1] and the width analogue. *)

val output_elems : t -> int
val input_elems : t -> int
val weight_elems : t -> int
(** Element counts including the batch dimension (weights excluded). *)

val flops : t -> float
(** Multiply-add count times two: [2 * k_h*k_w*c_in * output_elems]. *)

val reuse : t -> float
(** The paper's maximum input-reuse factor [R = k_h*k_w / stride^2]
    (Equation 13). *)

val input_shape : t -> Tensor.Shape.t
val weight_shape : t -> Tensor.Shape.t
val output_shape : t -> Tensor.Shape.t

val canonical : t -> string
(** Stable canonical rendering: every field explicit (normalized defaults
    included), fixed [batch,cin,hin,win,cout,kh,kw,stride,padh,padw,groups]
    order, no whitespace.  Semantically equal specs — whatever constructor
    path or request field order produced them — canonicalize to byte-equal
    strings, so hashes of the canonical form are stable cache keys. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
