let check_shapes spec ~input ~weights =
  if not (Tensor.Shape.equal (Tensor.shape input) (Conv_spec.input_shape spec)) then
    invalid_arg "Direct.run: input shape mismatch";
  if not (Tensor.Shape.equal (Tensor.shape weights) (Conv_spec.weight_shape spec)) then
    invalid_arg "Direct.run: weight shape mismatch"

let run (spec : Conv_spec.t) ~input ~weights =
  check_shapes spec ~input ~weights;
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let inp = Tensor.data input and wgt = Tensor.data weights and out = Tensor.data output in
  let { Conv_spec.batch; c_in; h_in; w_in; c_out; k_h; k_w; stride; pad_h; pad_w; groups } =
    spec
  in
  let cpg = c_in / groups and fpg = c_out / groups in
  for n = 0 to batch - 1 do
    for co = 0 to c_out - 1 do
      let group = co / fpg in
      for ho = 0 to h_out - 1 do
        for wo = 0 to w_out - 1 do
          let acc = ref 0.0 in
          for dc = 0 to cpg - 1 do
            let ci = (group * cpg) + dc in
            let in_base = (((n * c_in) + ci) * h_in) * w_in in
            let w_base = (((co * cpg) + dc) * k_h) * k_w in
            for kh = 0 to k_h - 1 do
              let h = (ho * stride) + kh - pad_h in
              if h >= 0 && h < h_in then
                for kw = 0 to k_w - 1 do
                  let w = (wo * stride) + kw - pad_w in
                  if w >= 0 && w < w_in then
                    acc :=
                      !acc
                      +. (inp.(in_base + (h * w_in) + w) *. wgt.(w_base + (kh * k_w) + kw))
                done
            done
          done;
          out.((((((n * c_out) + co) * h_out) + ho) * w_out) + wo) <- !acc
        done
      done
    done
  done;
  output

let random_problem rng spec =
  let input = Tensor.random rng (Conv_spec.input_shape spec) in
  let weights = Tensor.random rng (Conv_spec.weight_shape spec) in
  (input, weights)
