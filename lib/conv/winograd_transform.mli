(** Winograd / Cook-Toom minimal filtering transforms F(e, r).

    [make ~e ~r] produces the three matrices of the 1D identity

    {v y = At ( (G g) . (Bt d) ) v}

    where [d] is an input segment of length [alpha = e + r - 1], [g] an r-tap
    filter, [y] the [e] correlation outputs [y_i = sum_k d_(i+k) g_k], and
    [.] the elementwise product.  The 2D algorithm nests the identity:
    [Y = At ((G g Gt) . (Bt D B)) A].

    Construction (derived in DESIGN.md's terms): the correlation operator is
    the transpose of the linear convolution operator, and Cook-Toom expresses
    linear convolution as interpolation of a polynomial product evaluated at
    [alpha - 1] finite points plus infinity.  Transposing
    [conv = W . diag(E_g g) . E_u] gives [corr = E_u^T . diag(E_g g) . W^T],
    hence [At = E_u^T], [G = E_g], [Bt = W^T] with

    - [E_u]: evaluation of a degree-(e-1) polynomial at the points
      (Vandermonde rows, infinity row = leading coefficient);
    - [E_g]: the same for degree-(r-1);
    - [W]: coefficient-extraction of the Lagrange basis of the finite points
      (columns [0..alpha-2]) and of the master polynomial
      [M(x) = prod (x - b_i)] (last column).

    All entries are generated with exact rational arithmetic, so the identity
    holds to floating-point rounding for any [e >= 1], [r >= 1]. *)

type t = {
  e : int;  (** output tile size *)
  r : int;  (** filter taps *)
  alpha : int;  (** e + r - 1 *)
  at : float array;  (** e x alpha, row-major *)
  g : float array;  (** alpha x r *)
  bt : float array;  (** alpha x alpha *)
}

val make : e:int -> r:int -> t
(** Raises [Invalid_argument] when [e < 1], [r < 1] or [e + r - 1 > 10]
    (larger tiles need more interpolation points than the built-in list and
    are numerically useless anyway). *)

val points : int -> Rational.t array
(** First [n] finite interpolation points, the standard sequence
    0, 1, -1, 2, -2, 1/2, -1/2, 3, -3. *)

val transform_kernel : t -> float array -> float array
(** [transform_kernel t g] maps an [r x r] kernel tile to the [alpha x alpha]
    transformed kernel [G g G^T]. *)

val transform_input : t -> float array -> float array
(** [transform_input t d] maps an [alpha x alpha] input tile to
    [B^T d B]. *)

val transform_output : t -> float array -> float array
(** [transform_output t m] maps an [alpha x alpha] product accumulator to the
    [e x e] output tile [A^T m A]. *)

val corr1d : t -> d:float array -> g:float array -> float array
(** The 1D identity, mainly for tests: correlate a length-[alpha] segment
    with an [r]-tap filter through the transforms. *)
