type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let of_int n = { num = n; den = 1 }
let num t = t.num
let den t = t.den

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let equal a b = a.num = b.num && a.den = b.den
let is_zero a = a.num = 0
let compare a b = compare (a.num * b.den) (b.num * a.den)
let to_float a = float_of_int a.num /. float_of_int a.den
let to_string a = if a.den = 1 then string_of_int a.num else Printf.sprintf "%d/%d" a.num a.den
