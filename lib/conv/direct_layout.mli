(** Layout-parameterised direct convolution.

    The search domain's layout axis (Table 1: CHW, CWH, HWC) changes how the
    activation tensor is linearised in memory.  This kernel executes the
    convolution against an input packed in any of the three layouts, so the
    layout axis is exercised by real data movement — the GPU cost model's
    coalescing term then prices the same choice analytically. *)

val pack_input : Tensor.Layout.t -> Conv_spec.t -> Tensor.t -> float array
(** [pack_input layout spec input] re-linearises an NCHW input tensor into
    the given per-image layout (batch-major: image [n] occupies the [n]-th
    contiguous chunk). *)

val unpack_to_nchw : Tensor.Layout.t -> Conv_spec.t -> float array -> Tensor.t
(** Inverse of [pack_input]. *)

val run :
  layout:Tensor.Layout.t -> Conv_spec.t -> packed_input:float array ->
  weights:Tensor.t -> Tensor.t
(** Convolution over a packed input; output is standard NCHW.  Must agree
    with [Direct.run] on the unpacked data. *)
