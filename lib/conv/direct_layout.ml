let image_elems (spec : Conv_spec.t) = spec.c_in * spec.h_in * spec.w_in

let pack_input layout (spec : Conv_spec.t) input =
  if not (Tensor.Shape.equal (Tensor.shape input) (Conv_spec.input_shape spec)) then
    invalid_arg "Direct_layout.pack_input: input shape mismatch";
  let data = Tensor.data input in
  let per_image = image_elems spec in
  let packed = Array.make (spec.batch * per_image) 0.0 in
  for n = 0 to spec.batch - 1 do
    for c = 0 to spec.c_in - 1 do
      for h = 0 to spec.h_in - 1 do
        for w = 0 to spec.w_in - 1 do
          let src = (((((n * spec.c_in) + c) * spec.h_in) + h) * spec.w_in) + w in
          let dst =
            Tensor.Layout.index layout ~c ~h ~w ~channels:spec.c_in ~height:spec.h_in
              ~width:spec.w_in
          in
          packed.((n * per_image) + dst) <- data.(src)
        done
      done
    done
  done;
  packed

let unpack_to_nchw layout (spec : Conv_spec.t) packed =
  let per_image = image_elems spec in
  if Array.length packed <> spec.batch * per_image then
    invalid_arg "Direct_layout.unpack_to_nchw: size mismatch";
  let out = Tensor.create (Conv_spec.input_shape spec) in
  let data = Tensor.data out in
  for n = 0 to spec.batch - 1 do
    for c = 0 to spec.c_in - 1 do
      for h = 0 to spec.h_in - 1 do
        for w = 0 to spec.w_in - 1 do
          let dst = (((((n * spec.c_in) + c) * spec.h_in) + h) * spec.w_in) + w in
          let src =
            Tensor.Layout.index layout ~c ~h ~w ~channels:spec.c_in ~height:spec.h_in
              ~width:spec.w_in
          in
          data.(dst) <- packed.((n * per_image) + src)
        done
      done
    done
  done;
  out

let run ~layout (spec : Conv_spec.t) ~packed_input ~weights =
  if spec.groups <> 1 then invalid_arg "Direct_layout.run: grouped convolution unsupported";
  let per_image = image_elems spec in
  if Array.length packed_input <> spec.batch * per_image then
    invalid_arg "Direct_layout.run: packed input size mismatch";
  if not (Tensor.Shape.equal (Tensor.shape weights) (Conv_spec.weight_shape spec)) then
    invalid_arg "Direct_layout.run: weight shape mismatch";
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let wgt = Tensor.data weights and out = Tensor.data output in
  let { Conv_spec.batch; c_in; h_in; w_in; c_out; k_h; k_w; stride; pad_h; pad_w; _ } = spec in
  for n = 0 to batch - 1 do
    let image_base = n * per_image in
    for co = 0 to c_out - 1 do
      let out_base = (((n * c_out) + co) * h_out) * w_out in
      for ho = 0 to h_out - 1 do
        for wo = 0 to w_out - 1 do
          let acc = ref 0.0 in
          for ci = 0 to c_in - 1 do
            let w_base = (((co * c_in) + ci) * k_h) * k_w in
            for kh = 0 to k_h - 1 do
              let h = (ho * stride) + kh - pad_h in
              if h >= 0 && h < h_in then
                for kw = 0 to k_w - 1 do
                  let w = (wo * stride) + kw - pad_w in
                  if w >= 0 && w < w_in then begin
                    let idx =
                      Tensor.Layout.index layout ~c:ci ~h ~w ~channels:c_in ~height:h_in
                        ~width:w_in
                    in
                    acc :=
                      !acc +. (packed_input.(image_base + idx) *. wgt.(w_base + (kh * k_w) + kw))
                  end
                done
            done
          done;
          out.(out_base + (ho * w_out) + wo) <- !acc
        done
      done
    done
  done;
  output
