let lower (spec : Conv_spec.t) ~input ~batch =
  let { Conv_spec.c_in; h_in; w_in; k_h; k_w; stride; pad_h; pad_w; _ } = spec in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let rows = c_in * k_h * k_w and cols = h_out * w_out in
  let m = Array.make (rows * cols) 0.0 in
  let inp = Tensor.data input in
  let in_image = ((batch * c_in) * h_in) * w_in in
  for ci = 0 to c_in - 1 do
    for kh = 0 to k_h - 1 do
      for kw = 0 to k_w - 1 do
        let row = (((ci * k_h) + kh) * k_w) + kw in
        for ho = 0 to h_out - 1 do
          let h = (ho * stride) + kh - pad_h in
          if h >= 0 && h < h_in then
            for wo = 0 to w_out - 1 do
              let w = (wo * stride) + kw - pad_w in
              if w >= 0 && w < w_in then
                m.((row * cols) + (ho * w_out) + wo) <-
                  inp.(in_image + (ci * h_in * w_in) + (h * w_in) + w)
            done
        done
      done
    done
  done;
  m

let run ?(mb = 64) ?(nb = 64) (spec : Conv_spec.t) ~input ~weights =
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let cpg = spec.c_in / spec.groups and fpg = spec.c_out / spec.groups in
  let rows = spec.c_in * spec.k_h * spec.k_w in
  let group_rows = cpg * spec.k_h * spec.k_w in
  let cols = h_out * w_out in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let out = Tensor.data output in
  let wgt = Tensor.data weights in
  for n = 0 to spec.batch - 1 do
    let lowered = lower spec ~input ~batch:n in
    for g = 0 to spec.groups - 1 do
      (* The lowered matrix is channel-major, so a group's rows are the
         contiguous band [g * group_rows, (g+1) * group_rows). *)
      let band = Array.sub lowered (g * group_rows * cols) (group_rows * cols) in
      let wband = Array.sub wgt (g * fpg * group_rows) (fpg * group_rows) in
      let product = Gemm.blocked ~mb ~nb ~m:fpg ~k:group_rows ~n:cols wband band in
      Array.blit product 0 out (((n * spec.c_out) + (g * fpg)) * cols) (fpg * cols)
    done
  done;
  ignore rows;
  output

let io ?(mb = 64) ?(nb = 64) (spec : Conv_spec.t) =
  let fb = float_of_int spec.batch in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let rows = spec.c_in * spec.k_h * spec.k_w in
  let group_rows = (spec.c_in / spec.groups) * spec.k_h * spec.k_w in
  let fpg = spec.c_out / spec.groups in
  let cols = h_out * w_out in
  let lowered = float_of_int (rows * cols) in
  (* Materialisation: read each image once, write its lowered matrix. *)
  let materialise_loads = float_of_int (Conv_spec.input_elems spec) /. fb in
  let materialise_stores = lowered in
  (* The batch folds into one GEMM of width batch*cols (as cuDNN's batched
     lowering does), so the weight-panel reads amortise across the batch —
     the reason batching narrows the library's gap to the tuned dataflow. *)
  let gemm =
    float_of_int spec.groups
    *. Gemm.io_volume_blocked ~mb ~nb ~m:fpg ~k:group_rows ~n:(spec.batch * cols)
  in
  let out_elems = float_of_int (spec.c_out * h_out * w_out) in
  Io_count.make
    ~loads:((fb *. materialise_loads) +. gemm -. (fb *. out_elems))
    ~stores:(fb *. (materialise_stores +. out_elems))
