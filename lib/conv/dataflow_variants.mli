(** Alternative dataflow disciplines for the direct convolution.

    The paper derives that the *output-stationary* discipline (partial sums
    resident, inputs streamed channel-by-channel) minimises traffic because
    the highest-order lower-bound term belongs to the summation step.  These
    variants implement the two classical alternatives from the accelerator
    literature (cf. Eyeriss's taxonomy) so the choice can be ablated with
    real numbers rather than argument:

    - {e weight-stationary}: a [z]-kernel slice of weights stays on chip;
      the input streams by; partial sums are written out and re-read once per
      input-channel chunk of size [cc];
    - {e input-stationary}: an input tile stays on chip while all [C_out]
      kernels stream by; partial sums spill the same way.

    Both compute real results (tested against [Direct.run]) and tally their
    traffic; the ablation bench shows output-stationary winning whenever
    [R > 1], by the factor the theory predicts. *)

type result = { output : Tensor.t; io : Io_count.t }

val weight_stationary :
  Conv_spec.t -> z:int -> channel_chunk:int -> input:Tensor.t -> weights:Tensor.t -> result
(** [z] kernels resident; inputs processed in chunks of [channel_chunk]
    channels, with output partial sums written back and re-read between
    chunks. *)

val input_stationary :
  Conv_spec.t -> x:int -> y:int -> channel_chunk:int -> input:Tensor.t -> weights:Tensor.t ->
  result
(** An [x' * y' * channel_chunk] input tile resident; all kernels stream;
    partial sums spill between channel chunks. *)

val io_weight_stationary : Conv_spec.t -> z:int -> channel_chunk:int -> Io_count.t
val io_input_stationary : Conv_spec.t -> x:int -> y:int -> channel_chunk:int -> Io_count.t
(** Analytic tallies matching the executions. *)
