(** im2col + GEMM convolution — the "image2col method" the paper compares
    against as cuDNN's direct-family implementation (Section 7).

    The input is materialised into a [c_in*k_h*k_w] x [h_out*w_out] matrix per
    batch element, then multiplied by the [c_out] x [c_in*k_h*k_w] weight
    matrix.  [io] reports the traffic of that strategy, including the
    materialisation writes and re-reads that the paper's dataflow avoids. *)

val lower : Conv_spec.t -> input:Tensor.t -> batch:int -> float array
(** The im2col matrix of one batch element, row-major
    [c_in*k_h*k_w] x [h_out*w_out], zero-filled where padding reaches outside
    the image. *)

val run : ?mb:int -> ?nb:int -> Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Full convolution through im2col and blocked GEMM; must agree with
    [Direct.run] to rounding. *)

val io : ?mb:int -> ?nb:int -> Conv_spec.t -> Io_count.t
(** Analytic traffic model: reading the image once, writing and re-reading
    the lowered matrix, streaming weights per column block and writing the
    output. *)
