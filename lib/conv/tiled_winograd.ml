type tile = { x : int; y : int; z : int }

type result = { output : Tensor.t; io : Io_count.t; blocks : int }

type block = { wo0 : int; ho0 : int; co0 : int; bw : int; bh : int; bz : int }

let check ~e (spec : Conv_spec.t) ~tile =
  if not (Winograd.supported spec) then
    invalid_arg "Tiled_winograd: stride 1 and square kernel required";
  if tile.x < 1 || tile.y < 1 || tile.z < 1 then invalid_arg "Tiled_winograd: non-positive tile";
  if tile.x mod e <> 0 || tile.y mod e <> 0 then
    invalid_arg "Tiled_winograd: tile.x and tile.y must be multiples of e"

let fold_blocks (spec : Conv_spec.t) ~tile ~init f =
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let acc = ref init in
  let co0 = ref 0 in
  while !co0 < spec.c_out do
    let bz = min tile.z (spec.c_out - !co0) in
    let ho0 = ref 0 in
    while !ho0 < h_out do
      let bh = min tile.y (h_out - !ho0) in
      let wo0 = ref 0 in
      while !wo0 < w_out do
        let bw = min tile.x (w_out - !wo0) in
        acc := f !acc { wo0 = !wo0; ho0 = !ho0; co0 = !co0; bw; bh; bz };
        wo0 := !wo0 + tile.x
      done;
      ho0 := !ho0 + tile.y
    done;
    co0 := !co0 + tile.z
  done;
  !acc

(* Per-channel in-bounds input region of a block: [x' * y'] with
   x' = bw + r - 1, intersected with the image (stride is 1). *)
let region_loads (spec : Conv_spec.t) b =
  let r = spec.k_h in
  let tw = b.bw + r - 1 and th = b.bh + r - 1 in
  let w0 = b.wo0 - spec.pad_w and h0 = b.ho0 - spec.pad_h in
  let clip lo len bound = max 0 (min (lo + len) bound - max lo 0) in
  clip w0 tw spec.w_in * clip h0 th spec.h_in

let block_io (spec : Conv_spec.t) b =
  let r = spec.k_h in
  let input_loads = region_loads spec b * spec.c_in in
  let weight_loads = r * r * spec.c_in * b.bz in
  Io_count.make
    ~loads:(float_of_int (input_loads + weight_loads))
    ~stores:(float_of_int (b.bw * b.bh * b.bz))

(* Same per-axis factorisation as [Tiled_direct.io_only] (stride is 1). *)
let axis_clip_sum ~extent ~tile_dim ~halo ~pad ~bound =
  let clip lo len = max 0 (min (lo + len) bound - max lo 0) in
  let total = ref 0 and count = ref 0 and o0 = ref 0 in
  while !o0 < extent do
    let b = min tile_dim (extent - !o0) in
    total := !total + clip (!o0 - pad) (b + halo - 1);
    incr count;
    o0 := !o0 + tile_dim
  done;
  (!total, !count)

let io_only ~e (spec : Conv_spec.t) ~tile =
  check ~e spec ~tile;
  let r = spec.k_h in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let sum_w, nx =
    axis_clip_sum ~extent:w_out ~tile_dim:tile.x ~halo:r ~pad:spec.pad_w ~bound:spec.w_in
  in
  let sum_h, ny =
    axis_clip_sum ~extent:h_out ~tile_dim:tile.y ~halo:r ~pad:spec.pad_h ~bound:spec.h_in
  in
  let nz = (spec.c_out + tile.z - 1) / tile.z in
  let input_loads = float_of_int (sum_w * sum_h * spec.c_in * nz) in
  let weight_loads = float_of_int (r * r * spec.c_in * spec.c_out * nx * ny) in
  let stores = float_of_int (w_out * h_out * spec.c_out) in
  Io_count.scale
    (float_of_int spec.batch)
    (Io_count.make ~loads:(input_loads +. weight_loads) ~stores)

let working_set ~e (spec : Conv_spec.t) ~tile =
  check ~e spec ~tile;
  let r = spec.k_h in
  let alpha = e + r - 1 in
  let temporaries = 2 * alpha * alpha * tile.x * tile.y * tile.z / (e * e) in
  temporaries + (alpha * alpha) + (r * r * tile.z)

let enumerate_blocks ~e (spec : Conv_spec.t) ~tile =
  check ~e spec ~tile;
  let acc = fold_blocks spec ~tile ~init:[] (fun acc b -> b :: acc) in
  Array.of_list (List.rev acc)

let block_io_of = block_io

let compute_block ~e ~transform:tf (spec : Conv_spec.t) ~input ~weights ~output
    ~batch_index:n b =
  let r = spec.k_h in
  let alpha = tf.Winograd_transform.alpha in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let { Conv_spec.c_in; h_in; w_in; c_out; pad_h; pad_w; _ } = spec in
  let inp = Tensor.data input and wgt = Tensor.data weights and out = Tensor.data output in
  let patch = Array.make (alpha * alpha) 0.0 in
  let tiles_h = (b.bh + e - 1) / e and tiles_w = (b.bw + e - 1) / e in
  (* One transformed-domain accumulator per (tile, z) pair: the first of the
     paper's two temporary arrays; [patch] plays the second. *)
  let accs =
    Array.init (tiles_h * tiles_w * b.bz) (fun _ -> Array.make (alpha * alpha) 0.0)
  in
  for ci = 0 to c_in - 1 do
    let in_base = (((n * c_in) + ci) * h_in) * w_in in
    for ty = 0 to tiles_h - 1 do
      for tx = 0 to tiles_w - 1 do
        let h0 = b.ho0 + (ty * e) - pad_h and w0 = b.wo0 + (tx * e) - pad_w in
        for dh = 0 to alpha - 1 do
          let h = h0 + dh in
          for dw = 0 to alpha - 1 do
            let w = w0 + dw in
            patch.((dh * alpha) + dw) <-
              (if h >= 0 && h < h_in && w >= 0 && w < w_in then
                 inp.(in_base + (h * w_in) + w)
               else 0.0)
          done
        done;
        let v = Winograd_transform.transform_input tf patch in
        for dz = 0 to b.bz - 1 do
          let co = b.co0 + dz in
          let kernel = Array.sub wgt (((co * c_in) + ci) * r * r) (r * r) in
          let u = Winograd_transform.transform_kernel tf kernel in
          let acc_tile = accs.((((ty * tiles_w) + tx) * b.bz) + dz) in
          for p = 0 to (alpha * alpha) - 1 do
            acc_tile.(p) <- acc_tile.(p) +. (u.(p) *. v.(p))
          done
        done
      done
    done
  done;
  (* Channel sweep finished: output-transform every accumulator. *)
  for ty = 0 to tiles_h - 1 do
    for tx = 0 to tiles_w - 1 do
      for dz = 0 to b.bz - 1 do
        let co = b.co0 + dz in
        let out_base = (((n * c_out) + co) * h_out) * w_out in
        let acc_tile = accs.((((ty * tiles_w) + tx) * b.bz) + dz) in
        let result = Winograd_transform.transform_output tf acc_tile in
        for oy = 0 to e - 1 do
          let ho = b.ho0 + (ty * e) + oy in
          if ho < h_out && oy + (ty * e) < b.bh then
            for ox = 0 to e - 1 do
              let wo = b.wo0 + (tx * e) + ox in
              if wo < w_out && ox + (tx * e) < b.bw then
                out.(out_base + (ho * w_out) + wo) <- result.((oy * e) + ox)
            done
        done
      done
    done
  done

let run ~e (spec : Conv_spec.t) ~tile ~input ~weights =
  check ~e spec ~tile;
  let tf = Winograd_transform.make ~e ~r:spec.k_h in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let blocks = enumerate_blocks ~e spec ~tile in
  let io = ref Io_count.zero in
  for n = 0 to spec.batch - 1 do
    Array.iter
      (fun b ->
        compute_block ~e ~transform:tf spec ~input ~weights ~output ~batch_index:n b;
        io := Io_count.add !io (block_io spec b))
      blocks
  done;
  { output; io = !io; blocks = spec.batch * Array.length blocks }
