type result = { output : Tensor.t; io : Io_count.t }

let ceil_div a b = (a + b - 1) / b

(* --- weight-stationary --- *)

let io_weight_stationary (spec : Conv_spec.t) ~z ~channel_chunk =
  if z < 1 || channel_chunk < 1 then invalid_arg "Dataflow_variants: bad parameters";
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let groups = ceil_div spec.c_out z in
  let chunks = ceil_div spec.c_in channel_chunk in
  let fb = float_of_int spec.batch in
  (* Every weight is loaded exactly once (that is the discipline's point); the
     input is re-streamed once per kernel group; partial sums round-trip once
     per channel chunk beyond the first. *)
  let weight_loads = float_of_int (Conv_spec.weight_elems spec) in
  let input_loads =
    fb *. float_of_int (spec.c_in * spec.h_in * spec.w_in * groups)
  in
  let out_block = float_of_int (h_out * w_out * spec.c_out) in
  let partial_stores = fb *. out_block *. float_of_int chunks in
  let partial_loads = fb *. out_block *. float_of_int (chunks - 1) in
  Io_count.make ~loads:(weight_loads +. input_loads +. partial_loads) ~stores:partial_stores

let weight_stationary (spec : Conv_spec.t) ~z ~channel_chunk ~input ~weights =
  if spec.groups <> 1 then invalid_arg "Dataflow_variants: grouped convolution unsupported";
  let io = io_weight_stationary spec ~z ~channel_chunk in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let inp = Tensor.data input and wgt = Tensor.data weights and out = Tensor.data output in
  let { Conv_spec.batch; c_in; h_in; w_in; c_out; k_h; k_w; stride; pad_h; pad_w; _ } = spec in
  for n = 0 to batch - 1 do
    let co0 = ref 0 in
    while !co0 < c_out do
      let zc = min z (c_out - !co0) in
      let ci0 = ref 0 in
      while !ci0 < c_in do
        let cc = min channel_chunk (c_in - !ci0) in
        for dz = 0 to zc - 1 do
          let co = !co0 + dz in
          let out_base = (((n * c_out) + co) * h_out) * w_out in
          for dc = 0 to cc - 1 do
            let ci = !ci0 + dc in
            let in_base = (((n * c_in) + ci) * h_in) * w_in in
            let w_base = (((co * c_in) + ci) * k_h) * k_w in
            for ho = 0 to h_out - 1 do
              for wo = 0 to w_out - 1 do
                let acc = ref out.(out_base + (ho * w_out) + wo) in
                for kh = 0 to k_h - 1 do
                  let h = (ho * stride) + kh - pad_h in
                  if h >= 0 && h < h_in then
                    for kw = 0 to k_w - 1 do
                      let w = (wo * stride) + kw - pad_w in
                      if w >= 0 && w < w_in then
                        acc :=
                          !acc +. (inp.(in_base + (h * w_in) + w) *. wgt.(w_base + (kh * k_w) + kw))
                    done
                done;
                out.(out_base + (ho * w_out) + wo) <- !acc
              done
            done
          done
        done;
        ci0 := !ci0 + cc
      done;
      co0 := !co0 + z
    done
  done;
  { output; io }

(* --- input-stationary --- *)

let io_input_stationary (spec : Conv_spec.t) ~x ~y ~channel_chunk =
  if x < 1 || y < 1 || channel_chunk < 1 then invalid_arg "Dataflow_variants: bad parameters";
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let chunks = ceil_div spec.c_in channel_chunk in
  let fb = float_of_int spec.batch in
  let clip lo len bound = max 0 (min (lo + len) bound - max lo 0) in
  (* Per spatial tile: its input halo region loaded once per channel (the
     tile is the resident datum), every kernel streamed once per channel
     chunk, and the tile's partial outputs round-tripping between chunks. *)
  let input_loads = ref 0.0 and weight_loads = ref 0.0 in
  let partial_stores = ref 0.0 and partial_loads = ref 0.0 in
  let ho0 = ref 0 in
  while !ho0 < h_out do
    let bh = min y (h_out - !ho0) in
    let th = ((bh - 1) * spec.stride) + spec.k_h in
    let rows = clip ((!ho0 * spec.stride) - spec.pad_h) th spec.h_in in
    let wo0 = ref 0 in
    while !wo0 < w_out do
      let bw = min x (w_out - !wo0) in
      let tw = ((bw - 1) * spec.stride) + spec.k_w in
      let cols = clip ((!wo0 * spec.stride) - spec.pad_w) tw spec.w_in in
      input_loads := !input_loads +. float_of_int (rows * cols * spec.c_in);
      weight_loads := !weight_loads +. float_of_int (Conv_spec.weight_elems spec);
      let out_tile = float_of_int (bw * bh * spec.c_out) in
      partial_stores := !partial_stores +. (out_tile *. float_of_int chunks);
      partial_loads := !partial_loads +. (out_tile *. float_of_int (chunks - 1));
      wo0 := !wo0 + x
    done;
    ho0 := !ho0 + y
  done;
  Io_count.make
    ~loads:(fb *. (!input_loads +. !weight_loads +. !partial_loads))
    ~stores:(fb *. !partial_stores)

let input_stationary (spec : Conv_spec.t) ~x ~y ~channel_chunk ~input ~weights =
  if spec.groups <> 1 then invalid_arg "Dataflow_variants: grouped convolution unsupported";
  let io = io_input_stationary spec ~x ~y ~channel_chunk in
  (* The arithmetic is the output-stationary block compute over full-channel
     blocks with a z-extent covering all kernels: identical sums, different
     accounting. *)
  let tile = { Tiled_direct.x; y; z = spec.c_out } in
  let r = Tiled_direct.run spec ~tile ~input ~weights in
  { output = r.output; io }
