(** Library entry point: convolution algorithms and their I/O accounting. *)

module Conv_spec = Conv_spec
module Rational = Rational
module Winograd_transform = Winograd_transform
module Direct = Direct
module Gemm = Gemm
module Im2col = Im2col
module Winograd = Winograd
module Io_count = Io_count
module Tiled_direct = Tiled_direct
module Tiled_winograd = Tiled_winograd
module Parallel_exec = Parallel_exec
module Fft_conv = Fft_conv
module Direct_layout = Direct_layout
module Dataflow_variants = Dataflow_variants
