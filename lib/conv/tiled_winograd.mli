(** The near I/O-optimal Winograd dataflow (Section 5.3).

    The output image is cut into [x * y * z] sub-blocks; each block is
    processed as [x*y / e^2] small [e x e x z] tiles.  Per channel stage an
    [(e+r-1) x (e+r-1)] input tile and the matching [r^2] weights are loaded,
    transformed, multiplied, and accumulated into the two on-chip temporary
    arrays the paper's step-3 analysis singles out; only after the channel
    sweep is the accumulated [Pi] pushed through the output transform.

    Input halos are shared inside a block: the block loads its
    [(x + r - 1) * (y + r - 1)] input region once per channel, which is what
    gives the [x*y*C_in] term of Equation 22. *)

type tile = { x : int; y : int; z : int }

type result = { output : Tensor.t; io : Io_count.t; blocks : int }

val run : e:int -> Conv_spec.t -> tile:tile -> input:Tensor.t -> weights:Tensor.t -> result
(** Executes the dataflow; result must match [Direct.run] to rounding.
    Requires [Winograd.supported spec], [tile.x] and [tile.y] multiples of
    [e]; raises [Invalid_argument] otherwise. *)

val io_only : e:int -> Conv_spec.t -> tile:tile -> Io_count.t
(** Traffic tally without computing. *)

val working_set : e:int -> Conv_spec.t -> tile:tile -> int
(** On-chip elements: the [2 * (e+r-1)^2 / e^2 * x*y*z] temporary arrays plus
    one stage's input tile and weights (Section 5.3's
    [2*(e+r-1)^2/e^2 * xyz ~= S/N_p] sizing). *)

(** {2 Block-level building blocks} — see [Tiled_direct]; blocks write
    disjoint output regions and may run concurrently. *)

type block

val enumerate_blocks : e:int -> Conv_spec.t -> tile:tile -> block array
val block_io_of : Conv_spec.t -> block -> Io_count.t

val compute_block :
  e:int -> transform:Winograd_transform.t ->
  Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> output:Tensor.t ->
  batch_index:int -> block -> unit
(** [transform] must be [Winograd_transform.make ~e ~r:spec.k_h]; it is
    passed in so concurrent blocks share one precomputed instance. *)
