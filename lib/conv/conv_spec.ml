type t = {
  batch : int;
  c_in : int;
  h_in : int;
  w_in : int;
  c_out : int;
  k_h : int;
  k_w : int;
  stride : int;
  pad_h : int;
  pad_w : int;
  groups : int;
}

let h_out t = ((t.h_in + (2 * t.pad_h) - t.k_h) / t.stride) + 1
let w_out t = ((t.w_in + (2 * t.pad_w) - t.k_w) / t.stride) + 1

let make ?(batch = 1) ?(pad = 0) ?pad_h ?pad_w ?(stride = 1) ?(groups = 1) ~c_in ~h_in
    ~w_in ~c_out ~k_h ~k_w () =
  let pad_h = Option.value pad_h ~default:pad in
  let pad_w = Option.value pad_w ~default:pad in
  let t = { batch; c_in; h_in; w_in; c_out; k_h; k_w; stride; pad_h; pad_w; groups } in
  if groups < 1 || c_in mod groups <> 0 || c_out mod groups <> 0 then
    invalid_arg "Conv_spec.make: groups must divide both channel counts";
  if batch < 1 || c_in < 1 || h_in < 1 || w_in < 1 || c_out < 1 || k_h < 1 || k_w < 1 then
    invalid_arg "Conv_spec.make: non-positive parameter";
  if stride < 1 then invalid_arg "Conv_spec.make: non-positive stride";
  if pad < 0 || pad_h < 0 || pad_w < 0 then invalid_arg "Conv_spec.make: negative padding";
  if h_out t < 1 || w_out t < 1 then invalid_arg "Conv_spec.make: empty output";
  t

let square ?batch ?pad ?stride ?groups ~c_in ~size ~c_out ~k () =
  make ?batch ?pad ?stride ?groups ~c_in ~h_in:size ~w_in:size ~c_out ~k_h:k ~k_w:k ()

let channels_per_group t = t.c_in / t.groups
let filters_per_group t = t.c_out / t.groups

let output_elems t = t.batch * t.c_out * h_out t * w_out t
let input_elems t = t.batch * t.c_in * t.h_in * t.w_in
let weight_elems t = t.c_out * (t.c_in / t.groups) * t.k_h * t.k_w

let flops t =
  2.0 *. float_of_int (t.k_h * t.k_w * (t.c_in / t.groups)) *. float_of_int (output_elems t)

let reuse t = float_of_int (t.k_h * t.k_w) /. float_of_int (t.stride * t.stride)

let input_shape t = Tensor.Shape.of_list [ t.batch; t.c_in; t.h_in; t.w_in ]
let weight_shape t = Tensor.Shape.of_list [ t.c_out; t.c_in / t.groups; t.k_h; t.k_w ]
let output_shape t = Tensor.Shape.of_list [ t.batch; t.c_out; h_out t; w_out t ]

(* Canonical form: every field explicit, fixed order, no defaults elided.
   Two specs are semantically equal exactly when their canonical strings are
   byte-equal, whichever constructor path (or request-line field order)
   produced them — the foundation of content-addressed result caching. *)
let canonical t =
  Printf.sprintf
    "batch=%d,cin=%d,hin=%d,win=%d,cout=%d,kh=%d,kw=%d,stride=%d,padh=%d,padw=%d,groups=%d"
    t.batch t.c_in t.h_in t.w_in t.c_out t.k_h t.k_w t.stride t.pad_h t.pad_w t.groups

let to_string t =
  let groups = if t.groups = 1 then "" else Printf.sprintf ", g=%d" t.groups in
  Printf.sprintf "conv[n=%d %dx%dx%d -> %d, k=%dx%d, s=%d, p=%dx%d%s]" t.batch t.c_in t.h_in
    t.w_in t.c_out t.k_h t.k_w t.stride t.pad_h t.pad_w groups

let pp fmt t = Format.pp_print_string fmt (to_string t)
