(** FFT-based convolution — the third algorithm family (cuDNN's
    CUDNN_CONVOLUTION_FWD_ALGO_FFT).

    Each input channel is transformed once and reused across all output
    channels; kernels are zero-padded, transformed, and multiply-accumulated
    in the frequency domain; one inverse transform per output channel
    recovers the spatial result.  Cross-correlation is obtained from the
    convolution theorem by conjugating the kernel spectrum.

    Stride > 1 is handled by computing the stride-1 result and subsampling
    (correct, if wasteful — exactly what FFT convolution does on GPUs, which
    is why libraries avoid it for strided layers). *)

val run : Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Must agree with [Direct.run] to rounding. *)

val transform_size : Conv_spec.t -> int * int
(** Power-of-two FFT extents [(rows, cols)] covering the padded image. *)

val io : Conv_spec.t -> Io_count.t
(** Analytic traffic model of a non-fused GPU FFT pipeline: forward
    transforms of inputs and kernels written to global memory as complex
    pairs, the frequency-domain batched product, and inverse transforms —
    used by the simulated library baseline. *)
