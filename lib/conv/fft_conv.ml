let padded_extents (spec : Conv_spec.t) =
  (spec.h_in + (2 * spec.pad_h), spec.w_in + (2 * spec.pad_w))

let transform_size (spec : Conv_spec.t) =
  let hp, wp = padded_extents spec in
  (Fft.Transform.next_power_of_two hp, Fft.Transform.next_power_of_two wp)

(* Zero-padded complex plane of one image channel. *)
let plane_of_channel (spec : Conv_spec.t) ~data ~base ~rows ~cols =
  let plane = Array.make (rows * cols) Complex.zero in
  for h = 0 to spec.h_in - 1 do
    for w = 0 to spec.w_in - 1 do
      plane.(((h + spec.pad_h) * cols) + w + spec.pad_w) <-
        { Complex.re = data.(base + (h * spec.w_in) + w); im = 0.0 }
    done
  done;
  plane

let plane_of_kernel (spec : Conv_spec.t) ~data ~base ~rows ~cols =
  let plane = Array.make (rows * cols) Complex.zero in
  for kh = 0 to spec.k_h - 1 do
    for kw = 0 to spec.k_w - 1 do
      plane.((kh * cols) + kw) <- { Complex.re = data.(base + (kh * spec.k_w) + kw); im = 0.0 }
    done
  done;
  plane

let run (spec : Conv_spec.t) ~input ~weights =
  if spec.groups <> 1 then invalid_arg "Fft_conv.run: grouped convolution unsupported";
  let rows, cols = transform_size spec in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let { Conv_spec.batch; c_in; c_out; stride; _ } = spec in
  let inp = Tensor.data input and wgt = Tensor.data weights in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let out = Tensor.data output in
  (* Kernel spectra, shared across the batch. *)
  let kf =
    Array.init (c_out * c_in) (fun idx ->
        let plane =
          plane_of_kernel spec ~data:wgt ~base:(idx * spec.k_h * spec.k_w) ~rows ~cols
        in
        Fft.Transform.fft2 plane ~rows ~cols;
        plane)
  in
  let acc = Array.make (rows * cols) Complex.zero in
  for n = 0 to batch - 1 do
    (* Input spectra, shared across output channels. *)
    let xf =
      Array.init c_in (fun ci ->
          let base = (((n * c_in) + ci) * spec.h_in) * spec.w_in in
          let plane = plane_of_channel spec ~data:inp ~base ~rows ~cols in
          Fft.Transform.fft2 plane ~rows ~cols;
          plane)
    in
    for co = 0 to c_out - 1 do
      Array.fill acc 0 (rows * cols) Complex.zero;
      for ci = 0 to c_in - 1 do
        let x = xf.(ci) and k = kf.((co * c_in) + ci) in
        (* Correlation theorem: multiply by the conjugate kernel spectrum. *)
        for p = 0 to (rows * cols) - 1 do
          acc.(p) <- Complex.add acc.(p) (Complex.mul x.(p) (Complex.conj k.(p)))
        done
      done;
      Fft.Transform.ifft2 acc ~rows ~cols;
      let out_base = (((n * c_out) + co) * h_out) * w_out in
      for ho = 0 to h_out - 1 do
        for wo = 0 to w_out - 1 do
          out.(out_base + (ho * w_out) + wo) <- acc.(((ho * stride) * cols) + (wo * stride)).re
        done
      done
    done
  done;
  output

let io (spec : Conv_spec.t) =
  let rows, cols = transform_size spec in
  let plane = float_of_int (rows * cols) in
  let complex_plane = 2.0 *. plane in
  let fb = float_of_int spec.batch in
  let cin = float_of_int spec.c_in and cout = float_of_int spec.c_out in
  (* Forward input FFTs: read the image, write complex spectra; kernel FFTs
     amortise across the batch; the frequency product re-reads both spectra
     and writes one accumulator per output channel; inverse FFTs read it back
     and write the spatial output. *)
  let input_read = float_of_int (Conv_spec.input_elems spec) in
  let spectra_write = fb *. complex_plane *. cin in
  let kernel_read = float_of_int (Conv_spec.weight_elems spec) in
  let kernel_spectra = complex_plane *. cin *. cout in
  let product_reads = fb *. ((complex_plane *. cin *. cout) +. (kernel_spectra /. fb)) in
  let acc_write = fb *. complex_plane *. cout in
  let inverse_read = acc_write in
  let output_write = float_of_int (Conv_spec.output_elems spec) in
  Io_count.make
    ~loads:(input_read +. kernel_read +. product_reads +. inverse_read)
    ~stores:(spectra_write +. kernel_spectra +. acc_write +. output_write)
