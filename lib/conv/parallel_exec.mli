(** Multicore execution of the tiled dataflows.

    The Section-5 dataflows are embarrassingly parallel across output
    sub-blocks — the paper's [N_p] processors each own disjoint blocks and
    their partial sums never interact.  These entry points run the same
    block arithmetic as [Tiled_direct.run] / [Tiled_winograd.run] but fan the
    blocks out over the persistent worker pool ([Util.Pool.default], via
    [Util.Parallel.for_]), so repeated kernel launches pay no per-call
    [Domain.spawn]; outputs land in disjoint regions of the result tensor so
    no synchronisation beyond the final completion latch is needed.

    The I/O tallies are identical to the sequential runs by construction
    ([io_only] is deterministic in the tile), which the tests check alongside
    numerical equality with the sequential kernels. *)

val tiled_direct :
  ?domains:int ->
  Conv_spec.t -> tile:Tiled_direct.tile -> input:Tensor.t -> weights:Tensor.t ->
  Tiled_direct.result
(** Parallel [Tiled_direct.run]; [domains] defaults to
    [Util.Parallel.recommended_domains ()]. *)

val tiled_winograd :
  ?domains:int ->
  e:int ->
  Conv_spec.t -> tile:Tiled_winograd.tile -> input:Tensor.t -> weights:Tensor.t ->
  Tiled_winograd.result
(** Parallel [Tiled_winograd.run]. *)

val direct :
  ?domains:int -> Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Reference direct convolution parallelised over output channels. *)
