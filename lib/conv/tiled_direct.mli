(** The near I/O-optimal direct-convolution dataflow (Section 5.2).

    Output-stationary tiling: the output image is cut into [x * y * z]
    sub-blocks (width, height, output channels) that live in on-chip memory
    for their whole lifetime.  Inputs arrive as [x' * y'] tiles at one channel
    at a time ([alpha] channels per stage; the paper argues [alpha = 1] and
    the ablation bench sweeps it) together with the matching [k_h * k_w]
    weights of the [z] kernels, each loaded exactly once per block.

    [run] really computes the convolution — it is checked against
    [Direct.run] — while tallying the off-chip traffic of the schedule, which
    the tests compare with [Q_DC] (Equation 21 via [Core.Dataflow_cost]) and
    the Theorem 4.12 lower bound. *)

type tile = { x : int; y : int; z : int }
(** Output sub-block: [x] columns, [y] rows, [z] output channels. *)

type result = { output : Tensor.t; io : Io_count.t; blocks : int }

val input_tile_w : Conv_spec.t -> int -> int
(** [x' = (x-1)*stride + k_w], the input-tile width feeding [x] outputs. *)

val input_tile_h : Conv_spec.t -> int -> int

val run :
  ?alpha:int -> Conv_spec.t -> tile:tile -> input:Tensor.t -> weights:Tensor.t -> result
(** Executes the dataflow.  [alpha] is the number of input channels loaded
    per stage (default 1).  Tiles are clamped at image borders.  Raises
    [Invalid_argument] on a non-positive tile. *)

val io_only : ?alpha:int -> Conv_spec.t -> tile:tile -> Io_count.t
(** The traffic tally of [run] without touching any data — used by the GPU
    cost model, where only the volume matters. *)

val working_set : Conv_spec.t -> tile:tile -> alpha:int -> int
(** On-chip elements the schedule keeps live: the output block, one input
    stage tile and one weight stage slice — what must fit in shared memory. *)

(** {2 Block-level building blocks}

    Used by [Parallel_exec] to fan the same arithmetic out over domains;
    blocks write disjoint output regions, so they can run concurrently. *)

type block
(** One output sub-block (clamped at image borders). *)

val enumerate_blocks : Conv_spec.t -> tile:tile -> block array
(** All blocks of one image, in the sequential schedule's order. *)

val block_io_of : Conv_spec.t -> block -> Io_count.t
(** Off-chip traffic of one block. *)

val compute_block :
  ?alpha:int ->
  Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> output:Tensor.t ->
  batch_index:int -> block -> unit
(** Executes one block's partial sums into [output]. *)
