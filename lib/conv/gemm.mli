(** Cache-blocked general matrix multiply.

    The GEMM backing the im2col convolution path.  Blocking parameters are
    exposed so the cuDNN-style baseline in [gpu_sim] and the ablation benches
    can model different library tilings. *)

val naive : a:float array -> b:float array -> m:int -> k:int -> n:int -> float array
(** Triple loop, for small sizes and as a test oracle. *)

val blocked :
  ?mb:int -> ?nb:int -> ?kb:int ->
  m:int -> k:int -> n:int -> float array -> float array -> float array
(** [blocked ~m ~k ~n a b]: row-major [m]x[k] times [k]x[n] with a
    register-friendly loop order over [mb] x [nb] x [kb] blocks (defaults
    64/64/64).  The matrices are the trailing positional arguments so the
    optional blocking parameters stay erasable. *)

val io_volume_blocked : mb:int -> nb:int -> m:int -> k:int -> n:int -> float
(** Off-chip traffic (elements) of the blocked algorithm under the standard
    model where each [mb x k] panel of A is read once per column-block of B
    and vice versa: [m*k*(n/nb) + k*n*(m/mb) + m*n]. *)
