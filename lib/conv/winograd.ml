let supported (spec : Conv_spec.t) =
  spec.stride = 1 && spec.k_h = spec.k_w && spec.groups = 1

let tiles_along e extent = (extent + e - 1) / e

let run ~e (spec : Conv_spec.t) ~input ~weights =
  if not (supported spec) then invalid_arg "Winograd.run: stride 1 and square kernel required";
  if e < 1 then invalid_arg "Winograd.run: e must be positive";
  let r = spec.k_h in
  let tf = Winograd_transform.make ~e ~r in
  let alpha = tf.alpha in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let { Conv_spec.batch; c_in; h_in; w_in; c_out; pad_h; pad_w; _ } = spec in
  let output = Tensor.create (Conv_spec.output_shape spec) in
  let inp = Tensor.data input and wgt = Tensor.data weights and out = Tensor.data output in
  (* Transformed kernels: U.(co * c_in + ci) is alpha x alpha. *)
  let u =
    Array.init (c_out * c_in) (fun idx ->
        let kernel = Array.sub wgt (idx * r * r) (r * r) in
        Winograd_transform.transform_kernel tf kernel)
  in
  let tiles_h = tiles_along e h_out and tiles_w = tiles_along e w_out in
  let patch = Array.make (alpha * alpha) 0.0 in
  let acc = Array.make (alpha * alpha) 0.0 in
  for n = 0 to batch - 1 do
    for th = 0 to tiles_h - 1 do
      for tw = 0 to tiles_w - 1 do
        let h0 = (th * e) - pad_h and w0 = (tw * e) - pad_w in
        (* Transformed input tiles for this position, one per channel. *)
        let v =
          Array.init c_in (fun ci ->
              let base = (((n * c_in) + ci) * h_in) * w_in in
              for dh = 0 to alpha - 1 do
                let h = h0 + dh in
                for dw = 0 to alpha - 1 do
                  let w = w0 + dw in
                  patch.((dh * alpha) + dw) <-
                    (if h >= 0 && h < h_in && w >= 0 && w < w_in then
                       inp.(base + (h * w_in) + w)
                     else 0.0)
                done
              done;
              Winograd_transform.transform_input tf patch)
        in
        for co = 0 to c_out - 1 do
          Array.fill acc 0 (alpha * alpha) 0.0;
          for ci = 0 to c_in - 1 do
            let uk = u.((co * c_in) + ci) and vi = v.(ci) in
            for p = 0 to (alpha * alpha) - 1 do
              acc.(p) <- acc.(p) +. (uk.(p) *. vi.(p))
            done
          done;
          let tile = Winograd_transform.transform_output tf acc in
          let out_base = (((n * c_out) + co) * h_out) * w_out in
          for oy = 0 to e - 1 do
            let ho = (th * e) + oy in
            if ho < h_out then
              for ox = 0 to e - 1 do
                let wo = (tw * e) + ox in
                if wo < w_out then out.(out_base + (ho * w_out) + wo) <- tile.((oy * e) + ox)
              done
          done
        done
      done
    done
  done;
  output

let multiplications ~e (spec : Conv_spec.t) =
  let r = spec.k_h in
  let alpha = e + r - 1 in
  let h_out = Conv_spec.h_out spec and w_out = Conv_spec.w_out spec in
  let tiles = tiles_along e h_out * tiles_along e w_out in
  float_of_int (spec.batch * tiles * alpha * alpha * spec.c_in * spec.c_out)

let direct_multiplications (spec : Conv_spec.t) =
  float_of_int (spec.k_h * spec.k_w * spec.c_in) *. float_of_int (Conv_spec.output_elems spec)
