module Q = Rational

type t = {
  e : int;
  r : int;
  alpha : int;
  at : float array;
  g : float array;
  bt : float array;
}

let point_list =
  [| 0; 1; -1; 2; -2 |]
  |> Array.map Q.of_int
  |> fun ints -> Array.append ints [| Q.make 1 2; Q.make (-1) 2; Q.of_int 3; Q.of_int (-3) |]

let points n =
  if n > Array.length point_list then invalid_arg "Winograd_transform.points: too many";
  Array.sub point_list 0 n

(* Polynomials as coefficient arrays, lowest degree first. *)
let poly_mul p q =
  let out = Array.make (Array.length p + Array.length q - 1) Q.zero in
  Array.iteri
    (fun i pi ->
      Array.iteri (fun j qj -> out.(i + j) <- Q.add out.(i + j) (Q.mul pi qj)) q)
    p;
  out

let poly_scale s = Array.map (Q.mul s)

(* Power with exponent >= 0 on rationals. *)
let q_pow base n =
  let rec go acc n = if n = 0 then acc else go (Q.mul acc base) (n - 1) in
  go Q.one n

(* Evaluation matrix of a degree-(cols-1) polynomial at the alpha-1 finite
   points plus infinity: rows 0..alpha-2 are Vandermonde rows, the last row
   extracts the leading coefficient. *)
let evaluation_matrix ~alpha ~cols pts =
  let m = Array.make (alpha * cols) Q.zero in
  for i = 0 to alpha - 2 do
    for j = 0 to cols - 1 do
      m.((i * cols) + j) <- q_pow pts.(i) j
    done
  done;
  m.(((alpha - 1) * cols) + cols - 1) <- Q.one;
  m

(* Interpolation matrix W: column i < alpha-1 holds the coefficients of the
   Lagrange basis polynomial of point i; the last column holds those of the
   master polynomial M(x) = prod (x - b_j). *)
let interpolation_matrix ~alpha pts =
  let w = Array.make (alpha * alpha) Q.zero in
  let set_col col coeffs =
    Array.iteri (fun k c -> w.((k * alpha) + col) <- c) coeffs
  in
  for i = 0 to alpha - 2 do
    let numerator = ref [| Q.one |] in
    let denominator = ref Q.one in
    for j = 0 to alpha - 2 do
      if j <> i then begin
        numerator := poly_mul !numerator [| Q.neg pts.(j); Q.one |];
        denominator := Q.mul !denominator (Q.sub pts.(i) pts.(j))
      end
    done;
    set_col i (poly_scale (Q.div Q.one !denominator) !numerator)
  done;
  let master = ref [| Q.one |] in
  for j = 0 to alpha - 2 do
    master := poly_mul !master [| Q.neg pts.(j); Q.one |]
  done;
  set_col (alpha - 1) !master;
  w

let to_floats = Array.map Q.to_float

let transpose_q a ~rows ~cols =
  let out = Array.make (rows * cols) Q.zero in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      out.((j * rows) + i) <- a.((i * cols) + j)
    done
  done;
  out

let make ~e ~r =
  if e < 1 || r < 1 then invalid_arg "Winograd_transform.make: e and r must be positive";
  let alpha = e + r - 1 in
  if alpha - 1 > Array.length point_list then
    invalid_arg "Winograd_transform.make: tile too large";
  let pts = points (max 0 (alpha - 1)) in
  let e_u = evaluation_matrix ~alpha ~cols:e pts in
  let e_g = evaluation_matrix ~alpha ~cols:r pts in
  let w = interpolation_matrix ~alpha pts in
  {
    e;
    r;
    alpha;
    at = to_floats (transpose_q e_u ~rows:alpha ~cols:e);
    g = to_floats e_g;
    bt = to_floats (transpose_q w ~rows:alpha ~cols:alpha);
  }

(* C = M * X * M^T for a square tile X (n x n) and matrix M (m x n):
   result is m x m. *)
let sandwich m ~rows ~cols x =
  let mx = Tensor.Ops.matmul ~a:m ~b:x ~m:rows ~k:cols ~n:cols in
  (* (M X) M^T: multiply by transpose via matmul_t with bt = m. *)
  Tensor.Ops.matmul_t ~a:mx ~bt:m ~m:rows ~k:cols ~n:rows

let transform_kernel t kernel =
  assert (Array.length kernel = t.r * t.r);
  sandwich t.g ~rows:t.alpha ~cols:t.r kernel

let transform_input t tile =
  assert (Array.length tile = t.alpha * t.alpha);
  sandwich t.bt ~rows:t.alpha ~cols:t.alpha tile

let transform_output t acc =
  assert (Array.length acc = t.alpha * t.alpha);
  sandwich t.at ~rows:t.e ~cols:t.alpha acc

let corr1d t ~d ~g =
  assert (Array.length d = t.alpha && Array.length g = t.r);
  let gg = Tensor.Ops.matmul ~a:t.g ~b:g ~m:t.alpha ~k:t.r ~n:1 in
  let dd = Tensor.Ops.matmul ~a:t.bt ~b:d ~m:t.alpha ~k:t.alpha ~n:1 in
  let s = Array.map2 ( *. ) gg dd in
  Tensor.Ops.matmul ~a:t.at ~b:s ~m:t.e ~k:t.alpha ~n:1
