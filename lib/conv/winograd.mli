(** Winograd convolution F(e x e, r x r) (Section 2.3).

    Stride must be 1 and the kernel square; output tiles that overhang the
    image are computed on zero-padded input and cropped.  Per-channel products
    are accumulated in the transformed domain, which is algebraically the same
    as the paper's step-3 channel summation of [Lambda] followed by one final
    [A]-transform. *)

val supported : Conv_spec.t -> bool
(** Stride 1 and square kernel.  ([Winograd_transform.make] additionally
    bounds [e + k - 1] by its interpolation-point budget and raises if it is
    exceeded.) *)

val run : e:int -> Conv_spec.t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Raises [Invalid_argument] when [supported spec] is false for this [e].
    Must agree with [Direct.run] to rounding. *)

val multiplications : e:int -> Conv_spec.t -> float
(** Number of elementwise multiplications performed (the quantity Winograd
    minimises): [tiles * (e+r-1)^2 * c_in * c_out * batch]. *)

val direct_multiplications : Conv_spec.t -> float
(** Multiplications of the direct method, for speed-of-light comparisons. *)
