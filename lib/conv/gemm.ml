let naive ~a ~b ~m ~k ~n = Tensor.Ops.matmul ~a ~b ~m ~k ~n

let blocked ?(mb = 64) ?(nb = 64) ?(kb = 64) ~m ~k ~n a b =
  assert (Array.length a = m * k && Array.length b = k * n);
  if mb < 1 || nb < 1 || kb < 1 then invalid_arg "Gemm.blocked: non-positive block";
  let c = Array.make (m * n) 0.0 in
  let i0 = ref 0 in
  while !i0 < m do
    let i1 = min (!i0 + mb) m in
    let p0 = ref 0 in
    while !p0 < k do
      let p1 = min (!p0 + kb) k in
      let j0 = ref 0 in
      while !j0 < n do
        let j1 = min (!j0 + nb) n in
        for i = !i0 to i1 - 1 do
          for p = !p0 to p1 - 1 do
            let aip = a.((i * k) + p) in
            if aip <> 0.0 then begin
              let brow = p * n and crow = i * n in
              for j = !j0 to j1 - 1 do
                c.(crow + j) <- c.(crow + j) +. (aip *. b.(brow + j))
              done
            end
          done
        done;
        j0 := j1
      done;
      p0 := p1
    done;
    i0 := i1
  done;
  c

let io_volume_blocked ~mb ~nb ~m ~k ~n =
  let fm = float_of_int m and fk = float_of_int k and fn = float_of_int n in
  let col_blocks = Float.of_int ((n + nb - 1) / nb) in
  let row_blocks = Float.of_int ((m + mb - 1) / mb) in
  (fm *. fk *. col_blocks) +. (fk *. fn *. row_blocks) +. (fm *. fn)
