type t = { loads : float; stores : float }

let zero = { loads = 0.0; stores = 0.0 }
let add a b = { loads = a.loads +. b.loads; stores = a.stores +. b.stores }
let total t = t.loads +. t.stores
let scale s t = { loads = s *. t.loads; stores = s *. t.stores }
let make ~loads ~stores = { loads; stores }
let bytes ?(elem_size = 4) t = float_of_int elem_size *. total t

let pp fmt t =
  Format.fprintf fmt "{loads=%.0f; stores=%.0f; total=%.0f}" t.loads t.stores (total t)
