let t_of_2s ?grid ~steps s = Genfun.t_of_s ?grid steps (2.0 *. s)

let lower_bound ?grid ~steps ~num_vertices s =
  let t = t_of_2s ?grid ~steps s in
  Float.max 0.0 (s *. ((num_vertices /. t) -. 1.0))
