(** Configuration explorer: parallel random walks guided by the cost model
    (Section 6.2's "Searching Process").

    [explore] launches [n_walks] walks of [walk_len] steps.  Each walk starts
    from a provided promising configuration (or a fresh sample when starts
    run out), proposes a random in-domain neighbour per step, moves greedily
    when the predicted cost improves, and with a small escape probability
    otherwise.  The distinct endpoints plus best-visited configurations are
    returned as the next measurement batch, most promising first.

    The walks are independent and run in parallel over [Util.Pool.default]:
    a single draw from [rng] seeds one private stream per walk, per-walk
    results are merged in walk order, and cost ties are broken on the
    config key — so for a fixed [rng] state the returned ranking is
    bit-identical at every [domains] value (including 1). *)

val explore :
  ?n_walks:int ->
  ?walk_len:int ->
  ?escape_probability:float ->
  ?domains:int ->
  ?avoid:(Config.t -> bool) ->
  space:Search_space.t ->
  model:Cost_model.t ->
  rng:Util.Rng.t ->
  starts:Config.t list ->
  unit ->
  Config.t list
(** Defaults: 12 walks of 40 steps, escape probability 0.05, [domains =
    Util.Parallel.recommended_domains ()].  The result list is deduplicated
    and sorted by predicted cost (ties on the configuration key).
    [avoid] filters configurations out of the returned ranking — the tuner
    passes its known-failed set so a config that cannot launch is never
    proposed again.  The filter applies after the walks, so the walk
    trajectories (and hence determinism) are unaffected by it. *)
