(** Configuration explorer: parallel random walks guided by the cost model
    (Section 6.2's "Searching Process").

    [explore] launches [n_walks] walks of [walk_len] steps.  Each walk starts
    from a provided promising configuration (or a fresh sample when starts
    run out), proposes a random in-domain neighbour per step, moves greedily
    when the predicted cost improves, and with a small escape probability
    otherwise.  The distinct endpoints plus best-visited configurations are
    returned as the next measurement batch, most promising first. *)

val explore :
  ?n_walks:int ->
  ?walk_len:int ->
  ?escape_probability:float ->
  space:Search_space.t ->
  model:Cost_model.t ->
  rng:Util.Rng.t ->
  starts:Config.t list ->
  unit ->
  Config.t list
(** Defaults: 12 walks of 40 steps, escape probability 0.05.  The result list
    is deduplicated and sorted by predicted cost. *)
