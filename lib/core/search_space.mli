(** The configuration searching domain (Section 6.2, Table 1).

    A space enumerates the tunable axes for one (architecture, layer,
    algorithm) triple:

    - tile extents are divisors of the output extents (for Winograd,
      multiples of [e] as well);
    - thread extents are divisors of the tile extents, bounded by the block
      thread limit;
    - unroll in {1,2,4,8}, vector width in {1,2,4}, three layouts, double
      buffering on/off;
    - the working set must fit a shared-memory budget of at most half an SM
      (so two blocks stay resident — Table 1's [S_b <= S_sm / 2]).

    With [pruned = true] (the paper's ATE) the optimality condition cuts the
    domain down: [x y / (R z)] within a factor-2 slack, [z <= sqrt(S_b / R)]
    and [x y <= sqrt(S_b R)].  With [pruned = false] the space is the full
    TVM-style domain.  [size] is the exact cardinality, reported in
    Table 2. *)

type t

val make : ?pruned:bool -> Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> t
(** Default [pruned = true].  Raises [Invalid_argument] when no valid
    configuration exists (never happens for the experiment layers). *)

val spec : t -> Conv.Conv_spec.t
val arch : t -> Gpu_sim.Arch.t
val algorithm : t -> Config.algorithm
val pruned : t -> bool

val canonical_key :
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> pruned:bool -> string
(** Stable canonical identity of a domain before it is built: the
    architecture name, [Conv.Conv_spec.canonical] (every field explicit, in
    fixed order), the algorithm and the pruning flag.  Semantically equal
    (arch, spec, algorithm, pruned) quadruples canonicalize to byte-equal
    strings regardless of how the spec was constructed, so hashes of this
    string are content-addressed cache keys.  Cheap: does not enumerate the
    domain (usable even when [make] would find it empty). *)

val canonical : t -> string
(** [canonical_key (arch t) (spec t) (algorithm t) ~pruned:(pruned t)]. *)

val size : t -> float
(** Exact number of configurations in the domain. *)

val tile_candidates : t -> (int * int * int) array
(** The valid (x, y, z) tile triples. *)

type invalid =
  | Wrong_algorithm of { expected : Config.algorithm; got : Config.algorithm }
  | Tile_not_in_domain of { tile : int * int * int }
  | Threads_not_dividing of { tile : int * int * int; threads : int * int * int }
  | Threads_exceeded of { threads : int; max_threads_per_block : int }
  | Knob_out_of_domain of { knob : string; value : string }
  | Shmem_exceeded of { shmem_bytes : int; budget_bytes : int }
      (** Why a configuration is outside the domain, carrying the offending
          sizes (e.g. the working-set bytes versus the shared-memory budget)
          so callers can report them. *)

val validate : t -> Config.t -> (unit, invalid) result
(** Typed membership test: [Ok ()] iff the configuration is in the domain,
    otherwise the first violated constraint in checking order (algorithm,
    tile, thread divisibility, thread limit, knobs, shared memory). *)

val invalid_to_string : invalid -> string
(** Human-readable rendering including the offending sizes. *)

val mem : t -> Config.t -> bool
(** [mem s c = (validate s c = Ok ())] (used to validate neighbours). *)

val sample : t -> Util.Rng.t -> Config.t
(** Uniform over tile triples, then uniform over the remaining axes
    (conditioned on validity). *)

val neighbor : t -> Util.Rng.t -> Config.t -> Config.t
(** Random single-axis mutation that stays inside the domain — the step
    relation of the configuration explorer's random walks. *)

val iter_configs : t -> (Config.t -> unit) -> unit
(** Exhaustive enumeration of the domain (every valid configuration exactly
    once, except that double-buffered variants that do not fit shared memory
    are skipped).  Only tractable for small layers; used by tests to compare
    the tuner against the true optimum and by [size] sanity checks. *)

val config_for_tile : t -> int * int * int -> Config.t
(** The deterministic representative configuration for one tile triple of
    the domain: 256-ish threads capped at 16 per axis (falling back to a
    single thread when the product exceeds the block limit), unroll 4,
    vector width 2, CHW layout, no double buffering.  Valid whenever the
    triple comes from {!tile_candidates}.  This is what [Supervisor] ranks
    when degrading to an analytic configuration without measurements. *)

val default_config : t -> Config.t
(** A reasonable deterministic member: the optimality-guided tile of
    [Optimality.optimal_tile_*] (or the nearest valid triple), CHW layout,
    256-ish threads — the starting point shown to make pure heuristics
    insufficient. *)
