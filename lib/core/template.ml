let ceil_div a b = (a + b - 1) / b

let grid_dim (spec : Conv.Conv_spec.t) (cfg : Config.t) =
  let w_out = Conv.Conv_spec.w_out spec and h_out = Conv.Conv_spec.h_out spec in
  ( ceil_div w_out cfg.tile_x,
    ceil_div h_out cfg.tile_y,
    spec.batch * ceil_div spec.c_out cfg.tile_z )

let stage_count (spec : Conv.Conv_spec.t) (cfg : Config.t) =
  match cfg.algorithm with
  | Config.Direct_dataflow | Config.Winograd_dataflow _ ->
    Conv.Conv_spec.channels_per_group spec

let buffer_lines (spec : Conv.Conv_spec.t) (cfg : Config.t) =
  match cfg.algorithm with
  | Config.Direct_dataflow ->
    let x' = Conv.Tiled_direct.input_tile_w spec cfg.tile_x in
    let y' = Conv.Tiled_direct.input_tile_h spec cfg.tile_y in
    [
      Printf.sprintf "  __shared__ float out_block[%d][%d][%d];   // resident partial sums"
        cfg.tile_z cfg.tile_y cfg.tile_x;
      Printf.sprintf "  __shared__ float in_tile[%d][%d];          // one channel stage (x'=%d, y'=%d)"
        y' x' x' y';
      Printf.sprintf "  __shared__ float w_tile[%d][%d][%d];        // stage weights for z kernels"
        cfg.tile_z spec.k_h spec.k_w;
    ]
  | Config.Winograd_dataflow e ->
    let alpha = e + spec.k_h - 1 in
    let tiles = cfg.tile_x / e * (cfg.tile_y / e) in
    [
      Printf.sprintf
        "  __shared__ float acc[%d][%d][%d][%d];  // transformed accumulators (2 temp arrays/tile)"
        tiles cfg.tile_z alpha alpha;
      Printf.sprintf "  __shared__ float patch[%d][%d];           // stage input tile" alpha alpha;
      Printf.sprintf "  __shared__ float u[%d][%d][%d];            // stage transformed weights"
        cfg.tile_z alpha alpha;
    ]

let body_lines (spec : Conv.Conv_spec.t) (cfg : Config.t) =
  let stages = stage_count spec cfg in
  match cfg.algorithm with
  | Config.Direct_dataflow ->
    [
      Printf.sprintf "  for (int ci = 0; ci < %d; ++ci) {          // channel-sliding stages (alpha = 1)"
        stages;
      Printf.sprintf "    load_tile(in_tile, input[%s], ci);       // coalesced over %s"
        (Tensor.Layout.to_string cfg.layout)
        (if Tensor.Layout.innermost_is_width cfg.layout then "width" else "strided axis");
      "    load_weights(w_tile, ci);";
      "    __syncthreads();";
      Printf.sprintf
        "    #pragma unroll %d" cfg.unroll;
      Printf.sprintf
        "    for (own outputs: %dx%dx%d of tile / %dx%dx%d threads)"
        cfg.tile_x cfg.tile_y cfg.tile_z cfg.threads_x cfg.threads_y cfg.threads_z;
      Printf.sprintf "      out_block[z][y][x] += dot%d(in_tile, w_tile);  // %dx%d taps"
        cfg.vector_width spec.k_h spec.k_w;
      "    __syncthreads();";
      "  }";
      "  store_tile(output, out_block);                 // written back exactly once";
    ]
  | Config.Winograd_dataflow e ->
    [
      Printf.sprintf "  for (int ci = 0; ci < %d; ++ci) {          // channel sweep" stages;
      "    load_patch(patch, input, ci); transform_B(patch);";
      "    load_weights(u, ci); transform_G(u);";
      "    __syncthreads();";
      Printf.sprintf "    #pragma unroll %d" cfg.unroll;
      Printf.sprintf "    acc[tile][z] += patch .* u;               // F(%dx%d, %dx%d) products"
        e e spec.k_h spec.k_w;
      "    __syncthreads();";
      "  }";
      "  transform_A(acc); store_tiles(output, acc);    // inverse transform once per tile";
    ]

let render (arch : Gpu_sim.Arch.t) (spec : Conv.Conv_spec.t) (cfg : Config.t) =
  let kernel = Config.to_kernel arch spec cfg in
  let gx, gy, gz = grid_dim spec cfg in
  let name =
    match cfg.algorithm with
    | Config.Direct_dataflow -> "direct_dataflow_kernel"
    | Config.Winograd_dataflow e -> Printf.sprintf "winograd_f%d_dataflow_kernel" e
  in
  let header =
    [
      Printf.sprintf "// %s for %s" name (Conv.Conv_spec.to_string spec);
      Printf.sprintf "// grid (%d, %d, %d) x block (%d, %d, %d) = %d blocks, %d threads/block"
        gx gy gz cfg.threads_x cfg.threads_y cfg.threads_z kernel.blocks
        kernel.threads_per_block;
      Printf.sprintf "// shared memory: %d bytes/block%s" kernel.shmem_bytes_per_block
        (if cfg.double_buffer then " (double-buffered stages)" else "");
      Printf.sprintf "__global__ void %s(const float* input, const float* weights, float* output) {"
        name;
    ]
  in
  String.concat "\n" (header @ buffer_lines spec cfg @ body_lines spec cfg @ [ "}" ])
