(** Measurement journal — crash recovery for [Tuner.tune].

    One line per finished measurement, appended as soon as its result folds
    into the tuner state, following the [Tuning_log] format discipline
    (versioned, tab-separated, malformed lines dropped on load):

    {v j1 <TAB> compact-config <TAB> ok   <TAB> runtime-hex-float
       j1 <TAB> compact-config <TAB> fail <TAB> reason v}

    Runtimes use OCaml's ["%h"] hex-float notation for an *exact* round-trip
    — a resumed run must replay precisely the values the killed run
    recorded, or it would leave the uninterrupted run's trajectory and break
    the bit-identical-resume guarantee.  Keys are [Config.to_compact]
    encodings; since the tuner never measures a configuration twice, replay
    is a plain key lookup. *)

type outcome =
  | Measured of float  (** successful robust measurement, microseconds *)
  | Failed of string  (** measurement failed; the reason string *)

type entry = {
  key : string;  (** [Config.to_compact] of the measured configuration *)
  outcome : outcome;
}

val to_line : entry -> string
(** Raises [Invalid_argument] on empty keys, keys containing tabs or
    newlines, and non-finite or non-positive runtimes (reject on write). *)

val of_line : string -> entry option
(** [None] on malformed lines, bad keys and non-finite/non-positive
    runtimes (drop on read). *)

val append : string -> entry -> unit
(** Appends one entry, creating the file if needed. *)

val load : string -> entry list
(** Empty list when the file does not exist; malformed lines are dropped,
    so a journal truncated mid-line by a crash still loads. *)

val to_table : entry list -> (string, outcome) Hashtbl.t
(** Key-indexed view, later entries winning (there are no duplicate keys in
    a journal written by one tune run). *)
