(** Measurement journal — crash recovery for [Tuner.tune].

    One record per finished measurement, appended as soon as its result
    folds into the tuner state.  Since PR 4 the journal sits on
    [Util.Durable]: a versioned header line plus one CRC-32-framed record
    per measurement, so torn writes, truncations and bit flips are detected
    and salvaged instead of silently dropped.  Record payloads keep the PR 2
    format:

    {v j1 <TAB> compact-config <TAB> ok   <TAB> runtime-hex-float
       j1 <TAB> compact-config <TAB> fail <TAB> reason v}

    Runtimes use OCaml's ["%h"] hex-float notation for an *exact* round-trip
    — a resumed run must replay precisely the values the killed run
    recorded, or it would leave the uninterrupted run's trajectory and break
    the bit-identical-resume guarantee.  Keys are [Config.to_compact]
    encodings; since the tuner never measures a configuration twice, replay
    is a plain key lookup. *)

type outcome =
  | Measured of float  (** successful robust measurement, microseconds *)
  | Failed of string  (** measurement failed; the reason string *)

type entry = {
  key : string;  (** [Config.to_compact] of the measured configuration *)
  outcome : outcome;
}

val kind : string
(** The [Util.Durable] kind tag ("tune-journal"). *)

val to_line : entry -> string
(** The record *payload* (framing is added by [Util.Durable]).  Raises
    [Invalid_argument] on empty keys, keys containing tabs or newlines, and
    non-finite or non-positive runtimes (reject on write). *)

val of_line : string -> entry option
(** [None] on malformed payloads, bad keys and non-finite/non-positive
    runtimes (drop on read). *)

val append : string -> entry -> unit
(** Appends one framed record, creating the file (with header) if needed. *)

type load_result = {
  entries : entry list;  (** every salvaged, decodable record, in order *)
  dropped : int;
      (** records lost to corruption (framing level) or version drift
          (checksummed but undecodable payloads) *)
  reason : string option;  (** first corruption encountered, when any *)
}

val load : string -> load_result
(** Read-only salvage: zero entries when the file does not exist, the
    longest valid prefix otherwise.  Never raises on corrupt content.
    Prints one [warning:] line to stderr when [dropped > 0]. *)

val recover : string -> load_result
(** {!load}, plus an atomic rewrite of the file to the salvaged prefix when
    anything was dropped — so a resumed tuner appends to a clean journal
    instead of concatenating onto torn garbage.  This is what
    [Tuner.tune ~journal] uses. *)

val to_table : entry list -> (string, outcome) Hashtbl.t
(** Key-indexed view, later entries winning (there are no duplicate keys in
    a journal written by one tune run). *)
