(** Learning-based cost model (Section 6.1's "Cost Model" component).

    Wraps the gradient-boosted trees of [Gbt] around configuration feature
    vectors.  Targets are log-runtimes (multiplicative errors matter for
    ranking kernels).  Until the first [retrain] the model is uninformative
    and predicts a constant, so the tuner's first round is effectively random
    — matching how TVM's tuner bootstraps. *)

type t

val create : ?booster:Gbt.Booster.params -> Conv.Conv_spec.t -> t
(** [booster] (default [Gbt.Booster.default_params]) selects the training
    parameters every {!retrain} uses — in particular the
    [Gbt.Booster.split_method]. *)

val booster_params : t -> Gbt.Booster.params
(** The parameters fixed at {!create} time. *)

val add_measurement : t -> Config.t -> float -> unit
(** [add_measurement m config runtime_us] appends a training sample.  Raises
    [Invalid_argument] on non-finite or non-positive runtimes. *)

val add_failure : t -> Config.t -> unit
(** Appends the configuration as a penalized "invalid" sample at
    {!failure_penalty_us}: failed measurements steer the model away from
    their region instead of aborting the tuning round. *)

val failure_penalty_us : float
(** The penalty runtime (1e7 us) recorded for failed configurations — far
    above any measurable kernel so the model ranks them last. *)

val n_failures : t -> int
(** Number of penalized entries added via [add_failure]. *)

val n_samples : t -> int
(** Total training samples, including penalized failures. *)

val retrain : ?rng:Util.Rng.t -> ?domains:int -> t -> unit
(** Refits the booster on everything measured so far; no-op when empty.
    [domains] is forwarded to [Gbt.Booster.train]; the refit model is
    bit-identical at every domain count. *)

val predict_runtime_us : t -> Config.t -> float
(** Predicted runtime; a large constant before any training. *)

val trained : t -> bool

val snapshot : t -> string option
(** [Gbt.Booster.to_compact] of the current booster; [None] before the
    first {!retrain}.  Because training is deterministic and the encoding
    round-trips every float bit-for-bit, a snapshot taken after fitting on
    [n] samples stands in exactly for "retrain on those [n] samples". *)

val restore : t -> string -> bool
(** Installs a {!snapshot} as the current booster; [false] (and no change)
    when the snapshot does not parse.  Predictions after a successful
    restore are bit-identical to the model the snapshot was taken from. *)

val rmse_log : t -> float
(** Training RMSE in log-space, for diagnostics; 0 before training. *)
