(** The auto-tuning engine (Section 6.3).

    Iterates Model Training -> Configuration Searching -> Dataset Updating:
    each round retrains the cost model on everything measured, asks the
    explorer for a batch of promising unmeasured configurations, "measures"
    them on the simulated GPU, and stops when the best runtime has not
    improved for [patience] rounds (or the measurement budget runs out).

    With [pruned = true] the search runs over the optimality-condition domain
    (the paper's ATE); with [pruned = false] over the full space, which is
    the TVM-style comparator used in Table 2 and Figure 11.

    Fault tolerance: measurements go through the robust harness
    ([Gpu_sim.Measure.robust]) under an optional fault profile
    ([Gpu_sim.Faults]).  Configurations whose measurement fails enter the
    cost model as penalized entries ([Cost_model.add_failure]), are excluded
    from future explorer proposals, and count against the measurement
    budget; the batch they belonged to proceeds with its surviving members.
    With [journal] set, every finished measurement is appended to an
    on-disk [Tune_journal] and replayed on restart, so an interrupted tune
    resumed with identical parameters reproduces the uninterrupted run's
    result exactly. *)

type progress = { measurement : int; best_runtime_us : float }

type fault_stats = {
  failed : int;  (** configurations whose measurement failed *)
  launch_failures : int;  (** failed with [Launch_failure] *)
  deadlines_exceeded : int;  (** failed with [Deadline_exceeded] *)
  attempts : int;  (** total sampler invocations across all measurements *)
  retries : int;  (** backoff retries taken (= timeouts + nan_readings) *)
  timeouts : int;
  nan_readings : int;
  outliers_rejected : int;
  backoff_us : float;  (** total virtual backoff time charged *)
  replayed : int;  (** measurements satisfied from the journal, not the oracle *)
  journal_dropped : int;
      (** records lost to corruption when recovering the journal and its
          checkpoint file (0 without a journal, or when both were clean) *)
  model_restores : int;
      (** rounds whose cost model was restored from a checkpoint snapshot
          instead of retrained *)
  elapsed_us : float;
      (** total virtual time consumed by live measurements (sample runtimes,
          timeout costs and backoff delays) — what [deadline_us] budgets
          against; replayed trials are free *)
  pool_restarts : int;
      (** worker crashes recovered by the shared pool's watchdog during this
          run (0 unless hostile tasks crashed workers concurrently) *)
  last_failure : Gpu_sim.Measure.failure option;
      (** the most recent measurement failure, for supervisors classifying
          why a circuit breaker tripped *)
}
(** Counters are live-run accurate; replayed failures are folded in as
    launch failures (the journal stores only the reason string). *)

val no_faults : fault_stats
(** The all-zero statistics — what a fault-free, journal-free run reports
    (modulo [attempts], which counts successful samples too). *)

type stop_reason =
  | Converged  (** [patience] rounds without improvement *)
  | Trial_budget  (** [max_measurements] trials spent *)
  | Deadline_reached  (** virtual [deadline_us] budget exhausted *)
  | Breaker_tripped of int
      (** [max_consecutive_failures] hit; the payload is the consecutive
          failure count when the run stopped (checked at batch boundaries,
          so it can exceed the threshold by at most one batch) *)

val stop_reason_to_string : stop_reason -> string

type result = {
  best_config : Config.t;
  best_runtime_us : float;
  best_gflops : float;  (** nominal convolution flops over best runtime *)
  measurements : int;  (** configurations measured successfully *)
  converged_at : int;
      (** derived from the history via {!convergence_point}: the first
          measurement whose best-so-far is within 1% of the final best *)
  history : progress list;  (** best-so-far curve, oldest first *)
  space_size : float;
  faults : fault_stats;  (** failure/retry statistics for the whole run *)
  stop : stop_reason;  (** why the search loop exited *)
}

type tune_error = { stop : stop_reason; faults : fault_stats }
(** A tune that ended with no successful measurement at all: the deadline
    expired (or the breaker tripped, or the trial budget ran out) before
    any configuration measured successfully.  Carries the statistics so a
    supervisor can account for the spent budget and classify the cause. *)

val measure_config : ?seed:int -> Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.t -> float
(** One simulated measurement of a configuration (plain averaged oracle, no
    faults, no retries) — the legacy path used by library baselines. *)

val measure_config_robust :
  ?seed:int ->
  ?policy:Gpu_sim.Measure.policy ->
  ?faults:Gpu_sim.Faults.profile ->
  Gpu_sim.Arch.t ->
  Conv.Conv_spec.t ->
  Config.t ->
  (float, Gpu_sim.Measure.failure) Stdlib.result * Gpu_sim.Measure.attempt_log
(** One robust measurement: retry/backoff/deadline and outlier-rejecting
    aggregation per [policy] (default [Measure.default_policy]), faults
    injected per [faults] (default none).  A configuration that cannot
    lower to a launchable kernel returns [Launch_failure] instead of
    raising.  This is the path [tune] uses for every measurement. *)

val tune_outcome :
  ?seed:int ->
  ?batch_size:int ->
  ?patience:int ->
  ?max_measurements:int ->
  ?domains:int ->
  ?faults:Gpu_sim.Faults.profile ->
  ?measure_policy:Gpu_sim.Measure.policy ->
  ?journal:string ->
  ?checkpoint_every:int ->
  ?deadline_us:float ->
  ?max_consecutive_failures:int ->
  ?model_params:Gbt.Booster.params ->
  space:Search_space.t ->
  unit ->
  (result, tune_error) Stdlib.result
(** Defaults: seed 0, batches of 16, patience 8 rounds, at most 600
    trials, [domains = Util.Parallel.recommended_domains ()], no injected
    faults, [Measure.default_policy], no journal, checkpoints every 16
    trials, no deadline ([infinity]), no circuit breaker,
    [Gbt.Booster.default_params] for the cost model.

    [model_params] selects the cost model's booster parameters — pass
    [Gbt.Booster.hist_params] for histogram split finding.  Checkpoints
    record the split method's tag, and a resumed run only restores
    snapshots whose tag matches its own (mismatches retrain), so switching
    methods mid-journal is safe.

    [max_measurements] bounds *trials* (successes plus failures), so a
    hostile fault profile cannot spin the loop beyond the budget.

    [deadline_us] bounds the *virtual time* spent on live measurements
    (the sum of sample runtimes, timeout costs and backoff delays — see
    [faults.elapsed_us]).  The budget is enforced cooperatively at batch
    and task boundaries: once spent, remaining tasks in the in-flight
    batch are skipped ([Util.Pool.run_all_deadline]) and the loop stops,
    so a run can overshoot by at most the cost of already-started tasks.
    Skipped configurations consume no trials and are not journalled.
    Journal replays charge no virtual time, so a resumed run never
    re-pays for work already banked on disk.  The gate clock only
    advances in the sequential fold between batches, so skipping is
    all-or-nothing per batch and the result stays bit-identical at any
    [domains] value.

    [max_consecutive_failures] is a circuit breaker: after that many
    measurement failures in a row (successes reset the count; checked at
    batch boundaries) the loop stops with [Breaker_tripped] instead of
    burning the rest of its budget on a backend that has stopped
    answering.

    Returns [Error] only when the run stopped with no successful
    measurement at all; otherwise [Ok result] with [result.stop] saying
    why the loop exited.

    [journal] names an append-only [Tune_journal] file.  Outcomes found
    there are replayed instead of re-measured; every live measurement is
    appended as soon as it folds in.  Re-running an interrupted tune with
    the same parameters and journal path resumes it and returns a result
    identical to the uninterrupted run (fault counters differ only in
    [replayed], [model_restores] and live-attempt statistics).  The journal
    and its checkpoint sibling are durable files ([Util.Durable]): on
    resume they are salvaged to their longest valid prefix and repaired in
    place, so a kill *during* a write — a torn line, a truncation, even a
    flipped bit — costs at most the damaged suffix (re-measured live,
    reproducing the same values) and is reported in
    [result.faults.journal_dropped], never silently dropped.

    [checkpoint_every] throttles cost-model checkpoints: after a live
    retrain, the fitted booster is snapshotted to [journal ^ ".ckpt"]
    ([Model_checkpoint]) once at least that many trials have passed since
    the last snapshot.  On resume, a replayed round whose dataset size
    matches a surviving snapshot restores the model instead of retraining —
    bit-identical either way, because training is deterministic and
    snapshots round-trip exactly.  Ignored without [journal].

    Multicore: each round's explorer walks, the cost-model refit and the
    batch of simulated measurements fan out over [Util.Pool.default], while
    all stochastic draws and result folding stay sequential — for a fixed
    [seed] the result (best config, history, measurement count) is
    bit-identical at every [domains] value, under any fault profile
    (injection is a pure function of config, seed and attempt, never of
    scheduling). *)

val tune :
  ?seed:int ->
  ?batch_size:int ->
  ?patience:int ->
  ?max_measurements:int ->
  ?domains:int ->
  ?faults:Gpu_sim.Faults.profile ->
  ?measure_policy:Gpu_sim.Measure.policy ->
  ?journal:string ->
  ?checkpoint_every:int ->
  ?deadline_us:float ->
  ?max_consecutive_failures:int ->
  ?model_params:Gbt.Booster.params ->
  space:Search_space.t ->
  unit ->
  result
(** [tune_outcome] for callers that expect at least one measurement to
    succeed: unwraps [Ok] and raises [Failure] on [Error].  The historical
    entry point — supervised runs should prefer [tune_outcome]. *)

val convergence_point : final:float -> progress list -> int
(** First measurement (oldest-first history) whose best-so-far runtime is
    within 1% of [final]; 1 when the history is empty.  [result.converged_at]
    is defined as [convergence_point ~final:best_runtime_us history]. *)

val nominal_gflops : Conv.Conv_spec.t -> runtime_us:float -> float
(** The GFlops metric of Table 2/Figure 11: the layer's direct-convolution
    flop count divided by runtime (so faster Winograd kernels report higher
    effective rates, as TVM does). *)
