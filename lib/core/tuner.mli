(** The auto-tuning engine (Section 6.3).

    Iterates Model Training -> Configuration Searching -> Dataset Updating:
    each round retrains the cost model on everything measured, asks the
    explorer for a batch of promising unmeasured configurations, "measures"
    them on the simulated GPU, and stops when the best runtime has not
    improved for [patience] rounds (or the measurement budget runs out).

    With [pruned = true] the search runs over the optimality-condition domain
    (the paper's ATE); with [pruned = false] over the full space, which is
    the TVM-style comparator used in Table 2 and Figure 11. *)

type progress = { measurement : int; best_runtime_us : float }

type result = {
  best_config : Config.t;
  best_runtime_us : float;
  best_gflops : float;  (** nominal convolution flops over best runtime *)
  measurements : int;  (** total configurations measured *)
  converged_at : int;
      (** first measurement whose best-so-far is within 1% of the final best *)
  history : progress list;  (** best-so-far curve, oldest first *)
  space_size : float;
}

val measure_config : ?seed:int -> Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.t -> float
(** One simulated measurement of a configuration (averaged oracle). *)

val tune :
  ?seed:int ->
  ?batch_size:int ->
  ?patience:int ->
  ?max_measurements:int ->
  ?domains:int ->
  space:Search_space.t ->
  unit ->
  result
(** Defaults: seed 0, batches of 16, patience 8 rounds, at most 600
    measurements, [domains = Util.Parallel.recommended_domains ()].

    Multicore: each round's explorer walks, the cost-model refit and the
    batch of simulated measurements fan out over [Util.Pool.default], while
    all stochastic draws and result folding stay sequential — for a fixed
    [seed] the result (best config, history, measurement count) is
    bit-identical at every [domains] value. *)

val convergence_point : final:float -> progress list -> int
(** First measurement (oldest-first history) whose best-so-far runtime is
    within 1% of [final]; 1 when the history is empty. *)

val nominal_gflops : Conv.Conv_spec.t -> runtime_us:float -> float
(** The GFlops metric of Table 2/Figure 11: the layer's direct-convolution
    flop count divided by runtime (so faster Winograd kernels report higher
    effective rates, as TVM does). *)
