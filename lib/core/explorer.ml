let explore ?(n_walks = 12) ?(walk_len = 40) ?(escape_probability = 0.05) ~space ~model ~rng
    ~starts () =
  if n_walks < 1 || walk_len < 0 then invalid_arg "Explorer.explore";
  let starts = Array.of_list starts in
  let results = Hashtbl.create 64 in
  let remember cfg cost =
    let key = Config.to_string cfg in
    match Hashtbl.find_opt results key with
    | Some (_, best) when best <= cost -> ()
    | _ -> Hashtbl.replace results key (cfg, cost)
  in
  for walk = 0 to n_walks - 1 do
    let start =
      if walk < Array.length starts then starts.(walk) else Search_space.sample space rng
    in
    let current = ref start in
    let current_cost = ref (Cost_model.predict_runtime_us model !current) in
    remember !current !current_cost;
    for _ = 1 to walk_len do
      let candidate = Search_space.neighbor space rng !current in
      let cost = Cost_model.predict_runtime_us model candidate in
      if cost < !current_cost || Util.Rng.float rng 1.0 < escape_probability then begin
        current := candidate;
        current_cost := cost
      end;
      remember candidate cost
    done
  done;
  Hashtbl.fold (fun _ entry acc -> entry :: acc) results []
  |> List.sort (fun (_, a) (_, b) -> compare a b)
  |> List.map fst
