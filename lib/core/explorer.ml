let explore ?(n_walks = 12) ?(walk_len = 40) ?(escape_probability = 0.05) ?domains
    ?(avoid = fun _ -> false) ~space ~model ~rng ~starts () =
  if n_walks < 1 || walk_len < 0 then invalid_arg "Explorer.explore";
  let domains = Option.value domains ~default:(Util.Parallel.recommended_domains ()) in
  let starts = Array.of_list starts in
  (* One draw from the caller's stream seeds every walk: walk [w] owns the
     independent stream [create (base + w)], so walks never share rng state
     and the outcome cannot depend on how they are scheduled over domains. *)
  let base_seed = Int64.to_int (Util.Rng.int64 rng) in
  let run_walk walk =
    let rng = Util.Rng.create (base_seed + walk) in
    let visited = Hashtbl.create 32 in
    let remember cfg cost =
      let key = Config.to_string cfg in
      match Hashtbl.find_opt visited key with
      | Some (_, best) when best <= cost -> ()
      | _ -> Hashtbl.replace visited key (cfg, cost)
    in
    let start =
      if walk < Array.length starts then starts.(walk) else Search_space.sample space rng
    in
    let current = ref start in
    let current_cost = ref (Cost_model.predict_runtime_us model !current) in
    remember !current !current_cost;
    for _ = 1 to walk_len do
      let candidate = Search_space.neighbor space rng !current in
      let cost = Cost_model.predict_runtime_us model candidate in
      if cost < !current_cost || Util.Rng.float rng 1.0 < escape_probability then begin
        current := candidate;
        current_cost := cost
      end;
      remember candidate cost
    done;
    visited
  in
  let per_walk = Util.Parallel.mapi ~domains (Array.init n_walks Fun.id) (fun _ w -> run_walk w) in
  (* Merge the per-walk tables in walk order, then break cost ties on the
     config key: the ranking is identical for every domain count. *)
  let results = Hashtbl.create 64 in
  Array.iter
    (fun visited ->
      Hashtbl.iter
        (fun key ((_, cost) as entry) ->
          match Hashtbl.find_opt results key with
          | Some (_, best) when best <= cost -> ()
          | _ -> Hashtbl.replace results key entry)
        visited)
    per_walk;
  Hashtbl.fold (fun key (cfg, cost) acc -> (key, cfg, cost) :: acc) results []
  |> List.sort (fun (ka, _, a) (kb, _, b) ->
         match compare a b with 0 -> compare ka kb | c -> c)
  |> List.filter_map (fun (_, cfg, _) -> if avoid cfg then None else Some cfg)
