type t = {
  spec : Conv.Conv_spec.t;
  params : Gbt.Booster.params;
  data : Gbt.Dataset.t;
  mutable booster : Gbt.Booster.t option;
  mutable n_failed : int;
}

let create ?(booster = Gbt.Booster.default_params) spec =
  { spec; params = booster; data = Gbt.Dataset.create ~n_features:Config.n_features;
    booster = None; n_failed = 0 }

let booster_params t = t.params

let add_measurement t cfg runtime_us =
  if (not (Float.is_finite runtime_us)) || runtime_us <= 0.0 then
    invalid_arg "Cost_model.add_measurement: non-finite or non-positive runtime";
  Gbt.Dataset.add t.data (Config.features t.spec cfg) (log runtime_us)

(* Failed configurations still inform the model: they enter the dataset at a
   penalty runtime far above anything measurable, steering the explorer away
   from the region without aborting the round. *)
let failure_penalty_us = 1.0e7

let add_failure t cfg =
  t.n_failed <- t.n_failed + 1;
  Gbt.Dataset.add t.data (Config.features t.spec cfg) (log failure_penalty_us)

let n_failures t = t.n_failed
let n_samples t = Gbt.Dataset.length t.data

let retrain ?rng ?domains t =
  if Gbt.Dataset.length t.data > 0 then
    t.booster <- Some (Gbt.Booster.train ?rng ?domains t.params t.data)

let predict_runtime_us t cfg =
  match t.booster with
  | None -> 1.0e9
  | Some booster -> exp (Gbt.Booster.predict booster (Config.features t.spec cfg))

let trained t = t.booster <> None

let snapshot t = Option.map Gbt.Booster.to_compact t.booster

let restore t s =
  match Gbt.Booster.of_compact s with
  | Some booster ->
    t.booster <- Some booster;
    true
  | None -> false

let rmse_log t =
  match t.booster with None -> 0.0 | Some b -> Gbt.Booster.train_rmse b t.data
