(** The optimality condition [x y = R z] and optimal tile selection
    (Sections 5.2-5.3, Table 1).

    Minimising Equation 20 over tiles of fixed volume gives equality exactly
    when [x*y = R*z]; combined with the capacity constraint [x*y*z ~ S/Np]
    (direct) or [2 a^2/e^2 * x*y*z ~ S/Np] (Winograd, [a = e+r-1]) this pins
    the real-valued optimal tile, which [optimal_tile_*] rounds onto
    divisor-friendly integers. *)

val condition_ratio : r:float -> x:int -> y:int -> z:int -> float
(** [x*y / (R*z)]; 1.0 on the optimality manifold. *)

val satisfied : ?slack:float -> r:float -> int * int * int -> bool
(** [satisfied ~r (x, y, z)] is true when the ratio is within [slack]
    (default 2.0) of 1 in either direction — the pruning predicate of the
    searching domain. *)

val real_tile_direct : Conv.Conv_spec.t -> s:float -> np:int -> float * float
(** [(xy, z)] solving [xy = R z], [xy z = S/Np]:
    [z = sqrt(S/(Np R))], [xy = sqrt(R S / Np)]. *)

val real_tile_winograd : e:int -> Conv.Conv_spec.t -> s:float -> np:int -> float * float
(** Same under the Winograd capacity constraint. *)

val divisors : int -> int list
(** Positive divisors in ascending order. *)

val nearest_divisor : int -> float -> int
(** Divisor of the first argument closest (in log space) to the target. *)

val optimal_tile_direct : Conv.Conv_spec.t -> s:float -> np:int -> Conv.Tiled_direct.tile
(** Integer tile with [x | w_out], [y | h_out], [z | c_out] (clamped when the
    problem is smaller than the budget) nearest to the real optimum. *)

val optimal_tile_winograd : e:int -> Conv.Conv_spec.t -> s:float -> np:int -> Conv.Tiled_winograd.tile
(** As above with [x] and [y] additionally multiples of [e]. *)
