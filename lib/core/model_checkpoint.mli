(** Cost-model checkpoints — [Gbt.Booster] snapshots keyed by dataset size.

    Retraining the GBT cost model is the dominant per-round cost of a
    resumed search: the journal replays raw measurements, but without
    checkpoints every replayed round would refit the booster from scratch.
    This file (a [Util.Durable] sibling of the tune journal, conventionally
    [journal ^ ".ckpt"]) appends one snapshot per checkpointed retrain:

    {v c2 <TAB> n-samples <TAB> split-tag <TAB> Booster.to_compact v}

    [n_samples] — the training-set size the booster was fitted on — is the
    key: during replay the tuner's dataset retraces the killed run's
    trajectory exactly, so "a checkpoint fitted on [n] samples" identifies
    the round uniquely, and because training is deterministic and the
    snapshot round-trips bit-for-bit, restoring it is indistinguishable
    from retraining.  The split tag ([Gbt.Booster.split_method_tag]) guards
    the other half of that claim: a resumed run only restores a snapshot
    trained with the same split finding it would itself use, otherwise it
    retrains.  Legacy "c1" lines (written before split methods existed,
    hence always exact-trained) still parse, with [split = "exact"].  A
    corrupt or truncated checkpoint file degrades gracefully: rounds
    without a surviving snapshot just retrain. *)

type entry = {
  n_samples : int;  (** [Cost_model.n_samples] when the booster was fitted *)
  split : string;  (** [Gbt.Booster.split_method_tag] of the training params *)
  snapshot : string;  (** [Gbt.Booster.to_compact] of the fitted booster *)
}

val kind : string
(** The [Util.Durable] kind tag ("gbt-checkpoint"). *)

val path_for : string -> string
(** The checkpoint path conventionally paired with a journal path
    ([journal ^ ".ckpt"]). *)

val to_line : entry -> string
val of_line : string -> entry option

val append : string -> entry -> unit

type load_result = {
  entries : entry list;
  dropped : int;
  reason : string option;
}

val recover : string -> load_result
(** Salvage + atomic repair, like [Tune_journal.recover]; warns once to
    stderr when records were dropped. *)

val to_table : entry list -> (int, string * string) Hashtbl.t
(** [(split, snapshot)] pairs keyed by [n_samples], later entries winning. *)
