let steps (spec : Conv.Conv_spec.t) ~s =
  let r = Conv.Conv_spec.reuse spec in
  let phi1 h = 2.0 *. s *. sqrt (r *. Float.max 0.0 h) in
  let phi2 h = Float.max 0.0 (h -. 1.0) in
  [
    Genfun.step ~name:"products" phi1;
    Genfun.step ~name:"summation" ~psi:(fun _ -> 0.0) phi2;
  ]

let t_upper (spec : Conv.Conv_spec.t) ~s =
  let r = Conv.Conv_spec.reuse spec in
  (4.0 *. s *. sqrt (r *. s)) +. s -. 1.0

let num_vertices (spec : Conv.Conv_spec.t) =
  let k = spec.k_h * spec.k_w * spec.c_in in
  float_of_int ((2 * k) - 1) *. float_of_int (Conv.Conv_spec.output_elems spec)

let q_lower (spec : Conv.Conv_spec.t) ~s =
  let r = Conv.Conv_spec.reuse spec in
  let work =
    float_of_int (spec.k_h * spec.k_w * spec.c_in)
    *. float_of_int (Conv.Conv_spec.output_elems spec)
  in
  work /. (4.0 *. sqrt (2.0 *. r *. s))

let q_lower_composite ?grid (spec : Conv.Conv_spec.t) ~s =
  Composite_bound.lower_bound ?grid ~steps:(steps spec ~s:(2.0 *. s))
    ~num_vertices:(num_vertices spec) s
