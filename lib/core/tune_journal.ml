type outcome =
  | Measured of float
  | Failed of string

type entry = {
  key : string;
  outcome : outcome;
}

let valid_key s =
  s <> "" && String.for_all (fun c -> c <> '\t' && c <> '\n' && c <> '\r') s

(* Runtimes are written as hex floats ("%h"): exact round-trip, so a resumed
   tune replays bit-identical values and stays on the uninterrupted run's
   trajectory.  Failure reasons have tabs/newlines squashed to spaces. *)
let to_line e =
  if not (valid_key e.key) then
    invalid_arg "Tune_journal.to_line: empty key or tab/newline in key";
  match e.outcome with
  | Measured runtime_us ->
    if (not (Float.is_finite runtime_us)) || runtime_us <= 0.0 then
      invalid_arg
        (Printf.sprintf "Tune_journal.to_line: non-finite or non-positive runtime %h"
           runtime_us);
    Printf.sprintf "j1\t%s\tok\t%h" e.key runtime_us
  | Failed reason ->
    let reason =
      String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) reason
    in
    Printf.sprintf "j1\t%s\tfail\t%s" e.key reason

let of_line line =
  match String.split_on_char '\t' line with
  | [ "j1"; key; "ok"; runtime ] when valid_key key -> begin
    match float_of_string_opt runtime with
    | Some runtime_us when Float.is_finite runtime_us && runtime_us > 0.0 ->
      Some { key; outcome = Measured runtime_us }
    | _ -> None
  end
  | [ "j1"; key; "fail"; reason ] when valid_key key -> Some { key; outcome = Failed reason }
  | _ -> None

let append path e =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_line e ^ "\n"))

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (match of_line line with Some e -> e :: acc | None -> acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

let to_table entries =
  let table = Hashtbl.create (List.length entries * 2) in
  List.iter (fun e -> Hashtbl.replace table e.key e.outcome) entries;
  table
