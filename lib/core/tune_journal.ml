type outcome =
  | Measured of float
  | Failed of string

type entry = {
  key : string;
  outcome : outcome;
}

let kind = "tune-journal"

let valid_key s =
  s <> "" && String.for_all (fun c -> c <> '\t' && c <> '\n' && c <> '\r') s

(* Runtimes are written as hex floats ("%h"): exact round-trip, so a resumed
   tune replays bit-identical values and stays on the uninterrupted run's
   trajectory.  Failure reasons have tabs/newlines squashed to spaces. *)
let to_line e =
  if not (valid_key e.key) then
    invalid_arg "Tune_journal.to_line: empty key or tab/newline in key";
  match e.outcome with
  | Measured runtime_us ->
    if (not (Float.is_finite runtime_us)) || runtime_us <= 0.0 then
      invalid_arg
        (Printf.sprintf "Tune_journal.to_line: non-finite or non-positive runtime %h"
           runtime_us);
    Printf.sprintf "j1\t%s\tok\t%h" e.key runtime_us
  | Failed reason ->
    let reason =
      String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) reason
    in
    Printf.sprintf "j1\t%s\tfail\t%s" e.key reason

let of_line line =
  match String.split_on_char '\t' line with
  | [ "j1"; key; "ok"; runtime ] when valid_key key -> begin
    match float_of_string_opt runtime with
    | Some runtime_us when Float.is_finite runtime_us && runtime_us > 0.0 ->
      Some { key; outcome = Measured runtime_us }
    | _ -> None
  end
  | [ "j1"; key; "fail"; reason ] when valid_key key -> Some { key; outcome = Failed reason }
  | _ -> None

let append path e = Util.Durable.append ~kind path (to_line e)

type load_result = {
  entries : entry list;
  dropped : int;
  reason : string option;
}

(* Framing-level damage (bad checksum, torn line, garbled header) salvages a
   prefix; a checksummed record whose payload still fails [of_line] can only
   come from version drift, and is dropped and counted like corruption —
   either way the caller sees the loss instead of a silent shrug. *)
let decode outcome =
  let payloads = Util.Durable.records outcome in
  let entries = List.filter_map of_line payloads in
  let undecodable = List.length payloads - List.length entries in
  let dropped = Util.Durable.dropped outcome + undecodable in
  let reason =
    match outcome with
    | Util.Durable.Salvaged { reason; _ } -> Some reason
    | _ when undecodable > 0 -> Some "checksummed record failed to decode"
    | _ -> None
  in
  { entries; dropped; reason }

let load path =
  let outcome = Util.Durable.read ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  decode outcome

let recover path =
  let outcome = Util.Durable.repair ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  decode outcome

let to_table entries =
  let table = Hashtbl.create (List.length entries * 2) in
  List.iter (fun e -> Hashtbl.replace table e.key e.outcome) entries;
  table
