type entry = {
  arch_name : string;
  spec_key : string;
  runtime_us : float;
  config : Config.t;
}

let entry_of_result (arch : Gpu_sim.Arch.t) spec (result : Tuner.result) =
  {
    arch_name = arch.name;
    spec_key = Conv.Conv_spec.to_string spec;
    runtime_us = result.best_runtime_us;
    config = result.best_config;
  }

let key (arch : Gpu_sim.Arch.t) spec algorithm =
  Printf.sprintf "%s\t%s\t%s" arch.name
    (Conv.Conv_spec.to_string spec)
    (Config.algorithm_to_string algorithm)

let entry_key e =
  Printf.sprintf "%s\t%s\t%s" e.arch_name e.spec_key
    (Config.algorithm_to_string e.config.algorithm)

let valid_key s = String.for_all (fun c -> c <> '\t' && c <> '\n' && c <> '\r') s

(* Reject on write, drop on read: a log can only ever contain finite,
   positive runtimes and tab-free keys, and a file damaged by hand-editing
   or a crash mid-write cannot poison a later load. *)
let to_line e =
  if not (Float.is_finite e.runtime_us) || e.runtime_us <= 0.0 then
    invalid_arg
      (Printf.sprintf "Tuning_log.to_line: non-finite or non-positive runtime %h"
         e.runtime_us);
  if not (valid_key e.arch_name && valid_key e.spec_key) then
    invalid_arg "Tuning_log.to_line: tab or newline embedded in key";
  Printf.sprintf "v1\t%s\t%s\t%.6f\t%s" e.arch_name e.spec_key e.runtime_us
    (Config.to_compact e.config)

let of_line line =
  match String.split_on_char '\t' line with
  | [ "v1"; arch_name; spec_key; runtime; compact ] -> begin
    match (float_of_string_opt runtime, Config.of_compact compact) with
    | Some runtime_us, Some config when Float.is_finite runtime_us && runtime_us > 0.0 ->
      Some { arch_name; spec_key; runtime_us; config }
    | _ -> None
  end
  | _ -> None

let kind = "tuning-log"

(* Snapshots go through write-temp-then-rename: a crash mid-[save] leaves
   the previous log intact instead of a half-written one. *)
let save path entries =
  Util.Durable.write_snapshot ~kind path (List.map to_line entries)

let append path entry = Util.Durable.append ~kind path (to_line entry)

type load_result = {
  entries : entry list;
  dropped : int;
  reason : string option;
}

let load path =
  let outcome = Util.Durable.read ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  let payloads = Util.Durable.records outcome in
  let entries = List.filter_map of_line payloads in
  let undecodable = List.length payloads - List.length entries in
  {
    entries;
    dropped = Util.Durable.dropped outcome + undecodable;
    reason =
      (match outcome with
      | Util.Durable.Salvaged { reason; _ } -> Some reason
      | _ when undecodable > 0 -> Some "checksummed record failed to decode"
      | _ -> None);
  }

let best_per_key entries =
  let table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = entry_key e in
      match Hashtbl.find_opt table k with
      | Some existing when existing.runtime_us <= e.runtime_us -> ()
      | _ -> Hashtbl.replace table k e)
    entries;
  table
