let log_src = Logs.Src.create "conv_io.tuner" ~doc:"Auto-tuning engine progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type progress = { measurement : int; best_runtime_us : float }

type result = {
  best_config : Config.t;
  best_runtime_us : float;
  best_gflops : float;
  measurements : int;
  converged_at : int;
  history : progress list;
  space_size : float;
}

let nominal_gflops spec ~runtime_us = Conv.Conv_spec.flops spec /. runtime_us /. 1.0e3

(* First measurement whose best-so-far is within 1% of the final best: the
   point at which the search had effectively found its solution (raw
   last-improvement indices are dominated by sub-noise-level late wiggles). *)
let convergence_point ~final history =
  let rec scan : progress list -> int = function
    | [] -> 1
    | p :: rest ->
      if p.best_runtime_us <= final *. 1.01 then p.measurement else scan rest
  in
  scan history

let measure_config ?(seed = 0) arch spec cfg =
  let kernel = Config.to_kernel arch spec cfg in
  Gpu_sim.Measure.runtime_avg_us ~seed arch kernel

let tune ?(seed = 0) ?(batch_size = 16) ?(patience = 8) ?(max_measurements = 600) ~space () =
  let arch = Search_space.arch space and spec = Search_space.spec space in
  let rng = Util.Rng.create (seed + 17) in
  let model = Cost_model.create spec in
  let measured = Hashtbl.create 128 in
  let best = ref None in
  let history = ref [] in
  let count = ref 0 in
  let converged_at = ref 0 in
  (* Top measured configurations, best first — the explorer's walk seeds. *)
  let leaders : (Config.t * float) list ref = ref [] in
  let note_leader cfg runtime =
    let merged = (cfg, runtime) :: !leaders in
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) merged in
    leaders := List.filteri (fun i _ -> i < 4) sorted
  in
  let measure cfg =
    let key = Config.to_string cfg in
    if not (Hashtbl.mem measured key) then begin
      Hashtbl.add measured key ();
      let runtime = measure_config ~seed arch spec cfg in
      note_leader cfg runtime;
      incr count;
      Cost_model.add_measurement model cfg runtime;
      (match !best with
      | Some (_, best_runtime) when best_runtime <= runtime -> ()
      | _ ->
        Log.debug (fun m ->
            m "measurement #%d improved best to %.2f us (%s)" !count runtime
              (Config.to_string cfg));
        best := Some (cfg, runtime);
        converged_at := !count);
      let best_runtime = match !best with Some (_, r) -> r | None -> runtime in
      history := { measurement = !count; best_runtime_us = best_runtime } :: !history
    end
  in
  (* Round 0: the optimality-guided default plus random exploration. *)
  measure (Search_space.default_config space);
  for _ = 2 to min batch_size max_measurements do
    measure (Search_space.sample space rng)
  done;
  let stale = ref 0 in
  let round = ref 0 in
  while !stale < patience && !count < max_measurements do
    incr round;
    Log.debug (fun m ->
        m "round %d: %d measurements, model %s" !round !count
          (if Cost_model.trained model then
             Printf.sprintf "rmse(log) %.3f" (Cost_model.rmse_log model)
           else "untrained"));
    let best_before = match !best with Some (_, r) -> r | None -> infinity in
    Cost_model.retrain ~rng model;
    let starts =
      List.map fst !leaders @ List.init 2 (fun _ -> Search_space.sample space rng)
    in
    let candidates = Explorer.explore ~space ~model ~rng ~starts () in
    let fresh =
      List.filter (fun c -> not (Hashtbl.mem measured (Config.to_string c))) candidates
    in
    let room = min batch_size (max_measurements - !count) in
    let batch = List.filteri (fun i _ -> i < room) fresh in
    (if batch = [] then begin
       if !count < max_measurements then measure (Search_space.sample space rng)
     end
     else List.iter measure batch);
    let best_after = match !best with Some (_, r) -> r | None -> infinity in
    if best_after < best_before *. 0.999 then stale := 0 else incr stale
  done;
  ignore !converged_at;
  match !best with
  | None -> failwith "Tuner.tune: nothing measured"
  | Some (cfg, runtime) ->
    let history = List.rev !history in
    {
      best_config = cfg;
      best_runtime_us = runtime;
      best_gflops = nominal_gflops spec ~runtime_us:runtime;
      measurements = !count;
      converged_at = convergence_point ~final:runtime history;
      history;
      space_size = Search_space.size space;
    }
