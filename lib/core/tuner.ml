let log_src = Logs.Src.create "conv_io.tuner" ~doc:"Auto-tuning engine progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type progress = { measurement : int; best_runtime_us : float }

type fault_stats = {
  failed : int;
  launch_failures : int;
  deadlines_exceeded : int;
  attempts : int;
  retries : int;
  timeouts : int;
  nan_readings : int;
  outliers_rejected : int;
  backoff_us : float;
  replayed : int;
  journal_dropped : int;
  model_restores : int;
  elapsed_us : float;
  pool_restarts : int;
  last_failure : Gpu_sim.Measure.failure option;
}

let no_faults =
  {
    failed = 0;
    launch_failures = 0;
    deadlines_exceeded = 0;
    attempts = 0;
    retries = 0;
    timeouts = 0;
    nan_readings = 0;
    outliers_rejected = 0;
    backoff_us = 0.0;
    replayed = 0;
    journal_dropped = 0;
    model_restores = 0;
    elapsed_us = 0.0;
    pool_restarts = 0;
    last_failure = None;
  }

type stop_reason =
  | Converged
  | Trial_budget
  | Deadline_reached
  | Breaker_tripped of int

let stop_reason_to_string = function
  | Converged -> "converged"
  | Trial_budget -> "trial budget exhausted"
  | Deadline_reached -> "virtual deadline reached"
  | Breaker_tripped k -> Printf.sprintf "circuit breaker tripped after %d consecutive failures" k

type result = {
  best_config : Config.t;
  best_runtime_us : float;
  best_gflops : float;
  measurements : int;
  converged_at : int;
  history : progress list;
  space_size : float;
  faults : fault_stats;
  stop : stop_reason;
}

type tune_error = { stop : stop_reason; faults : fault_stats }

let nominal_gflops spec ~runtime_us = Conv.Conv_spec.flops spec /. runtime_us /. 1.0e3

(* First measurement whose best-so-far is within 1% of the final best: the
   point at which the search had effectively found its solution (raw
   last-improvement indices are dominated by sub-noise-level late wiggles). *)
let convergence_point ~final history =
  let rec scan : progress list -> int = function
    | [] -> 1
    | p :: rest ->
      if p.best_runtime_us <= final *. 1.01 then p.measurement else scan rest
  in
  scan history

let measure_config ?(seed = 0) arch spec cfg =
  let kernel = Config.to_kernel arch spec cfg in
  Gpu_sim.Measure.runtime_avg_us ~seed arch kernel

let measure_config_robust ?(seed = 0) ?policy ?(faults = Gpu_sim.Faults.none) arch spec
    cfg =
  match Config.to_kernel arch spec cfg with
  | kernel -> Gpu_sim.Faults.measure ?policy faults ~seed arch kernel
  | exception Invalid_argument msg ->
    (* Configs that cannot even lower to a launchable kernel degrade into a
       typed failure instead of escaping as an exception. *)
    (Error (Gpu_sim.Measure.Launch_failure msg), Gpu_sim.Measure.no_attempts)

let max_leaders = 4

(* Bounded insertion into the descending-quality leader list: O(max_leaders)
   per measurement instead of a full sort.  A new entry goes before existing
   entries of equal runtime, matching what a stable sort of (new :: old) did. *)
let insert_leader cfg runtime leaders =
  let rec insert room = function
    | [] -> if room > 0 then [ (cfg, runtime) ] else []
    | (_, r) :: _ as rest when runtime <= r ->
      (cfg, runtime) :: keep (room - 1) rest
    | entry :: rest -> entry :: insert (room - 1) rest
  and keep room = function
    | [] -> []
    | entry :: rest -> if room > 0 then entry :: keep (room - 1) rest else []
  in
  insert max_leaders leaders

let tune_outcome ?(seed = 0) ?(batch_size = 16) ?(patience = 8) ?(max_measurements = 600)
    ?domains ?(faults = Gpu_sim.Faults.none) ?measure_policy ?journal
    ?(checkpoint_every = 16) ?(deadline_us = infinity) ?max_consecutive_failures
    ?model_params ~space () =
  let domains = Option.value domains ~default:(Util.Parallel.recommended_domains ()) in
  let arch = Search_space.arch space and spec = Search_space.spec space in
  let rng = Util.Rng.create (seed + 17) in
  let model = Cost_model.create ?booster:model_params spec in
  let split_tag =
    Gbt.Booster.split_method_tag (Cost_model.booster_params model).split_method
  in
  let measured = Hashtbl.create 128 in
  let failed_keys = Hashtbl.create 16 in
  let best = ref None in
  let history = ref [] in
  let count = ref 0 in
  (* Budget accounting: failures consume budget too, or a hostile fault
     profile could spin the loop forever. *)
  let trials = ref 0 in
  let stats = ref no_faults in
  let pool_restarts0 = Util.Pool.restarts (Util.Pool.default ()) in
  (* Circuit-breaker state: consecutive failed measurements, in fold order
     (which is submission order, so the count is domain-invariant).  Replayed
     failures count too — a resumed run must trip at the same trial. *)
  let consec_failures = ref 0 in
  let tripped () =
    match max_consecutive_failures with Some k -> !consec_failures >= k | None -> false
  in
  let deadline_hit () = !stats.elapsed_us >= deadline_us in
  (* Replay table from a previous (killed) run of the same tune.  Because
     every stochastic draw is independent of measurement *values*, replaying
     the journaled outcomes reproduces the killed run's trajectory exactly;
     the oracle is only consulted for configs past the kill point.
     [recover] salvages the longest valid prefix of a torn or corrupted
     journal and repairs the file so our appends extend clean state; the
     loss is surfaced in [journal_dropped], never silently discarded.  The
     sibling checkpoint file supplies booster snapshots so replayed rounds
     restore the cost model instead of retraining it. *)
  let journal_tbl, ckpt_tbl =
    match journal with
    | None -> (Hashtbl.create 0, Hashtbl.create 0)
    | Some path ->
      let jr = Tune_journal.recover path in
      let ck = Model_checkpoint.recover (Model_checkpoint.path_for path) in
      stats := { !stats with journal_dropped = jr.dropped + ck.dropped };
      (Tune_journal.to_table jr.entries, Model_checkpoint.to_table ck.entries)
  in
  let journal_append key outcome =
    match journal with
    | None -> ()
    | Some path -> Tune_journal.append path { Tune_journal.key; outcome }
  in
  (* Model checkpointing: after a live retrain, snapshot the booster every
     [checkpoint_every] trials; on replay, a surviving snapshot keyed by the
     dataset size substitutes for the retrain.  Both paths yield the same
     bits (training is deterministic, the snapshot round-trips exactly, and
     with the default no-subsample parameters the retrain consumes no rng
     draws), so restoring never perturbs the trajectory. *)
  let last_checkpoint = ref 0 in
  let retrain_or_restore () =
    let n = Cost_model.n_samples model in
    (* A snapshot only substitutes for a retrain when it was trained with the
       same split finding this run uses — a tag mismatch retrains. *)
    match Hashtbl.find_opt ckpt_tbl n with
    | Some (split, snap) when split = split_tag && Cost_model.restore model snap ->
      stats := { !stats with model_restores = !stats.model_restores + 1 }
    | _ -> begin
      Cost_model.retrain ~rng ~domains model;
      match journal with
      | Some path when !trials - !last_checkpoint >= checkpoint_every -> begin
        match Cost_model.snapshot model with
        | Some snapshot ->
          Model_checkpoint.append (Model_checkpoint.path_for path)
            { Model_checkpoint.n_samples = n; split = split_tag; snapshot };
          last_checkpoint := !trials
        | None -> ()
      end
      | _ -> ()
    end
  in
  (* Top measured configurations, best first — the explorer's walk seeds. *)
  let leaders : (Config.t * float) list ref = ref [] in
  (* Sequential bookkeeping for one finished measurement: leader list, cost
     model dataset, best-so-far and history all update in submission order,
     which keeps the whole trace independent of the domain count. *)
  let record cfg runtime =
    consec_failures := 0;
    leaders := insert_leader cfg runtime !leaders;
    incr count;
    Cost_model.add_measurement model cfg runtime;
    (match !best with
    | Some (_, best_runtime) when best_runtime <= runtime -> ()
    | _ ->
      Log.debug (fun m ->
          m "measurement #%d improved best to %.2f us (%s)" !count runtime
            (Config.to_string cfg));
      best := Some (cfg, runtime));
    let best_runtime = match !best with Some (_, r) -> r | None -> runtime in
    history := { measurement = !count; best_runtime_us = best_runtime } :: !history
  in
  let record_failure cfg (failure : Gpu_sim.Measure.failure) =
    incr consec_failures;
    Hashtbl.replace failed_keys (Config.to_string cfg) ();
    Cost_model.add_failure model cfg;
    let s = !stats in
    stats :=
      {
        s with
        failed = s.failed + 1;
        launch_failures =
          (s.launch_failures
          + match failure with Gpu_sim.Measure.Launch_failure _ -> 1 | _ -> 0);
        deadlines_exceeded =
          (s.deadlines_exceeded
          + match failure with Gpu_sim.Measure.Deadline_exceeded _ -> 1 | _ -> 0);
        last_failure = Some failure;
      };
    Log.debug (fun m ->
        m "measurement failed (%s): %s"
          (Gpu_sim.Measure.failure_to_string failure)
          (Config.to_string cfg))
  in
  let absorb (l : Gpu_sim.Measure.attempt_log) =
    let s = !stats in
    stats :=
      {
        s with
        attempts = s.attempts + l.attempts;
        retries = s.retries + l.retries;
        timeouts = s.timeouts + l.timeouts;
        nan_readings = s.nan_readings + l.nan_readings;
        outliers_rejected = s.outliers_rejected + l.outliers_rejected;
        backoff_us = s.backoff_us +. l.backoff_us;
        elapsed_us = s.elapsed_us +. l.elapsed_us;
      }
  in
  (* Measure a batch: dedup (against everything attempted and within the
     batch, keeping first occurrences), split journal hits from configs that
     need live measurement, fan the pure simulated measurements out over the
     domains, then fold every outcome back in batch order.  A failed config
     does not abort the batch: its siblings' results still fold in. *)
  let measure_batch cfgs =
    let fresh =
      List.filter
        (fun cfg ->
          let key = Config.to_string cfg in
          if Hashtbl.mem measured key then false
          else begin
            Hashtbl.add measured key ();
            true
          end)
        cfgs
    in
    let batch = Array.of_list fresh in
    let planned =
      Array.map
        (fun cfg ->
          let key = Config.to_compact cfg in
          match Hashtbl.find_opt journal_tbl key with
          | Some outcome -> `Replayed (key, outcome)
          | None -> `Live key)
        batch
    in
    let live =
      Array.of_list
        (List.filteri
           (fun i _ -> match planned.(i) with `Live _ -> true | `Replayed _ -> false)
           (Array.to_list batch))
    in
    let measure cfg = measure_config_robust ~seed ?policy:measure_policy ~faults arch spec cfg in
    let outcomes =
      if deadline_us = infinity then Array.map Option.some (Util.Parallel.map ~domains live measure)
      else begin
        (* Global-deadline cancellation propagates into the pool: each live
           measurement is gated on the virtual clock at task start
           ([Pool.run_all_deadline]).  The clock ([stats.elapsed_us]) only
           advances in the sequential fold below, so its value is constant
           for the whole batch and the gate decision is domain-invariant:
           either every task of the batch runs or every task is skipped. *)
        let slots = Array.make (Array.length live) None in
        let tasks =
          Array.to_list
            (Array.mapi (fun i cfg () -> slots.(i) <- Some (measure cfg)) live)
        in
        ignore
          (Util.Pool.run_all_deadline (Util.Pool.default ())
             ~now:(fun () -> !stats.elapsed_us)
             ~deadline:deadline_us tasks);
        slots
      end
    in
    let next_live = ref 0 in
    Array.iteri
      (fun i cfg ->
        match planned.(i) with
        | `Replayed (_, Tune_journal.Measured runtime) ->
          incr trials;
          stats := { !stats with replayed = !stats.replayed + 1 };
          record cfg runtime
        | `Replayed (_, Tune_journal.Failed reason) ->
          incr trials;
          stats := { !stats with replayed = !stats.replayed + 1 };
          record_failure cfg (Gpu_sim.Measure.Launch_failure reason)
        | `Live key -> begin
          let slot = outcomes.(!next_live) in
          incr next_live;
          match slot with
          | None ->
            (* Skipped by the deadline gate before it started: never sampled,
               never journalled, no trial consumed.  Un-mark it so a resumed
               run with a larger budget can still measure it. *)
            Hashtbl.remove measured (Config.to_string cfg)
          | Some (res, attempt_log) -> begin
            incr trials;
            absorb attempt_log;
            match res with
            | Ok runtime ->
              journal_append key (Tune_journal.Measured runtime);
              record cfg runtime
            | Error failure ->
              journal_append key
                (Tune_journal.Failed (Gpu_sim.Measure.failure_to_string failure));
              record_failure cfg failure
          end
        end)
      batch
  in
  (* Round 0: the optimality-guided default plus random exploration. *)
  measure_batch
    (Search_space.default_config space
    :: List.init
         (max 0 (min batch_size max_measurements - 1))
         (fun _ -> Search_space.sample space rng));
  let stale = ref 0 in
  let round = ref 0 in
  while
    !stale < patience && !trials < max_measurements
    && (not (tripped ()))
    && not (deadline_hit ())
  do
    incr round;
    Log.debug (fun m ->
        m "round %d: %d measurements (%d failed), model %s" !round !count !stats.failed
          (if Cost_model.trained model then
             Printf.sprintf "rmse(log) %.3f" (Cost_model.rmse_log model)
           else "untrained"));
    let best_before = match !best with Some (_, r) -> r | None -> infinity in
    retrain_or_restore ();
    let starts =
      List.map fst !leaders @ List.init 2 (fun _ -> Search_space.sample space rng)
    in
    let candidates =
      Explorer.explore ~domains
        ~avoid:(fun c -> Hashtbl.mem failed_keys (Config.to_string c))
        ~space ~model ~rng ~starts ()
    in
    let fresh =
      List.filter (fun c -> not (Hashtbl.mem measured (Config.to_string c))) candidates
    in
    let room = min batch_size (max_measurements - !trials) in
    (* Epsilon-greedy batch make-up: a couple of slots per batch go to
       uniform random samples so one misleading model fit cannot lock the
       search into a basin for the rest of the budget. *)
    let n_random = if room >= 4 then 2 else 0 in
    let exploit = List.filteri (fun i _ -> i < room - n_random) fresh in
    let explore_ = List.init n_random (fun _ -> Search_space.sample space rng) in
    let batch = exploit @ explore_ in
    (if batch = [] then begin
       if !trials < max_measurements then measure_batch [ Search_space.sample space rng ]
     end
     else measure_batch batch);
    let best_after = match !best with Some (_, r) -> r | None -> infinity in
    if best_after < best_before *. 0.999 then stale := 0 else incr stale
  done;
  (* Stop classification, most specific first: a tripped breaker or an
     expired deadline explains the exit even when the trial budget also ran
     out on the same round. *)
  let stop =
    if tripped () then Breaker_tripped !consec_failures
    else if deadline_hit () then Deadline_reached
    else if !trials >= max_measurements then Trial_budget
    else Converged
  in
  let final_stats =
    { !stats with pool_restarts = Util.Pool.restarts (Util.Pool.default ()) - pool_restarts0 }
  in
  match !best with
  | None -> Error { stop; faults = final_stats }
  | Some (cfg, runtime) ->
    let history = List.rev !history in
    Ok
      {
        best_config = cfg;
        best_runtime_us = runtime;
        best_gflops = nominal_gflops spec ~runtime_us:runtime;
        measurements = !count;
        converged_at = convergence_point ~final:runtime history;
        history;
        space_size = Search_space.size space;
        faults = final_stats;
        stop;
      }

let tune ?seed ?batch_size ?patience ?max_measurements ?domains ?faults ?measure_policy
    ?journal ?checkpoint_every ?deadline_us ?max_consecutive_failures ?model_params
    ~space () =
  match
    tune_outcome ?seed ?batch_size ?patience ?max_measurements ?domains ?faults
      ?measure_policy ?journal ?checkpoint_every ?deadline_us ?max_consecutive_failures
      ?model_params ~space ()
  with
  | Ok result -> result
  | Error _ -> failwith "Tuner.tune: nothing measured"
