(** The general theory applied to dense matrix multiplication.

    Not a result of the paper itself, but the canonical sanity instance: the
    paper's Theorem 4.6 machinery with the direct convolution's generation
    functions at reuse factor [R = 1] reproduces the classical Hong & Kung /
    Kwasniewski bound shape [Q = Omega(m n k / sqrt(S))].  Having a second,
    independently-verifiable instantiation guards the [Genfun] /
    [Composite_bound] implementation against convolution-specific
    accidents. *)

val steps : s:float -> Genfun.step list
(** [phi_1(h) = psi_1(h) = 2 S sqrt(h)], [phi_2(h) = h - 1]. *)

val t_upper : s:float -> float
(** [4 S sqrt(S) + S - 1]. *)

val num_vertices : m:int -> k:int -> n:int -> float
(** [(2k - 1) m n]. *)

val q_lower : m:int -> k:int -> n:int -> s:float -> float
(** [m n k / (4 sqrt(2 S))] — the Theorem 4.12 constant at [R = 1]. *)

val q_lower_composite : ?grid:int -> m:int -> k:int -> n:int -> float -> float
(** [q_lower_composite ~m ~k ~n s]: the same bound through
    [Composite_bound.lower_bound]. *)

val q_blocked : m:int -> k:int -> n:int -> bi:float -> bj:float -> float
(** Traffic of the classical blocked schedule:
    [(m n / (bi bj)) k (bi + bj) + m n]; minimised at [bi = bj]. *)

val q_blocked_optimal : m:int -> k:int -> n:int -> s:float -> float
(** At the square tile filling fast memory, [2 m n k / sqrt(S) + m n]. *)
