(** Persistent tuning logs — the equivalent of TVM's tophub records.

    Tuning a layer costs hundreds of simulated measurements; a log file lets
    sessions (and the CNN runner) reuse best configurations across runs.
    The format is line-oriented, one record per tuned (architecture, layer,
    algorithm) triple:

    {v v1 <TAB> arch <TAB> spec <TAB> runtime_us <TAB> compact-config v}

    where [spec] is [Conv_spec.to_string] (canonical per shape, used as an
    opaque key) and the config uses [Config.to_compact].  Since PR 4 the
    lines above are record *payloads* inside a [Util.Durable] file
    (versioned header, per-record CRC-32, atomic snapshot writes), so torn
    writes and bit flips are detected and counted instead of silently
    skipped. *)

type entry = {
  arch_name : string;
  spec_key : string;  (** [Conv_spec.to_string spec] *)
  runtime_us : float;
  config : Config.t;
}

val entry_of_result :
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Tuner.result -> entry

val key : Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> string
(** Lookup key: architecture, layer shape and algorithm. *)

val entry_key : entry -> string

val to_line : entry -> string
(** Raises [Invalid_argument] on non-finite or non-positive runtimes and on
    keys with embedded tabs or newlines — bad records are rejected at write
    time rather than silently corrupting the log. *)

val of_line : string -> entry option
(** [None] on malformed lines, including NaN/infinite runtimes that an
    external writer might have produced (drop on read). *)

val kind : string
(** The [Util.Durable] kind tag ("tuning-log"). *)

val save : string -> entry list -> unit
(** Atomically replaces the log file (write-temp-then-rename): a crash
    mid-save leaves the previous log intact. *)

val append : string -> entry -> unit

type load_result = {
  entries : entry list;  (** every salvaged, decodable record, in order *)
  dropped : int;  (** records lost to corruption or version drift *)
  reason : string option;  (** first corruption encountered, when any *)
}

val load : string -> load_result
(** Zero entries when the file does not exist; otherwise the longest valid
    record prefix, with the loss surfaced in [dropped]/[reason] and one
    [warning:] line on stderr when nonzero.  Never raises on corrupt
    content. *)

val best_per_key : entry list -> (string, entry) Hashtbl.t
(** Deduplicates, keeping the fastest entry per key. *)
