(** Kernel configurations — the points of the auto-tuner's search space
    (Section 6.1, Table 1).

    A configuration fixes the dataflow algorithm, the data layout, the output
    tile [x*y*z], the thread-block decomposition (one thread dimension per
    tile dimension, each dividing its tile extent), and low-level knobs
    (unroll factor, vector width, double buffering).  [to_kernel] lowers a
    configuration to the GPU cost model's kernel descriptor: the tile
    determines I/O volume through the exact dataflow tallies, the thread and
    memory shape determine occupancy, coalescing and efficiency derates. *)

type algorithm =
  | Direct_dataflow
  | Winograd_dataflow of int  (** the output-tile parameter [e] *)

type t = {
  algorithm : algorithm;
  layout : Tensor.Layout.t;
  tile_x : int;
  tile_y : int;
  tile_z : int;
  threads_x : int;  (** must divide [tile_x] *)
  threads_y : int;
  threads_z : int;
  unroll : int;  (** innermost unroll factor: 1, 2, 4 or 8 *)
  vector_width : int;  (** load vectorisation: 1, 2 or 4 *)
  double_buffer : bool;
}

val threads : t -> int
(** Total threads per block. *)

val algorithm_to_string : algorithm -> string
val to_string : t -> string

val shmem_bytes : Conv.Conv_spec.t -> t -> int
(** Shared memory the configuration allocates: the dataflow working set (4
    bytes per element), with the stage buffers doubled under double
    buffering. *)

val working_set_elems : Conv.Conv_spec.t -> t -> int

val blocks : Conv.Conv_spec.t -> t -> int
(** Grid size: output blocks times batch. *)

val n_features : int

val features : Conv.Conv_spec.t -> t -> float array
(** Numeric encoding for the gradient-boosted cost model: tile and thread
    geometry, the optimality-condition log-ratio, derived sizes and the
    categorical knobs. *)

val coalescing : Conv.Conv_spec.t -> t -> float
(** Effective bandwidth fraction: rewards width-contiguous layouts, wide
    input-tile rows and vectorised loads. *)

val compute_efficiency : Conv.Conv_spec.t -> t -> float
(** Arithmetic derate: warp-divisibility, unroll sweet spot, double-buffer
    bonus, ragged-tile waste and a shared-memory bank-conflict penalty when
    the input-tile row is a multiple of the bank count. *)

val to_kernel : Gpu_sim.Arch.t -> Conv.Conv_spec.t -> t -> Gpu_sim.Kernel_cost.kernel
(** Raises [Invalid_argument] on configurations that are not launchable
    (search spaces never generate those). *)

val flops : Conv.Conv_spec.t -> t -> float
(** Arithmetic the configuration actually executes: the nominal convolution
    flops for the direct dataflow; transformed-domain products plus
    transform overhead for Winograd. *)

val to_compact : t -> string
(** Stable single-token encoding for tuning logs (no spaces or tabs). *)

val of_compact : string -> t option
(** Inverse of [to_compact]; [None] on malformed input. *)
