(** The general I/O lower bound for composite algorithms (Theorem 4.6).

    For a DAG with [num_vertices] compute vertices whose multi-step partition
    has generation functions [steps], any red-blue pebble game with [s] red
    pebbles performs at least

    {v Q >= s * (num_vertices / T(2s) - 1) v}

    I/O operations.  This module evaluates the bound numerically from the
    generation functions; the per-algorithm modules ([Direct_bound],
    [Winograd_bound]) supply both their closed-form highest-order terms and
    their [steps] so tests can confirm the two agree. *)

val lower_bound : ?grid:int -> steps:Genfun.step list -> num_vertices:float -> float -> float
(** [lower_bound ~steps ~num_vertices s]; never negative (clamped at zero,
    as the theorem is vacuous for tiny DAGs). *)

val t_of_2s : ?grid:int -> steps:Genfun.step list -> float -> float
(** [t_of_2s ~steps s] = [Genfun.t_of_s steps (2 s)]. *)
