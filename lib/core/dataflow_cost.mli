(** Analytic I/O cost of the Section 5 dataflows (Equations 20-23).

    These closed forms are the idealised (no border effects) counterparts of
    the exact per-block tallies produced by [Conv.Tiled_direct.io_only] and
    [Conv.Tiled_winograd.io_only]; the tests check the two agree when tiles
    divide the problem exactly, and the optimality analysis (Section 5's
    [xy = Rz]) is derived from them. *)

val q_dc_tile : Conv.Conv_spec.t -> x:float -> y:float -> z:float -> float
(** Equation 20 plus the output stores: total traffic of the direct dataflow
    with an [x * y * z] output sub-block,
    [(HWC_out/xyz) * Hker Wker Cin (z + xy/R) + HWC_out]. *)

val q_dc_optimal : Conv.Conv_spec.t -> s:float -> np:int -> float
(** Equation 21: traffic with the I/O-optimal tile under on-chip capacity
    [xyz ~ S/Np]: [2 HWCout Hker Wker Cin / sqrt(R S / Np) + HWCout]. *)

val q_wa_tile : e:int -> Conv.Conv_spec.t -> x:float -> y:float -> z:float -> float
(** Equation 22 plus stores: [(HWCout/xyz) * Cin (xy + z r^2) + HWCout]. *)

val q_wa_optimal : e:int -> Conv.Conv_spec.t -> s:float -> np:int -> float
(** Equation 23: [2 HWCout Cin r (e+r-1) / (e sqrt(S/Np)) + HWCout], from
    the temporary-array capacity constraint
    [2 (e+r-1)^2/e^2 * xyz ~ S/Np]. *)

val optimality_gap : Conv.Conv_spec.t -> s:float -> np:int -> float
(** Ratio of [q_dc_optimal] to the Theorem 4.12 lower bound — how close the
    dataflow is to optimal for this problem; approaches a constant ~
    [sqrt(2) * ...] for single-processor large problems (Section 5.2). *)
