type t = {
  arch : Gpu_sim.Arch.t;
  spec : Conv.Conv_spec.t;
  algorithm : Config.algorithm;
  pruned : bool;
  shmem_budget_bytes : int;
  tiles : (int * int * int) array;
  unrolls : int array;
  vectors : int array;
  layouts : Tensor.Layout.t array;
}

let spec t = t.spec
let arch t = t.arch
let algorithm t = t.algorithm
let pruned t = t.pruned
let tile_candidates t = t.tiles

(* Canonical domain identity: arch, canonical spec, algorithm and pruning
   in a fixed order.  Computable without constructing the domain, so a
   result cache can key a lookup before paying for [make]. *)
let canonical_key (arch : Gpu_sim.Arch.t) spec algorithm ~pruned =
  let algo =
    match algorithm with
    | Config.Direct_dataflow -> "direct"
    | Config.Winograd_dataflow e -> Printf.sprintf "winograd:%d" e
  in
  Printf.sprintf "arch=%s;%s;algo=%s;pruned=%b" arch.name
    (Conv.Conv_spec.canonical spec)
    algo pruned

let canonical t = canonical_key t.arch t.spec t.algorithm ~pruned:t.pruned

let budget_bytes (arch : Gpu_sim.Arch.t) =
  min (arch.shared_mem_per_sm / 2) arch.max_shared_mem_per_block

let config ~space ~tile:(x, y, z) ~threads:(tx, ty, tz) ~unroll ~vector_width ~layout
    ~double_buffer =
  {
    Config.algorithm = space.algorithm;
    layout;
    tile_x = x;
    tile_y = y;
    tile_z = z;
    threads_x = tx;
    threads_y = ty;
    threads_z = tz;
    unroll;
    vector_width;
    double_buffer;
  }

let shmem_fits space cfg = Config.shmem_bytes space.spec cfg <= space.shmem_budget_bytes

(* A triple is admissible when at least the plain (no double-buffer) variant
   fits the shared-memory budget. *)
let tile_fits space (x, y, z) =
  let cfg =
    config ~space ~tile:(x, y, z) ~threads:(1, 1, 1) ~unroll:1 ~vector_width:1
      ~layout:Tensor.Layout.CHW ~double_buffer:false
  in
  shmem_fits space cfg

let prune_ok space (x, y, z) =
  if not space.pruned then true
  else begin
    let r = Conv.Conv_spec.reuse space.spec in
    let sb = float_of_int (space.shmem_budget_bytes / 4) in
    Optimality.satisfied ~slack:2.0 ~r (x, y, z)
    && float_of_int z <= sqrt (sb /. r) +. 1e-9
    && float_of_int (x * y) <= sqrt (sb *. r) +. 1e-9
  end

(* Divisors of the extent plus powers of two: prime-ish output extents (e.g.
   149 in Inception's stem) have no useful divisors, and the dataflow clamps
   edge blocks anyway, so non-dividing tiles are legal — merely slightly
   ragged. *)
let with_powers_of_two extent divisors =
  let rec powers p acc = if p > extent then acc else powers (2 * p) (p :: acc) in
  List.sort_uniq compare (divisors @ powers 2 [])

let x_candidates (spec : Conv.Conv_spec.t) algorithm extent =
  match algorithm with
  | Config.Direct_dataflow -> with_powers_of_two extent (Optimality.divisors extent)
  | Config.Winograd_dataflow e ->
    ignore spec;
    if extent <= e then [ e ]
    else List.init (extent / e) (fun i -> (i + 1) * e)

let make ?(pruned = true) arch spec algorithm =
  (match algorithm with
  | Config.Winograd_dataflow _ when not (Conv.Winograd.supported spec) ->
    invalid_arg "Search_space.make: winograd unsupported for this layer"
  | _ -> ());
  let w_out = Conv.Conv_spec.w_out spec and h_out = Conv.Conv_spec.h_out spec in
  let space_no_tiles =
    {
      arch;
      spec;
      algorithm;
      pruned;
      shmem_budget_bytes = budget_bytes arch;
      tiles = [||];
      unrolls = [| 1; 2; 4; 8 |];
      vectors = [| 1; 2; 4 |];
      layouts = Array.of_list Tensor.Layout.all;
    }
  in
  let xs = x_candidates spec algorithm w_out in
  let ys = x_candidates spec algorithm h_out in
  let zs = with_powers_of_two spec.c_out (Optimality.divisors spec.c_out) in
  let tiles =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun y ->
            List.filter_map
              (fun z ->
                let triple = (x, y, z) in
                if tile_fits space_no_tiles triple && prune_ok space_no_tiles triple then
                  Some triple
                else None)
              zs)
          ys)
      xs
  in
  if tiles = [] then invalid_arg "Search_space.make: empty domain";
  { space_no_tiles with tiles = Array.of_list tiles }

let thread_triples space (x, y, z) =
  let limit = space.arch.max_threads_per_block in
  let dx = Optimality.divisors x and dy = Optimality.divisors y and dz = Optimality.divisors z in
  List.concat_map
    (fun tx ->
      List.concat_map
        (fun ty ->
          List.filter_map
            (fun tz -> if tx * ty * tz <= limit then Some (tx, ty, tz) else None)
            dz)
        dy)
    dx

let size space =
  let knob_count =
    float_of_int (Array.length space.unrolls)
    *. float_of_int (Array.length space.vectors)
    *. float_of_int (Array.length space.layouts)
  in
  Array.fold_left
    (fun acc triple ->
      let threads = float_of_int (List.length (thread_triples space triple)) in
      (* Double buffering doubles the count only where the buffered variant
         still fits. *)
      let db_variants =
        let base =
          config ~space ~tile:triple ~threads:(1, 1, 1) ~unroll:1 ~vector_width:1
            ~layout:Tensor.Layout.CHW ~double_buffer:true
        in
        if shmem_fits space base then 2.0 else 1.0
      in
      acc +. (threads *. knob_count *. db_variants))
    0.0 space.tiles

type invalid =
  | Wrong_algorithm of { expected : Config.algorithm; got : Config.algorithm }
  | Tile_not_in_domain of { tile : int * int * int }
  | Threads_not_dividing of { tile : int * int * int; threads : int * int * int }
  | Threads_exceeded of { threads : int; max_threads_per_block : int }
  | Knob_out_of_domain of { knob : string; value : string }
  | Shmem_exceeded of { shmem_bytes : int; budget_bytes : int }

let invalid_to_string = function
  | Wrong_algorithm { expected; got } ->
    Printf.sprintf "algorithm %s does not match the space's %s"
      (Config.algorithm_to_string got)
      (Config.algorithm_to_string expected)
  | Tile_not_in_domain { tile = x, y, z } ->
    Printf.sprintf "tile %dx%dx%d is not in the domain" x y z
  | Threads_not_dividing { tile = x, y, z; threads = tx, ty, tz } ->
    Printf.sprintf "thread block %dx%dx%d does not divide tile %dx%dx%d" tx ty tz x y z
  | Threads_exceeded { threads; max_threads_per_block } ->
    Printf.sprintf "%d threads per block exceeds the device limit of %d" threads
      max_threads_per_block
  | Knob_out_of_domain { knob; value } ->
    Printf.sprintf "%s = %s is outside the domain" knob value
  | Shmem_exceeded { shmem_bytes; budget_bytes } ->
    Printf.sprintf
      "working set of %d B exceeds the %d B shared-memory budget (half an SM, \
       capped at the per-block limit)"
      shmem_bytes budget_bytes

let validate space (cfg : Config.t) =
  let tile = (cfg.tile_x, cfg.tile_y, cfg.tile_z) in
  let threads = (cfg.threads_x, cfg.threads_y, cfg.threads_z) in
  if cfg.algorithm <> space.algorithm then
    Error (Wrong_algorithm { expected = space.algorithm; got = cfg.algorithm })
  else if not (Array.exists (fun t -> t = tile) space.tiles) then
    Error (Tile_not_in_domain { tile })
  else if
    cfg.threads_x < 1 || cfg.threads_y < 1 || cfg.threads_z < 1
    || cfg.tile_x mod cfg.threads_x <> 0
    || cfg.tile_y mod cfg.threads_y <> 0
    || cfg.tile_z mod cfg.threads_z <> 0
  then Error (Threads_not_dividing { tile; threads })
  else if Config.threads cfg > space.arch.max_threads_per_block then
    Error
      (Threads_exceeded
         {
           threads = Config.threads cfg;
           max_threads_per_block = space.arch.max_threads_per_block;
         })
  else if not (Array.exists (( = ) cfg.unroll) space.unrolls) then
    Error (Knob_out_of_domain { knob = "unroll"; value = string_of_int cfg.unroll })
  else if not (Array.exists (( = ) cfg.vector_width) space.vectors) then
    Error
      (Knob_out_of_domain { knob = "vector_width"; value = string_of_int cfg.vector_width })
  else if not (Array.exists (( = ) cfg.layout) space.layouts) then
    Error (Knob_out_of_domain { knob = "layout"; value = Tensor.Layout.to_string cfg.layout })
  else if not (shmem_fits space cfg) then
    Error
      (Shmem_exceeded
         {
           shmem_bytes = Config.shmem_bytes space.spec cfg;
           budget_bytes = space.shmem_budget_bytes;
         })
  else Ok ()

let mem space cfg = validate space cfg = Ok ()

let pick_array rng a = a.(Util.Rng.int rng (Array.length a))

let sample_threads space rng (x, y, z) =
  let limit = space.arch.max_threads_per_block in
  let dx = Array.of_list (Optimality.divisors x) in
  let dy = Array.of_list (Optimality.divisors y) in
  let dz = Array.of_list (Optimality.divisors z) in
  let rec draw () =
    let tx = pick_array rng dx and ty = pick_array rng dy and tz = pick_array rng dz in
    if tx * ty * tz <= limit then (tx, ty, tz) else draw ()
  in
  draw ()

let sample space rng =
  let triple = pick_array rng space.tiles in
  let threads = sample_threads space rng triple in
  let unroll = pick_array rng space.unrolls in
  let vector_width = pick_array rng space.vectors in
  let layout = pick_array rng space.layouts in
  let cfg =
    config ~space ~tile:triple ~threads ~unroll ~vector_width ~layout
      ~double_buffer:(Util.Rng.bool rng)
  in
  if shmem_fits space cfg then cfg else { cfg with double_buffer = false }

let neighbor space rng (cfg : Config.t) =
  let axis = Util.Rng.int rng 7 in
  let mutated =
    match axis with
    | 0 ->
      let x, y, z = pick_array rng space.tiles in
      (* Re-fit the thread decomposition onto the new tile. *)
      let fit extent threads = Optimality.nearest_divisor extent (float_of_int threads) in
      let tx = fit x cfg.threads_x and ty = fit y cfg.threads_y and tz = fit z cfg.threads_z in
      let tx, ty, tz =
        if tx * ty * tz <= space.arch.max_threads_per_block then (tx, ty, tz) else (1, 1, 1)
      in
      { cfg with tile_x = x; tile_y = y; tile_z = z; threads_x = tx; threads_y = ty;
        threads_z = tz }
    | 1 | 2 | 3 ->
      let tx, ty, tz = sample_threads space rng (cfg.tile_x, cfg.tile_y, cfg.tile_z) in
      { cfg with threads_x = tx; threads_y = ty; threads_z = tz }
    | 4 -> { cfg with unroll = pick_array rng space.unrolls }
    | 5 -> { cfg with vector_width = pick_array rng space.vectors }
    | 6 -> { cfg with layout = pick_array rng space.layouts }
    | _ -> { cfg with double_buffer = not cfg.double_buffer }
  in
  if shmem_fits space mutated then mutated else { mutated with double_buffer = false }

let iter_configs space f =
  Array.iter
    (fun triple ->
      List.iter
        (fun threads ->
          Array.iter
            (fun unroll ->
              Array.iter
                (fun vector_width ->
                  Array.iter
                    (fun layout ->
                      List.iter
                        (fun double_buffer ->
                          let cfg =
                            config ~space ~tile:triple ~threads ~unroll ~vector_width
                              ~layout ~double_buffer
                          in
                          if shmem_fits space cfg then f cfg)
                        [ false; true ])
                    space.layouts)
                space.vectors)
            space.unrolls)
        (thread_triples space triple))
    space.tiles

let config_for_tile space (x, y, z) =
  let cap extent want = Optimality.nearest_divisor extent (float_of_int want) in
  let tx = cap x 16 and ty = cap y 16 in
  let tz = cap z (max 1 (256 / (cap x 16 * cap y 16))) in
  let cfg =
    config ~space ~tile:(x, y, z) ~threads:(tx, ty, tz) ~unroll:4 ~vector_width:2
      ~layout:Tensor.Layout.CHW ~double_buffer:false
  in
  if Config.threads cfg <= space.arch.max_threads_per_block then cfg
  else { cfg with threads_x = 1; threads_y = 1; threads_z = 1 }

let default_config space =
  let sb_elems = space.shmem_budget_bytes / 4 in
  let target =
    match space.algorithm with
    | Config.Direct_dataflow ->
      let t = Optimality.optimal_tile_direct space.spec ~s:(float_of_int sb_elems) ~np:1 in
      (t.Conv.Tiled_direct.x, t.y, t.z)
    | Config.Winograd_dataflow e ->
      let t = Optimality.optimal_tile_winograd ~e space.spec ~s:(float_of_int sb_elems) ~np:1 in
      (t.Conv.Tiled_winograd.x, t.y, t.z)
  in
  let tx_t, ty_t, tz_t = target in
  let dist (x, y, z) =
    let d a b = Float.abs (log (float_of_int a /. float_of_int b)) in
    d x tx_t +. d y ty_t +. d z tz_t
  in
  let best =
    Array.fold_left
      (fun acc triple -> match acc with
        | Some b when dist b <= dist triple -> acc
        | _ -> Some triple)
      None space.tiles
  in
  config_for_tile space (Option.get best)
