(** Run-level supervision for whole-model tuning.

    A model-timing run launches one tuning task per (layer shape, algorithm);
    each task can fail in many subsystem-specific ways — a configuration
    outside the domain, a rejected kernel launch, a measurement harness
    giving up, a corrupted journal, a crashed worker pool.  This module is
    the one place that understands all of them:

    - the {!cause} taxonomy unifies the subsystems' typed errors;
    - {!tune_task} wraps [Tuner.tune_outcome] with a per-task circuit
      breaker and a fair share of the session's global virtual-time budget;
    - a task whose breaker trips or whose budget expires degrades to the
      best *analytic* configuration ({!analytic_best}) instead of failing or
      reporting an infinite runtime, tagged [Degraded] so nothing is hidden;
    - {!report} renders the whole run's health: per-task outcomes,
      aggregated fault statistics, budget accounting, pool state.

    Supervision never changes what a healthy run computes: with no faults
    injected and an unbounded budget, a supervised run returns results
    bit-identical to the unsupervised engine (the chaos suite asserts it). *)

(** {1 Cause taxonomy} *)

type cause =
  | Invalid_config of Search_space.invalid
  | Launch_rejected of Gpu_sim.Kernel_cost.launch_error
  | Measurement of Gpu_sim.Measure.failure
  | Storage_corruption of { dropped : int }  (** durable-file salvage losses *)
  | Pool_degraded of { restarts : int }  (** watchdog budget exhausted *)
  | Empty_domain of string  (** [Search_space.make] found no valid config *)

val cause_to_string : cause -> string

(** {1 Outcomes} *)

type degrade_reason =
  | Breaker_open of { consecutive : int; last : cause option }
      (** [breaker_k] consecutive measurement failures (or a whole trial
          budget spent without one success); [last] names the final straw *)
  | Budget_exhausted of { share_us : float }
      (** the task's fair share of the global budget ran out first *)

val degrade_reason_to_string : degrade_reason -> string

type outcome =
  | Tuned of Tuner.result  (** measured search completed normally *)
  | Replayed of Tuner.result
      (** satisfied without live measurement: every trial came from a
          journal, or the memo cache already held the result *)
  | Degraded of {
      reason : degrade_reason;
      config : Config.t;  (** measured best if any, else analytic best *)
      runtime_us : float;
      faults : Tuner.fault_stats;
    }
  | Failed of cause
      (** nothing usable — the caller should fall back (e.g. to library
          timing); only domain construction failures end up here *)

val outcome_label : outcome -> string
(** ["tuned" | "replayed" | "degraded" | "failed"]. *)

val outcome_runtime_us : outcome -> float option
(** The runtime a caller should use; [None] only for [Failed]. *)

val outcome_faults : outcome -> Tuner.fault_stats

(** {1 Policy and budget} *)

type policy = {
  breaker_k : int;
      (** trip the circuit breaker after this many consecutive measurement
          failures; [<= 0] disables it *)
  budget_us : float;
      (** global virtual-time budget shared by the session's tasks
          ([infinity] = unbounded) *)
  analytic_candidates : int;
      (** how many Q-ranked tile triples {!analytic_best} prices *)
}

val default_policy : policy
(** Breaker after 5 consecutive failures, unbounded budget, 64 analytic
    candidates. *)

(** Fair-share accounting over virtual microseconds.  Each task's share is
    [remaining / tasks_left] at the moment it begins, so tasks that finish
    under budget — or cost nothing because they replay or hit a cache —
    donate their surplus to the tasks still queued. *)
module Budget : sig
  type t

  val create : total_us:float -> tasks:int -> t
  val begin_task : t -> float
  (** Fair share for the task about to start; decrements [tasks_left]. *)

  val charge : t -> float -> unit
  (** Record spending (non-finite and non-positive amounts are ignored). *)

  val total_us : t -> float
  val spent_us : t -> float
  val remaining_us : t -> float
end

(** {1 Analytic degradation} *)

val analytic_best : ?candidates:int -> Search_space.t -> Config.t * float
(** The best configuration nameable without a single measurement: tile
    triples ranked by the dataflow communication volume Q (Section 5), the
    top [candidates] lowered via [Search_space.config_for_tile] and ranked
    by the noise-free analytic kernel runtime.  The returned configuration
    always satisfies [Search_space.validate] — hence also the per-block
    shared-memory budget, which [Gpu_sim.Faults.block_budget_bytes] computes
    with the same formula — so it is launchable even on a backend whose
    measurements have stopped answering.  Deterministic: depends only on
    the space. *)

(** {1 Sessions} *)

type session

val create : ?policy:policy -> tasks:int -> unit -> session
(** A supervision session expecting [tasks] tuning tasks (the count seeds
    fair-share budgeting; running more tasks than announced is allowed and
    grants each straggler everything that remains). *)

val policy : session -> policy
val budget_remaining_us : session -> float

val tune_task :
  session ->
  key:string ->
  ?seed:int ->
  ?batch_size:int ->
  ?patience:int ->
  ?max_measurements:int ->
  ?domains:int ->
  ?faults:Gpu_sim.Faults.profile ->
  ?measure_policy:Gpu_sim.Measure.policy ->
  ?journal:string ->
  ?checkpoint_every:int ->
  space:Search_space.t ->
  unit ->
  outcome
(** One supervised tuning run: [Tuner.tune_outcome] with
    [deadline_us = Budget.begin_task] (this task's fair share) and
    [max_consecutive_failures = policy.breaker_k].  The spent virtual time
    is charged to the session budget whatever the outcome.  A run that
    stops with a measured best is [Tuned] ([Degraded] when the breaker cut
    it short — the best is kept, the reason tagged); a run satisfied
    entirely from its journal is [Replayed]; a run with no success at all
    degrades to {!analytic_best}.  Tuning parameters have [Tuner.tune]'s
    defaults. *)

val record_cached : session -> key:string -> Tuner.result -> outcome
(** Account for a task satisfied from a memo cache: consumes (and donates
    back) a budget share, records a [Replayed] outcome, charges nothing. *)

val record_failed : session -> key:string -> cause -> outcome
(** Account for a task that could not even start (e.g. [Empty_domain]). *)

(** {1 Health reports} *)

type task_report = {
  key : string;
  outcome : outcome;
  share_us : float;  (** fair share granted when the task began *)
  spent_us : float;  (** virtual time actually charged *)
}

type report = {
  policy : policy;
  tasks : task_report list;  (** completion order *)
  budget_total_us : float;
  budget_spent_us : float;
  faults : Tuner.fault_stats;  (** aggregated over all tasks *)
  pool_restarts : int;  (** worker crashes recovered during the session *)
  pool_degraded : bool;  (** [Util.Pool.is_degraded] of the shared pool *)
}

val report : session -> report
(** Snapshot of the session so far (cheap; callable at any point). *)

val report_to_string : report -> string
(** Multi-line human-readable rendering for the CLI's [--chaos] mode. *)
