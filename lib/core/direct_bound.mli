(** I/O lower bound of the direct convolution (Section 4.2).

    The two-step partition is products then summation trees, with (Lemmas
    4.9-4.10)

    {v phi_1(h) = psi_1(h) = 2 S sqrt(R h)      phi_2(h) = h - 1 v}

    giving [T(S) <= 4 S sqrt(R S) + S - 1] (Lemma 4.11) and the Theorem 4.12
    bound

    {v Q = Omega( Wker Hker Cin Wout Hout Cout / (4 sqrt(2 R S)) ) v}

    All quantities here are per the full batched problem (the batch dimension
    multiplies the output count). *)

val steps : Conv.Conv_spec.t -> s:float -> Genfun.step list
(** The generation functions; [phi_1] depends on the fast-memory size. *)

val t_upper : Conv.Conv_spec.t -> s:float -> float
(** Lemma 4.11's closed form [4 S sqrt(R S) + S - 1]. *)

val num_vertices : Conv.Conv_spec.t -> float
(** Lemma 4.8's internal-plus-output count times the batch size. *)

val q_lower : Conv.Conv_spec.t -> s:float -> float
(** Theorem 4.12 with its explicit constant:
    [Wker Hker Cin * outputs / (4 sqrt(2 R S))]. *)

val q_lower_composite : ?grid:int -> Conv.Conv_spec.t -> s:float -> float
(** The same bound evaluated through the generic Theorem 4.6 machinery
    ([Composite_bound.lower_bound] over [steps]); tests check it stays within
    a small constant factor of [q_lower]. *)
