(** Comparator search strategies (Figure 11, Table 2).

    All baselines share the tuner's measurement oracle and report the same
    [Tuner.result], so curves and tables compare search strategies only:

    - [tvm]: the ML-guided tuner over the *unpruned* domain — the paper's
      TVM stand-in ("the ML-based model in TVM starts with no training data
      and uses the collected data to improve itself");
    - [random_search]: uniform sampling;
    - [genetic]: tournament-selection GA with axis crossover and
      neighbour mutation;
    - [simulated_annealing]: one chain over measured (not predicted) costs
      with geometric cooling. *)

val tvm :
  ?seed:int -> ?batch_size:int -> ?patience:int -> ?max_measurements:int ->
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> Tuner.result

val random_search :
  ?seed:int -> ?max_measurements:int ->
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> Tuner.result

val genetic :
  ?seed:int -> ?population:int -> ?generations:int -> ?mutation_rate:float ->
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> Tuner.result

val simulated_annealing :
  ?seed:int -> ?max_measurements:int -> ?initial_temperature:float -> ?cooling:float ->
  Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.algorithm -> Tuner.result
