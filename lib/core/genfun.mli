(** Maximum vertex generation functions and the composite upper bound T(S)
    (Section 4.1).

    A multi-step partition contributes one [step] per sub-computation:
    [phi k] bounds the number of vertices of that sub-DAG generable from [k]
    dominator/carry-in vertices, [psi k] bounds how many of those become
    inputs of the next sub-computation (Definition in Section 4.1.2).

    Theorem 4.5 then bounds any S-partition class size by

    {v T(S) = S + max_(sum k_j <= S)
              phi_1(k_1) + phi_2(k_2 + psi_1(k_1)) + ...
            + phi_n(k_n + psi_(n-1)(k_(n-1) + ... )) v}

    [t_of_s] evaluates that maximum numerically.  Both [phi_j] and [psi_j]
    are required to be nondecreasing (true of every instance in the paper),
    which lets the last step take the whole remaining budget and the search
    run over the first [n-1] allocations only. *)

type step = {
  name : string;
  phi : float -> float;
  psi : float -> float;
}

val step : ?psi:(float -> float) -> name:string -> (float -> float) -> step
(** [step ~name phi] with [psi] defaulting to [phi] (steps with no internal
    vertices have identical generation functions, cf. Lemmas 4.9/4.16). *)

val chain_value : step list -> float array -> float
(** [chain_value steps ks] evaluates the nested sum for an explicit
    allocation (arity must match). *)

val t_of_s : ?grid:int -> step list -> float -> float
(** [t_of_s steps s] = the Theorem 4.5 bound.  [grid] controls the number of
    sample points per allocation dimension (default 32, refined once around
    the best coarse point).  Raises [Invalid_argument] on an empty step list
    or negative [s]. *)
