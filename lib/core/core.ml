(** Library entry point — the paper's primary contribution.

    Theory (Section 4): {!Genfun}, {!Composite_bound}, {!Direct_bound},
    {!Winograd_bound}.  Dataflow analysis (Section 5): {!Dataflow_cost},
    {!Optimality}.  Auto-tuning engine (Section 6): {!Config},
    {!Search_space}, {!Cost_model}, {!Explorer}, {!Tuner}, {!Baselines}. *)

module Genfun = Genfun
module Composite_bound = Composite_bound
module Direct_bound = Direct_bound
module Winograd_bound = Winograd_bound
module Matmul_bound = Matmul_bound
module Dataflow_cost = Dataflow_cost
module Optimality = Optimality
module Config = Config
module Search_space = Search_space
module Cost_model = Cost_model
module Explorer = Explorer
module Tuner = Tuner
module Supervisor = Supervisor
module Baselines = Baselines
module Tuning_log = Tuning_log
module Tune_journal = Tune_journal
module Model_checkpoint = Model_checkpoint
module Template = Template
