let condition_ratio ~r ~x ~y ~z =
  if r <= 0.0 || x < 1 || y < 1 || z < 1 then invalid_arg "Optimality.condition_ratio";
  float_of_int (x * y) /. (r *. float_of_int z)

let satisfied ?(slack = 2.0) ~r (x, y, z) =
  let ratio = condition_ratio ~r ~x ~y ~z in
  ratio <= slack && ratio >= 1.0 /. slack

let real_tile_direct (spec : Conv.Conv_spec.t) ~s ~np =
  if s <= 0.0 || np < 1 then invalid_arg "Optimality.real_tile_direct";
  let r = Conv.Conv_spec.reuse spec in
  let budget = s /. float_of_int np in
  let z = sqrt (budget /. r) in
  let xy = r *. z in
  (xy, z)

let real_tile_winograd ~e (spec : Conv.Conv_spec.t) ~s ~np =
  if s <= 0.0 || np < 1 then invalid_arg "Optimality.real_tile_winograd";
  if spec.k_h <> spec.k_w then invalid_arg "Optimality.real_tile_winograd: square kernel";
  let r = float_of_int spec.k_h and ef = float_of_int e in
  let a = ef +. r -. 1.0 in
  (* Temporary arrays dominate on-chip use: 2 a^2/e^2 * xyz = S/Np. *)
  let budget = s /. float_of_int np *. ef *. ef /. (2.0 *. a *. a) in
  let rr = r *. r in
  let z = sqrt (budget /. rr) in
  let xy = rr *. z in
  (xy, z)

let divisors n =
  if n < 1 then invalid_arg "Optimality.divisors";
  let rec collect d acc = if d > n then List.rev acc else collect (d + 1) (if n mod d = 0 then d :: acc else acc) in
  collect 1 []

let nearest_divisor n target =
  let target = Float.max 1.0 target in
  let score d = Float.abs (log (float_of_int d /. target)) in
  match divisors n with
  | [] -> 1
  | d :: rest -> List.fold_left (fun best d' -> if score d' < score best then d' else best) d rest

(* Split a target area onto (x, y) divisors of the two extents, biasing
   towards squarish tiles. *)
let split_area ~w ~h xy =
  let side = sqrt xy in
  let x = nearest_divisor w side in
  let y = nearest_divisor h (xy /. float_of_int x) in
  (x, y)

let optimal_tile_direct (spec : Conv.Conv_spec.t) ~s ~np =
  let xy, z = real_tile_direct spec ~s ~np in
  let w_out = Conv.Conv_spec.w_out spec and h_out = Conv.Conv_spec.h_out spec in
  let z = nearest_divisor spec.c_out z in
  let x, y = split_area ~w:w_out ~h:h_out xy in
  { Conv.Tiled_direct.x; y; z }

let optimal_tile_winograd ~e (spec : Conv.Conv_spec.t) ~s ~np =
  let xy, z = real_tile_winograd ~e spec ~s ~np in
  let w_out = Conv.Conv_spec.w_out spec and h_out = Conv.Conv_spec.h_out spec in
  let z = nearest_divisor spec.c_out z in
  (* x and y must be multiples of e; search multiples of e near the target
     instead of divisors. *)
  let max_mult extent = max 1 (extent / e) in
  let pick extent target =
    let m = max_mult extent in
    let best = ref 1 in
    for i = 1 to m do
      let cand = i * e in
      if
        Float.abs (log (float_of_int cand /. Float.max 1.0 target))
        < Float.abs (log (float_of_int (!best * e) /. Float.max 1.0 target))
      then best := i
    done;
    !best * e
  in
  let side = sqrt xy in
  let x = pick w_out side in
  let y = pick h_out (xy /. float_of_int x) in
  { Conv.Tiled_winograd.x; y; z }
