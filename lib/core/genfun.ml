type step = { name : string; phi : float -> float; psi : float -> float }

let step ?psi ~name phi = { name; phi; psi = Option.value psi ~default:phi }

let chain_value steps ks =
  if List.length steps <> Array.length ks then invalid_arg "Genfun.chain_value: arity";
  let total = ref 0.0 and carry = ref 0.0 in
  List.iteri
    (fun j s ->
      let arg = ks.(j) +. !carry in
      total := !total +. s.phi arg;
      carry := s.psi arg)
    steps;
  !total

(* Maximise the nested sum over the simplex {k_j >= 0, sum k_j <= s}.  The
   functions are nondecreasing, so the optimum spends the whole budget and
   the final step absorbs whatever the first n-1 leave over.  A coarse grid
   search over the leading allocations is refined once around its best
   point. *)
let t_of_s ?(grid = 32) steps s =
  if steps = [] then invalid_arg "Genfun.t_of_s: no steps";
  if s < 0.0 then invalid_arg "Genfun.t_of_s: negative budget";
  let steps_arr = Array.of_list steps in
  let n = Array.length steps_arr in
  let best = ref neg_infinity in
  let best_ks = Array.make n 0.0 in
  let ks = Array.make n 0.0 in
  (* Search over allocations of the first n-1 steps on [lo_j, hi_j] boxes. *)
  let rec search j budget carry acc lo hi =
    if j = n - 1 then begin
      ks.(j) <- budget;
      let value = acc +. steps_arr.(j).phi (budget +. carry) in
      if value > !best then begin
        best := value;
        Array.blit ks 0 best_ks 0 n
      end
    end
    else
      for i = 0 to grid do
        let frac = float_of_int i /. float_of_int grid in
        let k = lo.(j) +. (frac *. (hi.(j) -. lo.(j))) in
        if k <= budget +. 1e-9 then begin
          let k = Float.min k budget in
          ks.(j) <- k;
          let arg = k +. carry in
          search (j + 1) (budget -. k) (steps_arr.(j).psi arg)
            (acc +. steps_arr.(j).phi arg)
            lo hi
        end
      done
  in
  let lo0 = Array.make n 0.0 and hi0 = Array.make n s in
  search 0 s 0.0 0.0 lo0 hi0;
  (* One refinement pass: shrink each box around the coarse optimum. *)
  if n > 1 && s > 0.0 then begin
    let width = s /. float_of_int grid in
    let lo = Array.map (fun k -> Float.max 0.0 (k -. width)) best_ks in
    let hi = Array.map (fun k -> Float.min s (k +. width)) best_ks in
    search 0 s 0.0 0.0 lo hi
  end;
  s +. !best
