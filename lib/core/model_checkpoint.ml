type entry = {
  n_samples : int;
  snapshot : string;
}

let kind = "gbt-checkpoint"

let path_for journal = journal ^ ".ckpt"

let to_line e =
  if e.n_samples <= 0 then invalid_arg "Model_checkpoint.to_line: non-positive n_samples";
  if String.exists (fun c -> c = '\n' || c = '\r') e.snapshot then
    invalid_arg "Model_checkpoint.to_line: newline in snapshot";
  Printf.sprintf "c1\t%d\t%s" e.n_samples e.snapshot

(* The snapshot itself contains tabs, so split only the two leading fields. *)
let of_line line =
  if String.length line > 3 && String.sub line 0 3 = "c1\t" then begin
    match String.index_from_opt line 3 '\t' with
    | None -> None
    | Some second_tab -> begin
      match int_of_string_opt (String.sub line 3 (second_tab - 3)) with
      | Some n when n > 0 ->
        Some
          {
            n_samples = n;
            snapshot =
              String.sub line (second_tab + 1) (String.length line - second_tab - 1);
          }
      | _ -> None
    end
  end
  else None

let append path e = Util.Durable.append ~kind path (to_line e)

type load_result = {
  entries : entry list;
  dropped : int;
  reason : string option;
}

let recover path =
  let outcome = Util.Durable.repair ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  let payloads = Util.Durable.records outcome in
  let entries = List.filter_map of_line payloads in
  let undecodable = List.length payloads - List.length entries in
  {
    entries;
    dropped = Util.Durable.dropped outcome + undecodable;
    reason =
      (match outcome with
      | Util.Durable.Salvaged { reason; _ } -> Some reason
      | _ when undecodable > 0 -> Some "checksummed record failed to decode"
      | _ -> None);
  }

let to_table entries =
  let table = Hashtbl.create (List.length entries * 2) in
  List.iter (fun e -> Hashtbl.replace table e.n_samples e.snapshot) entries;
  table
