type entry = {
  n_samples : int;
  split : string;
  snapshot : string;
}

let kind = "gbt-checkpoint"

let path_for journal = journal ^ ".ckpt"

let to_line e =
  if e.n_samples <= 0 then invalid_arg "Model_checkpoint.to_line: non-positive n_samples";
  if e.split = "" || String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') e.split
  then invalid_arg "Model_checkpoint.to_line: malformed split tag";
  if String.exists (fun c -> c = '\n' || c = '\r') e.snapshot then
    invalid_arg "Model_checkpoint.to_line: newline in snapshot";
  Printf.sprintf "c2\t%d\t%s\t%s" e.n_samples e.split e.snapshot

(* The snapshot itself contains tabs, so split only the leading fields.
   "c1" lines (pre-split_method checkpoints) carry no tag; every booster
   they were written by trained with exact splits, so that is their tag. *)
let of_line line =
  let field_after start =
    Option.map
      (fun tab ->
        (String.sub line start (tab - start), tab + 1))
      (String.index_from_opt line start '\t')
  in
  let rest_after start = String.sub line start (String.length line - start) in
  if String.length line > 3 && String.sub line 0 3 = "c1\t" then
    match field_after 3 with
    | Some (n_field, snap_start) -> begin
      match int_of_string_opt n_field with
      | Some n when n > 0 ->
        Some { n_samples = n; split = "exact"; snapshot = rest_after snap_start }
      | _ -> None
    end
    | None -> None
  else if String.length line > 3 && String.sub line 0 3 = "c2\t" then
    match field_after 3 with
    | Some (n_field, split_start) -> begin
      match (int_of_string_opt n_field, field_after split_start) with
      | Some n, Some (split, snap_start) when n > 0 && split <> "" ->
        Some { n_samples = n; split; snapshot = rest_after snap_start }
      | _ -> None
    end
    | None -> None
  else None

let append path e = Util.Durable.append ~kind path (to_line e)

type load_result = {
  entries : entry list;
  dropped : int;
  reason : string option;
}

let recover path =
  let outcome = Util.Durable.repair ~kind path in
  Util.Durable.warn_dropped ~path outcome;
  let payloads = Util.Durable.records outcome in
  let entries = List.filter_map of_line payloads in
  let undecodable = List.length payloads - List.length entries in
  {
    entries;
    dropped = Util.Durable.dropped outcome + undecodable;
    reason =
      (match outcome with
      | Util.Durable.Salvaged { reason; _ } -> Some reason
      | _ when undecodable > 0 -> Some "checksummed record failed to decode"
      | _ -> None);
  }

let to_table entries =
  let table = Hashtbl.create (List.length entries * 2) in
  List.iter (fun e -> Hashtbl.replace table e.n_samples (e.split, e.snapshot)) entries;
  table
