(* Shared bookkeeping: run a measurement-driven strategy and package it as a
   Tuner.result so every searcher plots on the same axes. *)
type recorder = {
  space : Search_space.t;
  seed : int;
  measured : (string, float) Hashtbl.t;
  mutable best : (Config.t * float) option;
  mutable count : int;
  mutable converged_at : int;
  mutable history : Tuner.progress list;
}

let recorder ~space ~seed =
  { space; seed; measured = Hashtbl.create 128; best = None; count = 0; converged_at = 0;
    history = [] }

let measure rec_ cfg =
  let key = Config.to_string cfg in
  match Hashtbl.find_opt rec_.measured key with
  | Some runtime -> runtime
  | None ->
    let arch = Search_space.arch rec_.space and spec = Search_space.spec rec_.space in
    let runtime = Tuner.measure_config ~seed:rec_.seed arch spec cfg in
    Hashtbl.add rec_.measured key runtime;
    rec_.count <- rec_.count + 1;
    (match rec_.best with
    | Some (_, best) when best <= runtime -> ()
    | _ ->
      rec_.best <- Some (cfg, runtime);
      rec_.converged_at <- rec_.count);
    let best_runtime = match rec_.best with Some (_, r) -> r | None -> runtime in
    rec_.history <-
      { Tuner.measurement = rec_.count; best_runtime_us = best_runtime } :: rec_.history;
    runtime

let finish rec_ =
  match rec_.best with
  | None -> failwith "Baselines: nothing measured"
  | Some (cfg, runtime) ->
    let spec = Search_space.spec rec_.space in
    let history = List.rev rec_.history in
    {
      Tuner.best_config = cfg;
      best_runtime_us = runtime;
      best_gflops = Tuner.nominal_gflops spec ~runtime_us:runtime;
      measurements = rec_.count;
      converged_at = Tuner.convergence_point ~final:runtime history;
      history;
      space_size = Search_space.size rec_.space;
      faults = Tuner.no_faults;
      stop = Tuner.Converged;
    }

let tvm ?seed ?batch_size ?patience ?max_measurements arch spec algorithm =
  let space = Search_space.make ~pruned:false arch spec algorithm in
  Tuner.tune ?seed ?batch_size ?patience ?max_measurements ~space ()

let random_search ?(seed = 0) ?(max_measurements = 600) arch spec algorithm =
  let space = Search_space.make ~pruned:false arch spec algorithm in
  let rng = Util.Rng.create (seed + 31) in
  let rec_ = recorder ~space ~seed in
  while rec_.count < max_measurements do
    ignore (measure rec_ (Search_space.sample space rng))
  done;
  finish rec_

let genetic ?(seed = 0) ?(population = 16) ?(generations = 30) ?(mutation_rate = 0.3) arch
    spec algorithm =
  let space = Search_space.make ~pruned:false arch spec algorithm in
  let rng = Util.Rng.create (seed + 47) in
  let rec_ = recorder ~space ~seed in
  let crossover a (b : Config.t) =
    (* Tile and threads travel together (threads must divide the tile); the
       scalar knobs mix independently. *)
    let base = if Util.Rng.bool rng then a else b in
    {
      base with
      Config.unroll = (if Util.Rng.bool rng then a.Config.unroll else b.Config.unroll);
      vector_width = (if Util.Rng.bool rng then a.Config.vector_width else b.Config.vector_width);
      layout = (if Util.Rng.bool rng then a.Config.layout else b.Config.layout);
      double_buffer = (if Util.Rng.bool rng then a.Config.double_buffer else b.Config.double_buffer);
    }
  in
  let tournament scored =
    let pick () = scored.(Util.Rng.int rng (Array.length scored)) in
    let (c1, f1) = pick () and (c2, f2) = pick () in
    if f1 <= f2 then c1 else c2
  in
  let pop = ref (Array.init population (fun _ -> Search_space.sample space rng)) in
  for _ = 1 to generations do
    let scored = Array.map (fun cfg -> (cfg, measure rec_ cfg)) !pop in
    let next =
      Array.init population (fun _ ->
          let parent_a = tournament scored and parent_b = tournament scored in
          let child = crossover parent_a parent_b in
          if Util.Rng.float rng 1.0 < mutation_rate then
            Search_space.neighbor space rng child
          else child)
    in
    pop := next
  done;
  finish rec_

let simulated_annealing ?(seed = 0) ?(max_measurements = 600) ?(initial_temperature = 0.4)
    ?(cooling = 0.97) arch spec algorithm =
  let space = Search_space.make ~pruned:false arch spec algorithm in
  let rng = Util.Rng.create (seed + 59) in
  let rec_ = recorder ~space ~seed in
  let current = ref (Search_space.sample space rng) in
  let current_cost = ref (measure rec_ !current) in
  let temperature = ref initial_temperature in
  while rec_.count < max_measurements do
    let candidate = Search_space.neighbor space rng !current in
    let cost = measure rec_ candidate in
    let accept =
      cost < !current_cost
      ||
      let delta = (cost -. !current_cost) /. !current_cost in
      Util.Rng.float rng 1.0 < exp (-.delta /. Float.max 1e-6 !temperature)
    in
    if accept then begin
      current := candidate;
      current_cost := cost
    end;
    temperature := !temperature *. cooling
  done;
  finish rec_
