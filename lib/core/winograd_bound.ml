let check_square (spec : Conv.Conv_spec.t) =
  if spec.k_h <> spec.k_w then invalid_arg "Winograd_bound: square kernel required"

let steps ~e (spec : Conv.Conv_spec.t) ~s =
  check_square spec;
  let r = float_of_int spec.k_h and ef = float_of_int e in
  let a = ef +. r -. 1.0 in
  let a2 = a *. a in
  let phi1 h = 6.0 *. Float.max 0.0 h *. a2 *. a2 /. (ef *. r) in
  let psi1 h = 3.0 *. Float.max 0.0 h *. a2 /. (ef *. r) in
  let phi2 h =
    let h = Float.max 0.0 h in
    (h *. sqrt h) +. (a2 /. (ef *. ef) *. s *. sqrt h)
  in
  let phi3 h = Float.max 0.0 (h -. 1.0) in
  let psi3 h = Float.min (Float.max 0.0 h /. 2.0) (a2 /. (ef *. ef) *. s) in
  let phi4 h =
    Float.min
      (((2.0 *. Float.max 0.0 h) -. 1.0) *. ef *. ef)
      (((2.0 *. a2) -. 1.0) *. s)
  in
  [
    Genfun.step ~name:"transform" ~psi:psi1 phi1;
    Genfun.step ~name:"product" phi2;
    Genfun.step ~name:"channel-sum" ~psi:psi3 phi3;
    Genfun.step ~name:"output-transform" ~psi:(fun _ -> 0.0) phi4;
  ]

let t_upper ~e (spec : Conv.Conv_spec.t) ~s =
  check_square spec;
  let r = float_of_int spec.k_h and ef = float_of_int e in
  let a = ef +. r -. 1.0 in
  (2.0 *. (a ** 3.0) /. (ef *. r) *. s *. sqrt s)
  +. (6.0 *. a *. a /. (ef *. r) *. s)

let num_vertices ~e (spec : Conv.Conv_spec.t) =
  check_square spec;
  let r = float_of_int spec.k_h and ef = float_of_int e in
  let a = ef +. r -. 1.0 in
  2.0
  *. float_of_int (Conv.Conv_spec.output_elems spec)
  *. float_of_int spec.c_in *. (a ** 4.0) /. (ef *. ef)

let q_lower ~e (spec : Conv.Conv_spec.t) ~s =
  check_square spec;
  let r = float_of_int spec.k_h and ef = float_of_int e in
  let a = ef +. r -. 1.0 in
  float_of_int (Conv.Conv_spec.output_elems spec)
  *. float_of_int spec.c_in *. a *. r /. (ef *. sqrt s)

let q_lower_composite ?grid ~e (spec : Conv.Conv_spec.t) ~s =
  Composite_bound.lower_bound ?grid
    ~steps:(steps ~e spec ~s:(2.0 *. s))
    ~num_vertices:(num_vertices ~e spec)
    s
