let out_volume (spec : Conv.Conv_spec.t) = float_of_int (Conv.Conv_spec.output_elems spec)

let q_dc_tile (spec : Conv.Conv_spec.t) ~x ~y ~z =
  if x <= 0.0 || y <= 0.0 || z <= 0.0 then invalid_arg "Dataflow_cost.q_dc_tile: tile";
  let r = Conv.Conv_spec.reuse spec in
  let kernel_taps = float_of_int (spec.k_h * spec.k_w * spec.c_in) in
  let outs = out_volume spec in
  (outs /. (x *. y *. z) *. kernel_taps *. (z +. (x *. y /. r))) +. outs

let q_dc_optimal (spec : Conv.Conv_spec.t) ~s ~np =
  if s <= 0.0 || np < 1 then invalid_arg "Dataflow_cost.q_dc_optimal";
  let r = Conv.Conv_spec.reuse spec in
  let kernel_taps = float_of_int (spec.k_h * spec.k_w * spec.c_in) in
  let outs = out_volume spec in
  (2.0 *. outs *. kernel_taps /. sqrt (r *. s /. float_of_int np)) +. outs

let q_wa_tile ~e (spec : Conv.Conv_spec.t) ~x ~y ~z =
  ignore e;
  if x <= 0.0 || y <= 0.0 || z <= 0.0 then invalid_arg "Dataflow_cost.q_wa_tile: tile";
  if spec.k_h <> spec.k_w then invalid_arg "Dataflow_cost.q_wa_tile: square kernel";
  let r2 = float_of_int (spec.k_h * spec.k_w) in
  let cin = float_of_int spec.c_in in
  let outs = out_volume spec in
  (outs /. (x *. y *. z) *. cin *. ((x *. y) +. (z *. r2))) +. outs

let q_wa_optimal ~e (spec : Conv.Conv_spec.t) ~s ~np =
  if s <= 0.0 || np < 1 then invalid_arg "Dataflow_cost.q_wa_optimal";
  if spec.k_h <> spec.k_w then invalid_arg "Dataflow_cost.q_wa_optimal: square kernel";
  let r = float_of_int spec.k_h and ef = float_of_int e in
  let a = ef +. r -. 1.0 in
  let outs = out_volume spec in
  let cin = float_of_int spec.c_in in
  (2.0 *. outs *. cin *. r *. a /. (ef *. sqrt (s /. float_of_int np))) +. outs

let optimality_gap (spec : Conv.Conv_spec.t) ~s ~np =
  q_dc_optimal spec ~s ~np /. Direct_bound.q_lower spec ~s
