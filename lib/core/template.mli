(** Template manager (Section 6.1): renders a configuration as the concrete
    kernel schedule it denotes.

    The auto-tuner manipulates configurations abstractly; this module makes
    them inspectable by emitting the CUDA-style pseudo-kernel the dataflow +
    configuration pair describes — grid/block geometry, shared-memory
    declarations (which must agree with [Config.shmem_bytes]), the
    channel-sliding stage loop and the per-thread work partition.  Used by
    the CLI and examples so a tuned result is a *readable artifact*, not just
    a record. *)

val render : Gpu_sim.Arch.t -> Conv.Conv_spec.t -> Config.t -> string
(** Multi-line pseudo-code.  Deterministic; raises like [Config.to_kernel]
    on unlaunchable configurations. *)

val grid_dim : Conv.Conv_spec.t -> Config.t -> int * int * int
(** Blocks along (x, y, z-with-batch): the launch geometry the template
    declares. *)

val stage_count : Conv.Conv_spec.t -> Config.t -> int
(** Channel stages the kernel's outer loop executes
    ([channels-per-group / alpha], alpha = 1 per Section 5.2; the transformed
    channel sweep for Winograd). *)
