(** I/O lower bound of the Winograd algorithm (Section 4.3).

    Four steps (input/kernel transform, elementwise product, channel
    summation, output transform) with generation functions from Lemmas
    4.15-4.18:

    {v phi_1(h) = 6 h a^4 / (e r)        psi_1(h) = 3 h a^2 / (e r)
   phi_2(h) = psi_2(h) = h sqrt h + (a^2/e^2) S sqrt h
   phi_3(h) = h - 1                  psi_3(h) = min(h/2, (a^2/e^2) S)
   phi_4(h) = min((2h-1) e^2, (2 a^2 - 1) S) v}

    with [a = e + r - 1], leading to (Lemma 4.19)

    {v T(S) = O( 2 a^3/(e r) S sqrt S + 6 a^2/(e r) S ) v}

    and the Theorem 4.20 bound

    {v Q = Omega( Wout Hout Cout Cin a r / (e sqrt S) ) v} *)

val steps : e:int -> Conv.Conv_spec.t -> s:float -> Genfun.step list
(** Requires a square kernel ([r = k_h = k_w]); raises otherwise. *)

val t_upper : e:int -> Conv.Conv_spec.t -> s:float -> float
(** Lemma 4.19's closed form. *)

val num_vertices : e:int -> Conv.Conv_spec.t -> float
(** Lemma 4.14's order count [2 Wout Hout Cout Cin a^4 / e^2] times batch. *)

val q_lower : e:int -> Conv.Conv_spec.t -> s:float -> float
(** Theorem 4.20: [outputs * Cin * a * r / (e sqrt S)]. *)

val q_lower_composite : ?grid:int -> e:int -> Conv.Conv_spec.t -> s:float -> float
(** Theorem 4.20 through the generic Theorem 4.6 machinery. *)
