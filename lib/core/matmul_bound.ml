let steps ~s =
  let phi1 h = 2.0 *. s *. sqrt (Float.max 0.0 h) in
  let phi2 h = Float.max 0.0 (h -. 1.0) in
  [
    Genfun.step ~name:"products" phi1;
    Genfun.step ~name:"summation" ~psi:(fun _ -> 0.0) phi2;
  ]

let t_upper ~s = (4.0 *. s *. sqrt s) +. s -. 1.0

let num_vertices ~m ~k ~n = float_of_int (((2 * k) - 1) * m * n)

let q_lower ~m ~k ~n ~s =
  float_of_int (m * k * n) /. (4.0 *. sqrt (2.0 *. s))

let q_lower_composite ?grid ~m ~k ~n s =
  Composite_bound.lower_bound ?grid ~steps:(steps ~s:(2.0 *. s))
    ~num_vertices:(num_vertices ~m ~k ~n)
    s

let q_blocked ~m ~k ~n ~bi ~bj =
  if bi <= 0.0 || bj <= 0.0 then invalid_arg "Matmul_bound.q_blocked";
  let fm = float_of_int m and fk = float_of_int k and fn = float_of_int n in
  (fm *. fn /. (bi *. bj) *. fk *. (bi +. bj)) +. (fm *. fn)

let q_blocked_optimal ~m ~k ~n ~s =
  let side = sqrt s in
  q_blocked ~m ~k ~n ~bi:side ~bj:side
