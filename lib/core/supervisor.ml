(* Run-level supervision: one place that turns the subsystems' many ways of
   going wrong into a single typed outcome per tuning task, trips a circuit
   breaker on persistently failing backends, degrades to an analytic
   configuration instead of failing, and meters a global virtual-time budget
   across the tasks of a whole-model run. *)

(* ------------------------------------------------------------------ *)
(* Unified cause taxonomy. *)

type cause =
  | Invalid_config of Search_space.invalid
  | Launch_rejected of Gpu_sim.Kernel_cost.launch_error
  | Measurement of Gpu_sim.Measure.failure
  | Storage_corruption of { dropped : int }
  | Pool_degraded of { restarts : int }
  | Empty_domain of string

let cause_to_string = function
  | Invalid_config inv -> "invalid config: " ^ Search_space.invalid_to_string inv
  | Launch_rejected e -> "launch rejected: " ^ Gpu_sim.Kernel_cost.launch_error_to_string e
  | Measurement f -> "measurement: " ^ Gpu_sim.Measure.failure_to_string f
  | Storage_corruption { dropped } ->
    Printf.sprintf "storage corruption: %d journal record(s) dropped" dropped
  | Pool_degraded { restarts } ->
    Printf.sprintf "worker pool degraded after %d crash(es)" restarts
  | Empty_domain msg -> "empty search domain: " ^ msg

(* ------------------------------------------------------------------ *)
(* Outcomes. *)

type degrade_reason =
  | Breaker_open of { consecutive : int; last : cause option }
  | Budget_exhausted of { share_us : float }

let degrade_reason_to_string = function
  | Breaker_open { consecutive; last } ->
    Printf.sprintf "breaker open after %d consecutive failures%s" consecutive
      (match last with None -> "" | Some c -> " (last: " ^ cause_to_string c ^ ")")
  | Budget_exhausted { share_us } ->
    Printf.sprintf "budget exhausted (share %.0fus)" share_us

type outcome =
  | Tuned of Tuner.result
  | Replayed of Tuner.result
  | Degraded of {
      reason : degrade_reason;
      config : Config.t;
      runtime_us : float;
      faults : Tuner.fault_stats;
    }
  | Failed of cause

let outcome_label = function
  | Tuned _ -> "tuned"
  | Replayed _ -> "replayed"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"

let outcome_runtime_us = function
  | Tuned r | Replayed r -> Some r.Tuner.best_runtime_us
  | Degraded { runtime_us; _ } -> Some runtime_us
  | Failed _ -> None

let outcome_faults = function
  | Tuned r | Replayed r -> r.Tuner.faults
  | Degraded { faults; _ } -> faults
  | Failed _ -> Tuner.no_faults

(* ------------------------------------------------------------------ *)
(* Policy. *)

type policy = {
  breaker_k : int;
  budget_us : float;
  analytic_candidates : int;
}

let default_policy = { breaker_k = 5; budget_us = infinity; analytic_candidates = 64 }

(* ------------------------------------------------------------------ *)
(* Fair-share budget over virtual time.

   Each task's share is [remaining / tasks_left] at the moment it starts, so
   a task that finishes under budget (or costs nothing because it replays
   from a journal or hits the memo cache) automatically donates its surplus
   to everyone still queued.  Spending past a share is possible only by the
   cooperative overshoot [Tuner.tune_outcome] documents (tasks already in
   flight when the deadline passes), and is charged honestly. *)

module Budget = struct
  type t = {
    total_us : float;
    mutable spent_us : float;
    mutable tasks_left : int;
  }

  let create ~total_us ~tasks =
    if tasks < 0 then invalid_arg "Supervisor.Budget.create: tasks < 0";
    { total_us; spent_us = 0.0; tasks_left = tasks }

  let total_us t = t.total_us
  let spent_us t = t.spent_us
  let remaining_us t = Float.max 0.0 (t.total_us -. t.spent_us)

  let begin_task t =
    let share =
      if t.tasks_left <= 0 then remaining_us t
      else remaining_us t /. float_of_int t.tasks_left
    in
    if t.tasks_left > 0 then t.tasks_left <- t.tasks_left - 1;
    share

  let charge t us = if Float.is_finite us && us > 0.0 then t.spent_us <- t.spent_us +. us
end

(* ------------------------------------------------------------------ *)
(* Analytic graceful degradation: the best configuration the models can
   name without a single measurement.  Tile triples are ranked by the
   dataflow communication volume Q (Section 5's per-tile cost), the top
   few are lowered to their representative configurations, and those are
   ranked by the noise-free analytic kernel runtime.  Everything returned
   passes [Search_space.validate], hence also the per-block shared-memory
   budget ([Faults.block_budget_bytes] uses the same formula). *)

let analytic_best ?(candidates = default_policy.analytic_candidates) space =
  let spec = Search_space.spec space in
  let arch = Search_space.arch space in
  let q (x, y, z) =
    let x = float_of_int x and y = float_of_int y and z = float_of_int z in
    match Search_space.algorithm space with
    | Config.Direct_dataflow -> Dataflow_cost.q_dc_tile spec ~x ~y ~z
    | Config.Winograd_dataflow e -> Dataflow_cost.q_wa_tile ~e spec ~x ~y ~z
  in
  let tiles = Array.copy (Search_space.tile_candidates space) in
  (* Tie-break on the triple itself so the ranking is a total order,
     independent of the candidate array's construction order. *)
  Array.sort
    (fun a b ->
      let c = Float.compare (q a) (q b) in
      if c <> 0 then c else compare a b)
    tiles;
  let n = Int.min (Int.max 1 candidates) (Array.length tiles) in
  let best = ref None in
  for i = 0 to n - 1 do
    let cfg = Search_space.config_for_tile space tiles.(i) in
    match Search_space.validate space cfg with
    | Error _ -> ()
    | Ok () ->
      let kernel = Config.to_kernel arch spec cfg in
      (match Gpu_sim.Kernel_cost.check arch kernel with
      | Error _ -> ()
      | Ok () ->
        let rt = Gpu_sim.Kernel_cost.runtime_us arch kernel in
        (match !best with
        | Some (_, best_rt) when best_rt <= rt -> ()
        | _ -> best := Some (cfg, rt)))
  done;
  match !best with
  | Some (cfg, rt) -> (cfg, rt)
  | None ->
    (* Every ranked candidate failed the launch check — fall back to the
       domain's default member and price it analytically regardless. *)
    let cfg = Search_space.default_config space in
    (cfg, Gpu_sim.Kernel_cost.runtime_us arch (Config.to_kernel arch spec cfg))

(* ------------------------------------------------------------------ *)
(* Sessions and reports. *)

type task_report = {
  key : string;
  outcome : outcome;
  share_us : float;
  spent_us : float;
}

type report = {
  policy : policy;
  tasks : task_report list;  (** completion order *)
  budget_total_us : float;
  budget_spent_us : float;
  faults : Tuner.fault_stats;
  pool_restarts : int;
  pool_degraded : bool;
}

type session = {
  policy : policy;
  budget : Budget.t;
  mutable tasks_rev : task_report list;
  mutable agg_faults : Tuner.fault_stats;
  pool_restarts0 : int;
}

let create ?(policy = default_policy) ~tasks () =
  {
    policy;
    budget = Budget.create ~total_us:policy.budget_us ~tasks;
    tasks_rev = [];
    agg_faults = Tuner.no_faults;
    pool_restarts0 = Util.Pool.restarts (Util.Pool.default ());
  }

let policy t = t.policy
let budget_remaining_us t = Budget.remaining_us t.budget

let add_faults (a : Tuner.fault_stats) (b : Tuner.fault_stats) : Tuner.fault_stats =
  {
    failed = a.failed + b.failed;
    launch_failures = a.launch_failures + b.launch_failures;
    deadlines_exceeded = a.deadlines_exceeded + b.deadlines_exceeded;
    attempts = a.attempts + b.attempts;
    retries = a.retries + b.retries;
    timeouts = a.timeouts + b.timeouts;
    nan_readings = a.nan_readings + b.nan_readings;
    outliers_rejected = a.outliers_rejected + b.outliers_rejected;
    backoff_us = a.backoff_us +. b.backoff_us;
    replayed = a.replayed + b.replayed;
    journal_dropped = a.journal_dropped + b.journal_dropped;
    model_restores = a.model_restores + b.model_restores;
    elapsed_us = a.elapsed_us +. b.elapsed_us;
    pool_restarts = a.pool_restarts + b.pool_restarts;
    last_failure = (match b.last_failure with Some _ -> b.last_failure | None -> a.last_failure);
  }

let record_task t ~key ~share_us ~spent_us outcome =
  Budget.charge t.budget spent_us;
  t.agg_faults <- add_faults t.agg_faults (outcome_faults outcome);
  t.tasks_rev <- { key; outcome; share_us; spent_us } :: t.tasks_rev;
  outcome

let record_failed t ~key cause =
  record_task t ~key ~share_us:0.0 ~spent_us:0.0 (Failed cause)

let report t =
  let pool = Util.Pool.default () in
  let restarts = Util.Pool.restarts pool - t.pool_restarts0 in
  {
    policy = t.policy;
    tasks = List.rev t.tasks_rev;
    budget_total_us = Budget.total_us t.budget;
    budget_spent_us = Budget.spent_us t.budget;
    faults = { t.agg_faults with pool_restarts = restarts };
    pool_restarts = restarts;
    pool_degraded = Util.Pool.is_degraded pool;
  }

(* ------------------------------------------------------------------ *)
(* The supervised tuning task. *)

let last_failure_cause (faults : Tuner.fault_stats) =
  Option.map (fun f -> Measurement f) faults.last_failure

let classify_stop ~share_us (stop : Tuner.stop_reason) (faults : Tuner.fault_stats) =
  match stop with
  | Tuner.Breaker_tripped n ->
    Breaker_open { consecutive = n; last = last_failure_cause faults }
  | Tuner.Deadline_reached -> Budget_exhausted { share_us }
  | Tuner.Converged | Tuner.Trial_budget ->
    (* A run that spent its whole trial budget (or stalled) without one
       success is a persistently failing backend in all but name. *)
    Breaker_open { consecutive = faults.failed; last = last_failure_cause faults }

let tune_task t ~key ?seed ?batch_size ?patience ?max_measurements ?domains ?faults
    ?measure_policy ?journal ?checkpoint_every ~space () =
  let share_us = Budget.begin_task t.budget in
  let breaker = if t.policy.breaker_k > 0 then Some t.policy.breaker_k else None in
  match
    Tuner.tune_outcome ?seed ?batch_size ?patience ?max_measurements ?domains ?faults
      ?measure_policy ?journal ?checkpoint_every ~deadline_us:share_us
      ?max_consecutive_failures:breaker ~space ()
  with
  | Ok r ->
    let outcome =
      match r.stop with
      | Tuner.Breaker_tripped _ ->
        (* Keep the measured best — it is real — but tag the run degraded:
           the search was cut short by a backend that stopped answering. *)
        Degraded
          {
            reason = classify_stop ~share_us r.stop r.faults;
            config = r.best_config;
            runtime_us = r.best_runtime_us;
            faults = r.faults;
          }
      | _ ->
        if r.faults.replayed > 0 && r.faults.attempts = 0 then Replayed r else Tuned r
    in
    record_task t ~key ~share_us ~spent_us:r.faults.elapsed_us outcome
  | Error (e : Tuner.tune_error) ->
    let reason = classify_stop ~share_us e.stop e.faults in
    let config, runtime_us =
      analytic_best ~candidates:t.policy.analytic_candidates space
    in
    record_task t ~key ~share_us ~spent_us:e.faults.elapsed_us
      (Degraded { reason; config; runtime_us; faults = e.faults })

let record_cached t ~key (r : Tuner.result) =
  record_task t ~key ~share_us:(Budget.begin_task t.budget) ~spent_us:0.0 (Replayed r)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let report_to_string (r : report) =
  let b = Buffer.create 512 in
  let f = r.faults in
  Buffer.add_string b
    (Printf.sprintf "run health: %d task(s), budget %s\n" (List.length r.tasks)
       (if Float.is_finite r.budget_total_us then
          Printf.sprintf "%.0f/%.0fus spent" r.budget_spent_us r.budget_total_us
        else Printf.sprintf "unbounded (%.0fus spent)" r.budget_spent_us));
  let count lbl = List.length (List.filter (fun t -> outcome_label t.outcome = lbl) r.tasks) in
  Buffer.add_string b
    (Printf.sprintf "  outcomes: %d tuned, %d replayed, %d degraded, %d failed\n"
       (count "tuned") (count "replayed") (count "degraded") (count "failed"));
  Buffer.add_string b
    (Printf.sprintf
       "  faults: %d failed trials (%d launch, %d deadline), %d retries, %d replayed, %d journal records dropped\n"
       f.failed f.launch_failures f.deadlines_exceeded f.retries f.replayed
       f.journal_dropped);
  if r.pool_restarts > 0 || r.pool_degraded then
    Buffer.add_string b
      (Printf.sprintf "  pool: %d worker crash(es) recovered%s\n" r.pool_restarts
         (if r.pool_degraded then ", DEGRADED (restart budget exhausted)" else ""));
  List.iter
    (fun t ->
      let rt =
        match outcome_runtime_us t.outcome with
        | Some us -> Printf.sprintf "%.1fus" us
        | None -> "-"
      in
      let detail =
        match t.outcome with
        | Degraded { reason; _ } -> " [" ^ degrade_reason_to_string reason ^ "]"
        | Failed c -> " [" ^ cause_to_string c ^ "]"
        | Tuned _ | Replayed _ -> ""
      in
      Buffer.add_string b
        (Printf.sprintf "  %-10s %s  %s%s\n" (outcome_label t.outcome) rt t.key detail))
    r.tasks;
  Buffer.contents b
