type algorithm = Direct_dataflow | Winograd_dataflow of int

type t = {
  algorithm : algorithm;
  layout : Tensor.Layout.t;
  tile_x : int;
  tile_y : int;
  tile_z : int;
  threads_x : int;
  threads_y : int;
  threads_z : int;
  unroll : int;
  vector_width : int;
  double_buffer : bool;
}

let threads t = t.threads_x * t.threads_y * t.threads_z

let algorithm_to_string = function
  | Direct_dataflow -> "direct"
  | Winograd_dataflow e -> Printf.sprintf "winograd-F(%d)" e

let to_string t =
  Printf.sprintf "%s %s tile=%dx%dx%d threads=%dx%dx%d unroll=%d vec=%d db=%b"
    (algorithm_to_string t.algorithm)
    (Tensor.Layout.to_string t.layout)
    t.tile_x t.tile_y t.tile_z t.threads_x t.threads_y t.threads_z t.unroll t.vector_width
    t.double_buffer

let ceil_div a b = (a + b - 1) / b

let working_set_elems (spec : Conv.Conv_spec.t) t =
  match t.algorithm with
  | Direct_dataflow ->
    Conv.Tiled_direct.working_set spec
      ~tile:{ Conv.Tiled_direct.x = t.tile_x; y = t.tile_y; z = t.tile_z }
      ~alpha:1
  | Winograd_dataflow e ->
    Conv.Tiled_winograd.working_set ~e spec
      ~tile:{ Conv.Tiled_winograd.x = t.tile_x; y = t.tile_y; z = t.tile_z }

(* Double buffering duplicates the streaming stage buffers (input tile and
   weight slice), not the resident accumulators; approximate that as 25%. *)
let shmem_bytes spec t =
  let ws = working_set_elems spec t in
  let elems = if t.double_buffer then ws + (ws / 4) else ws in
  4 * elems

let blocks (spec : Conv.Conv_spec.t) t =
  let w_out = Conv.Conv_spec.w_out spec and h_out = Conv.Conv_spec.h_out spec in
  spec.batch * ceil_div w_out t.tile_x * ceil_div h_out t.tile_y
  * ceil_div spec.c_out t.tile_z

let input_row_width (spec : Conv.Conv_spec.t) t =
  match t.algorithm with
  | Direct_dataflow -> Conv.Tiled_direct.input_tile_w spec t.tile_x
  | Winograd_dataflow _ -> t.tile_x + spec.k_w - 1

let layout_index = function Tensor.Layout.CHW -> 0 | CWH -> 1 | HWC -> 2

let coalescing (spec : Conv.Conv_spec.t) t =
  let base = 0.45 in
  let layout_bonus = if Tensor.Layout.innermost_is_width t.layout then 0.25 else 0.0 in
  let row = float_of_int (input_row_width spec t * t.vector_width) in
  let width_bonus = 0.18 *. Float.min 1.0 (row /. 32.0) in
  let vector_bonus = 0.04 *. (log (float_of_int t.vector_width) /. log 2.0) in
  Float.min 0.98 (base +. layout_bonus +. width_bonus +. vector_bonus)

let compute_efficiency (spec : Conv.Conv_spec.t) t =
  let warp = 32 in
  let n = threads t in
  let warp_eff = float_of_int n /. float_of_int (ceil_div n warp * warp) in
  let unroll_eff =
    match t.unroll with 1 -> 0.85 | 2 -> 0.93 | 4 -> 1.0 | 8 -> 0.96 | _ -> 0.8
  in
  let db_bonus = if t.double_buffer then 1.05 else 1.0 in
  let w_out = Conv.Conv_spec.w_out spec and h_out = Conv.Conv_spec.h_out spec in
  let ragged extent tile_dim =
    let covered = ceil_div extent tile_dim * tile_dim in
    float_of_int extent /. float_of_int covered
  in
  let ragged_eff =
    sqrt (ragged w_out t.tile_x *. ragged h_out t.tile_y *. ragged spec.c_out t.tile_z)
  in
  (* Shared-memory bank conflicts when the staged input row strides hit the
     same bank: rows that are a multiple of the 32-bank width conflict. *)
  let row = input_row_width spec t in
  let bank_eff = if row > 1 && row mod 32 = 0 then 0.88 else 1.0 in
  let eff = 0.95 *. warp_eff *. unroll_eff *. db_bonus *. ragged_eff *. bank_eff in
  Float.max 0.05 (Float.min 1.0 eff)

let flops (spec : Conv.Conv_spec.t) t =
  match t.algorithm with
  | Direct_dataflow -> Conv.Conv_spec.flops spec
  | Winograd_dataflow e ->
    let r = spec.k_h in
    let alpha = e + r - 1 in
    let h_out = Conv.Conv_spec.h_out spec and w_out = Conv.Conv_spec.w_out spec in
    let tiles = spec.batch * ceil_div h_out e * ceil_div w_out e in
    let ft = float_of_int tiles in
    let fa = float_of_int alpha and fe = float_of_int e in
    let fa2 = fa *. fa in
    let cin = float_of_int spec.c_in and cout = float_of_int spec.c_out in
    let gemm = 2.0 *. ft *. fa2 *. cin *. cout in
    let input_tf = ft *. cin *. 4.0 *. (fa ** 3.0) in
    let output_tf = ft *. cout *. 4.0 *. fa2 *. fe in
    let kernel_tf = cin *. cout *. 4.0 *. fa2 *. float_of_int r in
    gemm +. input_tf +. output_tf +. kernel_tf

let io_elems (spec : Conv.Conv_spec.t) t =
  match t.algorithm with
  | Direct_dataflow ->
    Conv.Io_count.total
      (Conv.Tiled_direct.io_only spec
         ~tile:{ Conv.Tiled_direct.x = t.tile_x; y = t.tile_y; z = t.tile_z })
  | Winograd_dataflow e ->
    Conv.Io_count.total
      (Conv.Tiled_winograd.io_only ~e spec
         ~tile:{ Conv.Tiled_winograd.x = t.tile_x; y = t.tile_y; z = t.tile_z })

let to_kernel arch spec t =
  Gpu_sim.Kernel_cost.make
    ~coalescing:(coalescing spec t)
    ~compute_efficiency:(compute_efficiency spec t)
    ~flops:(flops spec t) ~io_elems:(io_elems spec t) ~threads_per_block:(threads t)
    ~shmem_bytes_per_block:(shmem_bytes spec t)
    ~blocks:(blocks spec t) ()
  |> fun kernel ->
  if
    not
      (Gpu_sim.Occupancy.launchable arch ~threads_per_block:kernel.threads_per_block
         ~shmem_bytes_per_block:kernel.shmem_bytes_per_block)
  then invalid_arg "Config.to_kernel: not launchable";
  kernel

let n_features = 14

let features (spec : Conv.Conv_spec.t) t =
  let r = Conv.Conv_spec.reuse spec in
  let ratio =
    log (float_of_int (t.tile_x * t.tile_y) /. (r *. float_of_int t.tile_z))
  in
  [|
    float_of_int t.tile_x;
    float_of_int t.tile_y;
    float_of_int t.tile_z;
    ratio;
    float_of_int (threads t);
    float_of_int t.threads_x;
    float_of_int t.threads_y;
    float_of_int t.threads_z;
    float_of_int t.unroll;
    float_of_int t.vector_width;
    float_of_int (layout_index t.layout);
    (if t.double_buffer then 1.0 else 0.0);
    log (float_of_int (working_set_elems spec t));
    log (float_of_int (blocks spec t));
  |]

let to_compact t =
  let alg = match t.algorithm with Direct_dataflow -> "d" | Winograd_dataflow e -> "w" ^ string_of_int e in
  Printf.sprintf "%s|%s|%d,%d,%d|%d,%d,%d|%d|%d|%d" alg
    (Tensor.Layout.to_string t.layout)
    t.tile_x t.tile_y t.tile_z t.threads_x t.threads_y t.threads_z t.unroll t.vector_width
    (if t.double_buffer then 1 else 0)

let of_compact line =
  match String.split_on_char '|' line with
  | [ alg; layout; tiles; threads; unroll; vector; db ] -> begin
    let algorithm =
      if alg = "d" then Some Direct_dataflow
      else if String.length alg > 1 && alg.[0] = 'w' then
        int_of_string_opt (String.sub alg 1 (String.length alg - 1))
        |> Option.map (fun e -> Winograd_dataflow e)
      else None
    in
    let triple s =
      match String.split_on_char ',' s with
      | [ a; b; c ] -> begin
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
        | Some a, Some b, Some c -> Some (a, b, c)
        | _ -> None
      end
      | _ -> None
    in
    match
      (algorithm, Tensor.Layout.of_string layout, triple tiles, triple threads,
       int_of_string_opt unroll, int_of_string_opt vector, int_of_string_opt db)
    with
    | Some algorithm, Some layout, Some (tx, ty, tz), Some (hx, hy, hz), Some unroll,
      Some vector_width, Some db ->
      Some
        {
          algorithm;
          layout;
          tile_x = tx;
          tile_y = ty;
          tile_z = tz;
          threads_x = hx;
          threads_y = hy;
          threads_z = hz;
          unroll;
          vector_width;
          double_buffer = db <> 0;
        }
    | _ -> None
  end
  | _ -> None
