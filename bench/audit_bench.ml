(* Audit-overhead benchmark: what one answer-integrity check costs at each
   trust boundary, and how fast the cache scrubber moves.

   Modes:
     smoke  - tiny run: checks the auditor accepts genuine entries and
              rejects a tampered one, prints timings (runs in @audit-smoke;
              AUDIT_DEEP=1 raises the iteration counts)
     json   - full measurement, writes BENCH_audit.json
     gold   - audits every checked-in gold file and prints the q-ratio and
              runtime-band envelope (a calibration diagnostic) *)

let deep = Sys.getenv_opt "AUDIT_DEEP" = Some "1"

let time_us f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e6)

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))

(* --- a pool of genuine claims -------------------------------------------- *)

let arches = Gpu_sim.Arch.all

let specs =
  [
    Conv.Conv_spec.square ~c_in:64 ~size:56 ~c_out:64 ~k:3 ();
    Conv.Conv_spec.square ~c_in:128 ~size:28 ~c_out:128 ~k:3 ();
    Conv.Conv_spec.square ~c_in:32 ~size:14 ~c_out:64 ~k:1 ();
    Conv.Conv_spec.square ~c_in:16 ~size:16 ~c_out:16 ~k:3 ~pad:1 ();
  ]

type claim = {
  canonical : string;
  key : string;
  config : Core.Config.t;
  runtime_us : float;
  gflops : float;
  predicted : float;
}

let genuine_claims () =
  List.concat_map
    (fun arch ->
      List.map
        (fun spec ->
          let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
          let config = Core.Search_space.default_config space in
          let canonical = Core.Search_space.canonical space in
          let predicted = Verify.Audit.predicted_us arch spec config in
          {
            canonical;
            key = Verify.Audit.content_key canonical;
            config;
            runtime_us = predicted;
            gflops = Core.Tuner.nominal_gflops spec ~runtime_us:predicted;
            predicted;
          })
        specs)
    arches

let check_claim c =
  Verify.Audit.check ~key:c.key ~gflops:c.gflops ~predicted_us:c.predicted
    ~canonical:c.canonical ~config:c.config ~runtime_us:c.runtime_us ()

(* --- the measured quantities --------------------------------------------- *)

let audit_latency_us ~iters claims =
  let samples = ref [] in
  for _ = 1 to iters do
    List.iter
      (fun c ->
        let v, us = time_us (fun () -> check_claim c) in
        (match v with
        | Verify.Audit.Ok -> ()
        | Verify.Audit.Suspect _ ->
          failwith ("genuine claim rejected: " ^ Verify.Audit.verdict_to_string v));
        samples := us :: !samples)
      claims
  done;
  !samples

let cache_with ~audit ~dir claims =
  let path = Filename.concat dir (Printf.sprintf "bench-%b.cache" audit) in
  if Sys.file_exists path then Sys.remove path;
  let qp = path ^ ".quarantine" in
  if Sys.file_exists qp then Sys.remove qp;
  let cache = Service.Result_cache.load ~audit ~generation:"bench" path in
  List.iter
    (fun c ->
      Service.Result_cache.put cache
        {
          Service.Result_cache.key = c.key;
          canonical = c.canonical;
          source = Service.Protocol.Src_tuned;
          runtime_us = c.runtime_us;
          gflops = c.gflops;
          predicted_us = c.predicted;
          trials = 1;
          config = c.config;
        })
    claims;
  cache

let warm_hit_p50_us ~audit ~dir ~iters claims =
  let cache = cache_with ~audit ~dir claims in
  let samples = ref [] in
  for _ = 1 to iters do
    List.iter
      (fun c ->
        let hit, us =
          time_us (fun () -> Service.Result_cache.find cache ~canonical:c.canonical)
        in
        if hit = None then failwith "warm hit missed";
        samples := us :: !samples)
      claims
  done;
  percentile 0.5 !samples

let scrub_throughput ~dir ~rounds claims =
  let cache = cache_with ~audit:false ~dir claims in
  let n = Service.Result_cache.entries cache in
  let t0 = Unix.gettimeofday () in
  let examined = ref 0 in
  for _ = 1 to rounds do
    (* full passes via the incremental stepper, as the engine would run it *)
    let pass = ref 0 in
    while !pass < n do
      pass := !pass + Service.Result_cache.scrub_step cache ~n:8
    done;
    examined := !examined + !pass
  done;
  float_of_int !examined /. (Unix.gettimeofday () -. t0)

(* --- modes --------------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "audit_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let tampered_rejected claims =
  let c = List.hd claims in
  match
    Verify.Audit.check ~key:c.key ~gflops:c.gflops
      ~canonical:c.canonical ~config:c.config ~runtime_us:(c.runtime_us *. 2.0) ()
  with
  | Verify.Audit.Suspect _ -> true
  | Verify.Audit.Ok -> false

let run_measurements ~iters ~rounds =
  let claims = genuine_claims () in
  if not (tampered_rejected claims) then failwith "tampered claim passed the audit";
  let lat = audit_latency_us ~iters claims in
  with_temp_dir (fun dir ->
      let hit_plain = warm_hit_p50_us ~audit:false ~dir ~iters claims in
      let hit_audited = warm_hit_p50_us ~audit:true ~dir ~iters claims in
      let scrub = scrub_throughput ~dir ~rounds claims in
      ( List.length claims,
        percentile 0.5 lat,
        percentile 0.9 lat,
        hit_plain,
        hit_audited,
        scrub ))

let smoke () =
  let iters = if deep then 200 else 20 in
  let rounds = if deep then 50 else 5 in
  let n, p50, p90, hit_plain, hit_audited, scrub = run_measurements ~iters ~rounds in
  Printf.printf "audit bench (%s): %d claims x %d iters\n"
    (if deep then "deep" else "smoke")
    n iters;
  Printf.printf "  audit check      p50 %.1fus  p90 %.1fus\n" p50 p90;
  Printf.printf "  warm hit         p50 %.2fus plain -> %.2fus audited (delta %.2fus)\n"
    hit_plain hit_audited (hit_audited -. hit_plain);
  Printf.printf "  scrub throughput %.0f entries/s\n" scrub

let json path =
  let iters = if deep then 500 else 100 in
  let rounds = if deep then 100 else 20 in
  let n, p50, p90, hit_plain, hit_audited, scrub = run_measurements ~iters ~rounds in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"audit\",\n";
  Buffer.add_string b (Printf.sprintf "  \"claims\": %d,\n" n);
  Buffer.add_string b (Printf.sprintf "  \"iters\": %d,\n" iters);
  Buffer.add_string b (Printf.sprintf "  \"audit_check_p50_us\": %.2f,\n" p50);
  Buffer.add_string b (Printf.sprintf "  \"audit_check_p90_us\": %.2f,\n" p90);
  Buffer.add_string b (Printf.sprintf "  \"warm_hit_p50_us_plain\": %.2f,\n" hit_plain);
  Buffer.add_string b (Printf.sprintf "  \"warm_hit_p50_us_audited\": %.2f,\n" hit_audited);
  Buffer.add_string b
    (Printf.sprintf "  \"warm_hit_p50_delta_us\": %.2f,\n" (hit_audited -. hit_plain));
  Buffer.add_string b (Printf.sprintf "  \"scrub_entries_per_s\": %.0f\n" scrub);
  Buffer.add_string b "}\n";
  Util.Durable.write_atomic path (Buffer.contents b);
  Printf.printf "wrote %s\n" path

(* Audits every checked-in gold file; prints the envelope the strict policy
   must accommodate (smallest q ratio, widest measured-vs-analytic gap). *)
let gold dir =
  let files = Sys.readdir dir |> Array.to_list |> List.filter (fun f -> Filename.check_suffix f ".gold") in
  let min_q = ref Float.infinity and max_band = ref 0.0 and rows = ref 0 and bad = ref 0 in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match Regress.Gold.read path with
      | Error e ->
        incr bad;
        Printf.printf "FAIL %s: %s\n" f e
      | Ok file ->
        List.iter
          (fun (r : Regress.Gold.layer_record) ->
            if r.config <> "library" then begin
              incr rows;
              if Float.is_finite r.q_ratio && r.q_ratio < !min_q then min_q := r.q_ratio;
              let band = Float.abs ((r.ours_us /. r.predicted_us) -. 1.0) in
              if Float.is_finite band && band > !max_band then max_band := band
            end)
          file.layers)
    files;
  Printf.printf "gold audit: %d files, %d tuned rows, %d failures\n" (List.length files)
    !rows !bad;
  Printf.printf "  min q_ratio %.6f, max |ours/predicted - 1| %.6f\n" !min_q !max_band;
  if !bad > 0 then exit 1

let () =
  match Array.to_list Sys.argv with
  | [ _; "smoke" ] -> smoke ()
  | [ _; "json"; path ] -> json path
  | [ _; "gold"; dir ] -> gold dir
  | _ ->
    prerr_endline "usage: audit_bench (smoke | json FILE | gold DIR)";
    exit 2
