(* Cross-architecture fleet sweep bench (the paper's Figure 13 axis: the same
   networks tuned on every GPU preset), riding the gold-harness sweep so the
   bench, the golden files and the zoo all measure through one code path.

   Usage:  dune exec bench/fleet.exe        full fleet (6 models x 4 arches)
           dune exec bench/fleet.exe smoke  2 models x 2 arches

   Prints the per-pair fleet table plus a per-architecture aggregate and
   writes BENCH_fleet.json to the cwd.  Scratch output (gold snapshots of
   this run, timing markers) goes under fleet_bench_out/. *)

let smoke_models () =
  List.filter
    (fun (m : Cnn.Models.t) ->
      List.mem (Regress.Gold.slug m.name) [ "resnet-18"; "mobilenet-v1" ])
    (Regress.Sweep.fleet_models ())

let smoke_arches () = [ Gpu_sim.Arch.v100; Gpu_sim.Arch.gfx906 ]

let () =
  let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke" in
  let models = if smoke then Some (smoke_models ()) else None in
  let arches = if smoke then Some (smoke_arches ()) else None in
  let summary =
    Regress.Harness.run ?models ?arches ~gold_dir:"fleet_bench_out/gold"
      ~out_dir:"fleet_bench_out" ~bench_path:"BENCH_fleet.json"
      Regress.Harness.Gold
  in
  Regress.Harness.print_summary summary;
  let by_arch = Hashtbl.create 8 in
  List.iter
    (fun (r : Regress.Harness.pair_report) ->
      let alias = Gpu_sim.Arch.alias r.pair.arch in
      let logs, wall = try Hashtbl.find by_arch alias with Not_found -> ([], 0.0) in
      Hashtbl.replace by_arch alias
        (log r.pair.timing.speedup :: logs, wall +. r.pair.wall_s))
    summary.reports;
  let table = Util.Table.create [ "arch"; "models"; "geomean speedup"; "wall (s)" ] in
  List.iter
    (fun arch ->
      let alias = Gpu_sim.Arch.alias arch in
      match Hashtbl.find_opt by_arch alias with
      | None -> ()
      | Some (logs, wall) ->
        let n = List.length logs in
        let geomean = exp (List.fold_left ( +. ) 0.0 logs /. float_of_int n) in
        Util.Table.add_row table
          [ alias; string_of_int n; Util.Table.cell_f geomean;
            Printf.sprintf "%.2f" wall ])
    Gpu_sim.Arch.all;
  print_newline ();
  Util.Table.print table;
  print_endline "wrote BENCH_fleet.json"
