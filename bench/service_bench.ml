(* Tuning-service benchmark: what the shared result cache and request
   coalescing buy, and what crash recovery costs.

   Usage:
     dune exec bench/service_bench.exe            full sweep (ResNet-stage
                                                  shapes, 200-trial budget);
                                                  writes BENCH_service.json
                                                  to the cwd
     dune exec bench/service_bench.exe -- smoke   <5s sanity check, no file
                                                  output: asserts warm-cache
                                                  hits are faster than cold
                                                  tunes, N identical
                                                  concurrent requests run
                                                  exactly one tuning task,
                                                  and a corrupted cache
                                                  salvages and serves

   Three measurements, all through the same deterministic Engine the daemon
   runs (in-process; no sockets, so the numbers isolate the service logic
   from kernel round-trips):

   - cold vs warm latency per shape: a first-ever TUNE pays the full
     supervised search; a repeat is a content-addressed cache hit;
   - coalescing factor: N identical requests arriving together share one
     tuning task (factor = N requests answered / tunes run);
   - recovery: after kill -9 (no drain) plus seeded Fs_faults corruption,
     the time to salvage + repair the cache and answer warm again. *)

let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke"

(* Salvage warnings from the deliberate corruption phase are expected. *)
let () = Util.Log.set_quiet true

let shapes =
  if smoke then [ "tiny-3x3", "TUNE cin=4 size=8 cout=4 k=3"; "tiny-1x1", "TUNE cin=8 size=8 cout=4 k=1" ]
  else
    [
      ("resnet-conv2", "TUNE cin=64 size=56 cout=64 k=3 pad=1");
      ("resnet-conv3", "TUNE cin=128 size=28 cout=128 k=3 pad=1");
      ("resnet-conv4", "TUNE cin=256 size=14 cout=256 k=3 pad=1");
    ]

let settings =
  {
    Service.Engine.default_settings with
    budget_trials = (if smoke then 16 else 200);
    max_pending = 32;
  }

let temp_cache () =
  let path = Filename.temp_file "service-bench" ".cache" in
  Sys.remove path;
  path

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let one_request engine line =
  let client = Service.Engine.connect engine in
  Service.Engine.submit engine client line;
  match Service.Engine.run_until_idle engine with
  | [ (_, reply) ] -> (
    match Service.Protocol.parse_response reply with
    | Some (Service.Protocol.Result p) -> p
    | _ ->
      Printf.eprintf "FAIL: expected an OK response, got %s\n" reply;
      exit 1)
  | rs ->
    Printf.eprintf "FAIL: expected one response, got %d\n" (List.length rs);
    exit 1

let source p = Service.Protocol.source_to_string p.Service.Protocol.source

let json_escape = String.map (fun c -> if c = '"' || c = '\\' then '_' else c)

let () =
  let cache = temp_cache () in
  let engine = Service.Engine.create ~settings ~cache () in

  (* --- cold vs warm ------------------------------------------------- *)
  Printf.printf "Service bench (%s): %d shapes, %d trials/tune\n%!"
    (if smoke then "smoke" else "full")
    (List.length shapes) settings.budget_trials;
  let per_shape =
    List.map
      (fun (name, line) ->
        let cold_p, cold = time (fun () -> one_request engine line) in
        let warm_p, warm = time (fun () -> one_request engine line) in
        if source cold_p <> "tuned" || source warm_p <> "cached" || warm_p.trials <> 0
        then begin
          Printf.eprintf "FAIL: %s expected tuned-then-cached, got %s/%s\n" name
            (source cold_p) (source warm_p);
          exit 1
        end;
        Printf.printf "  %-14s cold %8.2f ms (%d trials)   warm %8.3f ms   x%.0f\n%!"
          name (cold *. 1e3) cold_p.trials (warm *. 1e3) (cold /. Float.max warm 1e-9);
        (name, cold, warm))
      shapes
  in

  (* --- coalescing under N identical concurrent requests ------------- *)
  let n = if smoke then 8 else 32 in
  let burst_line = "TUNE cin=32 size=14 cout=32 k=3 pad=1" in
  let before = (Service.Engine.counters engine).tunes_run in
  let responses, burst_wall =
    time (fun () ->
        let clients = List.init n (fun _ -> Service.Engine.connect engine) in
        List.iter (fun c -> Service.Engine.submit engine c burst_line) clients;
        Service.Engine.run_until_idle engine)
  in
  let burst_tunes = (Service.Engine.counters engine).tunes_run - before in
  if List.length responses <> n || burst_tunes <> 1 then begin
    Printf.eprintf "FAIL: burst of %d answered %d times with %d tunes\n" n
      (List.length responses) burst_tunes;
    exit 1
  end;
  Printf.printf
    "  burst: %d identical requests -> %d tuning task(s), %.2f ms total (coalescing factor %d)\n%!"
    n burst_tunes (burst_wall *. 1e3) (n / burst_tunes);

  (* --- crash + corruption recovery ---------------------------------- *)
  (* Kill -9: no drain, the append-only file is all that survives.  The
     smoke gate injects a fixed garbage-append (the valid prefix — every
     entry — must survive, so it can assert); the full bench draws a random
     operation and reports whatever the salvage managed. *)
  let op =
    if smoke then begin
      let op = Util.Fs_faults.Garbage_append "torn tail \x00\xff" in
      Util.Fs_faults.apply cache op;
      op
    end
    else Util.Fs_faults.inject (Util.Rng.create 42) cache
  in
  let generation = Service.Engine.generation_of_settings settings in
  let salvaged, salvage_wall =
    time (fun () -> Service.Result_cache.load ~generation cache)
  in
  let restarted = Service.Engine.create ~settings ~cache () in
  let warm_after, restart_warm_wall =
    time (fun () -> one_request restarted (snd (List.hd shapes)))
  in
  let survived = source warm_after = "cached" in
  Printf.printf
    "  recovery: %s -> salvage %.3f ms (%d/%d entries, %d dropped), first answer %.3f ms (%s)\n%!"
    (Util.Fs_faults.describe op) (salvage_wall *. 1e3)
    (Service.Result_cache.entries salvaged)
    (List.length shapes + 1)
    (Service.Result_cache.dropped salvaged)
    (restart_warm_wall *. 1e3) (source warm_after);
  if smoke && Service.Result_cache.entries salvaged = 0 then begin
    (* Garbage appends and mid-file bit flips keep a valid prefix; only a
       truncation landing inside the first record can empty the smoke
       cache, and seed 42 does not. *)
    Printf.eprintf "FAIL: salvage kept nothing\n";
    exit 1
  end;

  if smoke then print_endline "service bench smoke ok"
  else begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"bench\": \"service\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"budget_trials\": %d,\n" settings.budget_trials);
    Buffer.add_string buf "  \"shapes\": [\n";
    List.iteri
      (fun i (name, cold, warm) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": \"%s\", \"cold_ms\": %.3f, \"warm_ms\": %.4f, \"speedup\": %.0f}"
             (json_escape name) (cold *. 1e3) (warm *. 1e3)
             (cold /. Float.max warm 1e-9)))
      per_shape;
    Buffer.add_string buf "\n  ],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"coalescing\": {\"requests\": %d, \"tunes_run\": %d, \"factor\": %d, \"wall_ms\": %.3f},\n"
         n burst_tunes (n / burst_tunes) (burst_wall *. 1e3));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"recovery\": {\"injection\": \"%s\", \"salvage_ms\": %.4f, \"entries_salvaged\": %d, \"entries_dropped\": %d, \"warm_after_restart\": %b, \"first_answer_ms\": %.4f}\n"
         (json_escape (Util.Fs_faults.describe op))
         (salvage_wall *. 1e3)
         (Service.Result_cache.entries salvaged)
         (Service.Result_cache.dropped salvaged)
         survived (restart_warm_wall *. 1e3));
    Buffer.add_string buf "}\n";
    Util.Durable.write_atomic "BENCH_service.json" (Buffer.contents buf);
    print_endline "wrote BENCH_service.json"
  end;
  if Sys.file_exists cache then Sys.remove cache
