(* Multicore tuning-engine scaling benchmark.

   Usage:
     dune exec bench/scaling.exe            full sweep over 1/2/4/8 domains on a
                                            ResNet-style layer set; verifies the
                                            parallel results are bit-identical to
                                            the sequential run and writes
                                            BENCH_tuning_scaling.json to the cwd
     dune exec bench/scaling.exe -- smoke   <10s sanity check (no file output):
                                            asserts tune/explore at several
                                            domain counts reproduce the
                                            sequential result at a fixed seed
     dune exec bench/scaling.exe -- faults  tunes the layer set under the
                                            default fault profile and prints
                                            per-layer failure/retry statistics,
                                            verifying parallel == sequential
                                            holds under injected faults too
     dune exec bench/scaling.exe -- chaos   supervised whole-model campaign:
                                            faults plus a finite global budget,
                                            printing the run health report and
                                            checking fault-free supervision is
                                            bit-identical to the plain engine

   The smoke mode backs the [@bench-smoke] dune alias so CI can gate on
   parallel == sequential cheaply. *)

let arch = Gpu_sim.Arch.v100

(* ResNet conv stages: channel/resolution pairs from the stage entry layers. *)
let layers =
  [
    ("resnet-conv2", Conv.Conv_spec.make ~c_in:64 ~h_in:56 ~w_in:56 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 ());
    ("resnet-conv3", Conv.Conv_spec.make ~c_in:128 ~h_in:28 ~w_in:28 ~c_out:128 ~k_h:3 ~k_w:3 ~pad:1 ());
    ("resnet-conv4", Conv.Conv_spec.make ~c_in:256 ~h_in:14 ~w_in:14 ~c_out:256 ~k_h:3 ~k_w:3 ~pad:1 ());
  ]

let domain_counts = [ 1; 2; 4; 8 ]

let tune_layers ?faults ~domains ~max_measurements ~seed specs =
  (* Workers idle on a condition variable when unused, so growing the shared
     pool for the largest sweep point does not slow the smaller ones. *)
  Util.Pool.ensure_workers (Util.Pool.default ()) (domains - 1);
  List.map
    (fun (name, spec) ->
      let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
      let result = Core.Tuner.tune ~seed ~max_measurements ~domains ?faults ~space () in
      (name, result))
    specs

let check_identical ~domains (baseline : (string * Core.Tuner.result) list)
    (candidate : (string * Core.Tuner.result) list) =
  List.iter2
    (fun (name, (a : Core.Tuner.result)) (_, (b : Core.Tuner.result)) ->
      if
        a.best_config <> b.best_config
        || a.best_runtime_us <> b.best_runtime_us
        || a.measurements <> b.measurements
        || a.history <> b.history
      then begin
        Printf.eprintf
          "FAIL: %s at domains=%d diverged from the sequential run (best %.4f vs %.4f us)\n"
          name domains b.best_runtime_us a.best_runtime_us;
        exit 1
      end)
    baseline candidate

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let json_escape = String.map (fun c -> if c = '"' || c = '\\' then '_' else c)

let full () =
  let seed = 0 and max_measurements = 400 in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "Tuning scaling sweep: %d layers x %d measurements, host cores %d\n%!"
    (List.length layers) max_measurements host_cores;
  let runs =
    List.map
      (fun domains ->
        let results, wall =
          time (fun () -> tune_layers ~domains ~max_measurements ~seed layers)
        in
        Printf.printf "  domains=%d  wall %.2fs\n%!" domains wall;
        (domains, wall, results))
      domain_counts
  in
  let _, base_wall, baseline = List.hd runs in
  List.iter (fun (domains, _, results) -> check_identical ~domains baseline results) runs;
  print_endline "  all domain counts reproduce the sequential results bit-identically";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"tuning_scaling\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf (Printf.sprintf "  \"max_measurements_per_layer\": %d,\n" max_measurements);
  Buffer.add_string buf (Printf.sprintf "  \"host_recommended_domains\": %d,\n" host_cores);
  Buffer.add_string buf "  \"layers\": [";
  List.iteri
    (fun i (name, spec) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"name\": \"%s\", \"spec\": \"%s\"}" (json_escape name)
           (json_escape (Conv.Conv_spec.to_string spec))))
    layers;
  Buffer.add_string buf "],\n  \"results\": [\n";
  List.iteri
    (fun i (domains, wall, results) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let best =
        List.map
          (fun (name, (r : Core.Tuner.result)) ->
            Printf.sprintf "{\"layer\": \"%s\", \"best_us\": %.4f, \"measurements\": %d}"
              (json_escape name) r.best_runtime_us r.measurements)
          results
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"wall_s\": %.4f, \"speedup_vs_sequential\": %.3f,\n     \"layers\": [%s]}"
           domains wall (base_wall /. wall) (String.concat ", " best)))
    runs;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"note\": \"identical best config/runtime/history at every domain count; \
        wall-clock measured on a host whose recommended domain count is %d — \
        speedup above 1 requires more physical cores, so on a 1-core host the \
        sweep reports the coordination overhead instead\"\n}\n"
       host_cores);
  (* Atomic: a crash mid-write must not leave a torn JSON where a previous
     sweep's complete results used to be. *)
  Util.Durable.write_atomic "BENCH_tuning_scaling.json" (Buffer.contents buf);
  print_endline "wrote BENCH_tuning_scaling.json"

let smoke () =
  let spec = Conv.Conv_spec.make ~c_in:16 ~h_in:14 ~w_in:14 ~c_out:16 ~k_h:3 ~k_w:3 ~pad:1 () in
  let smoke_layers = [ ("smoke", spec) ] in
  let baseline = tune_layers ~domains:1 ~max_measurements:60 ~seed:11 smoke_layers in
  List.iter
    (fun domains ->
      check_identical ~domains baseline
        (tune_layers ~domains ~max_measurements:60 ~seed:11 smoke_layers))
    [ 2; 4 ];
  (* The explorer alone, too: candidate rankings must be domain-invariant. *)
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let model = Core.Cost_model.create spec in
  let mrng = Util.Rng.create 3 in
  for _ = 1 to 32 do
    let cfg = Core.Search_space.sample space mrng in
    Core.Cost_model.add_measurement model cfg (Core.Tuner.measure_config arch spec cfg)
  done;
  Core.Cost_model.retrain model;
  let ranking domains =
    Core.Explorer.explore ~domains ~space ~model ~rng:(Util.Rng.create 7) ~starts:[] ()
  in
  let sequential = ranking 1 in
  List.iter
    (fun domains ->
      if ranking domains <> sequential then begin
        Printf.eprintf "FAIL: explorer ranking diverged at domains=%d\n" domains;
        exit 1
      end)
    [ 2; 4; 8 ];
  print_endline "bench-smoke OK: parallel tuner and explorer reproduce sequential results"

let faults_demo () =
  let profile = Gpu_sim.Faults.default in
  let seed = 5 and max_measurements = 150 in
  Printf.printf "Tuning under injected faults: %s\n%!" (Gpu_sim.Faults.to_string profile);
  let baseline = tune_layers ~faults:profile ~domains:1 ~max_measurements ~seed layers in
  List.iter
    (fun (name, (r : Core.Tuner.result)) ->
      let f = r.faults in
      Printf.printf
        "  %-14s best %8.1f us  measured %3d  failed %2d (launch %d, deadline %d)  \
         attempts %4d  retries %3d (timeouts %d, nan %d)  outliers dropped %d\n%!"
        name r.best_runtime_us r.measurements f.failed f.launch_failures
        f.deadlines_exceeded f.attempts f.retries f.timeouts f.nan_readings
        f.outliers_rejected)
    baseline;
  (* The PR 1 contract must survive the fault layer: injection is a pure
     function of (config, seed, attempt), never of scheduling. *)
  List.iter
    (fun domains ->
      check_identical ~domains baseline
        (tune_layers ~faults:profile ~domains ~max_measurements ~seed layers))
    [ 2; 4 ];
  print_endline "  parallel runs reproduce the sequential results under faults"

(* Whole-model tuning under supervision with everything going wrong at once:
   injected measurement faults plus a finite global budget.  Reports the
   health summary and the wall time of the supervised campaign, and checks
   the supervision layer is pay-for-what-you-use — absent faults and budget
   it reproduces the unsupervised timings exactly. *)
let chaos_demo () =
  let model =
    {
      Cnn.Models.name = "squeezenet-head";
      layers =
        (match Cnn.Models.squeezenet.layers with
        | a :: b :: c :: d :: _ -> [ a; b; c; d ]
        | l -> l);
    }
  in
  let seed = 9 and max_measurements = 80 in
  Printf.printf "Supervised chaos campaign on %s (%d layer shapes)\n%!" model.name
    (List.length model.layers);
  let clean, clean_wall =
    time (fun () -> Cnn.Runner.time_model ~seed ~max_measurements arch model)
  in
  Cnn.Runner.clear_cache ();
  let supervised, sup_wall =
    time (fun () ->
        Cnn.Runner.time_model ~seed ~max_measurements
          ~supervise:Core.Supervisor.default_policy arch model)
  in
  if supervised.ours_total_us <> clean.ours_total_us then begin
    Printf.eprintf "FAIL: fault-free supervised run diverged (%.4f vs %.4f us)\n"
      supervised.ours_total_us clean.ours_total_us;
    exit 1
  end;
  Printf.printf
    "  fault-free: unsupervised %.2fs, supervised %.2fs — timings bit-identical\n%!"
    clean_wall sup_wall;
  Cnn.Runner.clear_cache ();
  let policy = { Core.Supervisor.default_policy with budget_us = 2.0e6 } in
  let chaotic, chaos_wall =
    time (fun () ->
        Cnn.Runner.time_model ~seed ~max_measurements ~faults:Gpu_sim.Faults.default
          ~supervise:policy arch model)
  in
  Printf.printf "  chaos (faults + 2ms virtual budget): wall %.2fs, speedup %.2fx\n%!"
    chaos_wall chaotic.speedup;
  match chaotic.health with
  | None -> prerr_endline "FAIL: supervised run produced no health report"; exit 1
  | Some h -> print_string (Core.Supervisor.report_to_string h)

let () =
  match Array.to_list Sys.argv |> List.tl with
  | [] -> full ()
  | [ "smoke" ] -> smoke ()
  | [ "faults" ] -> faults_demo ()
  | [ "chaos" ] -> chaos_demo ()
  | _ ->
    prerr_endline "usage: scaling.exe [smoke|faults|chaos]";
    exit 1
