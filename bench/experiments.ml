(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 7) on the simulated GPUs, printing the same rows or
   series the paper reports.  The per-experiment index lives in DESIGN.md;
   paper-vs-measured comparisons are recorded in EXPERIMENTS.md. *)

module Spec = Conv.Conv_spec

let seed = 0
let tuning_budget = 200

let header title =
  Printf.printf "\n=== %s ===\n\n" title

(* When CONV_IO_CSV_DIR is set, every printed table is also mirrored to a CSV
   file in that directory. *)
let print_table ?name table =
  Util.Table.print table;
  match (Sys.getenv_opt "CONV_IO_CSV_DIR", name) with
  | Some dir, Some name -> Util.Table.to_csv table (Filename.concat dir (name ^ ".csv"))
  | _ -> ()

let tuned arch spec algorithm =
  Cnn.Runner.tuned_runtime ~seed ~max_measurements:tuning_budget arch spec algorithm

let geomean xs = Util.Stats.geomean (Array.of_list xs)

(* ------------------------------------------------------------------ *)
(* Figure 9: dataflow + auto-tuning vs cuDNN, direct and Winograd,
   1080Ti; 3x3 kernels, C_in = 256, sweeping H_in/W_in, C_out, stride. *)

let fig9 () =
  header
    "Figure 9: speedup over cuDNN on GTX 1080 Ti (Hker=Wker=3, Cin=256)";
  let arch = Gpu_sim.Arch.gtx_1080_ti in
  let table =
    Util.Table.create
      [ "Hin/Win"; "Cout"; "stride"; "direct: cuDNN us"; "ours us"; "speedup";
        "wino: cuDNN us"; "ours us"; "speedup" ]
  in
  let direct_speedups = ref [] and wino_speedups = ref [] in
  List.iter
    (fun stride ->
      List.iter
        (fun size ->
          List.iter
            (fun cout ->
              let pad = 1 in
              let spec = Spec.square ~c_in:256 ~size ~c_out:cout ~k:3 ~stride ~pad () in
              let lib_d = Gpu_sim.Library_sim.cudnn_direct arch spec in
              let ours_d = tuned arch spec Core.Config.Direct_dataflow in
              let sp_d = lib_d.runtime_us /. ours_d.best_runtime_us in
              direct_speedups := sp_d :: !direct_speedups;
              let wino_cells =
                if stride = 1 then begin
                  let lib_w = Gpu_sim.Library_sim.cudnn_winograd arch spec in
                  let ours_w = tuned arch spec (Core.Config.Winograd_dataflow 4) in
                  let sp_w = lib_w.runtime_us /. ours_w.best_runtime_us in
                  wino_speedups := sp_w :: !wino_speedups;
                  [
                    Printf.sprintf "%.1f" lib_w.runtime_us;
                    Printf.sprintf "%.1f" ours_w.best_runtime_us;
                    Printf.sprintf "%.2fx" sp_w;
                  ]
                end
                else [ "-"; "-"; "-" ]
              in
              Util.Table.add_row table
                ([
                   string_of_int size;
                   string_of_int cout;
                   string_of_int stride;
                   Printf.sprintf "%.1f" lib_d.runtime_us;
                   Printf.sprintf "%.1f" ours_d.best_runtime_us;
                   Printf.sprintf "%.2fx" sp_d;
                 ]
                @ wino_cells))
            [ 32; 64; 128; 256 ])
        [ 28; 56; 112 ])
    [ 1; 2 ];
  print_table ~name:"fig9" table;
  Printf.printf
    "\ngeomean speedup: direct %.2fx, winograd %.2fx, overall %.2fx (paper: 3.32x average)\n"
    (geomean !direct_speedups) (geomean !wino_speedups)
    (geomean (!direct_speedups @ !wino_speedups))

(* ------------------------------------------------------------------ *)
(* Figure 10: batched direct convolution vs cuDNN, 1080Ti. *)

let fig10 () =
  header "Figure 10: batched direct convolution speedup over cuDNN (GTX 1080 Ti)";
  let arch = Gpu_sim.Arch.gtx_1080_ti in
  let table = Util.Table.create [ "Hin/Win"; "batch"; "cuDNN us"; "ours us"; "speedup" ] in
  let speedups = ref [] in
  List.iter
    (fun size ->
      List.iter
        (fun batch ->
          let spec = Spec.square ~batch ~c_in:256 ~size ~c_out:64 ~k:3 ~pad:1 () in
          let lib = Gpu_sim.Library_sim.cudnn_direct arch spec in
          let ours = tuned arch spec Core.Config.Direct_dataflow in
          let sp = lib.runtime_us /. ours.best_runtime_us in
          speedups := sp :: !speedups;
          Util.Table.add_row table
            [
              string_of_int size;
              string_of_int batch;
              Printf.sprintf "%.1f" lib.runtime_us;
              Printf.sprintf "%.1f" ours.best_runtime_us;
              Printf.sprintf "%.2fx" sp;
            ])
        [ 1; 2; 4; 8 ])
    [ 28; 56; 112 ];
  print_table ~name:"fig10" table;
  Printf.printf "\ngeomean speedup: %.2fx (paper: 1.51x average)\n" (geomean !speedups)

(* ------------------------------------------------------------------ *)
(* Table 2: auto-tuning engine vs TVM on AlexNet layers, V100. *)

let table2_rows () =
  let direct =
    List.map
      (fun (l : Cnn.Layer.t) -> (l.name, l.spec, Core.Config.Direct_dataflow))
      Cnn.Models.alexnet_table2
  in
  let wino =
    List.filter_map
      (fun (l : Cnn.Layer.t) ->
        if l.name = "conv3" || l.name = "conv4" then
          Some (l.name ^ " wino", l.spec, Core.Config.Winograd_dataflow 2)
        else None)
      Cnn.Models.alexnet_table2
  in
  direct @ wino

let table2 () =
  header "Table 2: auto-tuning engine (ATE) vs TVM-style search, AlexNet on V100";
  let arch = Gpu_sim.Arch.v100 in
  let table =
    Util.Table.create
      [ "Convolution"; "space ATE"; "space TVM"; "ATE/TVM"; "iters ATE"; "iters TVM";
        "TVM/ATE"; "GFlops ATE"; "GFlops TVM"; "ATE/TVM" ]
  in
  (* Convergence indices are noisy per run; average three seeds per cell, as
     one would repeat hardware tuning runs. *)
  let seeds = [ 0; 1; 2 ] in
  List.iter
    (fun (name, spec, algorithm) ->
      let runs searcher = List.map searcher seeds in
      let ate_runs =
        runs (fun seed ->
            let space = Core.Search_space.make arch spec algorithm in
            Core.Tuner.tune ~seed ~max_measurements:400 ~space ())
      in
      let tvm_runs =
        runs (fun seed -> Core.Baselines.tvm ~seed ~max_measurements:400 arch spec algorithm)
      in
      let mean f rs = Util.Stats.mean (Array.of_list (List.map f rs)) in
      let iters rs = mean (fun (r : Core.Tuner.result) -> float_of_int r.converged_at) rs in
      let gflops rs = mean (fun (r : Core.Tuner.result) -> r.best_gflops) rs in
      let ate_space = (List.hd ate_runs).space_size in
      let tvm_space = (List.hd tvm_runs).space_size in
      Util.Table.add_row table
        [
          name;
          Util.Table.cell_sci ate_space;
          Util.Table.cell_sci tvm_space;
          Printf.sprintf "%.1f%%" (100.0 *. ate_space /. tvm_space);
          Printf.sprintf "%.0f" (iters ate_runs);
          Printf.sprintf "%.0f" (iters tvm_runs);
          Printf.sprintf "%.2f" (iters tvm_runs /. iters ate_runs);
          Printf.sprintf "%.0f" (gflops ate_runs);
          Printf.sprintf "%.0f" (gflops tvm_runs);
          Printf.sprintf "%.2f" (gflops ate_runs /. gflops tvm_runs);
        ])
    (table2_rows ());
  print_table ~name:"table2" table;
  print_endline
    "\n(paper: ATE keeps 20-50% of the space, converges 1.5-2.3x faster, and matches or";
  print_endline " beats TVM's final GFlops on every layer)"

(* ------------------------------------------------------------------ *)
(* Figure 11: search-strategy comparison on AlexNet conv1, V100. *)

let fig11 () =
  header "Figure 11: automation methods on AlexNet conv1 (V100): best GFlops vs measurements";
  let arch = Gpu_sim.Arch.v100 in
  let spec = (List.hd Cnn.Models.alexnet_table2).spec in
  let budget = 300 in
  let curves =
    [
      ("ATE",
       Core.Tuner.tune ~seed ~max_measurements:budget
         ~space:(Core.Search_space.make arch spec Core.Config.Direct_dataflow)
         ());
      ("TVM-ML", Core.Baselines.tvm ~seed ~max_measurements:budget arch spec
                   Core.Config.Direct_dataflow);
      ("Random", Core.Baselines.random_search ~seed ~max_measurements:budget arch spec
                   Core.Config.Direct_dataflow);
      ("GA", Core.Baselines.genetic ~seed ~population:16 ~generations:(budget / 16) arch spec
               Core.Config.Direct_dataflow);
      ("SA", Core.Baselines.simulated_annealing ~seed ~max_measurements:budget arch spec
               Core.Config.Direct_dataflow);
    ]
  in
  let checkpoints = [ 1; 4; 8; 16; 32; 64; 128; 200; 300 ] in
  let table =
    Util.Table.create ("measurements" :: List.map (fun (n, _) -> n) curves)
  in
  let value_at (r : Core.Tuner.result) k =
    (* Best-so-far at measurement k: the last history entry <= k. *)
    let best =
      List.fold_left
        (fun acc (p : Core.Tuner.progress) ->
          if p.measurement <= k then Some p.best_runtime_us else acc)
        None r.history
    in
    match best with
    | Some runtime -> Printf.sprintf "%.0f" (Core.Tuner.nominal_gflops spec ~runtime_us:runtime)
    | None -> "-"
  in
  List.iter
    (fun k ->
      Util.Table.add_row table
        (string_of_int k :: List.map (fun (_, r) -> value_at r k) curves))
    checkpoints;
  print_table ~name:"fig11" table;
  List.iter
    (fun (name, (r : Core.Tuner.result)) ->
      Printf.printf "%-8s final %.0f GFlops after %d measurements (best found at #%d)\n" name
        r.best_gflops r.measurements r.converged_at)
    curves;
  print_endline "\n(paper: all methods climb, ATE finds better configurations much faster)"

(* ------------------------------------------------------------------ *)
(* Figure 12: end-to-end CNN models vs cuDNN, V100. *)

let fig12 () =
  header "Figure 12: end-to-end CNN inference speedup over cuDNN (V100)";
  let arch = Gpu_sim.Arch.v100 in
  let paper = [ ("SqueezeNet", 2.67); ("VGG-19", 1.09); ("ResNet-18", 1.02);
                ("ResNet-34", 1.09); ("Inception-v3", 1.23) ] in
  let table =
    Util.Table.create [ "model"; "ours (us)"; "cuDNN (us)"; "speedup"; "paper" ]
  in
  List.iter
    (fun (m : Cnn.Models.t) ->
      let t = Cnn.Runner.time_model ~seed ~max_measurements:tuning_budget arch m in
      let paper_value =
        match List.assoc_opt m.name paper with
        | Some v -> Printf.sprintf "%.2fx" v
        | None -> "-"
      in
      Util.Table.add_row table
        [
          t.model;
          Printf.sprintf "%.0f" t.ours_total_us;
          Printf.sprintf "%.0f" t.library_total_us;
          Printf.sprintf "%.2fx" t.speedup;
          paper_value;
        ])
    Cnn.Models.evaluation_models;
  print_table ~name:"fig12" table

(* ------------------------------------------------------------------ *)
(* Figure 13: sensitivity across GPU architectures + the MIOpen/GFX906
   comparison described alongside it. *)

let fig13_suite =
  [
    Spec.square ~c_in:256 ~size:28 ~c_out:64 ~k:3 ~pad:1 ();
    Spec.square ~c_in:256 ~size:56 ~c_out:64 ~k:3 ~pad:1 ();
    Spec.square ~c_in:256 ~size:56 ~c_out:128 ~k:3 ~pad:1 ();
    Spec.square ~c_in:128 ~size:112 ~c_out:128 ~k:3 ~pad:1 ();
  ]

let fig13 () =
  header "Figure 13: sensitivity across GPU architectures";
  let nvidia_arches = [ Gpu_sim.Arch.gtx_1080_ti; Gpu_sim.Arch.titan_x ] in
  let table =
    Util.Table.create
      [ "architecture"; "direct vs lib"; "direct vs TVM"; "wino vs lib"; "wino vs TVM" ]
  in
  let row (arch : Gpu_sim.Arch.t) ~lib_direct ~lib_wino =
    let vs_lib_d = ref [] and vs_tvm_d = ref [] and vs_lib_w = ref [] and vs_tvm_w = ref [] in
    List.iter
      (fun spec ->
        let ours_d = tuned arch spec Core.Config.Direct_dataflow in
        let tvm_d =
          Core.Baselines.tvm ~seed ~max_measurements:tuning_budget arch spec
            Core.Config.Direct_dataflow
        in
        let lib_d : Gpu_sim.Library_sim.verdict = lib_direct arch spec in
        vs_lib_d := (lib_d.runtime_us /. ours_d.best_runtime_us) :: !vs_lib_d;
        vs_tvm_d := (tvm_d.best_runtime_us /. ours_d.best_runtime_us) :: !vs_tvm_d;
        let ours_w = tuned arch spec (Core.Config.Winograd_dataflow 4) in
        let tvm_w =
          Core.Baselines.tvm ~seed ~max_measurements:tuning_budget arch spec
            (Core.Config.Winograd_dataflow 4)
        in
        let lib_w : Gpu_sim.Library_sim.verdict = lib_wino arch spec in
        vs_lib_w := (lib_w.runtime_us /. ours_w.best_runtime_us) :: !vs_lib_w;
        vs_tvm_w := (tvm_w.best_runtime_us /. ours_w.best_runtime_us) :: !vs_tvm_w)
      fig13_suite;
    Util.Table.add_row table
      [
        Printf.sprintf "%s (%s)" arch.name arch.generation;
        Printf.sprintf "%.2fx" (geomean !vs_lib_d);
        Printf.sprintf "%.2fx" (geomean !vs_tvm_d);
        Printf.sprintf "%.2fx" (geomean !vs_lib_w);
        Printf.sprintf "%.2fx" (geomean !vs_tvm_w);
      ]
  in
  List.iter
    (fun arch ->
      row arch ~lib_direct:Gpu_sim.Library_sim.cudnn_direct
        ~lib_wino:Gpu_sim.Library_sim.cudnn_winograd)
    nvidia_arches;
  row Gpu_sim.Arch.gfx906 ~lib_direct:Gpu_sim.Library_sim.miopen_direct
    ~lib_wino:Gpu_sim.Library_sim.miopen_winograd;
  print_table ~name:"fig13" table;
  print_endline
    "\n(paper: vs TVM 1.05x/1.27x direct and 1.12x/1.01x wino on Pascal/Maxwell;";
  print_endline
    " on GFX906 vs MIOpen up to 2.86x direct / 1.10x wino, vs TVM 1.21x / 1.03x)"

(* ------------------------------------------------------------------ *)
(* Theory validation: executable pebble game vs Theorems 4.12 / 4.20. *)

let bounds () =
  header "Theory validation: red-blue pebble game vs the lower bounds";
  let dag_spec =
    { Dag.Conv_dag.w_in = 10; h_in = 10; c_in = 3; c_out = 3; w_ker = 3; h_ker = 3; stride = 1 }
  in
  let conv_spec = Spec.make ~c_in:3 ~h_in:10 ~w_in:10 ~c_out:3 ~k_h:3 ~k_w:3 () in
  let dag = Dag.Conv_dag.build dag_spec in
  let table =
    Util.Table.create
      [ "S"; "Thm 4.12 bound"; "blocked+LRU"; "blocked+Belady"; "by-step+LRU"; "bound held" ]
  in
  List.iter
    (fun s ->
      let run schedule policy =
        Pebble.Pebble_game.total_io (Pebble.Pebble_game.run dag.graph ~schedule ~s ~policy)
      in
      let blocked = Dag.Conv_dag.schedule_blocked dag ~bx:4 ~by:4 ~bz:1 in
      let by_step = Dag.Conv_dag.schedule_by_step dag in
      let bound = Core.Direct_bound.q_lower conv_spec ~s:(float_of_int s) in
      let q_lru = run blocked Pebble.Pebble_game.Lru in
      let q_bel = run blocked Pebble.Pebble_game.Belady in
      let q_step = run by_step Pebble.Pebble_game.Lru in
      Util.Table.add_row table
        [
          string_of_int s;
          Printf.sprintf "%.0f" bound;
          string_of_int q_lru;
          string_of_int q_bel;
          string_of_int q_step;
          (if float_of_int (min q_lru (min q_bel q_step)) >= bound then "yes" else "VIOLATED");
        ])
    [ 8; 16; 32; 64; 128; 256; 512 ];
  print_table ~name:"bounds" table

(* ------------------------------------------------------------------ *)
(* Ablations called out in DESIGN.md. *)

let ablation_tile_shape () =
  header "Ablation: I/O vs tile shape at fixed volume (the xy = Rz condition)";
  let spec = Spec.square ~c_in:64 ~size:56 ~c_out:64 ~k:3 ~pad:1 () in
  let r = Spec.reuse spec in
  let table = Util.Table.create [ "tile x*y*z"; "xy/(Rz)"; "I/O (elements)"; "vs optimal" ] in
  let volume = 448 in
  let shapes = [ (28, 16, 1); (28, 8, 2); (14, 8, 4); (7, 8, 8); (7, 4, 16); (4, 2, 56) ] in
  let ios =
    List.map
      (fun (x, y, z) ->
        ignore volume;
        Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile:{ Conv.Tiled_direct.x; y; z }))
      shapes
  in
  let best = List.fold_left Float.min infinity ios in
  List.iter2
    (fun (x, y, z) io ->
      Util.Table.add_row table
        [
          Printf.sprintf "%dx%dx%d" x y z;
          Printf.sprintf "%.2f" (Core.Optimality.condition_ratio ~r ~x ~y ~z);
          Printf.sprintf "%.0f" io;
          Printf.sprintf "%.2fx" (io /. best);
        ])
    shapes ios;
  Util.Table.print table;
  print_endline "\n(the minimum sits where xy/(Rz) is nearest 1, as Section 5.2 derives)"

let ablation_alpha () =
  header "Ablation: channel-stage depth alpha (Section 5.2 argues alpha = 1)";
  let spec = Spec.square ~c_in:64 ~size:56 ~c_out:64 ~k:3 ~pad:1 () in
  let budget = 12288 in
  let table =
    Util.Table.create [ "alpha"; "largest tile fitting S"; "I/O (elements)"; "vs alpha=1" ]
  in
  (* For each alpha, grow the (manifold-respecting) tile until the working
     set exceeds the budget, then report the traffic: staging more channels
     shrinks the resident output block and costs I/O. *)
  let io_at alpha =
    let best = ref None in
    List.iter
      (fun z ->
        let xy = int_of_float (Spec.reuse spec *. float_of_int z) in
        let side = max 1 (int_of_float (sqrt (float_of_int xy))) in
        let tile = { Conv.Tiled_direct.x = side; y = side; z } in
        if Conv.Tiled_direct.working_set spec ~tile ~alpha <= budget then begin
          let io = Conv.Io_count.total (Conv.Tiled_direct.io_only ~alpha spec ~tile) in
          match !best with
          | Some (_, best_io) when best_io <= io -> ()
          | _ -> best := Some (tile, io)
        end)
      [ 1; 2; 4; 8; 16; 32; 64 ];
    Option.get !best
  in
  let _, io1 = io_at 1 in
  List.iter
    (fun alpha ->
      let tile, io = io_at alpha in
      Util.Table.add_row table
        [
          string_of_int alpha;
          Printf.sprintf "%dx%dx%d" tile.x tile.y tile.z;
          Printf.sprintf "%.0f" io;
          Printf.sprintf "%.2fx" (io /. io1);
        ])
    [ 1; 2; 4; 8; 16 ];
  Util.Table.print table

let ablation_winograd_e () =
  header "Ablation: Winograd tile parameter e (traffic, multiplications, accuracy)";
  let spec = Spec.square ~c_in:16 ~size:24 ~c_out:16 ~k:3 ~pad:1 () in
  let rng = Util.Rng.create 1 in
  let input, weights = Conv.Direct.random_problem rng spec in
  (* Simulate fp32 storage (the GPUs' precision) for the stability columns. *)
  Util.Float32.round_inplace (Tensor.data input);
  Util.Float32.round_inplace (Tensor.data weights);
  let reference = Conv.Direct.run spec ~input ~weights in
  let table =
    Util.Table.create
      [ "e"; "alpha"; "multiplications"; "vs direct"; "max err (fp64)"; "max err (fp32)";
        "Thm 4.20 bound (S=12K)" ]
  in
  List.iter
    (fun e ->
      let out = Conv.Winograd.run ~e spec ~input ~weights in
      let out32 = Tensor.map Util.Float32.round out in
      let muls = Conv.Winograd.multiplications ~e spec in
      Util.Table.add_row table
        [
          string_of_int e;
          string_of_int (e + 2);
          Printf.sprintf "%.3g" muls;
          Printf.sprintf "%.2f" (muls /. Conv.Winograd.direct_multiplications spec);
          Printf.sprintf "%.2e" (Tensor.max_abs_diff reference out);
          Printf.sprintf "%.2e" (Tensor.max_abs_diff reference out32);
          Util.Table.cell_sci (Core.Winograd_bound.q_lower ~e spec ~s:12288.0);
        ])
    [ 1; 2; 3; 4; 6 ];
  print_table ~name:"ablation_winograd_e" table;
  print_endline "\n(bigger tiles cut multiplications and bound alike but cost numerical error)"

let ablation_eviction () =
  header "Ablation: LRU vs Belady eviction in the pebble game";
  let dag_spec =
    { Dag.Conv_dag.w_in = 8; h_in = 8; c_in = 3; c_out = 3; w_ker = 3; h_ker = 3; stride = 1 }
  in
  let dag = Dag.Conv_dag.build dag_spec in
  let schedule = Dag.Conv_dag.schedule_output_stationary dag in
  let table = Util.Table.create [ "S"; "LRU"; "Belady"; "LRU/Belady" ] in
  List.iter
    (fun s ->
      let q policy =
        Pebble.Pebble_game.total_io
          (Pebble.Pebble_game.run dag.graph ~schedule ~s ~policy)
      in
      let lru = q Pebble.Pebble_game.Lru and belady = q Pebble.Pebble_game.Belady in
      Util.Table.add_row table
        [
          string_of_int s;
          string_of_int lru;
          string_of_int belady;
          Printf.sprintf "%.2f" (float_of_int lru /. float_of_int belady);
        ])
    [ 8; 16; 32; 64; 128 ];
  Util.Table.print table

let ablation_algorithm_crossover () =
  header "Ablation: algorithm crossover with kernel size (traffic per algorithm)";
  let table =
    Util.Table.create
      [ "kernel"; "tiled direct"; "tiled winograd"; "im2col"; "FFT"; "cheapest" ]
  in
  List.iter
    (fun k ->
      let pad = k / 2 in
      let spec = Spec.square ~c_in:16 ~size:32 ~c_out:16 ~k ~pad () in
      let s = 12288.0 in
      let direct_tile = Core.Optimality.optimal_tile_direct spec ~s ~np:1 in
      let direct = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile:direct_tile) in
      let wino =
        if Conv.Winograd.supported spec && k + 1 <= 7 then begin
          let tile = Core.Optimality.optimal_tile_winograd ~e:2 spec ~s ~np:1 in
          Some (Conv.Io_count.total (Conv.Tiled_winograd.io_only ~e:2 spec ~tile))
        end
        else None
      in
      let im2col = Conv.Io_count.total (Conv.Im2col.io spec) in
      let fft = Conv.Io_count.total (Conv.Fft_conv.io spec) in
      let candidates =
        ("tiled direct", direct)
        :: (match wino with Some w -> [ ("tiled winograd", w) ] | None -> [])
        @ [ ("im2col", im2col); ("FFT", fft) ]
      in
      let cheapest =
        fst (List.fold_left (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
               (List.hd candidates) (List.tl candidates))
      in
      Util.Table.add_row table
        [
          Printf.sprintf "%dx%d" k k;
          Printf.sprintf "%.3g" direct;
          (match wino with Some w -> Printf.sprintf "%.3g" w | None -> "-");
          Printf.sprintf "%.3g" im2col;
          Printf.sprintf "%.3g" fft;
          cheapest;
        ])
    [ 1; 3; 5; 7; 9; 11; 13 ];
  Util.Table.print table;
  print_endline
    "\n(traffic grows ~linearly in k for the optimal dataflow — the k^2 taps are offset by";
  print_endline " the k^2 reuse factor — versus ~k^2 for im2col; FFT is k-independent but its";
  print_endline " complex spectra only pay off when the kernel approaches the image size.";
  print_endline " Winograd's advantage is multiplications, not raw traffic: see the e-ablation)"

let ablation_processors () =
  header "Ablation: dataflow traffic vs processor count Np (Equation 21/23)";
  let spec = Spec.square ~c_in:64 ~size:56 ~c_out:64 ~k:3 ~pad:1 () in
  let s = 24576.0 in
  let table =
    Util.Table.create [ "Np"; "Q_DC (Eq 21)"; "vs Np=1"; "Q_WA e=2 (Eq 23)"; "vs Np=1" ]
  in
  let q1_dc = Core.Dataflow_cost.q_dc_optimal spec ~s ~np:1 in
  let q1_wa = Core.Dataflow_cost.q_wa_optimal ~e:2 spec ~s ~np:1 in
  List.iter
    (fun np ->
      let qdc = Core.Dataflow_cost.q_dc_optimal spec ~s ~np in
      let qwa = Core.Dataflow_cost.q_wa_optimal ~e:2 spec ~s ~np in
      Util.Table.add_row table
        [
          string_of_int np;
          Printf.sprintf "%.3g" qdc;
          Printf.sprintf "%.2fx" (qdc /. q1_dc);
          Printf.sprintf "%.3g" qwa;
          Printf.sprintf "%.2fx" (qwa /. q1_wa);
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Util.Table.print table;
  print_endline
    "\n(splitting the fast memory across Np processors costs sqrt(Np) in traffic — the";
  print_endline " price of parallelism the paper's Equation 21 quantifies)"

let ablation_phi_attribution () =
  header
    "Ablation: which step owns the traffic (Section 5.1's highest-order-term argument)";
  let dag_spec =
    { Dag.Conv_dag.w_in = 8; h_in = 8; c_in = 3; c_out = 3; w_ker = 3; h_ker = 3; stride = 1 }
  in
  let dag = Dag.Conv_dag.build dag_spec in
  let table =
    Util.Table.create
      [ "S"; "schedule"; "step-1 loads (products)"; "step-2 loads (summation)";
        "step-2 share" ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun (name, schedule) ->
          let d = Pebble.Pebble_game.run_detailed dag.graph ~schedule ~s ~policy:Pebble.Pebble_game.Lru in
          let s1 = d.loads_by_step.(1) and s2 = d.loads_by_step.(2) in
          Util.Table.add_row table
            [
              string_of_int s;
              name;
              string_of_int s1;
              string_of_int s2;
              Printf.sprintf "%.0f%%" (100.0 *. float_of_int s2 /. float_of_int (max 1 (s1 + s2)));
            ])
        [
          ("by-step", Dag.Conv_dag.schedule_by_step dag);
          ("blocked (Sec 5.2)", Dag.Conv_dag.schedule_blocked dag ~bx:4 ~by:4 ~bz:1);
        ])
    [ 64; 128; 256 ];
  Util.Table.print table;
  print_endline
    "\n(the summation step's spilled partials are the highest-order traffic the theory";
  print_endline
    " attributes to phi_2; the output-stationary dataflow eliminates exactly that term)"

let ablation_dataflow_discipline () =
  header "Ablation: dataflow discipline (output- vs weight- vs input-stationary)";
  let table =
    Util.Table.create
      [ "layer"; "R"; "output-stationary"; "weight-stationary"; "input-stationary";
        "best alternative / OS" ]
  in
  List.iter
    (fun (name, spec) ->
      let s = 12288.0 in
      let tile = Core.Optimality.optimal_tile_direct spec ~s ~np:1 in
      let os = Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile) in
      let ws =
        Conv.Io_count.total
          (Conv.Dataflow_variants.io_weight_stationary spec ~z:tile.z ~channel_chunk:2)
      in
      let is_ =
        Conv.Io_count.total
          (Conv.Dataflow_variants.io_input_stationary spec ~x:tile.x ~y:tile.y
             ~channel_chunk:2)
      in
      Util.Table.add_row table
        [
          name;
          Printf.sprintf "%.2f" (Spec.reuse spec);
          Printf.sprintf "%.3g" os;
          Printf.sprintf "%.3g" ws;
          Printf.sprintf "%.3g" is_;
          Printf.sprintf "%.2fx" (Float.min ws is_ /. os);
        ])
      [
        ("28x28x64->64 3x3", Spec.square ~c_in:64 ~size:28 ~c_out:64 ~k:3 ~pad:1 ());
        ("56x56x32->32 3x3", Spec.square ~c_in:32 ~size:56 ~c_out:32 ~k:3 ~pad:1 ());
        ("14x14x256->256 3x3", Spec.square ~c_in:256 ~size:14 ~c_out:256 ~k:3 ~pad:1 ());
        ("28x28x64->64 5x5", Spec.square ~c_in:64 ~size:28 ~c_out:64 ~k:5 ~pad:2 ());
      ];
  Util.Table.print table;
  print_endline
    "\n(output-stationary wins everywhere R > 1, as the phi_2-dominance argument predicts)"

let ablation_prune_slack () =
  header "Ablation: optimality-condition slack vs search-space size and tuned quality";
  let arch = Gpu_sim.Arch.v100 in
  let spec = (List.nth Cnn.Models.alexnet_table2 2).spec in
  (* The shipped Search_space uses slack 2.0; re-derive the pruned tile count
     per slack value against the full space, then tune within a budget to see
     what quality each slack level reaches. *)
  let full = Core.Search_space.make ~pruned:false arch spec Core.Config.Direct_dataflow in
  let full_size = Core.Search_space.size full in
  let r = Spec.reuse spec in
  let table =
    Util.Table.create [ "slack"; "tiles kept"; "space vs full"; "best GFlops (200 meas)" ]
  in
  List.iter
    (fun slack ->
      let kept =
        Array.to_list (Core.Search_space.tile_candidates full)
        |> List.filter (fun t -> Core.Optimality.satisfied ~slack ~r t)
        |> List.length
      in
      (* Quality at this slack: the shipped space approximates slack 2.0; for
         the sweep we tune the full space but seed/escape identically and
         report the shipped-pruned result on the 2.0 row. *)
      let gflops =
        if slack = 2.0 then
          (Core.Tuner.tune ~seed ~max_measurements:200
             ~space:(Core.Search_space.make arch spec Core.Config.Direct_dataflow) ())
            .best_gflops
        else if slack >= 1e9 then
          (Core.Tuner.tune ~seed ~max_measurements:200 ~space:full ()).best_gflops
        else nan
      in
      Util.Table.add_row table
        [
          (if slack >= 1e9 then "inf (full)" else Printf.sprintf "%.1f" slack);
          string_of_int kept;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int kept
            /. float_of_int (Array.length (Core.Search_space.tile_candidates full)));
          (if Float.is_nan gflops then "-" else Printf.sprintf "%.0f" gflops);
        ])
    [ 1.2; 1.5; 2.0; 4.0; 1e18 ];
  print_table ~name:"ablation_prune_slack" table;
  ignore full_size;
  print_endline
    "\n(slack 2 keeps a sliver of the tile space without giving up tuned quality)"

let ablation_multicore () =
  header "Ablation: real multicore scaling of the dataflow (OCaml domains)";
  (* The only wall-clock measurement in the harness: the Section 5 dataflow
     is embarrassingly parallel over output blocks, and the paper's N_p
     analysis assumes that parallelism is realisable — here it actually is,
     on this machine's cores. *)
  let spec = Spec.square ~c_in:32 ~size:64 ~c_out:32 ~k:3 ~pad:1 () in
  let rng = Util.Rng.create 3 in
  let input, weights = Conv.Direct.random_problem rng spec in
  let tile = { Conv.Tiled_direct.x = 8; y = 8; z = 8 } in
  let time_once domains =
    let t0 = Unix.gettimeofday () in
    let r = Conv.Parallel_exec.tiled_direct ~domains spec ~tile ~input ~weights in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, r.output)
  in
  (* Warm up and take the best of three to tame scheduler noise. *)
  let best_of_three domains =
    let t1, out = time_once domains in
    let t2, _ = time_once domains in
    let t3, _ = time_once domains in
    (Float.min t1 (Float.min t2 t3), out)
  in
  let t1, reference = best_of_three 1 in
  let table = Util.Table.create [ "domains"; "wall time (ms)"; "speedup"; "correct" ] in
  List.iter
    (fun domains ->
      let t, out = best_of_three domains in
      Util.Table.add_row table
        [
          string_of_int domains;
          Printf.sprintf "%.2f" (t *. 1e3);
          Printf.sprintf "%.2fx" (t1 /. t);
          (if Tensor.allclose reference out then "yes" else "NO");
        ])
    [ 1; 2; 4; 8 ];
  print_table ~name:"ablation_multicore" table;
  Printf.printf
    "\n(this machine exposes %d core(s) to the runtime; speedups scale with real cores —\n"
    (Domain.recommended_domain_count ());
  print_endline " correctness of the concurrent block decomposition is asserted regardless)" 

let ablation_recomputation () =
  header "Ablation: recomputation in the pebble game (the red-blue-white model's blind spot)";
  let wspec =
    { Dag.Winograd_dag.tiles_w = 2; tiles_h = 2; c_in = 2; c_out = 16; e = 2; r = 3 }
  in
  let wdag = Dag.Winograd_dag.build wspec in
  let w_in, h_in = Dag.Winograd_dag.in_size wspec in
  let conv_spec = Spec.make ~c_in:2 ~h_in ~w_in ~c_out:16 ~k_h:3 ~k_w:3 () in
  let table =
    Util.Table.create
      [ "S"; "policy"; "Thm 4.20 bound"; "keep/spill transforms"; "recompute transforms";
        "recompute/keep"; "extra arithmetic" ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun (pname, policy) ->
          let natural =
            Pebble.Pebble_game.run wdag.graph
              ~schedule:(Dag.Winograd_dag.schedule_natural wdag) ~s ~policy
          in
          let rec_ =
            Pebble.Pebble_game.run_recompute wdag.graph
              ~schedule:(Dag.Winograd_dag.schedule_recompute_transforms wdag)
              ~s ~policy
          in
          Util.Table.add_row table
            [
              string_of_int s;
              pname;
              Printf.sprintf "%.0f"
                (Core.Winograd_bound.q_lower ~e:2 conv_spec ~s:(float_of_int s));
              string_of_int (Pebble.Pebble_game.total_io natural);
              string_of_int (Pebble.Pebble_game.total_io rec_);
              Printf.sprintf "%.2f"
                (float_of_int (Pebble.Pebble_game.total_io rec_)
                /. float_of_int (Pebble.Pebble_game.total_io natural));
              Printf.sprintf "%.2fx"
                (float_of_int rec_.computes /. float_of_int natural.computes);
            ])
        [ ("LRU", Pebble.Pebble_game.Lru); ("Belady", Pebble.Pebble_game.Belady) ])
    [ 64; 96; 192 ];
  print_table ~name:"ablation_recomputation" table;
  print_endline
    "\n(re-deriving kernel transforms instead of spilling them halves the traffic under";
  print_endline
    " offline-optimal eviction -- and Theorem 4.20 holds throughout, which is why the";
  print_endline
    " paper's theory must and does permit recomputation, unlike the red-blue-white";
  print_endline
    " model.  Under LRU the transform trees' transients pollute the cache and the";
  print_endline " trade backfires: recomputation needs an eviction policy that knows about it)"

let ablations () =
  ablation_phi_attribution ();
  ablation_recomputation ();
  ablation_multicore ();
  ablation_prune_slack ();
  ablation_dataflow_discipline ();
  ablation_tile_shape ();
  ablation_alpha ();
  ablation_winograd_e ();
  ablation_eviction ();
  ablation_algorithm_crossover ();
  ablation_processors ()

let all = [
  ("fig9", fig9);
  ("fig10", fig10);
  ("table2", table2);
  ("fig11", fig11);
  ("fig12", fig12);
  ("fig13", fig13);
  ("bounds", bounds);
  ("ablations", ablations);
]
