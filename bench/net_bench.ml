(* Network-path benchmark: what the wire costs, and what faults cost.

   Usage:
     dune exec bench/net_bench.exe            full sweep (200 asks per fault
                                              rate over a live Unix socket);
                                              writes BENCH_net.json to the cwd
     dune exec bench/net_bench.exe -- smoke   <5s sanity check, no file
                                              output: asserts every ask
                                              terminates Ok at every fault
                                              rate, fault-free asks take one
                                              attempt each, and the faulty
                                              sweep actually retried

   The question the sweep answers: given the resilient client's retry loop
   (seeded backoff, BUSY floors, idempotent re-asks), what does ask latency
   look like as the link degrades?  Rates 0%, 10% and 30% — the last being
   the chaos campaign's acceptance rate — against a live daemon, with every
   shape pre-warmed so the numbers isolate wire round-trips and retry
   machinery from tuning time.  All fault draws are seeded per (ask index),
   so a sweep replays bit-identically. *)

let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke"
let () = Util.Log.set_quiet true
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let shapes =
  [ "TUNE cin=4 size=8 cout=4 k=3"; "TUNE cin=8 size=8 cout=4 k=1" ]

let rates = if smoke then [ 0.0; 0.30 ] else [ 0.0; 0.10; 0.30 ]
let asks_per_rate = if smoke then 30 else 200

let settings =
  { Service.Engine.default_settings with budget_trials = 16; max_pending = 32 }

let temp_dir () =
  let path = Filename.temp_file "net-bench" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let spec_of_line line =
  match Service.Protocol.parse_request line with
  | Ok (Service.Protocol.Tune r) -> r
  | _ ->
    Printf.eprintf "FAIL: bench shape does not parse: %s\n" line;
    exit 1

let () =
  let dir = temp_dir () in
  let socket = Filename.concat dir "tuned.sock" in
  let stop = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Service.Daemon.serve ~socket ~cache:(Filename.concat dir "cache")
          ~settings ~stop ~install_signal_handlers:false ())
  in
  let clean =
    {
      Service.Client.default_settings with
      max_attempts = 100;
      attempt_timeout_ms = 1000;
      backoff_base_ms = 10;
      backoff_cap_ms = 50;
    }
  in
  (match Service.Client.ask_raw ~settings:clean ~socket "PING" with
  | Ok Service.Protocol.Pong, _ -> ()
  | _ ->
    Printf.eprintf "FAIL: daemon did not become ready\n";
    exit 1);
  (* Pre-warm every shape: the sweep then measures wire + retry machinery,
     not tuning. *)
  List.iter
    (fun line ->
      match
        Service.Client.ask ~settings:clean ~socket
          (Service.Protocol.Tune (spec_of_line line))
      with
      | Ok (Service.Protocol.Result _), _ -> ()
      | _ ->
        Printf.eprintf "FAIL: warmup failed for %s\n" line;
        exit 1)
    shapes;
  Printf.printf "Net bench (%s): %d asks per rate over %s\n%!"
    (if smoke then "smoke" else "full")
    asks_per_rate socket;

  let sweep rate =
    let faults =
      if rate > 0.0 then Service.Net_faults.with_rate rate
      else Service.Net_faults.none
    in
    let latencies = Array.make asks_per_rate 0.0 in
    let attempts = ref 0 in
    for i = 0 to asks_per_rate - 1 do
      let line = List.nth shapes (i mod List.length shapes) in
      let ask_settings =
        {
          Service.Client.default_settings with
          faults;
          seed = i;
          conn_base = i * 100;
          max_attempts = 12;
          backoff_base_ms = 5;
          backoff_cap_ms = 50;
        }
      in
      let (result, trace), wall =
        time (fun () ->
            Service.Client.ask ~settings:ask_settings ~socket
              (Service.Protocol.Tune (spec_of_line line)))
      in
      (match result with
      | Ok (Service.Protocol.Result p) ->
        if Service.Protocol.source_to_string p.Service.Protocol.source <> "cached"
        then begin
          Printf.eprintf "FAIL: ask %d at rate %.2f not served warm\n" i rate;
          exit 1
        end
      | _ ->
        Printf.eprintf "FAIL: ask %d at rate %.2f did not terminate Ok\n" i rate;
        exit 1);
      latencies.(i) <- wall *. 1e3;
      attempts := !attempts + List.length trace
    done;
    Array.sort compare latencies;
    let mean = Array.fold_left ( +. ) 0.0 latencies /. float_of_int asks_per_rate in
    let p50 = percentile latencies 0.50 in
    let p99 = percentile latencies 0.99 in
    Printf.printf
      "  rate %4.0f%%: p50 %7.3f ms   p99 %7.3f ms   mean %7.3f ms   %d attempts for %d asks\n%!"
      (rate *. 100.) p50 p99 mean !attempts asks_per_rate;
    (rate, p50, p99, mean, !attempts)
  in
  let results = List.map sweep rates in

  Atomic.set stop true;
  ignore (Domain.join daemon);

  if smoke then begin
    (* Fault-free asks retry nothing; the faulty sweep must have exercised
       the retry loop (draws are seeded, so this is deterministic). *)
    List.iter
      (fun (rate, p50, p99, _, attempts) ->
        if p99 < p50 then begin
          Printf.eprintf "FAIL: p99 below p50 at rate %.2f\n" rate;
          exit 1
        end;
        if rate = 0.0 && attempts <> asks_per_rate then begin
          Printf.eprintf "FAIL: clean sweep took %d attempts for %d asks\n"
            attempts asks_per_rate;
          exit 1
        end;
        if rate > 0.0 && attempts <= asks_per_rate then begin
          Printf.eprintf "FAIL: faulty sweep never retried\n";
          exit 1
        end)
      results;
    print_endline "net bench smoke ok"
  end
  else begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"bench\": \"net\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"asks_per_rate\": %d,\n  \"rates\": [\n" asks_per_rate);
    List.iteri
      (fun i (rate, p50, p99, mean, attempts) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"fault_rate\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms\": %.4f, \"attempts\": %d}"
             rate p50 p99 mean attempts))
      results;
    Buffer.add_string buf "\n  ]\n}\n";
    Util.Durable.write_atomic "BENCH_net.json" (Buffer.contents buf);
    print_endline "wrote BENCH_net.json"
  end
