(* Hot-path benchmark: histogram GBT training vs the exact-presort baseline,
   and the frontier pebble oracle vs the legacy hashtable engine.

   Usage:
     dune exec bench/hotpath.exe            full sweep: GBT rebuild times at
                                            growing dataset sizes, tuner
                                            best-config equivalence on the
                                            ResNet layer set, legacy-vs-frontier
                                            oracle differential over the whole
                                            sandwich smoke grid plus a
                                            24-vertex instance only the frontier
                                            engine can solve; asserts the claims
                                            and writes BENCH_hotpath.json
     dune exec bench/hotpath.exe -- smoke   <10s sanity check (no file output):
                                            Hist-vs-Exact prediction ranking
                                            agreement and q_opt equality of the
                                            two oracle engines on small
                                            instances.  HOTPATH_DEEP=1 extends
                                            it with a 2k-sample GBT speedup
                                            check and the 24-vertex oracle
                                            differential (the @hotpath-deep
                                            alias).

   The smoke mode backs the [@hotpath-smoke] dune alias in the default
   runtest, so a regression in either rewrite fails CI; the JSON records the
   before/after trajectory future PRs must not regress. *)

let arch = Gpu_sim.Arch.v100

let layers =
  [
    ("resnet-conv2", Conv.Conv_spec.make ~c_in:64 ~h_in:56 ~w_in:56 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 ());
    ("resnet-conv3", Conv.Conv_spec.make ~c_in:128 ~h_in:28 ~w_in:28 ~c_out:128 ~k_h:3 ~k_w:3 ~pad:1 ());
    ("resnet-conv4", Conv.Conv_spec.make ~c_in:256 ~h_in:14 ~w_in:14 ~c_out:256 ~k_h:3 ~k_w:3 ~pad:1 ());
  ]

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

(* A synthetic tuning-shaped regression problem: continuous features, a
   smooth nonlinear target with mild noise — enough structure for both split
   methods to learn the same ranking. *)
let synthetic_dataset ~n ~n_features ~seed =
  let rng = Util.Rng.create seed in
  let data = Gbt.Dataset.create ~n_features in
  for _ = 1 to n do
    let x = Array.init n_features (fun _ -> Util.Rng.float rng 1.0) in
    let y =
      (10.0 *. x.(0))
      +. (5.0 *. x.(1) *. x.(1))
      +. (3.0 *. x.(0) *. x.(min 2 (n_features - 1)))
      +. (2.0 *. sin (6.28 *. x.(min 3 (n_features - 1))))
      +. Util.Rng.float rng 0.5
    in
    Gbt.Dataset.add data x y
  done;
  data

let predictions booster data =
  Array.init (Gbt.Dataset.length data) (fun i ->
      Gbt.Booster.predict booster (Gbt.Dataset.features data i))

(* Train both methods on the same data; return (exact_s, hist_s, rank
   correlation of their predictions over the training rows). *)
let gbt_rebuild_pair ~n ~seed =
  let data = synthetic_dataset ~n ~n_features:8 ~seed in
  let exact, exact_s =
    time (fun () -> Gbt.Booster.train ~domains:1 Gbt.Booster.default_params data)
  in
  let hist, hist_s =
    time (fun () -> Gbt.Booster.train ~domains:1 Gbt.Booster.hist_params data)
  in
  let rho = Util.Stats.spearman (predictions exact data) (predictions hist data) in
  (exact_s, hist_s, rho)

let describe_verdict = function
  | Verify.Oracle.Optimal { q_opt; expanded; _ } ->
    Printf.sprintf "optimal q=%d after %d states" q_opt expanded
  | Verify.Oracle.Budget_exhausted { expanded } ->
    Printf.sprintf "budget exhausted at %d states" expanded

(* Legacy and frontier engines on one (instance, S) pair; asserts equal
   q_opt and a replay-valid frontier witness. *)
let oracle_pair (inst : Verify.Sandwich.instance) ~s =
  let legacy, legacy_s = time (fun () -> Verify.Oracle.solve_legacy inst.graph ~s) in
  let frontier, frontier_s = time (fun () -> Verify.Oracle.solve inst.graph ~s) in
  match (legacy, frontier) with
  | Verify.Oracle.Optimal l, Verify.Oracle.Optimal f ->
    if l.q_opt <> f.q_opt then
      fail "%s S=%d: legacy q_opt %d <> frontier q_opt %d" inst.name s l.q_opt f.q_opt;
    (match Pebble.Pebble_game.trace inst.graph ~s f.moves with
    | Error msg -> fail "%s S=%d: frontier witness illegal: %s" inst.name s msg
    | Ok final ->
      if not (Pebble.Pebble_game.complete inst.graph final) then
        fail "%s S=%d: frontier witness incomplete" inst.name s;
      if Pebble.Pebble_game.state_io final <> f.q_opt then
        fail "%s S=%d: frontier witness I/O %d <> q_opt %d" inst.name s
          (Pebble.Pebble_game.state_io final) f.q_opt);
    (f.q_opt, l.expanded, legacy_s, f.expanded, frontier_s)
  | l, f ->
    fail "%s S=%d: engines disagree (legacy: %s, frontier: %s)" inst.name s
      (describe_verdict l) (describe_verdict f)

(* The deep differential: a 24-vertex Winograd tile where the legacy engine
   exhausts its default state budget and the frontier engine proves q_opt. *)
let deep_instance () =
  Verify.Sandwich.winograd_instance ~tiles_w:1 ~tiles_h:1 ~cin:4 ~cout:1 ~e:1 ~r:1 ()

let deep_s = 4
let deep_frontier_budget = 8_000_000

let oracle_deep_differential () =
  let inst = deep_instance () in
  let legacy, legacy_s =
    time (fun () -> Verify.Oracle.solve_legacy inst.graph ~s:deep_s)
  in
  let frontier, frontier_s =
    time (fun () ->
        Verify.Oracle.solve ~budget:deep_frontier_budget ~want_witness:false inst.graph
          ~s:deep_s)
  in
  match (legacy, frontier) with
  | Verify.Oracle.Budget_exhausted { expanded = le }, Verify.Oracle.Optimal f ->
    (inst.name, le, legacy_s, f.q_opt, f.expanded, frontier_s)
  | l, f ->
    fail "deep differential: expected legacy exhaustion + frontier optimum, got \
          legacy: %s, frontier: %s"
      (describe_verdict l) (describe_verdict f)

let tune_layer ~model_params ~max_measurements (name, spec) =
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let result, wall =
    time (fun () -> Core.Tuner.tune ~seed:0 ~max_measurements ~model_params ~space ())
  in
  (name, result, wall)

let json_escape = String.map (fun c -> if c = '"' || c = '\\' then '_' else c)

(* Best configs under Hist may differ from Exact by a documented tolerance:
   the tuner is stochastic-search over an approximate model either way, so
   equivalence is "best runtimes within [tune_tolerance] relative". *)
let tune_tolerance = 0.05

let full () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"bench\": \"hotpath\",\n";

  (* --- GBT rebuild times --- *)
  print_endline "GBT rebuild, exact presort vs histogram (60 rounds, 8 features, 1 domain):";
  let sizes = [ 512; 2048; 4096 ] in
  let gbt_rows =
    List.map
      (fun n ->
        let exact_s, hist_s, rho = gbt_rebuild_pair ~n ~seed:42 in
        let speedup = exact_s /. hist_s in
        Printf.printf "  n=%-5d exact %6.3fs  hist %6.3fs  speedup %5.2fx  rank-corr %.4f\n%!"
          n exact_s hist_s speedup rho;
        if rho < 0.95 then
          fail "GBT rank correlation %.4f < 0.95 at n=%d" rho n;
        if n >= 2048 && speedup < 5.0 then
          fail "hist speedup %.2fx < 5x at n=%d" speedup n;
        Printf.sprintf
          "    {\"n\": %d, \"exact_s\": %.4f, \"hist_s\": %.4f, \"speedup\": %.2f, \"rank_correlation\": %.4f}"
          n exact_s hist_s speedup rho)
      sizes
  in
  Buffer.add_string buf "  \"gbt_rebuild\": [\n";
  Buffer.add_string buf (String.concat ",\n" gbt_rows);
  Buffer.add_string buf "\n  ],\n";

  (* --- Tuner equivalence on the scaling layer set --- *)
  let max_measurements = 150 in
  Printf.printf "Tuner best-config equivalence (%d measurements per layer):\n%!"
    max_measurements;
  let tuner_rows =
    List.map
      (fun layer ->
        let name, exact_r, exact_wall =
          tune_layer ~model_params:Gbt.Booster.default_params ~max_measurements layer
        in
        let _, hist_r, hist_wall =
          tune_layer ~model_params:Gbt.Booster.hist_params ~max_measurements layer
        in
        let rel =
          abs_float (hist_r.best_runtime_us -. exact_r.best_runtime_us)
          /. exact_r.best_runtime_us
        in
        Printf.printf
          "  %-14s exact best %9.1f us (%.1fs)  hist best %9.1f us (%.1fs)  rel diff %.4f\n%!"
          name exact_r.best_runtime_us exact_wall hist_r.best_runtime_us hist_wall rel;
        if rel > tune_tolerance then
          fail "%s: hist best runtime deviates %.4f > %.2f tolerance" name rel
            tune_tolerance;
        Printf.sprintf
          "    {\"layer\": \"%s\", \"exact_best_us\": %.4f, \"hist_best_us\": %.4f, \
           \"rel_diff\": %.4f, \"exact_config\": \"%s\", \"hist_config\": \"%s\"}"
          (json_escape name) exact_r.best_runtime_us hist_r.best_runtime_us rel
          (json_escape (Core.Config.to_string exact_r.best_config))
          (json_escape (Core.Config.to_string hist_r.best_config)))
      layers
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"tuner_equivalence\": {\"tolerance\": %.2f, \"layers\": [\n"
       tune_tolerance);
  Buffer.add_string buf (String.concat ",\n" tuner_rows);
  Buffer.add_string buf "\n  ]},\n";

  (* --- Oracle: full smoke grid, legacy vs frontier --- *)
  print_endline "Oracle differential over the sandwich smoke grid:";
  let checked = ref 0 in
  let legacy_total = ref 0.0 and frontier_total = ref 0.0 in
  let oracle_rows =
    List.concat_map
      (fun ((inst : Verify.Sandwich.instance), ss) ->
        List.map
          (fun s ->
            let q_opt, le, ls, fe, fs = oracle_pair inst ~s in
            incr checked;
            legacy_total := !legacy_total +. ls;
            frontier_total := !frontier_total +. fs;
            Printf.sprintf
              "    {\"instance\": \"%s\", \"s\": %d, \"q_opt\": %d, \"legacy_expanded\": %d, \
               \"legacy_s\": %.4f, \"frontier_expanded\": %d, \"frontier_s\": %.4f}"
              (json_escape inst.name) s q_opt le ls fe fs)
          ss)
      (Verify.Sandwich.grid ~deep:false)
  in
  Printf.printf
    "  %d (instance, S) pairs: q_opt equal everywhere; legacy %.2fs total, frontier %.2fs total\n%!"
    !checked !legacy_total !frontier_total;
  Buffer.add_string buf "  \"oracle_smoke_grid\": [\n";
  Buffer.add_string buf (String.concat ",\n" oracle_rows);
  Buffer.add_string buf "\n  ],\n";

  (* --- Oracle: the instance only the frontier engine can solve --- *)
  let name, le, ls, q, fe, fs = oracle_deep_differential () in
  Printf.printf
    "Oracle deep differential on %s (24 vertices, S=%d):\n\
    \  legacy:   exhausted its %d-state default budget (%d expanded, %.2fs)\n\
    \  frontier: optimal q_opt=%d after %d states (%.2fs)\n%!"
    name deep_s Verify.Oracle.default_budget le ls q fe fs;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"oracle_deep\": {\"instance\": \"%s\", \"s\": %d, \"vertices\": 24, \
        \"legacy_budget\": %d, \"legacy_exhausted\": true, \"legacy_s\": %.4f, \
        \"frontier_q_opt\": %d, \"frontier_expanded\": %d, \"frontier_s\": %.4f},\n"
       (json_escape name) deep_s Verify.Oracle.default_budget ls q fe fs);
  Buffer.add_string buf
    "  \"note\": \"GBT: 60-round boosters on a synthetic 8-feature regression, single domain, \
     fixed seed; tuner: best configs under Hist within the documented tolerance of Exact; \
     oracle: q_opt asserted equal on every smoke-grid pair, and the 24-vertex Winograd tile \
     is solvable only by the frontier engine at the default budget\"\n}\n";
  Util.Durable.write_atomic "BENCH_hotpath.json" (Buffer.contents buf);
  print_endline "wrote BENCH_hotpath.json"

let smoke () =
  let deep = Sys.getenv_opt "HOTPATH_DEEP" <> None in
  (* GBT: both split methods must rank predictions the same way. *)
  let _, _, rho = gbt_rebuild_pair ~n:600 ~seed:7 in
  if rho < 0.95 then fail "GBT smoke rank correlation %.4f < 0.95" rho;
  (* Oracle: engines agree on a handful of small instances. *)
  let small =
    [
      (Verify.Sandwich.matmul_instance ~m:2 ~k:2 ~n:1 (), 3);
      (Verify.Sandwich.conv_instance ~w:2 ~h:2 ~kw:2 ~kh:2 ~cin:1 ~cout:1 (), 4);
      (Verify.Sandwich.winograd_instance ~tiles_w:2 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 (), 3);
    ]
  in
  List.iter (fun (inst, s) -> ignore (oracle_pair inst ~s)) small;
  if deep then begin
    let exact_s, hist_s, _ = gbt_rebuild_pair ~n:2048 ~seed:42 in
    if exact_s /. hist_s < 5.0 then
      fail "deep: hist speedup %.2fx < 5x at n=2048" (exact_s /. hist_s);
    let _, le, _, q, fe, _ = oracle_deep_differential () in
    Printf.printf
      "  deep: 24-vertex differential ok (legacy exhausted at %d, frontier q=%d after %d)\n%!"
      le q fe
  end;
  Printf.printf
    "hotpath-smoke OK: hist ranks like exact (rho %.3f), oracle engines agree on %d instances%s\n%!"
    rho (List.length small)
    (if deep then " + deep differential" else "")

let () =
  match Array.to_list Sys.argv |> List.tl with
  | [] -> full ()
  | [ "smoke" ] -> smoke ()
  | _ ->
    prerr_endline "usage: hotpath.exe [smoke]";
    exit 1
