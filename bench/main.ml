(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe               run every experiment + microbenchmarks
     dune exec bench/main.exe -- fig9       one experiment (fig9, fig10, table2,
                                            fig11, fig12, fig13, bounds, ablations)
     dune exec bench/main.exe -- micro      bechamel microbenchmarks only

   Experiments print the paper's tables/figures from the simulated GPUs; the
   bechamel suite times the real OCaml kernels (one Test.make per experiment
   id, benchmarking that experiment's workload). *)

let microbench_tests () =
  let open Bechamel in
  let spec = Conv.Conv_spec.square ~c_in:16 ~size:24 ~c_out:16 ~k:3 ~pad:1 () in
  let rng = Util.Rng.create 7 in
  let input, weights = Conv.Direct.random_problem rng spec in
  let tile = Core.Optimality.optimal_tile_direct spec ~s:4096.0 ~np:1 in
  let wtile = Core.Optimality.optimal_tile_winograd ~e:2 spec ~s:4096.0 ~np:1 in
  let arch = Gpu_sim.Arch.v100 in
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let model = Core.Cost_model.create spec in
  let model_rng = Util.Rng.create 9 in
  for _ = 1 to 32 do
    let cfg = Core.Search_space.sample space model_rng in
    Core.Cost_model.add_measurement model cfg (Core.Tuner.measure_config arch spec cfg)
  done;
  let dag_spec =
    { Dag.Conv_dag.w_in = 8; h_in = 8; c_in = 2; c_out = 2; w_ker = 3; h_ker = 3; stride = 1 }
  in
  let dag = Dag.Conv_dag.build dag_spec in
  let schedule = Dag.Conv_dag.schedule_blocked dag ~bx:2 ~by:2 ~bz:1 in
  [
    (* fig9/fig10 exercise the tiled dataflow kernels. *)
    Test.make ~name:"fig9:tiled-direct"
      (Staged.stage (fun () ->
           ignore (Conv.Tiled_direct.run spec ~tile ~input ~weights)));
    Test.make ~name:"fig9:tiled-winograd"
      (Staged.stage (fun () ->
           ignore (Conv.Tiled_winograd.run ~e:2 spec ~tile:wtile ~input ~weights)));
    Test.make ~name:"fig10:batched-direct"
      (Staged.stage
         (let bspec = { spec with batch = 4 } in
          let binput = Tensor.random (Util.Rng.create 8) (Conv.Conv_spec.input_shape bspec) in
          fun () -> ignore (Conv.Direct.run bspec ~input:binput ~weights)));
    (* table2/fig11 exercise the tuner's inner loop: cost-model training and
       exploration. *)
    Test.make ~name:"table2:cost-model-retrain"
      (Staged.stage (fun () -> Core.Cost_model.retrain model));
    Test.make ~name:"fig11:explorer-walks"
      (Staged.stage
         (let walk_rng = Util.Rng.create 11 in
          fun () ->
            ignore
              (Core.Explorer.explore ~n_walks:4 ~walk_len:20 ~space ~model ~rng:walk_rng
                 ~starts:[] ())));
    (* fig12 exercises the library baselines the models are compared to. *)
    Test.make ~name:"fig12:library-baselines"
      (Staged.stage (fun () ->
           ignore (Gpu_sim.Library_sim.cudnn_direct arch spec);
           ignore (Gpu_sim.Library_sim.cudnn_winograd arch spec)));
    (* fig13 exercises the analytic kernel cost model across architectures. *)
    Test.make ~name:"fig13:kernel-cost-model"
      (Staged.stage
         (let cfg = Core.Search_space.default_config space in
          fun () ->
            List.iter
              (fun a -> ignore (Core.Tuner.measure_config a spec cfg))
              Gpu_sim.Arch.all));
    (* bounds exercises the pebble game. *)
    Test.make ~name:"bounds:pebble-game"
      (Staged.stage (fun () ->
           ignore
             (Pebble.Pebble_game.run dag.graph ~schedule ~s:32
                ~policy:Pebble.Pebble_game.Lru)));
    (* ablations exercise the transform generator. *)
    Test.make ~name:"ablations:winograd-transforms"
      (Staged.stage (fun () -> ignore (Conv.Winograd_transform.make ~e:4 ~r:3)));
  ]

let run_microbenchmarks () =
  print_endline "\n=== Bechamel microbenchmarks (real OCaml kernels) ===\n";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:(Some 300) () in
  let tests = microbench_tests () in
  let table = Util.Table.create [ "benchmark"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name (ols : Analyze.OLS.t) ->
          let time =
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
              else Printf.sprintf "%.0f ns" est
            | _ -> "n/a"
          in
          Util.Table.add_row table [ name; time ])
        analysis)
    tests;
  Util.Table.print table

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) Experiments.all;
    run_microbenchmarks ()
  | [ "micro" ] -> run_microbenchmarks ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name Experiments.all with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s (known: %s, micro)\n" name
            (String.concat ", " (List.map fst Experiments.all));
          exit 1)
      names
