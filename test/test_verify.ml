(* Ground-truth verification suite (the @verify-smoke / @verify-deep gate).

   Two pillars:

   - the exact pebble-game oracle: for a grid of small conv/matmul/Winograd
     DAGs, [analytic lower bound <= Q_opt(S) <= attainable schedule cost] —
     the paper's bounds sandwiched between ground truth and real plays;
   - the differential conformance harness: every convolution implementation
     against the direct reference under qcheck-generated specs (with
     shrinking), analytic I/O formulas against instrumented traffic
     counters, and GPU cost-model monotonicity invariants.

   VERIFY_DEEP=1 enlarges the grid, budgets and case counts (the
   @verify-deep alias); the default smoke configuration stays well under the
   15s runtest budget. *)

module G = Dag.Graph
module PG = Pebble.Pebble_game
module Oracle = Verify.Oracle
module Sandwich = Verify.Sandwich

let deep = Sys.getenv_opt "VERIFY_DEEP" <> None

(* ~10x headroom over the worst grid instance in each configuration. *)
let budget = if deep then 8_000_000 else 1_000_000

(* --- oracle unit checks on hand-verifiable DAGs --- *)

let test_oracle_single_sum () =
  (* c = a + b: load a, load b, compute c, store c — exactly 3 I/Os. *)
  let g = G.create () in
  let a = G.add_input g in
  let b = G.add_input g in
  let _c = G.add_compute g ~step:1 ~preds:[ a; b ] in
  List.iter
    (fun s ->
      Alcotest.(check int) (Printf.sprintf "Q_opt(%d)" s) 3 (Oracle.q_opt_exn g ~s))
    [ 3; 4; 8 ]

let test_oracle_chain () =
  (* a -> v1 -> v2: one load, one store, intermediates never touch slow
     memory once two pebbles are available. *)
  let g = G.create () in
  let a = G.add_input g in
  let v1 = G.add_compute g ~step:1 ~preds:[ a ] in
  let _v2 = G.add_compute g ~step:1 ~preds:[ v1 ] in
  Alcotest.(check int) "Q_opt(2)" 2 (Oracle.q_opt_exn g ~s:2);
  Alcotest.(check int) "Q_opt(3)" 2 (Oracle.q_opt_exn g ~s:3)

let test_oracle_shared_input () =
  (* Two outputs both reading input a: a is loaded once and kept red while
     both are computed — 2 inputs' loads would be wrong. *)
  let g = G.create () in
  let a = G.add_input g in
  let b = G.add_input g in
  let _o1 = G.add_compute g ~step:1 ~preds:[ a; b ] in
  let _o2 = G.add_compute g ~step:1 ~preds:[ a; b ] in
  Alcotest.(check int) "Q_opt(3)" 4 (Oracle.q_opt_exn g ~s:3)

let test_oracle_unlimited_memory_is_compulsory () =
  (* With S >= |V| nothing is ever evicted: Q_opt = used inputs + outputs. *)
  List.iter
    (fun inst ->
      let s = G.num_vertices inst.Sandwich.graph + 1 in
      Alcotest.(check int)
        (inst.Sandwich.name ^ " compulsory")
        (Sandwich.compulsory_io inst.Sandwich.graph)
        (Oracle.q_opt_exn ~budget inst.Sandwich.graph ~s))
    [
      Sandwich.matmul_instance ~m:1 ~k:2 ~n:1 ();
      Sandwich.matmul_instance ~m:2 ~k:2 ~n:1 ();
      Sandwich.conv_instance ~w:2 ~h:2 ~kw:2 ~kh:2 ~cin:1 ~cout:1 ();
      Sandwich.winograd_instance ~tiles_w:1 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 ();
    ]

let test_oracle_monotone_in_s () =
  let inst = Sandwich.conv_instance ~w:2 ~h:2 ~kw:2 ~kh:2 ~cin:1 ~cout:1 () in
  let prev = ref max_int in
  List.iter
    (fun s ->
      let q = Oracle.q_opt_exn ~budget inst.Sandwich.graph ~s in
      Alcotest.(check bool)
        (Printf.sprintf "Q_opt(%d) = %d <= Q_opt(smaller) = %d" s q !prev)
        true (q <= !prev);
      prev := q)
    [ 3; 4; 5; 6; 8; 16 ]

let test_oracle_witness_replays () =
  let inst = Sandwich.matmul_instance ~m:2 ~k:2 ~n:1 () in
  match Oracle.solve ~budget inst.Sandwich.graph ~s:3 with
  | Oracle.Budget_exhausted _ -> Alcotest.fail "budget exhausted on 12-vertex DAG"
  | Oracle.Optimal { q_opt; moves; _ } -> (
    match PG.trace inst.Sandwich.graph ~s:3 moves with
    | Error msg -> Alcotest.fail ("witness illegal: " ^ msg)
    | Ok final ->
      Alcotest.(check bool) "complete" true (PG.complete inst.Sandwich.graph final);
      Alcotest.(check int) "witness I/O = q_opt" q_opt (PG.state_io final))

(* The default solver explores WLOG-normalised plays (spill-on-evict
   compounds, outputs stored as computed); the Reference mode explores raw
   single moves.  They must find the same optimum — this is the safety net
   under the normalisation exchange arguments. *)
let test_oracle_normalized_matches_reference () =
  let instances =
    [
      Sandwich.matmul_instance ~m:1 ~k:2 ~n:1 ();
      Sandwich.matmul_instance ~m:2 ~k:2 ~n:1 ();
      Sandwich.matmul_instance ~m:1 ~k:3 ~n:1 ();
      Sandwich.conv_instance ~w:3 ~h:1 ~kw:2 ~kh:1 ~cin:1 ~cout:1 ();
      Sandwich.conv_instance ~w:2 ~h:1 ~kw:2 ~kh:1 ~cin:1 ~cout:2 ();
      Sandwich.winograd_instance ~tiles_w:2 ~tiles_h:1 ~cin:1 ~cout:1 ~e:1 ~r:1 ();
    ]
  in
  List.iter
    (fun inst ->
      List.iter
        (fun s ->
          let reference =
            Oracle.q_opt_exn ~budget ~mode:Oracle.Reference inst.Sandwich.graph ~s
          in
          let normalized =
            Oracle.q_opt_exn ~budget ~mode:Oracle.Normalized inst.Sandwich.graph ~s
          in
          Alcotest.(check int)
            (Printf.sprintf "%s S=%d" inst.Sandwich.name s)
            reference normalized)
        [ 3; 4 ])
    instances

(* The frontier engine (default [solve]) against the retained per-state
   hashtable engine: equal q_opt on every (instance, S) pair of the smoke
   grid, and the frontier's witness still replays through the step API to
   exactly that cost.  This is the conformance gate under the Pareto-front
   dominance argument. *)
let test_oracle_frontier_matches_legacy () =
  List.iter
    (fun (inst, ss) ->
      List.iter
        (fun s ->
          let name = Printf.sprintf "%s S=%d" inst.Sandwich.name s in
          match
            ( Oracle.solve_legacy ~budget inst.Sandwich.graph ~s,
              Oracle.solve ~budget inst.Sandwich.graph ~s )
          with
          | Oracle.Budget_exhausted _, _ | _, Oracle.Budget_exhausted _ ->
            Alcotest.failf "%s: budget exhausted on a smoke-grid instance" name
          | Oracle.Optimal legacy, Oracle.Optimal frontier -> (
            Alcotest.(check int) (name ^ " q_opt") legacy.q_opt frontier.q_opt;
            match PG.trace inst.Sandwich.graph ~s frontier.moves with
            | Error msg -> Alcotest.failf "%s: frontier witness illegal: %s" name msg
            | Ok final ->
              Alcotest.(check bool)
                (name ^ " witness complete")
                true
                (PG.complete inst.Sandwich.graph final);
              Alcotest.(check int)
                (name ^ " witness I/O")
                frontier.q_opt (PG.state_io final)))
        ss)
    (Sandwich.grid ~deep:false)

let test_oracle_want_witness_off () =
  let inst = Sandwich.matmul_instance ~m:2 ~k:2 ~n:1 () in
  match
    ( Oracle.solve ~budget inst.Sandwich.graph ~s:3,
      Oracle.solve ~budget ~want_witness:false inst.Sandwich.graph ~s:3 )
  with
  | Oracle.Optimal with_w, Oracle.Optimal without_w ->
    Alcotest.(check int) "same q_opt" with_w.q_opt without_w.q_opt;
    Alcotest.(check int) "same expansion count" with_w.expanded without_w.expanded;
    Alcotest.(check bool) "no moves without witness" true (without_w.moves = []);
    Alcotest.(check bool) "moves with witness" true (with_w.moves <> [])
  | _ -> Alcotest.fail "budget exhausted on 12-vertex DAG"

let test_oracle_rejects_bad_args () =
  let inst = Sandwich.matmul_instance ~m:1 ~k:2 ~n:1 () in
  Alcotest.check_raises "s below min_red"
    (Invalid_argument "Oracle.solve: fast memory too small to compute every vertex")
    (fun () -> ignore (Oracle.solve inst.Sandwich.graph ~s:2))

(* --- the sandwich grid --- *)

let test_sandwich_grid () =
  let checks = ref 0 in
  List.iter
    (fun (inst, ss) ->
      List.iter
        (fun s ->
          match Sandwich.check ~budget inst ~s with
          | Error expanded ->
            Alcotest.failf "%s S=%d: oracle budget exhausted after %d states"
              inst.Sandwich.name s expanded
          | Ok c ->
            incr checks;
            if not c.Sandwich.holds then
              Alcotest.failf "sandwich violated: %s"
                (Format.asprintf "%a" Sandwich.pp_check c))
        ss)
    (Sandwich.grid ~deep);
  Alcotest.(check bool)
    (Printf.sprintf "at least 30 sandwiches verified (got %d)" !checks)
    true (!checks >= 30)

(* The schedules the repo relies on elsewhere are never optimal by accident:
   at a constrained S the oracle strictly beats the generic by-step order on
   at least one instance, i.e. the oracle really searches (a solver that just
   replayed a schedule could not return a smaller value). *)
let test_oracle_beats_by_step_somewhere () =
  let inst = Sandwich.conv_instance ~w:2 ~h:2 ~kw:2 ~kh:2 ~cin:1 ~cout:1 () in
  let dag_costs = inst.Sandwich.upper_costs ~s:3 in
  let q = Oracle.q_opt_exn ~budget inst.Sandwich.graph ~s:3 in
  let worst = List.fold_left (fun acc (_, c) -> max acc c) 0 dag_costs in
  Alcotest.(check bool)
    (Printf.sprintf "Q_opt %d < worst schedule %d" q worst)
    true (q < worst)

(* --- answer-integrity audit ------------------------------------------- *)

module Audit = Verify.Audit

let audit_arches = Gpu_sim.Arch.all

let audit_specs =
  [
    Conv.Conv_spec.square ~c_in:16 ~size:16 ~c_out:16 ~k:3 ~pad:1 ();
    Conv.Conv_spec.square ~c_in:8 ~size:8 ~c_out:32 ~k:1 ();
    Conv.Conv_spec.square ~c_in:32 ~size:14 ~c_out:64 ~k:3 ();
  ]

(* A genuine answer tuple as the service would produce it: a sampled member
   of the pruned space, priced by the noise-free cost model. *)
type audit_claim = {
  canonical : string;
  key : string;
  config : Core.Config.t;
  runtime_us : float;
  gflops : float;
  predicted : float;
  q : float;
}

let claim_of ~arch_i ~spec_i ~cfg_seed =
  let arch = List.nth audit_arches (arch_i mod List.length audit_arches) in
  let spec = List.nth audit_specs (spec_i mod List.length audit_specs) in
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let config = Core.Search_space.sample space (Util.Rng.create cfg_seed) in
  let canonical = Core.Search_space.canonical space in
  let predicted = Audit.predicted_us arch spec config in
  ( space,
    arch,
    spec,
    {
      canonical;
      key = Audit.content_key canonical;
      config;
      runtime_us = predicted;
      gflops = Core.Tuner.nominal_gflops spec ~runtime_us:predicted;
      predicted;
      q = Audit.q_ratio arch spec config;
    } )

let check_claim c =
  Audit.check ~key:c.key ~gflops:c.gflops ~predicted_us:c.predicted
    ~q_ratio:c.q ~canonical:c.canonical ~config:c.config
    ~runtime_us:c.runtime_us ()

let has_token tok = function
  | Audit.Ok -> false
  | Audit.Suspect reasons ->
    List.exists (fun r -> Audit.reason_token r = tok) reasons

(* Replace hex digit [i] with the next one — guaranteed to change the key. *)
let flip_hex s i =
  let i = i mod String.length s in
  let hex = "0123456789abcdef" in
  let b = Bytes.of_string s in
  Bytes.set b i hex.[(String.index hex s.[i] + 1) mod 16];
  Bytes.to_string b

(* Bump the first decimal digit at or after [j] (cyclic) — a canonical
   string always contains digits, and the result is a different string. *)
let bump_digit s j =
  let n = String.length s in
  let rec find k =
    if k >= n then None
    else
      let i = (j + k) mod n in
      match s.[i] with '0' .. '9' -> Some i | _ -> find (k + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
    let b = Bytes.of_string s in
    Bytes.set b i (if s.[i] = '9' then '0' else Char.chr (Char.code s.[i] + 1));
    Bytes.to_string b

(* Another valid member of the same domain whose analytic price differs
   bitwise from [config]'s — so swapping it in is always observable. *)
let alt_tile_config space config arch spec =
  let orig = Audit.predicted_us arch spec config in
  let tiles = Core.Search_space.tile_candidates space in
  let rec go i =
    if i >= Array.length tiles then None
    else
      let cand = Core.Search_space.config_for_tile space tiles.(i) in
      if cand <> config && Audit.predicted_us arch spec cand <> orig then
        Some cand
      else go (i + 1)
  in
  go 0

let test_audit_genuine_ok () =
  List.iteri
    (fun arch_i _ ->
      List.iteri
        (fun spec_i _ ->
          let _, _, _, c = claim_of ~arch_i ~spec_i ~cfg_seed:7 in
          match check_claim c with
          | Audit.Ok -> ()
          | v ->
            Alcotest.failf "genuine claim rejected: %s" (Audit.verdict_to_string v))
        audit_specs)
    audit_arches

let test_audit_reason_tokens () =
  let _, _, _, c = claim_of ~arch_i:1 ~spec_i:0 ~cfg_seed:3 in
  Alcotest.(check bool)
    "key flip -> key-mismatch" true
    (has_token "key-mismatch" (check_claim { c with key = flip_hex c.key 0 }));
  Alcotest.(check bool)
    "runtime x2 -> runtime-implausible" true
    (has_token "runtime-implausible"
       (check_claim { c with runtime_us = c.runtime_us *. 2.0 }));
  Alcotest.(check bool)
    "predicted drift -> reprice-drift" true
    (has_token "reprice-drift"
       (check_claim { c with predicted = c.predicted *. 1.5 }));
  Alcotest.(check bool)
    "gflops drift -> gflops-inconsistent" true
    (has_token "gflops-inconsistent"
       (check_claim { c with gflops = c.gflops +. 1.0 }));
  Alcotest.(check bool)
    "garbage canonical -> canonical-unparseable" true
    (has_token "canonical-unparseable"
       (check_claim { c with canonical = "not a canonical string" }))

(* The tentpole property: a genuine tuple audits [Ok]; any single-field
   mutation that changes an audited value is rejected.  Every mutation
   below is constructed to be observable (runtime factors sit outside the
   5% noise band; hex/digit bumps always change the string; the config
   swap is filtered to a bitwise-different analytic price), so the
   property is exactly "mutated => Suspect". *)
let qcheck_audit_mutation =
  let count = if deep then 500 else 120 in
  QCheck.Test.make ~count
    ~name:"single-field mutations of a genuine tuple are rejected"
    QCheck.(pair (triple small_nat small_nat small_nat) (pair small_nat small_nat))
    (fun ((arch_i, spec_i, cfg_seed), (m, j)) ->
      let space, arch, spec, c = claim_of ~arch_i ~spec_i ~cfg_seed in
      (match check_claim c with
      | Audit.Ok -> ()
      | v ->
        QCheck.Test.fail_reportf "genuine claim rejected: %s"
          (Audit.verdict_to_string v));
      let f = [| 0.5; 0.8; 1.25; 2.0 |].(j mod 4) in
      let mutated =
        match m mod 7 with
        | 0 -> { c with key = flip_hex c.key j }
        | 1 -> { c with runtime_us = c.runtime_us *. f }
        | 2 -> { c with gflops = c.gflops *. f }
        | 3 -> { c with predicted = c.predicted *. f }
        | 4 -> { c with q = c.q *. f }
        | 5 -> { c with canonical = bump_digit c.canonical j }
        | _ -> (
          match alt_tile_config space c.config arch spec with
          | Some cand -> { c with config = cand }
          | None -> { c with key = flip_hex c.key j })
      in
      match check_claim mutated with
      | Audit.Suspect _ -> true
      | Audit.Ok ->
        QCheck.Test.fail_reportf "mutation %d (factor %g) accepted" (m mod 7) f)

let () =
  let conformance =
    List.map QCheck_alcotest.to_alcotest (Verify.Conformance.all_tests ~deep)
  in
  Alcotest.run "verify"
    [
      ( "oracle",
        [
          Alcotest.test_case "single sum" `Quick test_oracle_single_sum;
          Alcotest.test_case "chain" `Quick test_oracle_chain;
          Alcotest.test_case "shared input" `Quick test_oracle_shared_input;
          Alcotest.test_case "unlimited memory = compulsory" `Quick
            test_oracle_unlimited_memory_is_compulsory;
          Alcotest.test_case "monotone in S" `Quick test_oracle_monotone_in_s;
          Alcotest.test_case "witness replays through step API" `Quick
            test_oracle_witness_replays;
          Alcotest.test_case "normalized search matches reference search" `Quick
            test_oracle_normalized_matches_reference;
          Alcotest.test_case "frontier engine matches legacy engine" `Quick
            test_oracle_frontier_matches_legacy;
          Alcotest.test_case "want_witness:false skips the moves" `Quick
            test_oracle_want_witness_off;
          Alcotest.test_case "rejects bad arguments" `Quick test_oracle_rejects_bad_args;
          Alcotest.test_case "oracle beats worst schedule" `Quick
            test_oracle_beats_by_step_somewhere;
        ] );
      ("sandwich", [ Alcotest.test_case "grid" `Quick test_sandwich_grid ]);
      ( "audit",
        [
          Alcotest.test_case "genuine claims audit Ok" `Quick test_audit_genuine_ok;
          Alcotest.test_case "tampering yields typed reasons" `Quick
            test_audit_reason_tokens;
          QCheck_alcotest.to_alcotest qcheck_audit_mutation;
        ] );
      ("conformance", conformance);
    ]
