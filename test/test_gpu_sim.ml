(* Tests for the GPU performance model: architecture presets, occupancy
   arithmetic, roofline behaviour of the kernel cost model, measurement
   determinism, and the simulated vendor-library baselines. *)

module A = Gpu_sim.Arch
module O = Gpu_sim.Occupancy
module K = Gpu_sim.Kernel_cost
module M = Gpu_sim.Measure
module L = Gpu_sim.Library_sim
module Spec = Conv.Conv_spec

let arch = A.gtx_1080_ti

let kernel ?(flops = 1.0e9) ?(io = 1.0e7) ?(threads = 256) ?(shmem = 16 * 1024)
    ?(blocks = 1000) ?(coalescing = 0.9) ?(eff = 0.9) () =
  K.make ~coalescing ~compute_efficiency:eff ~flops ~io_elems:io ~threads_per_block:threads
    ~shmem_bytes_per_block:shmem ~blocks ()

let test_arch_presets () =
  Alcotest.(check int) "presets" 4 (List.length A.all);
  List.iter
    (fun (a : A.t) ->
      Alcotest.(check bool) (a.name ^ " sane") true
        (a.num_sms > 0 && a.peak_gflops > 0.0 && a.mem_bandwidth_gbs > 0.0
        && a.shared_mem_per_sm > 0))
    A.all;
  (match A.by_name "V100" with
  | Some a -> Alcotest.(check string) "lookup" "Volta" a.generation
  | None -> Alcotest.fail "V100 missing");
  Alcotest.(check bool) "unknown" true (A.by_name "TPU" = None)

let test_shared_elems () =
  Alcotest.(check int) "1080Ti S" (96 * 1024 / 4) (A.shared_elems_per_sm arch)

let test_occupancy_thread_limited () =
  let o = O.calculate arch ~threads_per_block:1024 ~shmem_bytes_per_block:0 in
  Alcotest.(check int) "blocks" 2 o.blocks_per_sm;
  Alcotest.(check (float 1e-9)) "occupancy" 1.0 o.occupancy;
  Alcotest.(check string) "limiter" "threads" o.limiter

let test_occupancy_shmem_limited () =
  let o = O.calculate arch ~threads_per_block:64 ~shmem_bytes_per_block:(48 * 1024) in
  Alcotest.(check int) "blocks" 2 o.blocks_per_sm;
  Alcotest.(check string) "limiter" "shared-memory" o.limiter;
  Alcotest.(check bool) "low occupancy" true (o.occupancy < 0.1)

let test_occupancy_not_launchable () =
  Alcotest.(check bool) "too many threads" false
    (O.launchable arch ~threads_per_block:2048 ~shmem_bytes_per_block:0);
  Alcotest.(check bool) "too much shmem" false
    (O.launchable arch ~threads_per_block:32 ~shmem_bytes_per_block:(200 * 1024));
  Alcotest.check_raises "raises" (Invalid_argument "Occupancy.calculate: block not launchable")
    (fun () -> ignore (O.calculate arch ~threads_per_block:0 ~shmem_bytes_per_block:0))

let test_kernel_memory_bound_scaling () =
  (* Memory-bound kernel: halving I/O nearly halves runtime. *)
  let heavy = kernel ~flops:1.0e6 ~io:4.0e8 () in
  let light = kernel ~flops:1.0e6 ~io:2.0e8 () in
  Alcotest.(check bool) "memory bound" true (K.memory_bound arch heavy);
  let th = K.runtime_us arch heavy and tl = K.runtime_us arch light in
  let ratio = (th -. arch.launch_overhead_us) /. (tl -. arch.launch_overhead_us) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f ~ 2" ratio) true
    (ratio > 1.8 && ratio < 2.2)

let test_kernel_compute_bound_scaling () =
  let heavy = kernel ~flops:8.0e9 ~io:1.0e5 () in
  let light = kernel ~flops:4.0e9 ~io:1.0e5 () in
  Alcotest.(check bool) "compute bound" true (not (K.memory_bound arch heavy));
  let th = K.runtime_us arch heavy and tl = K.runtime_us arch light in
  let ratio = (th -. arch.launch_overhead_us) /. (tl -. arch.launch_overhead_us) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f ~ 2" ratio) true
    (ratio > 1.8 && ratio < 2.2)

let test_kernel_coalescing_matters () =
  let good = kernel ~coalescing:0.9 () and bad = kernel ~coalescing:0.45 () in
  Alcotest.(check bool) "worse coalescing slower" true
    (K.runtime_us arch bad > K.runtime_us arch good)

let test_kernel_occupancy_matters () =
  (* A shared-memory hog that strands the SM at one resident block should be
     slower on a compute-bound problem. *)
  let fast = kernel ~flops:8.0e9 ~io:1.0e5 ~shmem:(8 * 1024) () in
  let slow = kernel ~flops:8.0e9 ~io:1.0e5 ~shmem:(48 * 1024) ~threads:64 () in
  Alcotest.(check bool) "low occupancy slower" true
    (K.runtime_us arch slow > K.runtime_us arch fast)

let test_kernel_utilisation () =
  (* Same total work: a one-block grid drives 1/num_sms of the device and
     must be much slower than a device-filling grid. *)
  let one = kernel ~blocks:1 () in
  let filled = kernel ~blocks:arch.num_sms () in
  let t_one = K.runtime_us arch one and t_filled = K.runtime_us arch filled in
  Alcotest.(check bool)
    (Printf.sprintf "1 block %.0fus slower than %d blocks %.0fus" t_one arch.num_sms t_filled)
    true
    (t_one > 4.0 *. t_filled);
  (* Beyond one block per SM the ramp saturates: doubling blocks at constant
     total work costs at most one extra wave. *)
  let double = kernel ~blocks:(2 * arch.num_sms) () in
  Alcotest.(check bool) "saturated" true
    (K.runtime_us arch double <= t_filled *. 2.0 +. arch.launch_overhead_us)

let test_kernel_gflops () =
  let k = kernel ~flops:1.0e9 () in
  let t = K.runtime_us arch k in
  Alcotest.(check (float 1e-6)) "gflops consistent" (1.0e9 /. t /. 1.0e3) (K.gflops arch k)

let test_measure_deterministic () =
  let k = kernel () in
  let a = M.runtime_us ~seed:5 arch k and b = M.runtime_us ~seed:5 arch k in
  Alcotest.(check (float 0.0)) "same seed same measurement" a b;
  let c = M.runtime_us ~seed:6 arch k in
  Alcotest.(check bool) "different seed may differ" true (Float.abs (a -. c) > 1e-12)

let test_measure_noise_bounded () =
  let k = kernel () in
  let base = K.runtime_us arch k in
  for seed = 0 to 50 do
    let m = M.runtime_us ~noise_amplitude:0.03 ~seed arch k in
    Alcotest.(check bool) "within 3%" true (Float.abs (m -. base) /. base <= 0.0301)
  done

let test_measure_average_tighter () =
  let k = kernel () in
  let base = K.runtime_us arch k in
  let avg = M.runtime_avg_us ~seed:9 ~repeat:64 arch k in
  Alcotest.(check bool) "average close to base" true (Float.abs (avg -. base) /. base < 0.01)

(* --- the robust measurement harness --- *)

(* A sampler scripted per attempt index; falls through to [last] beyond the
   script's end. *)
let scripted script ~last ~attempt =
  if attempt < Array.length script then script.(attempt) else last

let policy = M.default_policy

let test_robust_exact_counts () =
  (* timeout, nan, then three valid samples of which one is a 4x-median
     outlier: every counter in the attempt log is predictable. *)
  let script =
    [| Error (M.Timeout 500.0); Ok Float.nan; Ok 100.0; Ok 104.0; Ok 1000.0 |]
  in
  let res, log = M.robust ~sample:(scripted script ~last:(Ok 100.0)) () in
  (match res with
  | Ok v ->
    (* median [100;104;1000] = 104; 1000 > 4*104 is rejected; median of the
       two survivors = 102. *)
    Alcotest.(check (float 1e-9)) "outlier-rejected median" 102.0 v
  | Error f -> Alcotest.fail (M.failure_to_string f));
  Alcotest.(check int) "attempts" 5 log.attempts;
  Alcotest.(check int) "retries" 2 log.retries;
  Alcotest.(check int) "timeouts" 1 log.timeouts;
  Alcotest.(check int) "nan readings" 1 log.nan_readings;
  Alcotest.(check int) "outliers rejected" 1 log.outliers_rejected;
  (* backoff 50 then 100 (doubling), charged alongside the timeout cost and
     the valid samples' runtimes. *)
  Alcotest.(check (float 1e-9)) "backoff" 150.0 log.backoff_us;
  Alcotest.(check (float 1e-9)) "elapsed" (500. +. 150. +. 100. +. 104. +. 1000.) log.elapsed_us;
  Alcotest.(check bool) "retries = timeouts + nans" true
    (log.retries = log.timeouts + log.nan_readings)

let test_robust_deadline () =
  let policy = { policy with deadline_us = 3000.0 } in
  let sample ~attempt:_ = Error (M.Timeout 1000.0) in
  let res, log = M.robust ~policy ~sample () in
  (match res with
  | Error (M.Deadline_exceeded { attempts }) -> Alcotest.(check int) "attempts" 3 attempts
  | Ok _ | Error _ -> Alcotest.fail "expected Deadline_exceeded");
  Alcotest.(check bool) "elapsed past deadline" true (log.elapsed_us >= 3000.0)

let test_robust_deadline_partial_samples () =
  (* Two valid samples land before the deadline cuts the third off: the
     harness aggregates what it has instead of failing. *)
  let policy = { policy with deadline_us = 1000.0 } in
  let res, log = M.robust ~policy ~sample:(fun ~attempt:_ -> Ok 600.0) () in
  (match res with
  | Ok v -> Alcotest.(check (float 1e-9)) "partial median" 600.0 v
  | Error f -> Alcotest.fail (M.failure_to_string f));
  Alcotest.(check int) "only two attempts fit" 2 log.attempts

let test_robust_no_valid_sample () =
  let res, log = M.robust ~sample:(fun ~attempt:_ -> Ok Float.nan) () in
  (match res with
  | Error (M.No_valid_sample { attempts }) ->
    (* repeat + max_retries with the default policy *)
    Alcotest.(check int) "attempt budget exhausted" 7 attempts
  | Ok _ | Error _ -> Alcotest.fail "expected No_valid_sample");
  Alcotest.(check int) "all counted as nan readings" 7 log.nan_readings;
  (* 50,100,200,400 then capped at 800. *)
  Alcotest.(check (float 1e-9)) "backoff capped" (50. +. 100. +. 200. +. 400. +. (3. *. 800.))
    log.backoff_us

let test_robust_zero_deadline () =
  (* An already-expired budget admits no free attempt: the sampler must
     never be consulted, and the refusal is a deterministic
     [Deadline_exceeded], not an exception or a zero-attempt
     [No_valid_sample]. *)
  List.iter
    (fun deadline_us ->
      let invoked = ref false in
      let sample ~attempt:_ = invoked := true; Ok 100.0 in
      let policy = { policy with deadline_us } in
      let res, log = M.robust ~policy ~sample () in
      (match res with
      | Error (M.Deadline_exceeded { attempts }) ->
        Alcotest.(check int) "zero attempts" 0 attempts
      | Ok _ | Error _ -> Alcotest.fail "expected Deadline_exceeded");
      Alcotest.(check bool) "sampler never invoked" false !invoked;
      Alcotest.(check int) "empty log" 0 log.attempts)
    [ 0.0; -1.0; neg_infinity ]

let test_robust_deadline_on_attempt_boundary () =
  (* The clock lands exactly on the deadline at the same moment the attempt
     budget runs out: 2 NaN attempts cost backoffs 50 + 100 = 150, and the
     deadline is exactly 150.  The loop exits through the attempt guard, so
     classification must go by the clock — this is a [Deadline_exceeded],
     not a [No_valid_sample]. *)
  let policy =
    { policy with repeat = 1; max_retries = 1; deadline_us = 150.0 }
  in
  let res, log = M.robust ~policy ~sample:(fun ~attempt:_ -> Ok Float.nan) () in
  (match res with
  | Error (M.Deadline_exceeded { attempts }) ->
    Alcotest.(check int) "both attempts spent" 2 attempts
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded, got Ok"
  | Error f -> Alcotest.fail ("expected Deadline_exceeded, got " ^ M.failure_to_string f));
  Alcotest.(check (float 1e-9)) "elapsed exactly at the deadline" 150.0 log.elapsed_us

let test_robust_launch_failure_immediate () =
  let res, log = M.robust ~sample:(fun ~attempt:_ -> Error (M.Launch_failed "nope")) () in
  (match res with
  | Error (M.Launch_failure msg) -> Alcotest.(check string) "message" "nope" msg
  | Ok _ | Error _ -> Alcotest.fail "expected Launch_failure");
  Alcotest.(check int) "no retry of a persistent fault" 1 log.attempts;
  Alcotest.(check int) "no backoff" 0 log.retries

(* --- typed launch errors --- *)

let test_kernel_check_typed_errors () =
  Alcotest.(check bool) "valid kernel passes" true (K.check arch (kernel ()) = Ok ());
  (match K.check arch (kernel ~threads:2048 ()) with
  | Error (K.Threads_exceeded { threads_per_block = 2048; max_threads_per_block = 1024 }) ->
    ()
  | _ -> Alcotest.fail "expected Threads_exceeded with sizes");
  (match K.check arch (kernel ~shmem:(200 * 1024) ()) with
  | Error (K.Shmem_exceeded { shmem_bytes_per_block; max_shared_mem_per_block } as e) ->
    Alcotest.(check int) "offender" (200 * 1024) shmem_bytes_per_block;
    Alcotest.(check int) "limit" (48 * 1024) max_shared_mem_per_block;
    let msg = K.launch_error_to_string e in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the offending size" true
      (contains msg (string_of_int (200 * 1024)))
  | _ -> Alcotest.fail "expected Shmem_exceeded with sizes");
  Alcotest.(check bool) "check agrees with launchable" true
    (K.check arch (kernel ~threads:1024 ()) = Ok ())

(* --- fault injection --- *)

module F = Gpu_sim.Faults

let test_faults_none_is_oracle () =
  let k = kernel () in
  for attempt = 0 to 4 do
    match F.sample F.none ~seed:3 ~attempt arch k with
    | Ok v ->
      Alcotest.(check (float 0.0))
        "zero profile = plain oracle sample"
        (M.sample_us ~seed:3 ~stream:attempt arch k)
        v
    | Error _ -> Alcotest.fail "zero profile must not fault"
  done

let test_faults_deterministic () =
  let k = kernel () in
  for attempt = 0 to 20 do
    let a = F.sample F.default ~seed:7 ~attempt arch k in
    let b = F.sample F.default ~seed:7 ~attempt arch k in
    (* [compare], not [=]: a drawn NaN must still count as the same reading. *)
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d stable" attempt)
      true (compare a b = 0)
  done

let test_faults_rates_move () =
  (* With the timeout rate forced to 1 every attempt times out; with all
     rates 0 but a finite launch fraction, only over-budget kernels fail. *)
  let all_timeout = { F.default with timeout_rate = 1.0 } in
  (match F.sample all_timeout ~seed:1 ~attempt:0 arch (kernel ()) with
  | Error (M.Timeout cost) ->
    Alcotest.(check (float 1e-9)) "timeout cost" all_timeout.timeout_cost_us cost
  | _ -> Alcotest.fail "expected Timeout");
  let hog = kernel ~shmem:(46 * 1024) ~threads:64 () in
  (match F.sample F.default ~seed:1 ~attempt:0 arch hog with
  | Error (M.Launch_failed msg) ->
    Alcotest.(check bool) "persistent across attempts" true
      (F.sample F.default ~seed:1 ~attempt:5 arch hog = Error (M.Launch_failed msg))
  | _ -> Alcotest.fail "expected Launch_failed on a 96% shmem hog")

let test_faults_measure_robust_end_to_end () =
  let k = kernel () in
  let res, log = F.measure F.default ~seed:11 arch k in
  (match res with
  | Ok v ->
    let base = K.runtime_us arch k in
    Alcotest.(check bool) "aggregated value near the model" true
      (Float.abs (v -. base) /. base < 0.04)
  | Error f -> Alcotest.fail (M.failure_to_string f));
  Alcotest.(check bool) "attempt accounting" true (log.attempts >= 3)

let spec_std = Spec.make ~c_in:256 ~h_in:56 ~w_in:56 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 ()

let test_cudnn_direct_picks_an_algorithm () =
  let v = L.cudnn_direct arch spec_std in
  Alcotest.(check bool) "positive runtime" true (v.runtime_us > 0.0);
  Alcotest.(check bool) "algorithm named" true
    (List.mem v.algorithm
       [ "image2col"; "direct"; "implicit-gemm"; "fft"; "direct-specialised" ])

let test_cudnn_winograd_requires_support () =
  let strided = Spec.make ~c_in:8 ~h_in:16 ~w_in:16 ~c_out:8 ~k_h:3 ~k_w:3 ~stride:2 () in
  Alcotest.check_raises "stride"
    (Invalid_argument "Library_sim: winograd needs stride 1 and a square kernel") (fun () ->
      ignore (L.cudnn_winograd arch strided))

let test_winograd_beats_direct_library () =
  (* For a 3x3 stride-1 layer the library's Winograd should beat its own
     direct family, as on real GPUs. *)
  let d = L.cudnn_direct arch spec_std in
  let w = L.cudnn_winograd arch spec_std in
  Alcotest.(check bool)
    (Printf.sprintf "winograd %.0fus < direct %.0fus" w.runtime_us d.runtime_us)
    true (w.runtime_us < d.runtime_us)

let test_miopen_slower_direct () =
  let cudnn = L.cudnn_direct arch spec_std in
  let miopen = L.miopen_direct arch spec_std in
  Alcotest.(check bool) "miopen direct path weaker" true
    (miopen.runtime_us > cudnn.runtime_us)

let test_generic_tile_fits_budget () =
  List.iter
    (fun a ->
      let x, y, z = L.generic_direct_tile a spec_std in
      Alcotest.(check bool) "positive" true (x > 0 && y > 0 && z > 0);
      let ws =
        Conv.Tiled_direct.working_set spec_std ~tile:{ Conv.Tiled_direct.x; y; z } ~alpha:1
      in
      Alcotest.(check bool) "fits block shmem" true (ws * 4 <= a.A.max_shared_mem_per_block))
    A.all

let test_faster_arch_faster_library () =
  (* A layer big enough to saturate every device — at smaller sizes the V100
     legitimately loses to the 1080Ti because its 80 SMs sit idle. *)
  let big = Spec.make ~batch:4 ~c_in:256 ~h_in:112 ~w_in:112 ~c_out:128 ~k_h:3 ~k_w:3 ~pad:1 () in
  let t1080 = (L.cudnn_direct A.gtx_1080_ti big).runtime_us in
  let tv100 = (L.cudnn_direct A.v100 big).runtime_us in
  let tmaxwell = (L.cudnn_direct A.titan_x big).runtime_us in
  Alcotest.(check bool) "V100 fastest" true (tv100 < t1080);
  Alcotest.(check bool) "Maxwell slowest" true (tmaxwell > t1080)

let test_kernel_rejects_bad_arguments () =
  let make ?(coalescing = 0.9) ?(eff = 0.9) ?(blocks = 1) ?(threads = 32) () =
    K.make ~coalescing ~compute_efficiency:eff ~flops:1.0 ~io_elems:1.0
      ~threads_per_block:threads ~shmem_bytes_per_block:0 ~blocks ()
  in
  Alcotest.check_raises "zero coalescing" (Invalid_argument "Kernel_cost.make: coalescing")
    (fun () -> ignore (make ~coalescing:0.0 ()));
  Alcotest.check_raises "coalescing > 1" (Invalid_argument "Kernel_cost.make: coalescing")
    (fun () -> ignore (make ~coalescing:1.5 ()));
  Alcotest.check_raises "zero efficiency"
    (Invalid_argument "Kernel_cost.make: compute_efficiency") (fun () ->
      ignore (make ~eff:0.0 ()));
  Alcotest.check_raises "zero blocks" (Invalid_argument "Kernel_cost.make: geometry")
    (fun () -> ignore (make ~blocks:0 ()));
  Alcotest.check_raises "zero threads" (Invalid_argument "Kernel_cost.make: geometry")
    (fun () -> ignore (make ~threads:0 ()))

let test_measure_rejects_bad_repeat () =
  Alcotest.check_raises "repeat 0" (Invalid_argument "Measure.runtime_avg_us: repeat < 1")
    (fun () -> ignore (M.runtime_avg_us ~repeat:0 arch (kernel ())))

let test_roofline_consistent () =
  let k = kernel ~flops:1.0e9 ~io:1.0e7 () in
  let r = Gpu_sim.Roofline.analyze arch k in
  Alcotest.(check (float 1e-6)) "runtime matches cost model" (K.runtime_us arch k) r.runtime_us;
  Alcotest.(check bool) "components positive" true (r.compute_us > 0.0 && r.memory_us > 0.0);
  Alcotest.(check (float 1e-9)) "intensity" (1.0e9 /. (4.0 *. 1.0e7)) r.arithmetic_intensity;
  Alcotest.(check bool) "rendering has lines" true
    (String.split_on_char '\n' (Gpu_sim.Roofline.to_string r) |> List.length >= 6)

let test_roofline_bound_classification () =
  let mem = Gpu_sim.Roofline.analyze arch (kernel ~flops:1.0e6 ~io:4.0e8 ()) in
  Alcotest.(check bool) "memory bound" true (mem.bound = Gpu_sim.Roofline.Memory_bound);
  let comp = Gpu_sim.Roofline.analyze arch (kernel ~flops:8.0e9 ~io:1.0e5 ()) in
  Alcotest.(check bool) "compute bound" true (comp.bound = Gpu_sim.Roofline.Compute_bound);
  let tiny = Gpu_sim.Roofline.analyze arch (kernel ~flops:1.0e3 ~io:1.0e3 ~blocks:28 ()) in
  Alcotest.(check bool) "overhead bound" true (tiny.bound = Gpu_sim.Roofline.Overhead_bound)

let test_algorithm_selection_shapes () =
  (* The simulated library's choices should mirror real cuDNN heuristics on
     recognisable shapes. *)
  let resnet_body = Spec.make ~c_in:64 ~h_in:56 ~w_in:56 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 () in
  Alcotest.(check string) "resnet body is specialised" "direct-specialised"
    (L.cudnn_direct A.v100 resnet_body).algorithm;
  let batched = Spec.make ~batch:8 ~c_in:256 ~h_in:56 ~w_in:56 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 () in
  Alcotest.(check string) "big batch goes implicit-gemm" "implicit-gemm"
    (L.cudnn_direct A.gtx_1080_ti batched).algorithm;
  let wino = L.cudnn_winograd A.v100 resnet_body in
  Alcotest.(check string) "resnet winograd is specialised" "winograd-specialised" wino.algorithm

let () =
  Alcotest.run "gpu_sim"
    [
      ( "arch",
        [
          Alcotest.test_case "presets" `Quick test_arch_presets;
          Alcotest.test_case "shared elems" `Quick test_shared_elems;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "thread limited" `Quick test_occupancy_thread_limited;
          Alcotest.test_case "shmem limited" `Quick test_occupancy_shmem_limited;
          Alcotest.test_case "not launchable" `Quick test_occupancy_not_launchable;
        ] );
      ( "kernel_cost",
        [
          Alcotest.test_case "memory-bound scaling" `Quick test_kernel_memory_bound_scaling;
          Alcotest.test_case "compute-bound scaling" `Quick test_kernel_compute_bound_scaling;
          Alcotest.test_case "coalescing matters" `Quick test_kernel_coalescing_matters;
          Alcotest.test_case "occupancy matters" `Quick test_kernel_occupancy_matters;
          Alcotest.test_case "utilisation ramp" `Quick test_kernel_utilisation;
          Alcotest.test_case "gflops" `Quick test_kernel_gflops;
        ] );
      ( "measure",
        [
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "noise bounded" `Quick test_measure_noise_bounded;
          Alcotest.test_case "average tighter" `Quick test_measure_average_tighter;
        ] );
      ( "errors",
        [
          Alcotest.test_case "kernel argument validation" `Quick
            test_kernel_rejects_bad_arguments;
          Alcotest.test_case "measure repeat validation" `Quick test_measure_rejects_bad_repeat;
          Alcotest.test_case "typed launch errors" `Quick test_kernel_check_typed_errors;
        ] );
      ( "robust",
        [
          Alcotest.test_case "exact counters" `Quick test_robust_exact_counts;
          Alcotest.test_case "deadline" `Quick test_robust_deadline;
          Alcotest.test_case "partial samples at deadline" `Quick
            test_robust_deadline_partial_samples;
          Alcotest.test_case "no valid sample" `Quick test_robust_no_valid_sample;
          Alcotest.test_case "zero/negative deadline" `Quick test_robust_zero_deadline;
          Alcotest.test_case "deadline on attempt boundary" `Quick
            test_robust_deadline_on_attempt_boundary;
          Alcotest.test_case "launch failure immediate" `Quick
            test_robust_launch_failure_immediate;
        ] );
      ( "faults",
        [
          Alcotest.test_case "zero profile is the oracle" `Quick test_faults_none_is_oracle;
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "rates drive fault kinds" `Quick test_faults_rates_move;
          Alcotest.test_case "measure end to end" `Quick test_faults_measure_robust_end_to_end;
        ] );
      ( "roofline",
        [
          Alcotest.test_case "consistent with cost model" `Quick test_roofline_consistent;
          Alcotest.test_case "bound classification" `Quick test_roofline_bound_classification;
        ] );
      ( "library_sim",
        [
          Alcotest.test_case "cudnn direct picks algorithm" `Quick
            test_cudnn_direct_picks_an_algorithm;
          Alcotest.test_case "winograd requires support" `Quick
            test_cudnn_winograd_requires_support;
          Alcotest.test_case "winograd beats direct" `Quick test_winograd_beats_direct_library;
          Alcotest.test_case "miopen direct weaker" `Quick test_miopen_slower_direct;
          Alcotest.test_case "generic tile fits" `Quick test_generic_tile_fits_budget;
          Alcotest.test_case "faster arch faster library" `Quick test_faster_arch_faster_library;
          Alcotest.test_case "algorithm selection on known shapes" `Quick
            test_algorithm_selection_shapes;
        ] );
    ]
