(* Tests for the core library (the paper's contribution):

   - Genfun's numeric T(S) maximiser recovers Lemma 4.11's closed form for
     the direct convolution and stays within the order constant of Lemma 4.19
     for Winograd;
   - the generic Theorem 4.6 bound agrees with the closed-form Theorems
     4.12/4.20 up to small constants;
   - the executable pebble game never beats the lower bound (the central
     soundness check of the whole theory, run over schedules, policies and
     memory sizes);
   - the Equation 20/22 cost formulas match the exact per-block tallies and
     are minimised on the optimality manifold xy = Rz;
   - the search space, cost model, explorer, tuner and baselines behave:
     pruning shrinks the space, tuned configs satisfy the domain, the tuner
     improves on its starting point and beats/matches the TVM-style search
     with fewer measurements. *)

module Spec = Conv.Conv_spec

let arch = Gpu_sim.Arch.gtx_1080_ti

let spec_mid = Spec.make ~c_in:4 ~h_in:12 ~w_in:12 ~c_out:4 ~k_h:3 ~k_w:3 ()
let spec_layer = Spec.make ~c_in:64 ~h_in:28 ~w_in:28 ~c_out:64 ~k_h:3 ~k_w:3 ~pad:1 ()

(* --- Genfun --- *)

let test_genfun_chain_value () =
  let steps =
    [
      Core.Genfun.step ~name:"a" (fun k -> 2.0 *. k);
      Core.Genfun.step ~name:"b" ~psi:(fun _ -> 0.0) (fun k -> k +. 1.0);
    ]
  in
  (* phi1(3) + phi2(4 + psi1(3)) = 6 + (4 + 6 + 1) = 17 *)
  Alcotest.(check (float 1e-9)) "chain" 17.0 (Core.Genfun.chain_value steps [| 3.0; 4.0 |])

let test_genfun_single_step () =
  let steps = [ Core.Genfun.step ~name:"only" (fun k -> k *. k) ] in
  (* Monotone phi: entire budget goes to the single step. *)
  Alcotest.(check (float 1e-6)) "T(S) = S + S^2" 110.0 (Core.Genfun.t_of_s steps 10.0)

let test_genfun_matches_direct_closed_form () =
  List.iter
    (fun s ->
      let numeric = Core.Genfun.t_of_s (Core.Direct_bound.steps spec_mid ~s) s in
      let closed = Core.Direct_bound.t_upper spec_mid ~s in
      let rel = Float.abs (numeric -. closed) /. closed in
      Alcotest.(check bool)
        (Printf.sprintf "S=%.0f numeric %.1f vs closed %.1f" s numeric closed)
        true (rel < 0.02))
    [ 64.0; 256.0; 1024.0 ]

let test_genfun_winograd_order () =
  List.iter
    (fun s ->
      let numeric = Core.Genfun.t_of_s (Core.Winograd_bound.steps ~e:2 spec_mid ~s) s in
      let closed = Core.Winograd_bound.t_upper ~e:2 spec_mid ~s in
      (* Lemma 4.19 keeps only the leading terms, so agreement is an order
         check: within a factor of 8 both ways. *)
      Alcotest.(check bool)
        (Printf.sprintf "S=%.0f numeric %.3g vs closed %.3g" s numeric closed)
        true
        (numeric < 8.0 *. closed && closed < 8.0 *. numeric))
    [ 256.0; 1024.0 ]

let qcheck_t_of_s_dominates_random_allocations =
  (* T(S) maximises the nested sum; any random allocation of the budget must
     evaluate below it, for random monotone polynomial-ish step functions. *)
  QCheck.Test.make ~name:"t_of_s dominates random allocations" ~count:60
    QCheck.(
      triple
        (pair (float_range 0.1 3.0) (float_range 0.2 1.5))
        (pair (float_range 0.1 3.0) (float_range 0.2 1.5))
        (pair (float_range 10.0 200.0) (pair (float_range 0.0 1.0) (float_range 0.0 1.0))))
    (fun ((a1, p1), (a2, p2), (s, (f1, f2))) ->
      let phi1 k = a1 *. (Float.max 0.0 k ** p1) in
      let psi1 k = 0.5 *. phi1 k in
      let phi2 k = a2 *. (Float.max 0.0 k ** p2) in
      let steps =
        [ Core.Genfun.step ~name:"s1" ~psi:psi1 phi1; Core.Genfun.step ~name:"s2" phi2 ]
      in
      let t = Core.Genfun.t_of_s steps s in
      (* A random split of the budget (f1, f2 normalised onto the simplex). *)
      let total = f1 +. f2 +. 1e-9 in
      let k1 = s *. f1 /. total and k2 = s *. f2 /. total in
      let value = s +. Core.Genfun.chain_value steps [| k1; k2 |] in
      value <= t +. (1e-6 *. Float.abs t) +. 1e-6)

(* --- bounds --- *)

let test_direct_bound_scaling () =
  let q1 = Core.Direct_bound.q_lower spec_layer ~s:1024.0 in
  let q4 = Core.Direct_bound.q_lower spec_layer ~s:4096.0 in
  (* Q ~ 1/sqrt(S): quadrupling S halves the bound. *)
  Alcotest.(check (float 1e-6)) "1/sqrt(S) scaling" (q1 /. 2.0) q4

let test_direct_bound_composite_close () =
  List.iter
    (fun s ->
      let closed = Core.Direct_bound.q_lower spec_mid ~s in
      let generic = Core.Direct_bound.q_lower_composite spec_mid ~s in
      Alcotest.(check bool)
        (Printf.sprintf "S=%.0f closed %.1f generic %.1f" s closed generic)
        true
        (generic > 0.0 && generic < 4.0 *. closed && closed < 16.0 *. generic))
    [ 16.0; 64.0 ]

let test_winograd_bound_scaling () =
  let q1 = Core.Winograd_bound.q_lower ~e:2 spec_layer ~s:1024.0 in
  let q4 = Core.Winograd_bound.q_lower ~e:2 spec_layer ~s:4096.0 in
  Alcotest.(check (float 1e-6)) "1/sqrt(S) scaling" (q1 /. 2.0) q4;
  (* Larger e lowers the bound (more outputs per transformed tile). *)
  let e2 = Core.Winograd_bound.q_lower ~e:2 spec_layer ~s:1024.0 in
  let e4 = Core.Winograd_bound.q_lower ~e:4 spec_layer ~s:1024.0 in
  Alcotest.(check bool) "e=4 bound below e=2" true (e4 < e2)

let test_winograd_bound_requires_square () =
  let rect = Spec.make ~c_in:1 ~h_in:8 ~w_in:8 ~c_out:1 ~k_h:2 ~k_w:3 () in
  Alcotest.check_raises "square kernel"
    (Invalid_argument "Winograd_bound: square kernel required") (fun () ->
      ignore (Core.Winograd_bound.q_lower ~e:2 rect ~s:64.0))

let test_matmul_bound_scaling () =
  let q1 = Core.Matmul_bound.q_lower ~m:64 ~k:64 ~n:64 ~s:256.0 in
  let q4 = Core.Matmul_bound.q_lower ~m:64 ~k:64 ~n:64 ~s:1024.0 in
  Alcotest.(check (float 1e-6)) "1/sqrt(S)" (q1 /. 2.0) q4;
  (* Cubic in the problem edge. *)
  let q2 = Core.Matmul_bound.q_lower ~m:128 ~k:128 ~n:128 ~s:256.0 in
  Alcotest.(check (float 1e-6)) "cubic" (8.0 *. q1) q2

let test_matmul_t_matches_closed_form () =
  List.iter
    (fun s ->
      let numeric = Core.Genfun.t_of_s (Core.Matmul_bound.steps ~s) s in
      let closed = Core.Matmul_bound.t_upper ~s in
      let rel = Float.abs (numeric -. closed) /. closed in
      Alcotest.(check bool) (Printf.sprintf "S=%.0f rel %.4f" s rel) true (rel < 0.02))
    [ 64.0; 512.0 ]

let test_matmul_blocked_above_bound () =
  let m = 48 and k = 48 and n = 48 and s = 144.0 in
  let blocked = Core.Matmul_bound.q_blocked_optimal ~m ~k ~n ~s in
  let bound = Core.Matmul_bound.q_lower ~m ~k ~n ~s in
  Alcotest.(check bool)
    (Printf.sprintf "blocked %.0f >= bound %.0f" blocked bound)
    true (blocked >= bound);
  (* Square tiles beat skewed tiles of the same area. *)
  let skewed = Core.Matmul_bound.q_blocked ~m ~k ~n ~bi:(s /. 4.0) ~bj:4.0 in
  Alcotest.(check bool) "square tile wins" true (blocked < skewed)

let test_pebble_game_respects_matmul_bound () =
  let spec = { Dag.Matmul_dag.m = 12; k = 12; n = 12 } in
  let dag = Dag.Matmul_dag.build spec in
  List.iter
    (fun s ->
      let bound =
        Core.Matmul_bound.q_lower ~m:spec.m ~k:spec.k ~n:spec.n ~s:(float_of_int s)
      in
      List.iter
        (fun (name, schedule) ->
          let stats =
            Pebble.Pebble_game.run dag.graph ~schedule ~s ~policy:Pebble.Pebble_game.Lru
          in
          let q = float_of_int (Pebble.Pebble_game.total_io stats) in
          Alcotest.(check bool)
            (Printf.sprintf "%s S=%d q %.0f >= bound %.0f" name s q bound)
            true (q >= bound))
        [
          ("blocked", Dag.Matmul_dag.schedule_blocked dag ~bi:4 ~bj:4);
          ("by-step", Dag.Matmul_dag.schedule_by_step dag);
        ])
    [ 8; 64; 256 ];
  (* The blocked schedule must beat the naive one at small S. *)
  let q schedule =
    Pebble.Pebble_game.total_io
      (Pebble.Pebble_game.run dag.graph ~schedule ~s:64 ~policy:Pebble.Pebble_game.Lru)
  in
  let blocked = q (Dag.Matmul_dag.schedule_blocked dag ~bi:4 ~bj:4) in
  let naive = q (Dag.Matmul_dag.schedule_output_stationary dag) in
  Alcotest.(check bool)
    (Printf.sprintf "blocked %d < naive %d" blocked naive)
    true (blocked < naive)

(* --- pebble game vs lower bound (theory soundness) --- *)

let test_pebble_game_respects_direct_bound () =
  let dag_spec =
    { Dag.Conv_dag.w_in = 10; h_in = 10; c_in = 3; c_out = 3; w_ker = 3; h_ker = 3; stride = 1 }
  in
  let conv_spec = Spec.make ~c_in:3 ~h_in:10 ~w_in:10 ~c_out:3 ~k_h:3 ~k_w:3 () in
  let dag = Dag.Conv_dag.build dag_spec in
  List.iter
    (fun s ->
      let bound = Core.Direct_bound.q_lower conv_spec ~s:(float_of_int s) in
      List.iter
        (fun (name, schedule) ->
          List.iter
            (fun policy ->
              let stats = Pebble.Pebble_game.run dag.graph ~schedule ~s ~policy in
              let q = float_of_int (Pebble.Pebble_game.total_io stats) in
              Alcotest.(check bool)
                (Printf.sprintf "%s S=%d measured %.0f >= bound %.0f" name s q bound)
                true (q >= bound))
            [ Pebble.Pebble_game.Lru; Pebble.Pebble_game.Belady ])
        [
          ("output-stationary", Dag.Conv_dag.schedule_output_stationary dag);
          ("by-step", Dag.Conv_dag.schedule_by_step dag);
          ("blocked", Dag.Conv_dag.schedule_blocked dag ~bx:4 ~by:4 ~bz:1);
        ])
    [ 8; 32; 128; 512 ]

let test_pebble_game_respects_winograd_bound () =
  let wspec = { Dag.Winograd_dag.tiles_w = 3; tiles_h = 3; c_in = 2; c_out = 2; e = 2; r = 3 } in
  let w_in, h_in = Dag.Winograd_dag.in_size wspec in
  let conv_spec = Spec.make ~c_in:2 ~h_in ~w_in ~c_out:2 ~k_h:3 ~k_w:3 () in
  let dag = Dag.Winograd_dag.build wspec in
  List.iter
    (fun s ->
      let bound = Core.Winograd_bound.q_lower ~e:2 conv_spec ~s:(float_of_int s) in
      let stats =
        Pebble.Pebble_game.run dag.graph
          ~schedule:(Dag.Winograd_dag.schedule_natural dag)
          ~s ~policy:Pebble.Pebble_game.Lru
      in
      let q = float_of_int (Pebble.Pebble_game.total_io stats) in
      Alcotest.(check bool)
        (Printf.sprintf "S=%d measured %.0f >= bound %.0f" s q bound)
        true (q >= bound))
    [ 8; 64; 256 ]

(* --- dataflow cost and optimality --- *)

let test_q_dc_tile_matches_exact_tally () =
  (* Exactly dividing tiles, no padding: the Equation 20 closed form matches
     the per-block tally of Tiled_direct.  Equation 20 approximates the input
     tile as x' y' ~ mu^2 x y, i.e. it ignores the halo, so agreement needs
     tiles that dwarf the kernel. *)
  let spec = Spec.make ~c_in:5 ~h_in:66 ~w_in:66 ~c_out:6 ~k_h:3 ~k_w:3 () in
  let x = 32 and y = 32 and z = 3 in
  let exact =
    Conv.Io_count.total (Conv.Tiled_direct.io_only spec ~tile:{ Conv.Tiled_direct.x; y; z })
  in
  let analytic =
    Core.Dataflow_cost.q_dc_tile spec ~x:(float_of_int x) ~y:(float_of_int y)
      ~z:(float_of_int z)
  in
  let rel = Float.abs (exact -. analytic) /. exact in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.0f analytic %.0f" exact analytic)
    true (rel < 0.12)

let test_q_dc_minimised_on_manifold () =
  let r = Spec.reuse spec_layer in
  let volume = 512.0 in
  (* The optimal split of a fixed volume: xy = R z. *)
  let z_opt = sqrt (volume /. r) in
  let xy_opt = volume /. z_opt in
  let side = sqrt xy_opt in
  let q_opt = Core.Dataflow_cost.q_dc_tile spec_layer ~x:side ~y:side ~z:z_opt in
  List.iter
    (fun (x, y, z) ->
      let q = Core.Dataflow_cost.q_dc_tile spec_layer ~x ~y ~z in
      Alcotest.(check bool)
        (Printf.sprintf "tile %gx%gx%g q %.0f >= opt %.0f" x y z q q_opt)
        true
        (q >= q_opt -. 1e-6))
    [ (512.0, 1.0, 1.0); (1.0, 1.0, 512.0); (32.0, 16.0, 1.0); (8.0, 8.0, 8.0) ]

let test_q_dc_optimal_formula () =
  (* Equation 21 at the optimal tile: evaluating Equation 20 there matches. *)
  let s = 12288.0 and np = 1 in
  let xy, z = Core.Optimality.real_tile_direct spec_layer ~s ~np in
  let side = sqrt xy in
  let via_tile = Core.Dataflow_cost.q_dc_tile spec_layer ~x:side ~y:side ~z in
  let closed = Core.Dataflow_cost.q_dc_optimal spec_layer ~s ~np in
  let rel = Float.abs (via_tile -. closed) /. closed in
  Alcotest.(check bool) (Printf.sprintf "%.0f vs %.0f" via_tile closed) true (rel < 1e-6)

let test_q_wa_optimal_formula () =
  (* The paper's Equation 23 drops the sqrt(2) that the temporary-array
     capacity constraint 2 a^2/e^2 xyz = S/Np injects into the reading term,
     so evaluating Equation 22 at the optimal tile lands a factor sqrt(2)
     above the quoted closed form.  We reproduce Equation 23 verbatim and pin
     the discrepancy here. *)
  let s = 12288.0 and np = 1 in
  let e = 2 in
  let xy, z = Core.Optimality.real_tile_winograd ~e spec_layer ~s ~np in
  let side = sqrt xy in
  let via_tile = Core.Dataflow_cost.q_wa_tile ~e spec_layer ~x:side ~y:side ~z in
  let closed = Core.Dataflow_cost.q_wa_optimal ~e spec_layer ~s ~np in
  let outs = float_of_int (Spec.output_elems spec_layer) in
  let reading_ratio = (via_tile -. outs) /. (closed -. outs) in
  Alcotest.(check (float 1e-6)) "reading terms differ by exactly sqrt(2)" (sqrt 2.0)
    reading_ratio

let test_dataflow_above_lower_bound () =
  (* The dataflow can approach but never beat the bound. *)
  List.iter
    (fun s ->
      let q = Core.Dataflow_cost.q_dc_optimal spec_layer ~s ~np:1 in
      let bound = Core.Direct_bound.q_lower spec_layer ~s in
      Alcotest.(check bool)
        (Printf.sprintf "S=%.0f dataflow %.3g >= bound %.3g" s q bound)
        true (q >= bound))
    [ 256.0; 4096.0; 24576.0 ];
  (* And the gap is a modest constant (the paper's near-optimality claim). *)
  let gap = Core.Dataflow_cost.optimality_gap spec_layer ~s:12288.0 ~np:1 in
  Alcotest.(check bool) (Printf.sprintf "gap %.2f" gap) true (gap > 1.0 && gap < 20.0)

let test_optimality_helpers () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Core.Optimality.divisors 12);
  Alcotest.(check int) "nearest divisor" 6 (Core.Optimality.nearest_divisor 12 7.0);
  Alcotest.(check (float 1e-9)) "ratio" 1.0
    (Core.Optimality.condition_ratio ~r:9.0 ~x:9 ~y:4 ~z:4);
  Alcotest.(check bool) "satisfied" true (Core.Optimality.satisfied ~r:9.0 (9, 4, 4));
  Alcotest.(check bool) "violated" false (Core.Optimality.satisfied ~r:9.0 (100, 10, 1))

let test_optimal_tile_direct_properties () =
  let s = 12288.0 in
  let tile = Core.Optimality.optimal_tile_direct spec_layer ~s ~np:1 in
  let { Conv.Tiled_direct.x; y; z } = tile in
  Alcotest.(check int) "x divides w_out" 0 (Spec.w_out spec_layer mod x);
  Alcotest.(check int) "y divides h_out" 0 (Spec.h_out spec_layer mod y);
  Alcotest.(check int) "z divides c_out" 0 (spec_layer.c_out mod z);
  let r = Spec.reuse spec_layer in
  Alcotest.(check bool) "near manifold" true (Core.Optimality.satisfied ~slack:4.0 ~r (x, y, z))

let test_optimal_tile_winograd_multiple_of_e () =
  let tile = Core.Optimality.optimal_tile_winograd ~e:2 spec_layer ~s:12288.0 ~np:1 in
  Alcotest.(check int) "x multiple of e" 0 (tile.Conv.Tiled_winograd.x mod 2);
  Alcotest.(check int) "y multiple of e" 0 (tile.Conv.Tiled_winograd.y mod 2)

(* --- config / search space --- *)

let direct_space () = Core.Search_space.make arch spec_layer Core.Config.Direct_dataflow
let full_space () = Core.Search_space.make ~pruned:false arch spec_layer Core.Config.Direct_dataflow

let test_config_features_arity () =
  let space = direct_space () in
  let cfg = Core.Search_space.default_config space in
  Alcotest.(check int) "n_features" Core.Config.n_features
    (Array.length (Core.Config.features spec_layer cfg))

let test_config_kernel_launchable () =
  let space = direct_space () in
  let rng = Util.Rng.create 5 in
  for _ = 1 to 50 do
    let cfg = Core.Search_space.sample space rng in
    let kernel = Core.Config.to_kernel arch spec_layer cfg in
    Alcotest.(check bool) "positive runtime" true
      (Gpu_sim.Kernel_cost.runtime_us arch kernel > 0.0)
  done

let test_config_derates_in_range () =
  let space = full_space () in
  let rng = Util.Rng.create 6 in
  for _ = 1 to 100 do
    let cfg = Core.Search_space.sample space rng in
    let c = Core.Config.coalescing spec_layer cfg in
    let e = Core.Config.compute_efficiency spec_layer cfg in
    Alcotest.(check bool) "coalescing in (0,1]" true (c > 0.0 && c <= 1.0);
    Alcotest.(check bool) "efficiency in (0,1]" true (e > 0.0 && e <= 1.0)
  done

let test_space_pruning_shrinks () =
  let pruned = Core.Search_space.size (direct_space ()) in
  let full = Core.Search_space.size (full_space ()) in
  let ratio = pruned /. full in
  Alcotest.(check bool)
    (Printf.sprintf "pruned %.3g / full %.3g = %.2f" pruned full ratio)
    true
    (ratio > 0.02 && ratio < 0.8)

let test_space_samples_are_members () =
  List.iter
    (fun space ->
      let rng = Util.Rng.create 7 in
      for _ = 1 to 100 do
        let cfg = Core.Search_space.sample space rng in
        Alcotest.(check bool) "sample in space" true (Core.Search_space.mem space cfg);
        let next = Core.Search_space.neighbor space rng cfg in
        Alcotest.(check bool) "neighbor in space" true (Core.Search_space.mem space next)
      done)
    [ direct_space (); full_space () ]

let test_space_tiles_satisfy_condition_when_pruned () =
  let space = direct_space () in
  let r = Spec.reuse spec_layer in
  Array.iter
    (fun (x, y, z) ->
      Alcotest.(check bool)
        (Printf.sprintf "tile %dx%dx%d" x y z)
        true
        (Core.Optimality.satisfied ~slack:2.0 ~r (x, y, z)))
    (Core.Search_space.tile_candidates space)

let test_space_winograd_tiles_multiple_of_e () =
  let spec = Spec.make ~c_in:16 ~h_in:28 ~w_in:28 ~c_out:16 ~k_h:3 ~k_w:3 ~pad:1 () in
  let space = Core.Search_space.make arch spec (Core.Config.Winograd_dataflow 2) in
  Array.iter
    (fun (x, y, _) ->
      Alcotest.(check int) "x mult of 2" 0 (x mod 2);
      Alcotest.(check int) "y mult of 2" 0 (y mod 2))
    (Core.Search_space.tile_candidates space)

let test_space_size_matches_enumeration () =
  (* [size] is computed arithmetically; [iter_configs] enumerates.  They must
     agree exactly on a small space. *)
  let spec = Spec.make ~c_in:4 ~h_in:6 ~w_in:6 ~c_out:4 ~k_h:3 ~k_w:3 () in
  List.iter
    (fun pruned ->
      let space = Core.Search_space.make ~pruned arch spec Core.Config.Direct_dataflow in
      let counted = ref 0 in
      Core.Search_space.iter_configs space (fun _ -> incr counted);
      Alcotest.(check int)
        (Printf.sprintf "pruned=%b" pruned)
        (int_of_float (Core.Search_space.size space))
        !counted)
    [ true; false ]

let test_tuner_near_exhaustive_optimum () =
  (* Ground truth: on a space small enough to enumerate, the tuner's best must
     land within a few percent of the true optimum. *)
  let spec = Spec.make ~c_in:8 ~h_in:10 ~w_in:10 ~c_out:8 ~k_h:3 ~k_w:3 ~pad:1 () in
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let best = ref infinity in
  Core.Search_space.iter_configs space (fun cfg ->
      let t = Core.Tuner.measure_config arch spec cfg in
      if t < !best then best := t);
  let tuned = Core.Tuner.tune ~seed:2 ~max_measurements:300 ~space () in
  Alcotest.(check bool)
    (Printf.sprintf "tuned %.2fus within 5%% of optimum %.2fus" tuned.best_runtime_us !best)
    true
    (tuned.best_runtime_us <= !best *. 1.05)

(* --- cost model --- *)

let test_cost_model_learns_ordering () =
  let space = full_space () in
  let model = Core.Cost_model.create spec_layer in
  let rng = Util.Rng.create 11 in
  (* Train on 80 real measurements, check rank correlation on 40 fresh. *)
  for _ = 1 to 80 do
    let cfg = Core.Search_space.sample space rng in
    Core.Cost_model.add_measurement model cfg (Core.Tuner.measure_config arch spec_layer cfg)
  done;
  Core.Cost_model.retrain model;
  Alcotest.(check bool) "trained" true (Core.Cost_model.trained model);
  let fresh = Array.init 40 (fun _ -> Core.Search_space.sample space rng) in
  let actual = Array.map (fun c -> Core.Tuner.measure_config arch spec_layer c) fresh in
  let predicted = Array.map (Core.Cost_model.predict_runtime_us model) fresh in
  (* Pairwise ranking accuracy must beat coin-flipping comfortably. *)
  let agree = ref 0 and total = ref 0 in
  for i = 0 to 39 do
    for j = i + 1 to 39 do
      if Float.abs (actual.(i) -. actual.(j)) > 1e-9 then begin
        incr total;
        if (actual.(i) < actual.(j)) = (predicted.(i) < predicted.(j)) then incr agree
      end
    done
  done;
  let accuracy = float_of_int !agree /. float_of_int !total in
  Alcotest.(check bool) (Printf.sprintf "ranking accuracy %.2f" accuracy) true (accuracy > 0.65)

let test_cost_model_untrained_constant () =
  let model = Core.Cost_model.create spec_layer in
  let space = direct_space () in
  let cfg = Core.Search_space.default_config space in
  Alcotest.(check bool) "untrained flag" false (Core.Cost_model.trained model);
  Alcotest.(check (float 1.0)) "large constant" 1.0e9
    (Core.Cost_model.predict_runtime_us model cfg)

let test_error_paths () =
  Alcotest.check_raises "empty genfun" (Invalid_argument "Genfun.t_of_s: no steps") (fun () ->
      ignore (Core.Genfun.t_of_s [] 10.0));
  Alcotest.check_raises "negative budget" (Invalid_argument "Genfun.t_of_s: negative budget")
    (fun () ->
      ignore (Core.Genfun.t_of_s [ Core.Genfun.step ~name:"x" Fun.id ] (-1.0)));
  Alcotest.check_raises "chain arity" (Invalid_argument "Genfun.chain_value: arity") (fun () ->
      ignore (Core.Genfun.chain_value [ Core.Genfun.step ~name:"x" Fun.id ] [||]));
  Alcotest.check_raises "bad tile" (Invalid_argument "Dataflow_cost.q_dc_tile: tile")
    (fun () -> ignore (Core.Dataflow_cost.q_dc_tile spec_layer ~x:0.0 ~y:1.0 ~z:1.0));
  Alcotest.check_raises "bad np" (Invalid_argument "Dataflow_cost.q_dc_optimal") (fun () ->
      ignore (Core.Dataflow_cost.q_dc_optimal spec_layer ~s:64.0 ~np:0));
  Alcotest.check_raises "bad ratio args" (Invalid_argument "Optimality.condition_ratio")
    (fun () -> ignore (Core.Optimality.condition_ratio ~r:9.0 ~x:0 ~y:1 ~z:1));
  Alcotest.check_raises "divisors of 0" (Invalid_argument "Optimality.divisors") (fun () ->
      ignore (Core.Optimality.divisors 0));
  (* Winograd search space on an unsupported (strided) layer. *)
  let strided = Spec.make ~c_in:8 ~h_in:16 ~w_in:16 ~c_out:8 ~k_h:3 ~k_w:3 ~stride:2 () in
  Alcotest.check_raises "winograd space on strided layer"
    (Invalid_argument "Search_space.make: winograd unsupported for this layer") (fun () ->
      ignore (Core.Search_space.make arch strided (Core.Config.Winograd_dataflow 2)))

(* --- explorer / tuner / baselines --- *)

(* Cross-domain execution must change nothing: force real workers into the
   shared pool (even on single-core hosts) and compare against [domains = 1]. *)
let () = Util.Pool.ensure_workers (Util.Pool.default ()) 3

let test_explorer_parallel_equals_sequential () =
  let space = direct_space () in
  let model = Core.Cost_model.create spec_layer in
  (* Train the model a little so walks actually follow predicted costs. *)
  let train_rng = Util.Rng.create 21 in
  for _ = 1 to 40 do
    let cfg = Core.Search_space.sample space train_rng in
    Core.Cost_model.add_measurement model cfg (Core.Tuner.measure_config arch spec_layer cfg)
  done;
  Core.Cost_model.retrain model;
  let ranking domains =
    let rng = Util.Rng.create 13 in
    let starts = [ Core.Search_space.default_config space ] in
    Core.Explorer.explore ~domains ~space ~model ~rng ~starts ()
  in
  let sequential = ranking 1 in
  Alcotest.(check bool) "non-empty" true (sequential <> []);
  List.iter
    (fun domains ->
      let parallel = ranking domains in
      Alcotest.(check int)
        (Printf.sprintf "same count at domains=%d" domains)
        (List.length sequential) (List.length parallel);
      Alcotest.(check bool)
        (Printf.sprintf "identical candidate ranking at domains=%d" domains)
        true
        (List.for_all2 (fun a b -> a = b) sequential parallel))
    [ 2; 8 ]

let test_tuner_parallel_equals_sequential () =
  let run domains =
    let space = direct_space () in
    Core.Tuner.tune ~seed:4 ~max_measurements:120 ~domains ~space ()
  in
  let seq = run 1 in
  List.iter
    (fun domains ->
      let par = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "same best config at domains=%d" domains)
        true
        (par.best_config = seq.best_config);
      Alcotest.(check (float 0.0)) "bit-identical best runtime" seq.best_runtime_us
        par.best_runtime_us;
      Alcotest.(check int) "same measurement count" seq.measurements par.measurements;
      Alcotest.(check int) "same convergence point" seq.converged_at par.converged_at;
      Alcotest.(check bool) "bit-identical history" true (par.history = seq.history))
    [ 2; 8 ]

let test_explorer_returns_members () =
  let space = direct_space () in
  let model = Core.Cost_model.create spec_layer in
  let rng = Util.Rng.create 13 in
  let out = Core.Explorer.explore ~space ~model ~rng ~starts:[] () in
  Alcotest.(check bool) "non-empty" true (out <> []);
  List.iter
    (fun cfg -> Alcotest.(check bool) "member" true (Core.Search_space.mem space cfg))
    out

let test_tuner_improves_and_converges () =
  let space = direct_space () in
  let result = Core.Tuner.tune ~seed:3 ~max_measurements:150 ~space () in
  let default_runtime =
    Core.Tuner.measure_config ~seed:3 arch spec_layer (Core.Search_space.default_config space)
  in
  Alcotest.(check bool)
    (Printf.sprintf "best %.1f <= default %.1f" result.best_runtime_us default_runtime)
    true
    (result.best_runtime_us <= default_runtime +. 1e-9);
  Alcotest.(check bool) "measured some" true (result.measurements > 16);
  Alcotest.(check bool) "measured within budget" true (result.measurements <= 150);
  Alcotest.(check bool) "converged index valid" true
    (result.converged_at >= 1 && result.converged_at <= result.measurements);
  (* History is a non-increasing best-so-far curve. *)
  let rec non_increasing : Core.Tuner.progress list -> bool = function
    | a :: (b :: _ as rest) ->
      a.best_runtime_us >= b.best_runtime_us -. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "history monotone" true (non_increasing result.history);
  Alcotest.(check bool) "config in space" true
    (Core.Search_space.mem space result.best_config)

let test_ate_beats_tvm_on_search_cost () =
  (* Table 2's claim, in miniature: same oracle, pruned vs full space. The
     ATE should converge at least as fast and land within a whisker of (or
     below) the TVM-style result. *)
  let ate =
    Core.Tuner.tune ~seed:1 ~max_measurements:200
      ~space:(Core.Search_space.make arch spec_layer Core.Config.Direct_dataflow)
      ()
  in
  let tvm =
    Core.Baselines.tvm ~seed:1 ~max_measurements:200 arch spec_layer
      Core.Config.Direct_dataflow
  in
  Alcotest.(check bool)
    (Printf.sprintf "space %.3g < %.3g" ate.space_size tvm.space_size)
    true
    (ate.space_size < tvm.space_size);
  Alcotest.(check bool)
    (Printf.sprintf "ATE %.1fus within 10%% of TVM %.1fus" ate.best_runtime_us
       tvm.best_runtime_us)
    true
    (ate.best_runtime_us <= tvm.best_runtime_us *. 1.10)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_template_direct () =
  let space = direct_space () in
  let cfg = Core.Search_space.default_config space in
  let text = Core.Template.render arch spec_layer cfg in
  Alcotest.(check bool) "names the kernel" true (contains text "direct_dataflow_kernel");
  Alcotest.(check bool) "declares resident partials" true (contains text "out_block");
  Alcotest.(check bool) "declares stage tile" true (contains text "in_tile");
  Alcotest.(check bool) "unroll pragma" true
    (contains text (Printf.sprintf "#pragma unroll %d" cfg.unroll));
  (* The declared shared-memory byte count must be the cost model's. *)
  Alcotest.(check bool) "shmem agrees with Config" true
    (contains text (Printf.sprintf "shared memory: %d bytes" (Core.Config.shmem_bytes spec_layer cfg)))

let test_template_winograd () =
  let space = Core.Search_space.make arch spec_layer (Core.Config.Winograd_dataflow 2) in
  let cfg = Core.Search_space.default_config space in
  let text = Core.Template.render arch spec_layer cfg in
  Alcotest.(check bool) "names the kernel" true (contains text "winograd_f2_dataflow_kernel");
  Alcotest.(check bool) "transform calls" true
    (contains text "transform_B" && contains text "transform_G" && contains text "transform_A")

let test_template_geometry () =
  let space = direct_space () in
  let cfg = Core.Search_space.default_config space in
  let gx, gy, gz = Core.Template.grid_dim spec_layer cfg in
  Alcotest.(check int) "grid covers the output" (Core.Config.blocks spec_layer cfg) (gx * gy * gz);
  Alcotest.(check int) "stage count = channels per group" spec_layer.c_in
    (Core.Template.stage_count spec_layer cfg)

let test_template_depthwise () =
  (* Grouped layers flow through the template with per-group channel stages. *)
  let spec = Spec.make ~c_in:16 ~h_in:14 ~w_in:14 ~c_out:16 ~k_h:3 ~k_w:3 ~pad:1 ~groups:16 () in
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  let cfg = Core.Search_space.default_config space in
  Alcotest.(check int) "one stage per depthwise channel" 1
    (Core.Template.stage_count spec cfg);
  let text = Core.Template.render arch spec cfg in
  Alcotest.(check bool) "renders" true (String.length text > 0)

let test_config_compact_roundtrip () =
  let space = full_space () in
  let rng = Util.Rng.create 31 in
  for _ = 1 to 100 do
    let cfg = Core.Search_space.sample space rng in
    match Core.Config.of_compact (Core.Config.to_compact cfg) with
    | Some back -> Alcotest.(check bool) "roundtrip" true (back = cfg)
    | None -> Alcotest.fail "of_compact failed"
  done;
  Alcotest.(check bool) "garbage rejected" true (Core.Config.of_compact "nonsense" = None);
  Alcotest.(check bool) "partial rejected" true (Core.Config.of_compact "d|CHW|1,2" = None)

let test_tuning_log_roundtrip () =
  let space = direct_space () in
  let result = Core.Tuner.tune ~seed:5 ~max_measurements:40 ~space () in
  let entry = Core.Tuning_log.entry_of_result arch spec_layer result in
  (match Core.Tuning_log.of_line (Core.Tuning_log.to_line entry) with
  | Some back ->
    Alcotest.(check string) "arch" entry.arch_name back.arch_name;
    Alcotest.(check string) "spec" entry.spec_key back.spec_key;
    Alcotest.(check bool) "config" true (back.config = entry.config);
    Alcotest.(check (float 1e-5)) "runtime" entry.runtime_us back.runtime_us
  | None -> Alcotest.fail "line did not parse");
  let path = Filename.temp_file "tuning" ".log" in
  Core.Tuning_log.save path [ entry; { entry with runtime_us = entry.runtime_us *. 2.0 } ];
  Core.Tuning_log.append path { entry with runtime_us = entry.runtime_us /. 2.0 };
  let loaded = Core.Tuning_log.load path in
  Alcotest.(check int) "all entries" 3 (List.length loaded.entries);
  Alcotest.(check int) "nothing dropped" 0 loaded.dropped;
  let best = Core.Tuning_log.best_per_key loaded.entries in
  Alcotest.(check int) "one key" 1 (Hashtbl.length best);
  Hashtbl.iter
    (fun _ (e : Core.Tuning_log.entry) ->
      Alcotest.(check (float 1e-5)) "kept fastest" (entry.runtime_us /. 2.0) e.runtime_us)
    best;
  Sys.remove path

let test_tuning_log_skips_garbage () =
  (* A file that was never a durable log (no header, no checksums) salvages
     to zero entries — and the loss is *counted*, not silently skipped. *)
  let path = Filename.temp_file "tuning" ".log" in
  let oc = open_out path in
  output_string oc "not a record\nv1\tbroken\n";
  close_out oc;
  let r = Core.Tuning_log.load path in
  Alcotest.(check int) "garbage yields no entries" 0 (List.length r.entries);
  Alcotest.(check int) "both lines counted dropped" 2 r.dropped;
  Alcotest.(check bool) "reason reported" true (r.reason <> None);
  Sys.remove path

let test_tuning_log_rejects_bad_values () =
  let space = direct_space () in
  let entry =
    {
      Core.Tuning_log.arch_name = "v100";
      spec_key = "spec";
      runtime_us = 100.0;
      config = Core.Search_space.default_config space;
    }
  in
  let raises name e =
    match Core.Tuning_log.to_line e with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  raises "nan runtime" { entry with runtime_us = Float.nan };
  raises "inf runtime" { entry with runtime_us = Float.infinity };
  raises "negative inf" { entry with runtime_us = Float.neg_infinity };
  raises "zero runtime" { entry with runtime_us = 0.0 };
  raises "negative runtime" { entry with runtime_us = -3.0 };
  raises "tab in arch" { entry with arch_name = "a\tb" };
  raises "newline in spec" { entry with spec_key = "a\nb" };
  (* Damage an external writer could produce is dropped on read. *)
  let compact = Core.Config.to_compact entry.config in
  Alcotest.(check bool) "inf line dropped" true
    (Core.Tuning_log.of_line (Printf.sprintf "v1\tv100\tspec\tinf\t%s" compact) = None);
  Alcotest.(check bool) "nan line dropped" true
    (Core.Tuning_log.of_line (Printf.sprintf "v1\tv100\tspec\tnan\t%s" compact) = None);
  Alcotest.(check bool) "good line still parses" true
    (Core.Tuning_log.of_line (Core.Tuning_log.to_line entry) <> None)

let qcheck_tuning_log_roundtrip =
  let config = Core.Search_space.default_config (direct_space ()) in
  let sanitize s =
    "k" ^ String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then '_' else c) s
  in
  QCheck.Test.make ~name:"tuning log line roundtrip" ~count:100
    QCheck.(triple small_printable_string small_printable_string (float_range 1e-3 1e9))
    (fun (a, s, runtime_us) ->
      let entry =
        { Core.Tuning_log.arch_name = sanitize a; spec_key = sanitize s; runtime_us; config }
      in
      match Core.Tuning_log.of_line (Core.Tuning_log.to_line entry) with
      | Some back ->
        back.arch_name = entry.arch_name
        && back.spec_key = entry.spec_key
        && back.config = entry.config
        (* %.6f truncates to microsecond-millionths: absolute error < 1e-6 *)
        && Float.abs (back.runtime_us -. entry.runtime_us) < 1e-6
      | None -> false)

(* Satellite of the verification subsystem: the pruned tile set is exactly
   the brute-force filter of the unpruned one under the documented predicate
   (Optimality.satisfied with slack 2 plus the sqrt(S/R) / sqrt(SR) caps of
   Corollary 4.14) — pruning never invents tiles and never drops a tile the
   predicate admits. *)
let test_tile_pruning_equals_brute_force () =
  List.iter
    (fun spec ->
      let pruned = Core.Search_space.make ~pruned:true arch spec Core.Config.Direct_dataflow in
      let unpruned =
        Core.Search_space.make ~pruned:false arch spec Core.Config.Direct_dataflow
      in
      let r = Spec.reuse spec in
      let sb =
        float_of_int
          (min (arch.Gpu_sim.Arch.shared_mem_per_sm / 2)
             arch.Gpu_sim.Arch.max_shared_mem_per_block
          / 4)
      in
      let admitted (x, y, z) =
        Core.Optimality.satisfied ~slack:2.0 ~r (x, y, z)
        && float_of_int z <= sqrt (sb /. r) +. 1e-9
        && float_of_int (x * y) <= sqrt (sb *. r) +. 1e-9
      in
      let sorted a = List.sort compare (Array.to_list a) in
      let brute =
        List.sort compare
          (List.filter admitted (Array.to_list (Core.Search_space.tile_candidates unpruned)))
      in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "pruned = filtered unpruned (%s)" (Spec.to_string spec))
        brute
        (sorted (Core.Search_space.tile_candidates pruned));
      Alcotest.(check bool) "pruning is a strict subset here" true
        (Array.length (Core.Search_space.tile_candidates pruned)
        < Array.length (Core.Search_space.tile_candidates unpruned)))
    [ spec_layer; spec_mid ]

let test_search_space_validate_typed () =
  let space = direct_space () in
  let cfg = Core.Search_space.default_config space in
  Alcotest.(check bool) "default validates" true
    (Core.Search_space.validate space cfg = Ok ());
  (match Core.Search_space.validate space { cfg with algorithm = Core.Config.Winograd_dataflow 2 } with
  | Error (Core.Search_space.Wrong_algorithm _) -> ()
  | _ -> Alcotest.fail "expected Wrong_algorithm");
  (match Core.Search_space.validate space { cfg with tile_x = 9973 } with
  | Error (Core.Search_space.Tile_not_in_domain { tile = 9973, _, _ } as e) ->
    let msg = Core.Search_space.invalid_to_string e in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the offending tile" true (contains msg "9973")
  | _ -> Alcotest.fail "expected Tile_not_in_domain with the bad extent");
  (match Core.Search_space.validate space { cfg with threads_x = cfg.tile_x * 2 } with
  | Error (Core.Search_space.Threads_not_dividing _) -> ()
  | _ -> Alcotest.fail "expected Threads_not_dividing");
  (match Core.Search_space.validate space { cfg with unroll = 3 } with
  | Error (Core.Search_space.Knob_out_of_domain { knob = "unroll"; value = "3" }) -> ()
  | _ -> Alcotest.fail "expected Knob_out_of_domain for unroll=3");
  Alcotest.(check bool) "mem agrees with validate" false
    (Core.Search_space.mem space { cfg with unroll = 3 })

let test_tune_journal_roundtrip () =
  let exact = 100.0 /. 3.0 in
  let e1 = { Core.Tune_journal.key = "d|CHW|4,4,8"; outcome = Measured exact } in
  (match Core.Tune_journal.of_line (Core.Tune_journal.to_line e1) with
  | Some { key; outcome = Measured v } ->
    Alcotest.(check string) "key" e1.key key;
    (* hex-float notation: the round-trip is exact, not approximate *)
    Alcotest.(check (float 0.0)) "bit-exact runtime" exact v
  | _ -> Alcotest.fail "ok line did not parse");
  let e2 = { Core.Tune_journal.key = "k"; outcome = Failed "deadline exceeded (3 attempts)" } in
  (match Core.Tune_journal.of_line (Core.Tune_journal.to_line e2) with
  | Some { outcome = Failed r; _ } ->
    Alcotest.(check string) "reason" "deadline exceeded (3 attempts)" r
  | _ -> Alcotest.fail "fail line did not parse");
  (match Core.Tune_journal.of_line
           (Core.Tune_journal.to_line { e2 with outcome = Failed "tab\there" }) with
  | Some { outcome = Failed r; _ } -> Alcotest.(check string) "tab squashed" "tab here" r
  | _ -> Alcotest.fail "squashed fail line did not parse");
  let raises name e =
    match Core.Tune_journal.to_line e with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  raises "empty key" { e1 with key = "" };
  raises "tab in key" { e1 with key = "a\tb" };
  raises "nan runtime" { e1 with outcome = Measured Float.nan };
  raises "inf runtime" { e1 with outcome = Measured Float.infinity };
  raises "zero runtime" { e1 with outcome = Measured 0.0 };
  List.iter
    (fun line ->
      Alcotest.(check bool) ("dropped: " ^ String.escaped line) true
        (Core.Tune_journal.of_line line = None))
    [ ""; "garbage"; "j1\tk"; "j1\tk\tok\tnan"; "j1\tk\tok\tnotafloat";
      "j0\tk\tok\t0x1p1"; "j1\t\tok\t0x1p1" ];
  (* A crash mid-write leaves a torn last line; whole records still load and
     the torn fragment is counted dropped rather than silently vanishing. *)
  let path = Filename.temp_file "journal" ".j" in
  Core.Tune_journal.append path e1;
  Core.Tune_journal.append path e2;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "r\t01234567\tj1\ttrunc";
  close_out oc;
  let r = Core.Tune_journal.load path in
  Alcotest.(check int) "whole records load" 2 (List.length r.entries);
  Alcotest.(check int) "torn fragment counted" 1 r.dropped;
  let tbl = Core.Tune_journal.to_table r.entries in
  Alcotest.(check bool) "table keyed by compact config" true (Hashtbl.mem tbl e1.key);
  Sys.remove path

(* Negative zero passes a naive [> 0.0] mental model but is not a runtime a
   measurement can produce; the journal rejects it on write and drops it on
   read, like the other non-positive values. *)
let test_tune_journal_negative_zero_and_subnormals () =
  (match Core.Tune_journal.to_line { key = "k"; outcome = Measured (-0.0) } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative zero accepted on write");
  List.iter
    (fun line ->
      Alcotest.(check bool) ("dropped: " ^ String.escaped line) true
        (Core.Tune_journal.of_line line = None))
    [ "j1\tk\tok\t-0x0p+0"; "j1\tk\tok\t-0.0"; "j1\tk\tok\t0x0p+0"; "j1\tk\tok\t-0x1.8p-4" ];
  (* Positive subnormals are legal measurements as far as the format cares;
     they must survive the hex-float round-trip bit-for-bit. *)
  List.iter
    (fun v ->
      match Core.Tune_journal.of_line
              (Core.Tune_journal.to_line { key = "k"; outcome = Measured v })
      with
      | Some { outcome = Measured back; _ } ->
        Alcotest.(check int64) (Printf.sprintf "%h bit-identical" v)
          (Int64.bits_of_float v) (Int64.bits_of_float back)
      | _ -> Alcotest.failf "%h did not round-trip" v)
    [ Float.min_float; Float.ldexp 1.0 (-1074); Float.ldexp 3.0 (-1070);
      Float.max_float; Float.succ 0.0 ]

(* The bit-identical-resume guarantee, as a property: an arbitrary journal —
   keys of printable junk, runtimes spanning subnormal to huge magnitudes,
   failure reasons with whitespace — written entry by entry and loaded back
   is the same sequence, with [Measured] values equal as bit patterns (not
   merely within epsilon). *)
let qcheck_tune_journal_replay_bit_identical =
  let sanitize_key s =
    "k" ^ String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then '_' else c) s
  in
  let runtime_of (mant, ex) =
    (* ldexp over a wide exponent range reaches subnormals; complete
       underflow to 0.0 is nudged to the smallest subnormal. *)
    let v = Float.ldexp (float_of_int ((mant land 0xfffff) lor 1)) ex in
    if v = 0.0 then Float.ldexp 1.0 (-1074) else v
  in
  let entry_of (key, choice, (mant, ex), reason) =
    let outcome =
      if choice then Core.Tune_journal.Measured (runtime_of (mant, ex))
      else
        Core.Tune_journal.Failed
          (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) reason)
    in
    { Core.Tune_journal.key = sanitize_key key; outcome }
  in
  QCheck.Test.make ~name:"tune journal replay is bit-identical" ~count:30
    QCheck.(
      small_list
        (quad small_printable_string bool
           (pair small_int (int_range (-1090) 60))
           small_printable_string))
    (fun raw ->
      let entries = List.map entry_of raw in
      let path = Filename.temp_file "journal_prop" ".j" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          List.iter (Core.Tune_journal.append path) entries;
          let back = (Core.Tune_journal.load path).entries in
          List.length back = List.length entries
          && List.for_all2
               (fun a b ->
                 a.Core.Tune_journal.key = b.Core.Tune_journal.key
                 &&
                 match (a.Core.Tune_journal.outcome, b.Core.Tune_journal.outcome) with
                 | Measured x, Measured y ->
                   Int64.bits_of_float x = Int64.bits_of_float y
                 | Failed x, Failed y -> x = y
                 | _ -> false)
               entries back))

let test_tuner_deterministic () =
  (* Reproducibility is a headline property: identical seeds must yield
     identical searches end to end. *)
  let space () = Core.Search_space.make arch spec_layer Core.Config.Direct_dataflow in
  let a = Core.Tuner.tune ~seed:9 ~max_measurements:80 ~space:(space ()) () in
  let b = Core.Tuner.tune ~seed:9 ~max_measurements:80 ~space:(space ()) () in
  Alcotest.(check (float 0.0)) "same best runtime" a.best_runtime_us b.best_runtime_us;
  Alcotest.(check bool) "same best config" true (a.best_config = b.best_config);
  Alcotest.(check int) "same measurement count" a.measurements b.measurements;
  Alcotest.(check bool) "same history" true (a.history = b.history)

let test_baselines_run () =
  let run name result =
    Alcotest.(check bool) (name ^ " found something") true (result.Core.Tuner.best_runtime_us > 0.0);
    Alcotest.(check bool) (name ^ " history") true (result.history <> [])
  in
  run "random" (Core.Baselines.random_search ~seed:2 ~max_measurements:60 arch spec_layer
                  Core.Config.Direct_dataflow);
  run "genetic" (Core.Baselines.genetic ~seed:2 ~population:8 ~generations:6 arch spec_layer
                   Core.Config.Direct_dataflow);
  run "annealing" (Core.Baselines.simulated_annealing ~seed:2 ~max_measurements:60 arch
                     spec_layer Core.Config.Direct_dataflow)

let qcheck_bound_positive =
  QCheck.Test.make ~name:"bounds positive and monotone in problem size" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 8 32))
    (fun (c, size) ->
      let spec = Spec.make ~c_in:c ~h_in:size ~w_in:size ~c_out:c ~k_h:3 ~k_w:3 () in
      let bigger = Spec.make ~c_in:c ~h_in:(size * 2) ~w_in:(size * 2) ~c_out:c ~k_h:3 ~k_w:3 () in
      let q = Core.Direct_bound.q_lower spec ~s:256.0 in
      let q2 = Core.Direct_bound.q_lower bigger ~s:256.0 in
      q > 0.0 && q2 > q)

(* --- Canonicalization (the service cache key) --- *)

(* Two specs built through different constructor paths but describing the
   same layer must canonicalize — and therefore content-address — equally,
   and any single differing field must break the equality. *)
let qcheck_canonical_spec_equal =
  QCheck.Test.make ~name:"semantically equal specs canonicalize equal" ~count:200
    QCheck.(
      quad (int_range 1 64) (int_range 1 64) (int_range 1 7) (int_range 0 3))
    (fun (c, size, k, pad) ->
      (* Clamp: qcheck shrinkers wander below the generator's range, and a
         kernel larger than the padded image has no output (both
         constructors reject it identically — nothing to compare). *)
      let c = max 1 c and size = max 1 size and k = max 1 k and pad = max 0 pad in
      QCheck.assume (size + (2 * pad) >= k);
      let via_square = Spec.square ~c_in:c ~size ~c_out:c ~k ~pad () in
      let via_axes =
        Spec.make ~c_in:c ~h_in:size ~w_in:size ~c_out:c ~k_h:k ~k_w:k ~pad_h:pad
          ~pad_w:pad ()
      in
      let via_uniform_pad =
        Spec.make ~c_in:c ~h_in:size ~w_in:size ~c_out:c ~k_h:k ~k_w:k ~pad ()
      in
      let canon = Spec.canonical via_square in
      String.equal canon (Spec.canonical via_axes)
      && String.equal canon (Spec.canonical via_uniform_pad)
      && String.equal
           (Core.Search_space.canonical_key arch via_square Core.Config.Direct_dataflow
              ~pruned:true)
           (Core.Search_space.canonical_key arch via_axes Core.Config.Direct_dataflow
              ~pruned:true))

let qcheck_canonical_distinguishes =
  QCheck.Test.make ~name:"canonical separates differing specs and settings" ~count:100
    QCheck.(pair (int_range 1 32) (int_range 2 16))
    (fun (c, size) ->
      let c = max 1 c and size = max 3 size in
      let spec = Spec.make ~c_in:c ~h_in:size ~w_in:size ~c_out:c ~k_h:3 ~k_w:3 () in
      let bigger =
        Spec.make ~c_in:c ~h_in:(size + 1) ~w_in:size ~c_out:c ~k_h:3 ~k_w:3 ()
      in
      let key = Core.Search_space.canonical_key arch spec Core.Config.Direct_dataflow in
      (not (String.equal (Spec.canonical spec) (Spec.canonical bigger)))
      && (not
            (String.equal (key ~pruned:true)
               (Core.Search_space.canonical_key Gpu_sim.Arch.v100 spec
                  Core.Config.Direct_dataflow ~pruned:true)))
      && (not
            (String.equal (key ~pruned:true)
               (Core.Search_space.canonical_key arch spec (Core.Config.Winograd_dataflow 2)
                  ~pruned:true)))
      && not (String.equal (key ~pruned:true) (key ~pruned:false)))

let test_canonical_key_matches_space () =
  let space = Core.Search_space.make arch spec_layer Core.Config.Direct_dataflow in
  Alcotest.(check string) "canonical_key agrees with canonical of a built space"
    (Core.Search_space.canonical_key arch spec_layer Core.Config.Direct_dataflow
       ~pruned:true)
    (Core.Search_space.canonical space)

let () =
  Alcotest.run "core"
    [
      ( "genfun",
        [
          Alcotest.test_case "chain value" `Quick test_genfun_chain_value;
          Alcotest.test_case "single step" `Quick test_genfun_single_step;
          Alcotest.test_case "matches Lemma 4.11" `Quick test_genfun_matches_direct_closed_form;
          Alcotest.test_case "winograd order (Lemma 4.19)" `Quick test_genfun_winograd_order;
          QCheck_alcotest.to_alcotest qcheck_t_of_s_dominates_random_allocations;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "direct 1/sqrt(S) scaling" `Quick test_direct_bound_scaling;
          Alcotest.test_case "composite vs closed form" `Quick test_direct_bound_composite_close;
          Alcotest.test_case "winograd scaling" `Quick test_winograd_bound_scaling;
          Alcotest.test_case "winograd requires square" `Quick test_winograd_bound_requires_square;
          QCheck_alcotest.to_alcotest qcheck_bound_positive;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "bound scaling" `Quick test_matmul_bound_scaling;
          Alcotest.test_case "T(S) matches closed form" `Quick test_matmul_t_matches_closed_form;
          Alcotest.test_case "blocked above bound" `Quick test_matmul_blocked_above_bound;
          Alcotest.test_case "pebble game never beats bound" `Slow
            test_pebble_game_respects_matmul_bound;
        ] );
      ( "pebble-vs-theory",
        [
          Alcotest.test_case "direct DAG never beats Theorem 4.12" `Slow
            test_pebble_game_respects_direct_bound;
          Alcotest.test_case "winograd DAG never beats Theorem 4.20" `Slow
            test_pebble_game_respects_winograd_bound;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "Eq.20 matches exact tally" `Quick test_q_dc_tile_matches_exact_tally;
          Alcotest.test_case "minimised on xy=Rz" `Quick test_q_dc_minimised_on_manifold;
          Alcotest.test_case "Eq.21 from Eq.20 at optimum" `Quick test_q_dc_optimal_formula;
          Alcotest.test_case "Eq.23 from Eq.22 at optimum" `Quick test_q_wa_optimal_formula;
          Alcotest.test_case "dataflow above bound, small gap" `Quick
            test_dataflow_above_lower_bound;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "helpers" `Quick test_optimality_helpers;
          Alcotest.test_case "direct tile properties" `Quick test_optimal_tile_direct_properties;
          Alcotest.test_case "winograd tile multiples of e" `Quick
            test_optimal_tile_winograd_multiple_of_e;
        ] );
      ( "search-space",
        [
          Alcotest.test_case "features arity" `Quick test_config_features_arity;
          Alcotest.test_case "kernels launchable" `Quick test_config_kernel_launchable;
          Alcotest.test_case "derates in range" `Quick test_config_derates_in_range;
          Alcotest.test_case "pruning shrinks space" `Quick test_space_pruning_shrinks;
          Alcotest.test_case "samples/neighbors are members" `Quick test_space_samples_are_members;
          Alcotest.test_case "pruned tiles satisfy condition" `Quick
            test_space_tiles_satisfy_condition_when_pruned;
          Alcotest.test_case "winograd tiles multiples of e" `Quick
            test_space_winograd_tiles_multiple_of_e;
          Alcotest.test_case "size matches enumeration" `Quick test_space_size_matches_enumeration;
          Alcotest.test_case "tuner near exhaustive optimum" `Slow
            test_tuner_near_exhaustive_optimum;
        ] );
      ( "canonical",
        [
          QCheck_alcotest.to_alcotest qcheck_canonical_spec_equal;
          QCheck_alcotest.to_alcotest qcheck_canonical_distinguishes;
          Alcotest.test_case "canonical_key matches built space" `Quick
            test_canonical_key_matches_space;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "learns ranking" `Slow test_cost_model_learns_ordering;
          Alcotest.test_case "untrained constant" `Quick test_cost_model_untrained_constant;
        ] );
      ( "tuning",
        [
          Alcotest.test_case "explorer members" `Quick test_explorer_returns_members;
          Alcotest.test_case "explorer parallel = sequential" `Quick
            test_explorer_parallel_equals_sequential;
          Alcotest.test_case "tuner parallel = sequential" `Slow
            test_tuner_parallel_equals_sequential;
          Alcotest.test_case "tuner improves and converges" `Slow test_tuner_improves_and_converges;
          Alcotest.test_case "ATE vs TVM (Table 2 miniature)" `Slow test_ate_beats_tvm_on_search_cost;
          Alcotest.test_case "tuner deterministic" `Slow test_tuner_deterministic;
          Alcotest.test_case "baselines run" `Slow test_baselines_run;
        ] );
      ( "errors",
        [
          Alcotest.test_case "argument validation" `Quick test_error_paths;
          Alcotest.test_case "tile pruning = brute-force filter" `Quick
            test_tile_pruning_equals_brute_force;
          Alcotest.test_case "typed space validation" `Quick test_search_space_validate_typed;
        ] );
      ( "template",
        [
          Alcotest.test_case "direct render" `Quick test_template_direct;
          Alcotest.test_case "winograd render" `Quick test_template_winograd;
          Alcotest.test_case "geometry" `Quick test_template_geometry;
          Alcotest.test_case "depthwise stages" `Quick test_template_depthwise;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "config compact roundtrip" `Quick test_config_compact_roundtrip;
          Alcotest.test_case "tuning log roundtrip" `Quick test_tuning_log_roundtrip;
          Alcotest.test_case "tuning log skips garbage" `Quick test_tuning_log_skips_garbage;
          Alcotest.test_case "tuning log rejects bad values" `Quick
            test_tuning_log_rejects_bad_values;
          QCheck_alcotest.to_alcotest qcheck_tuning_log_roundtrip;
          Alcotest.test_case "tune journal roundtrip" `Quick test_tune_journal_roundtrip;
          Alcotest.test_case "tune journal -0.0 and subnormals" `Quick
            test_tune_journal_negative_zero_and_subnormals;
          QCheck_alcotest.to_alcotest qcheck_tune_journal_replay_bit_identical;
        ] );
    ]
