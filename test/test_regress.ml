(* Tests for the gold-file regression harness: record round-trips, the typed
   mismatch diff, and the end-to-end self-test the ISSUE demands — perturb
   one golden record and prove `regress` reports exactly that typed mismatch
   and withholds the .pass marker. *)

module Gold = Regress.Gold
module Sweep = Regress.Sweep
module Harness = Regress.Harness

let () = Util.Log.set_quiet true

let arch = Gpu_sim.Arch.v100

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let sample_record =
  {
    Gold.layer = "conv1";
    spec = "batch=1,cin=3,hin=8,win=8,cout=4,kh=3,kw=3,stride=1,padh=0,padw=0,groups=1";
    algorithm = "direct-dataflow";
    config = "d|CHW|16,8,16|16,4,4|4|2|1";
    ours_us = 12.5;
    predicted_us = 11.25;
    library_us = 20.0;
    library_algorithm = "direct-specialised";
    q_ratio = 1.5;
    stop = "converged";
    trials = 42;
  }

let sample_meta =
  { Gold.model = "Mini-Net"; arch = "v100"; seed = 0; budget = 40; backend = "cudnn" }

(* Bit-level float equality, except that any NaN equals any NaN: "%h" prints
   every NaN as "nan", so the payload (sign/quiet bits) is not preserved —
   and the diff deliberately treats all NaNs alike. *)
let float_eq a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let record_eq (a : Gold.layer_record) (b : Gold.layer_record) =
  a.layer = b.layer && a.spec = b.spec && a.algorithm = b.algorithm
  && a.config = b.config && a.library_algorithm = b.library_algorithm
  && a.stop = b.stop && a.trials = b.trials
  && float_eq a.ours_us b.ours_us
  && float_eq a.predicted_us b.predicted_us
  && float_eq a.library_us b.library_us
  && float_eq a.q_ratio b.q_ratio

(* --- encoding --- *)

let test_layer_roundtrip () =
  List.iter
    (fun r ->
      match Gold.decode_layer (Gold.encode_layer r) with
      | Some r' -> Alcotest.(check bool) ("roundtrip " ^ r.Gold.layer) true (record_eq r r')
      | None -> Alcotest.failf "record %s did not decode" r.Gold.layer)
    [
      sample_record;
      { sample_record with layer = "fire2/squeeze1x1"; stop = "breaker:5"; trials = 0 };
      { sample_record with ours_us = Float.nan; predicted_us = Float.infinity };
      { sample_record with q_ratio = -0.0; ours_us = 1e-300; library_us = 1e300 };
    ]

let test_layer_rejects_malformed () =
  List.iter
    (fun payload ->
      Alcotest.(check bool) ("rejected: " ^ payload) true
        (Gold.decode_layer payload = None))
    [
      ""; "layer"; "not-a-layer\ta\tb";
      (* wrong arity *)
      "layer\tc1\tspec\talgo\tcfg\t1.0\t2.0";
      (* unparsable float *)
      "layer\tc1\tspec\talgo\tcfg\tXX\t0x1p0\t0x1p0\tlib\t0x1p0\tconverged\t3";
      (* unparsable trial count *)
      "layer\tc1\tspec\talgo\tcfg\t0x1p0\t0x1p0\t0x1p0\tlib\t0x1p0\tconverged\tmany";
    ]

let qcheck_float_roundtrip =
  QCheck.Test.make ~name:"hex floats round-trip bit-exactly" ~count:500
    QCheck.(triple float float float)
    (fun (a, b, c) ->
      let r = { sample_record with Gold.ours_us = a; predicted_us = b; q_ratio = c } in
      match Gold.decode_layer (Gold.encode_layer r) with
      | Some r' -> record_eq r r'
      | None -> false)

let test_file_roundtrip () =
  let dir = temp_dir "gold" in
  let path = Gold.path ~dir ~model:sample_meta.Gold.model ~arch:sample_meta.Gold.arch in
  Alcotest.(check string) "mapgraph naming" (Filename.concat dir "mini-net.v100.gold")
    path;
  let file =
    { Gold.meta = sample_meta; layers = [ sample_record; { sample_record with layer = "conv2" } ] }
  in
  Gold.write path file;
  (* [audit:false]: the sample record's costs are fabricated for the format
     tests, not derived from the cost model — the auditor would (rightly)
     reject them, and format round-tripping is a separate concern. *)
  (match Gold.read ~audit:false path with
  | Ok f ->
    Alcotest.(check bool) "meta" true (f.meta = sample_meta);
    Alcotest.(check int) "layers" 2 (List.length f.layers);
    Alcotest.(check bool) "records" true (List.for_all2 record_eq file.layers f.layers)
  | Error e -> Alcotest.fail e);
  (* The default audited read rejects the fabricated costs — a gold file
     whose claims do not re-derive is corruption, not a baseline. *)
  (match Gold.read path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "audited read accepted fabricated costs");
  (match Gold.read (Filename.concat dir "absent.v100.gold") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read of a missing file succeeded")

(* --- typed diff --- *)

let gold_file =
  {
    Gold.meta = sample_meta;
    layers = [ sample_record; { sample_record with layer = "conv2"; ours_us = 30.0 } ];
  }

let diff got = Gold.compare_files ~tolerance:1e-6 ~gold:gold_file ~got

let test_diff_clean () =
  Alcotest.(check int) "identical files" 0 (List.length (diff gold_file))

let test_diff_meta () =
  match diff { gold_file with meta = { sample_meta with budget = 80 } } with
  | [ Gold.Meta_drift { field = "budget"; gold = "40"; got = "80" } ] -> ()
  | ms -> Alcotest.failf "expected one budget Meta_drift, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms))

let replace_layer name f (file : Gold.file) =
  {
    file with
    layers =
      List.map
        (fun (r : Gold.layer_record) -> if r.layer = name then f r else r)
        file.layers;
  }

let test_diff_config_drift () =
  let got = replace_layer "conv2" (fun r -> { r with config = "d|HWC|8,8,16|8,4,4|4|2|1" }) gold_file in
  match diff got with
  | [ Gold.Config_drift { layer = "conv2"; field = "config"; _ } ] -> ()
  | ms -> Alcotest.failf "expected one Config_drift, got %d: [%s]" (List.length ms)
            (String.concat "; " (List.map Gold.mismatch_to_string ms))

let test_diff_cost_drift () =
  let got = replace_layer "conv1" (fun r -> { r with ours_us = r.ours_us *. 1.01 }) gold_file in
  (match diff got with
  | [ Gold.Cost_drift { layer = "conv1"; field = "ours_us"; rel; _ } ] ->
    Alcotest.(check bool) "rel is about 1%" true (rel > 0.009 && rel < 0.011)
  | ms -> Alcotest.failf "expected one Cost_drift, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms)));
  (* Drift inside tolerance passes. *)
  let close = replace_layer "conv1" (fun r -> { r with ours_us = r.ours_us *. (1. +. 1e-9) }) gold_file in
  Alcotest.(check int) "sub-tolerance drift ignored" 0 (List.length (diff close));
  (* NaN never passes silently. *)
  let poisoned = replace_layer "conv1" (fun r -> { r with predicted_us = Float.nan }) gold_file in
  match diff poisoned with
  | [ Gold.Cost_drift { field = "predicted_us"; _ } ] -> ()
  | ms -> Alcotest.failf "NaN must be drift, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms))

let test_diff_stop_and_replay () =
  let got = replace_layer "conv1" (fun r -> { r with stop = "trial-budget"; trials = 40 }) gold_file in
  (match diff got with
  | [ Gold.Stop_drift { layer = "conv1"; gold = "converged"; got = "trial-budget" };
      Gold.Stop_drift { layer = "conv1"; _ } ] -> ()
  | ms -> Alcotest.failf "expected stop+trials Stop_drift, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms)));
  (* A warm replay skips stop/trials comparison entirely. *)
  let warm = replace_layer "conv1" (fun r -> { r with stop = "replayed"; trials = 0 }) gold_file in
  Alcotest.(check int) "replayed skips stop/trials" 0 (List.length (diff warm))

let test_diff_layer_sets () =
  let missing = { gold_file with layers = [ sample_record ] } in
  (match diff missing with
  | [ Gold.Missing_layer { layer = "conv2" } ] -> ()
  | ms -> Alcotest.failf "expected Missing_layer, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms)));
  let extra =
    { gold_file with layers = gold_file.layers @ [ { sample_record with layer = "conv9" } ] }
  in
  match diff extra with
  | [ Gold.Extra_layer { layer = "conv9" } ] -> ()
  | ms -> Alcotest.failf "expected Extra_layer, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms))

(* --- end-to-end perturbation self-test --- *)

let mini_model =
  {
    Cnn.Models.name = "Mini-Net";
    layers = [ Cnn.Layer.make "c1" (Conv.Conv_spec.square ~c_in:8 ~size:12 ~c_out:8 ~k:3 ()) ];
  }

let settings = { Sweep.default_settings with budget = 40 }

let run_harness ~gold_dir ~out_dir ~cache_path mode =
  Harness.run ~models:[ mini_model ] ~arches:[ arch ] ~settings ~cache_path ~gold_dir
    ~out_dir mode

let marker dir ext = Filename.concat dir (Printf.sprintf "mini-net.v100.%s" ext)

let test_harness_self_test () =
  let gold_dir = temp_dir "gold" and out_dir = temp_dir "out" and cache_dir = temp_dir "cache" in
  let cache_path = Filename.concat cache_dir "fleet.cache" in
  let gold_path = marker gold_dir "gold" in

  (* Record. *)
  let g = run_harness ~gold_dir ~out_dir ~cache_path Harness.Gold in
  Alcotest.(check bool) "gold mode reports no failure" false (Harness.failed g);
  Alcotest.(check bool) "golden file written" true (Sys.file_exists gold_path);
  Alcotest.(check bool) "timing marker written" true
    (Sys.file_exists (marker out_dir "timing"));

  (* Determinism: re-recording produces byte-identical gold. *)
  let bytes_of path = In_channel.with_open_bin path In_channel.input_all in
  let first = bytes_of gold_path in
  let _ = run_harness ~gold_dir ~out_dir ~cache_path Harness.Gold in
  Alcotest.(check bool) "gold byte-deterministic" true (first = bytes_of gold_path);

  (* Enforce: warm regress passes and leaves a .pass marker. *)
  let r = run_harness ~gold_dir ~out_dir ~cache_path Harness.Regress in
  Alcotest.(check bool) "clean regress passes" false (Harness.failed r);
  Alcotest.(check bool) ".pass written" true (Sys.file_exists (marker out_dir "pass"));
  (match r.reports with
  | [ { pair; _ } ] ->
    Alcotest.(check int) "warm regress tunes nothing live" 0 pair.Sweep.live;
    List.iter
      (fun (rec_ : Gold.layer_record) ->
        Alcotest.(check string) ("served from cache: " ^ rec_.layer) "replayed" rec_.stop)
      pair.Sweep.gold.layers
  | _ -> Alcotest.fail "expected one pair report");

  (* Perturb the config (byte flip in the compact encoding): the tampered
     record re-frames with a valid CRC, but its claims no longer re-derive —
     the audit-on-read rejects the whole file as Gold_rejected (a trust
     failure, stronger than a field-level diff) and the marker is withheld. *)
  let gold = match Gold.read gold_path with Ok f -> f | Error e -> Alcotest.fail e in
  let perturb f = Gold.write gold_path (replace_layer "c1" f gold) in
  perturb (fun rec_ ->
      let b = Bytes.of_string rec_.config in
      Bytes.set b 0 (if Bytes.get b 0 = 'd' then 'w' else 'd');
      { rec_ with config = Bytes.to_string b });
  let r = run_harness ~gold_dir ~out_dir ~cache_path Harness.Regress in
  Alcotest.(check bool) "config flip fails regress" true (Harness.failed r);
  Alcotest.(check bool) ".pass withheld" false (Sys.file_exists (marker out_dir "pass"));
  (match (List.hd r.reports).mismatches with
  | [ Gold.Gold_rejected { path = p; _ } ] ->
    Alcotest.(check string) "rejected file named" gold_path p;
    (* The un-audited read still decodes it: the rejection is semantic. *)
    (match Gold.read ~audit:false gold_path with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "tampered gold should still decode: %s" e)
  | ms -> Alcotest.failf "expected Gold_rejected, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms)));

  (* Perturb a cost past tolerance: exactly one Cost_drift. *)
  perturb (fun rec_ -> { rec_ with ours_us = rec_.ours_us *. 1.001 });
  let r = run_harness ~gold_dir ~out_dir ~cache_path Harness.Regress in
  Alcotest.(check bool) "cost drift fails regress" true (Harness.failed r);
  (match (List.hd r.reports).mismatches with
  | [ Gold.Cost_drift { layer = "c1"; field = "ours_us"; _ } ] -> ()
  | ms -> Alcotest.failf "expected exactly one cost drift, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms)));

  (* Restore the truth: regress passes again and re-mints the marker. *)
  Gold.write gold_path gold;
  let r = run_harness ~gold_dir ~out_dir ~cache_path Harness.Regress in
  Alcotest.(check bool) "restored gold passes" false (Harness.failed r);
  Alcotest.(check bool) ".pass restored" true (Sys.file_exists (marker out_dir "pass"));

  (* Missing gold: typed Missing_pair. *)
  Sys.remove gold_path;
  let r = run_harness ~gold_dir ~out_dir ~cache_path Harness.Regress in
  match (List.hd r.reports).mismatches with
  | [ Gold.Missing_pair _ ] -> ()
  | ms -> Alcotest.failf "expected Missing_pair, got [%s]"
            (String.concat "; " (List.map Gold.mismatch_to_string ms))

let () =
  Alcotest.run "regress"
    [
      ( "gold-format",
        [
          Alcotest.test_case "layer record roundtrip" `Quick test_layer_roundtrip;
          Alcotest.test_case "malformed records rejected" `Quick
            test_layer_rejects_malformed;
          QCheck_alcotest.to_alcotest qcheck_float_roundtrip;
          Alcotest.test_case "file roundtrip + naming" `Quick test_file_roundtrip;
        ] );
      ( "diff",
        [
          Alcotest.test_case "clean" `Quick test_diff_clean;
          Alcotest.test_case "meta drift" `Quick test_diff_meta;
          Alcotest.test_case "config drift" `Quick test_diff_config_drift;
          Alcotest.test_case "cost drift + tolerance + NaN" `Quick test_diff_cost_drift;
          Alcotest.test_case "stop drift vs replay" `Quick test_diff_stop_and_replay;
          Alcotest.test_case "layer set drift" `Quick test_diff_layer_sets;
        ] );
      ( "harness",
        [ Alcotest.test_case "perturbation self-test" `Slow test_harness_self_test ] );
    ]
