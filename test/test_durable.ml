(* Durability suite — backs the [@torture-smoke] / [@torture-deep] aliases.

   Three layers: unit tests for [Util.Durable] framing/salvage/repair and
   the [Util.Fs_faults] injector; qcheck torture properties (a corrupted
   durable file always salvages to a bit-identical prefix, never raises,
   never replays a wrong value); and an end-to-end crash-torture harness
   that corrupts a real tune journal and its model-checkpoint sidecar
   between kill and resume, asserting the resumed search still lands on the
   uninterrupted run's exact result.

   TORTURE_DEEP=1 raises the qcheck case counts and torture round counts
   (the @torture-deep alias); the smoke configuration stays under ten
   seconds. *)

let deep = Sys.getenv_opt "TORTURE_DEEP" <> None
let qcount n = if deep then n * 10 else n
let kind = "torture-test"

(* Salvage warnings from the thousands of deliberately corrupted files are
   expected noise here; the verbosity hook keeps the output readable. *)
let () = Util.Log.set_quiet true

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let with_temp f =
  let path = Filename.temp_file "durable" ".rec" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- Util.Durable units --- *)

let test_crc32_known_vector () =
  (* The standard CRC-32 check value (IEEE 802.3, reflected). *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l (Util.Durable.crc32 "123456789");
  Alcotest.(check int32) "crc32 empty" 0l (Util.Durable.crc32 "")

let test_frame_and_header_validation () =
  (try
     ignore (Util.Durable.frame "a\nb");
     Alcotest.fail "newline payload accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Util.Durable.header ~kind:"bad\tkind");
     Alcotest.fail "tab kind accepted"
   with Invalid_argument _ -> ());
  (* Tabs in payloads are legal: the checksum field sits at a fixed offset. *)
  let p = "a\tb\tc" in
  with_temp (fun path ->
      Util.Durable.append ~kind path p;
      match Util.Durable.read ~kind path with
      | Intact [ got ] -> Alcotest.(check string) "tabbed payload" p got
      | _ -> Alcotest.fail "tabbed payload did not round-trip")

let test_read_basic_outcomes () =
  with_temp (fun path ->
      Alcotest.(check bool) "missing" true (Util.Durable.read ~kind path = Missing);
      write_file path "";
      Alcotest.(check bool) "empty" true (Util.Durable.read ~kind path = Intact []);
      List.iter (Util.Durable.append ~kind path) [ "one"; "two"; "three" ];
      Alcotest.(check bool) "intact in order" true
        (Util.Durable.read ~kind path = Intact [ "one"; "two"; "three" ]))

let test_salvage_and_repair () =
  with_temp (fun path ->
      List.iter (Util.Durable.append ~kind path) [ "one"; "two"; "three" ];
      let content = read_file path in
      (* Flip one bit in the middle record: it and everything after drop. *)
      let lines = String.split_on_char '\n' content in
      let off = String.length (List.nth lines 0) + String.length (List.nth lines 1) + 4 in
      let b = Bytes.of_string content in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
      write_file path (Bytes.to_string b);
      (match Util.Durable.read ~kind path with
      | Salvaged { records; dropped; reason } ->
        Alcotest.(check (list string)) "prefix" [ "one" ] records;
        Alcotest.(check int) "dropped" 2 dropped;
        Alcotest.(check bool) "reason mentions checksum" true
          (String.length reason > 0)
      | _ -> Alcotest.fail "expected Salvaged");
      (* Repair rewrites to the clean prefix; appends then extend it. *)
      ignore (Util.Durable.repair ~kind path);
      Alcotest.(check bool) "repaired reads intact" true
        (Util.Durable.read ~kind path = Intact [ "one" ]);
      Util.Durable.append ~kind path "four";
      Alcotest.(check bool) "append after repair" true
        (Util.Durable.read ~kind path = Intact [ "one"; "four" ]))

let test_foreign_kind_is_protected () =
  with_temp (fun path ->
      Util.Durable.append ~kind:"other-kind" path "theirs";
      let before = read_file path in
      (match Util.Durable.read ~kind path with
      | Salvaged { records = []; dropped; _ } ->
        Alcotest.(check int) "all lines reported" 2 dropped
      | _ -> Alcotest.fail "expected Salvaged with no records");
      (* [repair] must never rewrite someone else's valid file. *)
      ignore (Util.Durable.repair ~kind path);
      Alcotest.(check string) "file untouched" before (read_file path))

let test_snapshot_is_atomic_and_clean () =
  with_temp (fun path ->
      Util.Durable.write_snapshot ~kind path [ "a"; "b" ];
      Alcotest.(check bool) "snapshot reads back" true
        (Util.Durable.read ~kind path = Intact [ "a"; "b" ]);
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".durable-tmp"));
      Util.Durable.write_atomic path "raw bytes";
      Alcotest.(check string) "raw atomic write" "raw bytes" (read_file path);
      Alcotest.(check bool) "no temp file left (raw)" false
        (Sys.file_exists (path ^ ".durable-tmp")))

let test_torn_final_record_salvages () =
  with_temp (fun path ->
      List.iter (Util.Durable.append ~kind path) [ "one"; "two" ];
      let content = read_file path in
      (* A torn final write: half the last record, no trailing newline. *)
      write_file path (String.sub content 0 (String.length content - 5));
      match Util.Durable.read ~kind path with
      | Salvaged { records; dropped = 1; _ } ->
        Alcotest.(check (list string)) "prefix survives" [ "one" ] records
      | _ -> Alcotest.fail "expected Salvaged with dropped = 1")

(* --- Util.Fs_faults units --- *)

let test_faults_deterministic () =
  let ops seed =
    let rng = Util.Rng.create seed in
    List.init 32 (fun _ -> Util.Fs_faults.draw rng ~size:1000)
  in
  Alcotest.(check bool) "same seed, same ops" true (ops 7 = ops 7);
  Alcotest.(check bool) "different seed differs" true (ops 7 <> ops 8)

let test_faults_apply_exact () =
  with_temp (fun path ->
      write_file path "abcdef";
      Util.Fs_faults.apply path (Truncate_to 3);
      Alcotest.(check string) "truncate" "abc" (read_file path);
      Util.Fs_faults.apply path (Bit_flip { offset = 1; bit = 0 });
      Alcotest.(check string) "bit flip" "acc" (read_file path);
      Util.Fs_faults.apply path (Garbage_append "XY");
      Alcotest.(check string) "garbage" "accXY" (read_file path);
      Alcotest.(check int) "file_size" 5 (Util.Fs_faults.file_size path))

let test_faults_empty_file_never_flips () =
  with_temp (fun path ->
      write_file path "";
      let rng = Util.Rng.create 3 in
      for _ = 1 to 64 do
        match Util.Fs_faults.draw rng ~size:0 with
        | Bit_flip _ -> Alcotest.fail "bit flip drawn for empty file"
        | Semantic_flip _ -> Alcotest.fail "draw never yields a semantic flip"
        | Truncate_to _ | Garbage_append _ -> ()
      done)

(* The lie framing cannot see: a semantic flip mutates a record's payload
   and re-frames it with a fresh, valid CRC.  [Util.Durable.read] must
   report the file [Intact] — same record count, every checksum good —
   while at least one payload changed.  Catching THAT is the auditor's job
   (test_service's semantic poison campaign), not this layer's. *)
let test_semantic_flip_reads_intact () =
  with_temp (fun path ->
      let originals = [ "alpha\tone"; "beta\ttwo"; "gamma\tthree" ] in
      List.iter (Util.Durable.append ~kind path) originals;
      let rng = Util.Rng.create 11 in
      for round = 1 to 32 do
        match Util.Fs_faults.inject_semantic rng path with
        | None -> Alcotest.fail "record file offered no semantic target"
        | Some op -> (
          match Util.Durable.read ~kind path with
          | Util.Durable.Intact payloads ->
            Alcotest.(check int)
              (Printf.sprintf "round %d: record count preserved" round)
              (List.length originals) (List.length payloads)
          | _ ->
            Alcotest.failf "round %d: %s tripped the CRC" round
              (Util.Fs_faults.describe op))
      done;
      (* 32 single-bit flips never cancel back to the original bytes all at
         once in every round; assert the final content truly changed. *)
      (match Util.Durable.read ~kind path with
      | Util.Durable.Intact payloads ->
        Alcotest.(check bool) "content was mutated" true (payloads <> originals)
      | _ -> Alcotest.fail "final read not Intact");
      (* A file with no record lines offers nothing to flip. *)
      write_file path "not a durable file\n";
      Alcotest.(check bool) "no record, no target" true
        (Util.Fs_faults.draw_semantic rng path = None))

(* --- qcheck torture properties --- *)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> String.equal x y && is_prefix xs ys

let payload_gen =
  (* Printable bytes plus the occasional tab; newlines are rejected by
     [frame] and never written. *)
  QCheck.Gen.(
    string_size ~gen:(frequency [ (9, map Char.chr (int_range 32 126)); (1, return '\t') ])
      (int_range 0 24))

let corrupt rng path =
  let n = 1 + Util.Rng.int rng 3 in
  for _ = 1 to n do
    ignore (Util.Fs_faults.inject rng path)
  done

let prop_salvage_is_clean_prefix =
  QCheck.Test.make ~count:(qcount 120)
    ~name:"corrupted file salvages to an exact prefix, then repairs clean"
    QCheck.(pair (list_of_size Gen.(int_range 0 20) (make payload_gen)) small_int)
    (fun (payloads, seed) ->
      with_temp (fun path ->
          List.iter (Util.Durable.append ~kind path) payloads;
          corrupt (Util.Rng.create seed) path;
          (* Salvage never raises and never invents or reorders records. *)
          let salvaged = Util.Durable.records (Util.Durable.read ~kind path) in
          let prefix_ok = is_prefix salvaged payloads in
          (* After repair, appends extend exactly the salvaged prefix. *)
          let base = Util.Durable.records (Util.Durable.repair ~kind path) in
          Util.Durable.append ~kind path "sentinel";
          let clean =
            match Util.Durable.read ~kind path with
            | Intact rs -> rs = base @ [ "sentinel" ]
            | _ -> false
          in
          prefix_ok && base = salvaged && clean))

let entry_eq (a : Core.Tune_journal.entry) (b : Core.Tune_journal.entry) =
  String.equal a.key b.key
  &&
  match (a.outcome, b.outcome) with
  | Measured x, Measured y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Failed r, Failed s -> String.equal r s
  | Measured _, Failed _ | Failed _, Measured _ -> false

let rec is_entry_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> entry_eq x y && is_entry_prefix xs ys

let entry_gen =
  QCheck.Gen.(
    let key = string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 10) in
    let runtime =
      (* Positive, finite, and deliberately awkward mantissas: bit-identity
         must hold for every representable value, not just round ones. *)
      map
        (fun f ->
          let f = Float.abs f in
          if Float.is_nan f || (not (Float.is_finite f)) || f = 0.0 then 1.5 else f)
        float
    in
    let outcome =
      frequency
        [
          (4, map (fun r -> Core.Tune_journal.Measured r) runtime);
          (1, map (fun r -> Core.Tune_journal.Failed r) (oneofl [ "timeout"; "nan"; "launch" ]));
        ]
    in
    map2 (fun key outcome -> { Core.Tune_journal.key; outcome }) key outcome)

let prop_journal_replay_bit_identical =
  QCheck.Test.make ~count:(qcount 80)
    ~name:"corrupted journal replays a bit-identical entry prefix"
    QCheck.(pair (list_of_size Gen.(int_range 0 16) (make entry_gen)) small_int)
    (fun (entries, seed) ->
      with_temp (fun path ->
          List.iter (Core.Tune_journal.append path) entries;
          corrupt (Util.Rng.create seed) path;
          (* Decode through the journal codec but read quietly: the warning
             path is exercised by the deterministic recover test below. *)
          let survived =
            Util.Durable.records (Util.Durable.read ~kind:Core.Tune_journal.kind path)
            |> List.filter_map Core.Tune_journal.of_line
          in
          is_entry_prefix survived entries))

let test_journal_recover_rewrites () =
  with_temp (fun path ->
      let entries =
        [
          { Core.Tune_journal.key = "a"; outcome = Measured 12.5 };
          { Core.Tune_journal.key = "b"; outcome = Failed "timeout" };
          { Core.Tune_journal.key = "c"; outcome = Measured 0x1.91eb851eb851fp6 };
        ]
      in
      List.iter (Core.Tune_journal.append path) entries;
      (* Corrupt the second record's checksum field. *)
      let content = read_file path in
      let lines = String.split_on_char '\n' content in
      let off = String.length (List.nth lines 0) + String.length (List.nth lines 1) + 5 in
      let b = Bytes.of_string content in
      Bytes.set b off (if Bytes.get b off = '0' then '1' else '0');
      write_file path (Bytes.to_string b);
      let r = Core.Tune_journal.recover path in
      Alcotest.(check int) "salvaged prefix" 1 (List.length r.entries);
      Alcotest.(check int) "dropped" 2 r.dropped;
      Alcotest.(check bool) "reason reported" true (r.reason <> None);
      (* recover rewrote the file: the journal is clean again. *)
      let r2 = Core.Tune_journal.load path in
      Alcotest.(check int) "clean after recover" 0 r2.dropped;
      Core.Tune_journal.append path { key = "d"; outcome = Measured 3.25 };
      let r3 = Core.Tune_journal.load path in
      Alcotest.(check int) "extends the repaired prefix" 2 (List.length r3.entries);
      Alcotest.(check int) "still clean" 0 r3.dropped)

(* --- end-to-end crash torture: kill + corrupt + resume --- *)

let arch = Gpu_sim.Arch.v100
let spec = Conv.Conv_spec.make ~c_in:16 ~h_in:14 ~w_in:14 ~c_out:16 ~k_h:3 ~k_w:3 ~pad:1 ()
let harsh = { Gpu_sim.Faults.default with launch_shmem_frac = 0.25 }

let tune ?journal ?model_params ~domains () =
  let space = Core.Search_space.make arch spec Core.Config.Direct_dataflow in
  Core.Tuner.tune ~seed:11 ~max_measurements:60 ~domains ~faults:harsh ?journal
    ?model_params ~space ()

let same_result name (a : Core.Tuner.result) (b : Core.Tuner.result) =
  Alcotest.(check bool) (name ^ ": best config") true (a.best_config = b.best_config);
  Alcotest.(check (float 0.0)) (name ^ ": best runtime") a.best_runtime_us b.best_runtime_us;
  Alcotest.(check int) (name ^ ": measurements") a.measurements b.measurements;
  Alcotest.(check bool) (name ^ ": history") true (a.history = b.history);
  Alcotest.(check int) (name ^ ": converged_at") a.converged_at b.converged_at

let torture ?model_params ~domains ~rounds () =
  let uninterrupted = tune ?model_params ~domains () in
  let journal = Filename.temp_file "torture" ".journal" in
  Sys.remove journal;
  let ckpt = Core.Model_checkpoint.path_for journal in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ journal; ckpt ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let journalled = tune ~journal ?model_params ~domains () in
  same_result "journalled run" uninterrupted journalled;
  Alcotest.(check bool) "checkpoints were written" true (Sys.file_exists ckpt);
  (* Pristine copies of both artifacts, restored before each round. *)
  let jbytes = read_file journal and cbytes = read_file ckpt in
  let saw_drop = ref false and saw_restore = ref false in
  for round = 1 to rounds do
    write_file journal jbytes;
    write_file ckpt cbytes;
    let rng = Util.Rng.create ((1000 * domains) + round) in
    (* 1-2 faults per round, each against a random artifact: a crash can
       tear the journal, the checkpoint sidecar, or both. *)
    for _ = 1 to 1 + Util.Rng.int rng 2 do
      ignore (Util.Fs_faults.inject rng (if Util.Rng.bool rng then journal else ckpt))
    done;
    let resumed = tune ~journal ?model_params ~domains () in
    same_result (Printf.sprintf "domains=%d round=%d" domains round) uninterrupted resumed;
    if resumed.faults.journal_dropped > 0 then saw_drop := true;
    if resumed.faults.model_restores > 0 then saw_restore := true
  done;
  Alcotest.(check bool) "some round detected corruption" true !saw_drop;
  Alcotest.(check bool) "some round restored a checkpointed model" true !saw_restore

let test_torture_sequential () = torture ~domains:1 ~rounds:(if deep then 10 else 3) ()
let test_torture_parallel () = torture ~domains:4 ~rounds:(if deep then 6 else 2) ()

(* The same kill + corrupt + resume contract must hold when the cost model
   trains with histogram split finding: checkpoints tagged "hist" restore to
   the exact booster a retrain would produce, bit for bit. *)
let test_torture_hist () =
  torture ~model_params:Gbt.Booster.hist_params ~domains:1
    ~rounds:(if deep then 6 else 2) ()

(* Checkpoints are only reused by the split method that wrote them: a run
   that switches methods over the same journal must retrain from measurements
   (never restore) and still land on the uninterrupted result. *)
let test_checkpoint_split_method_mismatch () =
  let journal = Filename.temp_file "torture" ".journal" in
  Sys.remove journal;
  let ckpt = Core.Model_checkpoint.path_for journal in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ journal; ckpt ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let hist_run = tune ~journal ~model_params:Gbt.Booster.hist_params ~domains:1 () in
  Alcotest.(check bool) "hist checkpoints written" true (Sys.file_exists ckpt);
  let exact_resumed = tune ~journal ~domains:1 () in
  Alcotest.(check int) "no cross-method restores" 0 exact_resumed.faults.model_restores;
  let exact_fresh = tune ~domains:1 () in
  same_result "exact replay over hist checkpoints" exact_fresh exact_resumed;
  (* Sanity: the two methods really did tune with different boosters (the
     journal replays identically only because measurements are replayed). *)
  Alcotest.(check int) "same measurement count" hist_run.measurements
    exact_resumed.measurements

let () =
  Util.Pool.ensure_workers (Util.Pool.default ()) 3;
  Alcotest.run "durable"
    [
      ( "durable",
        [
          Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "frame/header validation" `Quick
            test_frame_and_header_validation;
          Alcotest.test_case "read outcomes" `Quick test_read_basic_outcomes;
          Alcotest.test_case "salvage and repair" `Quick test_salvage_and_repair;
          Alcotest.test_case "foreign kind protected" `Quick
            test_foreign_kind_is_protected;
          Alcotest.test_case "atomic snapshots" `Quick test_snapshot_is_atomic_and_clean;
          Alcotest.test_case "torn final record" `Quick test_torn_final_record_salvages;
        ] );
      ( "fs-faults",
        [
          Alcotest.test_case "deterministic draws" `Quick test_faults_deterministic;
          Alcotest.test_case "exact application" `Quick test_faults_apply_exact;
          Alcotest.test_case "semantic flip reads Intact" `Quick
            test_semantic_flip_reads_intact;
          Alcotest.test_case "empty file never flips" `Quick
            test_faults_empty_file_never_flips;
        ] );
      ( "torture-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_salvage_is_clean_prefix; prop_journal_replay_bit_identical ] );
      ( "torture-recover",
        [ Alcotest.test_case "recover rewrites the journal" `Quick
            test_journal_recover_rewrites ] );
      ( "crash-torture",
        [
          Alcotest.test_case "kill + corrupt + resume, sequential" `Quick
            test_torture_sequential;
          Alcotest.test_case "kill + corrupt + resume, parallel" `Quick
            test_torture_parallel;
          Alcotest.test_case "kill + corrupt + resume, hist split" `Quick
            test_torture_hist;
          Alcotest.test_case "split-method mismatch retrains" `Quick
            test_checkpoint_split_method_mismatch;
        ] );
    ]
